(** Software TPM: the hardware root of trust (the judiciary's anchor).

    Models the subset the paper relies on (§3.4): platform configuration
    registers (PCRs) with extend-only semantics, and signed quotes over
    selected PCRs that a remote verifier checks against the TPM's
    endorsement root. PCR 17 is reserved for dynamic launch (TXT-style
    DRTM) and can only be reset through {!dynamic_launch}. *)

type t

val pcr_count : int
(** 24 PCRs, as in TPM 2.0. *)

val drtm_pcr : int
(** PCR 17: the dynamic-launch measurement register. *)

val create : ?signer_height:int -> ?keypool:Crypto.Keypool.t -> Crypto.Rng.t -> t
(** Manufacture a TPM with a fresh endorsement (attestation) key able
    to produce [2^signer_height] quotes (default 64). When [keypool] is
    given, the endorsement signer draws its pregenerated one-time keys
    from it (see {!Crypto.Keypool}). *)

val endorsement_root : t -> Crypto.Sha256.digest
(** The public verification root for this TPM's quotes. A verifier must
    learn it out of band (manufacturer certificate). *)

val read_pcr : t -> int -> Crypto.Sha256.digest
(** @raise Invalid_argument on a bad index. *)

val extend : t -> pcr:int -> Crypto.Sha256.digest -> unit
(** [extend t ~pcr m] sets PCR := H(PCR || m) — the only way to change a
    PCR outside dynamic launch.
    @raise Invalid_argument on a bad index. *)

val dynamic_launch : t -> measured:Crypto.Sha256.digest -> unit
(** TXT-style late launch: resets {!drtm_pcr} and extends it with the
    measurement of the launched code (the isolation monitor). *)

(** A signed attestation over PCR values. *)
module Quote : sig
  type tpm := t
  type t = {
    pcr_values : (int * Crypto.Sha256.digest) list;
    nonce : string;
    signature : Crypto.Signature.signature;
  }

  val generate : tpm -> pcrs:int list -> nonce:string -> t
  (** Sign the selected PCRs together with a verifier-chosen nonce
      (freshness). Consumes one signing key from the endorsement signer. *)

  val verify : root:Crypto.Sha256.digest -> t -> bool
  (** Check the signature binds these PCR values and nonce to the TPM
      whose endorsement root is [root]. *)

  val signed_payload : t -> string
  (** The exact bytes the signature covers (exposed for tamper tests). *)
end
