type t = {
  pcrs : Crypto.Sha256.digest array;
  signer : Crypto.Signature.signer;
}

let pcr_count = 24
let drtm_pcr = 17

let create ?(signer_height = 6) ?keypool rng =
  { pcrs = Array.make pcr_count Crypto.Sha256.zero;
    signer = Crypto.Signature.create ~height:signer_height ?pool:keypool rng }

let endorsement_root t = Crypto.Signature.public_root t.signer

let check_index i =
  if i < 0 || i >= pcr_count then invalid_arg "Tpm: PCR index out of range"

let read_pcr t i =
  check_index i;
  t.pcrs.(i)

let extend t ~pcr m =
  check_index pcr;
  t.pcrs.(pcr) <- Crypto.Sha256.concat [ t.pcrs.(pcr); m ]

let dynamic_launch t ~measured =
  (* Late launch: the CPU resets the DRTM PCR to a distinguished value
     and extends it with the launched code, so the resulting PCR value
     can only be reached through this instruction. *)
  t.pcrs.(drtm_pcr) <- Crypto.Sha256.string "tyche-drtm-reset";
  extend t ~pcr:drtm_pcr measured

module Quote = struct
  type nonrec tpm = t

  type t = {
    pcr_values : (int * Crypto.Sha256.digest) list;
    nonce : string;
    signature : Crypto.Signature.signature;
  }

  let payload pcr_values nonce =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "tpm-quote-v1\x00";
    Buffer.add_int32_be buf (Int32.of_int (List.length pcr_values));
    List.iter
      (fun (i, d) ->
        Buffer.add_int32_be buf (Int32.of_int i);
        Buffer.add_string buf (Crypto.Sha256.to_raw d))
      pcr_values;
    Buffer.add_int32_be buf (Int32.of_int (String.length nonce));
    Buffer.add_string buf nonce;
    Buffer.contents buf

  let generate (tpm : tpm) ~pcrs ~nonce =
    let pcr_values =
      List.map (fun i -> (i, read_pcr tpm i)) (List.sort_uniq Int.compare pcrs)
    in
    { pcr_values;
      nonce;
      signature = Crypto.Signature.sign tpm.signer (payload pcr_values nonce) }

  let signed_payload q = payload q.pcr_values q.nonce

  let verify ~root q = Crypto.Signature.verify ~root (signed_payload q) q.signature
end
