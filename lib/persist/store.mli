(** Durable byte stores for the monitor's redo layer.

    A store holds named append-only blobs — {!wal_blob} for the
    write-ahead log, {!snap_blob} for the snapshot/manifest stream,
    {!seg_blob} for content-addressed snapshot segments. Appends land
    in a volatile pending buffer; {!fsync} moves pending bytes to the
    durable medium; {!read} returns durable bytes only (what a restart
    would actually find). {!reset} durably truncates a blob (the WAL
    after a successful snapshot); {!replace} atomically substitutes a
    blob's entire durable contents (segment GC).

    Two implementations:
    - {!mem}: an in-memory block device with *injectable torn writes*.
      Five {!Fault} points model power loss at the worst moments:
      [wal.append], [snapshot.write] and [segment.write] flush an
      arbitrary prefix of the buffered bytes (a torn sector) and then
      raise {!Crash}; [wal.fsync] loses the pending buffer entirely and
      raises {!Crash}; [store.dir_fsync] drops a rename/truncation on
      the floor (durable contents unchanged) and raises {!Crash}.
      The torn length is a deterministic function of the buffered bytes
      and the trip count, so chaos runs replay from their seed.
    - {!file}: a file-backed store (one file per blob under a
      directory), honoring the same fault points, so crash workloads can
      also be run against a real filesystem. [reset], [truncate] and
      [replace] swap the file atomically via a rename, and the parent
      directory is fsynced after every rename and first file creation
      so the swap cannot vanish on power loss.

    A simulated power failure raises {!Crash}: the in-memory monitor
    that was writing is dead — the only way forward is
    [Monitor.recover] from the store's durable contents. *)

exception Crash of string
(** Simulated power failure at the named fault point. *)

type t = {
  store_name : string;
  read : string -> string;
  append : string -> string -> unit;
  fsync : string -> unit;
  reset : string -> unit;
  truncate : string -> int -> unit;
  replace : string -> string -> unit;
  power_fail : unit -> unit;
}

val wal_blob : string
(** ["wal"] — the write-ahead log of committed operations. *)

val snap_blob : string
(** ["snap"] — the append-only snapshot/manifest stream (newest valid
    wins). *)

val seg_blob : string
(** ["segs"] — content-addressed captree segment stream referenced by
    incremental-snapshot manifests. *)

val read : t -> string -> string
val append : t -> string -> string -> unit
val fsync : t -> string -> unit
val reset : t -> string -> unit

val truncate : t -> string -> int -> unit
(** [truncate t blob keep] durably discards every byte past offset
    [keep] — the tail-repair primitive: a crash mid-append leaves a torn
    frame that hides everything appended after it from the
    newest-valid-record scan, so writers truncate back to the valid
    prefix before appending. Pending (unflushed) bytes are untouched.
    File-backed stores use the same atomic-rename discipline as
    {!reset}. *)

val replace : t -> string -> string -> unit
(** [replace t blob contents] atomically substitutes the blob's entire
    durable contents — the segment-GC primitive. A crash leaves either
    the old bytes or the new bytes, never a mixture. *)

val power_fail : t -> unit
(** Drop every blob's pending (unflushed) buffer — what an actual power
    loss does to the device's write cache. Every injected-crash path
    calls this before raising {!Crash}: without it, stale
    unacknowledged bytes from before the crash would survive the
    "restart" and be flushed into the stream by a later [fsync],
    corrupting the log with duplicated sequence ranges. *)

val torn_len : bytes:string -> trip:int -> int
(** Deterministic torn-prefix length for injected power failures —
    exposed so other persistence layers (manifest swap) can tear their
    writes with the same replayable rule. *)

val mem : ?wal:string -> ?snap:string -> unit -> t
(** Fresh in-memory store; [?wal]/[?snap] preload durable contents
    (tests use this to hand recovery an arbitrarily truncated or
    corrupted log). *)

val file : dir:string -> t
(** File-backed store rooted at [dir] (created if missing). Reopening
    the same directory sees the previous run's durable bytes. *)
