(** Durable byte stores for the monitor's redo layer.

    A store holds named append-only blobs — {!wal_blob} for the
    write-ahead log, {!snap_blob} for the snapshot stream. Appends land
    in a volatile pending buffer; {!fsync} moves pending bytes to the
    durable medium; {!read} returns durable bytes only (what a restart
    would actually find). {!reset} durably truncates a blob (the WAL
    after a successful snapshot).

    Two implementations:
    - {!mem}: an in-memory block device with *injectable torn writes*.
      Three {!Fault} points model power loss at the worst moments:
      [wal.append] and [snapshot.write] flush an arbitrary prefix of the
      buffered bytes (a torn sector) and then raise {!Crash};
      [wal.fsync] loses the pending buffer entirely and raises {!Crash}.
      The torn length is a deterministic function of the buffered bytes
      and the trip count, so chaos runs replay from their seed.
    - {!file}: a file-backed store (one file per blob under a
      directory), honoring the same fault points, so crash workloads can
      also be run against a real filesystem. [reset] replaces the file
      atomically via a rename.

    A simulated power failure raises {!Crash}: the in-memory monitor
    that was writing is dead — the only way forward is
    [Monitor.recover] from the store's durable contents. *)

exception Crash of string
(** Simulated power failure at the named fault point. *)

type t = {
  store_name : string;
  read : string -> string;
  append : string -> string -> unit;
  fsync : string -> unit;
  reset : string -> unit;
  truncate : string -> int -> unit;
}

val wal_blob : string
(** ["wal"] — the write-ahead log of committed operations. *)

val snap_blob : string
(** ["snap"] — the append-only snapshot stream (newest valid wins). *)

val read : t -> string -> string
val append : t -> string -> string -> unit
val fsync : t -> string -> unit
val reset : t -> string -> unit

val truncate : t -> string -> int -> unit
(** [truncate t blob keep] durably discards every byte past offset
    [keep] — the tail-repair primitive: a crash mid-append leaves a torn
    frame that hides everything appended after it from the
    newest-valid-record scan, so writers truncate back to the valid
    prefix before appending. Pending (unflushed) bytes are untouched.
    File-backed stores use the same atomic-rename discipline as
    {!reset}. *)

val mem : ?wal:string -> ?snap:string -> unit -> t
(** Fresh in-memory store; [?wal]/[?snap] preload durable contents
    (tests use this to hand recovery an arbitrarily truncated or
    corrupted log). *)

val file : dir:string -> t
(** File-backed store rooted at [dir] (created if missing). Reopening
    the same directory sees the previous run's durable bytes. *)
