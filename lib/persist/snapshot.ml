type domain_spec = {
  d_id : int;
  d_name : string;
  d_kind : int;
  d_created_by : int;
  d_sealed : bool;
  d_entry : int;
  d_measured : (int * int) list;
  d_flush : bool;
  d_measurement : string;
}

type resource_spec =
  | Mem of { base : int; len : int }
  | Core of int
  | Dev of int

type node_spec = {
  n_id : int;
  n_resource : resource_spec;
  n_rights : Op.rights;
  n_owner : int;
  n_cleanup : int;
  n_parent : int;
  n_origin : int;
  n_state : int;
  n_children : int list;
}

type t = {
  seq : int;
  next_domain : int;
  next_cap : int;
  generation : int;
  domains : domain_spec list;
  nodes : node_spec list;
  current : int list;
  stacks : int list list;
}

let version = 1

let enc_pair b (x, y) =
  Wire.i64 b x;
  Wire.i64 b y

let dec_pair r =
  let x = Wire.get_i64 r in
  let y = Wire.get_i64 r in
  (x, y)

let enc_domain b d =
  Wire.i64 b d.d_id;
  Wire.str b d.d_name;
  Wire.u8 b d.d_kind;
  Wire.i64 b d.d_created_by;
  Wire.bool_ b d.d_sealed;
  Wire.i64 b d.d_entry;
  Wire.list b enc_pair d.d_measured;
  Wire.bool_ b d.d_flush;
  Wire.str b d.d_measurement

let dec_domain r =
  let d_id = Wire.get_i64 r in
  let d_name = Wire.get_str r in
  let d_kind = Wire.get_u8 r in
  let d_created_by = Wire.get_i64 r in
  let d_sealed = Wire.get_bool r in
  let d_entry = Wire.get_i64 r in
  let d_measured = Wire.get_list r dec_pair in
  let d_flush = Wire.get_bool r in
  let d_measurement = Wire.get_str r in
  { d_id; d_name; d_kind; d_created_by; d_sealed; d_entry; d_measured; d_flush;
    d_measurement }

let enc_resource b = function
  | Mem { base; len } ->
    Wire.u8 b 0;
    Wire.i64 b base;
    Wire.i64 b len
  | Core c ->
    Wire.u8 b 1;
    Wire.i64 b c
  | Dev d ->
    Wire.u8 b 2;
    Wire.i64 b d

let dec_resource r =
  match Wire.get_u8 r with
  | 0 ->
    let base = Wire.get_i64 r in
    let len = Wire.get_i64 r in
    Mem { base; len }
  | 1 -> Core (Wire.get_i64 r)
  | 2 -> Dev (Wire.get_i64 r)
  | tag -> raise (Wire.Corrupt (Printf.sprintf "unknown resource tag %d" tag))

let enc_node b n =
  Wire.i64 b n.n_id;
  enc_resource b n.n_resource;
  Wire.u8 b (Op.rights_bits n.n_rights);
  Wire.i64 b n.n_owner;
  Wire.u8 b n.n_cleanup;
  Wire.i64 b n.n_parent;
  Wire.u8 b n.n_origin;
  Wire.u8 b n.n_state;
  Wire.list b Wire.i64 n.n_children

let dec_node r =
  let n_id = Wire.get_i64 r in
  let n_resource = dec_resource r in
  let n_rights = Op.rights_of_bits (Wire.get_u8 r) in
  let n_owner = Wire.get_i64 r in
  let n_cleanup = Wire.get_u8 r in
  let n_parent = Wire.get_i64 r in
  let n_origin = Wire.get_u8 r in
  let n_state = Wire.get_u8 r in
  let n_children = Wire.get_list r Wire.get_i64 in
  { n_id; n_resource; n_rights; n_owner; n_cleanup; n_parent; n_origin; n_state;
    n_children }

let encode t =
  let b = Buffer.create 4096 in
  Wire.u8 b version;
  Wire.i64 b t.seq;
  Wire.i64 b t.next_domain;
  Wire.i64 b t.next_cap;
  Wire.i64 b t.generation;
  Wire.list b enc_domain t.domains;
  Wire.list b enc_node t.nodes;
  Wire.list b Wire.i64 t.current;
  Wire.list b (fun b s -> Wire.list b Wire.i64 s) t.stacks;
  Buffer.contents b

let decode s =
  let r = Wire.reader s in
  (match Wire.get_u8 r with
  | v when v = version -> ()
  | v -> raise (Wire.Corrupt (Printf.sprintf "unknown snapshot version %d" v)));
  let seq = Wire.get_i64 r in
  let next_domain = Wire.get_i64 r in
  let next_cap = Wire.get_i64 r in
  let generation = Wire.get_i64 r in
  let domains = Wire.get_list r dec_domain in
  let nodes = Wire.get_list r dec_node in
  let current = Wire.get_list r Wire.get_i64 in
  let stacks = Wire.get_list r (fun r -> Wire.get_list r Wire.get_i64) in
  Wire.expect_end r;
  { seq; next_domain; next_cap; generation; domains; nodes; current; stacks }

let write store t =
  Wal.append store ~blob:Store.snap_blob ~seq:t.seq (encode t);
  Store.fsync store Store.snap_blob

let load_latest store =
  let { Wal.records; truncated; _ } = Wal.read store ~blob:Store.snap_blob in
  (* Newest decodable wins: walk newest-first, skipping entries whose
     body decodes badly (version skew, post-CRC corruption). *)
  let rec pick skipped = function
    | [] -> (None, skipped)
    | (_, payload) :: older -> (
      match decode payload with
      | snap -> (Some snap, skipped)
      | exception Wire.Corrupt _ -> pick (skipped + 1) older)
  in
  let snap, skipped = pick 0 (List.rev records) in
  (snap, List.length records, truncated || skipped > 0)
