type domain_spec = {
  d_id : int;
  d_name : string;
  d_kind : int;
  d_created_by : int;
  d_sealed : bool;
  d_entry : int;
  d_measured : (int * int) list;
  d_flush : bool;
  d_measurement : string;
}

type resource_spec =
  | Mem of { base : int; len : int }
  | Core of int
  | Dev of int

type node_spec = {
  n_id : int;
  n_resource : resource_spec;
  n_rights : Op.rights;
  n_owner : int;
  n_cleanup : int;
  n_parent : int;
  n_origin : int;
  n_state : int;
  n_children : int list;
}

type t = {
  seq : int;
  next_domain : int;
  next_cap : int;
  generation : int;
  domains : domain_spec list;
  nodes : node_spec list;
  current : int list;
  stacks : int list list;
}

(* Bumped (1 → 3; 2 is the manifest tag) when child lists left the
   node encoding: a version-1 record's trailing child bytes would
   misparse, so the newest-valid scan must skip old records outright —
   recovery then falls back to an older base plus WAL replay. *)
let version = 3

let enc_pair b (x, y) =
  Wire.i64 b x;
  Wire.i64 b y

let dec_pair r =
  let x = Wire.get_i64 r in
  let y = Wire.get_i64 r in
  (x, y)

let enc_domain b d =
  Wire.i64 b d.d_id;
  Wire.str b d.d_name;
  Wire.u8 b d.d_kind;
  Wire.i64 b d.d_created_by;
  Wire.bool_ b d.d_sealed;
  Wire.i64 b d.d_entry;
  Wire.list b enc_pair d.d_measured;
  Wire.bool_ b d.d_flush;
  Wire.str b d.d_measurement

let dec_domain r =
  let d_id = Wire.get_i64 r in
  let d_name = Wire.get_str r in
  let d_kind = Wire.get_u8 r in
  let d_created_by = Wire.get_i64 r in
  let d_sealed = Wire.get_bool r in
  let d_entry = Wire.get_i64 r in
  let d_measured = Wire.get_list r dec_pair in
  let d_flush = Wire.get_bool r in
  let d_measurement = Wire.get_str r in
  { d_id; d_name; d_kind; d_created_by; d_sealed; d_entry; d_measured; d_flush;
    d_measurement }

let enc_resource b = function
  | Mem { base; len } ->
    Wire.u8 b 0;
    Wire.i64 b base;
    Wire.i64 b len
  | Core c ->
    Wire.u8 b 1;
    Wire.i64 b c
  | Dev d ->
    Wire.u8 b 2;
    Wire.i64 b d

let dec_resource r =
  match Wire.get_u8 r with
  | 0 ->
    let base = Wire.get_i64 r in
    let len = Wire.get_i64 r in
    Mem { base; len }
  | 1 -> Core (Wire.get_i64 r)
  | 2 -> Dev (Wire.get_i64 r)
  | tag -> raise (Wire.Corrupt (Printf.sprintf "unknown resource tag %d" tag))

let enc_node b n =
  Wire.i64 b n.n_id;
  enc_resource b n.n_resource;
  Wire.u8 b (Op.rights_bits n.n_rights);
  Wire.i64 b n.n_owner;
  Wire.u8 b n.n_cleanup;
  Wire.i64 b n.n_parent;
  Wire.u8 b n.n_origin;
  Wire.u8 b n.n_state
(* n_children is deliberately NOT serialized: the lists are fully
   determined by the parent pointers (ids ascend with creation time
   and live lists are most-recent-first), and a hub node — a root cap
   with thousands of shares hanging off it — would otherwise drag its
   whole child list into every segment re-serialization, making the
   "one dirty bucket" checkpoint O(tree). The restore path rebuilds
   them with one ascending scan. *)

let dec_node r =
  let n_id = Wire.get_i64 r in
  let n_resource = dec_resource r in
  let n_rights = Op.rights_of_bits (Wire.get_u8 r) in
  let n_owner = Wire.get_i64 r in
  let n_cleanup = Wire.get_u8 r in
  let n_parent = Wire.get_i64 r in
  let n_origin = Wire.get_u8 r in
  let n_state = Wire.get_u8 r in
  { n_id; n_resource; n_rights; n_owner; n_cleanup; n_parent; n_origin; n_state;
    n_children = [] }

let encode t =
  let b = Buffer.create 4096 in
  Wire.u8 b version;
  Wire.i64 b t.seq;
  Wire.i64 b t.next_domain;
  Wire.i64 b t.next_cap;
  Wire.i64 b t.generation;
  Wire.list b enc_domain t.domains;
  Wire.list b enc_node t.nodes;
  Wire.list b Wire.i64 t.current;
  Wire.list b (fun b s -> Wire.list b Wire.i64 s) t.stacks;
  Buffer.contents b

let decode s =
  let r = Wire.reader s in
  (match Wire.get_u8 r with
  | v when v = version -> ()
  | v -> raise (Wire.Corrupt (Printf.sprintf "unknown snapshot version %d" v)));
  let seq = Wire.get_i64 r in
  let next_domain = Wire.get_i64 r in
  let next_cap = Wire.get_i64 r in
  let generation = Wire.get_i64 r in
  let domains = Wire.get_list r dec_domain in
  let nodes = Wire.get_list r dec_node in
  let current = Wire.get_list r Wire.get_i64 in
  let stacks = Wire.get_list r (fun r -> Wire.get_list r Wire.get_i64) in
  Wire.expect_end r;
  { seq; next_domain; next_cap; generation; domains; nodes; current; stacks }

let write store t =
  Wal.append store ~blob:Store.snap_blob ~seq:t.seq (encode t);
  Store.fsync store Store.snap_blob

(* --- incremental manifests + content-addressed segments ------------- *)

type manifest = {
  m_seq : int;
  m_next_domain : int;
  m_next_cap : int;
  m_generation : int;
  m_domains : domain_spec list;
  m_current : int list;
  m_stacks : int list list;
  m_span : int;
  m_segments : (int * string) list;
}

let manifest_version = 2

let encode_manifest m =
  let b = Buffer.create 1024 in
  Wire.u8 b manifest_version;
  Wire.i64 b m.m_seq;
  Wire.i64 b m.m_next_domain;
  Wire.i64 b m.m_next_cap;
  Wire.i64 b m.m_generation;
  Wire.list b enc_domain m.m_domains;
  Wire.list b Wire.i64 m.m_current;
  Wire.list b (fun b s -> Wire.list b Wire.i64 s) m.m_stacks;
  Wire.i64 b m.m_span;
  Wire.list b
    (fun b (bucket, h) ->
      Wire.i64 b bucket;
      Wire.str b h)
    m.m_segments;
  Buffer.contents b

let decode_manifest r =
  let m_seq = Wire.get_i64 r in
  let m_next_domain = Wire.get_i64 r in
  let m_next_cap = Wire.get_i64 r in
  let m_generation = Wire.get_i64 r in
  let m_domains = Wire.get_list r dec_domain in
  let m_current = Wire.get_list r Wire.get_i64 in
  let m_stacks = Wire.get_list r (fun r -> Wire.get_list r Wire.get_i64) in
  let m_span = Wire.get_i64 r in
  let m_segments =
    Wire.get_list r (fun r ->
        let bucket = Wire.get_i64 r in
        let h = Wire.get_str r in
        (bucket, h))
  in
  Wire.expect_end r;
  { m_seq; m_next_domain; m_next_cap; m_generation; m_domains; m_current; m_stacks;
    m_span; m_segments }

type record_kind = Full of t | Incremental of manifest

let decode_any s =
  let r = Wire.reader s in
  match Wire.get_u8 r with
  | v when v = version ->
    let seq = Wire.get_i64 r in
    let next_domain = Wire.get_i64 r in
    let next_cap = Wire.get_i64 r in
    let generation = Wire.get_i64 r in
    let domains = Wire.get_list r dec_domain in
    let nodes = Wire.get_list r dec_node in
    let current = Wire.get_list r Wire.get_i64 in
    let stacks = Wire.get_list r (fun r -> Wire.get_list r Wire.get_i64) in
    Wire.expect_end r;
    Full { seq; next_domain; next_cap; generation; domains; nodes; current; stacks }
  | v when v = manifest_version -> Incremental (decode_manifest r)
  | v -> raise (Wire.Corrupt (Printf.sprintf "unknown snapshot version %d" v))

(* A segment record's payload is [raw sha256 ^ encoded node list]; the
   hash is both the integrity check and the content address manifests
   reference, so identical bucket contents dedup across checkpoints. *)
let seg_encode nodes =
  let b = Buffer.create 512 in
  Wire.list b enc_node nodes;
  let body = Buffer.contents b in
  let h = Crypto.Sha256.(to_raw (string body)) in
  (h, h ^ body)

let seg_decode payload =
  if String.length payload < 32 then None
  else
    let h = String.sub payload 0 32 in
    let body = String.sub payload 32 (String.length payload - 32) in
    if Crypto.Sha256.(to_raw (string body)) <> h then None
    else
      match
        let r = Wire.reader body in
        let nodes = Wire.get_list r dec_node in
        Wire.expect_end r;
        nodes
      with
      | nodes -> Some (h, nodes)
      | exception Wire.Corrupt _ -> None

(* Content-addressed envelope for opaque bytes — the same [raw sha256 ^
   body] shape as captree segments, but carrying arbitrary payloads
   (live migration ships a domain's memory pages this way). Pure codec:
   callers pick the blob, so these never collide with the checkpoint
   segment GC. *)
let export_blob body =
  let h = Crypto.Sha256.(to_raw (string body)) in
  (h, h ^ body)

let import_blob payload =
  if String.length payload < 32 then None
  else
    let h = String.sub payload 0 32 in
    let body = String.sub payload 32 (String.length payload - 32) in
    if Crypto.Sha256.(to_raw (string body)) <> h then None else Some (h, body)

let append_segment store ~bucket payload =
  Wal.append store ~blob:Store.seg_blob ~seq:bucket payload

let fsync_segments store = Store.fsync store Store.seg_blob

let segment_index store =
  let { Wal.records; _ } = Wal.read store ~blob:Store.seg_blob in
  let idx = Hashtbl.create 64 in
  List.iter
    (fun (_seq, payload) ->
      match seg_decode payload with
      | Some (h, nodes) -> if not (Hashtbl.mem idx h) then Hashtbl.replace idx h nodes
      | None -> ())
    records;
  idx

let gc_segments store ~live =
  let { Wal.records; _ } = Wal.read store ~blob:Store.seg_blob in
  let seen = Hashtbl.create 16 in
  let keep =
    List.filter
      (fun (_seq, payload) ->
        match seg_decode payload with
        | Some (h, _) when live h && not (Hashtbl.mem seen h) ->
          Hashtbl.replace seen h ();
          true
        | _ -> false)
      records
  in
  let n_keep = List.length keep and n_all = List.length records in
  if n_keep < n_all then begin
    let b = Buffer.create 4096 in
    List.iter
      (fun (seq, payload) -> Buffer.add_string b (Wal.frame ~seq payload))
      keep;
    Store.replace store Store.seg_blob (Buffer.contents b)
  end;
  (n_keep, n_all - n_keep)

(* A manifest swap is the commit point of an incremental checkpoint: the
   fault models power loss mid-append, leaving a deterministic torn
   prefix of the frame on the medium. Recovery's newest-decodable-wins
   scan skips the torn record and falls back to the previous snapshot
   plus a longer WAL suffix. *)
let p_manifest_swap = Fault.register "manifest.swap"

let write_manifest store m =
  let payload = encode_manifest m in
  if Fault.fires p_manifest_swap then begin
    let framed = Wal.frame ~seq:m.m_seq payload in
    let keep = Store.torn_len ~bytes:framed ~trip:(Fault.trips p_manifest_swap) in
    Store.append store Store.snap_blob (String.sub framed 0 keep);
    Store.fsync store Store.snap_blob;
    (* The rest of the device's write cache dies with the power. *)
    Store.power_fail store;
    raise (Store.Crash (Fault.name p_manifest_swap))
  end;
  Wal.append store ~blob:Store.snap_blob ~seq:m.m_seq payload;
  Store.fsync store Store.snap_blob

let materialize idx m =
  let nodes =
    List.concat_map
      (fun (_bucket, h) ->
        match Hashtbl.find_opt idx h with
        | Some nodes -> nodes
        | None -> raise (Wire.Corrupt "manifest references a missing segment"))
      m.m_segments
  in
  {
    seq = m.m_seq;
    next_domain = m.m_next_domain;
    next_cap = m.m_next_cap;
    generation = m.m_generation;
    domains = m.m_domains;
    nodes;
    current = m.m_current;
    stacks = m.m_stacks;
  }

type loaded = {
  snapshot : t option;
  scanned : int;
  torn : bool;
  manifest_segments : (int * string) list;
}

let load_latest_ex store =
  let { Wal.records; truncated; _ } = Wal.read store ~blob:Store.snap_blob in
  let idx = lazy (segment_index store) in
  (* Newest decodable wins: walk newest-first, skipping entries whose
     body decodes badly (version skew, post-CRC corruption) or whose
     manifest references segments the segment blob no longer carries. *)
  let rec pick skipped = function
    | [] -> (None, [], skipped)
    | (_, payload) :: older -> (
      match decode_any payload with
      | Full snap -> (Some snap, [], skipped)
      | Incremental m -> (
        match materialize (Lazy.force idx) m with
        | snap -> (Some snap, m.m_segments, skipped)
        | exception Wire.Corrupt _ -> pick (skipped + 1) older)
      | exception Wire.Corrupt _ -> pick (skipped + 1) older)
  in
  let snap, segs, skipped = pick 0 (List.rev records) in
  {
    snapshot = snap;
    scanned = List.length records;
    torn = truncated || skipped > 0;
    manifest_segments = segs;
  }

let load_latest store =
  let l = load_latest_ex store in
  (l.snapshot, l.scanned, l.torn)
