(** Fixed-width little-endian wire codec for the durable store.

    Deliberately boring: fixed-width integers, length-prefixed strings,
    count-prefixed lists. Every decoder bounds-checks before reading and
    raises {!Corrupt} on malformed input — recovery catches it and
    treats the record as untrustworthy, exactly like a CRC mismatch
    (defense in depth behind the CRC: a framing bug or version skew
    must never crash recovery or admit garbage into the tree). *)

exception Corrupt of string

(** {2 Encoding} *)

val u8 : Buffer.t -> int -> unit
(** Low 8 bits. *)

val u32 : Buffer.t -> int -> unit
(** Low 32 bits, little-endian. *)

val i64 : Buffer.t -> int -> unit
(** Full OCaml int as a little-endian 64-bit two's-complement word
    (addresses, ids, sequence numbers, [-1] sentinels). *)

val bool_ : Buffer.t -> bool -> unit
val str : Buffer.t -> string -> unit
(** [u32] length prefix, then the bytes. *)

val list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
(** [u32] count prefix, then each element in order. *)

(** {2 Decoding} *)

type reader

val reader : string -> reader
val pos : reader -> int
val at_end : reader -> bool

val get_u8 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int
val get_bool : reader -> bool
val get_str : reader -> string
val get_list : reader -> (reader -> 'a) -> 'a list

val expect_end : reader -> unit
(** @raise Corrupt if any input bytes remain — a decoded record must
    account for every byte the CRC vouched for. *)
