(* CRC-32 (IEEE 802.3), reflected, polynomial 0xEDB88320. OCaml ints
   are at least 63 bits, so the 32-bit arithmetic needs no masking
   beyond the final xor-out. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let digest_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.digest_sub";
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest s = digest_sub s ~pos:0 ~len:(String.length s)
