(** Snapshots: a full serialization of the monitor's durable state.

    A snapshot bounds recovery time — recovery loads the newest valid
    snapshot and replays only the WAL suffix after it. Snapshots are
    appended to the {!Store.snap_blob} stream with the same CRC framing
    as WAL records ([seq] = the committed-operation index the snapshot
    captures); a torn snapshot write is detected by the framing, and
    recovery simply falls back to the previous valid snapshot plus a
    longer WAL suffix. The WAL is reset only *after* the snapshot is
    durable, so every crash window leaves a recoverable store.

    What is serialized: the capability tree (every node with its
    lineage, rights, cleanup policy, origin, activation state and
    children, plus the id counter and generation), every domain's
    configuration (kind, creator, entry point, measured ranges,
    seal-time measurement digest), and the per-core scheduler state
    (running domain, return stacks). Hardware state (EPT/PMP/IOMMU) is
    deliberately *not* serialized: it is re-derived from the restored
    tree by replaying attach effects, then cross-checked by the fsck
    pass — the tree is the source of truth, exactly as at runtime.

    Types are persist-neutral (ints, pairs, strings); the monitor owns
    the conversions. *)

type domain_spec = {
  d_id : int;
  d_name : string;
  d_kind : int;
  d_created_by : int; (** -1 = none (domain 0). *)
  d_sealed : bool;
  d_entry : int; (** -1 = none. *)
  d_measured : (int * int) list; (** (base, len), declaration order. *)
  d_flush : bool;
  d_measurement : string; (** Raw 32-byte digest, [""] = unsealed. *)
}

type resource_spec =
  | Mem of { base : int; len : int }
  | Core of int
  | Dev of int

type node_spec = {
  n_id : int;
  n_resource : resource_spec;
  n_rights : Op.rights;
  n_owner : int;
  n_cleanup : int;
  n_parent : int; (** -1 = root. *)
  n_origin : int; (** 0 root, 1 shared, 2 granted, 3 split. *)
  n_state : int; (** 0 active, 1 inactive-granted, 2 inactive-split. *)
  n_children : int list;
}

type t = {
  seq : int; (** Committed-operation index this snapshot captures. *)
  next_domain : int;
  next_cap : int;
  generation : int;
  domains : domain_spec list;
  nodes : node_spec list;
  current : int list; (** Per-core running domain. *)
  stacks : int list list; (** Per-core return stacks, innermost first. *)
}

val encode : t -> string

val decode : string -> t
(** @raise Wire.Corrupt on malformed input. *)

val write : Store.t -> t -> unit
(** Append to the snapshot stream and make it durable. May raise
    {!Store.Crash} at the [snapshot.write] fault point. *)

val load_latest : Store.t -> t option * int * bool
(** [(newest decodable snapshot, snapshots scanned, tail-corruption
    seen)]. Never raises: an undecodable entry is skipped in favor of
    the next-older valid one. *)
