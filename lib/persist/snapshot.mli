(** Snapshots: a full serialization of the monitor's durable state.

    A snapshot bounds recovery time — recovery loads the newest valid
    snapshot and replays only the WAL suffix after it. Snapshots are
    appended to the {!Store.snap_blob} stream with the same CRC framing
    as WAL records ([seq] = the committed-operation index the snapshot
    captures); a torn snapshot write is detected by the framing, and
    recovery simply falls back to the previous valid snapshot plus a
    longer WAL suffix. The WAL is reset only *after* the snapshot is
    durable, so every crash window leaves a recoverable store.

    What is serialized: the capability tree (every node with its
    lineage, rights, cleanup policy, origin and activation state —
    child lists are derived from the parent pointers at restore, see
    {!node_spec} — plus the id counter and generation), every domain's
    configuration (kind, creator, entry point, measured ranges,
    seal-time measurement digest), and the per-core scheduler state
    (running domain, return stacks). Hardware state (EPT/PMP/IOMMU) is
    deliberately *not* serialized: it is re-derived from the restored
    tree by replaying attach effects, then cross-checked by the fsck
    pass — the tree is the source of truth, exactly as at runtime.

    Types are persist-neutral (ints, pairs, strings); the monitor owns
    the conversions. *)

type domain_spec = {
  d_id : int;
  d_name : string;
  d_kind : int;
  d_created_by : int; (** -1 = none (domain 0). *)
  d_sealed : bool;
  d_entry : int; (** -1 = none. *)
  d_measured : (int * int) list; (** (base, len), declaration order. *)
  d_flush : bool;
  d_measurement : string; (** Raw 32-byte digest, [""] = unsealed. *)
}

type resource_spec =
  | Mem of { base : int; len : int }
  | Core of int
  | Dev of int

type node_spec = {
  n_id : int;
  n_resource : resource_spec;
  n_rights : Op.rights;
  n_owner : int;
  n_cleanup : int;
  n_parent : int; (** -1 = root. *)
  n_origin : int; (** 0 root, 1 shared, 2 granted, 3 split. *)
  n_state : int; (** 0 active, 1 inactive-granted, 2 inactive-split. *)
  n_children : int list;
      (** NOT serialized — decoders return [[]]. The lists are fully
          determined by the parent pointers (ids ascend with creation,
          live lists are most-recent-first), and writing them would
          make any hub node's segment O(children) on every checkpoint.
          The restore path reconstructs them before use. *)
}

type t = {
  seq : int; (** Committed-operation index this snapshot captures. *)
  next_domain : int;
  next_cap : int;
  generation : int;
  domains : domain_spec list;
  nodes : node_spec list;
  current : int list; (** Per-core running domain. *)
  stacks : int list list; (** Per-core return stacks, innermost first. *)
}

val encode : t -> string

val decode : string -> t
(** @raise Wire.Corrupt on malformed input. *)

val write : Store.t -> t -> unit
(** Append a full (version-1) snapshot to the snapshot stream and make
    it durable. May raise {!Store.Crash} at the [snapshot.write] fault
    point. *)

val load_latest : Store.t -> t option * int * bool
(** [(newest decodable snapshot, snapshots scanned, tail-corruption
    seen)]. Never raises: an undecodable entry is skipped in favor of
    the next-older valid one. Understands both full snapshots and
    incremental manifests (materialized through {!seg_blob} segments —
    a manifest whose segments are missing is skipped like any other
    corrupt record). *)

(** {1 Incremental checkpoints}

    An incremental checkpoint writes only the captree buckets dirtied
    since the previous one. Each dirty bucket is serialized as a
    *segment* — payload [raw sha256 ^ encoded node list] — appended to
    {!Store.seg_blob} and addressed by its hash, so a bucket whose
    contents did not change (or changed back) dedups across
    checkpoints. A version-2 *manifest* record in the snapshot stream
    then lists, in bucket order, the (bucket, hash) pairs that together
    reconstruct the tree, alongside the small inline state (domains,
    scheduler, counters). The manifest append is the atomic commit
    point; the WAL prefix it covers is compacted afterwards, and
    {!gc_segments} drops segment blobs the newest manifest no longer
    references. *)

type manifest = {
  m_seq : int;
  m_next_domain : int;
  m_next_cap : int;
  m_generation : int;
  m_domains : domain_spec list;
  m_current : int list;
  m_stacks : int list list;
  m_span : int; (** Bucket width: segment [b] holds ids in [b*span, (b+1)*span). *)
  m_segments : (int * string) list; (** (bucket, raw segment hash), bucket order. *)
}

val encode_manifest : manifest -> string
(** The manifest record body (version byte included) — exposed so
    callers can account the bytes a checkpoint writes. *)

val seg_encode : node_spec list -> string * string
(** [(raw hash, segment payload)] for one bucket's nodes. *)

val seg_decode : string -> (string * node_spec list) option
(** Validate a segment payload against its embedded hash. [None] on any
    mismatch or malformed body — never raises. *)

val export_blob : string -> string * string
(** [(raw hash, payload)] content-addressed envelope for opaque bytes —
    the segment shape ([raw sha256 ^ body]) without the node-list
    schema. Live migration ships memory pages this way; callers choose
    the blob they append to, keeping these out of the checkpoint
    segment GC. *)

val import_blob : string -> (string * string) option
(** Validate an {!export_blob} payload against its embedded hash.
    [None] on mismatch or truncation — never raises. *)

val append_segment : Store.t -> bucket:int -> string -> unit
(** Append one segment payload to {!Store.seg_blob} (durable only after
    {!fsync_segments}). May raise {!Store.Crash} at [segment.write]. *)

val fsync_segments : Store.t -> unit

val segment_index : Store.t -> (string, node_spec list) Hashtbl.t
(** Hash → nodes for every valid segment durable in {!Store.seg_blob}.
    Invalid records are skipped; first occurrence of a hash wins. *)

val write_manifest : Store.t -> manifest -> unit
(** Append the manifest to the snapshot stream and make it durable —
    the commit point of an incremental checkpoint. May raise
    {!Store.Crash} at the [manifest.swap] fault point, which leaves a
    deterministic torn prefix of the record for recovery to skip. *)

val gc_segments : Store.t -> live:(string -> bool) -> int * int
(** Rewrite {!Store.seg_blob} keeping one copy of every segment whose
    hash satisfies [live]; returns [(kept, dropped)] record counts. The
    rewrite is a single atomic {!Store.replace}. *)

type loaded = {
  snapshot : t option;
  scanned : int;
  torn : bool;
  manifest_segments : (int * string) list;
}

val load_latest_ex : Store.t -> loaded
(** {!load_latest} plus the winning manifest's segment list (empty when
    the newest valid record is a full snapshot or nothing loaded) — the
    monitor seeds its dedup cache from it. *)
