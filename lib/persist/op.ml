type rights = {
  r_read : bool;
  r_write : bool;
  r_exec : bool;
  r_share : bool;
  r_grant : bool;
}

type t =
  | Create_domain of { caller : int; name : string; kind : int }
  | Set_entry_point of { caller : int; domain : int; entry : int }
  | Set_flush_policy of { caller : int; domain : int; flush : bool }
  | Mark_measured of { caller : int; domain : int; base : int; len : int }
  | Seal of { caller : int; domain : int; measurement : string }
  | Destroy_domain of { caller : int; domain : int }
  | Share of {
      caller : int;
      cap : int;
      to_ : int;
      rights : rights;
      cleanup : int;
      sub : (int * int) option;
    }
  | Grant of { caller : int; cap : int; to_ : int; rights : rights; cleanup : int }
  | Split of { caller : int; cap : int; at : int }
  | Carve of { caller : int; cap : int; base : int; len : int }
  | Revoke of { caller : int; cap : int }
  | Call of { core : int; target : int }
  | Ret of { core : int }
  | Timer_tick of { core : int }

let rights_bits r =
  (if r.r_read then 1 else 0)
  lor (if r.r_write then 2 else 0)
  lor (if r.r_exec then 4 else 0)
  lor (if r.r_share then 8 else 0)
  lor if r.r_grant then 16 else 0

let rights_of_bits bits =
  if bits land lnot 31 <> 0 then raise (Wire.Corrupt "bad rights bits");
  { r_read = bits land 1 <> 0;
    r_write = bits land 2 <> 0;
    r_exec = bits land 4 <> 0;
    r_share = bits land 8 <> 0;
    r_grant = bits land 16 <> 0 }

let encode op =
  let b = Buffer.create 48 in
  (match op with
  | Create_domain { caller; name; kind } ->
    Wire.u8 b 1;
    Wire.i64 b caller;
    Wire.str b name;
    Wire.u8 b kind
  | Set_entry_point { caller; domain; entry } ->
    Wire.u8 b 2;
    Wire.i64 b caller;
    Wire.i64 b domain;
    Wire.i64 b entry
  | Set_flush_policy { caller; domain; flush } ->
    Wire.u8 b 3;
    Wire.i64 b caller;
    Wire.i64 b domain;
    Wire.bool_ b flush
  | Mark_measured { caller; domain; base; len } ->
    Wire.u8 b 4;
    Wire.i64 b caller;
    Wire.i64 b domain;
    Wire.i64 b base;
    Wire.i64 b len
  | Seal { caller; domain; measurement } ->
    Wire.u8 b 5;
    Wire.i64 b caller;
    Wire.i64 b domain;
    Wire.str b measurement
  | Destroy_domain { caller; domain } ->
    Wire.u8 b 6;
    Wire.i64 b caller;
    Wire.i64 b domain
  | Share { caller; cap; to_; rights; cleanup; sub } ->
    Wire.u8 b 7;
    Wire.i64 b caller;
    Wire.i64 b cap;
    Wire.i64 b to_;
    Wire.u8 b (rights_bits rights);
    Wire.u8 b cleanup;
    (match sub with
    | None -> Wire.bool_ b false
    | Some (base, len) ->
      Wire.bool_ b true;
      Wire.i64 b base;
      Wire.i64 b len)
  | Grant { caller; cap; to_; rights; cleanup } ->
    Wire.u8 b 8;
    Wire.i64 b caller;
    Wire.i64 b cap;
    Wire.i64 b to_;
    Wire.u8 b (rights_bits rights);
    Wire.u8 b cleanup
  | Split { caller; cap; at } ->
    Wire.u8 b 9;
    Wire.i64 b caller;
    Wire.i64 b cap;
    Wire.i64 b at
  | Carve { caller; cap; base; len } ->
    Wire.u8 b 10;
    Wire.i64 b caller;
    Wire.i64 b cap;
    Wire.i64 b base;
    Wire.i64 b len
  | Revoke { caller; cap } ->
    Wire.u8 b 11;
    Wire.i64 b caller;
    Wire.i64 b cap
  | Call { core; target } ->
    Wire.u8 b 12;
    Wire.i64 b core;
    Wire.i64 b target
  | Ret { core } ->
    Wire.u8 b 13;
    Wire.i64 b core
  | Timer_tick { core } ->
    Wire.u8 b 14;
    Wire.i64 b core);
  Buffer.contents b

let decode s =
  let r = Wire.reader s in
  let op =
    match Wire.get_u8 r with
    | 1 ->
      let caller = Wire.get_i64 r in
      let name = Wire.get_str r in
      let kind = Wire.get_u8 r in
      Create_domain { caller; name; kind }
    | 2 ->
      let caller = Wire.get_i64 r in
      let domain = Wire.get_i64 r in
      let entry = Wire.get_i64 r in
      Set_entry_point { caller; domain; entry }
    | 3 ->
      let caller = Wire.get_i64 r in
      let domain = Wire.get_i64 r in
      let flush = Wire.get_bool r in
      Set_flush_policy { caller; domain; flush }
    | 4 ->
      let caller = Wire.get_i64 r in
      let domain = Wire.get_i64 r in
      let base = Wire.get_i64 r in
      let len = Wire.get_i64 r in
      Mark_measured { caller; domain; base; len }
    | 5 ->
      let caller = Wire.get_i64 r in
      let domain = Wire.get_i64 r in
      let measurement = Wire.get_str r in
      Seal { caller; domain; measurement }
    | 6 ->
      let caller = Wire.get_i64 r in
      let domain = Wire.get_i64 r in
      Destroy_domain { caller; domain }
    | 7 ->
      let caller = Wire.get_i64 r in
      let cap = Wire.get_i64 r in
      let to_ = Wire.get_i64 r in
      let rights = rights_of_bits (Wire.get_u8 r) in
      let cleanup = Wire.get_u8 r in
      let sub =
        if Wire.get_bool r then begin
          let base = Wire.get_i64 r in
          let len = Wire.get_i64 r in
          Some (base, len)
        end
        else None
      in
      Share { caller; cap; to_; rights; cleanup; sub }
    | 8 ->
      let caller = Wire.get_i64 r in
      let cap = Wire.get_i64 r in
      let to_ = Wire.get_i64 r in
      let rights = rights_of_bits (Wire.get_u8 r) in
      let cleanup = Wire.get_u8 r in
      Grant { caller; cap; to_; rights; cleanup }
    | 9 ->
      let caller = Wire.get_i64 r in
      let cap = Wire.get_i64 r in
      let at = Wire.get_i64 r in
      Split { caller; cap; at }
    | 10 ->
      let caller = Wire.get_i64 r in
      let cap = Wire.get_i64 r in
      let base = Wire.get_i64 r in
      let len = Wire.get_i64 r in
      Carve { caller; cap; base; len }
    | 11 ->
      let caller = Wire.get_i64 r in
      let cap = Wire.get_i64 r in
      Revoke { caller; cap }
    | 12 ->
      let core = Wire.get_i64 r in
      let target = Wire.get_i64 r in
      Call { core; target }
    | 13 -> Ret { core = Wire.get_i64 r }
    | 14 -> Timer_tick { core = Wire.get_i64 r }
    | tag -> raise (Wire.Corrupt (Printf.sprintf "unknown op tag %d" tag))
  in
  Wire.expect_end r;
  op

let pp fmt = function
  | Create_domain { caller; name; kind } ->
    Format.fprintf fmt "create_domain(caller:%d, %S, kind:%d)" caller name kind
  | Set_entry_point { caller; domain; entry } ->
    Format.fprintf fmt "set_entry_point(caller:%d, dom:%d, 0x%x)" caller domain entry
  | Set_flush_policy { caller; domain; flush } ->
    Format.fprintf fmt "set_flush_policy(caller:%d, dom:%d, %b)" caller domain flush
  | Mark_measured { caller; domain; base; len } ->
    Format.fprintf fmt "mark_measured(caller:%d, dom:%d, 0x%x+0x%x)" caller domain base len
  | Seal { caller; domain; _ } -> Format.fprintf fmt "seal(caller:%d, dom:%d)" caller domain
  | Destroy_domain { caller; domain } ->
    Format.fprintf fmt "destroy_domain(caller:%d, dom:%d)" caller domain
  | Share { caller; cap; to_; _ } ->
    Format.fprintf fmt "share(caller:%d, cap:%d -> dom:%d)" caller cap to_
  | Grant { caller; cap; to_; _ } ->
    Format.fprintf fmt "grant(caller:%d, cap:%d -> dom:%d)" caller cap to_
  | Split { caller; cap; at } ->
    Format.fprintf fmt "split(caller:%d, cap:%d at 0x%x)" caller cap at
  | Carve { caller; cap; base; len } ->
    Format.fprintf fmt "carve(caller:%d, cap:%d, 0x%x+0x%x)" caller cap base len
  | Revoke { caller; cap } -> Format.fprintf fmt "revoke(caller:%d, cap:%d)" caller cap
  | Call { core; target } -> Format.fprintf fmt "call(core:%d -> dom:%d)" core target
  | Ret { core } -> Format.fprintf fmt "ret(core:%d)" core
  | Timer_tick { core } -> Format.fprintf fmt "timer_tick(core:%d)" core
