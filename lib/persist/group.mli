(** Group commit: batch many committed operations under one [fsync].

    The monitor commits an operation in memory, appends its redo record
    here, and the queue decides when the expensive durability barrier
    actually runs: after {!val-append} has accumulated [max_batch]
    records, or when the oldest pending record has waited at least
    [latency_bound] clock ticks, or on an explicit {!val-flush}. An
    operation counts as *acknowledged* only once its batch is durable —
    {!val-durable_seq} is the acknowledgement floor recovery must honor
    (the redo-log contract: acknowledged ops are never lost; pending
    unacknowledged ops may be dropped by a crash but never torn).

    Two histograms ([persist.group.batch], [persist.group.flush_wait])
    and a flush counter record the amortization actually achieved.

    The clock is injected ([now]) so the monitor can drive the latency
    bound off deterministic machine cycles — chaos runs replay. *)

type t

val create :
  ?max_batch:int ->
  ?latency_bound:int ->
  ?now:(unit -> int) ->
  Store.t ->
  blob:string ->
  durable_seq:int ->
  t
(** [max_batch] defaults to 1 (fsync per append — the pre-group-commit
    behavior); [latency_bound] defaults to [max_int] (no time bound);
    [now] defaults to a frozen clock. [durable_seq] seeds the
    acknowledgement floor (the checkpoint seq at creation). *)

val append : t -> seq:int -> string -> unit
(** Append one committed record; flush if the batch is full or the
    oldest pending record has exceeded the latency bound. May raise
    {!Store.Crash} from the underlying append or the triggered flush. *)

val flush : t -> unit
(** Make every pending record durable now. No-op when nothing is
    pending. May raise {!Store.Crash} at the [wal.fsync] point, in
    which case the pending records were lost (never torn) and the
    acknowledgement floor is unchanged. *)

val note_durable : t -> seq:int -> unit
(** Raise the acknowledgement floor to [seq] — called after a
    checkpoint whose manifest covers everything up to [seq]. When the
    floor reaches the tail, pending-batch accounting resets (the
    checkpoint subsumed those records). *)

val pending : t -> int
(** Records appended but not yet durable. *)

val durable_seq : t -> int
(** Highest sequence number known durable (the acknowledgement floor). *)

val tail_seq : t -> int
(** Highest sequence number appended (durable or pending). *)
