(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    Every record in the durable store is framed with a CRC over its
    payload; recovery refuses to trust any byte of a record whose CRC
    does not match (see {!Wal}). A 32-bit CRC is the classic
    torn-write detector: it is not cryptographic, but the store is
    inside the monitor's trust boundary — the adversary here is the
    power cord, not a forger. *)

val digest : string -> int
(** CRC-32 of the whole string, in [0, 0xFFFFFFFF]. *)

val digest_sub : string -> pos:int -> len:int -> int
(** CRC-32 of [s.[pos .. pos+len-1]] without copying.
    @raise Invalid_argument if the slice is out of bounds. *)
