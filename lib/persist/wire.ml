exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some (Printf.sprintf "Persist.Wire.Corrupt(%s)" msg)
    | _ -> None)

let corrupt msg = raise (Corrupt msg)

(* --- encoding ------------------------------------------------------- *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let bool_ b v = u8 b (if v then 1 else 0)

let str b s =
  u32 b (String.length s);
  Buffer.add_string b s

let list b f xs =
  u32 b (List.length xs);
  List.iter (f b) xs

(* --- decoding ------------------------------------------------------- *)

type reader = { buf : string; mutable rpos : int }

let reader s = { buf = s; rpos = 0 }
let pos r = r.rpos
let at_end r = r.rpos >= String.length r.buf

let need r n what =
  if n < 0 || r.rpos > String.length r.buf - n then
    corrupt (Printf.sprintf "truncated %s at offset %d" what r.rpos)

let get_u8 r =
  need r 1 "u8";
  let v = Char.code r.buf.[r.rpos] in
  r.rpos <- r.rpos + 1;
  v

let get_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string r.buf) r.rpos) in
  r.rpos <- r.rpos + 4;
  v land 0xFFFFFFFF

let get_i64 r =
  need r 8 "i64";
  let v = Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string r.buf) r.rpos) in
  r.rpos <- r.rpos + 8;
  v

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt (Printf.sprintf "bad bool byte %d" n)

let get_str r =
  let len = get_u32 r in
  need r len "string body";
  let s = String.sub r.buf r.rpos len in
  r.rpos <- r.rpos + len;
  s

let get_list r f =
  let n = get_u32 r in
  (* Each element consumes at least one byte, so a count beyond the
     remaining input is corrupt — refuse before allocating. *)
  if n > String.length r.buf - r.rpos then corrupt "list count exceeds input";
  List.init n (fun _ -> f r)

let expect_end r =
  if not (at_end r) then
    corrupt (Printf.sprintf "%d trailing bytes" (String.length r.buf - r.rpos))
