exception Crash of string

let () =
  Printexc.register_printer (function
    | Crash point -> Some (Printf.sprintf "Persist.Store.Crash(%s)" point)
    | _ -> None)

type t = {
  store_name : string;
  read : string -> string;
  append : string -> string -> unit;
  fsync : string -> unit;
  reset : string -> unit;
  truncate : string -> int -> unit;
}

let wal_blob = "wal"
let snap_blob = "snap"

let read t blob = t.read blob

(* Durability choke points: every WAL append/fsync and snapshot write in
   the system funnels through these wrappers, so one span here profiles
   the whole persistence path. The span is exception-safe — a [Crash]
   raised by an injected torn write still closes it. Handles are hoisted
   so the per-append cost is the span itself, not a registry lookup. *)
let h_wal_append = Obs.Profile.handle "wal.append"
let h_wal_fsync = Obs.Profile.handle "wal.fsync"
let h_snap_write = Obs.Profile.handle "snapshot.write"
let h_snap_fsync = Obs.Profile.handle "snapshot.fsync"

let append t blob data =
  Obs.Profile.span_h
    (if blob = wal_blob then h_wal_append else h_snap_write)
    (fun () -> t.append blob data)

let fsync t blob =
  Obs.Profile.span_h
    (if blob = wal_blob then h_wal_fsync else h_snap_fsync)
    (fun () -> t.fsync blob)

let reset t blob = t.reset blob
let truncate t blob keep = t.truncate blob keep

(* Power can fail while a write is in flight: the medium keeps an
   arbitrary prefix of the bytes being flushed (a torn sector). The
   prefix length is a pure function of the bytes and the trip count so
   chaos runs are replayable from their fault-plan seed. *)
let p_wal_append = Fault.register "wal.append"
let p_wal_fsync = Fault.register "wal.fsync"
let p_snapshot_write = Fault.register "snapshot.write"

let append_point blob = if blob = wal_blob then p_wal_append else p_snapshot_write

let torn_len ~bytes ~trip = Hashtbl.hash (bytes, trip) mod (String.length bytes + 1)

(* --- in-memory block device ---------------------------------------- *)

let mem ?(wal = "") ?(snap = "") () =
  let buffers preload =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (blob, contents) ->
        let b = Buffer.create (String.length contents + 256) in
        Buffer.add_string b contents;
        Hashtbl.replace tbl blob b)
      preload;
    tbl
  in
  let durable = buffers [ (wal_blob, wal); (snap_blob, snap) ] in
  let pending = buffers [ (wal_blob, ""); (snap_blob, "") ] in
  let buf tbl blob =
    match Hashtbl.find_opt tbl blob with
    | Some b -> b
    | None ->
      let b = Buffer.create 256 in
      Hashtbl.replace tbl blob b;
      b
  in
  let append blob data =
    let point = append_point blob in
    if Fault.fires point then begin
      (* Power failure mid-write: everything buffered for this blob,
         including the record being appended, races to the medium and
         an arbitrary prefix wins. *)
      let p = buf pending blob in
      let bytes = Buffer.contents p ^ data in
      Buffer.clear p;
      let keep = torn_len ~bytes ~trip:(Fault.trips point) in
      Buffer.add_substring (buf durable blob) bytes 0 keep;
      raise (Crash (Fault.name point))
    end;
    Buffer.add_string (buf pending blob) data
  in
  let fsync blob =
    if blob = wal_blob && Fault.fires p_wal_fsync then begin
      (* Power failure before the flush reached the medium: the pending
         bytes are simply gone. *)
      Buffer.clear (buf pending blob);
      raise (Crash (Fault.name p_wal_fsync))
    end;
    let p = buf pending blob in
    Buffer.add_buffer (buf durable blob) p;
    Buffer.clear p
  in
  let read blob = Buffer.contents (buf durable blob) in
  let reset blob =
    Buffer.clear (buf durable blob);
    Buffer.clear (buf pending blob)
  in
  let truncate blob keep =
    let b = buf durable blob in
    if keep < Buffer.length b then Buffer.truncate b keep
  in
  { store_name = "mem"; read; append; fsync; reset; truncate }

(* --- file-backed store ---------------------------------------------- *)

let file ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path blob = Filename.concat dir (blob ^ ".bin") in
  let pending = Hashtbl.create 4 in
  let buf blob =
    match Hashtbl.find_opt pending blob with
    | Some b -> b
    | None ->
      let b = Buffer.create 256 in
      Hashtbl.replace pending blob b;
      b
  in
  let write_out blob data =
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (path blob) in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)
  in
  let append blob data =
    let point = append_point blob in
    if Fault.fires point then begin
      let p = buf blob in
      let bytes = Buffer.contents p ^ data in
      Buffer.clear p;
      let keep = torn_len ~bytes ~trip:(Fault.trips point) in
      write_out blob (String.sub bytes 0 keep);
      raise (Crash (Fault.name point))
    end;
    Buffer.add_string (buf blob) data
  in
  let fsync blob =
    if blob = wal_blob && Fault.fires p_wal_fsync then begin
      Buffer.clear (buf blob);
      raise (Crash (Fault.name p_wal_fsync))
    end;
    let p = buf blob in
    if Buffer.length p > 0 then write_out blob (Buffer.contents p);
    Buffer.clear p
  in
  let read blob =
    let pa = path blob in
    if Sys.file_exists pa then begin
      let ic = open_in_bin pa in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    end
    else ""
  in
  let reset blob =
    (* Atomic truncation: a crash between writing the empty temp file
       and the rename leaves either the old blob or the new empty one,
       never a half-truncated file. *)
    let tmp = path blob ^ ".tmp" in
    let oc = open_out_bin tmp in
    close_out oc;
    Sys.rename tmp (path blob);
    Buffer.clear (buf blob)
  in
  let truncate blob keep =
    (* Same atomic-rename discipline as [reset]: the durable file is
       either the old bytes or the kept prefix, never a partial copy. *)
    let contents = read blob in
    if keep < String.length contents then begin
      let tmp = path blob ^ ".tmp" in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (String.sub contents 0 keep));
      Sys.rename tmp (path blob)
    end
  in
  { store_name = "file:" ^ dir; read; append; fsync; reset; truncate }
