exception Crash of string

let () =
  Printexc.register_printer (function
    | Crash point -> Some (Printf.sprintf "Persist.Store.Crash(%s)" point)
    | _ -> None)

type t = {
  store_name : string;
  read : string -> string;
  append : string -> string -> unit;
  fsync : string -> unit;
  reset : string -> unit;
  truncate : string -> int -> unit;
  replace : string -> string -> unit;
  power_fail : unit -> unit;
}

let wal_blob = "wal"
let snap_blob = "snap"
let seg_blob = "segs"

let read t blob = t.read blob

(* Durability choke points: every WAL append/fsync and snapshot write in
   the system funnels through these wrappers, so one span here profiles
   the whole persistence path. The span is exception-safe — a [Crash]
   raised by an injected torn write still closes it. Handles are hoisted
   so the per-append cost is the span itself, not a registry lookup. *)
let h_wal_append = Obs.Profile.handle "wal.append"
let h_wal_fsync = Obs.Profile.handle "wal.fsync"
let h_snap_write = Obs.Profile.handle "snapshot.write"
let h_snap_fsync = Obs.Profile.handle "snapshot.fsync"
let h_seg_write = Obs.Profile.handle "segment.write"
let h_seg_fsync = Obs.Profile.handle "segment.fsync"

let append t blob data =
  Obs.Profile.span_h
    (if blob = wal_blob then h_wal_append
     else if blob = seg_blob then h_seg_write
     else h_snap_write)
    (fun () -> t.append blob data)

let fsync t blob =
  Obs.Profile.span_h
    (if blob = wal_blob then h_wal_fsync
     else if blob = seg_blob then h_seg_fsync
     else h_snap_fsync)
    (fun () -> t.fsync blob)

let reset t blob = t.reset blob
let truncate t blob keep = t.truncate blob keep
let replace t blob contents = t.replace blob contents

(* Power loss takes the whole device's write cache with it, not just
   the blob whose operation was in flight: every crash path must drop
   every pending buffer, or stale unacknowledged bytes from before the
   crash would be flushed into the stream by a later fsync. *)
let power_fail t = t.power_fail ()

(* Power can fail while a write is in flight: the medium keeps an
   arbitrary prefix of the bytes being flushed (a torn sector). The
   prefix length is a pure function of the bytes and the trip count so
   chaos runs are replayable from their fault-plan seed. *)
let p_wal_append = Fault.register "wal.append"
let p_wal_fsync = Fault.register "wal.fsync"
let p_snapshot_write = Fault.register "snapshot.write"
let p_segment_write = Fault.register "segment.write"

(* Power failure between issuing a rename (or creating a file) and the
   directory entry reaching the medium: the new name simply never
   becomes visible. Firing this point models the un-fsynced-directory
   window; the durable contents stay whatever they were before. *)
let p_dir_fsync = Fault.register "store.dir_fsync"

let c_dir_fsync = Obs.Metrics.counter "store.dir_fsync"

let append_point blob =
  if blob = wal_blob then p_wal_append
  else if blob = seg_blob then p_segment_write
  else p_snapshot_write

let torn_len ~bytes ~trip = Hashtbl.hash (bytes, trip) mod (String.length bytes + 1)

(* --- in-memory block device ---------------------------------------- *)

let mem ?(wal = "") ?(snap = "") () =
  let buffers preload =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (blob, contents) ->
        let b = Buffer.create (String.length contents + 256) in
        Buffer.add_string b contents;
        Hashtbl.replace tbl blob b)
      preload;
    tbl
  in
  let durable = buffers [ (wal_blob, wal); (snap_blob, snap) ] in
  let pending = buffers [ (wal_blob, ""); (snap_blob, "") ] in
  let buf tbl blob =
    match Hashtbl.find_opt tbl blob with
    | Some b -> b
    | None ->
      let b = Buffer.create 256 in
      Hashtbl.replace tbl blob b;
      b
  in
  let power_fail () = Hashtbl.iter (fun _ b -> Buffer.clear b) pending in
  let append blob data =
    let point = append_point blob in
    if Fault.fires point then begin
      (* Power failure mid-write: everything buffered for this blob,
         including the record being appended, races to the medium and
         an arbitrary prefix wins; every other blob's cache is gone. *)
      let p = buf pending blob in
      let bytes = Buffer.contents p ^ data in
      let keep = torn_len ~bytes ~trip:(Fault.trips point) in
      power_fail ();
      Buffer.add_substring (buf durable blob) bytes 0 keep;
      raise (Crash (Fault.name point))
    end;
    Buffer.add_string (buf pending blob) data
  in
  let fsync blob =
    if blob = wal_blob && Fault.fires p_wal_fsync then begin
      (* Power failure before the flush reached the medium: the pending
         bytes are simply gone. *)
      power_fail ();
      raise (Crash (Fault.name p_wal_fsync))
    end;
    let p = buf pending blob in
    Buffer.add_buffer (buf durable blob) p;
    Buffer.clear p
  in
  let read blob = Buffer.contents (buf durable blob) in
  let dir_barrier _blob =
    (* The mem device has no directory, but the rename-durability window
       is the same: if power fails before the "rename" is durable, the
       durable bytes stay exactly what they were. *)
    if Fault.fires p_dir_fsync then begin
      power_fail ();
      raise (Crash (Fault.name p_dir_fsync))
    end
  in
  let reset blob =
    dir_barrier blob;
    Buffer.clear (buf durable blob);
    Buffer.clear (buf pending blob)
  in
  let truncate blob keep =
    dir_barrier blob;
    let b = buf durable blob in
    if keep < Buffer.length b then Buffer.truncate b keep
  in
  let replace blob contents =
    dir_barrier blob;
    let b = buf durable blob in
    Buffer.clear b;
    Buffer.add_string b contents;
    Buffer.clear (buf pending blob)
  in
  { store_name = "mem"; read; append; fsync; reset; truncate; replace; power_fail }

(* --- file-backed store ---------------------------------------------- *)

let file ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path blob = Filename.concat dir (blob ^ ".bin") in
  let pending = Hashtbl.create 4 in
  let buf blob =
    match Hashtbl.find_opt pending blob with
    | Some b -> b
    | None ->
      let b = Buffer.create 256 in
      Hashtbl.replace pending blob b;
      b
  in
  let dir_fsync () =
    (* Renames and file creation mutate the directory, not the file;
       without this barrier a freshly checkpointed blob can vanish on
       power loss even though its own bytes were flushed. *)
    Obs.Metrics.incr c_dir_fsync;
    let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  in
  let write_out blob data =
    (* Durable means fsynced: closing the channel only hands the bytes
       to the OS page cache, which power loss takes with it. *)
    let fresh = not (Sys.file_exists (path blob)) in
    let fd =
      Unix.openfile (path blob) [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let b = Bytes.of_string data in
        let n = Bytes.length b in
        let written = ref 0 in
        while !written < n do
          written := !written + Unix.write fd b !written (n - !written)
        done;
        Unix.fsync fd);
    if fresh then dir_fsync ()
  in
  let power_fail () = Hashtbl.iter (fun _ b -> Buffer.clear b) pending in
  let append blob data =
    let point = append_point blob in
    if Fault.fires point then begin
      let p = buf blob in
      let bytes = Buffer.contents p ^ data in
      let keep = torn_len ~bytes ~trip:(Fault.trips point) in
      power_fail ();
      write_out blob (String.sub bytes 0 keep);
      raise (Crash (Fault.name point))
    end;
    Buffer.add_string (buf blob) data
  in
  let fsync blob =
    if blob = wal_blob && Fault.fires p_wal_fsync then begin
      power_fail ();
      raise (Crash (Fault.name p_wal_fsync))
    end;
    let p = buf blob in
    if Buffer.length p > 0 then write_out blob (Buffer.contents p);
    Buffer.clear p
  in
  let read blob =
    let pa = path blob in
    if Sys.file_exists pa then begin
      let ic = open_in_bin pa in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    end
    else ""
  in
  let rename_in blob tmp =
    (* A crash before the rename is durable leaves the old name intact
       and the tmp file as garbage — the new contents never happened. *)
    if Fault.fires p_dir_fsync then begin
      (try Sys.remove tmp with Sys_error _ -> ());
      power_fail ();
      raise (Crash (Fault.name p_dir_fsync))
    end;
    Sys.rename tmp (path blob);
    dir_fsync ()
  in
  let reset blob =
    (* Atomic truncation: a crash between writing the empty temp file
       and the rename leaves either the old blob or the new empty one,
       never a half-truncated file. *)
    let tmp = path blob ^ ".tmp" in
    let oc = open_out_bin tmp in
    close_out oc;
    rename_in blob tmp;
    Buffer.clear (buf blob)
  in
  let truncate blob keep =
    (* Same atomic-rename discipline as [reset]: the durable file is
       either the old bytes or the kept prefix, never a partial copy. *)
    let contents = read blob in
    if keep < String.length contents then begin
      let tmp = path blob ^ ".tmp" in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (String.sub contents 0 keep));
      rename_in blob tmp
    end
  in
  let replace blob contents =
    let tmp = path blob ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents);
    rename_in blob tmp
  in
  { store_name = "file:" ^ dir; read; append; fsync; reset; truncate; replace; power_fail }
