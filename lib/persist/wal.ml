type read_result = {
  records : (int * string) list;
  valid_bytes : int;
  truncated : bool;
}

(* body = i64 seq ^ payload, so a valid body is at least 8 bytes. *)
let frame ~seq payload =
  let body_len = 8 + String.length payload in
  let b = Buffer.create (body_len + 8) in
  Wire.u32 b body_len;
  (* CRC over the body; computed on a throwaway buffer so the frame is
     assembled in one pass. *)
  let body = Buffer.create body_len in
  Wire.i64 body seq;
  Buffer.add_string body payload;
  let body = Buffer.contents body in
  Wire.u32 b (Crc32.digest body);
  Buffer.add_string b body;
  Buffer.contents b

let u32_at data pos =
  Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string data) pos) land 0xFFFFFFFF

let i64_at data pos = Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string data) pos)

let parse data =
  let n = String.length data in
  let rec go pos acc =
    if n - pos < 8 then finish pos acc
    else
      let len = u32_at data pos in
      let crc = u32_at data (pos + 4) in
      if len < 8 || len > n - pos - 8 then finish pos acc
      else if Crc32.digest_sub data ~pos:(pos + 8) ~len <> crc then finish pos acc
      else
        let seq = i64_at data (pos + 8) in
        let payload = String.sub data (pos + 16) (len - 8) in
        go (pos + 8 + len) ((seq, payload) :: acc)
  and finish pos acc =
    { records = List.rev acc; valid_bytes = pos; truncated = pos < n }
  in
  go 0 []

let append store ~blob ~seq payload = Store.append store blob (frame ~seq payload)
let read store ~blob = parse (Store.read store blob)
let reset store ~blob = Store.reset store blob

let compact store ~blob ~upto =
  let { records; _ } = read store ~blob in
  let keep = List.filter (fun (seq, _) -> seq > upto) records in
  let n_keep = List.length keep and n_all = List.length records in
  if n_keep = 0 then begin
    (* Everything (and any torn tail) is covered by the checkpoint. *)
    if Store.read store blob <> "" then Store.reset store blob
  end
  else if n_keep < n_all then begin
    (* Rewrite the suffix atomically: a crash leaves either the full log
       or the compacted one, both of which recovery handles. *)
    let b = Buffer.create 4096 in
    List.iter (fun (seq, payload) -> Buffer.add_string b (frame ~seq payload)) keep;
    Store.replace store blob (Buffer.contents b)
  end;
  n_all - n_keep
