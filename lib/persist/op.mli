(** Logical redo records: one per committed mutating Monitor API call.

    The WAL is a *logical* log — it records the operation, not its
    effects. Replaying the operations through the normal Monitor API
    against the restored snapshot reproduces the exact tree, because
    every id the monitor hands out (capability ids, domain ids) comes
    from a deterministic counter that the snapshot restores. The one
    exception is [Seal], whose measurement hashes memory contents that
    are not durable: the record carries the resulting digest, and
    replay installs it directly.

    Types here are deliberately neutral (ints, pairs, strings) so the
    persist layer does not depend on the monitor's modules; the monitor
    owns the conversions. *)

type rights = {
  r_read : bool;
  r_write : bool;
  r_exec : bool;
  r_share : bool;
  r_grant : bool;
}

type t =
  | Create_domain of { caller : int; name : string; kind : int }
  | Set_entry_point of { caller : int; domain : int; entry : int }
  | Set_flush_policy of { caller : int; domain : int; flush : bool }
  | Mark_measured of { caller : int; domain : int; base : int; len : int }
  | Seal of { caller : int; domain : int; measurement : string }
  | Destroy_domain of { caller : int; domain : int }
  | Share of {
      caller : int;
      cap : int;
      to_ : int;
      rights : rights;
      cleanup : int;
      sub : (int * int) option; (** (base, len) subrange, if any. *)
    }
  | Grant of { caller : int; cap : int; to_ : int; rights : rights; cleanup : int }
  | Split of { caller : int; cap : int; at : int }
  | Carve of { caller : int; cap : int; base : int; len : int }
  | Revoke of { caller : int; cap : int }
  | Call of { core : int; target : int }
  | Ret of { core : int }
  | Timer_tick of { core : int }

val rights_bits : rights -> int
(** 5-bit encoding (read | write≪1 | exec≪2 | share≪3 | grant≪4),
    shared with the snapshot codec. *)

val rights_of_bits : int -> rights
(** @raise Wire.Corrupt if any bit above the low five is set. *)

val encode : t -> string

val decode : string -> t
(** @raise Wire.Corrupt on malformed input. *)

val pp : Format.formatter -> t -> unit
