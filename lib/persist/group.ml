type t = {
  store : Store.t;
  blob : string;
  max_batch : int;
  latency_bound : int;
  now : unit -> int;
  instrument : bool;
  mutable pending : int;
  mutable first_stamp : int;
  mutable durable_seq : int;
  mutable tail_seq : int;
}

let h_batch = Obs.Metrics.histogram "persist.group.batch"
let h_wait = Obs.Metrics.histogram "persist.group.flush_wait"
let c_flush = Obs.Metrics.counter "persist.group.flushes"

let create ?(max_batch = 1) ?(latency_bound = max_int) ?(now = fun () -> 0) store ~blob
    ~durable_seq =
  let max_batch = max 1 max_batch in
  {
    store;
    blob;
    max_batch;
    latency_bound;
    now;
    (* A queue that never batches (max_batch 1, no latency bound) has no
       amortization to report; skipping its metrics keeps the per-op
       fsync path exactly as cheap as before group commit existed. *)
    instrument = max_batch > 1 || latency_bound < max_int;
    pending = 0;
    first_stamp = 0;
    durable_seq;
    tail_seq = durable_seq;
  }

let pending t = t.pending
let durable_seq t = t.durable_seq
let tail_seq t = t.tail_seq

let flush t =
  if t.pending > 0 then begin
    let batch = t.pending in
    (* Clear before the fsync: if the injected power failure fires, the
       pending records are gone from the medium and this queue's monitor
       is dead — recovery starts from the durable prefix. *)
    t.pending <- 0;
    Store.fsync t.store t.blob;
    t.durable_seq <- t.tail_seq;
    if t.instrument then begin
      Obs.Metrics.incr c_flush;
      Obs.Metrics.observe h_batch batch;
      Obs.Metrics.observe h_wait (t.now () - t.first_stamp)
    end
  end

let append t ~seq payload =
  if t.pending = 0 && t.instrument then t.first_stamp <- t.now ();
  Wal.append t.store ~blob:t.blob ~seq payload;
  t.pending <- t.pending + 1;
  t.tail_seq <- seq;
  if
    t.pending >= t.max_batch
    || (t.latency_bound < max_int && t.now () - t.first_stamp >= t.latency_bound)
  then flush t

let note_durable t ~seq =
  if seq > t.tail_seq then t.tail_seq <- seq;
  if seq > t.durable_seq then t.durable_seq <- seq;
  (* A checkpoint covering the whole tail retires the batch: the WAL
     records it subsumes are about to be compacted away. *)
  if t.durable_seq >= t.tail_seq then t.pending <- 0
