(** Length-prefixed, CRC32-framed record log over a {!Store} blob.

    Frame layout: [u32 body-length | u32 crc32(body) | body], where
    [body = i64 sequence-number ^ payload]. Both the write-ahead log
    and the snapshot stream use this framing.

    Reading truncates at the first record that cannot be trusted — a
    header that does not fit, a length pointing past the durable bytes,
    or a CRC mismatch. Everything before the cut is returned; everything
    from the cut on is reported ({!read_result.truncated}) and ignored.
    A torn tail is an expected artifact of power loss, never an error:
    recovery proceeds from the valid prefix. *)

type read_result = {
  records : (int * string) list; (** (sequence number, payload), log order. *)
  valid_bytes : int; (** Length of the trusted prefix. *)
  truncated : bool; (** Bytes beyond the trusted prefix were discarded. *)
}

val frame : seq:int -> string -> string
(** One framed record, ready to append. *)

val parse : string -> read_result
(** Decode a blob's durable bytes. Total: never raises. *)

val append : Store.t -> blob:string -> seq:int -> string -> unit
(** Frame and append one record (durable only after [Store.fsync]). *)

val read : Store.t -> blob:string -> read_result
val reset : Store.t -> blob:string -> unit

val compact : Store.t -> blob:string -> upto:int -> int
(** [compact store ~blob ~upto] durably drops every record with
    sequence number [<= upto] — the checkpoint already covers them —
    and returns the number of records dropped. If every record is
    covered the blob is reset (which also clears any torn tail); if
    only a prefix is covered the surviving suffix is rewritten with an
    atomic {!Store.replace}. May raise {!Store.Crash} at the
    [store.dir_fsync] fault point. *)
