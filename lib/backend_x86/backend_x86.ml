type tlb_strategy = Full_shootdown | Asid_flush

type state = {
  machine : Hw.Machine.t;
  tlb_strategy : tlb_strategy;
  mktme : Hw.Mktme.t option;
  keyids : (Tyche.Domain.id, Hw.Mktme.keyid) Hashtbl.t;
  confidential : (Tyche.Domain.id, unit) Hashtbl.t;
  mutable next_keyid : int;
  epts : (Tyche.Domain.id, Hw.Ept.t) Hashtbl.t;
  eptp_lists : (Tyche.Domain.id, Hw.Ept.Eptp_list.t) Hashtbl.t;
  domain_mem : (Tyche.Domain.id, (Hw.Addr.Range.t * Hw.Perm.t) list ref) Hashtbl.t;
  domain_devices : (Tyche.Domain.id, int list ref) Hashtbl.t;
  mutable fast : int;
  mutable trap : int;
  (* Hardware undo journal (see Backend_riscv for the discipline):
     while [journaling], every EPT/MKTME/IOMMU/table mutation prepends
     its inverse; destructive clean-ups (zeroing) wait in [deferred]
     until commit. TLB and cache flushes need no undo — over-flushing
     is always safe. *)
  mutable journal : (unit -> unit) list;
  mutable journaling : bool;
  mutable deferred : (unit -> unit) list;
}

(* Associates the opaque backend records handed to the monitor with
   their internal state, for test/bench introspection. *)
let registry : (Tyche.Backend_intf.t * state) list ref = ref []

let state_of backend =
  match List.find_opt (fun (b, _) -> b == backend) !registry with
  | Some (_, s) -> s
  | None -> invalid_arg "Backend_x86: not a backend created by this module"

(* --- transactions --------------------------------------------------- *)

let record s undo = s.journal <- undo :: s.journal

let defer s cleanup = if s.journaling then s.deferred <- cleanup :: s.deferred else cleanup ()

let txn_begin s =
  if s.journaling then invalid_arg "Backend_x86.txn_begin: transaction already open";
  s.journal <- [];
  s.deferred <- [];
  s.journaling <- true;
  let fast = s.fast and trap = s.trap in
  record s (fun () ->
    s.fast <- fast;
    s.trap <- trap)

let txn_commit s =
  let cleanups = List.rev s.deferred in
  s.journaling <- false;
  s.journal <- [];
  s.deferred <- [];
  List.iter (fun f -> f ()) cleanups

let txn_rollback s =
  let undos = s.journal in
  s.journaling <- false;
  s.journal <- [];
  s.deferred <- [];
  (* Undo closures replay EPT/IOMMU writes; they must not re-trip the
     fault plan that caused the rollback. *)
  Fault.suspend (fun () -> List.iter (fun f -> f ()) undos)

let fault_error = function
  | Fault.Injected { point; trip } ->
    Printf.sprintf "fault injected at %s (trip %d)" point trip
  | e -> raise e

let mem_of s domain =
  match Hashtbl.find_opt s.domain_mem domain with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add s.domain_mem domain l;
    l

let devices_of s domain =
  match Hashtbl.find_opt s.domain_devices domain with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add s.domain_devices domain l;
    l

let journal_mem s domain =
  if s.journaling then begin
    let l = mem_of s domain in
    let old = !l in
    record s (fun () -> l := old)
  end

let journal_devices s domain =
  if s.journaling then begin
    let l = devices_of s domain in
    let old = !l in
    record s (fun () -> l := old)
  end

let journal_iommu s device =
  if s.journaling then begin
    let iommu = s.machine.Hw.Machine.iommu in
    let ws = Hw.Iommu.windows iommu ~device in
    record s (fun () -> Hw.Iommu.set_windows iommu ~device ws)
  end

let dma_perm perm = Hw.Perm.inter perm Hw.Perm.rw

(* MKTME: protect memory attached to a confidential domain under its
   key; memory attached to anyone else reverts to plaintext-on-bus. *)
let mktme_on_attach s domain range =
  match s.mktme with
  | None -> ()
  | Some controller ->
    if Hashtbl.mem s.confidential domain then begin
      match Hashtbl.find_opt s.keyids domain with
      | Some keyid ->
        if s.journaling then record s (fun () -> Hw.Mktme.unprotect controller range);
        Hw.Mktme.protect controller ~keyid range
      | None ->
        if s.next_keyid < Hw.Mktme.slots controller then begin
          let keyid = s.next_keyid in
          if s.journaling then
            record s (fun () ->
              Hw.Mktme.unprotect controller range;
              Hashtbl.remove s.keyids domain;
              s.next_keyid <- keyid);
          s.next_keyid <- keyid + 1;
          Hashtbl.replace s.keyids domain keyid;
          Hw.Mktme.protect controller ~keyid range
        end
        (* slots exhausted: the domain runs unencrypted, like real parts *)
    end
    else
      (* Freshly attached plaintext memory was not under a key: undoing
         this unprotect is a no-op, so none is journaled. *)
      Hw.Mktme.unprotect controller range

let mktme_on_detach s range =
  match s.mktme with
  | None -> ()
  | Some controller ->
    if s.journaling then begin
      match Hw.Mktme.keyid_of controller (Hw.Addr.Range.base range) with
      | Some keyid -> record s (fun () -> Hw.Mktme.protect controller ~keyid range)
      | None -> ()
    end;
    Hw.Mktme.unprotect controller range

(* Hoisted span handles: one registry lookup per process, not per
   hardware write (see {!Obs.Profile.handle}). *)
let h_ept_map = Obs.Profile.handle "ept.map"
let h_ept_unmap = Obs.Profile.handle "ept.unmap"
let h_iommu_grant = Obs.Profile.handle "iommu.grant"
let h_iommu_revoke = Obs.Profile.handle "iommu.revoke"
let bk_x86 = Obs.intern "x86_64-vtx"

let attach_memory s domain range perm =
  Obs.Profile.span_h ~domain ~backend:bk_x86 h_ept_map @@ fun () ->
  match Hashtbl.find_opt s.epts domain with
  | None -> Error (Printf.sprintf "no EPT for domain %d" domain)
  | Some ept ->
    if s.journaling then begin
      (* Eagerly capture each page's prior entry: the hypervisor may map
         non-identity gpas, so the undo cannot be rebuilt from the mem
         list. A mid-range injected fault leaves a prefix mapped; the
         undo handles pages we never reached (prior None, still None). *)
      let base = Hw.Addr.Range.base range and limit = Hw.Addr.Range.limit range in
      let rec pages gpa acc =
        if gpa >= limit then acc
        else pages (gpa + Hw.Addr.page_size) ((gpa, Hw.Ept.entry_at ept ~gpa) :: acc)
      in
      let prior = pages base [] in
      record s (fun () ->
        List.iter
          (fun (gpa, old) ->
            match old with
            | Some (hpa, perm) -> Hw.Ept.map_page ept ~gpa ~hpa perm
            | None -> if Hw.Ept.entry_at ept ~gpa <> None then Hw.Ept.unmap_page ept ~gpa)
          prior)
    end;
    Hw.Ept.map_range ept ~gpa:(Hw.Addr.Range.base range) range perm;
    mktme_on_attach s domain range;
    journal_mem s domain;
    let mem = mem_of s domain in
    mem := (range, perm) :: !mem;
    List.iter
      (fun bdf ->
        journal_iommu s bdf;
        Hw.Iommu.grant s.machine.Hw.Machine.iommu ~device:bdf range (dma_perm perm))
      !(devices_of s domain);
    Ok ()

let flush_tlb_after_detach s domain =
  match s.tlb_strategy with
  | Full_shootdown ->
    let remote = Array.length s.machine.Hw.Machine.cores - 1 in
    Hw.Tlb.shootdown s.machine.Hw.Machine.tlb ~remote_cores:remote
  | Asid_flush -> Hw.Tlb.flush_asid s.machine.Hw.Machine.tlb ~asid:domain

(* Mark what the victim leaves behind — its pages, its resident cache
   lines, its live translations — with its id before any clean-up runs.
   The clean-up primitives the policy promises (deferred zero, cache
   flush, TLB shootdown) erase exactly the taint they clean, so
   whatever taint survives the transaction is clean-up that did not
   happen — which the access paths and the fsck taint pass then catch
   (see Hw.Taint). Must run before the unmap/flush below: the TLB
   victim set has to be captured while the entries still exist. *)
let taint_detach s domain range cleanup =
  let m = s.machine in
  let tt = m.Hw.Machine.taint in
  let u_pages =
    Hw.Taint.taint_pages tt range ~prior:domain
      ~guarded:(Cap.Revocation.zeroes_memory cleanup)
  in
  let u_lines =
    Hw.Taint.taint_lines tt
      (Hw.Cache.resident_lines_in m.Hw.Machine.cache range)
      ~prior:domain
      ~guarded:(Cap.Revocation.flushes_cache cleanup)
  in
  let u_tlb =
    Hw.Taint.taint_tlb tt
      (Hw.Tlb.entries_into m.Hw.Machine.tlb ~asid:domain range)
      ~prior:domain
  in
  if s.journaling then
    record s (fun () ->
      Hw.Taint.undo tt u_tlb;
      Hw.Taint.undo tt u_lines;
      Hw.Taint.undo tt u_pages)

let detach_memory s domain range cleanup =
  Obs.Profile.span_h ~domain ~backend:bk_x86 h_ept_unmap @@ fun () ->
  match Hashtbl.find_opt s.epts domain with
  | None -> Error (Printf.sprintf "no EPT for domain %d" domain)
  | Some ept ->
    taint_detach s domain range cleanup;
    if s.journaling then begin
      let victims = Hw.Ept.mappings_to ept range in
      record s (fun () ->
        List.iter (fun (gpa, hpa, perm) -> Hw.Ept.map_page ept ~gpa ~hpa perm) victims)
    end;
    let (_ : int) = Hw.Ept.unmap_hpa_range ept range in
    mktme_on_detach s range;
    flush_tlb_after_detach s domain;
    List.iter
      (fun bdf ->
        journal_iommu s bdf;
        Hw.Iommu.revoke_range s.machine.Hw.Machine.iommu ~device:bdf range)
      !(devices_of s domain);
    journal_mem s domain;
    let mem = mem_of s domain in
    mem :=
      List.concat_map
        (fun (r, perm) ->
          List.map (fun piece -> (piece, perm)) (Hw.Addr.Range.subtract r range))
        !mem;
    (* Zeroing is destructive: stage it so a later failure in the same
       transaction never needs to un-zero memory. *)
    defer s (fun () ->
      Cap.Revocation.apply cleanup ~mem:s.machine.Hw.Machine.mem
        ~cache:s.machine.Hw.Machine.cache ~counter:s.machine.Hw.Machine.counter range);
    Ok ()

let attach_device s domain bdf =
  Obs.Profile.span_h ~domain ~backend:bk_x86 h_iommu_grant @@ fun () ->
  journal_devices s domain;
  let devices = devices_of s domain in
  devices := bdf :: !devices;
  journal_iommu s bdf;
  List.iter
    (fun (range, perm) ->
      Hw.Iommu.grant s.machine.Hw.Machine.iommu ~device:bdf range (dma_perm perm))
    !(mem_of s domain);
  Ok ()

let detach_device s domain bdf =
  Obs.Profile.span_h ~domain ~backend:bk_x86 h_iommu_revoke @@ fun () ->
  journal_iommu s bdf;
  if s.journaling then begin
    let interrupts = s.machine.Hw.Machine.interrupts in
    let vectors = Hw.Interrupt.permitted interrupts ~device:bdf in
    record s (fun () ->
      List.iter (fun vector -> Hw.Interrupt.permit interrupts ~device:bdf ~vector) vectors)
  end;
  Hw.Iommu.revoke_all s.machine.Hw.Machine.iommu ~device:bdf;
  Hw.Interrupt.revoke_device s.machine.Hw.Machine.interrupts ~device:bdf;
  journal_devices s domain;
  let devices = devices_of s domain in
  devices := List.filter (fun d -> d <> bdf) !devices;
  Ok ()

let apply_effect_unsafe s = function
  | Cap.Captree.Attach { domain; resource = Cap.Resource.Memory r; perm } ->
    attach_memory s domain r perm
  | Cap.Captree.Detach { domain; resource = Cap.Resource.Memory r; cleanup } ->
    detach_memory s domain r cleanup
  | Cap.Captree.Attach { domain; resource = Cap.Resource.Device bdf; _ } ->
    attach_device s domain bdf
  | Cap.Captree.Detach { domain; resource = Cap.Resource.Device bdf; _ } ->
    detach_device s domain bdf
  | Cap.Captree.Attach { resource = Cap.Resource.Cpu_core _; _ }
  | Cap.Captree.Detach { resource = Cap.Resource.Cpu_core _; _ } ->
    (* Core eligibility is checked by the monitor at transition time. *)
    Ok ()

let apply_effect s eff =
  try apply_effect_unsafe s eff with Fault.Injected _ as e -> Error (fault_error e)

let validate_attach _domain resource =
  match resource with
  | Cap.Resource.Memory r ->
    if Hw.Addr.Range.is_page_aligned r then Ok ()
    else Error "EPT backend requires page-aligned memory ranges"
  | Cap.Resource.Cpu_core _ | Cap.Resource.Device _ -> Ok ()

let mode_for d =
  match Tyche.Domain.kind d with
  | Tyche.Domain.Os | Tyche.Domain.Confidential_vm ->
    Hw.Cpu.X86 { ring = 0; vmx_root = false }
  | Tyche.Domain.Sandbox | Tyche.Domain.Enclave | Tyche.Domain.Io_domain
  | Tyche.Domain.Remote ->
    Hw.Cpu.X86 { ring = 3; vmx_root = false }

let enter s ~core d =
  let id = Tyche.Domain.id d in
  if s.journaling then begin
    let old_ept = Hw.Cpu.active_ept core
    and old_asid = Hw.Cpu.asid core
    and old_mode = Hw.Cpu.mode core in
    record s (fun () ->
      Hw.Cpu.set_active_ept core old_ept;
      Hw.Cpu.set_asid core old_asid;
      Hw.Cpu.set_mode core old_mode)
  end;
  Hw.Cpu.set_active_ept core (Hashtbl.find_opt s.epts id);
  Hw.Cpu.set_asid core (Tyche.Domain.asid d);
  Hw.Cpu.set_mode core (mode_for d)

let transition s ~core ~from_ ~to_ ~flush_microarch =
  let counter = s.machine.Hw.Machine.counter in
  let from_id = Tyche.Domain.id from_ and to_id = Tyche.Domain.id to_ in
  let from_list = Hashtbl.find_opt s.eptp_lists from_id in
  let to_ept = Hashtbl.find_opt s.epts to_id in
  let fast_path_ready =
    (not flush_microarch)
    && (match from_list, to_ept with
       | Some l, Some e -> Hw.Ept.Eptp_list.slot_of l e <> None
       | _ -> false)
  in
  let path =
    if fast_path_ready then begin
      Hw.Cycles.charge counter Hw.Cycles.Cost.vmfunc;
      s.fast <- s.fast + 1;
      Tyche.Backend_intf.Fast_switch
    end
    else begin
      Hw.Cycles.charge counter Hw.Cycles.Cost.vmcall_roundtrip;
      s.trap <- s.trap + 1;
      if flush_microarch then begin
        (* Everything the outgoing domain left in the caches and the
           TLB is promised gone by this policy: taint it guarded, then
           flush — surviving taint means the flush regressed. *)
        let m = s.machine in
        let tt = m.Hw.Machine.taint in
        let u_lines =
          Hw.Taint.taint_lines tt
            (Hw.Cache.lines_of_tag m.Hw.Machine.cache ~tag:from_id)
            ~prior:from_id ~guarded:true
        in
        let u_tlb =
          Hw.Taint.taint_tlb tt
            (Hw.Tlb.entries_into m.Hw.Machine.tlb ~asid:from_id
               (Hw.Physmem.full_range m.Hw.Machine.mem))
            ~prior:from_id
        in
        if s.journaling then
          record s (fun () ->
            Hw.Taint.undo tt u_tlb;
            Hw.Taint.undo tt u_lines);
        Hw.Cache.flush_all s.machine.Hw.Machine.cache;
        Hw.Tlb.flush_asid s.machine.Hw.Machine.tlb ~asid:from_id
      end
      else begin
        (* First trap between this pair: the monitor pre-registers the
           target EPT in the source's EPTP list so later transitions can
           take the VMFUNC path (ablation a2: silently degrades to the
           trap path forever once the 512-entry list is full). A
           registration is not rolled back with a failed transaction:
           keeping it is semantics-preserving (the pair still exists)
           and not on the invariant surface. *)
        match from_list, to_ept with
        | Some l, Some e -> ignore (Hw.Ept.Eptp_list.register l e : int option)
        | _ -> ()
      end;
      Tyche.Backend_intf.Trap_roundtrip
    end
  in
  enter s ~core to_;
  (* No fallible hardware step on this path: EPT switching cannot run
     out of resources the way PMP reprogramming can. *)
  Ok path

let domain_reaches s d range =
  match Hashtbl.find_opt s.epts (Tyche.Domain.id d) with
  | Some ept -> Hw.Ept.reaches_hpa_range ept range
  | None -> false

let create machine ?(tlb_strategy = Full_shootdown) ?mktme () =
  if machine.Hw.Machine.arch <> Hw.Cpu.X86_64 then
    invalid_arg "Backend_x86.create: machine is not x86_64";
  let s =
    { machine;
      tlb_strategy;
      mktme;
      keyids = Hashtbl.create 16;
      confidential = Hashtbl.create 16;
      next_keyid = 0;
      epts = Hashtbl.create 16;
      eptp_lists = Hashtbl.create 16;
      domain_mem = Hashtbl.create 16;
      domain_devices = Hashtbl.create 16;
      fast = 0;
      trap = 0;
      journal = [];
      journaling = false;
      deferred = [] }
  in
  let backend =
    { Tyche.Backend_intf.backend_name = "x86_64-vtx";
      domain_created =
        (fun d ->
          let id = Tyche.Domain.id d in
          if s.journaling then
            (* A fresh domain has no prior backend state: undo removes
               everything this call creates. *)
            record s (fun () ->
              Hashtbl.remove s.confidential id;
              Hashtbl.remove s.epts id;
              Hashtbl.remove s.eptp_lists id);
          (match Tyche.Domain.kind d with
          | Tyche.Domain.Enclave | Tyche.Domain.Confidential_vm ->
            Hashtbl.replace s.confidential id ()
          | Tyche.Domain.Os | Tyche.Domain.Sandbox | Tyche.Domain.Io_domain
          | Tyche.Domain.Remote -> ());
          Hashtbl.replace s.epts id (Hw.Ept.create ~counter:machine.Hw.Machine.counter);
          Hashtbl.replace s.eptp_lists id (Hw.Ept.Eptp_list.create ()));
      domain_destroyed =
        (fun d ->
          let id = Tyche.Domain.id d in
          if s.journaling then begin
            let ept = Hashtbl.find_opt s.epts id
            and eptp = Hashtbl.find_opt s.eptp_lists id
            and mem = Hashtbl.find_opt s.domain_mem id
            and devices = Hashtbl.find_opt s.domain_devices id
            and conf = Hashtbl.mem s.confidential id
            and keyid = Hashtbl.find_opt s.keyids id in
            record s (fun () ->
              Option.iter (Hashtbl.replace s.epts id) ept;
              Option.iter (Hashtbl.replace s.eptp_lists id) eptp;
              Option.iter (Hashtbl.replace s.domain_mem id) mem;
              Option.iter (Hashtbl.replace s.domain_devices id) devices;
              if conf then Hashtbl.replace s.confidential id ();
              Option.iter (Hashtbl.replace s.keyids id) keyid)
          end;
          Hashtbl.remove s.epts id;
          Hashtbl.remove s.eptp_lists id;
          Hashtbl.remove s.domain_mem id;
          Hashtbl.remove s.domain_devices id;
          Hashtbl.remove s.confidential id;
          Hashtbl.remove s.keyids id);
      apply_effect = (fun eff -> apply_effect s eff);
      validate_attach = (fun d r -> validate_attach d r);
      transition =
        (fun ~core ~from_ ~to_ ~flush_microarch ->
          transition s ~core ~from_ ~to_ ~flush_microarch);
      launch = (fun ~core d -> enter s ~core d);
      domain_reaches = (fun d r -> domain_reaches s d r);
      domain_encrypted =
        (fun d -> s.mktme <> None && Hashtbl.mem s.keyids (Tyche.Domain.id d));
      txn_begin = (fun () -> txn_begin s);
      txn_commit = (fun () -> txn_commit s);
      txn_rollback = (fun () -> txn_rollback s) }
  in
  registry := (backend, s) :: !registry;
  backend

let ept_of backend domain = Hashtbl.find_opt (state_of backend).epts domain

let eptp_registered backend ~from_ ~to_ =
  let s = state_of backend in
  match Hashtbl.find_opt s.eptp_lists from_, Hashtbl.find_opt s.epts to_ with
  | Some l, Some e -> Hw.Ept.Eptp_list.slot_of l e <> None
  | _ -> false

let fast_transitions backend = (state_of backend).fast
let trap_transitions backend = (state_of backend).trap
