(* Deterministic fault injection.

   Modules that model fallible hardware or resource operations register
   a named injection [point] once at module-initialization time and call
   [hit] (raising) or [fires] (boolean) on every operation. With no plan
   armed the cost is a single physical-equality test, so production
   paths pay nothing measurable.

   A [plan] decides which hits trip. Plans are armed with [with_plan]
   (dynamically scoped, per-plan hit counters reset on arming) and are
   fully deterministic: probabilistic plans draw from a splitmix64
   stream seeded explicitly, never from the wall clock. [suspend]
   disables injection in a scope — rollback code uses it so undoing a
   faulted operation cannot itself fault. *)

type point = {
  name : string;
  mutable hits : int; (* hits observed while a plan was armed *)
  mutable trips : int; (* hits that injected a fault *)
}

exception Injected of { point : string; trip : int }

let () =
  Printexc.register_printer (function
    | Injected { point; trip } ->
      Some (Printf.sprintf "Fault.Injected(%s, trip %d)" point trip)
    | _ -> None)

type rule = [ `Nth of int | `Always | `Rate of float ]

type plan = {
  rules : (string * rule) list;
  default : rule option; (* applied to points without an explicit rule *)
  seed : int64;
  mutable rng : int64; (* splitmix64 state, reset to [seed] on arming *)
  counters : (string, int ref) Hashtbl.t; (* per-plan hit counts *)
}

(* --- registry ------------------------------------------------------- *)

let registry : (string, point) Hashtbl.t = Hashtbl.create 16

let register name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None ->
    let p = { name; hits = 0; trips = 0 } in
    Hashtbl.add registry name p;
    p

let name p = p.name
let hits p = p.hits
let trips p = p.trips

let points () =
  Hashtbl.fold (fun _ p acc -> p :: acc) registry []
  |> List.sort (fun a b -> String.compare a.name b.name)

let report () = List.map (fun p -> (p.name, p.hits, p.trips)) (points ())

let reset_counters () =
  Hashtbl.iter
    (fun _ p ->
      p.hits <- 0;
      p.trips <- 0)
    registry

(* --- plan construction --------------------------------------------- *)

let plan ?(seed = 1L) ?default rules =
  { rules; default; seed; rng = seed; counters = Hashtbl.create 8 }

let nth point n =
  if n <= 0 then invalid_arg "Fault.nth: n must be positive";
  plan [ (point, `Nth n) ]

let always point = plan [ (point, `Always) ]

let random ~seed ~rate =
  if not (rate >= 0. && rate <= 1.) then invalid_arg "Fault.random: rate out of range";
  plan ~seed:(Int64.of_int seed) ~default:(`Rate rate) []

(* --- arming and injection ------------------------------------------ *)

let current : plan option ref = ref None
let suspend_depth = ref 0

let enabled () = !current <> None && !suspend_depth = 0

let with_plan p f =
  let previous = !current in
  Hashtbl.reset p.counters;
  p.rng <- p.seed;
  current := Some p;
  Fun.protect ~finally:(fun () -> current := previous) f

let suspend f =
  incr suspend_depth;
  Fun.protect ~finally:(fun () -> decr suspend_depth) f

let suspended () = !suspend_depth > 0

(* splitmix64: a tiny, deterministic stream for [Rate] rules. *)
let splitmix64 state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform p =
  p.rng <- splitmix64 p.rng;
  (* 53 high bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical p.rng 11) /. 9007199254740992.

let fault_trips_c = Obs.Metrics.counter "fault.trips"

let fires point =
  match !current with
  | None -> false
  | Some _ when !suspend_depth > 0 -> false
  | Some p ->
    point.hits <- point.hits + 1;
    let counter =
      match Hashtbl.find_opt p.counters point.name with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.add p.counters point.name c;
        c
    in
    incr counter;
    let rule =
      match List.assoc_opt point.name p.rules with
      | Some _ as r -> r
      | None -> p.default
    in
    let trip =
      match rule with
      | None -> false
      | Some `Always -> true
      | Some (`Nth n) -> !counter = n
      | Some (`Rate r) -> uniform p < r
    in
    if trip then begin
      point.trips <- point.trips + 1;
      Obs.instant ("fault." ^ point.name);
      Obs.Metrics.incr fault_trips_c
    end;
    trip

let hit point = if fires point then raise (Injected { point = point.name; trip = point.trips })

module Splitmix = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    t.state <- splitmix64 t.state;
    Int64.to_int (Int64.shift_right_logical t.state 2)

  let below t n =
    if n <= 0 then invalid_arg "Fault.Splitmix.below";
    next t mod n

  let chance t p =
    t.state <- splitmix64 t.state;
    Int64.to_float (Int64.shift_right_logical t.state 11) /. 9007199254740992. < p

  let pick t = function
    | [] -> invalid_arg "Fault.Splitmix.pick"
    | l -> List.nth l (below t (List.length l))
end
