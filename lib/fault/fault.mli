(** Deterministic fault injection for the hardware substrate, the
    backends, the keypool, the allocator and the network.

    A module that models a fallible operation registers a named
    injection {!point} once (at module initialization) and calls {!hit}
    or {!fires} on every operation. When no plan is armed the check is a
    single reference comparison, so fault-free paths pay nothing
    measurable. A {!plan} — armed for a dynamic scope with {!with_plan}
    — decides which hits inject a fault; all plans are deterministic
    (seeded splitmix64, never wall-clock), so any failing run replays
    from its seed (see the [TYCHE_FAULT_SEED] override in
    [test/test_fault.ml]).

    Global per-point [hits]/[trips] counters accumulate across plans for
    the fault-coverage report ({!report}); per-plan counters (the "N" in
    "fail the Nth PMP write") reset every time a plan is armed. *)

type point

exception Injected of { point : string; trip : int }
(** Raised by {!hit} when the armed plan trips. Backends catch this at
    the effect boundary and convert it into a typed error; it must never
    escape a monitor API call. *)

val register : string -> point
(** Idempotent: registering the same name twice returns the same point
    (and its counters). *)

val name : point -> string

val hits : point -> int
(** Times the point was evaluated while a plan was armed. *)

val trips : point -> int
(** Times the point injected a fault (cumulative across plans). *)

val points : unit -> point list
(** Every registered point, sorted by name. *)

val report : unit -> (string * int * int) list
(** [(name, hits, trips)] for every registered point — the coverage
    report the chaos driver asserts over. *)

val reset_counters : unit -> unit
(** Zero all global hit/trip counters (coverage accounting only; does
    not disarm a plan). *)

(** {2 Plans} *)

type plan

val plan :
  ?seed:int64 ->
  ?default:[ `Nth of int | `Always | `Rate of float ] ->
  (string * [ `Nth of int | `Always | `Rate of float ]) list ->
  plan
(** General constructor: per-point rules plus an optional default
    applied to every point without an explicit rule. [`Nth n] trips the
    n-th hit of that point since the plan was armed; [`Rate r] trips
    each hit independently with probability [r], drawn from a stream
    seeded by [seed]. *)

val nth : string -> int -> plan
(** [nth point n]: fail the [n]-th hit of [point] (1-based).
    @raise Invalid_argument if [n <= 0]. *)

val always : string -> plan
(** Fail every hit of the point. *)

val random : seed:int -> rate:float -> plan
(** Fail every registered point independently with probability [rate],
    deterministically from [seed].
    @raise Invalid_argument if [rate] is outside [0..1]. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Arm the plan for the scope of the callback (restoring the previous
    plan after, exception-safe). Arming resets the plan's per-point hit
    counters and reseeds its random stream, so the same plan armed twice
    behaves identically. *)

val suspend : (unit -> 'a) -> 'a
(** Disable injection for the scope of the callback (nestable).
    Rollback paths run under [suspend] so that undoing a faulted
    operation cannot itself fault. *)

val suspended : unit -> bool

val enabled : unit -> bool
(** A plan is armed and injection is not suspended. *)

(** {2 Injection points (called by instrumented modules)} *)

val fires : point -> bool
(** Evaluate the point against the armed plan: true when the operation
    should fail. For operations whose failure is a silent degradation
    (a dropped datagram, a keypool miss) rather than an exception. *)

val hit : point -> unit
(** Like {!fires} but raises {!Injected} when the plan trips — for
    operations (PMP/EPT/IOMMU writes) whose failure aborts the
    enclosing backend effect. *)

(** {2 Deterministic streams (for adversarial drivers)}

    The same splitmix64 generator that drives [`Rate] rules, exposed so
    seed-replayable drivers (the byzantine fuzzer, chaos harnesses)
    derive their attack streams from the one generator this library
    already commits to — one seed, one stream discipline, identical
    replay across machines. *)

module Splitmix : sig
  type t

  val create : int -> t
  (** Seed a stream. Equal seeds yield equal streams forever. *)

  val next : t -> int
  (** Next value, uniform over non-negative OCaml [int]s. *)

  val below : t -> int -> int
  (** [below t n]: uniform in [0, n).
      @raise Invalid_argument if [n <= 0]. *)

  val chance : t -> float -> bool
  (** [chance t p]: true with probability [p]. *)

  val pick : t -> 'a list -> 'a
  (** Uniform element of a non-empty list.
      @raise Invalid_argument on an empty list. *)
end
