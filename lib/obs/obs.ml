(* Process-global observability. Single-writer by construction (the
   simulated monitor is single-threaded), so "lock-free" here means the
   ring is a set of plain column arrays plus a monotonic write index —
   no coordination, and no allocation at all on the emit path. *)

type kind = Span_begin | Span_end | Instant

type event = {
  seq : int;
  stamp : int;
  kind : kind;
  op : string;
  span : int;
  domain : int;
  backend : string;
  trace : int;
}

(* --- switches -------------------------------------------------------- *)

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Default clock: an internal tick, monotonic but meaningless — the
   monitor repoints it at the machine's simulated cycle counter. *)
let internal_ticks = ref 0

let default_clock () =
  incr internal_ticks;
  !internal_ticks

let clock = ref default_clock
let set_clock f = clock := f

(* --- trace context --------------------------------------------------- *)

let trace_counter = ref 0
let cur_trace = ref 0

let new_trace () =
  incr trace_counter;
  !trace_counter

let with_trace t f =
  let saved = !cur_trace in
  cur_trace := t;
  Fun.protect ~finally:(fun () -> cur_trace := saved) f

let current_trace () = !cur_trace

(* --- name interning -------------------------------------------------- *)

(* Op and backend names are interned to small int ids: the ring then
   stores only immediates, and an int store skips the GC write barrier
   a pointer store would take — which matters at two events per span on
   paths that fire millions of spans. Ids are process-lived, like
   metric handles, and survive {!reset}. *)

let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let intern_names = ref (Array.make 64 "")
let intern_count = ref 0

let intern s =
  match Hashtbl.find_opt intern_tbl s with
  | Some id -> id
  | None ->
    let id = !intern_count in
    if id >= Array.length !intern_names then begin
      let bigger = Array.make (2 * Array.length !intern_names) "" in
      Array.blit !intern_names 0 bigger 0 id;
      intern_names := bigger
    end;
    !intern_names.(id) <- s;
    Hashtbl.replace intern_tbl s id;
    incr intern_count;
    id

let name_of id = if id >= 0 && id < !intern_count then !intern_names.(id) else ""

(* The empty name is id 0, so an omitted backend costs nothing. *)
let () = ignore (intern "")

(* --- the ring -------------------------------------------------------- *)

(* Structure-of-arrays: emitting an event is six plain int stores and an
   increment — no record allocation, no write barrier, no GC pressure on
   the hot path. Event records only materialize on the (cold) read side;
   a slot's seq is recoverable from its position and its kind from the
   span column's sign (+sid begin, -sid end, 0 instant), so neither
   needs a column of its own. *)

let default_capacity = 4096

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let capacity = ref default_capacity
let r_stamp = ref (Array.make default_capacity 0)
let r_op = ref (Array.make default_capacity 0)
let r_span = ref (Array.make default_capacity 0)
let r_domain = ref (Array.make default_capacity (-1))
let r_trace = ref (Array.make default_capacity 0)
let r_backend = ref (Array.make default_capacity 0)
let written_count = ref 0

let alloc_ring cap =
  capacity := cap;
  r_stamp := Array.make cap 0;
  r_op := Array.make cap 0;
  r_span := Array.make cap 0;
  r_domain := Array.make cap (-1);
  r_trace := Array.make cap 0;
  r_backend := Array.make cap 0;
  written_count := 0

(* In-bounds by construction: [configure] keeps [capacity] equal to every
   column's length and a power of two, so the masked index is < length.
   [op] and [backend] are interned ids; [span] carries the kind in its
   sign. *)
let emit ~stamp ~op ~span ~domain ~backend =
  let i = !written_count land (!capacity - 1) in
  Array.unsafe_set !r_stamp i stamp;
  Array.unsafe_set !r_op i op;
  Array.unsafe_set !r_span i span;
  Array.unsafe_set !r_domain i domain;
  Array.unsafe_set !r_trace i !cur_trace;
  Array.unsafe_set !r_backend i backend;
  incr written_count

let configure ?capacity:(cap = default_capacity) () =
  alloc_ring (round_pow2 (max 1 cap))

let written () = !written_count
let dropped () = max 0 (!written_count - !capacity)

(* --- span bookkeeping ------------------------------------------------ *)

let span_counter = ref 0
let open_span_count = ref 0
let open_spans () = !open_span_count

let instant ?(domain = -1) ?(backend = "") op =
  if !enabled_flag then
    emit ~stamp:(!clock ()) ~op:(intern op) ~span:0 ~domain ~backend:(intern backend)

(* --- metrics --------------------------------------------------------- *)

module Metrics = struct
  (* Log2 buckets: bucket 0 holds v <= 0, bucket i >= 1 holds
     2^(i-1) .. 2^i - 1. 63 buckets cover the whole int range. *)
  let n_buckets = 63

  type hist = { mutable count : int; mutable sum : int; mutable max_v : int; buckets : int array }
  type counter = int ref
  type gauge = int ref
  type histogram = hist

  type metric = Counter of counter | Gauge of gauge | Histogram of hist

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  (* Zero in place rather than dropping entries: handles obtained with
     [counter]/[gauge]/[histogram] stay registered across {!reset}, so
     instrumented modules may hoist the name lookup out of their hot
     paths once and keep the handle forever. *)
  let clear () =
    Hashtbl.iter
      (fun _ m ->
        match m with
        | Counter c -> c := 0
        | Gauge g -> g := 0
        | Histogram h ->
          h.count <- 0;
          h.sum <- 0;
          h.max_v <- 0;
          Array.fill h.buckets 0 (Array.length h.buckets) 0)
      registry

  let counter name =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> c
    | Some _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is not a counter")
    | None ->
      let c = ref 0 in
      Hashtbl.replace registry name (Counter c);
      c

  let incr ?(by = 1) c = if !enabled_flag then c := !c + by

  let counter_value name =
    match Hashtbl.find_opt registry name with Some (Counter c) -> !c | _ -> 0

  let gauge name =
    match Hashtbl.find_opt registry name with
    | Some (Gauge g) -> g
    | Some _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " is not a gauge")
    | None ->
      let g = ref 0 in
      Hashtbl.replace registry name (Gauge g);
      g

  let set_gauge g v = if !enabled_flag then g := v

  let gauge_value name =
    match Hashtbl.find_opt registry name with Some (Gauge g) -> !g | _ -> 0

  let histogram name =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some _ -> invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " is not a histogram")
    | None ->
      let h = { count = 0; sum = 0; max_v = 0; buckets = Array.make n_buckets 0 } in
      Hashtbl.replace registry name (Histogram h);
      h

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 0 do
        incr b;
        v := !v lsr 1
      done;
      min !b (n_buckets - 1)
    end

  let bucket_bounds i =
    if i <= 0 then (0, 0)
    else if i >= n_buckets - 1 then (1 lsl (n_buckets - 2), max_int)
    else (1 lsl (i - 1), (1 lsl i) - 1)

  (* Unguarded twin for callers that already sit behind the enabled
     check (the Profile span path): re-testing the flag per sample is
     dead weight there. *)
  let observe_unguarded h v =
    let v = max 0 v in
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v > h.max_v then h.max_v <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1

  let observe h v = if !enabled_flag then observe_unguarded h v

  let find_hist name =
    match Hashtbl.find_opt registry name with Some (Histogram h) -> Some h | _ -> None

  let histogram_count name =
    match find_hist name with Some h -> h.count | None -> 0

  let histogram_sum name = match find_hist name with Some h -> h.sum | None -> 0
  let histogram_max name = match find_hist name with Some h -> h.max_v | None -> 0

  let percentile_of h p =
    if h.count = 0 then None
    else begin
      let target = max 1 (int_of_float (ceil (p *. float_of_int h.count))) in
      let cum = ref 0 and found = ref None in
      (try
         for i = 0 to n_buckets - 1 do
           cum := !cum + h.buckets.(i);
           if !cum >= target then begin
             found := Some (snd (bucket_bounds i));
             raise Exit
           end
         done
       with Exit -> ());
      !found
    end

  let percentile name p =
    match find_hist name with None -> None | Some h -> percentile_of h p

  let sorted f =
    Hashtbl.fold (fun k v acc -> match f v with Some x -> (k, x) :: acc | None -> acc)
      registry []
    |> List.sort compare

  let counters () = sorted (function Counter c -> Some !c | _ -> None)
  let gauges () = sorted (function Gauge g -> Some !g | _ -> None)
  let histograms () = sorted (function Histogram h -> Some h | _ -> None)
end

(* --- per-op handle cache --------------------------------------------- *)

(* One string lookup per span instead of two name concatenations, two
   registry lookups and a tuple-keyed per-domain bump — and callers on
   truly hot paths can skip even that by hoisting a {!Profile.handle}.
   That is the difference between ~300 ns and a few tens of ns of
   overhead per span, which is what keeps the E17 tracing-on ceiling
   honest. *)
type op_stats = {
  os_op : string;
  os_id : int;
  os_lat : Metrics.histogram;
  os_count : Metrics.counter;
  (* Per-domain op counts: domain ids are small ints in practice, so
     the common case is a direct array bump; the hashtable only catches
     the long tail (domain >= small_domains). *)
  os_dom_small : int array;
  os_domains : (int, int ref) Hashtbl.t;
}

let small_domains = 64

let op_cache : (string, op_stats) Hashtbl.t = Hashtbl.create 64

let stats_for op =
  match Hashtbl.find_opt op_cache op with
  | Some st -> st
  | None ->
    let st =
      { os_op = op;
        os_id = intern op;
        os_lat = Metrics.histogram ("lat." ^ op);
        os_count = Metrics.counter ("op." ^ op);
        os_dom_small = Array.make small_domains 0;
        os_domains = Hashtbl.create 8 }
    in
    Hashtbl.replace op_cache op st;
    st

let bump_domain_op st domain =
  if domain >= 0 then
    if domain < small_domains then
      Array.unsafe_set st.os_dom_small domain
        (Array.unsafe_get st.os_dom_small domain + 1)
    else begin
      match Hashtbl.find_opt st.os_domains domain with
      | Some c -> incr c
      | None -> Hashtbl.replace st.os_domains domain (ref 1)
    end

(* --- profiling ------------------------------------------------------- *)

module Profile = struct
  type handle = op_stats

  let handle = stats_for

  let finish st sid domain backend t0 =
    let t1 = !clock () in
    emit ~stamp:t1 ~op:st.os_id ~span:(-sid) ~domain ~backend;
    open_span_count := !open_span_count - 1;
    (* Spans only start while enabled, so skip the per-sample flag
       re-checks that Metrics.observe/incr would do. *)
    Metrics.observe_unguarded st.os_lat (t1 - t0);
    st.os_count := !(st.os_count) + 1;
    bump_domain_op st domain

  (* Hand-rolled instead of [Fun.protect]: no [finally] closure on the
     hot path, same balance guarantee — the end event is emitted whether
     [f] returns or raises. *)
  let run st domain backend f =
    incr span_counter;
    let sid = !span_counter in
    incr open_span_count;
    let t0 = !clock () in
    emit ~stamp:t0 ~op:st.os_id ~span:sid ~domain ~backend;
    match f () with
    | v ->
      finish st sid domain backend t0;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish st sid domain backend t0;
      Printexc.raise_with_backtrace e bt

  (* [backend] here is a pre-interned id (see {!intern}): hot call
     sites hoist it once next to their handle, so a span passes only
     immediates. *)
  let span_h ?(domain = -1) ?(backend = 0) h f =
    if not !enabled_flag then f () else run h domain backend f

  let span ?(domain = -1) ?(backend = "") op f =
    if not !enabled_flag then f () else run (stats_for op) domain (intern backend) f
end

(* --- reading back ---------------------------------------------------- *)

let raw_events () =
  let total = !written_count in
  let n = min total !capacity in
  let start = total - n in
  let mask = !capacity - 1 in
  List.init n (fun j ->
      let s = start + j in
      let i = s land mask in
      let enc = !r_span.(i) in
      { seq = s; stamp = !r_stamp.(i);
        kind = (if enc > 0 then Span_begin else if enc < 0 then Span_end else Instant);
        op = name_of !r_op.(i); span = abs enc; domain = !r_domain.(i);
        backend = name_of !r_backend.(i); trace = !r_trace.(i) })

(* Wraparound coherence: a span-end whose begin fell off the ring is
   suppressed, so readers only ever see whole pairs (or a begin whose
   end has not happened yet). *)
let events () =
  let evs = raw_events () in
  let begins = Hashtbl.create 64 in
  List.iter (fun e -> if e.kind = Span_begin then Hashtbl.replace begins e.span ()) evs;
  List.filter (fun e -> e.kind <> Span_end || Hashtbl.mem begins e.span) evs

let kind_name = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Instant -> "instant"

let event_to_json e =
  Printf.sprintf
    {|{"seq":%d,"stamp":%d,"kind":%S,"op":%S,"span":%d,"domain":%d,"backend":%S,"trace":%d}|}
    e.seq e.stamp (kind_name e.kind) e.op e.span e.domain e.backend e.trace

let check () =
  if !open_span_count <> 0 then
    Error (Printf.sprintf "unbalanced spans: %d still open" !open_span_count)
  else begin
    let raw = raw_events () in
    let retained = List.length raw in
    if retained + dropped () <> !written_count then
      Error
        (Printf.sprintf "event accounting mismatch: %d retained + %d dropped <> %d written"
           retained (dropped ()) !written_count)
    else begin
      let orphans = retained - List.length (events ()) in
      if !written_count <= !capacity && orphans > 0 then
        Error (Printf.sprintf "%d orphan span ends without wraparound" orphans)
      else begin
        let rec mono = function
          | a :: (b :: _ as rest) ->
            if a.seq >= b.seq then
              Error (Printf.sprintf "non-monotonic seq: %d then %d" a.seq b.seq)
            else mono rest
          | _ -> Ok ()
        in
        mono raw
      end
    end
  end

(* --- reset ----------------------------------------------------------- *)

let reset () =
  alloc_ring !capacity;
  internal_ticks := 0;
  span_counter := 0;
  open_span_count := 0;
  trace_counter := 0;
  cur_trace := 0;
  Metrics.clear ();
  Hashtbl.iter
    (fun _ st ->
      Array.fill st.os_dom_small 0 small_domains 0;
      Hashtbl.reset st.os_domains)
    op_cache

(* --- report ---------------------------------------------------------- *)

type histogram_summary = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
}

type report = {
  r_enabled : bool;
  r_written : int;
  r_dropped : int;
  r_open_spans : int;
  r_counters : (string * int) list;
  r_gauges : (string * int) list;
  r_histograms : (string * histogram_summary) list;
  r_domain_ops : (int * (string * int) list) list;
}

let summarize (h : Metrics.hist) =
  let p q = Option.value ~default:0 (Metrics.percentile_of h q) in
  { h_count = h.Metrics.count; h_sum = h.Metrics.sum; h_max = h.Metrics.max_v;
    h_p50 = p 0.5; h_p90 = p 0.9; h_p99 = p 0.99 }

let report () =
  let doms =
    Hashtbl.fold
      (fun op st acc ->
        let acc =
          Hashtbl.fold (fun d c acc -> (d, op, !c) :: acc) st.os_domains acc
        in
        let acc = ref acc in
        Array.iteri
          (fun d c -> if c > 0 then acc := (d, op, c) :: !acc)
          st.os_dom_small;
        !acc)
      op_cache []
    |> List.sort compare
  in
  let grouped =
    List.fold_left
      (fun acc (d, op, c) ->
        match acc with
        | (d', ops) :: rest when d' = d -> (d', (op, c) :: ops) :: rest
        | _ -> (d, [ (op, c) ]) :: acc)
      [] doms
    |> List.rev_map (fun (d, ops) -> (d, List.rev ops))
  in
  { r_enabled = !enabled_flag;
    r_written = written ();
    r_dropped = dropped ();
    r_open_spans = !open_span_count;
    r_counters = Metrics.counters ();
    r_gauges = Metrics.gauges ();
    r_histograms = List.map (fun (n, h) -> (n, summarize h)) (Metrics.histograms ());
    r_domain_ops = grouped }

let pp_report fmt r =
  Format.fprintf fmt "obs: %s, %d events (%d dropped), %d open spans@\n"
    (if r.r_enabled then "enabled" else "disabled")
    r.r_written r.r_dropped r.r_open_spans;
  if r.r_counters <> [] then begin
    Format.fprintf fmt "counters:@\n";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-32s %d@\n" n v) r.r_counters
  end;
  if r.r_gauges <> [] then begin
    Format.fprintf fmt "gauges:@\n";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-32s %d@\n" n v) r.r_gauges
  end;
  if r.r_histograms <> [] then begin
    Format.fprintf fmt "histograms (cycles; p50/p90/p99 are bucket upper bounds):@\n";
    List.iter
      (fun (n, h) ->
        Format.fprintf fmt "  %-32s n=%-7d p50=%-7d p90=%-7d p99=%-7d max=%d@\n" n
          h.h_count h.h_p50 h.h_p90 h.h_p99 h.h_max)
      r.r_histograms
  end;
  if r.r_domain_ops <> [] then begin
    Format.fprintf fmt "per-domain op counts:@\n";
    List.iter
      (fun (d, ops) ->
        Format.fprintf fmt "  domain %d:@\n" d;
        List.iter (fun (op, c) -> Format.fprintf fmt "    %-30s %d@\n" op c) ops)
      r.r_domain_ops
  end

let report_to_json r =
  let b = Buffer.create 1024 in
  let comma_sep f xs =
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",";
        f x)
      xs
  in
  Buffer.add_string b
    (Printf.sprintf {|{"enabled":%b,"written":%d,"dropped":%d,"open_spans":%d,"counters":{|}
       r.r_enabled r.r_written r.r_dropped r.r_open_spans);
  comma_sep (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%S:%d" n v)) r.r_counters;
  Buffer.add_string b {|},"gauges":{|};
  comma_sep (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%S:%d" n v)) r.r_gauges;
  Buffer.add_string b {|},"histograms":{|};
  comma_sep
    (fun (n, h) ->
      Buffer.add_string b
        (Printf.sprintf {|%S:{"count":%d,"sum":%d,"max":%d,"p50":%d,"p90":%d,"p99":%d}|} n
           h.h_count h.h_sum h.h_max h.h_p50 h.h_p90 h.h_p99))
    r.r_histograms;
  Buffer.add_string b {|},"domain_ops":{|};
  comma_sep
    (fun (d, ops) ->
      Buffer.add_string b (Printf.sprintf {|"%d":{|} d);
      comma_sep (fun (op, c) -> Buffer.add_string b (Printf.sprintf "%S:%d" op c)) ops;
      Buffer.add_string b "}")
    r.r_domain_ops;
  Buffer.add_string b "}}";
  Buffer.contents b
