(* Process-global observability, domain-safe. Each OCaml Domain gets its
   own trace ring (domain-local storage), so the emit path stays a set of
   plain column stores plus a monotonic write index — no coordination and
   no allocation — while concurrent emitters can never corrupt each
   other. Readers merge the per-domain rings into one causal view by
   (stamp, ring, seq) at read time; with a single ring (the historical
   single-threaded monitor) every read-side function behaves exactly as
   the old single-writer implementation did. Metrics are atomics: cheap
   uncontended, exact under parallelism. *)

type kind = Span_begin | Span_end | Instant

type event = {
  seq : int;
  stamp : int;
  kind : kind;
  op : string;
  span : int;
  domain : int;
  backend : string;
  trace : int;
}

(* One lock guards every find-or-create table (interning, the metrics
   registry, the per-op stats cache, the ring registry). These are
   cold paths — hot call sites hoist handles and pre-interned ids — so
   a single uncontended mutex is cheaper than finer-grained locking. *)
let global_mutex = Mutex.create ()
let locked f = Mutex.protect global_mutex f

(* --- switches -------------------------------------------------------- *)

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Default clock: an internal tick, monotonic but meaningless — the
   monitor repoints it at the machine's simulated cycle counter. *)
let internal_ticks = Atomic.make 0

let default_clock () = Atomic.fetch_and_add internal_ticks 1 + 1

let clock = ref default_clock
let set_clock f = clock := f

(* --- name interning -------------------------------------------------- *)

(* Op and backend names are interned to small int ids: the ring then
   stores only immediates, and an int store skips the GC write barrier
   a pointer store would take — which matters at two events per span on
   paths that fire millions of spans. Ids are process-lived, like
   metric handles, and survive {!reset}. *)

let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let intern_names = ref (Array.make 64 "")
let intern_count = Atomic.make 0

(* The mutex is not reentrant; paths that already hold it (stats_for)
   use this twin. *)
let intern_unlocked s =
  match Hashtbl.find_opt intern_tbl s with
  | Some id -> id
  | None ->
    let id = Atomic.get intern_count in
    if id >= Array.length !intern_names then begin
      let bigger = Array.make (2 * Array.length !intern_names) "" in
      Array.blit !intern_names 0 bigger 0 id;
      intern_names := bigger
    end;
    !intern_names.(id) <- s;
    Hashtbl.replace intern_tbl s id;
    Atomic.incr intern_count;
    id

let intern s = locked (fun () -> intern_unlocked s)

let name_of id =
  let names = !intern_names in
  if id >= 0 && id < Atomic.get intern_count && id < Array.length names then names.(id)
  else ""

(* The empty name is id 0, so an omitted backend costs nothing. *)
let () = ignore (intern "")

(* --- per-domain rings ------------------------------------------------ *)

(* Structure-of-arrays: emitting an event is six plain int stores and an
   increment — no record allocation, no write barrier, no GC pressure on
   the hot path. Event records only materialize on the (cold) read side;
   a slot's seq is recoverable from its position and its kind from the
   span column's sign (+sid begin, -sid end, 0 instant), so neither
   needs a column of its own. Each OCaml Domain owns one [ring]; only
   its owner writes, so no column store ever races. *)

let default_capacity = 4096

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

type ring = {
  ring_ord : int; (* registration order; merge tie-break across rings *)
  mutable cap : int;
  mutable r_stamp : int array;
  mutable r_op : int array;
  mutable r_span : int array;
  mutable r_domain : int array;
  mutable r_trace : int array;
  mutable r_backend : int array;
  mutable written : int;
  mutable ring_open_spans : int;
  mutable cur_trace : int; (* trace context is per emitting domain *)
}

let default_cap = ref default_capacity
let ring_ord_counter = Atomic.make 0
let rings : ring list ref = ref []

let realloc r cap =
  r.cap <- cap;
  r.r_stamp <- Array.make cap 0;
  r.r_op <- Array.make cap 0;
  r.r_span <- Array.make cap 0;
  r.r_domain <- Array.make cap (-1);
  r.r_trace <- Array.make cap 0;
  r.r_backend <- Array.make cap 0;
  r.written <- 0

let new_ring () =
  let cap = !default_cap in
  let r =
    { ring_ord = Atomic.fetch_and_add ring_ord_counter 1;
      cap;
      r_stamp = Array.make cap 0;
      r_op = Array.make cap 0;
      r_span = Array.make cap 0;
      r_domain = Array.make cap (-1);
      r_trace = Array.make cap 0;
      r_backend = Array.make cap 0;
      written = 0;
      ring_open_spans = 0;
      cur_trace = 0 }
  in
  locked (fun () -> rings := !rings @ [ r ]);
  r

let ring_key = Domain.DLS.new_key new_ring

let my_ring () = Domain.DLS.get ring_key

(* Eager creation from the loading domain, so the historical "the" ring
   exists (and is ring 0) before anything else registers. *)
let () = ignore (my_ring ())

let snapshot_rings () = locked (fun () -> !rings)

(* In-bounds by construction: [cap] equals every column's length and is
   a power of two, so the masked index is < length. [op] and [backend]
   are interned ids; [span] carries the kind in its sign. *)
let emit_into r ~stamp ~op ~span ~domain ~backend =
  let i = r.written land (r.cap - 1) in
  Array.unsafe_set r.r_stamp i stamp;
  Array.unsafe_set r.r_op i op;
  Array.unsafe_set r.r_span i span;
  Array.unsafe_set r.r_domain i domain;
  Array.unsafe_set r.r_trace i r.cur_trace;
  Array.unsafe_set r.r_backend i backend;
  r.written <- r.written + 1

let emit ~stamp ~op ~span ~domain ~backend =
  emit_into (my_ring ()) ~stamp ~op ~span ~domain ~backend

(* [configure] and [reset] re-baseline the whole facility: they keep
   only the calling domain's ring registered, so accounting restarts
   from a clean slate. Rings of still-running domains re-register on
   their next emit is NOT possible (the DLS handle stays), so callers
   must quiesce spawned domains first — which every test and the
   sharded monitor's lifecycle already guarantee. *)
let configure ?capacity:(cap = default_capacity) () =
  let cap = round_pow2 (max 1 cap) in
  default_cap := cap;
  let r = my_ring () in
  locked (fun () -> rings := [ r ]);
  realloc r cap

let written () = List.fold_left (fun a r -> a + r.written) 0 (snapshot_rings ())

let ring_dropped r = max 0 (r.written - r.cap)

let dropped () = List.fold_left (fun a r -> a + ring_dropped r) 0 (snapshot_rings ())

(* --- trace context --------------------------------------------------- *)

let trace_counter = Atomic.make 0

let new_trace () = Atomic.fetch_and_add trace_counter 1 + 1

let with_trace t f =
  let r = my_ring () in
  let saved = r.cur_trace in
  r.cur_trace <- t;
  Fun.protect ~finally:(fun () -> r.cur_trace <- saved) f

let current_trace () = (my_ring ()).cur_trace

(* --- span bookkeeping ------------------------------------------------ *)

let span_counter = Atomic.make 0

let open_spans () =
  List.fold_left (fun a r -> a + r.ring_open_spans) 0 (snapshot_rings ())

let instant ?(domain = -1) ?(backend = "") op =
  if !enabled_flag then
    emit ~stamp:(!clock ()) ~op:(intern op) ~span:0 ~domain ~backend:(intern backend)

(* --- metrics --------------------------------------------------------- *)

module Metrics = struct
  (* Log2 buckets: bucket 0 holds v <= 0, bucket i >= 1 holds
     2^(i-1) .. 2^i - 1. 63 buckets cover the whole int range. *)
  let n_buckets = 63

  (* Atomics throughout: a counter bump or histogram sample from any
     domain is exact, and uncontended atomic adds cost a few ns — the
     E17 tracing-overhead ceiling still holds. *)
  type hist = {
    count : int Atomic.t;
    sum : int Atomic.t;
    max_v : int Atomic.t;
    buckets : int Atomic.t array;
  }

  type counter = int Atomic.t
  type gauge = int Atomic.t
  type histogram = hist

  type metric = Counter of counter | Gauge of gauge | Histogram of hist

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  (* Zero in place rather than dropping entries: handles obtained with
     [counter]/[gauge]/[histogram] stay registered across {!reset}, so
     instrumented modules may hoist the name lookup out of their hot
     paths once and keep the handle forever. *)
  let clear () =
    locked (fun () ->
        Hashtbl.iter
          (fun _ m ->
            match m with
            | Counter c -> Atomic.set c 0
            | Gauge g -> Atomic.set g 0
            | Histogram h ->
              Atomic.set h.count 0;
              Atomic.set h.sum 0;
              Atomic.set h.max_v 0;
              Array.iter (fun b -> Atomic.set b 0) h.buckets)
          registry)

  let counter_unlocked name =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> c
    | Some _ -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is not a counter")
    | None ->
      let c = Atomic.make 0 in
      Hashtbl.replace registry name (Counter c);
      c

  let counter name = locked (fun () -> counter_unlocked name)

  let incr ?(by = 1) c = if !enabled_flag then ignore (Atomic.fetch_and_add c by)

  (* Per-handle zeroing, for metrics whose name outlives the thing it
     measures (per-link fleet counters survive endpoint crash-restart):
     the owner zeroes its own handles at (re)creation so post-recovery
     numbers describe only the current incarnation. Unconditional — a
     truthful zero must land even while recording is disabled. *)
  let zero_counter c = Atomic.set c 0

  let counter_value name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (Counter c) -> Atomic.get c
        | _ -> 0)

  let gauge name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (Gauge g) -> g
        | Some _ -> invalid_arg ("Obs.Metrics.gauge: " ^ name ^ " is not a gauge")
        | None ->
          let g = Atomic.make 0 in
          Hashtbl.replace registry name (Gauge g);
          g)

  let set_gauge g v = if !enabled_flag then Atomic.set g v
  let zero_gauge g = Atomic.set g 0

  let gauge_value name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (Gauge g) -> Atomic.get g
        | _ -> 0)

  let histogram_unlocked name =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some _ -> invalid_arg ("Obs.Metrics.histogram: " ^ name ^ " is not a histogram")
    | None ->
      let h =
        { count = Atomic.make 0;
          sum = Atomic.make 0;
          max_v = Atomic.make 0;
          buckets = Array.init n_buckets (fun _ -> Atomic.make 0) }
      in
      Hashtbl.replace registry name (Histogram h);
      h

  let histogram name = locked (fun () -> histogram_unlocked name)

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 0 do
        Stdlib.incr b;
        v := !v lsr 1
      done;
      min !b (n_buckets - 1)
    end

  let bucket_bounds i =
    if i <= 0 then (0, 0)
    else if i >= n_buckets - 1 then (1 lsl (n_buckets - 2), max_int)
    else (1 lsl (i - 1), (1 lsl i) - 1)

  let rec atomic_max a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

  (* Unguarded twin for callers that already sit behind the enabled
     check (the Profile span path): re-testing the flag per sample is
     dead weight there. *)
  let observe_unguarded h v =
    let v = max 0 v in
    ignore (Atomic.fetch_and_add h.count 1);
    ignore (Atomic.fetch_and_add h.sum v);
    atomic_max h.max_v v;
    let b = bucket_of v in
    ignore (Atomic.fetch_and_add (Array.unsafe_get h.buckets b) 1)

  let observe h v = if !enabled_flag then observe_unguarded h v

  let find_hist name =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (Histogram h) -> Some h
        | _ -> None)

  let histogram_count name =
    match find_hist name with Some h -> Atomic.get h.count | None -> 0

  let histogram_sum name =
    match find_hist name with Some h -> Atomic.get h.sum | None -> 0

  let histogram_max name =
    match find_hist name with Some h -> Atomic.get h.max_v | None -> 0

  let percentile_of h p =
    let total = Atomic.get h.count in
    if total = 0 then None
    else begin
      let target = max 1 (int_of_float (ceil (p *. float_of_int total))) in
      let cum = ref 0 and found = ref None in
      (try
         for i = 0 to n_buckets - 1 do
           cum := !cum + Atomic.get h.buckets.(i);
           if !cum >= target then begin
             found := Some (snd (bucket_bounds i));
             raise Exit
           end
         done
       with Exit -> ());
      !found
    end

  let percentile name p =
    match find_hist name with None -> None | Some h -> percentile_of h p

  let sorted f =
    locked (fun () ->
        Hashtbl.fold
          (fun k v acc -> match f v with Some x -> (k, x) :: acc | None -> acc)
          registry [])
    |> List.sort compare

  let counters () = sorted (function Counter c -> Some (Atomic.get c) | _ -> None)
  let gauges () = sorted (function Gauge g -> Some (Atomic.get g) | _ -> None)
  let histograms () = sorted (function Histogram h -> Some h | _ -> None)
end

(* --- per-op handle cache --------------------------------------------- *)

(* One string lookup per span instead of two name concatenations, two
   registry lookups and a tuple-keyed per-domain bump — and callers on
   truly hot paths can skip even that by hoisting a {!Profile.handle}.
   That is the difference between ~300 ns and a few tens of ns of
   overhead per span, which is what keeps the E17 tracing-on ceiling
   honest. *)
type op_stats = {
  os_op : string;
  os_id : int;
  os_lat : Metrics.histogram;
  os_count : Metrics.counter;
  (* Per-domain op counts: domain ids are small ints in practice, so
     the common case is a direct array bump; the hashtable only catches
     the long tail (domain >= small_domains). The array bumps are plain
     (racy-benign: a concurrent bump of the same cell from two OCaml
     domains may lose a count, never corrupt); the tail hashtable is
     mutex-guarded because concurrent structural mutation is not. *)
  os_dom_small : int array;
  os_domains : (int, int ref) Hashtbl.t;
}

let small_domains = 64

let op_cache : (string, op_stats) Hashtbl.t = Hashtbl.create 64

let stats_for op =
  locked (fun () ->
      match Hashtbl.find_opt op_cache op with
      | Some st -> st
      | None ->
        let st =
          { os_op = op;
            os_id = intern_unlocked op;
            os_lat = Metrics.histogram_unlocked ("lat." ^ op);
            os_count = Metrics.counter_unlocked ("op." ^ op);
            os_dom_small = Array.make small_domains 0;
            os_domains = Hashtbl.create 8 }
        in
        Hashtbl.replace op_cache op st;
        st)

let bump_domain_op st domain =
  if domain >= 0 then
    if domain < small_domains then
      Array.unsafe_set st.os_dom_small domain
        (Array.unsafe_get st.os_dom_small domain + 1)
    else
      locked (fun () ->
          match Hashtbl.find_opt st.os_domains domain with
          | Some c -> incr c
          | None -> Hashtbl.replace st.os_domains domain (ref 1))

(* --- profiling ------------------------------------------------------- *)

module Profile = struct
  type handle = op_stats

  let handle = stats_for

  let finish r st sid domain backend t0 =
    let t1 = !clock () in
    emit_into r ~stamp:t1 ~op:st.os_id ~span:(-sid) ~domain ~backend;
    r.ring_open_spans <- r.ring_open_spans - 1;
    (* Spans only start while enabled, so skip the per-sample flag
       re-checks that Metrics.observe/incr would do. *)
    Metrics.observe_unguarded st.os_lat (t1 - t0);
    ignore (Atomic.fetch_and_add st.os_count 1);
    bump_domain_op st domain

  (* Hand-rolled instead of [Fun.protect]: no [finally] closure on the
     hot path, same balance guarantee — the end event is emitted whether
     [f] returns or raises. The ring is resolved once per span; begin
     and end always land in the same (the caller's) ring. *)
  let run st domain backend f =
    let r = my_ring () in
    let sid = Atomic.fetch_and_add span_counter 1 + 1 in
    r.ring_open_spans <- r.ring_open_spans + 1;
    let t0 = !clock () in
    emit_into r ~stamp:t0 ~op:st.os_id ~span:sid ~domain ~backend;
    match f () with
    | v ->
      finish r st sid domain backend t0;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish r st sid domain backend t0;
      Printexc.raise_with_backtrace e bt

  (* [backend] here is a pre-interned id (see {!intern}): hot call
     sites hoist it once next to their handle, so a span passes only
     immediates. *)
  let span_h ?(domain = -1) ?(backend = 0) h f =
    if not !enabled_flag then f () else run h domain backend f

  let span ?(domain = -1) ?(backend = "") op f =
    if not !enabled_flag then f () else run (stats_for op) domain (intern backend) f
end

(* --- reading back ---------------------------------------------------- *)

let ring_raw r =
  let total = r.written in
  let n = min total r.cap in
  let start = total - n in
  let mask = r.cap - 1 in
  List.init n (fun j ->
      let s = start + j in
      let i = s land mask in
      let enc = r.r_span.(i) in
      { seq = s; stamp = r.r_stamp.(i);
        kind = (if enc > 0 then Span_begin else if enc < 0 then Span_end else Instant);
        op = name_of r.r_op.(i); span = abs enc; domain = r.r_domain.(i);
        backend = name_of r.r_backend.(i); trace = r.r_trace.(i) })

(* Merge per-ring event lists into one causal view: order by stamp,
   breaking ties by ring registration order then per-ring seq. With a
   single ring this is exactly the per-ring order (stamps are
   non-decreasing in seq — both clocks are monotonic), so the
   historical single-writer read-back is unchanged. *)
let merge_rings per_ring =
  match per_ring with
  | [ (_, evs) ] -> evs
  | _ ->
    per_ring
    |> List.concat_map (fun (ord, evs) -> List.map (fun e -> (ord, e)) evs)
    |> List.sort (fun (o1, e1) (o2, e2) ->
           compare (e1.stamp, o1, e1.seq) (e2.stamp, o2, e2.seq))
    |> List.map snd

(* Wraparound coherence: a span-end whose begin fell off the ring is
   suppressed, so readers only ever see whole pairs (or a begin whose
   end has not happened yet). Spans begin and end in one ring, so the
   suppression is per ring, before merging. *)
let ring_events r =
  let evs = ring_raw r in
  let begins = Hashtbl.create 64 in
  List.iter (fun e -> if e.kind = Span_begin then Hashtbl.replace begins e.span ()) evs;
  List.filter (fun e -> e.kind <> Span_end || Hashtbl.mem begins e.span) evs

let events () =
  merge_rings (List.map (fun r -> (r.ring_ord, ring_events r)) (snapshot_rings ()))

let kind_name = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Instant -> "instant"

let event_to_json e =
  Printf.sprintf
    {|{"seq":%d,"stamp":%d,"kind":%S,"op":%S,"span":%d,"domain":%d,"backend":%S,"trace":%d}|}
    e.seq e.stamp (kind_name e.kind) e.op e.span e.domain e.backend e.trace

let check () =
  let rs = snapshot_rings () in
  let opens = List.fold_left (fun a r -> a + r.ring_open_spans) 0 rs in
  if opens <> 0 then Error (Printf.sprintf "unbalanced spans: %d still open" opens)
  else begin
    let rec per_ring = function
      | [] -> Ok ()
      | r :: rest ->
        let raw = ring_raw r in
        let retained = List.length raw in
        if retained + ring_dropped r <> r.written then
          Error
            (Printf.sprintf
               "event accounting mismatch: %d retained + %d dropped <> %d written"
               retained (ring_dropped r) r.written)
        else begin
          let orphans = retained - List.length (ring_events r) in
          if r.written <= r.cap && orphans > 0 then
            Error (Printf.sprintf "%d orphan span ends without wraparound" orphans)
          else begin
            let rec mono = function
              | a :: (b :: _ as rest) ->
                if a.seq >= b.seq then
                  Error (Printf.sprintf "non-monotonic seq: %d then %d" a.seq b.seq)
                else mono rest
              | _ -> Ok ()
            in
            match mono raw with Error _ as e -> e | Ok () -> per_ring rest
          end
        end
    in
    per_ring rs
  end

(* --- reset ----------------------------------------------------------- *)

let reset () =
  let r = my_ring () in
  locked (fun () -> rings := [ r ]);
  realloc r r.cap;
  r.ring_open_spans <- 0;
  r.cur_trace <- 0;
  Atomic.set internal_ticks 0;
  Atomic.set span_counter 0;
  Atomic.set trace_counter 0;
  Metrics.clear ();
  locked (fun () ->
      Hashtbl.iter
        (fun _ st ->
          Array.fill st.os_dom_small 0 small_domains 0;
          Hashtbl.reset st.os_domains)
        op_cache)

(* --- report ---------------------------------------------------------- *)

type histogram_summary = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_p50 : int;
  h_p90 : int;
  h_p99 : int;
}

type report = {
  r_enabled : bool;
  r_written : int;
  r_dropped : int;
  r_open_spans : int;
  r_counters : (string * int) list;
  r_gauges : (string * int) list;
  r_histograms : (string * histogram_summary) list;
  r_domain_ops : (int * (string * int) list) list;
}

let summarize (h : Metrics.hist) =
  let p q = Option.value ~default:0 (Metrics.percentile_of h q) in
  { h_count = Atomic.get h.Metrics.count;
    h_sum = Atomic.get h.Metrics.sum;
    h_max = Atomic.get h.Metrics.max_v;
    h_p50 = p 0.5; h_p90 = p 0.9; h_p99 = p 0.99 }

let report () =
  let doms =
    locked (fun () ->
        Hashtbl.fold
          (fun op st acc ->
            let acc =
              Hashtbl.fold (fun d c acc -> (d, op, !c) :: acc) st.os_domains acc
            in
            let acc = ref acc in
            Array.iteri
              (fun d c -> if c > 0 then acc := (d, op, c) :: !acc)
              st.os_dom_small;
            !acc)
          op_cache [])
    |> List.sort compare
  in
  let grouped =
    List.fold_left
      (fun acc (d, op, c) ->
        match acc with
        | (d', ops) :: rest when d' = d -> (d', (op, c) :: ops) :: rest
        | _ -> (d, [ (op, c) ]) :: acc)
      [] doms
    |> List.rev_map (fun (d, ops) -> (d, List.rev ops))
  in
  { r_enabled = !enabled_flag;
    r_written = written ();
    r_dropped = dropped ();
    r_open_spans = open_spans ();
    r_counters = Metrics.counters ();
    r_gauges = Metrics.gauges ();
    r_histograms = List.map (fun (n, h) -> (n, summarize h)) (Metrics.histograms ());
    r_domain_ops = grouped }

let pp_report fmt r =
  Format.fprintf fmt "obs: %s, %d events (%d dropped), %d open spans@\n"
    (if r.r_enabled then "enabled" else "disabled")
    r.r_written r.r_dropped r.r_open_spans;
  if r.r_counters <> [] then begin
    Format.fprintf fmt "counters:@\n";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-32s %d@\n" n v) r.r_counters
  end;
  if r.r_gauges <> [] then begin
    Format.fprintf fmt "gauges:@\n";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-32s %d@\n" n v) r.r_gauges
  end;
  if r.r_histograms <> [] then begin
    Format.fprintf fmt "histograms (cycles; p50/p90/p99 are bucket upper bounds):@\n";
    List.iter
      (fun (n, h) ->
        Format.fprintf fmt "  %-32s n=%-7d p50=%-7d p90=%-7d p99=%-7d max=%d@\n" n
          h.h_count h.h_p50 h.h_p90 h.h_p99 h.h_max)
      r.r_histograms
  end;
  if r.r_domain_ops <> [] then begin
    Format.fprintf fmt "per-domain op counts:@\n";
    List.iter
      (fun (d, ops) ->
        Format.fprintf fmt "  domain %d:@\n" d;
        List.iter (fun (op, c) -> Format.fprintf fmt "    %-30s %d@\n" op c) ops)
      r.r_domain_ops
  end

let report_to_json r =
  let b = Buffer.create 1024 in
  let comma_sep f xs =
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",";
        f x)
      xs
  in
  Buffer.add_string b
    (Printf.sprintf {|{"enabled":%b,"written":%d,"dropped":%d,"open_spans":%d,"counters":{|}
       r.r_enabled r.r_written r.r_dropped r.r_open_spans);
  comma_sep (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%S:%d" n v)) r.r_counters;
  Buffer.add_string b {|},"gauges":{|};
  comma_sep (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%S:%d" n v)) r.r_gauges;
  Buffer.add_string b {|},"histograms":{|};
  comma_sep
    (fun (n, h) ->
      Buffer.add_string b
        (Printf.sprintf {|%S:{"count":%d,"sum":%d,"max":%d,"p50":%d,"p90":%d,"p99":%d}|} n
           h.h_count h.h_sum h.h_max h.h_p50 h.h_p90 h.h_p99))
    r.r_histograms;
  Buffer.add_string b {|},"domain_ops":{|};
  comma_sep
    (fun (d, ops) ->
      Buffer.add_string b (Printf.sprintf {|"%d":{|} d);
      comma_sep (fun (op, c) -> Buffer.add_string b (Printf.sprintf "%S:%d" op c)) ops;
      Buffer.add_string b "}")
    r.r_domain_ops;
  Buffer.add_string b "}}";
  Buffer.contents b
