(** Monitor-wide observability: structured tracing, metrics, profiling.

    A zero-dependency, process-global facility (the same idiom as
    {!Fault}): instrumented layers — API dispatch, captree transactions,
    both backends' hardware writes, the WAL, the key pool — record into
    it without threading a handle, and {!report}/{!events} expose the
    result to [Monitor.observe], the CLI and the benchmarks.

    Three pieces:

    - fixed-size ring buffers of structured {!event}s (span begin/end
      with monotonic cycle stamps, domain id, op kind, backend). Each
      OCaml Domain writes its own ring (domain-local storage), so
      concurrent emitters — the sharded monitor's worker Domains —
      never contend or tear; readers merge the rings by
      [(stamp, ring, seq)] into one causal view. Within a ring the
      writer is single and index-based, plain column arrays — no locks
      and no allocation on the emit path; when a ring wraps, the
      oldest events are overwritten and {!events} drops any span-end
      whose begin was overwritten so readers never see half a pair;
    - a typed metrics registry ({!Metrics}): counters, gauges, and
      histograms with log2-bucketed values (latencies in simulated
      cycles);
    - a {!Profile} wrapper that brackets an operation in a balanced
      span — the end event and the latency observation are emitted from
      an exception-safe [finally], so a fault tripping mid-span can
      never leave the accounting unbalanced.

    Everything here is observation only: with tracing disabled the hot
    path is one branch, and nothing in this module ever raises into the
    instrumented code. *)

type kind = Span_begin | Span_end | Instant

type event = {
  seq : int;  (** Monotonic per-event sequence number (0-based). *)
  stamp : int;  (** Clock reading at emit (simulated cycles). *)
  kind : kind;
  op : string;  (** Operation kind, e.g. ["api.share"], ["wal.append"]. *)
  span : int;  (** Span id pairing begin/end; 0 for instants. *)
  domain : int;  (** Acting domain id; -1 when not attributable. *)
  backend : string;  (** Backend name; [""] when not backend-specific. *)
  trace : int;  (** Causal trace id (see {!new_trace}); 0 = none. *)
}

(** {2 Global switches} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Default: enabled. Disabling stops all recording (events, metrics,
    per-domain counts); already-recorded data is kept. *)

val set_clock : (unit -> int) -> unit
(** Source of {!event.stamp} and span latencies. [Monitor.boot] points
    it at the machine's simulated cycle counter; the default is an
    internal monotonic tick. *)

val configure : ?capacity:int -> unit -> unit
(** Resize the ring (default 4096 events, rounded up to a power of
    two) and clear it. Metrics are unaffected. *)

val reset : unit -> unit
(** Clear the ring, all metrics, per-domain counts and span/trace
    state. The enabled flag, clock and capacity are kept. *)

(** {2 Recording} *)

val intern : string -> int
(** Intern a name (op or backend) to a small id. The ring stores only
    interned ids, so hot call sites hoist the id once — see
    {!Profile.span_h}. Ids are process-lived and survive {!reset}. *)

val instant : ?domain:int -> ?backend:string -> string -> unit
(** Record a point event (e.g. a fault trip). *)

(** {2 Trace context (cross-monitor causality)} *)

val new_trace : unit -> int
(** Allocate a fresh nonzero trace id. *)

val with_trace : int -> (unit -> 'a) -> 'a
(** Run [f] with the given trace id attached to every event it emits
    (exception-safe; restores the previous context). *)

val current_trace : unit -> int
(** The active trace id, 0 when none. *)

(** {2 Metrics registry} *)

module Metrics : sig
  type counter
  type gauge
  type histogram

  val counter : string -> counter
  (** Find-or-create; one instance per name, process-wide. *)

  val incr : ?by:int -> counter -> unit
  val counter_value : string -> int

  val zero_counter : counter -> unit
  (** Reset one handle to 0 (even while recording is disabled). For
      metrics whose registry name outlives the thing measured — e.g.
      per-link fleet counters across endpoint crash-restarts — so a
      recreated owner starts its incarnation at a truthful zero. *)

  val gauge : string -> gauge
  val set_gauge : gauge -> int -> unit
  val gauge_value : string -> int

  val zero_gauge : gauge -> unit
  (** Gauge twin of {!zero_counter}. *)

  val histogram : string -> histogram

  val observe : histogram -> int -> unit
  (** Record a sample into its log2 bucket (negative samples clamp
      to 0). *)

  val bucket_of : int -> int
  (** The bucket index a value lands in: 0 for [v <= 0], otherwise the
      bit length of [v] — so bucket [i >= 1] holds
      [2^(i-1) .. 2^i - 1]. *)

  val bucket_bounds : int -> int * int
  (** Inclusive [(lo, hi)] of a bucket index. Bucket 0 is [(0, 0)]. *)

  val histogram_count : string -> int
  val histogram_sum : string -> int
  val histogram_max : string -> int

  val percentile : string -> float -> int option
  (** Upper bound of the bucket containing the p-quantile sample
      ([p] in [0,1]); [None] when the histogram is empty or absent. *)

  val counters : unit -> (string * int) list
  (** All counters, sorted by name. *)

  val gauges : unit -> (string * int) list
end

(** {2 Profiling} *)

module Profile : sig
  val span : ?domain:int -> ?backend:string -> string -> (unit -> 'a) -> 'a
  (** [span op f] emits a begin event, runs [f], and from an
      exception-safe [finally] emits the end event, observes the
      latency into histogram ["lat." ^ op], bumps counter
      ["op." ^ op], and (when [domain >= 0]) the per-domain op count.
      The span stays balanced when [f] raises (e.g. {!Fault.Injected}
      or a store crash) — the exception is re-raised unchanged. *)

  type handle
  (** A pre-resolved op: the latency histogram, op counter and
      per-domain table looked up once. Handles stay valid across
      {!Obs.reset} (the registry zeroes in place), so hot paths hoist
      them to module level and pay no per-span name lookup. *)

  val handle : string -> handle
  (** [handle op] resolves (creating if needed) the stats for [op]. *)

  val span_h : ?domain:int -> ?backend:int -> handle -> (unit -> 'a) -> 'a
  (** Like {!span}, but against a hoisted {!handle} and a pre-interned
      backend id (see {!Obs.intern}; 0 means "no backend") — the fast
      path for per-op instrumentation on journaled and hardware-write
      paths, where the span body is all immediates. *)
end

(** {2 Reading back} *)

val events : unit -> event list
(** Retained events, oldest first. After wraparound, span-end events
    whose begin was overwritten are dropped so every retained pair is
    whole. *)

val written : unit -> int
(** Total events ever recorded (including overwritten ones). *)

val dropped : unit -> int
(** Events lost to wraparound ([written - capacity], floored at 0). *)

val open_spans : unit -> int
(** Spans begun but not yet ended; 0 whenever no instrumented call is
    on the stack. *)

val event_to_json : event -> string
(** One JSON object (a JSON-lines row) per event. *)

val check : unit -> (unit, string) result
(** The self-audit the chaos drivers and the [@coverage] gate run:
    no unbalanced (still-open) spans, event accounting reconciles
    (retained + dropped = written, with orphaned ends only ever caused
    by wraparound), and sequence numbers are strictly increasing. *)

(** {2 Aggregate report (for [Monitor.observe])} *)

type histogram_summary = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_p50 : int;  (** Bucket upper bounds; 0 when empty. *)
  h_p90 : int;
  h_p99 : int;
}

type report = {
  r_enabled : bool;
  r_written : int;
  r_dropped : int;
  r_open_spans : int;
  r_counters : (string * int) list;
  r_gauges : (string * int) list;
  r_histograms : (string * histogram_summary) list;
  r_domain_ops : (int * (string * int) list) list;
      (** Per-domain op counts, sorted by domain then op. *)
}

val report : unit -> report
val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> string
