let ( let* ) = Result.bind

let monitor_err r = Result.map_error Tyche.Monitor.error_to_string r

(* The caller's active capability whose memory range contains [range];
   carving changes which capability covers an address, so the loader
   re-finds it before every carve. *)
let cap_containing monitor ~domain range =
  let tree = Tyche.Monitor.tree monitor in
  List.find_opt
    (fun cap ->
      match Cap.Captree.resource tree cap with
      | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.includes ~outer:r ~inner:range
      | _ -> false)
    (Tyche.Monitor.caps_of monitor domain)

let core_cap monitor ~domain core_id =
  let tree = Tyche.Monitor.tree monitor in
  List.find_opt
    (fun cap ->
      Cap.Captree.resource tree cap = Some (Cap.Resource.Cpu_core core_id))
    (Tyche.Monitor.caps_of monitor domain)

let padded_content seg =
  let len = Hw.Addr.align_up (max 1 (String.length seg.Image.data)) in
  seg.Image.data ^ String.make (len - String.length seg.Image.data) '\x00'

let default_flush kind =
  match kind with
  | Tyche.Domain.Enclave | Tyche.Domain.Confidential_vm -> true
  | Tyche.Domain.Os | Tyche.Domain.Sandbox | Tyche.Domain.Io_domain
  | Tyche.Domain.Remote -> false

let load monitor ~caller ~core ~memory_cap ~at ~image ~kind ?cores ?flush_on_transition
    ?(seal = true) () =
  let* () = Image.validate image in
  if not (Hw.Addr.is_page_aligned at) then Error "load base must be page-aligned"
  else if Tyche.Monitor.current_domain monitor ~core <> caller then
    Error "caller is not the domain currently running on the given core"
  else begin
    let flush = Option.value flush_on_transition ~default:(default_flush kind) in
    let cores = Option.value cores ~default:[ core ] in
    let footprint = Hw.Addr.Range.make ~base:at ~len:(Image.size image) in
    let tree = Tyche.Monitor.tree monitor in
    let* () =
      match Cap.Captree.resource tree memory_cap with
      | Some (Cap.Resource.Memory r) when Hw.Addr.Range.includes ~outer:r ~inner:footprint ->
        if Cap.Captree.owner tree memory_cap = Some caller then Ok ()
        else Error "memory capability is not owned by the caller"
      | Some (Cap.Resource.Memory _) ->
        Error "memory capability does not cover the image footprint"
      | _ -> Error "memory capability is not a memory capability"
    in
    let* domain =
      monitor_err
        (Tyche.Monitor.create_domain monitor ~caller ~name:image.Image.image_name ~kind)
    in
    (* Carve, write, and delegate each segment. *)
    let rec load_segments acc = function
      | [] -> Ok (List.rev acc)
      | seg :: rest ->
        let range = Image.segment_range seg ~at in
        let* holder =
          match cap_containing monitor ~domain:caller range with
          | Some c -> Ok c
          | None -> Error ("no caller capability covers segment " ^ seg.Image.seg_name)
        in
        let* piece =
          monitor_err (Tyche.Monitor.carve monitor ~caller ~cap:holder ~subrange:range)
        in
        let* () =
          monitor_err
            (Tyche.Monitor.store_string monitor ~core (Hw.Addr.Range.base range)
               (padded_content seg))
        in
        let* delegated =
          match seg.Image.visibility with
          | Image.Confidential ->
            monitor_err
              (Tyche.Monitor.grant monitor ~caller ~cap:piece ~to_:domain
                 ~rights:
                   { Cap.Rights.perm = seg.Image.perm; can_share = true; can_grant = true }
                 ~cleanup:Cap.Revocation.Zero_and_flush)
          | Image.Shared ->
            monitor_err
              (Tyche.Monitor.share monitor ~caller ~cap:piece ~to_:domain
                 ~rights:
                   { Cap.Rights.perm = seg.Image.perm; can_share = false; can_grant = false }
                 ~cleanup:Cap.Revocation.Keep ())
        in
        let* () =
          if seg.Image.measured then
            monitor_err (Tyche.Monitor.mark_measured monitor ~caller ~domain range)
          else Ok ()
        in
        load_segments ((seg.Image.seg_name, delegated) :: acc) rest
    in
    let* segment_caps = load_segments [] image.Image.segments in
    (* Give the new domain its cores. *)
    let rec share_cores = function
      | [] -> Ok ()
      | c :: rest ->
        let* cap =
          match core_cap monitor ~domain:caller c with
          | Some cap -> Ok cap
          | None -> Error (Printf.sprintf "caller holds no capability for core %d" c)
        in
        (* can_share stays true so the new domain can pass the core on
           to nested domains it spawns (§4.2). *)
        let* _ =
          monitor_err
            (Tyche.Monitor.share monitor ~caller ~cap ~to_:domain
               ~rights:{ Cap.Rights.perm = Hw.Perm.rwx; can_share = true; can_grant = false }
               ~cleanup:Cap.Revocation.Keep ())
        in
        share_cores rest
    in
    let* () = share_cores cores in
    let* () =
      monitor_err
        (Tyche.Monitor.set_entry_point monitor ~caller ~domain (at + image.Image.entry))
    in
    let* () = monitor_err (Tyche.Monitor.set_flush_policy monitor ~caller ~domain flush) in
    let* () =
      if seal then monitor_err (Tyche.Monitor.seal monitor ~caller ~domain) else Ok ()
    in
    Ok { Handle.domain; base = at; image; segment_caps; cores }
  end

let offline_measurement ~image ~kind ?flush_on_transition () =
  let flush = Option.value flush_on_transition ~default:(default_flush kind) in
  let ranges =
    List.filter_map
      (fun seg ->
        if seg.Image.measured then
          Some (Image.segment_range seg ~at:0, Crypto.Sha256.string (padded_content seg))
        else None)
      image.Image.segments
  in
  Tyche.Measure.domain_digest ~kind ~entry_point:image.Image.entry
    ~flush_on_transition:flush ~ranges
