module Chain = Chain
module Policy = Policy
module Topology = Topology

type reference_values = {
  tpm_root : Crypto.Sha256.digest;
  expected_pcrs : (int * Crypto.Sha256.digest) list;
  monitor_root : Crypto.Sha256.digest;
}

type decision = { trusted : bool; failures : string list }

let pp_decision fmt d =
  if d.trusted then Format.pp_print_string fmt "TRUSTED"
  else
    Format.fprintf fmt "@[<v>REJECTED:%a@]"
      (fun fmt -> List.iter (Format.fprintf fmt "@,  - %s"))
      d.failures

let establish_trust rv ~nonce ~boot_quote ~attestations =
  let boot_failures =
    match
      Chain.verify_boot ~tpm_root:rv.tpm_root ~expected_pcrs:rv.expected_pcrs
        ~claimed_monitor_root:rv.monitor_root ~nonce boot_quote
    with
    | Ok () -> []
    | Error e -> [ "boot: " ^ e ]
  in
  let domain_failures =
    List.concat_map
      (fun (att, policy) ->
        let who = Printf.sprintf "domain %d" att.Tyche.Attestation.domain in
        match Chain.verify_domain ~monitor_root:rv.monitor_root ~nonce att with
        | Error e -> [ who ^ ": " ^ e ]
        | Ok () -> (
          match Policy.check policy att with
          | Ok () -> []
          | Error msgs -> List.map (fun m -> who ^ ": " ^ m) msgs))
      attestations
  in
  let failures = boot_failures @ domain_failures in
  { trusted = failures = []; failures }

let attest_and_decide ?(batched = false) monitor rv ~nonce ~domains =
  let boot_quote = Tyche.Monitor.boot_quote monitor ~nonce in
  let attestations, fetch_failures =
    if batched then
      (* One proof-carrying report per domain, one monitor signature for
         the whole set (v2 evidence; verified by the same chain). *)
      match
        Tyche.Monitor.attest_batch monitor ~caller:Tyche.Domain.initial
          ~domains:(List.map fst domains) ~nonce
      with
      | Ok atts -> (List.combine atts (List.map snd domains), [])
      | Error e ->
        ([], [ "batch attestation unavailable: " ^ Tyche.Monitor.error_to_string e ])
    else
      let atts, fails =
        List.fold_left
          (fun (atts, fails) (domain, policy) ->
            match
              Tyche.Monitor.attest monitor ~caller:Tyche.Domain.initial ~domain ~nonce
            with
            | Ok att -> ((att, policy) :: atts, fails)
            | Error e ->
              ( atts,
                Printf.sprintf "domain %d: attestation unavailable: %s" domain
                  (Tyche.Monitor.error_to_string e)
                :: fails ))
          ([], []) domains
      in
      (List.rev atts, List.rev fails)
  in
  let d = establish_trust rv ~nonce ~boot_quote ~attestations in
  let failures = d.failures @ fetch_failures in
  { trusted = failures = []; failures }
