type requirement =
  | Sealed
  | Kind_is of Tyche.Domain.kind
  | Measurement_is of Crypto.Sha256.digest
  | Region_exclusive of Hw.Addr.Range.t
  | Region_shared_only_with of Hw.Addr.Range.t * Tyche.Domain.id list
  | No_foreign_sharing_except of Tyche.Domain.id list
  | Has_core of int
  | Holds_device of int
  | Memory_encrypted
  | Batched_evidence

let pp_requirement fmt = function
  | Sealed -> Format.pp_print_string fmt "sealed"
  | Kind_is k -> Format.fprintf fmt "kind=%a" Tyche.Domain.pp_kind k
  | Measurement_is d -> Format.fprintf fmt "measurement=%a" Crypto.Sha256.pp d
  | Region_exclusive r -> Format.fprintf fmt "exclusive%a" Hw.Addr.Range.pp r
  | Region_shared_only_with (r, ds) ->
    Format.fprintf fmt "shared-only%a with [%s]" Hw.Addr.Range.pp r
      (String.concat ";" (List.map string_of_int ds))
  | No_foreign_sharing_except ds ->
    Format.fprintf fmt "no-foreign-sharing except [%s]"
      (String.concat ";" (List.map string_of_int ds))
  | Has_core c -> Format.fprintf fmt "has-core %d" c
  | Holds_device d -> Format.fprintf fmt "holds-device %04x" d
  | Memory_encrypted -> Format.pp_print_string fmt "memory-encrypted"
  | Batched_evidence -> Format.pp_print_string fmt "batched-evidence"

type t = requirement list

let overlapping_regions (att : Tyche.Attestation.t) range =
  List.filter
    (fun r -> Hw.Addr.Range.overlaps r.Tyche.Attestation.range range)
    att.Tyche.Attestation.regions

let check_one (att : Tyche.Attestation.t) req =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match req with
  | Sealed -> if att.sealed then Ok () else fail "domain is not sealed"
  | Kind_is k ->
    if att.kind = k then Ok ()
    else
      fail "kind is %s, wanted %s"
        (Tyche.Domain.kind_to_string att.kind)
        (Tyche.Domain.kind_to_string k)
  | Measurement_is expected -> (
    match att.measurement with
    | Some m when Crypto.Sha256.equal m expected -> Ok ()
    | Some m -> fail "measurement %s != expected %s" (Crypto.Sha256.to_hex m)
                  (Crypto.Sha256.to_hex expected)
    | None -> fail "domain reports no measurement")
  | Region_exclusive range -> (
    match overlapping_regions att range with
    | [] -> fail "no reported region overlaps %s" (Format.asprintf "%a" Hw.Addr.Range.pp range)
    | regions ->
      (match List.find_opt (fun r -> r.Tyche.Attestation.refcount <> 1) regions with
      | None -> Ok ()
      | Some r ->
        fail "region %s has refcount %d, not exclusive"
          (Format.asprintf "%a" Hw.Addr.Range.pp r.Tyche.Attestation.range)
          r.Tyche.Attestation.refcount))
  | Region_shared_only_with (range, allowed) -> (
    match overlapping_regions att range with
    | [] -> fail "no reported region overlaps %s" (Format.asprintf "%a" Hw.Addr.Range.pp range)
    | regions ->
      let bad =
        List.concat_map
          (fun r ->
            List.filter
              (fun h -> h <> att.domain && not (List.mem h allowed))
              r.Tyche.Attestation.holders)
          regions
      in
      (match bad with
      | [] -> Ok ()
      | h :: _ -> fail "region shared with unauthorized domain %d" h))
  | No_foreign_sharing_except allowed ->
    let bad =
      List.concat_map
        (fun r ->
          List.filter
            (fun h -> h <> att.domain && not (List.mem h allowed))
            r.Tyche.Attestation.holders)
        att.regions
    in
    (match bad with
    | [] -> Ok ()
    | h :: _ -> fail "some region is reachable by unauthorized domain %d" h)
  | Has_core c ->
    if List.mem_assoc c att.cores then Ok () else fail "domain holds no core %d" c
  | Holds_device d ->
    if List.mem_assoc d att.devices then Ok () else fail "domain holds no device %04x" d
  | Memory_encrypted ->
    if att.memory_encrypted then Ok ()
    else fail "domain memory is not under a private encryption key"
  | Batched_evidence -> (
    (* Downgrade pin: a verifier that saw this monitor speak wire v2
       refuses a v1 [Signed] envelope — a man-in-the-middle cannot
       strip the Merkle batch and replay a direct signature. *)
    match att.evidence with
    | Tyche.Attestation.Batched _ -> Ok ()
    | Tyche.Attestation.Signed _ ->
      fail "evidence is a direct (wire v1) signature, batched (v2) required")

let check t att =
  let failures =
    List.filter_map
      (fun req ->
        match check_one att req with
        | Ok () -> None
        | Error msg -> Some (Format.asprintf "%a: %s" pp_requirement req msg))
      t
  in
  if failures = [] then Ok () else Error failures
