(** Declarative attestation policies.

    A remote party does not read attestations by hand: it states the
    properties its trust decision needs — "this exact binary", "that
    region is exclusively owned", "shared with nobody but the crypto
    engine" — and checks the signed report against them. This is how
    the paper's customer in Fig. 2 decides to provision its key. *)

type requirement =
  | Sealed (** The domain's configuration is frozen. *)
  | Kind_is of Tyche.Domain.kind
  | Measurement_is of Crypto.Sha256.digest
      (** Matches libtyche's offline hash of the expected binary. *)
  | Region_exclusive of Hw.Addr.Range.t
      (** Every reported region overlapping this range has refcount 1. *)
  | Region_shared_only_with of Hw.Addr.Range.t * Tyche.Domain.id list
      (** Holders of overlapping regions are the domain itself plus at
          most the listed partners. *)
  | No_foreign_sharing_except of Tyche.Domain.id list
      (** Globally: no region is reachable by any domain outside this
          allow-list (the domain itself is always allowed). *)
  | Has_core of int
  | Holds_device of int
  | Memory_encrypted
      (** The platform keeps the domain's memory under a private
          encryption key — required for physical-attack resistance. *)
  | Batched_evidence
      (** The report must carry wire-v2 Merkle-batched evidence. Pins
          a verifier against downgrade: once it expects batched proofs,
          an adversary replaying a v1 direct-signature envelope is
          rejected even when that signature verifies. *)

val pp_requirement : Format.formatter -> requirement -> unit

type t = requirement list

val check : t -> Tyche.Attestation.t -> (unit, string list) result
(** Evaluate every requirement; returns all failures, not just the
    first. Does NOT verify the signature — compose with
    {!Chain.verify_domain}. *)
