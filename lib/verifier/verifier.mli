(** The remote verifier: the judiciary, end to end.

    Drives the full trust-establishment flow of Fig. 2: verify the boot
    chain, derive trust in the monitor's key, fetch and verify domain
    attestations, and evaluate the customer's policies — returning one
    decision with every failure that contributed to a rejection.

    Submodules: {!Chain} (signature/PCR checking), {!Policy}
    (declarative requirements). *)

module Chain = Chain
module Policy = Policy
module Topology = Topology

(** Everything the verifier must know *before* talking to the machine
    (out-of-band / supply-chain knowledge). *)
type reference_values = {
  tpm_root : Crypto.Sha256.digest;
  expected_pcrs : (int * Crypto.Sha256.digest) list;
      (** Golden boot measurements ({!Rot.Boot.expected_pcrs}). *)
  monitor_root : Crypto.Sha256.digest;
      (** The monitor attestation key the verifier will accept. *)
}

type decision = {
  trusted : bool;
  failures : string list; (** Empty iff [trusted]. *)
}

val pp_decision : Format.formatter -> decision -> unit

val establish_trust :
  reference_values ->
  nonce:string ->
  boot_quote:Rot.Tpm.Quote.t ->
  attestations:(Tyche.Attestation.t * Policy.t) list ->
  decision
(** One-shot evaluation: boot chain first (its failure taints
    everything), then each attestation's signature, freshness and
    policy. *)

val attest_and_decide :
  ?batched:bool ->
  Tyche.Monitor.t ->
  reference_values ->
  nonce:string ->
  domains:(Tyche.Domain.id * Policy.t) list ->
  decision
(** Convenience for tests and examples: pull the quote and the
    attestations straight from a live monitor (as domain 0 would relay
    them to the remote verifier) and evaluate. With [~batched:true]
    (default false) the monitor produces one {!Tyche.Monitor.attest_batch}
    call — one root signature plus per-domain inclusion proofs — instead
    of one directly signed report per domain; the verification chain is
    unchanged. *)
