type t = {
  managed : Hw.Addr.Range.t;
  mutable free_list : Hw.Addr.Range.t list; (* sorted by base, disjoint *)
}

let create range =
  if not (Hw.Addr.Range.is_page_aligned range) then
    invalid_arg "Alloc.create: range must be page-aligned";
  { managed = range; free_list = [ range ] }

let round_up bytes = Hw.Addr.align_up (max 1 bytes)

(* Graceful-degradation point: a fired fault makes the allocation
   report exhaustion ([None]) without touching the free list, exactly
   as if no hole were large enough. *)
let alloc_fault = Fault.register "alloc"

let take_from t range piece =
  t.free_list <-
    List.concat_map
      (fun r -> if Hw.Addr.Range.equal r range then Hw.Addr.Range.subtract r piece else [ r ])
      t.free_list

let alloc_aligned t ~bytes ~align =
  if align <= 0 || align land (align - 1) <> 0 || align mod Hw.Addr.page_size <> 0 then
    invalid_arg "Alloc.alloc_aligned: align must be a power-of-two multiple of the page size";
  let len = round_up bytes in
  let fits r =
    let base = (Hw.Addr.Range.base r + align - 1) / align * align in
    if base + len <= Hw.Addr.Range.limit r then Some (r, Hw.Addr.Range.make ~base ~len)
    else None
  in
  if Fault.fires alloc_fault then None
  else
    match List.find_map fits t.free_list with
    | Some (host, piece) ->
      take_from t host piece;
      Some piece
    | None -> None

let alloc t ~bytes = alloc_aligned t ~bytes ~align:Hw.Addr.page_size

let free t range =
  if not (Hw.Addr.Range.includes ~outer:t.managed ~inner:range) then
    invalid_arg "Alloc.free: range outside managed memory";
  if List.exists (Hw.Addr.Range.overlaps range) t.free_list then
    invalid_arg "Alloc.free: double free";
  let merged =
    List.sort Hw.Addr.Range.compare (range :: t.free_list)
    |> List.fold_left
         (fun acc r ->
           match acc with
           | prev :: rest when Hw.Addr.Range.adjacent prev r ->
             Option.get (Hw.Addr.Range.merge prev r) :: rest
           | _ -> r :: acc)
         []
    |> List.rev
  in
  t.free_list <- merged

let free_bytes t = List.fold_left (fun acc r -> acc + Hw.Addr.Range.len r) 0 t.free_list

let largest_free t = List.fold_left (fun acc r -> max acc (Hw.Addr.Range.len r)) 0 t.free_list

let fragments t = List.length t.free_list
