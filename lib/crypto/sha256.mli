(** From-scratch SHA-256 (FIPS 180-4).

    This is the only hash used by the whole system: TPM PCR extension,
    domain measurements, Merkle trees and the hash-based signature scheme
    are all built on it. The implementation is pure OCaml and processes
    arbitrary [string] / [Bytes.t] messages.

    The compression core runs on unboxed [Int32] words held in
    preallocated scratch buffers accessed with the unsafe 32-bit
    primitives, and the one-shot entry points reuse a single scratch
    context, so hashing allocates nothing but the returned digest. The
    original Int32 transliteration is preserved as {!Spec} and
    cross-checked in tests. *)

type digest
(** A 32-byte SHA-256 digest. Abstract to prevent confusion with raw
    strings; use {!to_raw} / {!of_raw} at serialization boundaries. *)

val digest_size : int
(** Size of a digest in bytes (32). *)

val string : string -> digest
(** [string s] hashes the whole string [s]. *)

val bytes : Bytes.t -> digest
(** [bytes b] hashes the whole byte buffer [b]. *)

val digest_bytes : Bytes.t -> off:int -> len:int -> digest
(** [digest_bytes b ~off ~len] hashes the slice [b.[off .. off+len-1]]
    without copying it or allocating a context.
    @raise Invalid_argument if the slice is out of bounds. *)

val digest_strings : string list -> digest
(** [digest_strings ss] hashes the concatenation of [ss] without
    materializing it — the multi-buffer one-shot used by canonical
    payload construction. *)

val concat : digest list -> digest
(** [concat ds] hashes the concatenation of the raw digests [ds]; used for
    PCR-style folds and Merkle interior nodes. *)

val hash32_into : src:Bytes.t -> dst:Bytes.t -> unit
(** [hash32_into ~src ~dst] writes SHA-256 of the first 32 bytes of
    [src] into the first 32 bytes of [dst] ([src == dst] is allowed). A
    32-byte message fits one padded block, so this is a single
    compression with zero allocation — the kernel under {!Ots} hash
    chains.
    @raise Invalid_argument if either buffer is shorter than 32 bytes. *)

val hash32_sub : src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> unit
(** {!hash32_into} at explicit offsets, so a whole hash chain can live
    in one flat buffer (see {!Ots.generate}).
    @raise Invalid_argument if either 32-byte slice is out of bounds. *)

val to_raw : digest -> string
(** Raw 32-byte big-endian representation. *)

val of_raw : string -> digest
(** Inverse of {!to_raw}.
    @raise Invalid_argument if the input is not exactly 32 bytes. *)

val to_hex : digest -> string
(** Lowercase hexadecimal rendering (64 chars). *)

val of_hex : string -> digest
(** Parse a 64-char hex string.
    @raise Invalid_argument on malformed input. *)

val equal : digest -> digest -> bool
val compare : digest -> digest -> int
val pp : Format.formatter -> digest -> unit

val zero : digest
(** The all-zero digest, used as the initial value of measurement
    registers (TPM PCR reset state). *)

(** Incremental hashing interface, for streaming measurement of large
    memory regions without copying them into one buffer. *)
module Ctx : sig
  type t

  val create : unit -> t
  val feed_bytes : t -> Bytes.t -> off:int -> len:int -> unit
  val feed_string : t -> string -> unit
  val finalize : t -> digest

  val reset : t -> unit
  (** Return the context to its freshly-created state so it can be
      reused without reallocating its buffers. *)

  val fed_length : t -> int
  (** Total number of bytes fed so far. *)
end

(** The executable specification: the original Int32 implementation,
    transliterated from FIPS 180-4. Slow (every Int32 operation boxes)
    but easy to audit; the fast core is property-tested against it, and
    the E14 benchmarks use it as the pre-optimization baseline. *)
module Spec : sig
  val string : string -> digest
end
