(* A stock of pregenerated one-time key pairs. Generating a WOTS pair
   costs 67 chains x 15 hashes, so building a signer (2^height pairs) is
   by far the most expensive step on the boot and key-rotation paths.
   The pool lets that cost be paid ahead of time: [take] pops a
   pregenerated pair (falling back to on-demand generation when empty),
   and [replenish] — called eagerly by [Signature.sign] — refills the
   stock back to [target] whenever it drops below [low_water], so by the
   time a signer needs to be (re)built the keys already exist. *)

type t = {
  rng : Rng.t;
  stock : (Ots.secret_key * Ots.public_key) Queue.t;
  target : int;
  low_water : int;
  mutable hits : int;    (* takes served from stock *)
  mutable misses : int;  (* takes that had to generate *)
}

let default_target = 128

(* Graceful-degradation injection points: a failed take degrades to
   on-demand generation (a miss, visible in [stats]); a failed
   replenish leaves the stock low until the next one succeeds. Neither
   can make a signature fail — the pool only changes *when* keys are
   generated. *)
let hit_c = Obs.Metrics.counter "keypool.hit"
let miss_c = Obs.Metrics.counter "keypool.miss"
let stock_g = Obs.Metrics.gauge "keypool.stock"

let take_fault = Fault.register "keypool.take"
let replenish_fault = Fault.register "keypool.replenish"

let create ?low_water ?(target = default_target) rng =
  if target < 0 then invalid_arg "Keypool.create: negative target";
  let low_water = match low_water with Some l -> l | None -> target / 2 in
  if low_water < 0 || low_water > target then
    invalid_arg "Keypool.create: low_water out of range";
  let t = { rng; stock = Queue.create (); target; low_water; hits = 0; misses = 0 } in
  for _ = 1 to target do
    Queue.add (Ots.generate rng) t.stock
  done;
  t

let size t = Queue.length t.stock
let low_water t = t.low_water
let target t = t.target

let take t =
  Obs.Profile.span "keypool.take" (fun () ->
      match if Fault.fires take_fault then None else Queue.take_opt t.stock with
      | Some pair ->
          t.hits <- t.hits + 1;
          Obs.Metrics.incr hit_c;
          pair
      | None ->
          t.misses <- t.misses + 1;
          Obs.Metrics.incr miss_c;
          Ots.generate t.rng)

let replenish t =
  Obs.Profile.span "keypool.replenish" (fun () ->
      if Fault.fires replenish_fault then ()
      else if Queue.length t.stock < t.low_water then
        while Queue.length t.stock < t.target do
          Queue.add (Ots.generate t.rng) t.stock
        done;
      Obs.Metrics.set_gauge stock_g (Queue.length t.stock))

let stats t = (t.hits, t.misses)

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.misses /. float_of_int total
