(* A stock of pregenerated one-time key pairs. Generating a WOTS pair
   costs 67 chains x 15 hashes, so building a signer (2^height pairs) is
   by far the most expensive step on the boot and key-rotation paths.
   The pool lets that cost be paid ahead of time: [take] pops a
   pregenerated pair (falling back to on-demand generation when empty),
   and [replenish] — called eagerly by [Signature.sign] — refills the
   stock back to [target] whenever it drops below [low_water], so by the
   time a signer needs to be (re)built the keys already exist. *)

type t = {
  rng : Rng.t;
  stock : (Ots.secret_key * Ots.public_key) Queue.t;
  (* Guards [stock], [hits] and [misses]: concurrent attests (one per
     monitor shard) all take from one pool. Key *generation* never runs
     under the lock — a take that misses and a replenish both generate
     outside it, so the critical section is a queue pop or push. *)
  lock : Mutex.t;
  target : int;
  low_water : int;
  mutable hits : int;    (* takes served from stock *)
  mutable misses : int;  (* takes that had to generate *)
}

let default_target = 128

(* Graceful-degradation injection points: a failed take degrades to
   on-demand generation (a miss, visible in [stats]); a failed
   replenish leaves the stock low until the next one succeeds. Neither
   can make a signature fail — the pool only changes *when* keys are
   generated. *)
let hit_c = Obs.Metrics.counter "keypool.hit"
let miss_c = Obs.Metrics.counter "keypool.miss"
let stock_g = Obs.Metrics.gauge "keypool.stock"

let take_fault = Fault.register "keypool.take"
let replenish_fault = Fault.register "keypool.replenish"

let create ?low_water ?(target = default_target) rng =
  if target < 0 then invalid_arg "Keypool.create: negative target";
  let low_water = match low_water with Some l -> l | None -> target / 2 in
  if low_water < 0 || low_water > target then
    invalid_arg "Keypool.create: low_water out of range";
  let t =
    { rng; stock = Queue.create (); lock = Mutex.create (); target; low_water;
      hits = 0; misses = 0 }
  in
  for _ = 1 to target do
    Queue.add (Ots.generate rng) t.stock
  done;
  t

let size t = Mutex.protect t.lock (fun () -> Queue.length t.stock)
let low_water t = t.low_water
let target t = t.target

let take t =
  Obs.Profile.span "keypool.take" (fun () ->
      let faulted = Fault.fires take_fault in
      let popped =
        Mutex.protect t.lock (fun () ->
            let p = if faulted then None else Queue.take_opt t.stock in
            (match p with
            | Some _ -> t.hits <- t.hits + 1
            | None -> t.misses <- t.misses + 1);
            p)
      in
      match popped with
      | Some pair ->
          Obs.Metrics.incr hit_c;
          pair
      | None ->
          Obs.Metrics.incr miss_c;
          (* Miss: generate outside the lock, other takers keep going. *)
          Ots.generate t.rng)

let replenish t =
  Obs.Profile.span "keypool.replenish" (fun () ->
      if Fault.fires replenish_fault then ()
      else begin
        let need =
          Mutex.protect t.lock (fun () ->
              let n = Queue.length t.stock in
              if n < t.low_water then t.target - n else 0)
        in
        if need > 0 then begin
          (* The expensive part (WOTS chain precomputation) runs outside
             the lock: concurrent signers keep taking from the stock
             while one of them rebuilds it. *)
          let fresh = List.init need (fun _ -> Ots.generate t.rng) in
          Mutex.protect t.lock (fun () ->
              List.iter (fun pair -> Queue.add pair t.stock) fresh)
        end
      end;
      Obs.Metrics.set_gauge stock_g (size t))

let stats t = Mutex.protect t.lock (fun () -> (t.hits, t.misses))

let miss_rate t =
  let hits, misses = stats t in
  let total = hits + misses in
  if total = 0 then 0. else float_of_int misses /. float_of_int total
