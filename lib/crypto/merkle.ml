(* Standard binary Merkle tree with domain-separated leaf/node hashing.
   Odd levels duplicate the last node (Bitcoin-style), which keeps proofs
   simple; leaf prefixes prevent confusing an interior node for a leaf. *)

let hash_leaf d = Sha256.string ("\x00" ^ Sha256.to_raw d)
let hash_node l r = Sha256.string ("\x01" ^ Sha256.to_raw l ^ Sha256.to_raw r)

type t = {
  levels : Sha256.digest array array;
  (* levels.(0) = hashed leaves, last level = [| root |] *)
}

let build leaves =
  if leaves = [] then invalid_arg "Merkle.build: empty leaf list";
  let level0 = Array.of_list (List.map hash_leaf leaves) in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let parent =
        Array.init ((n + 1) / 2) (fun i ->
            let l = level.(2 * i) in
            let r = if (2 * i) + 1 < n then level.((2 * i) + 1) else l in
            hash_node l r)
      in
      up (level :: acc) parent
    end
  in
  { levels = Array.of_list (up [] level0) }

let root t = t.levels.(Array.length t.levels - 1).(0)
let leaf_count t = Array.length t.levels.(0)

type proof = { leaf_index : int; path : Sha256.digest list }

let prove t i =
  if i < 0 || i >= leaf_count t then invalid_arg "Merkle.prove: index out of range";
  let rec walk level idx acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let nodes = t.levels.(level) in
      let sibling_idx = if idx land 1 = 0 then idx + 1 else idx - 1 in
      let sibling =
        if sibling_idx < Array.length nodes then nodes.(sibling_idx) else nodes.(idx)
      in
      walk (level + 1) (idx / 2) (sibling :: acc)
    end
  in
  { leaf_index = i; path = walk 0 i [] }

let verify ~root:expected ~leaf proof =
  (* The index must be addressable by the path: bits above the path
     length would be silently ignored by the climb, letting distinct
     (index, path) pairs verify identically. *)
  proof.leaf_index >= 0
  && proof.leaf_index lsr List.length proof.path = 0
  &&
  let rec climb idx acc = function
    | [] -> acc
    | sibling :: rest ->
      let acc =
        if idx land 1 = 0 then hash_node acc sibling else hash_node sibling acc
      in
      climb (idx / 2) acc rest
  in
  let computed = climb proof.leaf_index (hash_leaf leaf) proof.path in
  Sha256.equal computed expected
