(* SplitMix64: tiny, statistically solid for simulation purposes, and
   trivially reproducible across runs. Not a CSPRNG — the security of the
   signature scheme in this repo rests on SHA-256 preimage resistance over
   secrets derived from seeds the tests control. *)

(* Domain-safe: the state is an atomic, and [next_int64] claims its
   position in the sequence with a CAS loop — concurrent callers each
   get a distinct element of the same SplitMix64 stream, and the
   single-threaded sequence is bit-identical to the old mutable-field
   implementation (reproducibility is load-bearing: chaos seeds and
   recorded workloads replay through this). *)
type t = { state : int64 Atomic.t }

let create ~seed = { state = Atomic.make seed }

let of_string_seed s =
  let d = Sha256.to_raw (Sha256.string s) in
  let seed = ref 0L in
  for i = 0 to 7 do
    seed := Int64.logor (Int64.shift_left !seed 8) (Int64.of_int (Char.code d.[i]))
  done;
  create ~seed:!seed

let next_int64 t =
  let rec claim () =
    let cur = Atomic.get t.state in
    let next = Int64.add cur 0x9E3779B97F4A7C15L in
    if Atomic.compare_and_set t.state cur next then next else claim ()
  in
  let z = claim () in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Drop two bits so the value always fits OCaml's 63-bit int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bytes t n =
  String.init n (fun _ -> Char.chr (Int64.to_int (Int64.logand (next_int64 t) 0xFFL)))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t = create ~seed:(next_int64 t)
