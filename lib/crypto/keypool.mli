(** Pregenerated one-time key pairs for the attestation signers.

    WOTS key generation (67 hash chains of 15 steps per pair) dominates
    the cost of building a {!Signature.signer}, which needs [2^height]
    pairs up front because the Merkle root commits to all of them. A
    keypool moves that work off the boot / key-rotation path: pairs are
    generated ahead of time, {!take} pops one in O(1), and
    {!Signature.sign} eagerly calls {!replenish} after each signature so
    the stock is already rebuilt by the time a fresh signer is needed.

    Security note: the pool changes *when* keys are generated, never
    *how* — pairs come from the same [Rng] stream and each is still used
    at most once (the signer enforces one-shot use). *)

type t

val create : ?low_water:int -> ?target:int -> Rng.t -> t
(** [create ?low_water ?target rng] builds a pool and prefills it with
    [target] pairs (default 128 — two default-height signers' worth).
    [low_water] (default [target / 2]) is the threshold below which
    {!replenish} refills back to [target].
    @raise Invalid_argument if [target < 0] or [low_water] is not within
    [0 .. target]. *)

val take : t -> Ots.secret_key * Ots.public_key
(** Pop a pregenerated pair; falls back to generating one on the spot
    when the stock is empty (a miss, visible in {!stats}). *)

val replenish : t -> unit
(** Refill the stock to [target] if it has dropped below [low_water];
    O(1) when the stock is healthy. *)

val size : t -> int
(** Pairs currently in stock. *)

val low_water : t -> int
val target : t -> int

val stats : t -> int * int
(** [(hits, misses)]: takes served from stock vs. generated on demand.
    A take failed by an armed fault plan counts as a miss — the pool
    degrades to on-demand generation, it never fails a signature. *)

val miss_rate : t -> float
(** [misses / (hits + misses)], or [0.] before any take — surfaced in
    [Monitor.attest] telemetry so operators see pool starvation. *)
