(* WOTS with w = 16: a 256-bit digest is cut into 64 4-bit chunks, plus a
   3-chunk checksum, giving 67 hash chains of length 15. The secret key is
   67 random 32-byte values; the public key is each value hashed 15 times;
   a signature walks each chain to the chunk value, and verification
   completes the walk and compares.

   Chain walking dominates the cost of every sign/verify (~500 SHA-256
   calls per signature), so [hash_times] runs on a single scratch buffer
   via [Sha256.hash32_into] — one compression and zero allocations per
   chain step — instead of allocating a fresh string per step.

   Key generation must walk every chain to its end anyway (the public
   key is the last link), so it keeps all the intermediate links in one
   flat buffer: signing then just copies out the link each chunk selects
   instead of recomputing hash chains, moving the entire chain-walking
   cost of [sign] to [generate] — which {!Keypool} in turn runs ahead of
   time, off the attestation path. The signature bytes are unchanged. *)

let chain_count = 67 (* 64 message chunks + 3 checksum chunks *)
let chain_length = 15

(* All links of all chains: chain [i]'s link [c] (the seed hashed [c]
   times) lives at offset [(i * 16 + c) * 32]. 67 * 16 * 32 = ~34 KiB
   per key — the classic Winternitz time/memory trade. *)
type secret_key = { links : Bytes.t }

type public_key = string array
type signature = string array

let stride = (chain_length + 1) * 32

let hash_times s n =
  if n = 0 then s
  else if String.length s <> 32 then begin
    (* Non-32-byte inputs only occur on malformed data (chain values are
       always digests); fall back to the general path. *)
    let rec go s n = if n = 0 then s else go (Sha256.to_raw (Sha256.string s)) (n - 1) in
    go s n
  end
  else begin
    let buf = Bytes.of_string s in
    for _ = 1 to n do
      Sha256.hash32_into ~src:buf ~dst:buf
    done;
    Bytes.unsafe_to_string buf
  end

let generate rng =
  let links = Bytes.create (chain_count * stride) in
  let pk =
    Array.init chain_count (fun i ->
        let base = i * stride in
        Bytes.blit_string (Rng.bytes rng 32) 0 links base 32;
        for c = 1 to chain_length do
          Sha256.hash32_sub ~src:links ~src_off:(base + ((c - 1) * 32)) ~dst:links
            ~dst_off:(base + (c * 32))
        done;
        Bytes.sub_string links (base + (chain_length * 32)) 32)
  in
  ({ links }, pk)

(* 4-bit chunks of the digest, most-significant nibble first, then a
   base-16 checksum of (15 - chunk) values to prevent chain extension. *)
let chunks_of_digest digest =
  let raw = Sha256.to_raw digest in
  let msg = Array.init 64 (fun i ->
      let byte = Char.code raw.[i / 2] in
      if i land 1 = 0 then byte lsr 4 else byte land 0xF)
  in
  let checksum = Array.fold_left (fun acc c -> acc + (chain_length - c)) 0 msg in
  let cs = Array.init 3 (fun i -> (checksum lsr (4 * (2 - i))) land 0xF) in
  Array.append msg cs

let sign sk digest =
  let chunks = chunks_of_digest digest in
  Array.mapi (fun i c -> Bytes.sub_string sk.links ((i * stride) + (c * 32)) 32) chunks

(* Total on malformed input: a signature with the wrong number of chains
   or chain values that are not 32 bytes is simply invalid, never an
   exception — verifiers feed this attacker-controlled data. *)
let verify pk digest sg =
  Array.length sg = chain_count
  && Array.for_all (fun v -> String.length v = 32) sg
  && begin
    let chunks = chunks_of_digest digest in
    let ok = ref true in
    for i = 0 to chain_count - 1 do
      let completed = hash_times sg.(i) (chain_length - chunks.(i)) in
      if not (String.equal completed pk.(i)) then ok := false
    done;
    !ok
  end

let public_key_digest pk = Sha256.digest_strings (Array.to_list pk)

let join parts = String.concat "" (Array.to_list parts)

let split s =
  if String.length s <> chain_count * 32 then
    invalid_arg "Ots: serialized key/signature must be 67*32 bytes";
  Array.init chain_count (fun i -> String.sub s (i * 32) 32)

let public_key_to_string = join
let public_key_of_string = split
let signature_to_string = join
let signature_of_string = split

(* Specification twin built on [Sha256.Spec]: byte-identical output to
   [sign] for the same key and digest (the scheme is deterministic), used
   by tests as a cross-check and by the E14 bench as the baseline. *)
let hash_times_spec s n =
  let rec go s n =
    if n = 0 then s else go (Sha256.to_raw (Sha256.Spec.string s)) (n - 1)
  in
  go s n

let sign_spec sk digest =
  let chunks = chunks_of_digest digest in
  Array.mapi
    (fun i c -> hash_times_spec (Bytes.sub_string sk.links (i * stride) 32) c)
    chunks
