(* SHA-256, FIPS 180-4.

   Two implementations live here. The hot one works on unboxed [Int32]
   words: without flambda the native compiler unboxes int32 locals and
   mutable variables into plain 32-bit registers (where rotates need no
   masking, unlike tagged 63-bit ints), so the win over [Spec] comes
   from removing everything else — the state, schedule and round
   constants live in preallocated [Bytes] scratch buffers accessed with
   the unsafe 32-bit load/store primitives (no bounds checks, no boxed
   int32 array elements, no per-block allocation), message blocks are
   compressed straight out of the source buffer, and the one-shot entry
   points allocate nothing but the final digest. [Spec] below is the
   original Int32 transliteration of the standard, kept as the
   executable specification: tests cross-check the fast core against it
   on random inputs, and the E14 bench uses it as the honest baseline. *)

type digest = string (* exactly 32 bytes *)

let digest_size = 32

external unsafe_get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_set_32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external swap32 : int32 -> int32 = "%bswap_int32"

let[@inline] get_be b i =
  let v = unsafe_get_32 b i in
  if Sys.big_endian then v else swap32 v

(* Round constants, packed native-endian so the round loop reads them
   with an unboxed load instead of indirecting through an int32 array. *)
let k_bytes =
  let k =
    [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
       0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
       0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
       0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
       0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
       0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
       0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
       0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
       0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
       0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
       0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
       0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
       0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]
  in
  let b = Bytes.create 256 in
  Array.iteri (fun i v -> Bytes.set_int32_ne b (i * 4) v) k;
  b

let[@inline] rotr x n =
  Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

(* State is 8 int32 words packed native-endian in a 32-byte buffer. *)
let init_state st =
  unsafe_set_32 st 0 0x6a09e667l; unsafe_set_32 st 4 0xbb67ae85l;
  unsafe_set_32 st 8 0x3c6ef372l; unsafe_set_32 st 12 0xa54ff53al;
  unsafe_set_32 st 16 0x510e527fl; unsafe_set_32 st 20 0x9b05688cl;
  unsafe_set_32 st 24 0x1f83d9abl; unsafe_set_32 st 28 0x5be0cd19l

(* Compress one 64-byte block at [off] in [block] into state [st],
   using the 256-byte [w] as the message schedule. *)
let compress st w block off =
  for i = 0 to 15 do
    unsafe_set_32 w (i * 4) (get_be block (off + (i * 4)))
  done;
  for i = 16 to 63 do
    let x = unsafe_get_32 w ((i - 15) * 4) and y = unsafe_get_32 w ((i - 2) * 4) in
    let s0 =
      Int32.logxor (Int32.logxor (rotr x 7) (rotr x 18)) (Int32.shift_right_logical x 3)
    in
    let s1 =
      Int32.logxor (Int32.logxor (rotr y 17) (rotr y 19)) (Int32.shift_right_logical y 10)
    in
    unsafe_set_32 w (i * 4)
      (Int32.add
         (Int32.add (unsafe_get_32 w ((i - 16) * 4)) s0)
         (Int32.add (unsafe_get_32 w ((i - 7) * 4)) s1))
  done;
  let a = ref (unsafe_get_32 st 0) and b = ref (unsafe_get_32 st 4)
  and c = ref (unsafe_get_32 st 8) and d = ref (unsafe_get_32 st 12)
  and e = ref (unsafe_get_32 st 16) and f = ref (unsafe_get_32 st 20)
  and g = ref (unsafe_get_32 st 24) and hh = ref (unsafe_get_32 st 28) in
  for i = 0 to 63 do
    let e' = !e in
    let s1 = Int32.logxor (Int32.logxor (rotr e' 6) (rotr e' 11)) (rotr e' 25) in
    let ch = Int32.logxor (Int32.logand e' !f) (Int32.logand (Int32.lognot e') !g) in
    let t1 =
      Int32.add
        (Int32.add !hh s1)
        (Int32.add ch
           (Int32.add (unsafe_get_32 k_bytes (i * 4)) (unsafe_get_32 w (i * 4))))
    in
    let a' = !a in
    let s0 = Int32.logxor (Int32.logxor (rotr a' 2) (rotr a' 13)) (rotr a' 22) in
    let maj =
      Int32.logxor
        (Int32.logxor (Int32.logand a' !b) (Int32.logand a' !c))
        (Int32.logand !b !c)
    in
    let t2 = Int32.add s0 maj in
    hh := !g; g := !f; f := e';
    e := Int32.add !d t1;
    d := !c; c := !b; b := a';
    a := Int32.add t1 t2
  done;
  unsafe_set_32 st 0 (Int32.add (unsafe_get_32 st 0) !a);
  unsafe_set_32 st 4 (Int32.add (unsafe_get_32 st 4) !b);
  unsafe_set_32 st 8 (Int32.add (unsafe_get_32 st 8) !c);
  unsafe_set_32 st 12 (Int32.add (unsafe_get_32 st 12) !d);
  unsafe_set_32 st 16 (Int32.add (unsafe_get_32 st 16) !e);
  unsafe_set_32 st 20 (Int32.add (unsafe_get_32 st 20) !f);
  unsafe_set_32 st 24 (Int32.add (unsafe_get_32 st 24) !g);
  unsafe_set_32 st 28 (Int32.add (unsafe_get_32 st 28) !hh)

let state_to_digest st =
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (i * 4) (unsafe_get_32 st (i * 4))
  done;
  Bytes.unsafe_to_string out

module Ctx = struct
  type t = {
    h : Bytes.t;               (* 32-byte packed working state *)
    block : Bytes.t;           (* 64-byte block buffer *)
    mutable block_len : int;   (* bytes currently buffered *)
    mutable total_len : int;   (* total message length in bytes *)
    w : Bytes.t;               (* 256-byte message schedule, reused *)
  }

  let create () =
    let t =
      { h = Bytes.create 32;
        block = Bytes.create 64;
        block_len = 0;
        total_len = 0;
        w = Bytes.create 256 }
    in
    init_state t.h;
    t

  let reset t =
    init_state t.h;
    t.block_len <- 0;
    t.total_len <- 0

  let feed_bytes t src ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Sha256.Ctx.feed_bytes";
    t.total_len <- t.total_len + len;
    let pos = ref off and remaining = ref len in
    (* Top up a partially filled block first. *)
    if t.block_len > 0 then begin
      let take = min !remaining (64 - t.block_len) in
      Bytes.blit src !pos t.block t.block_len take;
      t.block_len <- t.block_len + take;
      pos := !pos + take;
      remaining := !remaining - take;
      if t.block_len = 64 then begin
        compress t.h t.w t.block 0;
        t.block_len <- 0
      end
    end;
    (* Whole blocks straight from the source, no copy. *)
    while !remaining >= 64 do
      compress t.h t.w src !pos;
      pos := !pos + 64;
      remaining := !remaining - 64
    done;
    if !remaining > 0 then begin
      Bytes.blit src !pos t.block 0 !remaining;
      t.block_len <- !remaining
    end

  let feed_string t s =
    feed_bytes t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

  let fed_length t = t.total_len

  let finalize t =
    let bit_len = t.total_len * 8 in
    (* Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length. *)
    Bytes.set t.block t.block_len '\x80';
    t.block_len <- t.block_len + 1;
    if t.block_len > 56 then begin
      Bytes.fill t.block t.block_len (64 - t.block_len) '\x00';
      compress t.h t.w t.block 0;
      t.block_len <- 0
    end;
    Bytes.fill t.block t.block_len (56 - t.block_len) '\x00';
    Bytes.set_int64_be t.block 56 (Int64.of_int bit_len);
    compress t.h t.w t.block 0;
    t.block_len <- 64;
    state_to_digest t.h
end

(* One-shot entry points share a single scratch context: the whole
   system is a single-threaded simulation, so reusing it is safe and
   saves a context allocation per call (these are the hottest calls in
   the attestation path). *)
let scratch = Ctx.create ()

let digest_bytes b ~off ~len =
  Ctx.reset scratch;
  Ctx.feed_bytes scratch b ~off ~len;
  Ctx.finalize scratch

let bytes b = digest_bytes b ~off:0 ~len:(Bytes.length b)

let string s =
  digest_bytes (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let digest_strings ss =
  Ctx.reset scratch;
  List.iter (Ctx.feed_string scratch) ss;
  Ctx.finalize scratch

let concat ds = digest_strings ds

(* Hash-chain kernel: digest exactly 32 bytes in one compression. The
   padded block is constant except for the message, so it is prepared
   once: msg(32) | 0x80 | zeros | bit length 256 = 0x100 at offset 62. *)
let chain_block =
  let b = Bytes.make 64 '\x00' in
  Bytes.set b 32 '\x80';
  Bytes.set b 62 '\x01';
  b

let chain_h = Bytes.create 32
let chain_w = Bytes.create 256

let hash32_sub ~src ~src_off ~dst ~dst_off =
  if
    src_off < 0 || dst_off < 0
    || Bytes.length src < src_off + 32
    || Bytes.length dst < dst_off + 32
  then invalid_arg "Sha256.hash32_into: need 32-byte buffers";
  Bytes.blit src src_off chain_block 0 32;
  init_state chain_h;
  compress chain_h chain_w chain_block 0;
  for i = 0 to 7 do
    Bytes.set_int32_be dst (dst_off + (i * 4)) (unsafe_get_32 chain_h (i * 4))
  done

let hash32_into ~src ~dst = hash32_sub ~src ~src_off:0 ~dst ~dst_off:0

let to_raw d = d

let of_raw s =
  if String.length s <> 32 then invalid_arg "Sha256.of_raw: need 32 bytes";
  s

let to_hex d =
  let buf = Buffer.create 64 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let of_hex s =
  if String.length s <> 64 then invalid_arg "Sha256.of_hex: need 64 hex chars";
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Sha256.of_hex: bad character"
  in
  String.init 32 (fun i ->
      Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let equal = String.equal
let compare = String.compare
let pp fmt d = Format.pp_print_string fmt (to_hex d)
let zero = String.make 32 '\x00'

(* The original Int32 implementation, following the specification text
   closely so it can be audited against FIPS 180-4. Allocation-heavy
   (every Int32 operation boxes); kept verbatim as the cross-check twin
   and the E14 performance baseline. *)
module Spec = struct
  let k32 =
    [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
       0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
       0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
       0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
       0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
       0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
       0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
       0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
       0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
       0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
       0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
       0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
       0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

  let rotr x n =
    Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

  let compress h block off =
    let w = Array.make 64 0l in
    for i = 0 to 15 do
      w.(i) <- Bytes.get_int32_be block (off + (i * 4))
    done;
    for i = 16 to 63 do
      let s0 =
        Int32.logxor
          (Int32.logxor (rotr w.(i - 15) 7) (rotr w.(i - 15) 18))
          (Int32.shift_right_logical w.(i - 15) 3)
      and s1 =
        Int32.logxor
          (Int32.logxor (rotr w.(i - 2) 17) (rotr w.(i - 2) 19))
          (Int32.shift_right_logical w.(i - 2) 10)
      in
      w.(i) <- Int32.add (Int32.add w.(i - 16) s0) (Int32.add w.(i - 7) s1)
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2)
    and d = ref h.(3) and e = ref h.(4) and f = ref h.(5)
    and g = ref h.(6) and hh = ref h.(7) in
    for i = 0 to 63 do
      let s1 = Int32.logxor (Int32.logxor (rotr !e 6) (rotr !e 11)) (rotr !e 25) in
      let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
      let t1 = Int32.add (Int32.add (Int32.add !hh s1) (Int32.add ch k32.(i))) w.(i) in
      let s0 = Int32.logxor (Int32.logxor (rotr !a 2) (rotr !a 13)) (rotr !a 22) in
      let maj =
        Int32.logxor
          (Int32.logxor (Int32.logand !a !b) (Int32.logand !a !c))
          (Int32.logand !b !c)
      in
      let t2 = Int32.add s0 maj in
      hh := !g; g := !f; f := !e;
      e := Int32.add !d t1;
      d := !c; c := !b; b := !a;
      a := Int32.add t1 t2
    done;
    h.(0) <- Int32.add h.(0) !a; h.(1) <- Int32.add h.(1) !b;
    h.(2) <- Int32.add h.(2) !c; h.(3) <- Int32.add h.(3) !d;
    h.(4) <- Int32.add h.(4) !e; h.(5) <- Int32.add h.(5) !f;
    h.(6) <- Int32.add h.(6) !g; h.(7) <- Int32.add h.(7) !hh

  let string s =
    let h =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
         0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]
    in
    let len = String.length s in
    (* Pad the whole message in memory: simple and auditable. *)
    let padded_len = ((len + 8) / 64 * 64) + 64 in
    let block = Bytes.make padded_len '\x00' in
    Bytes.blit_string s 0 block 0 len;
    Bytes.set block len '\x80';
    Bytes.set_int64_be block (padded_len - 8) (Int64.of_int (len * 8));
    for b = 0 to (padded_len / 64) - 1 do
      compress h block (b * 64)
    done;
    let out = Bytes.create 32 in
    for i = 0 to 7 do
      Bytes.set_int32_be out (i * 4) h.(i)
    done;
    Bytes.unsafe_to_string out
end
