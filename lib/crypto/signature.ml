type signer = {
  keys : (Ots.secret_key * Ots.public_key) array;
  tree : Merkle.t;
  mutable next : int;
  pool : Keypool.t option;
      (* When present, [create] drew the keys from it and [sign] eagerly
         replenishes it, keeping signer rotation off the latency path. *)
}

type signature = {
  index : int;
  ots_pk : Ots.public_key;
  ots_sig : Ots.signature;
  proof : Merkle.proof;
}

let pp_signature fmt s = Format.fprintf fmt "<sig ots-key=%d>" s.index

let create ?(height = 6) ?pool rng =
  if height < 0 || height > 16 then invalid_arg "Signature.create: height out of range";
  let n = 1 lsl height in
  let keys =
    match pool with
    | None -> Array.init n (fun _ -> Ots.generate rng)
    | Some p -> Array.init n (fun _ -> Keypool.take p)
  in
  let leaves = Array.to_list (Array.map (fun (_, pk) -> Ots.public_key_digest pk) keys) in
  { keys; tree = Merkle.build leaves; next = 0; pool }

let public_root t = Merkle.root t.tree
let remaining t = Array.length t.keys - t.next

let sign t msg =
  if t.next >= Array.length t.keys then failwith "Signature.sign: signer exhausted";
  let index = t.next in
  t.next <- index + 1;
  let sk, pk = t.keys.(index) in
  let sg =
    { index;
      ots_pk = pk;
      ots_sig = Ots.sign sk (Sha256.string msg);
      proof = Merkle.prove t.tree index }
  in
  (match t.pool with Some p -> Keypool.replenish p | None -> ());
  sg

let sign_spec t msg =
  if t.next >= Array.length t.keys then failwith "Signature.sign: signer exhausted";
  let index = t.next in
  t.next <- index + 1;
  let sk, pk = t.keys.(index) in
  { index;
    ots_pk = pk;
    ots_sig = Ots.sign_spec sk (Sha256.Spec.string msg);
    proof = Merkle.prove t.tree index }

let verify ~root msg sg =
  (* [index] duplicates the proof's leaf index on the wire; verification
     must tie them together or the field becomes unauthenticated. *)
  sg.index = sg.proof.Merkle.leaf_index
  && Ots.verify sg.ots_pk (Sha256.string msg) sg.ots_sig
  && Merkle.verify ~root ~leaf:(Ots.public_key_digest sg.ots_pk) sg.proof

(* Wire format: index | proof length | proof digests | pk | sig, all
   fixed-width fields, big-endian lengths. *)
let signature_to_string sg =
  let buf = Buffer.create 4500 in
  Buffer.add_int32_be buf (Int32.of_int sg.index);
  Buffer.add_int32_be buf (Int32.of_int sg.proof.Merkle.leaf_index);
  Buffer.add_int32_be buf (Int32.of_int (List.length sg.proof.Merkle.path));
  List.iter (fun d -> Buffer.add_string buf (Sha256.to_raw d)) sg.proof.Merkle.path;
  Buffer.add_string buf (Ots.public_key_to_string sg.ots_pk);
  Buffer.add_string buf (Ots.signature_to_string sg.ots_sig);
  Buffer.contents buf

let signature_of_string s =
  let fail () = invalid_arg "Signature.signature_of_string: malformed" in
  if String.length s < 12 then fail ();
  let read_i32 off = Int32.to_int (String.get_int32_be s off) in
  let index = read_i32 0 in
  let leaf_index = read_i32 4 in
  let path_len = read_i32 8 in
  if path_len < 0 || path_len > 64 then fail ();
  let key_bytes = 67 * 32 in
  let expected = 12 + (path_len * 32) + (2 * key_bytes) in
  if String.length s <> expected then fail ();
  let path =
    List.init path_len (fun i -> Sha256.of_raw (String.sub s (12 + (i * 32)) 32))
  in
  let pk_off = 12 + (path_len * 32) in
  { index;
    ots_pk = Ots.public_key_of_string (String.sub s pk_off key_bytes);
    ots_sig = Ots.signature_of_string (String.sub s (pk_off + key_bytes) key_bytes);
    proof = { Merkle.leaf_index; path } }
