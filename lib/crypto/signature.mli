(** Many-time signatures: a Merkle forest of Winternitz one-time keys
    (an XMSS-style construction, without the BDS traversal optimisation).

    This is the signing identity used by the simulated TPM endorsement key
    and by the isolation monitor's attestation key. A signer is created
    with a capacity of [2^height] signatures; each [sign] consumes one
    one-time key and embeds its Merkle inclusion proof, so a verifier only
    needs the 32-byte public root. *)

type signer
type signature

val pp_signature : Format.formatter -> signature -> unit

val create : ?height:int -> ?pool:Keypool.t -> Rng.t -> signer
(** [create ~height rng] builds a signer with [2^height] one-time keys
    (default height 6 = 64 signatures — enough for the test scenarios;
    key generation is O(2^height) hash chains). When [pool] is given the
    keys are drawn from it instead of generated on the spot, and every
    subsequent {!sign} eagerly replenishes it — moving key generation
    off the boot and rotation paths. *)

val public_root : signer -> Sha256.digest
(** The verification key: the Merkle root over all one-time public keys. *)

val remaining : signer -> int
(** One-time keys not yet consumed. *)

val sign : signer -> string -> signature
(** Sign arbitrary bytes (hashed internally). Consumes one key.
    @raise Failure if the signer is exhausted. *)

val sign_spec : signer -> string -> signature
(** [sign] computed with the {!Sha256.Spec} / {!Ots.sign_spec}
    executable specification; byte-identical to [sign] for the same key
    index and message (the scheme is deterministic). Consumes one key.
    Used as a cross-check and as the E14 benchmark baseline.
    @raise Failure if the signer is exhausted. *)

val verify : root:Sha256.digest -> string -> signature -> bool
(** Verify a signature against the 32-byte public root. *)

val signature_to_string : signature -> string
val signature_of_string : string -> signature
(** Wire format for embedding signatures in quotes.
    @raise Invalid_argument on malformed input. *)
