(** Winternitz one-time signatures (WOTS, w = 16) over SHA-256.

    Hash-based signatures let the simulated TPM and the isolation monitor
    sign attestations with nothing but the SHA-256 primitive built in this
    repo — no bignum arithmetic, no external crypto. A key pair signs
    exactly one message; {!Signature} lifts this to a many-time scheme. *)

type secret_key
type public_key

type signature = string array
(** 67 chain values of 32 bytes each. The representation is exposed so
    verifiers (and tests) can exercise {!verify}'s totality on malformed
    inputs; well-formed signatures only come from {!sign} /
    {!signature_of_string}. *)

val generate : Rng.t -> secret_key * public_key
(** Derive a fresh one-time key pair from the generator. The secret key
    retains every intermediate chain link (~34 KiB), so {!sign} selects
    links instead of recomputing hash chains — generation already had to
    walk each chain to its end to produce the public key. *)

val sign : secret_key -> Sha256.digest -> signature
(** Sign a 32-byte message digest by copying out precomputed chain
    links (no hashing; see {!generate}). Signing twice with the same key
    leaks key material in a real deployment; callers must treat keys as
    one-shot (enforced by {!Signature}). *)

val sign_spec : secret_key -> Sha256.digest -> signature
(** [sign] computed with the {!Sha256.Spec} executable specification:
    byte-identical output (the scheme is deterministic), used as a
    cross-check and as the E14 benchmark baseline. *)

val verify : public_key -> Sha256.digest -> signature -> bool
(** Total on malformed signatures: a wrong chain count or non-32-byte
    chain values return [false] rather than raising. *)

val public_key_digest : public_key -> Sha256.digest
(** Compressed commitment to the public key (leaf value in the Merkle
    many-time scheme). *)

val public_key_to_string : public_key -> string
val public_key_of_string : string -> public_key
val signature_to_string : signature -> string
val signature_of_string : string -> signature
(** Serialization for embedding in attestation quotes.
    @raise Invalid_argument on malformed input. *)
