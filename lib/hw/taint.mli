(** Information-flow taint oracle for clean-up policies (claim C6).

    The paper's §4.1 lets the parent choose what revocation and domain
    transitions clean up: zero the memory, flush the caches, both, or
    nothing. The simulator enforces those policies mechanically
    ({!Cap.Revocation.apply}, the backends' transition flushes), but
    until now nothing *observed* whether they actually stop a domain
    from reading another domain's residue. This module is that
    observer.

    On every detach/revoke and every flushing transition, the backend
    taints the affected state with the prior owner's domain id:

    - physical pages (guarded when the policy promises zeroing),
    - resident cache lines (guarded when the policy promises a flush),
    - the victim's TLB entries (always guarded — a revocation must
      always shoot these down, or the stale translation bypasses the
      EPT/PMP check entirely).

    The clean-up primitives themselves ({!Physmem.zero_range},
    {!Cache.flush_range}/[flush_all], {!Tlb.flush_asid}/[flush_all])
    erase the taint they clean, so after a correct operation no
    {e guarded} taint survives. The access paths ({!Cpu.load}/[store],
    {!Cache.touch}, {!Tlb.lookup}) consult the oracle: a domain
    observing {e guarded} taint of another domain is a leak — the
    promised clean-up did not happen. Unguarded residue (the [Keep]
    policy) is sanctioned by the parent's explicit choice and only
    counted.

    Modes: [Off] (no accounting), [Record] (count leaks, never raise —
    the default, so production paths pay two empty hashtable probes per
    access), [Enforce] (raise {!Leak} at the observing access — what
    the policy-matrix tests and the byzantine driver arm). *)

type mode = Off | Record | Enforce

type surface = Mem | Line | Tlb_entry

val surface_to_string : surface -> string

type leak = {
  surface : surface;
  reader : int;  (** ASID (= domain id) of the observing access. *)
  prior : int;  (** Domain whose residue was observed. *)
  addr : Addr.t;  (** Host-physical address (page/line base; gpa for TLB). *)
}

exception Leak of leak

val pp_leak : Format.formatter -> leak -> unit

val line_size : int
(** Cache-line granularity of line taint; equal to {!Cache.line_size}
    (asserted there — [Taint] sits below [Cache] in the module
    graph). *)

type t

val create : unit -> t

val mode : t -> mode
val set_mode : t -> mode -> unit

(** {2 Tainting (backend clean-up paths)}

    Each call returns an [undo] that restores the previous taint state
    of exactly the keys it touched — backends journal it so a rolled
    back operation leaves no phantom taint. *)

type undo

val taint_pages : t -> Addr.Range.t -> prior:int -> guarded:bool -> undo
(** Taint every page of a host-physical range. *)

val taint_lines : t -> int list -> prior:int -> guarded:bool -> undo
(** Taint cache lines by line index (see {!Cache.resident_lines_in},
    {!Cache.lines_of_tag} for computing the victim set). *)

val taint_tlb : t -> (int * Addr.t) list -> prior:int -> undo
(** Taint TLB entries by [(asid, gpa page)] key (see
    {!Tlb.entries_into}). TLB taint is always guarded. *)

val undo : t -> undo -> unit

(** {2 Clearing (clean-up primitives)} *)

val clear_pages : t -> Addr.Range.t -> unit
val clear_line : t -> int -> unit
val clear_all_lines : t -> unit
val clear_tlb_entry : t -> asid:int -> gpa:Addr.t -> unit
val clear_tlb_asid : t -> asid:int -> unit
val clear_all_tlb : t -> unit

(** {2 Observation (access paths)} *)

val observe_page : t -> reader:int -> Addr.t -> unit
(** A checked load/store reached this host-physical address. Guarded
    foreign taint is a leak; unguarded foreign taint counts as
    sanctioned residue; own taint is ignored. *)

val observe_line : t -> reader:int -> Addr.t -> unit
(** A cache fill touched this address's line. Same rules. *)

val observe_tlb : t -> asid:int -> gpa:Addr.t -> unit
(** A TLB lookup hit this entry. Any hit on a tainted entry is a leak
    regardless of reader: the entry was supposed to be shot down, and
    on x86 a hit skips the EPT walk entirely. *)

(** {2 Audit (fsck / tests)} *)

type stats = {
  tainted_pages : int;
  tainted_lines : int;
  tainted_tlb : int;
  leaks : int;  (** Guarded foreign taint observed (hard failures). *)
  sanctioned : int;  (** [Keep]-policy residue observed (by design). *)
}

val stats : t -> stats

val last_leak : t -> leak option

val guarded_residue : t -> (surface * Addr.t * int) list
(** Every guarded taint entry still present, as [(surface, addr,
    prior)]. Empty in any quiescent monitor: whatever clean-up the
    policy promised must have run by the end of the API call that
    detached or transitioned. The fsck taint pass asserts this. *)

val reset_counters : t -> unit
(** Zero [leaks]/[sanctioned] (taint entries are kept). *)
