(** Cache-residency model for side-channel reasoning.

    The paper lets domains pick revocation policies that "flush
    micro-architectural state (caches) during a transition" (§4.1). To
    make that policy testable, this model tracks which 64-byte lines are
    resident and which security tag (domain id) last touched them. A
    transition without a flush leaves the previous domain's lines
    observable — the signal the side-channel tests look for. *)

type t

val line_size : int (** 64 bytes. *)

val create : counter:Cycles.counter -> t

val touch : t -> tag:int -> Addr.t -> unit
(** Mark the line holding this address resident on behalf of [tag]. *)

val resident_lines : t -> int
val lines_tagged : t -> tag:int -> int
(** Lines whose last toucher was [tag] — what a co-resident attacker
    could probe. *)

val resident_lines_in : t -> Addr.Range.t -> int list
(** Indexes of resident lines inside a host-physical range — the
    victim set a revocation's cache clean-up must cover. *)

val lines_of_tag : t -> tag:int -> int list
(** Indexes of resident lines last touched by [tag] — the victim set a
    flushing domain transition must cover. *)

val flush_range : t -> Addr.Range.t -> unit
(** CLFLUSH the lines of a range (cost per line). Clears any attached
    line taint over the range. *)

val flush_all : t -> unit
(** WBINVD-style full flush. Clears all attached line taint. *)

val set_taint : t -> Taint.t -> unit
(** Attach the machine's taint oracle (done once by {!Machine.create}):
    flushes erase the line taint they clean, and {!touch} reports each
    fill to {!Taint.observe_line} with the toucher as reader. *)
