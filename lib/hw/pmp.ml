type access = [ `Read | `Write | `Exec ]

type entry = { range : Addr.Range.t; perm : Perm.t; locked : bool }

type t = { slots : entry option array; counter : Cycles.counter }

exception Fault of { addr : Addr.t; access : access }

(* Every configuration write can be failed by an armed fault plan —
   modelling a CSR write that a flaky hart drops mid-reprogram. *)
let write_fault = Fault.register "pmp.write"

let create ?(entries = 16) ~counter () =
  if entries <= 0 then invalid_arg "Pmp.create: entries must be positive";
  { slots = Array.make entries None; counter }

let entry_count t = Array.length t.slots

let free_entries t =
  Array.fold_left (fun acc e -> if e = None then acc + 1 else acc) 0 t.slots

let set t ~index range perm ~locked =
  if index < 0 || index >= entry_count t then invalid_arg "Pmp.set: index out of range";
  (match t.slots.(index) with
  | Some { locked = true; _ } -> invalid_arg "Pmp.set: entry is locked"
  | _ -> ());
  Fault.hit write_fault;
  Cycles.charge t.counter Cycles.Cost.pmp_entry_write;
  t.slots.(index) <- Some { range; perm; locked }

let clear t ~index =
  if index < 0 || index >= entry_count t then invalid_arg "Pmp.clear: index out of range";
  (match t.slots.(index) with
  | Some { locked = true; _ } -> invalid_arg "Pmp.clear: entry is locked"
  | _ -> ());
  Fault.hit write_fault;
  Cycles.charge t.counter Cycles.Cost.pmp_entry_write;
  t.slots.(index) <- None

let find_free t =
  let rec go i =
    if i >= entry_count t then None
    else if t.slots.(i) = None then Some i
    else go (i + 1)
  in
  go 0

let matching_entry t addr =
  let rec go i =
    if i >= entry_count t then None
    else
      match t.slots.(i) with
      | Some e when Addr.Range.contains e.range addr -> Some e
      | _ -> go (i + 1)
  in
  go 0

let check t ~mode addr access =
  match matching_entry t addr, mode with
  | None, `M -> () (* M-mode has default access when no entry matches *)
  | None, (`S | `U) -> raise (Fault { addr; access })
  | Some e, `M when not e.locked -> ()
  | Some e, _ ->
    if not (Perm.allows e.perm access) then raise (Fault { addr; access })

let allows_range t ~mode range access =
  (* The decisive entry can only change at entry boundaries, so probing
     the range endpoints plus every entry boundary inside it suffices. *)
  let probes =
    Addr.Range.base range :: Addr.Range.last range
    :: Array.fold_left
         (fun acc slot ->
           match slot with
           | None -> acc
           | Some e ->
             let add acc a = if Addr.Range.contains range a then a :: acc else acc in
             add (add acc (Addr.Range.base e.range)) (Addr.Range.limit e.range))
         [] t.slots
  in
  List.for_all
    (fun addr -> match check t ~mode addr access with () -> true | exception Fault _ -> false)
    probes

let entries t =
  let acc = ref [] in
  for i = entry_count t - 1 downto 0 do
    match t.slots.(i) with
    | Some e -> acc := (i, e.range, e.perm, e.locked) :: !acc
    | None -> ()
  done;
  !acc

let reset t = Array.fill t.slots 0 (entry_count t) None
