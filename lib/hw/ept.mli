(** Extended page tables (second-level address translation).

    One {!t} models the EPT of a single trust domain on the x86 backend:
    a map from guest-physical pages to host-physical pages with
    permissions. The monitor programs these structures; the CPU model
    consults them on every access. An {!Eptp_list} models the VMFUNC
    EPTP-switching list (up to 512 entries) that enables exit-less domain
    transitions — the hardware feature behind the paper's "fast (100
    cycles) domain transitions using VMFUNC" claim. *)

type t

exception Violation of { gpa : Addr.t; access : [ `Read | `Write | `Exec ] }
(** EPT violation: the access would trap to the monitor on real hardware. *)

val create : counter:Cycles.counter -> t

val map_page : t -> gpa:Addr.t -> hpa:Addr.t -> Perm.t -> unit
(** Map one 4 KiB page. Remapping an existing gpa overwrites it.
    @raise Invalid_argument if either address is not page-aligned. *)

val map_range : t -> gpa:Addr.t -> Addr.Range.t -> Perm.t -> unit
(** Identity-offset map of a host-physical range starting at guest
    address [gpa]. The range must be page-aligned. *)

val unmap_page : t -> gpa:Addr.t -> unit
val unmap_hpa_range : t -> Addr.Range.t -> int
(** Remove every mapping whose target lies in the host range; returns the
    number of pages unmapped. Used on revocation. *)

val translate : t -> gpa:Addr.t -> access:[ `Read | `Write | `Exec ] -> Addr.t
(** Translate a guest-physical address, checking permissions.
    @raise Violation on missing mapping or insufficient rights. *)

val entry_at : t -> gpa:Addr.t -> (Addr.t * Perm.t) option
(** The mapping (hpa, perm) of the page containing [gpa], if any —
    captured by the backends' undo journals before an overwrite. *)

val mappings_to : t -> Addr.Range.t -> (Addr.t * Addr.t * Perm.t) list
(** [(gpa, hpa, perm)] for every mapping whose target lies in the host
    range — exactly the set {!unmap_hpa_range} would remove, captured
    up front so a faulted detach can be rolled back. *)

val mapped_pages : t -> int
val hpa_reachable : t -> Addr.t -> Perm.t
(** Union of permissions with which any gpa maps to the page containing
    this host address; {!Perm.none} if unreachable. Lets invariant checks
    ask "can this domain touch that memory at all?". *)

val iter_mappings : t -> (gpa:Addr.t -> hpa:Addr.t -> Perm.t -> unit) -> unit

val reaches_hpa_range : t -> Addr.Range.t -> bool
(** Whether any mapping targets a page overlapping the host range
    (single pass over the table, unlike per-page {!hpa_reachable}). *)

(** VMFUNC EPTP list: a bounded table of EPTs between which a domain may
    switch without a VM exit. *)
module Eptp_list : sig
  type ept := t
  type t

  val max_entries : int (** 512, per Intel SDM. *)

  val create : unit -> t
  val register : t -> ept -> int option
  (** Returns the slot index, or [None] if the list is full. *)

  val get : t -> int -> ept option
  val slot_of : t -> ept -> int option
  val count : t -> int
end
