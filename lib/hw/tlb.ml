type t = {
  entries : (int * int, Addr.t) Hashtbl.t; (* (asid, gpa page) -> hpa page *)
  counter : Cycles.counter;
  mutable taint : Taint.t option;
}

let create ~counter = { entries = Hashtbl.create 256; counter; taint = None }

let set_taint t taint = t.taint <- Some taint

let fill t ~asid ~gpa ~hpa =
  Hashtbl.replace t.entries (asid, Addr.align_down gpa) (Addr.align_down hpa)

let lookup t ~asid ~gpa =
  match Hashtbl.find_opt t.entries (asid, Addr.align_down gpa) with
  | Some hpa_page ->
    (* The hazard the oracle exists for: on x86 a hit skips the EPT
       walk, so a stale entry is a revocation bypass. A hit on a
       tainted entry means the required shootdown never happened. *)
    (match t.taint with None -> () | Some tt -> Taint.observe_tlb tt ~asid ~gpa);
    Some (hpa_page + (gpa land (Addr.page_size - 1)))
  | None -> None

let flush_all t =
  Cycles.charge t.counter Cycles.Cost.tlb_flush_full;
  Hashtbl.reset t.entries;
  match t.taint with None -> () | Some tt -> Taint.clear_all_tlb tt

let flush_asid t ~asid =
  Cycles.charge t.counter Cycles.Cost.tlb_flush_asid;
  let victims =
    Hashtbl.fold (fun (a, g) _ acc -> if a = asid then (a, g) :: acc else acc) t.entries []
  in
  List.iter (Hashtbl.remove t.entries) victims;
  match t.taint with None -> () | Some tt -> Taint.clear_tlb_asid tt ~asid

let shootdown t ~remote_cores =
  Cycles.charge t.counter (remote_cores * Cycles.Cost.tlb_shootdown_ipi);
  flush_all t

let entries t = Hashtbl.length t.entries

let all_entries t =
  Hashtbl.fold (fun (asid, gpa) hpa acc -> (asid, gpa, hpa) :: acc) t.entries []

let stale_for_hpa t range =
  Hashtbl.fold
    (fun (asid, gpa) hpa acc ->
      if Addr.Range.overlaps range (Addr.Range.make ~base:hpa ~len:Addr.page_size) then
        (asid, gpa) :: acc
      else acc)
    t.entries []

let entries_into t ~asid range =
  List.filter (fun (a, _) -> a = asid) (stale_for_hpa t range)
