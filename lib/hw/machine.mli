(** The assembled simulated machine: memory, cores, devices, IOMMU,
    TLB/cache models and the shared cycle counter.

    A machine is created once per simulation; the boot chain ({!Tpm.Boot})
    measures it, the monitor takes control of it, and everything above
    runs against it. *)

type t = {
  arch : Cpu.arch;
  mem : Physmem.t;
  cores : Cpu.t array;
  iommu : Iommu.t;
  tlb : Tlb.t;
  cache : Cache.t;
  interrupts : Interrupt.t;
  counter : Cycles.counter;
  taint : Taint.t;
      (** The information-flow oracle for clean-up policies, attached
          to [mem]/[tlb]/[cache] at creation (see {!Taint}). *)
  mutable devices : Device.t list;
}

val create : ?arch:Cpu.arch -> ?cores:int -> ?mem_size:int -> unit -> t
(** Defaults: x86_64, 4 cores, 32 MiB of memory.
    @raise Invalid_argument on non-positive core count or bad size. *)

val attach_device : t -> Device.t -> unit
(** Plug in a device (and its SR-IOV virtual functions). *)

val find_device : t -> bdf:int -> Device.t option
val core : t -> int -> Cpu.t
(** @raise Invalid_argument if the core id is out of range. *)

val cycles : t -> int
val reset_cycles : t -> unit
