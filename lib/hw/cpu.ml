type arch = X86_64 | Riscv64

type x86_mode = { ring : int; vmx_root : bool }
type riscv_mode = M | S | U
type mode = X86 of x86_mode | Riscv of riscv_mode

type t = {
  id : int;
  arch : arch;
  mutable mode : mode;
  mutable active_ept : Ept.t option;
  pmp : Pmp.t option;
  mutable asid : int;
  regs : int array;
  mutable active_pt : Page_table.t option;
}

let create ~arch ~id ~counter =
  let mode, pmp =
    match arch with
    | X86_64 -> (X86 { ring = 0; vmx_root = true }, None)
    | Riscv64 -> (Riscv M, Some (Pmp.create ~counter ()))
  in
  { id; arch; mode; active_ept = None; pmp; asid = 0; regs = Array.make 16 0;
    active_pt = None }

let id t = t.id
let arch t = t.arch
let mode t = t.mode

let set_mode t m =
  match t.arch, m with
  | X86_64, X86 { ring; _ } when ring >= 0 && ring <= 3 -> t.mode <- m
  | Riscv64, Riscv _ -> t.mode <- m
  | X86_64, X86 _ -> invalid_arg "Cpu.set_mode: ring out of range"
  | X86_64, Riscv _ | Riscv64, X86 _ -> invalid_arg "Cpu.set_mode: wrong architecture"

let pmp t =
  match t.pmp with
  | Some p -> p
  | None -> invalid_arg "Cpu.pmp: x86 cores have no PMP file"

let active_ept t = t.active_ept

let set_active_ept t ept =
  match t.arch with
  | X86_64 -> t.active_ept <- ept
  | Riscv64 -> invalid_arg "Cpu.set_active_ept: RISC-V cores have no EPT"

let asid t = t.asid
let set_asid t a = t.asid <- a

let register_count = 16

let check_reg i =
  if i < 0 || i >= register_count then invalid_arg "Cpu: register index out of range"

let get_reg t i =
  check_reg i;
  t.regs.(i)

let set_reg t i v =
  check_reg i;
  t.regs.(i) <- v

let save_regs t = Array.copy t.regs

let load_regs t saved =
  if Array.length saved <> register_count then invalid_arg "Cpu.load_regs: wrong size";
  Array.blit saved 0 t.regs 0 register_count

let clear_regs t = Array.fill t.regs 0 register_count 0

let active_page_table t = t.active_pt
let set_active_page_table t pt = t.active_pt <- pt

let riscv_priv t = match t.mode with Riscv m -> m | X86 _ -> assert false

let translate t addr access =
  match t.arch with
  | X86_64 -> begin
    match t.mode, t.active_ept with
    | X86 { vmx_root = true; _ }, _ -> addr (* monitor context: direct physical *)
    | X86 _, Some ept -> Ept.translate ept ~gpa:addr ~access
    | X86 _, None -> addr (* pre-virtualization boot: flat physical *)
    | Riscv _, _ -> assert false
  end
  | Riscv64 ->
    let mode = match riscv_priv t with M -> `M | S -> `S | U -> `U in
    Pmp.check (pmp t) ~mode addr access;
    addr

let first_level t addr access =
  match t.active_pt with
  | None -> addr
  | Some pt -> Page_table.translate pt ~vaddr:addr ~access

let load t mem ~tlb ~cache addr =
  let addr = first_level t addr `Read in
  let hpa =
    match Tlb.lookup tlb ~asid:t.asid ~gpa:addr with
    | Some hpa when t.arch = X86_64 && t.active_ept <> None -> hpa
    | _ ->
      let hpa = translate t addr `Read in
      if t.arch = X86_64 && t.active_ept <> None then
        Tlb.fill tlb ~asid:t.asid ~gpa:addr ~hpa;
      hpa
  in
  Physmem.observe_taint mem ~reader:t.asid hpa;
  Cache.touch cache ~tag:t.asid hpa;
  Physmem.read_byte mem hpa

let store t mem ~tlb ~cache addr v =
  let addr = first_level t addr `Write in
  let hpa = translate t addr `Write in
  if t.arch = X86_64 && t.active_ept <> None then
    Tlb.fill tlb ~asid:t.asid ~gpa:addr ~hpa;
  (* A store observes too: the write-allocate fill pulls the line's
     prior contents into the writer's cache before the bytes land. *)
  Physmem.observe_taint mem ~reader:t.asid hpa;
  Cache.touch cache ~tag:t.asid hpa;
  Physmem.write_byte mem hpa v

let pp_mode fmt = function
  | X86 { ring; vmx_root } ->
    Format.fprintf fmt "x86:ring%d%s" ring (if vmx_root then "/vmx-root" else "")
  | Riscv M -> Format.pp_print_string fmt "riscv:M"
  | Riscv S -> Format.pp_print_string fmt "riscv:S"
  | Riscv U -> Format.pp_print_string fmt "riscv:U"
