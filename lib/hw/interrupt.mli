(** Interrupt routing with remapping.

    Models the interrupt-remapping table the paper points to for
    "cross-domain interrupt routing" (§4.1): a device may only post the
    vectors the table grants it, and each vector is steered to one core.
    Unremapped interrupts from a device are blocked — preventing an
    untrusted device from injecting into a confidential domain. *)

type t

exception Blocked of { device : int; vector : int }

val create : counter:Cycles.counter -> t

val route : t -> vector:int -> core:int -> unit
(** Steer a vector to a core. *)

val permit : t -> device:int -> vector:int -> unit
(** Allow the device to raise the vector (remapping-table entry). *)

val revoke_device : t -> device:int -> unit

val permitted : t -> device:int -> int list
(** Vectors the device is currently allowed to raise (sorted) —
    captured by the backends' undo journals before {!revoke_device}. *)

val post : t -> device:int -> vector:int -> int
(** Deliver an interrupt; returns the target core id.
    @raise Blocked if the device is not permitted to raise the vector.
    @raise Not_found if the vector has no route. *)

val pending : t -> core:int -> (int * int) list
(** Delivered (device, vector) pairs not yet acknowledged on the core. *)

val ack : t -> core:int -> unit
(** Acknowledge (clear) the core's pending interrupts. *)
