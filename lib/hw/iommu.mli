(** I/O MMU: per-device DMA windows into physical memory.

    Devices can only read/write host memory through windows programmed
    here; an unprogrammed device has no DMA access at all (the safe
    default the monitor relies on to build I/O trust domains such as the
    GPU in the paper's Fig. 2/3 scenario). *)

type t

exception Dma_fault of { device : int; addr : Addr.t }

val create : counter:Cycles.counter -> t

val grant : t -> device:int -> Addr.Range.t -> Perm.t -> unit
(** Add a DMA window for the device. *)

val revoke_range : t -> device:int -> Addr.Range.t -> unit
(** Remove any part of the device's windows intersecting the range
    (splitting windows when needed). *)

val revoke_all : t -> device:int -> unit

val check : t -> device:int -> Addr.t -> [ `Read | `Write ] -> unit
(** @raise Dma_fault if the access is outside every window. *)

val windows : t -> device:int -> (Addr.Range.t * Perm.t) list

val set_windows : t -> device:int -> (Addr.Range.t * Perm.t) list -> unit
(** Restore a device's window list to a value previously captured with
    {!windows} — the backends' undo journals use this to roll a faulted
    effect back. Charges no cycles and consults no fault plan. *)

val device_reaches : t -> device:int -> Addr.Range.t -> bool
(** Whether any window of the device overlaps the range. *)
