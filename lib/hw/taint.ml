type mode = Off | Record | Enforce

type surface = Mem | Line | Tlb_entry

let surface_to_string = function
  | Mem -> "mem"
  | Line -> "cache-line"
  | Tlb_entry -> "tlb"

type leak = { surface : surface; reader : int; prior : int; addr : Addr.t }

exception Leak of leak

let pp_leak fmt l =
  Format.fprintf fmt "%s leak: domain %d observed domain %d's residue at %a"
    (surface_to_string l.surface) l.reader l.prior Addr.pp l.addr

type entry = { prior : int; guarded : bool }

type t = {
  mutable mode : mode;
  pages : (int, entry) Hashtbl.t; (* page index -> residue *)
  lines : (int, entry) Hashtbl.t; (* cache line index -> residue *)
  tlb : (int * int, int) Hashtbl.t; (* (asid, gpa page) -> prior owner *)
  mutable leaks : int;
  mutable sanctioned : int;
  mutable last : leak option;
}

let create () =
  { mode = Record;
    pages = Hashtbl.create 64;
    lines = Hashtbl.create 64;
    tlb = Hashtbl.create 16;
    leaks = 0;
    sanctioned = 0;
    last = None }

let mode t = t.mode
let set_mode t m = t.mode <- m

(* Undo journal: the previous binding of every key a taint call
   touched, so backends can roll a faulted operation back to the exact
   prior taint state. *)
type undo =
  | Pages of (int * entry option) list
  | Lines of (int * entry option) list
  | Tlb of ((int * int) * int option) list

let set_opt tbl key = function
  | Some v -> Hashtbl.replace tbl key v
  | None -> Hashtbl.remove tbl key

let taint_pages t range ~prior ~guarded =
  if t.mode = Off then Pages []
  else begin
    let first = Addr.Range.base range / Addr.page_size
    and last = Addr.Range.last range / Addr.page_size in
    let saved = ref [] in
    for page = first to last do
      saved := (page, Hashtbl.find_opt t.pages page) :: !saved;
      Hashtbl.replace t.pages page { prior; guarded }
    done;
    Pages !saved
  end

let taint_lines t keys ~prior ~guarded =
  if t.mode = Off then Lines []
  else
    Lines
      (List.map
         (fun line ->
           let prev = Hashtbl.find_opt t.lines line in
           Hashtbl.replace t.lines line { prior; guarded };
           (line, prev))
         keys)

let taint_tlb t keys ~prior =
  if t.mode = Off then Tlb []
  else
    Tlb
      (List.map
         (fun (asid, gpa) ->
           let key = (asid, Addr.align_down gpa) in
           let prev = Hashtbl.find_opt t.tlb key in
           Hashtbl.replace t.tlb key prior;
           (key, prev))
         keys)

let undo t = function
  | Pages saved -> List.iter (fun (k, v) -> set_opt t.pages k v) saved
  | Lines saved -> List.iter (fun (k, v) -> set_opt t.lines k v) saved
  | Tlb saved -> List.iter (fun (k, v) -> set_opt t.tlb k v) saved

let clear_pages t range =
  let first = Addr.Range.base range / Addr.page_size
  and last = Addr.Range.last range / Addr.page_size in
  for page = first to last do
    Hashtbl.remove t.pages page
  done

let clear_line t line = Hashtbl.remove t.lines line
let clear_all_lines t = Hashtbl.reset t.lines

let clear_tlb_entry t ~asid ~gpa = Hashtbl.remove t.tlb (asid, Addr.align_down gpa)

let clear_tlb_asid t ~asid =
  let victims =
    Hashtbl.fold (fun (a, g) _ acc -> if a = asid then (a, g) :: acc else acc) t.tlb []
  in
  List.iter (Hashtbl.remove t.tlb) victims

let clear_all_tlb t = Hashtbl.reset t.tlb

let line_size = 64 (* must agree with Cache.line_size; asserted in Cache *)

let leak t l =
  t.leaks <- t.leaks + 1;
  t.last <- Some l;
  if t.mode = Enforce then raise (Leak l)

let observe surface t tbl key ~reader ~addr =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some { prior; _ } when prior = reader -> ()
  | Some { prior; guarded = true } -> leak t { surface; reader; prior; addr }
  | Some { prior = _; guarded = false } -> t.sanctioned <- t.sanctioned + 1

let observe_page t ~reader addr =
  if t.mode <> Off then
    observe Mem t t.pages (addr / Addr.page_size) ~reader ~addr:(Addr.align_down addr)

let observe_line t ~reader addr =
  if t.mode <> Off then
    observe Line t t.lines (addr / line_size) ~reader ~addr:(addr / line_size * line_size)

let observe_tlb t ~asid ~gpa =
  if t.mode <> Off then begin
    let gpa = Addr.align_down gpa in
    match Hashtbl.find_opt t.tlb (asid, gpa) with
    | None -> ()
    | Some prior ->
      (* A hit on a tainted entry is a violation even when reader =
         prior: the translation was supposed to be gone, and using it
         skips the post-revocation EPT/PMP check. *)
      leak t { surface = Tlb_entry; reader = asid; prior; addr = gpa }
  end

type stats = {
  tainted_pages : int;
  tainted_lines : int;
  tainted_tlb : int;
  leaks : int;
  sanctioned : int;
}

let stats t =
  { tainted_pages = Hashtbl.length t.pages;
    tainted_lines = Hashtbl.length t.lines;
    tainted_tlb = Hashtbl.length t.tlb;
    leaks = t.leaks;
    sanctioned = t.sanctioned }

let last_leak t = t.last

let guarded_residue t =
  let pages =
    Hashtbl.fold
      (fun page e acc ->
        if e.guarded then (Mem, page * Addr.page_size, e.prior) :: acc else acc)
      t.pages []
  in
  let lines =
    Hashtbl.fold
      (fun line e acc ->
        if e.guarded then (Line, line * line_size, e.prior) :: acc else acc)
      t.lines pages
  in
  Hashtbl.fold (fun (_, gpa) prior acc -> (Tlb_entry, gpa, prior) :: acc) t.tlb lines
  |> List.sort compare

let reset_counters (t : t) =
  t.leaks <- 0;
  t.sanctioned <- 0;
  t.last <- None
