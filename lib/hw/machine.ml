type t = {
  arch : Cpu.arch;
  mem : Physmem.t;
  cores : Cpu.t array;
  iommu : Iommu.t;
  tlb : Tlb.t;
  cache : Cache.t;
  interrupts : Interrupt.t;
  counter : Cycles.counter;
  taint : Taint.t;
  mutable devices : Device.t list;
}

let create ?(arch = Cpu.X86_64) ?(cores = 4) ?(mem_size = 32 * 1024 * 1024) () =
  if cores <= 0 then invalid_arg "Machine.create: need at least one core";
  let counter = Cycles.create () in
  let taint = Taint.create () in
  let mem = Physmem.create ~size:mem_size in
  let tlb = Tlb.create ~counter in
  let cache = Cache.create ~counter in
  Physmem.set_taint mem taint;
  Tlb.set_taint tlb taint;
  Cache.set_taint cache taint;
  { arch;
    mem;
    cores = Array.init cores (fun id -> Cpu.create ~arch ~id ~counter);
    iommu = Iommu.create ~counter;
    tlb;
    cache;
    interrupts = Interrupt.create ~counter;
    counter;
    taint;
    devices = [] }

let attach_device t d = t.devices <- (d :: Device.virtual_functions d) @ t.devices

let find_device t ~bdf = List.find_opt (fun d -> Device.bdf d = bdf) t.devices

let core t i =
  if i < 0 || i >= Array.length t.cores then invalid_arg "Machine.core: bad core id";
  t.cores.(i)

let cycles t = Cycles.read t.counter
let reset_cycles t = Cycles.reset t.counter
