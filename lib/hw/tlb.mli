(** TLB model with address-space identifiers (ASIDs).

    Exists to make revocation *observable*: unmapping a page in the EPT
    is not enough on real hardware — stale TLB entries keep the old
    translation alive until a shootdown. The monitor's revocation path
    must flush, and the invariant tests check that no stale entry
    survives a revoke. Also backs the a4 ablation (full vs ASID-tagged
    flush). *)

type t

val create : counter:Cycles.counter -> t

val fill : t -> asid:int -> gpa:Addr.t -> hpa:Addr.t -> unit
(** Record a translation (called by the CPU model on a successful walk). *)

val lookup : t -> asid:int -> gpa:Addr.t -> Addr.t option

val flush_all : t -> unit
val flush_asid : t -> asid:int -> unit
val shootdown : t -> remote_cores:int -> unit
(** Full flush plus IPI cost for each remote core. *)

val entries : t -> int

val all_entries : t -> (int * Addr.t * Addr.t) list
(** Every cached translation as [(asid, gpa page, hpa page)] — for
    judiciary sweeps over micro-architectural state. *)

val stale_for_hpa : t -> Addr.Range.t -> (int * Addr.t) list
(** Entries still translating into the given host range, as
    [(asid, gpa)] pairs — the judiciary's smoking gun for a missing
    shootdown. *)

val entries_into : t -> asid:int -> Addr.Range.t -> (int * Addr.t) list
(** {!stale_for_hpa} restricted to one ASID — the victim set a
    revocation's TLB clean-up must shoot down. *)

val set_taint : t -> Taint.t -> unit
(** Attach the machine's taint oracle (done once by {!Machine.create}):
    flushes erase the TLB taint they clean, and {!lookup} reports each
    hit to {!Taint.observe_tlb} — a hit on a tainted entry is a
    revocation bypass (the hit path skips the EPT walk). *)
