type t = {
  lines : (int, int) Hashtbl.t; (* line index -> last-toucher tag *)
  counter : Cycles.counter;
  mutable taint : Taint.t option;
}

let line_size = 64

(* Taint stores line indexes computed from its own copy of the line
   size; keep the two in lock step. *)
let () = assert (line_size = Taint.line_size)

let create ~counter = { lines = Hashtbl.create 1024; counter; taint = None }

let set_taint t taint = t.taint <- Some taint

let touch t ~tag addr =
  (* A fill observes whatever the line still holds before overwriting
     the tag — the probe a co-resident attacker performs. *)
  (match t.taint with None -> () | Some tt -> Taint.observe_line tt ~reader:tag addr);
  Hashtbl.replace t.lines (addr / line_size) tag

let resident_lines t = Hashtbl.length t.lines

let lines_tagged t ~tag =
  Hashtbl.fold (fun _ owner acc -> if owner = tag then acc + 1 else acc) t.lines 0

let resident_lines_in t range =
  let first = Addr.Range.base range / line_size
  and last = Addr.Range.last range / line_size in
  Hashtbl.fold
    (fun line _ acc -> if line >= first && line <= last then line :: acc else acc)
    t.lines []

let lines_of_tag t ~tag =
  Hashtbl.fold (fun line owner acc -> if owner = tag then line :: acc else acc) t.lines []

let flush_range t range =
  let first = Addr.Range.base range / line_size
  and last = Addr.Range.last range / line_size in
  for line = first to last do
    Cycles.charge t.counter Cycles.Cost.cache_flush_line;
    Hashtbl.remove t.lines line;
    match t.taint with None -> () | Some tt -> Taint.clear_line tt line
  done

let flush_all t =
  Cycles.charge t.counter Cycles.Cost.cache_flush_full;
  Hashtbl.reset t.lines;
  match t.taint with None -> () | Some tt -> Taint.clear_all_lines tt
