type t = {
  table : (int, (Addr.Range.t * Perm.t) list ref) Hashtbl.t;
  counter : Cycles.counter;
}

exception Dma_fault of { device : int; addr : Addr.t }

(* Remapping-table updates can be failed by an armed fault plan. *)
let update_fault = Fault.register "iommu.update"

let create ~counter = { table = Hashtbl.create 16; counter }

let slot t device =
  match Hashtbl.find_opt t.table device with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.table device l;
    l

let grant t ~device range perm =
  Fault.hit update_fault;
  Cycles.charge t.counter Cycles.Cost.iommu_table_update;
  let l = slot t device in
  l := (range, perm) :: !l

let revoke_range t ~device range =
  Fault.hit update_fault;
  Cycles.charge t.counter Cycles.Cost.iommu_table_update;
  let l = slot t device in
  l :=
    List.concat_map
      (fun (w, perm) ->
        List.map (fun piece -> (piece, perm)) (Addr.Range.subtract w range))
      !l

let revoke_all t ~device =
  Cycles.charge t.counter Cycles.Cost.iommu_table_update;
  Hashtbl.remove t.table device

let check t ~device addr access =
  let windows = match Hashtbl.find_opt t.table device with Some l -> !l | None -> [] in
  let allowed =
    List.exists
      (fun (w, perm) ->
        Addr.Range.contains w addr
        && Perm.allows perm (access :> [ `Read | `Write | `Exec ]))
      windows
  in
  if not allowed then raise (Dma_fault { device; addr })

let windows t ~device =
  match Hashtbl.find_opt t.table device with Some l -> !l | None -> []

(* Rollback hook for the backends' undo journals: restore a device's
   window list to a previously captured value, without charging cycles
   or consulting fault plans (rollback must never fault). *)
let set_windows t ~device ws =
  if ws = [] then Hashtbl.remove t.table device else (slot t device) := ws

let device_reaches t ~device range =
  List.exists (fun (w, _) -> Addr.Range.overlaps w range) (windows t ~device)
