type t = {
  routes : (int, int) Hashtbl.t; (* vector -> core *)
  remap : (int * int, unit) Hashtbl.t; (* (device, vector) allowed *)
  queue : (int, (int * int) list ref) Hashtbl.t; (* core -> pending *)
  counter : Cycles.counter;
}

exception Blocked of { device : int; vector : int }

let create ~counter =
  { routes = Hashtbl.create 32;
    remap = Hashtbl.create 32;
    queue = Hashtbl.create 8;
    counter }

let route t ~vector ~core = Hashtbl.replace t.routes vector core

let permit t ~device ~vector = Hashtbl.replace t.remap (device, vector) ()

let permitted t ~device =
  Hashtbl.fold (fun (d, v) () acc -> if d = device then v :: acc else acc) t.remap []
  |> List.sort Int.compare

let revoke_device t ~device =
  let victims =
    Hashtbl.fold (fun (d, v) () acc -> if d = device then (d, v) :: acc else acc) t.remap []
  in
  List.iter (Hashtbl.remove t.remap) victims

let post t ~device ~vector =
  Cycles.charge t.counter Cycles.Cost.interrupt_remap_lookup;
  if not (Hashtbl.mem t.remap (device, vector)) then raise (Blocked { device; vector });
  let core = Hashtbl.find t.routes vector in
  Cycles.charge t.counter Cycles.Cost.interrupt_delivery;
  let q =
    match Hashtbl.find_opt t.queue core with
    | Some q -> q
    | None ->
      let q = ref [] in
      Hashtbl.add t.queue core q;
      q
  in
  q := (device, vector) :: !q;
  core

let pending t ~core =
  match Hashtbl.find_opt t.queue core with Some q -> List.rev !q | None -> []

let ack t ~core = Hashtbl.remove t.queue core
