(** Simulated physical memory: a flat byte array addressed by {!Addr.t}.

    This module performs no access control — it is the raw DRAM. All
    protection is enforced above it: CPU accesses go through {!Ept} or
    {!Pmp} checks, device DMA goes through {!Iommu}. Reading or writing
    outside the populated range raises, modelling a machine-check. *)

type t

exception Bus_error of Addr.t
(** Raised on access outside physical memory (hardware machine-check). *)

val create : size:int -> t
(** [create ~size] makes [size] bytes of zeroed physical memory.
    @raise Invalid_argument if size is not page-aligned or non-positive. *)

val size : t -> int
val full_range : t -> Addr.Range.t

val read_byte : t -> Addr.t -> int
val write_byte : t -> Addr.t -> int -> unit
val read : t -> Addr.Range.t -> string
val write : t -> Addr.t -> string -> unit

val zero_range : t -> Addr.Range.t -> unit
(** Clear a range; the revocation "zeroing" clean-up policy uses this.
    Clears any attached page taint over the range ({!set_taint}). *)

val set_taint : t -> Taint.t -> unit
(** Attach the machine's taint oracle (done once by {!Machine.create}):
    {!zero_range} then erases page taint it cleans, and checked CPU
    accesses consult {!observe_taint}. *)

val observe_taint : t -> reader:int -> Addr.t -> unit
(** Report a checked access by [reader] (an ASID = domain id) to the
    attached oracle — {!Taint.observe_page}. No-op when none is
    attached. *)

val measure : t -> Addr.Range.t -> Crypto.Sha256.digest
(** Hash the current content of a range (attestation measurement). *)

val blit : t -> src:Addr.Range.t -> dst:Addr.t -> unit
(** Copy [src] to [dst] (used by the loader). Ranges may not overlap. *)
