type t = { mem : Bytes.t; mutable taint : Taint.t option }

exception Bus_error of Addr.t

let create ~size =
  if size <= 0 || not (Addr.is_page_aligned size) then
    invalid_arg "Physmem.create: size must be positive and page-aligned";
  { mem = Bytes.make size '\x00'; taint = None }

let set_taint t taint = t.taint <- Some taint

let observe_taint t ~reader addr =
  match t.taint with None -> () | Some tt -> Taint.observe_page tt ~reader addr

let size t = Bytes.length t.mem
let full_range t = Addr.Range.make ~base:0 ~len:(size t)

let check t addr len =
  if addr < 0 || len < 0 || addr + len > size t then raise (Bus_error addr)

let read_byte t a =
  check t a 1;
  Char.code (Bytes.get t.mem a)

let write_byte t a v =
  check t a 1;
  Bytes.set t.mem a (Char.chr (v land 0xFF))

let read t r =
  check t (Addr.Range.base r) (Addr.Range.len r);
  Bytes.sub_string t.mem (Addr.Range.base r) (Addr.Range.len r)

let write t a s =
  check t a (String.length s);
  Bytes.blit_string s 0 t.mem a (String.length s)

let zero_range t r =
  check t (Addr.Range.base r) (Addr.Range.len r);
  Bytes.fill t.mem (Addr.Range.base r) (Addr.Range.len r) '\x00';
  (* Zeroing is the clean-up the [Zero*] policies promise: the prior
     owner's residue is gone, so its taint goes with it. *)
  match t.taint with None -> () | Some tt -> Taint.clear_pages tt r

let measure t r =
  check t (Addr.Range.base r) (Addr.Range.len r);
  let ctx = Crypto.Sha256.Ctx.create () in
  Crypto.Sha256.Ctx.feed_bytes ctx t.mem ~off:(Addr.Range.base r) ~len:(Addr.Range.len r);
  Crypto.Sha256.Ctx.finalize ctx

let blit t ~src ~dst =
  let len = Addr.Range.len src in
  check t (Addr.Range.base src) len;
  check t dst len;
  let dst_range = Addr.Range.make ~base:dst ~len in
  if Addr.Range.overlaps src dst_range then invalid_arg "Physmem.blit: overlapping ranges";
  Bytes.blit t.mem (Addr.Range.base src) t.mem dst len
