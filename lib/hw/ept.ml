type entry = { hpa : Addr.t; perm : Perm.t }

type t = {
  pages : (int, entry) Hashtbl.t; (* key: gpa page index *)
  counter : Cycles.counter;
  id : int;
}

exception Violation of { gpa : Addr.t; access : [ `Read | `Write | `Exec ] }

(* Injection points: a page-table write that fails mid-update. *)
let map_fault = Fault.register "ept.map"
let unmap_fault = Fault.register "ept.unmap"

let next_id = ref 0

let create ~counter =
  incr next_id;
  { pages = Hashtbl.create 64; counter; id = !next_id }

let page_index a = a / Addr.page_size

let map_page t ~gpa ~hpa perm =
  if not (Addr.is_page_aligned gpa && Addr.is_page_aligned hpa) then
    invalid_arg "Ept.map_page: unaligned address";
  Fault.hit map_fault;
  Cycles.charge t.counter Cycles.Cost.ept_map_page;
  Hashtbl.replace t.pages (page_index gpa) { hpa; perm }

let map_range t ~gpa range perm =
  if not (Addr.Range.is_page_aligned range) || not (Addr.is_page_aligned gpa) then
    invalid_arg "Ept.map_range: unaligned range";
  List.iteri
    (fun i hpa -> map_page t ~gpa:(gpa + (i * Addr.page_size)) ~hpa perm)
    (Addr.Range.pages range)

let unmap_page t ~gpa =
  Fault.hit unmap_fault;
  Cycles.charge t.counter Cycles.Cost.ept_unmap_page;
  Hashtbl.remove t.pages (page_index gpa)

let unmap_hpa_range t range =
  let victims =
    Hashtbl.fold
      (fun gpa_idx { hpa; _ } acc ->
        if Addr.Range.contains range hpa then gpa_idx :: acc else acc)
      t.pages []
  in
  List.iter
    (fun gpa_idx ->
      Fault.hit unmap_fault;
      Cycles.charge t.counter Cycles.Cost.ept_unmap_page;
      Hashtbl.remove t.pages gpa_idx)
    victims;
  List.length victims

let translate t ~gpa ~access =
  Cycles.charge t.counter Cycles.Cost.page_table_walk;
  match Hashtbl.find_opt t.pages (page_index gpa) with
  | None -> raise (Violation { gpa; access })
  | Some { hpa; perm } ->
    if Perm.allows perm access then hpa + (gpa land (Addr.page_size - 1))
    else raise (Violation { gpa; access })

let entry_at t ~gpa =
  match Hashtbl.find_opt t.pages (page_index gpa) with
  | Some { hpa; perm } -> Some (hpa, perm)
  | None -> None

let mappings_to t range =
  Hashtbl.fold
    (fun gpa_idx { hpa; perm } acc ->
      if Addr.Range.contains range hpa then (gpa_idx * Addr.page_size, hpa, perm) :: acc
      else acc)
    t.pages []

let mapped_pages t = Hashtbl.length t.pages

let hpa_reachable t addr =
  let page = Addr.align_down addr in
  Hashtbl.fold
    (fun _ { hpa; perm } acc -> if hpa = page then Perm.union acc perm else acc)
    t.pages Perm.none

let iter_mappings t f =
  (* Sort so iteration order is deterministic for tests and attestation. *)
  let entries =
    Hashtbl.fold (fun gpa_idx e acc -> (gpa_idx, e) :: acc) t.pages []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (gpa_idx, { hpa; perm }) -> f ~gpa:(gpa_idx * Addr.page_size) ~hpa perm)
    entries

let reaches_hpa_range t range =
  let hit = ref false in
  Hashtbl.iter
    (fun _ { hpa; _ } ->
      if (not !hit)
         && Addr.Range.overlaps range (Addr.Range.make ~base:hpa ~len:Addr.page_size)
      then hit := true)
    t.pages;
  !hit

module Eptp_list = struct
  type ept = t
  type nonrec t = { slots : ept option array; mutable used : int }

  let max_entries = 512

  let create () = { slots = Array.make max_entries None; used = 0 }

  let slot_of t ept =
    let rec find i =
      if i >= t.used then None
      else
        match t.slots.(i) with
        | Some e when e.id = ept.id -> Some i
        | _ -> find (i + 1)
    in
    find 0

  let register t ept =
    match slot_of t ept with
    | Some i -> Some i
    | None ->
      if t.used >= max_entries then None
      else begin
        let i = t.used in
        t.slots.(i) <- Some ept;
        t.used <- i + 1;
        Some i
      end

  let get t i = if i < 0 || i >= t.used then None else t.slots.(i)
  let count t = t.used
end
