(** System-wide invariant checking: the judiciary's local arm (§3.4).

    The verifier trusts the monitor because its implementation is meant
    to be inspected and verified; these checks are the executable form of
    the properties a verification effort would prove. Tests run them
    after every scenario, and the malicious-OS suite (E12) shows they
    catch violations a commodity system would silently allow. *)

type violation = {
  rule : string; (** Short rule identifier, e.g. "hw-matches-tree". *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check_all : Monitor.t -> violation list
(** Run every invariant; empty list = clean system. *)

val check_tree : Monitor.t -> violation list
(** The capability tree's own structural invariants. *)

val check_index : Monitor.t -> violation list
(** The tree's incremental indexes (per-domain caps, segment store,
    root intervals) agree with their full-scan reference
    implementations. *)

val check_hardware_matches_tree : Monitor.t -> violation list
(** For every domain and every byte of the Fig. 4 region map: the
    backend reaches a range iff the tree says the domain holds it.
    Catches both leaks (hardware maps more than the tree granted) and
    lost access. *)

val check_sealed_unextended : Monitor.t -> violation list
(** Sealed domains' *exclusively held* measured regions (root/grant
    lineage — no foreign share anywhere up the chain) must only be
    reachable by tree descendants of the sealed domain's capabilities.
    Regions the domain itself received via a foreign share were never
    exclusive, so no guarantee attaches. Audits the same predicate
    {!Monitor.seal} enforces ({!Monitor.measured_exposures}). *)

val check_no_stale_tlb : Monitor.t -> violation list
(** No TLB entry translates into memory its ASID's domain no longer
    holds — revocations must have shot down stale translations. *)

val check_refcounts : Monitor.t -> violation list
(** The region map's holder sets are consistent with per-resource
    refcounts (the eager/recomputed agreement of ablation a1). *)

val check_remote : Monitor.t -> violation list
(** Remote proxy domains (standing in for peer machines in cross-machine
    delegation) stay inert: never sealed, no entry point, never
    scheduled on a core. *)
