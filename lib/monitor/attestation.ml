type region_report = {
  range : Hw.Addr.Range.t;
  perm : Hw.Perm.t;
  refcount : int;
  holders : Domain.id list;
  measured : bool;
}

(* How a report is authenticated. [Signed] is the v1 form: the monitor
   signed this report's canonical payload directly. [Batched] is the v2
   form: the monitor built a Merkle tree over the payloads of a whole
   batch of reports and signed only the root — this report carries the
   root, its inclusion proof and the shared root signature, so N domains
   cost one one-time key instead of N. *)
type evidence =
  | Signed of Crypto.Signature.signature
  | Batched of {
      batch_root : Crypto.Sha256.digest;
      proof : Crypto.Merkle.proof;
      root_sig : Crypto.Signature.signature;
    }

type t = {
  domain : Domain.id;
  domain_name : string;
  kind : Domain.kind;
  sealed : bool;
  measurement : Crypto.Sha256.digest option;
  regions : region_report list;
  cores : (int * int) list;
  devices : (int * int) list;
  memory_encrypted : bool;
  nonce : string;
  evidence : evidence;
}

let payload_of ~domain ~domain_name ~kind ~sealed ~measurement ~regions ~cores ~devices
    ~memory_encrypted ~nonce =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "tyche-attestation-v1\x00";
  Buffer.add_int32_be buf (Int32.of_int domain);
  Buffer.add_string buf domain_name;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf (Domain.kind_to_string kind);
  Buffer.add_char buf '\x00';
  Buffer.add_char buf (if sealed then '\x01' else '\x00');
  Buffer.add_string buf
    (match measurement with
    | Some m -> Crypto.Sha256.to_raw m
    | None -> String.make 32 '\xff');
  Buffer.add_int32_be buf (Int32.of_int (List.length regions));
  List.iter
    (fun r ->
      Buffer.add_int64_be buf (Int64.of_int (Hw.Addr.Range.base r.range));
      Buffer.add_int64_be buf (Int64.of_int (Hw.Addr.Range.len r.range));
      Buffer.add_string buf (Hw.Perm.to_string r.perm);
      Buffer.add_int32_be buf (Int32.of_int r.refcount);
      List.iter (fun h -> Buffer.add_int32_be buf (Int32.of_int h)) r.holders;
      Buffer.add_char buf (if r.measured then '\x01' else '\x00'))
    regions;
  let add_pairs pairs =
    Buffer.add_int32_be buf (Int32.of_int (List.length pairs));
    List.iter
      (fun (a, b) ->
        Buffer.add_int32_be buf (Int32.of_int a);
        Buffer.add_int32_be buf (Int32.of_int b))
      pairs
  in
  add_pairs cores;
  add_pairs devices;
  Buffer.add_char buf (if memory_encrypted then '\x01' else '\x00');
  Buffer.add_string buf nonce;
  Buffer.contents buf

let payload t =
  payload_of ~domain:t.domain ~domain_name:t.domain_name ~kind:t.kind ~sealed:t.sealed
    ~measurement:t.measurement ~regions:t.regions ~cores:t.cores ~devices:t.devices
    ~memory_encrypted:t.memory_encrypted ~nonce:t.nonce

(* The message actually signed for a batch: domain-separated from v1
   payloads so a batch-root signature can never be replayed as a direct
   report signature or vice versa. *)
let batch_root_payload root =
  "tyche-attestation-batch-v2\x00" ^ Crypto.Sha256.to_raw root

let canonical_regions regions =
  List.sort (fun a b -> Hw.Addr.Range.compare a.range b.range) regions

(* The payload encodes the name NUL-terminated, so an embedded NUL would
   make the signed bytes parse back to a different (shorter) name — a
   non-canonical payload. Refuse at signing time. *)
let check_domain_name domain =
  if String.contains (Domain.name domain) '\x00' then
    invalid_arg "Attestation.sign: domain name contains NUL"

(* Canonicalize one domain's report fields and build the signed body. *)
let prepare ~domain ~regions ~cores ~devices ~memory_encrypted ~nonce =
  check_domain_name domain;
  let regions = canonical_regions regions in
  let cores = List.sort compare cores and devices = List.sort compare devices in
  let did = Domain.id domain in
  let body =
    payload_of ~domain:did ~domain_name:(Domain.name domain) ~kind:(Domain.kind domain)
      ~sealed:(Domain.is_sealed domain) ~measurement:(Domain.measurement domain)
      ~regions ~cores ~devices ~memory_encrypted ~nonce
  in
  let report evidence =
    { domain = did;
      domain_name = Domain.name domain;
      kind = Domain.kind domain;
      sealed = Domain.is_sealed domain;
      measurement = Domain.measurement domain;
      regions;
      cores;
      devices;
      memory_encrypted;
      nonce;
      evidence }
  in
  (body, report)

let sign ~signer ~domain ~regions ~cores ~devices ~memory_encrypted ~nonce =
  let body, report = prepare ~domain ~regions ~cores ~devices ~memory_encrypted ~nonce in
  report (Signed (Crypto.Signature.sign signer body))

let sign_spec ~signer ~domain ~regions ~cores ~devices ~memory_encrypted ~nonce =
  let body, report = prepare ~domain ~regions ~cores ~devices ~memory_encrypted ~nonce in
  report (Signed (Crypto.Signature.sign_spec signer body))

let sign_batch ~signer ~nonce entries =
  let prepared =
    List.map
      (fun (domain, regions, cores, devices, memory_encrypted) ->
        prepare ~domain ~regions ~cores ~devices ~memory_encrypted ~nonce)
      entries
  in
  match prepared with
  | [] -> []
  | _ ->
    let leaves = List.map (fun (body, _) -> Crypto.Sha256.string body) prepared in
    let tree = Crypto.Merkle.build leaves in
    let batch_root = Crypto.Merkle.root tree in
    (* One one-time key authenticates the whole batch. *)
    let root_sig = Crypto.Signature.sign signer (batch_root_payload batch_root) in
    List.mapi
      (fun i (_, report) ->
        report (Batched { batch_root; proof = Crypto.Merkle.prove tree i; root_sig }))
      prepared

let verify ~monitor_root t =
  match t.evidence with
  | Signed sg -> Crypto.Signature.verify ~root:monitor_root (payload t) sg
  | Batched { batch_root; proof; root_sig } ->
    (* The monitor vouched for the root; the proof ties this report's
       canonical payload to that root. Both checks are required: the
       signature alone says nothing about this report, the proof alone
       could hang off an attacker-built tree. *)
    Crypto.Signature.verify ~root:monitor_root (batch_root_payload batch_root) root_sig
    && Crypto.Merkle.verify ~root:batch_root ~leaf:(Crypto.Sha256.string (payload t))
         proof

(* Wire formats.

   v1: u32 payload length | payload | u32 signature length | signature.
   v2: magic | u32 payload length | payload | 32-byte batch root |
       u32 leaf index | u32 path length | path digests | u32 signature
       length | root signature.

   The payload is parsed back field-by-field (it was designed to be
   canonical, so re-serializing a parsed report reproduces the signed
   bytes exactly). v2 is distinguished by a magic prefix that cannot
   collide with v1: a v1 envelope starts with a u32 payload length,
   which would have to be 0x74796368 ("tych") ≈ 1.9 GB — rejected by
   the v1 sanity checks long before then. *)

let wire_v2_magic = "tyche-attestation-wire-v2\x00"

let to_wire t =
  let body = payload t in
  match t.evidence with
  | Signed sg ->
    let sg = Crypto.Signature.signature_to_string sg in
    let buf = Buffer.create (String.length body + String.length sg + 8) in
    Buffer.add_int32_be buf (Int32.of_int (String.length body));
    Buffer.add_string buf body;
    Buffer.add_int32_be buf (Int32.of_int (String.length sg));
    Buffer.add_string buf sg;
    Buffer.contents buf
  | Batched { batch_root; proof; root_sig } ->
    let sg = Crypto.Signature.signature_to_string root_sig in
    let buf = Buffer.create (String.length body + String.length sg + 256) in
    Buffer.add_string buf wire_v2_magic;
    Buffer.add_int32_be buf (Int32.of_int (String.length body));
    Buffer.add_string buf body;
    Buffer.add_string buf (Crypto.Sha256.to_raw batch_root);
    Buffer.add_int32_be buf (Int32.of_int proof.Crypto.Merkle.leaf_index);
    Buffer.add_int32_be buf (Int32.of_int (List.length proof.Crypto.Merkle.path));
    List.iter
      (fun d -> Buffer.add_string buf (Crypto.Sha256.to_raw d))
      proof.Crypto.Merkle.path;
    Buffer.add_int32_be buf (Int32.of_int (String.length sg));
    Buffer.add_string buf sg;
    Buffer.contents buf

let of_wire wire =
  let exception Bad of string in
  let fail msg = raise (Bad msg) in
  try
    (* Parse the canonical payload shared by both envelope versions. *)
    let parse_body body evidence =
      let pos = ref 0 in
      let take n =
        if !pos + n > String.length body then fail "truncated payload";
        let s = String.sub body !pos n in
        pos := !pos + n;
        s
      in
      let u32 () = Int32.to_int (String.get_int32_be (take 4) 0) in
      let u64 () = Int64.to_int (String.get_int64_be (take 8) 0) in
      let until_nul () =
        match String.index_from_opt body !pos '\x00' with
        | None -> fail "unterminated string"
        | Some stop ->
          let s = String.sub body !pos (stop - !pos) in
          pos := stop + 1;
          s
      in
      if take 21 <> "tyche-attestation-v1\x00" then fail "bad magic";
      let domain = u32 () in
      let domain_name = until_nul () in
      let kind =
        match until_nul () with
        | "os" -> Domain.Os
        | "sandbox" -> Domain.Sandbox
        | "enclave" -> Domain.Enclave
        | "confidential-vm" -> Domain.Confidential_vm
        | "io-domain" -> Domain.Io_domain
        | "remote" -> Domain.Remote
        | k -> fail ("unknown kind " ^ k)
      in
      let sealed =
        match (take 1).[0] with '\x00' -> false | '\x01' -> true | _ -> fail "bad flag"
      in
      let measurement =
        let raw = take 32 in
        if raw = String.make 32 '\xff' then None else Some (Crypto.Sha256.of_raw raw)
      in
      let nregions = u32 () in
      if nregions < 0 || nregions > 65536 then fail "unreasonable region count";
      let regions =
        List.init nregions (fun _ ->
            let base = u64 () in
            let len = u64 () in
            if len <= 0 then fail "empty region";
            let perm_s = take 3 in
            (* Only the canonical letter or '-' is acceptable: any other
               character would re-serialize differently from the signed
               bytes (Perm.to_string emits exactly these). *)
            let perm_flag c expected =
              if c = expected then true
              else if c = '-' then false
              else fail "bad permission field"
            in
            let perm =
              { Hw.Perm.read = perm_flag perm_s.[0] 'r';
                write = perm_flag perm_s.[1] 'w';
                exec = perm_flag perm_s.[2] 'x' }
            in
            let refcount = u32 () in
            if refcount < 0 || refcount > 65536 then fail "unreasonable refcount";
            let holders = List.init refcount (fun _ -> u32 ()) in
            let measured =
              match (take 1).[0] with
              | '\x00' -> false
              | '\x01' -> true
              | _ -> fail "bad measured flag"
            in
            { range = Hw.Addr.Range.make ~base ~len; perm; refcount; holders; measured })
      in
      let pairs () =
        let n = u32 () in
        if n < 0 || n > 65536 then fail "unreasonable pair count";
        List.init n (fun _ ->
            let a = u32 () in
            let b = u32 () in
            (a, b))
      in
      let cores = pairs () in
      let devices = pairs () in
      let memory_encrypted =
        match (take 1).[0] with
        | '\x00' -> false
        | '\x01' -> true
        | _ -> fail "bad encryption flag"
      in
      let nonce = String.sub body !pos (String.length body - !pos) in
      { domain; domain_name; kind; sealed; measurement; regions; cores; devices;
        memory_encrypted; nonce; evidence }
    in
    let read_u32 off =
      if off + 4 > String.length wire then fail "truncated envelope";
      Int32.to_int (String.get_int32_be wire off)
    in
    let magic_len = String.length wire_v2_magic in
    if
      String.length wire >= magic_len && String.sub wire 0 magic_len = wire_v2_magic
    then begin
      (* v2: proof-carrying batched report. *)
      let body_len = read_u32 magic_len in
      if body_len < 0 || magic_len + 4 + body_len > String.length wire then
        fail "bad payload length";
      let body = String.sub wire (magic_len + 4) body_len in
      let pos = magic_len + 4 + body_len in
      if pos + 32 > String.length wire then fail "truncated batch root";
      let batch_root =
        try Crypto.Sha256.of_raw (String.sub wire pos 32)
        with Invalid_argument m -> fail m
      in
      let leaf_index = read_u32 (pos + 32) in
      let path_len = read_u32 (pos + 36) in
      if leaf_index < 0 then fail "bad leaf index";
      if path_len < 0 || path_len > 64 then fail "bad path length";
      let path_off = pos + 40 in
      if path_off + (path_len * 32) > String.length wire then fail "truncated path";
      let path =
        List.init path_len (fun i ->
            Crypto.Sha256.of_raw (String.sub wire (path_off + (i * 32)) 32))
      in
      let sig_off = path_off + (path_len * 32) in
      let sig_len = read_u32 sig_off in
      if sig_len < 0 || sig_off + 4 + sig_len <> String.length wire then
        fail "bad signature length";
      let root_sig =
        try Crypto.Signature.signature_of_string (String.sub wire (sig_off + 4) sig_len)
        with Invalid_argument m -> fail m
      in
      Ok
        (parse_body body
           (Batched
              { batch_root; proof = { Crypto.Merkle.leaf_index; path }; root_sig }))
    end
    else begin
      (* v1: directly signed report. *)
      if String.length wire < 8 then fail "truncated envelope";
      let body_len = read_u32 0 in
      if body_len < 0 || 4 + body_len + 4 > String.length wire then
        fail "bad payload length";
      let body = String.sub wire 4 body_len in
      let sig_len = read_u32 (4 + body_len) in
      if sig_len < 0 || 8 + body_len + sig_len <> String.length wire then
        fail "bad signature length";
      let signature =
        try Crypto.Signature.signature_of_string (String.sub wire (8 + body_len) sig_len)
        with Invalid_argument m -> fail m
      in
      Ok (parse_body body (Signed signature))
    end
  with
  | Bad msg -> Error ("Attestation.of_wire: " ^ msg)
  | Invalid_argument msg -> Error ("Attestation.of_wire: " ^ msg)

let exclusive_regions t = List.filter (fun r -> r.refcount = 1) t.regions

let shared_with t other = List.filter (fun r -> List.mem other r.holders) t.regions

let pp fmt t =
  Format.fprintf fmt "@[<v>attestation for domain#%d (%s, %a%s)@," t.domain t.domain_name
    Domain.pp_kind t.kind
    (if t.sealed then ", sealed" else "");
  (match t.measurement with
  | Some m -> Format.fprintf fmt "measurement: %a@," Crypto.Sha256.pp m
  | None -> Format.fprintf fmt "measurement: <unsealed>@,");
  Format.fprintf fmt "memory encryption: %s@,"
    (if t.memory_encrypted then "private key (MKTME)" else "none");
  (match t.evidence with
  | Signed _ -> ()
  | Batched { batch_root; proof; _ } ->
    Format.fprintf fmt "batched: leaf %d of tree %a@," proof.Crypto.Merkle.leaf_index
      Crypto.Sha256.pp batch_root);
  Format.fprintf fmt "regions:@,";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %a %a refs=%d holders=[%s]%s@," Hw.Addr.Range.pp r.range
        Hw.Perm.pp r.perm r.refcount
        (String.concat ";" (List.map string_of_int r.holders))
        (if r.measured then " measured" else ""))
    t.regions;
  List.iter (fun (c, n) -> Format.fprintf fmt "  core#%d refs=%d@," c n) t.cores;
  List.iter (fun (d, n) -> Format.fprintf fmt "  dev#%04x refs=%d@," d n) t.devices;
  Format.fprintf fmt "@]"
