type call =
  | Create_domain of { name : string; kind : Domain.kind }
  | Set_entry_point of { domain : Domain.id; entry : Hw.Addr.t }
  | Set_flush_policy of { domain : Domain.id; flush : bool }
  | Mark_measured of { domain : Domain.id; range : Hw.Addr.Range.t }
  | Seal of { domain : Domain.id }
  | Destroy of { domain : Domain.id }
  | Share of {
      cap : Cap.Captree.cap_id;
      to_ : Domain.id;
      rights : Cap.Rights.t;
      cleanup : Cap.Revocation.t;
      subrange : Hw.Addr.Range.t option;
    }
  | Grant of {
      cap : Cap.Captree.cap_id;
      to_ : Domain.id;
      rights : Cap.Rights.t;
      cleanup : Cap.Revocation.t;
    }
  | Split of { cap : Cap.Captree.cap_id; at : Hw.Addr.t }
  | Carve of { cap : Cap.Captree.cap_id; subrange : Hw.Addr.Range.t }
  | Revoke of { cap : Cap.Captree.cap_id }
  | Enumerate
  | Attest of { domain : Domain.id; nonce : string }
  | Call of { target : Domain.id }
  | Return

type result_value =
  | R_unit
  | R_domain of Domain.id
  | R_cap of Cap.Captree.cap_id
  | R_cap_pair of Cap.Captree.cap_id * Cap.Captree.cap_id
  | R_caps of Cap.Captree.cap_id list
  | R_attestation of Attestation.t
  | R_path of Backend_intf.transition_path

type response = (result_value, Monitor.error) result

let pp_call fmt = function
  | Create_domain { name; kind } ->
    Format.fprintf fmt "create_domain(%s,%a)" name Domain.pp_kind kind
  | Set_entry_point { domain; entry } ->
    Format.fprintf fmt "set_entry_point(#%d,0x%x)" domain entry
  | Set_flush_policy { domain; flush } ->
    Format.fprintf fmt "set_flush_policy(#%d,%b)" domain flush
  | Mark_measured { domain; range } ->
    Format.fprintf fmt "mark_measured(#%d,%a)" domain Hw.Addr.Range.pp range
  | Seal { domain } -> Format.fprintf fmt "seal(#%d)" domain
  | Destroy { domain } -> Format.fprintf fmt "destroy(#%d)" domain
  | Share { cap; to_; _ } -> Format.fprintf fmt "share(cap%d -> #%d)" cap to_
  | Grant { cap; to_; _ } -> Format.fprintf fmt "grant(cap%d -> #%d)" cap to_
  | Split { cap; at } -> Format.fprintf fmt "split(cap%d @ 0x%x)" cap at
  | Carve { cap; subrange } ->
    Format.fprintf fmt "carve(cap%d, %a)" cap Hw.Addr.Range.pp subrange
  | Revoke { cap } -> Format.fprintf fmt "revoke(cap%d)" cap
  | Enumerate -> Format.pp_print_string fmt "enumerate"
  | Attest { domain; _ } -> Format.fprintf fmt "attest(#%d)" domain
  | Call { target } -> Format.fprintf fmt "call(#%d)" target
  | Return -> Format.pp_print_string fmt "return"

let pp_response fmt = function
  | Ok R_unit -> Format.pp_print_string fmt "ok"
  | Ok (R_domain d) -> Format.fprintf fmt "ok domain #%d" d
  | Ok (R_cap c) -> Format.fprintf fmt "ok cap %d" c
  | Ok (R_cap_pair (a, b)) -> Format.fprintf fmt "ok caps (%d,%d)" a b
  | Ok (R_caps caps) -> Format.fprintf fmt "ok %d caps" (List.length caps)
  | Ok (R_attestation att) -> Format.fprintf fmt "ok attestation #%d" att.Attestation.domain
  | Ok (R_path p) -> Format.fprintf fmt "ok %a" Backend_intf.pp_transition_path p
  | Error e -> Format.fprintf fmt "error: %a" Monitor.pp_error e

let op_name = function
  | Create_domain _ -> "create_domain"
  | Set_entry_point _ -> "set_entry_point"
  | Set_flush_policy _ -> "set_flush_policy"
  | Mark_measured _ -> "mark_measured"
  | Seal _ -> "seal"
  | Destroy _ -> "destroy"
  | Share _ -> "share"
  | Grant _ -> "grant"
  | Split _ -> "split"
  | Carve _ -> "carve"
  | Revoke _ -> "revoke"
  | Enumerate -> "enumerate"
  | Attest _ -> "attest"
  | Call _ -> "call"
  | Return -> "return"

(* One hoisted span handle per call variant: dispatching pays no string
   concatenation and no registry lookup, just the span itself. *)
let h_create_domain = Obs.Profile.handle "api.create_domain"
let h_set_entry_point = Obs.Profile.handle "api.set_entry_point"
let h_set_flush_policy = Obs.Profile.handle "api.set_flush_policy"
let h_mark_measured = Obs.Profile.handle "api.mark_measured"
let h_seal = Obs.Profile.handle "api.seal"
let h_destroy = Obs.Profile.handle "api.destroy"
let h_share = Obs.Profile.handle "api.share"
let h_grant = Obs.Profile.handle "api.grant"
let h_split = Obs.Profile.handle "api.split"
let h_carve = Obs.Profile.handle "api.carve"
let h_revoke = Obs.Profile.handle "api.revoke"
let h_enumerate = Obs.Profile.handle "api.enumerate"
let h_attest = Obs.Profile.handle "api.attest"
let h_call = Obs.Profile.handle "api.call"
let h_return = Obs.Profile.handle "api.return"

let op_handle = function
  | Create_domain _ -> h_create_domain
  | Set_entry_point _ -> h_set_entry_point
  | Set_flush_policy _ -> h_set_flush_policy
  | Mark_measured _ -> h_mark_measured
  | Seal _ -> h_seal
  | Destroy _ -> h_destroy
  | Share _ -> h_share
  | Grant _ -> h_grant
  | Split _ -> h_split
  | Carve _ -> h_carve
  | Revoke _ -> h_revoke
  | Enumerate -> h_enumerate
  | Attest _ -> h_attest
  | Call _ -> h_call
  | Return -> h_return

(* The single choke point every monitor call funnels through, so one
   span here guarantees a balanced begin/end pair per operation: the
   error paths return values and the catch-all below converts the only
   escaping exceptions, while [Obs.Profile.span_h] itself is
   exception-safe for anything injected deeper down. *)
(* The backend name is the same physical string for the life of a
   monitor, so a one-entry cache turns per-dispatch interning into a
   pointer compare (the hashtable is only hit when replays alternate
   between backends). *)
let last_bk_name = ref ""
let last_bk_id = ref 0

let backend_id name =
  if name == !last_bk_name then !last_bk_id
  else begin
    let id = Obs.intern name in
    last_bk_name := name;
    last_bk_id := id;
    id
  end

let dispatch m ~caller ~core call : response =
  Obs.Profile.span_h ~domain:caller
    ~backend:(backend_id (Monitor.backend m).Backend_intf.backend_name)
    (op_handle call)
  @@ fun () ->
  try
    match call with
    | Create_domain { name; kind } ->
      Result.map (fun d -> R_domain d) (Monitor.create_domain m ~caller ~name ~kind)
    | Set_entry_point { domain; entry } ->
      Result.map (fun () -> R_unit) (Monitor.set_entry_point m ~caller ~domain entry)
    | Set_flush_policy { domain; flush } ->
      Result.map (fun () -> R_unit) (Monitor.set_flush_policy m ~caller ~domain flush)
    | Mark_measured { domain; range } ->
      Result.map (fun () -> R_unit) (Monitor.mark_measured m ~caller ~domain range)
    | Seal { domain } -> Result.map (fun () -> R_unit) (Monitor.seal m ~caller ~domain)
    | Destroy { domain } ->
      Result.map (fun () -> R_unit) (Monitor.destroy_domain m ~caller ~domain)
    | Share { cap; to_; rights; cleanup; subrange } ->
      Result.map (fun c -> R_cap c)
        (Monitor.share m ~caller ~cap ~to_ ~rights ~cleanup ?subrange ())
    | Grant { cap; to_; rights; cleanup } ->
      Result.map (fun c -> R_cap c) (Monitor.grant m ~caller ~cap ~to_ ~rights ~cleanup)
    | Split { cap; at } ->
      Result.map (fun (a, b) -> R_cap_pair (a, b)) (Monitor.split m ~caller ~cap ~at)
    | Carve { cap; subrange } ->
      Result.map (fun c -> R_cap c) (Monitor.carve m ~caller ~cap ~subrange)
    | Revoke { cap } -> Result.map (fun () -> R_unit) (Monitor.revoke m ~caller ~cap)
    | Enumerate -> Ok (R_caps (Monitor.caps_of m caller))
    | Attest { domain; nonce } ->
      Result.map (fun a -> R_attestation a) (Monitor.attest m ~caller ~domain ~nonce)
    | Call { target } ->
      if Monitor.current_domain m ~core <> caller then
        Error (Monitor.Bad_transition "caller is not current on this core")
      else Result.map (fun p -> R_path p) (Monitor.call m ~core ~target)
    | Return ->
      if Monitor.current_domain m ~core <> caller then
        Error (Monitor.Bad_transition "caller is not current on this core")
      else Result.map (fun p -> R_path p) (Monitor.ret m ~core)
  with
  | Invalid_argument msg -> Error (Monitor.Denied ("invalid argument: " ^ msg))
  | Failure msg -> Error (Monitor.Denied ("failure: " ^ msg))

(* Wire format: opcode byte, then fixed-width big-endian operands;
   strings are u16-length-prefixed; ranges are two u64s; rights are one
   flag byte; cleanup policies one byte. *)

let put_u64 buf v = Buffer.add_int64_be buf (Int64.of_int v)

let put_string buf s =
  Buffer.add_uint16_be buf (String.length s);
  Buffer.add_string buf s

let put_range buf r =
  put_u64 buf (Hw.Addr.Range.base r);
  put_u64 buf (Hw.Addr.Range.len r)

let kind_code = function
  | Domain.Os -> 0
  | Domain.Sandbox -> 1
  | Domain.Enclave -> 2
  | Domain.Confidential_vm -> 3
  | Domain.Io_domain -> 4
  | Domain.Remote -> 5

let kind_of_code = function
  | 0 -> Some Domain.Os
  | 1 -> Some Domain.Sandbox
  | 2 -> Some Domain.Enclave
  | 3 -> Some Domain.Confidential_vm
  | 4 -> Some Domain.Io_domain
  | 5 -> Some Domain.Remote
  | _ -> None

let rights_byte (r : Cap.Rights.t) =
  (if r.perm.Hw.Perm.read then 1 else 0)
  lor (if r.perm.Hw.Perm.write then 2 else 0)
  lor (if r.perm.Hw.Perm.exec then 4 else 0)
  lor (if r.can_share then 8 else 0)
  lor if r.can_grant then 16 else 0

let rights_of_byte b =
  { Cap.Rights.perm =
      { Hw.Perm.read = b land 1 <> 0; write = b land 2 <> 0; exec = b land 4 <> 0 };
    can_share = b land 8 <> 0;
    can_grant = b land 16 <> 0 }

let cleanup_code = function
  | Cap.Revocation.Keep -> 0
  | Cap.Revocation.Zero -> 1
  | Cap.Revocation.Flush_cache -> 2
  | Cap.Revocation.Zero_and_flush -> 3

let cleanup_of_code = function
  | 0 -> Some Cap.Revocation.Keep
  | 1 -> Some Cap.Revocation.Zero
  | 2 -> Some Cap.Revocation.Flush_cache
  | 3 -> Some Cap.Revocation.Zero_and_flush
  | _ -> None

let encode call =
  let buf = Buffer.create 64 in
  let op n = Buffer.add_char buf (Char.chr n) in
  (match call with
  | Create_domain { name; kind } ->
    op 1;
    Buffer.add_char buf (Char.chr (kind_code kind));
    put_string buf name
  | Set_entry_point { domain; entry } ->
    op 2;
    put_u64 buf domain;
    put_u64 buf entry
  | Set_flush_policy { domain; flush } ->
    op 3;
    put_u64 buf domain;
    Buffer.add_char buf (if flush then '\x01' else '\x00')
  | Mark_measured { domain; range } ->
    op 4;
    put_u64 buf domain;
    put_range buf range
  | Seal { domain } ->
    op 5;
    put_u64 buf domain
  | Destroy { domain } ->
    op 6;
    put_u64 buf domain
  | Share { cap; to_; rights; cleanup; subrange } ->
    op 7;
    put_u64 buf cap;
    put_u64 buf to_;
    Buffer.add_char buf (Char.chr (rights_byte rights));
    Buffer.add_char buf (Char.chr (cleanup_code cleanup));
    (match subrange with
    | None -> Buffer.add_char buf '\x00'
    | Some r ->
      Buffer.add_char buf '\x01';
      put_range buf r)
  | Grant { cap; to_; rights; cleanup } ->
    op 8;
    put_u64 buf cap;
    put_u64 buf to_;
    Buffer.add_char buf (Char.chr (rights_byte rights));
    Buffer.add_char buf (Char.chr (cleanup_code cleanup))
  | Split { cap; at } ->
    op 9;
    put_u64 buf cap;
    put_u64 buf at
  | Carve { cap; subrange } ->
    op 10;
    put_u64 buf cap;
    put_range buf subrange
  | Revoke { cap } ->
    op 11;
    put_u64 buf cap
  | Enumerate -> op 12
  | Attest { domain; nonce } ->
    op 13;
    put_u64 buf domain;
    put_string buf nonce
  | Call { target } ->
    op 14;
    put_u64 buf target
  | Return -> op 15);
  Buffer.contents buf

let decode s =
  let exception Bad of string in
  let pos = ref 0 in
  let byte () =
    if !pos >= String.length s then raise (Bad "truncated");
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let u64 () =
    if !pos + 8 > String.length s then raise (Bad "truncated");
    let v = Int64.to_int (String.get_int64_be s !pos) in
    pos := !pos + 8;
    if v < 0 then raise (Bad "negative operand");
    v
  in
  let str () =
    if !pos + 2 > String.length s then raise (Bad "truncated");
    let n = Char.code s.[!pos] * 256 + Char.code s.[!pos + 1] in
    pos := !pos + 2;
    if !pos + n > String.length s then raise (Bad "truncated string");
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  let rng () =
    let base = u64 () in
    let len = u64 () in
    if len <= 0 then raise (Bad "empty range");
    Hw.Addr.Range.make ~base ~len
  in
  match
    let call =
      match byte () with
      | 1 ->
        let kind =
          match kind_of_code (byte ()) with
          | Some k -> k
          | None -> raise (Bad "bad kind")
        in
        let name = str () in
        Create_domain { name; kind }
      | 2 ->
        let domain = u64 () in
        let entry = u64 () in
        Set_entry_point { domain; entry }
      | 3 ->
        let domain = u64 () in
        let flush = byte () <> 0 in
        Set_flush_policy { domain; flush }
      | 4 ->
        let domain = u64 () in
        let range = rng () in
        Mark_measured { domain; range }
      | 5 -> Seal { domain = u64 () }
      | 6 -> Destroy { domain = u64 () }
      | 7 ->
        let cap = u64 () in
        let to_ = u64 () in
        let rights = rights_of_byte (byte ()) in
        let cleanup =
          match cleanup_of_code (byte ()) with
          | Some c -> c
          | None -> raise (Bad "bad cleanup")
        in
        let subrange = if byte () = 0 then None else Some (rng ()) in
        Share { cap; to_; rights; cleanup; subrange }
      | 8 ->
        let cap = u64 () in
        let to_ = u64 () in
        let rights = rights_of_byte (byte ()) in
        let cleanup =
          match cleanup_of_code (byte ()) with
          | Some c -> c
          | None -> raise (Bad "bad cleanup")
        in
        Grant { cap; to_; rights; cleanup }
      | 9 ->
        let cap = u64 () in
        let at = u64 () in
        Split { cap; at }
      | 10 ->
        let cap = u64 () in
        let subrange = rng () in
        Carve { cap; subrange }
      | 11 -> Revoke { cap = u64 () }
      | 12 -> Enumerate
      | 13 ->
        let domain = u64 () in
        let nonce = str () in
        Attest { domain; nonce }
      | 14 -> Call { target = u64 () }
      | 15 -> Return
      | n -> raise (Bad (Printf.sprintf "unknown opcode %d" n))
    in
    if !pos <> String.length s then raise (Bad "trailing bytes");
    call
  with
  | call -> Ok call
  | exception Bad msg -> Error msg
  | exception Invalid_argument msg -> Error msg
