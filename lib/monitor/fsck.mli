(** Post-recovery consistency check — the monitor's fsck.

    Recovered state is never trusted blindly: after {!Monitor.recover},
    run {!check} to cross-check the rebuilt tree against every runtime
    invariant ({!Invariants}), the incremental indexes against their
    full-scan references ({!Cap.Captree.check_index_consistency}), and —
    when pre-crash attestations are available — verify a fresh
    attestation over the recovered tree is byte-identical in body to the
    one taken before the crash (signatures differ: the one-time signing
    keys are deliberately not durable).

    (The issue sketch placed this pass in [Persist]; it lives here
    because it needs {!Invariants}, which sits above the persist
    layer.) *)

type item = {
  f_name : string; (** Pass name, e.g. ["hardware"]. *)
  f_ok : bool;
  f_detail : string list; (** One line per inconsistency found. *)
}

type report = { items : item list }

val check : ?baseline:(Domain.id * Attestation.t) list -> Monitor.t -> report
(** Run every pass. [baseline] pairs domain ids with attestations taken
    before the crash; each is re-attested under its original nonce and
    compared by canonical payload. *)

val ok : report -> bool

val body_equal : Attestation.t -> Attestation.t -> bool
(** Canonical-payload equality (ignores the signature/evidence). *)

val pp : Format.formatter -> report -> unit
