let src = Logs.Src.create "tyche.monitor" ~doc:"Tyche isolation monitor"

module Log = (val Logs.src_log src : Logs.LOG)

type error =
  | Cap_error of Cap.Captree.error
  | Unknown_domain of Domain.id
  | Denied of string
  | Backend_refused of string
  | Backend_failure of string
  | Bad_transition of string
  | Domain_config of string

let error_to_string = function
  | Cap_error e -> "capability error: " ^ Cap.Captree.error_to_string e
  | Unknown_domain id -> Printf.sprintf "unknown domain %d" id
  | Denied s -> "denied: " ^ s
  | Backend_refused s -> "backend refused: " ^ s
  | Backend_failure s -> "backend failure (rolled back): " ^ s
  | Bad_transition s -> "bad transition: " ^ s
  | Domain_config s -> "domain configuration: " ^ s

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

(* Memoized attestation body: the capability enumeration (regions with
   refcounts/holders, core and device counts) is a pure function of the
   tree state and the domain's measured ranges, so it can be reused
   verbatim until either changes. Signatures are NEVER cached — each
   attestation consumes a fresh one-time key over a fresh nonce. *)
type attest_entry = {
  at_generation : int; (* Captree.generation when the body was built *)
  at_measured : Hw.Addr.Range.t list;
  at_regions : Attestation.region_report list;
  at_cores : (int * int) list;
  at_devices : (int * int) list;
}

(* Durable redo layer (armed by [enable_persistence] or [recover]).
   [p_seq] numbers committed operations; the WAL holds records
   [snapshot_seq+1 .. p_seq] (minus an unsynced or torn tail), and each
   snapshot in the store records the seq it captures, so recovery can
   replay exactly the suffix. [p_replaying] mutes logging while recovery
   re-executes the suffix through the normal API. *)
type persist_cfg = {
  p_store : Persist.Store.t;
  p_snapshot_every : int;
  (* Group-commit queue over the WAL blob: appends accumulate and one
     fsync acknowledges the whole batch (its [durable_seq] is the
     acknowledgement floor recovery must honor). *)
  p_group : Persist.Group.t;
  mutable p_seq : int;
  mutable p_since_snapshot : int;
  mutable p_replaying : bool;
  (* Incremental-checkpoint bookkeeping. [p_ckpt_gen] is the captree
     generation the last checkpoint covered; a bucket is dirty iff its
     [Captree.bucket_generation] is newer (or it was never serialized).
     [p_seg_cache] maps bucket -> segment hash as of that checkpoint
     ([""] marks an empty bucket); [p_seg_durable] is the set of segment
     hashes known durable in the segment blob, the dedup filter. *)
  mutable p_ckpt_gen : int;
  p_seg_cache : (int, string) Hashtbl.t;
  p_seg_durable : (string, unit) Hashtbl.t;
  (* False when the snapshot/segment streams may end in a torn frame
     (fresh store, or a checkpoint died mid-write). Checkpoints repair
     the tails only then: the repair scan parses both blobs end to end,
     which would otherwise put an O(total state) term in every
     checkpoint pause. *)
  mutable p_tails_ok : bool;
}

type t = {
  machine : Hw.Machine.t;
  mutable tree : Cap.Captree.t; (* mutable only for [recover] *)
  backend : Backend_intf.t;
  tpm : Rot.Tpm.t;
  signer : Crypto.Signature.signer;
  domains : (Domain.id, Domain.t) Hashtbl.t;
  mutable next_domain : Domain.id;
  current : Domain.id array; (* per-core running domain *)
  stacks : Domain.id list array; (* per-core return stacks *)
  reg_contexts : (Domain.id * int, int array) Hashtbl.t; (* (domain, core) *)
  mutable transitions : int;
  attest_cache : (Domain.id, attest_entry) Hashtbl.t;
  keypool : Crypto.Keypool.t option;
  mutable attests : int; (* attestations signed (telemetry) *)
  mutable body_hits : int; (* memoized attestation bodies reused *)
  mutable body_misses : int; (* bodies re-enumerated *)
  mutable persist : persist_cfg option;
}

let key_binding_pcr = 18

let ( let* ) = Result.bind

let machine t = t.machine
let tree t = t.tree
let backend t = t.backend
let attestation_root t = Crypto.Signature.public_root t.signer
let transition_count t = t.transitions

let find_domain t id = Hashtbl.find_opt t.domains id

let domains t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.domains []
  |> List.sort (fun a b -> Int.compare (Domain.id a) (Domain.id b))

let get_domain t id =
  match find_domain t id with Some d -> Ok d | None -> Error (Unknown_domain id)

(* A domain may hold several *overlapping* active capabilities over the
   same memory — a range shared back to it by a peer, a self-grant, or
   split remainders of such an alias. Detaching one of them must not
   tear down hardware access (or run destructive cleanup) on bytes the
   domain still legitimately reaches through the survivors. Effects are
   applied after the tree mutation, so the tree at this point lists
   exactly the surviving active holdings.

   Rewrite every memory Detach into canonical form:
   - pieces no surviving capability covers detach with the original
     clean-up policy (destructive clean-up only ever touches memory the
     domain genuinely lost);
   - covered pieces detach with [Keep] and are immediately re-attached
     under each surviving holder's own permission.

   Merely suppressing the covered pieces (keeping whatever entries the
   historical attach order produced) is not enough: a stale fragment
   whose permission happens to match its neighbours can bridge two
   disjoint active holdings into one hardware entry, so the live layout
   can need *fewer* finite hardware slots (PMP entries) than the
   canonical per-(domain, perm) union of active holdings. Crash
   recovery re-derives exactly that canonical union from a snapshot;
   keeping the live layout canonical too is what guarantees recovery's
   re-attach fits any budget the live run fit. *)
let trim_detach t eff =
  match eff with
  | Cap.Captree.Detach { domain; resource = Cap.Resource.Memory r; cleanup } ->
    let survivors =
      List.filter_map
        (fun c ->
          match (Cap.Captree.resource t.tree c, Cap.Captree.rights t.tree c) with
          | Some (Cap.Resource.Memory held), Some rights
            when Hw.Addr.Range.overlaps held r ->
            Some (held, rights.Cap.Rights.perm)
          | _ -> None)
        (Cap.Captree.caps_of_domain t.tree domain)
    in
    let uncovered =
      List.fold_left
        (fun pieces (held, _) ->
          List.concat_map (fun p -> Hw.Addr.Range.subtract p held) pieces)
        [ r ] survivors
    in
    let covered =
      List.fold_left
        (fun pieces unc ->
          List.concat_map (fun p -> Hw.Addr.Range.subtract p unc) pieces)
        [ r ] uncovered
    in
    let detach ~cleanup piece =
      Cap.Captree.Detach { domain; resource = Cap.Resource.Memory piece; cleanup }
    in
    let reattach =
      List.filter_map
        (fun (held, perm) ->
          match Hw.Addr.Range.intersect held r with
          | Some piece ->
            Some
              (Cap.Captree.Attach
                 { domain; resource = Cap.Resource.Memory piece; perm })
          | None -> None)
        survivors
    in
    List.map (detach ~cleanup) uncovered
    @ List.map (detach ~cleanup:Cap.Revocation.Keep) covered
    @ reattach
  | eff -> [ eff ]

(* Apply backend effects in order, stopping at the first failure. The
   typed [Backend_failure] error replaces the old invalid_arg escape
   hatch: callers run inside [with_txn], which rolls both the tree and
   the hardware back, so a failed effect can never leave the two
   disagreeing. *)
let apply_effects t effects =
  let rec go = function
    | [] -> Ok ()
    | eff :: rest -> (
      match t.backend.Backend_intf.apply_effect eff with
      | Ok () -> go rest
      | Error msg ->
        Log.warn (fun m -> m "backend effect failed, rolling back: %s" msg);
        Error (Backend_failure msg))
  in
  go (List.concat_map (trim_detach t) effects)

let cap_result t = function
  | Ok (value, effects) ->
    let* () = apply_effects t effects in
    Ok value
  | Error e -> Error (Cap_error e)

(* --- conversions to the persist layer's neutral types --------------- *)

let kind_to_int = function
  | Domain.Os -> 0
  | Domain.Sandbox -> 1
  | Domain.Enclave -> 2
  | Domain.Confidential_vm -> 3
  | Domain.Io_domain -> 4
  | Domain.Remote -> 5

let kind_of_int = function
  | 0 -> Some Domain.Os
  | 1 -> Some Domain.Sandbox
  | 2 -> Some Domain.Enclave
  | 3 -> Some Domain.Confidential_vm
  | 4 -> Some Domain.Io_domain
  | 5 -> Some Domain.Remote
  | _ -> None

let cleanup_to_int = function
  | Cap.Revocation.Keep -> 0
  | Cap.Revocation.Zero -> 1
  | Cap.Revocation.Flush_cache -> 2
  | Cap.Revocation.Zero_and_flush -> 3

let cleanup_of_int = function
  | 0 -> Some Cap.Revocation.Keep
  | 1 -> Some Cap.Revocation.Zero
  | 2 -> Some Cap.Revocation.Flush_cache
  | 3 -> Some Cap.Revocation.Zero_and_flush
  | _ -> None

let origin_to_int = function
  | Cap.Captree.Orig_root -> 0
  | Cap.Captree.Orig_shared -> 1
  | Cap.Captree.Orig_granted -> 2
  | Cap.Captree.Orig_split -> 3

let origin_of_int = function
  | 0 -> Some Cap.Captree.Orig_root
  | 1 -> Some Cap.Captree.Orig_shared
  | 2 -> Some Cap.Captree.Orig_granted
  | 3 -> Some Cap.Captree.Orig_split
  | _ -> None

let state_to_int = function
  | Cap.Captree.Active -> 0
  | Cap.Captree.Inactive_granted -> 1
  | Cap.Captree.Inactive_split -> 2

let state_of_int = function
  | 0 -> Some Cap.Captree.Active
  | 1 -> Some Cap.Captree.Inactive_granted
  | 2 -> Some Cap.Captree.Inactive_split
  | _ -> None

let rights_to_wire (r : Cap.Rights.t) =
  { Persist.Op.r_read = r.perm.Hw.Perm.read;
    r_write = r.perm.Hw.Perm.write;
    r_exec = r.perm.Hw.Perm.exec;
    r_share = r.can_share;
    r_grant = r.can_grant }

let rights_of_wire (w : Persist.Op.rights) =
  { Cap.Rights.perm =
      { Hw.Perm.read = w.Persist.Op.r_read; write = w.r_write; exec = w.r_exec };
    can_share = w.r_share;
    can_grant = w.r_grant }

let range_pair r = (Hw.Addr.Range.base r, Hw.Addr.Range.len r)
let pair_range (base, len) = Hw.Addr.Range.make ~base ~len

let resource_to_wire = function
  | Cap.Resource.Memory r ->
    Persist.Snapshot.Mem { base = Hw.Addr.Range.base r; len = Hw.Addr.Range.len r }
  | Cap.Resource.Cpu_core c -> Persist.Snapshot.Core c
  | Cap.Resource.Device d -> Persist.Snapshot.Dev d

let resource_of_wire = function
  | Persist.Snapshot.Mem { base; len } -> Cap.Resource.Memory (pair_range (base, len))
  | Persist.Snapshot.Core c -> Cap.Resource.Cpu_core c
  | Persist.Snapshot.Dev d -> Cap.Resource.Device d

let domain_spec d =
  { Persist.Snapshot.d_id = Domain.id d;
    d_name = Domain.name d;
    d_kind = kind_to_int (Domain.kind d);
    d_created_by = (match Domain.created_by d with Some c -> c | None -> -1);
    d_sealed = Domain.is_sealed d;
    d_entry = (match Domain.entry_point d with Some e -> e | None -> -1);
    d_measured = List.map range_pair (Domain.measured_ranges d);
    d_flush = Domain.flush_on_transition d;
    d_measurement =
      (match Domain.measurement d with
      | Some m -> Crypto.Sha256.to_raw m
      | None -> "") }

let node_to_wire (ns : Cap.Captree.node_spec) =
  { Persist.Snapshot.n_id = ns.ns_id;
    n_resource = resource_to_wire ns.ns_resource;
    n_rights = rights_to_wire ns.ns_rights;
    n_owner = ns.ns_owner;
    n_cleanup = cleanup_to_int ns.ns_cleanup;
    n_parent = (match ns.ns_parent with Some p -> p | None -> -1);
    n_origin = origin_to_int ns.ns_origin;
    n_state = state_to_int ns.ns_state;
    n_children = ns.ns_children }

let node_of_wire (n : Persist.Snapshot.node_spec) =
  match
    ( cleanup_of_int n.Persist.Snapshot.n_cleanup,
      origin_of_int n.n_origin,
      state_of_int n.n_state )
  with
  | Some cleanup, Some origin, Some state ->
    Ok
      { Cap.Captree.ns_id = n.n_id;
        ns_resource = resource_of_wire n.n_resource;
        ns_rights = rights_of_wire n.n_rights;
        ns_owner = n.n_owner;
        ns_cleanup = cleanup;
        ns_parent = (if n.n_parent < 0 then None else Some n.n_parent);
        ns_origin = origin;
        ns_state = state;
        ns_children = n.n_children }
  | _ -> Error (Printf.sprintf "snapshot: bad node encoding for cap %d" n.n_id)

let snapshot_state t seq =
  { Persist.Snapshot.seq;
    next_domain = t.next_domain;
    next_cap = Cap.Captree.next_id t.tree;
    generation = Cap.Captree.generation t.tree;
    domains = List.map domain_spec (domains t);
    nodes = List.map node_to_wire (Cap.Captree.dump t.tree);
    current = Array.to_list t.current;
    stacks = Array.to_list t.stacks }

(* A crash mid-snapshot-append leaves a torn frame at the blob's tail,
   and the newest-valid scan cannot see past it — an append after the
   tear would be durable but unreachable. Checkpoints repair the tail
   first; retiring the WAL is only sound once the new record is
   actually loadable. *)
let repair_snap_tail cfg =
  let scan = Persist.Wal.read cfg.p_store ~blob:Persist.Store.snap_blob in
  if scan.Persist.Wal.truncated then
    Persist.Store.truncate cfg.p_store Persist.Store.snap_blob
      scan.Persist.Wal.valid_bytes

(* The segment stream has the same hazard: a crash mid-segment-append
   leaves a torn frame, and anything appended after it would be durable
   but invisible to the CRC-framed parse — a later manifest would then
   reference a segment recovery cannot find, poisoning the fallback
   chain. Repair before appending. *)
let repair_seg_tail cfg =
  let scan = Persist.Wal.read cfg.p_store ~blob:Persist.Store.seg_blob in
  if scan.Persist.Wal.truncated then
    Persist.Store.truncate cfg.p_store Persist.Store.seg_blob
      scan.Persist.Wal.valid_bytes

(* Full checkpoint: make the snapshot durable FIRST, then retire the WAL
   it subsumes. A crash between the two leaves both the snapshot and the
   (now-redundant) log — recovery replays records with seq ≤ snapshot
   seq as no-ops by filtering, so every window is benign. *)
let write_snapshot t cfg =
  if not cfg.p_tails_ok then begin
    repair_snap_tail cfg;
    repair_seg_tail cfg
  end;
  (* Not-ok while this write is in flight: a crash inside it leaves a
     torn tail the next writer must scan for. *)
  cfg.p_tails_ok <- false;
  Persist.Snapshot.write cfg.p_store (snapshot_state t cfg.p_seq);
  cfg.p_tails_ok <- true;
  Persist.Wal.reset cfg.p_store ~blob:Persist.Store.wal_blob;
  Persist.Group.note_durable cfg.p_group ~seq:cfg.p_seq;
  cfg.p_since_snapshot <- 0

(* Incremental checkpoint. Crash-safe order:
     1. serialize dirty buckets, append + fsync new segments;
     2. append + fsync the version-2 manifest — the commit point;
     3. compact the WAL prefix the manifest covers;
     4. GC segment blobs the newest manifest no longer references.
   A crash inside 1 leaves unreferenced garbage segments (harmless,
   GC'd later); inside 2, a torn manifest the newest-valid scan skips;
   inside 3 or 4, covered-but-present WAL records (replay filters them)
   or an intact pre-GC segment blob. Every window recovers. *)
let ckpt_pause_h = Obs.Metrics.histogram "persist.ckpt.pause_ns"
let ckpt_bytes_h = Obs.Metrics.histogram "persist.ckpt.bytes"
let ckpt_segs_h = Obs.Metrics.histogram "persist.ckpt.segments"
let ckpt_c = Obs.Metrics.counter "persist.ckpt"
let seg_gc_c = Obs.Metrics.counter "persist.seg_gc_dropped"

let write_checkpoint t cfg =
  let t0 = Sys.time () in
  if not cfg.p_tails_ok then begin
    repair_snap_tail cfg;
    repair_seg_tail cfg
  end;
  cfg.p_tails_ok <- false;
  let tree = t.tree in
  let span = Cap.Captree.seg_span in
  let max_bucket = (Cap.Captree.next_id tree - 1) / span in
  let entries = ref [] and fresh = ref [] and bytes = ref 0 in
  for b = 0 to max_bucket do
    let dirty =
      match Hashtbl.find_opt cfg.p_seg_cache b with
      | None -> true
      | Some _ -> Cap.Captree.bucket_generation tree b > cfg.p_ckpt_gen
    in
    if dirty then begin
      match Cap.Captree.dump_bucket tree b with
      | [] -> Hashtbl.replace cfg.p_seg_cache b ""
      | nodes ->
        let h, payload = Persist.Snapshot.seg_encode (List.map node_to_wire nodes) in
        if not (Hashtbl.mem cfg.p_seg_durable h) then fresh := (b, h, payload) :: !fresh;
        Hashtbl.replace cfg.p_seg_cache b h
    end;
    match Hashtbl.find_opt cfg.p_seg_cache b with
    | Some "" | None -> ()
    | Some h -> entries := (b, h) :: !entries
  done;
  let entries = List.rev !entries in
  (match List.rev !fresh with
  | [] -> ()
  | fresh ->
    List.iter
      (fun (b, _, payload) ->
        bytes := !bytes + String.length payload;
        Persist.Snapshot.append_segment cfg.p_store ~bucket:b payload)
      fresh;
    Persist.Snapshot.fsync_segments cfg.p_store;
    (* Only now are these hashes safe to dedup against: marking them
       before the fsync could let a later manifest reference bytes a
       crash threw away. *)
    List.iter (fun (_, h, _) -> Hashtbl.replace cfg.p_seg_durable h ()) fresh);
  let m =
    { Persist.Snapshot.m_seq = cfg.p_seq;
      m_next_domain = t.next_domain;
      m_next_cap = Cap.Captree.next_id tree;
      m_generation = Cap.Captree.generation tree;
      m_domains = List.map domain_spec (domains t);
      m_current = Array.to_list t.current;
      m_stacks = Array.to_list t.stacks;
      m_span = span;
      m_segments = entries }
  in
  bytes := !bytes + String.length (Persist.Snapshot.encode_manifest m);
  Persist.Snapshot.write_manifest cfg.p_store m;
  cfg.p_tails_ok <- true;
  cfg.p_ckpt_gen <- Cap.Captree.generation tree;
  cfg.p_since_snapshot <- 0;
  Persist.Group.note_durable cfg.p_group ~seq:cfg.p_seq;
  ignore
    (Persist.Wal.compact cfg.p_store ~blob:Persist.Store.wal_blob ~upto:cfg.p_seq);
  (* GC once dead blobs dominate: rewrite keeps exactly the hashes the
     manifest just committed, so older manifests may stop materializing
     — recovery then falls back past them, which the newest (durable)
     manifest makes moot. *)
  let live = Hashtbl.create (List.length entries) in
  List.iter (fun (_, h) -> Hashtbl.replace live h ()) entries;
  if Hashtbl.length cfg.p_seg_durable > (2 * Hashtbl.length live) + 8 then begin
    let _kept, dropped =
      Persist.Snapshot.gc_segments cfg.p_store ~live:(Hashtbl.mem live)
    in
    if dropped > 0 then begin
      Obs.Metrics.incr ~by:dropped seg_gc_c;
      Hashtbl.reset cfg.p_seg_durable;
      List.iter (fun (_, h) -> Hashtbl.replace cfg.p_seg_durable h ()) entries
    end
  end;
  Obs.Metrics.incr ckpt_c;
  Obs.Metrics.observe ckpt_segs_h (List.length !fresh);
  Obs.Metrics.observe ckpt_bytes_h !bytes;
  (* Host CPU time, not simulated cycles: the checkpoint charges no
     hardware events, and the pause we care about is real serialization
     work. Observability only — never feeds back into control flow. *)
  Obs.Metrics.observe ckpt_pause_h (int_of_float ((Sys.time () -. t0) *. 1e9))

(* Log one committed operation. Called after the in-memory commit: if
   the append crashes, memory is ahead of the log by exactly the ops the
   durable prefix is missing — the redo-log contract. During recovery
   replay, logging is muted (the records already exist). *)
let log_op t op =
  match t.persist with
  | None -> ()
  | Some cfg when cfg.p_replaying -> ()
  | Some cfg ->
    let seq = cfg.p_seq + 1 in
    cfg.p_seq <- seq;
    Persist.Group.append cfg.p_group ~seq (Persist.Op.encode op);
    cfg.p_since_snapshot <- cfg.p_since_snapshot + 1;
    if cfg.p_since_snapshot >= cfg.p_snapshot_every then write_checkpoint t cfg

(* Bracket one mutating API call: journal tree mutations and hardware
   effects, commit on success, roll BOTH back on a typed error or an
   exception — state after a failed call is structurally identical to
   state before it. The backend rolls back first (its undo may read
   nothing from the tree, but symmetry with the forward order —
   tree-then-hardware — costs nothing and composes: (ab)⁻¹ = b⁻¹a⁻¹).
   [?op] is the redo record to append once both commits land; only
   successful calls reach the log, so replay never re-fails. *)
let txn_commit_c = Obs.Metrics.counter "txn.commit"
let txn_rollback_c = Obs.Metrics.counter "txn.rollback"

(* Explicit transaction bracket for multi-monitor coordinators (the
   sharded front end's two-phase commit): [txn_begin] opens the captree
   journal and the backend's undo log, [txn_commit]/[txn_rollback] close
   them. While a bracket is open, [with_txn] detects the outer journal
   ([Captree.in_txn]) and runs its body bare — no nested begin, no
   commit, and crucially no [log_op]: the coordinator owns both the
   atomicity decision and the redo record. *)
let txn_begin t =
  Cap.Captree.txn_begin t.tree;
  t.backend.Backend_intf.txn_begin ()

let txn_commit t =
  t.backend.Backend_intf.txn_commit ();
  Cap.Captree.txn_commit t.tree;
  Obs.Metrics.incr txn_commit_c

let txn_rollback t =
  t.backend.Backend_intf.txn_rollback ();
  Cap.Captree.txn_rollback t.tree;
  Obs.Metrics.incr txn_rollback_c;
  Obs.instant "txn.rollback"

let with_txn ?op t f =
  if Cap.Captree.in_txn t.tree then
    (* Enlisted in an outer bracket: the coordinator's journal already
       covers this mutation, and it decides commit/rollback/logging. *)
    f ()
  else begin
    txn_begin t;
    match f () with
    | Ok _ as ok ->
      txn_commit t;
      (match op with Some op -> log_op t op | None -> ());
      ok
    | Error _ as err ->
      txn_rollback t;
      err
    | exception e ->
      txn_rollback t;
      raise e
  end

(* The monitor shell: signer, TPM binding, empty tables. Shared by
   [boot] (which then endows domain 0) and [recover] (which instead
   restores domains and the tree from a snapshot). *)
let make_monitor ~signer_height ?keypool machine ~backend ~tpm ~rng =
  let signer = Crypto.Signature.create ~height:signer_height ?pool:keypool rng in
  (* Bind the monitor's attestation key into the TPM so the tier-one
     quote certifies the tier-two signer (two-tier protocol, §3.4). *)
  Rot.Tpm.extend tpm ~pcr:key_binding_pcr (Crypto.Signature.public_root signer);
  { machine;
    tree = Cap.Captree.create ();
    backend;
    tpm;
    signer;
    domains = Hashtbl.create 16;
    next_domain = Domain.initial + 1;
    current = Array.make (Array.length machine.Hw.Machine.cores) Domain.initial;
    stacks = Array.make (Array.length machine.Hw.Machine.cores) [];
    reg_contexts = Hashtbl.create 16;
    transitions = 0;
    attest_cache = Hashtbl.create 16;
    keypool;
    attests = 0;
    body_hits = 0;
    body_misses = 0;
    persist = None }

(* Endow domain 0 with the whole machine minus the monitor's memory and
   launch it everywhere — the boot-time baseline state. *)
let endow_initial t ~monitor_range =
  let machine = t.machine in
  let backend = t.backend in
  let os = Domain.make ~id:Domain.initial ~name:"os" ~kind:Domain.Os ~created_by:None in
  Hashtbl.replace t.domains Domain.initial os;
  backend.Backend_intf.domain_created os;
  (* Endow domain 0 with the whole machine minus the monitor's memory. *)
  let free_memory =
    Hw.Addr.Range.subtract (Hw.Physmem.full_range machine.Hw.Machine.mem) monitor_range
  in
  let add_root resource =
    (* Boot-time only: there is no caller to hand an error to, so a
       failure here (impossible outside a misconfigured harness) is
       still fatal. No transaction is open — no journaling overhead. *)
    match Cap.Captree.root t.tree ~owner:Domain.initial resource Cap.Rights.full with
    | Ok (_, effects) -> (
      match apply_effects t effects with
      | Ok () -> ()
      | Error e -> invalid_arg ("Monitor.boot: " ^ error_to_string e))
    | Error e -> invalid_arg ("Monitor.boot: " ^ Cap.Captree.error_to_string e)
  in
  List.iter (fun r -> add_root (Cap.Resource.Memory r)) free_memory;
  Array.iteri (fun i _ -> add_root (Cap.Resource.Cpu_core i)) machine.Hw.Machine.cores;
  List.iter
    (fun d -> add_root (Cap.Resource.Device (Hw.Device.bdf d)))
    machine.Hw.Machine.devices;
  Array.iter (fun core -> backend.Backend_intf.launch ~core os) machine.Hw.Machine.cores;
  Log.info (fun m -> m "monitor booted: %d memory roots, %d cores, %d devices"
    (List.length free_memory)
    (Array.length machine.Hw.Machine.cores)
    (List.length machine.Hw.Machine.devices))

let boot ?(signer_height = 6) ?keypool machine ~backend ~tpm ~rng ~monitor_range =
  let t = make_monitor ~signer_height ?keypool machine ~backend ~tpm ~rng in
  (* Span latencies measure simulated cycles: point the observability
     clock at this machine's counter (last boot wins — stamps are
     per-process, and tests never compare them across worlds). *)
  Obs.set_clock (fun () -> Hw.Machine.cycles machine);
  endow_initial t ~monitor_range;
  t

(* Domain lifecycle *)

let create_domain t ~caller ~name ~kind =
  let* _ = get_domain t caller in
  let id = t.next_domain in
  t.next_domain <- id + 1;
  let d = Domain.make ~id ~name ~kind ~created_by:(Some caller) in
  Hashtbl.replace t.domains id d;
  t.backend.Backend_intf.domain_created d;
  Log.debug (fun m -> m "created %a by domain#%d" Domain.pp d caller);
  log_op t (Persist.Op.Create_domain { caller; name; kind = kind_to_int kind });
  Ok id

let creator_or_self ~caller ~domain d =
  if caller = domain || Domain.created_by d = Some caller then Ok ()
  else Error (Denied "only the domain or its creator may configure it")

(* Configuration additionally stops while the domain is mid-migration:
   the source monitor froze it so the streamed image cannot drift from
   the live state between the final copy round and the commit. *)
let configurable ~caller ~domain d =
  let* () = creator_or_self ~caller ~domain d in
  if Domain.is_migrating d then
    Error (Denied "domain is mid-migration: configuration is frozen")
  else Ok ()

let set_entry_point t ~caller ~domain addr =
  let* d = get_domain t domain in
  let* () = configurable ~caller ~domain d in
  match Domain.set_entry_point d addr with
  | Ok () ->
    log_op t (Persist.Op.Set_entry_point { caller; domain; entry = addr });
    Ok ()
  | Error e -> Error (Domain_config e)

let set_flush_policy t ~caller ~domain flush =
  let* d = get_domain t domain in
  let* () = configurable ~caller ~domain d in
  if Domain.is_sealed d then Error (Domain_config "domain is sealed")
  else begin
    Domain.set_flush_on_transition d flush;
    log_op t (Persist.Op.Set_flush_policy { caller; domain; flush });
    Ok ()
  end

let domain_holds_range t ~domain range =
  List.exists
    (fun cap ->
      match Cap.Captree.resource t.tree cap with
      | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.includes ~outer:r ~inner:range
      | _ -> false)
    (Cap.Captree.caps_of_domain t.tree domain)

let mark_measured t ~caller ~domain range =
  let* d = get_domain t domain in
  let* () = configurable ~caller ~domain d in
  if not (domain_holds_range t ~domain range) then
    Error (Denied "measured range not held by the domain")
  else
    match Domain.add_measured_range d range with
    | Ok () ->
      log_op t
        (Persist.Op.Mark_measured
           { caller; domain;
             base = Hw.Addr.Range.base range;
             len = Hw.Addr.Range.len range });
      Ok ()
    | Error e -> Error (Domain_config e)

(* The sealed-unextended promise (enforced here, audited by fsck):
   once a domain seals, a measured region it holds *exclusively* may
   only become reachable by others through the domain's own
   delegations. Exclusivity is a lineage property: if any of the
   domain's overlapping capabilities descends through an [Orig_shared]
   link under a foreign owner, the sharer kept concurrent access, the
   region was never exclusively the domain's, and no promise attaches.
   Exclusive (root/grant/split) lineage admits no such concurrent
   holder, and because only active capabilities can be shared or
   granted, new access can then enter solely through the sealed
   domain's subtree — so refusing to seal over pre-existing exposure
   keeps the invariant inductively. *)
let rec chain_owned_by tree who c =
  (match Cap.Captree.owner tree c with Some o -> o = who | None -> false)
  ||
  match Cap.Captree.parent tree c with
  | Some p -> chain_owned_by tree who p
  | None -> false

let caps_overlapping tree domain res =
  List.filter
    (fun cap ->
      match Cap.Captree.resource tree cap with
      | Some r -> Cap.Resource.overlaps r res
      | None -> false)
    (Cap.Captree.caps_of_domain tree domain)

let rec foreign_share_lineage tree ~domain c =
  (match Cap.Captree.origin tree c, Cap.Captree.parent tree c with
  | Some Cap.Captree.Orig_shared, Some p -> (
    match Cap.Captree.owner tree p with Some o -> o <> domain | None -> false)
  | _ -> false)
  ||
  match Cap.Captree.parent tree c with
  | Some p -> foreign_share_lineage tree ~domain p
  | None -> false

let measured_exposures t ~domain ranges =
  List.concat_map
    (fun range ->
      let res = Cap.Resource.Memory range in
      let holders = Cap.Captree.holders t.tree res in
      (* Revoked from the domain: no longer in use, promise lapses. *)
      if not (List.mem domain holders) then []
      else if
        List.exists
          (foreign_share_lineage t.tree ~domain)
          (caps_overlapping t.tree domain res)
      then []
      else
        List.filter_map
          (fun h ->
            if
              h = domain
              || List.exists
                   (fun cap ->
                     match Cap.Captree.parent t.tree cap with
                     | Some p -> chain_owned_by t.tree domain p
                     | None -> false)
                   (caps_overlapping t.tree h res)
            then None
            else Some (range, h))
          holders)
    ranges

let seal t ~caller ~domain =
  let* d = get_domain t domain in
  let* () = configurable ~caller ~domain d in
  match Domain.entry_point d with
  | None -> Error (Domain_config "cannot seal a domain without an entry point")
  | Some _ when measured_exposures t ~domain (Domain.measured_ranges d) <> [] ->
    Error (Denied "a measured region is already reachable by a foreign domain")
  | Some entry ->
    let ranges =
      List.map
        (fun r ->
          let pages = (Hw.Addr.Range.len r + Hw.Addr.page_size - 1) / Hw.Addr.page_size in
          Hw.Cycles.charge t.machine.Hw.Machine.counter
            (pages * Hw.Cycles.Cost.measurement_per_page);
          (r, Hw.Physmem.measure t.machine.Hw.Machine.mem r))
        (Domain.measured_ranges d)
    in
    let digest =
      Measure.domain_digest ~kind:(Domain.kind d) ~entry_point:entry
        ~flush_on_transition:(Domain.flush_on_transition d) ~ranges
    in
    (match Domain.seal d ~measurement:digest with
    | Ok () ->
      (* The digest hashes memory contents, which are not durable: the
         record carries the result so replay can install it verbatim. *)
      log_op t
        (Persist.Op.Seal { caller; domain; measurement = Crypto.Sha256.to_raw digest });
      Ok ()
    | Error e -> Error (Domain_config e))

let running_on_some_core t domain =
  Array.exists (fun d -> d = domain) t.current
  || Array.exists (List.mem domain) t.stacks

(* Destruction is factored into three pieces so a multi-shard
   coordinator can run them as phases of a two-phase commit: the guards
   (read-only), the revocation cascade (journaled — must run inside a
   transaction bracket), and the table removals (infallible, NOT
   journaled — they must only run once the commit decision is final). *)
let destroy_guard t ~caller ~domain =
  let* d = get_domain t domain in
  if domain = Domain.initial then Error (Denied "domain 0 cannot be destroyed")
  else if Domain.created_by d <> Some caller then
    Error (Denied "only the creator may destroy a domain")
  else if running_on_some_core t domain then
    Error (Denied "domain is running or on a return stack")
  else if Domain.is_migrating d then
    Error (Denied "domain is mid-migration: only the migration may retire it")
  else Ok d

let revoke_all_of t ~domain =
  let rec revoke_all () =
    (* Inactive capabilities too: delegations the domain made from
       granted-away pieces must cascade with it. *)
    match Cap.Captree.all_caps_of_domain t.tree domain with
    | [] -> Ok ()
    | cap :: _ ->
      let* () =
        cap_result t (Result.map (fun e -> ((), e)) (Cap.Captree.revoke t.tree cap))
      in
      revoke_all ()
  in
  revoke_all ()

let forget_domain t d =
  t.backend.Backend_intf.domain_destroyed d;
  Hashtbl.remove t.domains (Domain.id d);
  Hashtbl.remove t.attest_cache (Domain.id d)

let destroy_domain t ~caller ~domain =
  let* d = destroy_guard t ~caller ~domain in
  (* One transaction for the whole teardown: a fault in the middle of
     the revocation cascade must leave every capability (and the
     hardware) exactly as before the call. The table removals are
     infallible and run last, so they need no undo. *)
  with_txn ~op:(Persist.Op.Destroy_domain { caller; domain }) t (fun () ->
      let* () = revoke_all_of t ~domain in
      forget_domain t d;
      Ok ())

(* Live-migration freeze: the source (and, pre-commit, the target)
   monitor latches the domain and freezes every capability it holds, so
   nothing can run it, reconfigure it, attach to it, or mutate/revoke
   its holdings while the image is in flight. The latch is volatile by
   design — a crash clears it and the migration journal re-freezes on
   resume — so [freeze_domain] must be idempotent. *)

let freeze_domain t ~domain =
  let* d = get_domain t domain in
  if domain = Domain.initial then Error (Denied "domain 0 cannot migrate")
  else if running_on_some_core t domain then
    Error (Denied "domain is running or on a return stack")
  else begin
    Domain.set_migrating d true;
    List.iter
      (fun cap -> match Cap.Captree.freeze t.tree cap with Ok () | Error _ -> ())
      (Cap.Captree.all_caps_of_domain t.tree domain);
    Ok ()
  end

let thaw_domain t ~domain =
  let* d = get_domain t domain in
  Domain.set_migrating d false;
  List.iter
    (fun cap -> Cap.Captree.thaw t.tree cap)
    (Cap.Captree.all_caps_of_domain t.tree domain);
  Ok ()

let domain_frozen t ~domain =
  match get_domain t domain with Ok d -> Domain.is_migrating d | Error _ -> false

(* Capability operations *)

let caps_of t domain = Cap.Captree.caps_of_domain t.tree domain

let owned_by t ~caller cap =
  match Cap.Captree.owner t.tree cap with
  | Some o when o = caller -> Ok ()
  | Some _ -> Error (Denied "caller does not own this capability")
  | None -> Error (Cap_error (Cap.Captree.No_such_capability cap))

let attach_target t ~caller ~to_ ~resource =
  let* target = get_domain t to_ in
  (* Sealing freezes the domain's *memory* footprint (its identity and
     confidentiality surface). Cores and devices stay dynamically
     delegable — scheduling and hot-plug are runtime decisions — and
     remain fully visible in attestation refcounts. *)
  if Domain.is_migrating target then
    Error (Denied "target domain is mid-migration: nothing can attach to it")
  else if Domain.is_sealed target && to_ <> caller && Cap.Resource.is_memory resource then
    Error (Denied "target domain is sealed: its memory cannot be extended")
  else Ok target

let validate_attach t target resource =
  Result.map_error
    (fun msg -> Backend_refused msg)
    (t.backend.Backend_intf.validate_attach target resource)

let share t ~caller ~cap ~to_ ~rights ~cleanup ?subrange () =
  let* () = owned_by t ~caller cap in
  let* resource =
    match Cap.Captree.resource t.tree cap, subrange with
    | Some (Cap.Resource.Memory _), Some sub -> Ok (Cap.Resource.Memory sub)
    | Some r, None -> Ok r
    | Some _, Some _ -> Error (Cap_error Cap.Captree.Bad_subrange)
    | None, _ -> Error (Cap_error (Cap.Captree.No_such_capability cap))
  in
  let* target = attach_target t ~caller ~to_ ~resource in
  let* () = validate_attach t target resource in
  with_txn t (fun () ->
      cap_result t (Cap.Captree.share t.tree cap ~to_ ~rights ~cleanup ?subrange ()))
    ~op:
      (Persist.Op.Share
         { caller; cap; to_;
           rights = rights_to_wire rights;
           cleanup = cleanup_to_int cleanup;
           sub = Option.map range_pair subrange })

let grant t ~caller ~cap ~to_ ~rights ~cleanup =
  let* () = owned_by t ~caller cap in
  let* resource =
    match Cap.Captree.resource t.tree cap with
    | Some r -> Ok r
    | None -> Error (Cap_error (Cap.Captree.No_such_capability cap))
  in
  let* target = attach_target t ~caller ~to_ ~resource in
  let* () = validate_attach t target resource in
  with_txn t (fun () -> cap_result t (Cap.Captree.grant t.tree cap ~to_ ~rights ~cleanup))
    ~op:
      (Persist.Op.Grant
         { caller; cap; to_;
           rights = rights_to_wire rights;
           cleanup = cleanup_to_int cleanup })

let split t ~caller ~cap ~at =
  let* () = owned_by t ~caller cap in
  with_txn ~op:(Persist.Op.Split { caller; cap; at }) t (fun () ->
      match Cap.Captree.split t.tree cap ~at with
      | Ok (l, r, effects) ->
        let* () = apply_effects t effects in
        Ok (l, r)
      | Error e -> Error (Cap_error e))

let carve t ~caller ~cap ~subrange =
  let* () = owned_by t ~caller cap in
  with_txn t (fun () -> cap_result t (Cap.Captree.carve t.tree cap ~subrange))
    ~op:
      (Persist.Op.Carve
         { caller; cap;
           base = Hw.Addr.Range.base subrange;
           len = Hw.Addr.Range.len subrange })

let may_revoke t ~caller cap =
  let rec walk id =
    match Cap.Captree.owner t.tree id with
    | Some o when o = caller -> true
    | _ -> (
      match Cap.Captree.parent t.tree id with Some p -> walk p | None -> false)
  in
  if walk cap then Ok ()
  else Error (Denied "caller owns neither the capability nor an ancestor")

(* Cascade accounting for the revocation histograms: how deep and how
   wide the lineage subtree about to be revoked is. Read-only, and only
   when tracing is on — the disabled cost is one branch. *)
let cascade_shape t cap =
  let rec walk id depth (n, deepest) =
    let acc = (n + 1, max depth deepest) in
    List.fold_left
      (fun acc child -> walk child (depth + 1) acc)
      acc (Cap.Captree.children t.tree id)
  in
  walk cap 1 (0, 0)

let cascade_depth_h = Obs.Metrics.histogram "revoke.cascade_depth"
let cascade_size_h = Obs.Metrics.histogram "revoke.cascade_size"
let cascade_cycles_h = Obs.Metrics.histogram "revoke.cascade_cycles"
let cascade_cycles_per_victim_h = Obs.Metrics.histogram "revoke.cascade_cycles_per_victim"

let revoke t ~caller ~cap =
  let* () = may_revoke t ~caller cap in
  (* Only actual cascades (derived children exist) are worth the cycle
     reads and histogram observes; a leaf revoke under tracing must stay
     as cheap as it was before the cascade breakdown existed. *)
  let obs = ref false in
  let size = ref 0 in
  if Obs.enabled () then begin
    let s, depth = cascade_shape t cap in
    if s > 1 then begin
      obs := true;
      size := s;
      Obs.Metrics.observe cascade_depth_h depth;
      Obs.Metrics.observe cascade_size_h s
    end
  end;
  let obs = !obs in
  (* Simulated hardware cost of the cascade: the detach/reattach effects
     charge calibrated cycles, so the delta isolates how the per-victim
     cost scales with fanout — deterministic, unlike wall time. *)
  let c0 = if obs then Hw.Machine.cycles t.machine else 0 in
  let r =
    with_txn ~op:(Persist.Op.Revoke { caller; cap }) t (fun () ->
        cap_result t (Result.map (fun e -> ((), e)) (Cap.Captree.revoke t.tree cap)))
  in
  if obs && Result.is_ok r then begin
    let dc = Hw.Machine.cycles t.machine - c0 in
    Obs.Metrics.observe cascade_cycles_h dc;
    if !size > 0 then Obs.Metrics.observe cascade_cycles_per_victim_h (dc / !size)
  end;
  r

(* Transitions *)

let check_core t core =
  if core < 0 || core >= Array.length t.current then
    Error (Bad_transition (Printf.sprintf "no such core: %d" core))
  else Ok ()

let current_domain t ~core = t.current.(core)

let call_depth t ~core = List.length t.stacks.(core)

let holds_core t domain core =
  List.mem domain (Cap.Captree.holders t.tree (Cap.Resource.Cpu_core core))

let do_transition t ~core ~from_ ~to_ =
  let flush = Domain.flush_on_transition from_ || Domain.flush_on_transition to_ in
  let cpu = Hw.Machine.core t.machine core in
  (* Hardware first: if the backend cannot switch the translation
     context (PMP budget, an injected fault), the core must keep
     running [from_] with its registers untouched. Only after the
     hardware committed is the register file context-switched — the
     outgoing domain's registers saved (its VMCS/trap frame), the
     incoming domain's restored, or a zeroed file on first entry so no
     register content ever leaks across a domain boundary. *)
  match t.backend.Backend_intf.transition ~core:cpu ~from_ ~to_ ~flush_microarch:flush with
  | Error msg -> Error (Backend_failure msg)
  | Ok path ->
    Hashtbl.replace t.reg_contexts (Domain.id from_, core) (Hw.Cpu.save_regs cpu);
    (match Hashtbl.find_opt t.reg_contexts (Domain.id to_, core) with
    | Some saved -> Hw.Cpu.load_regs cpu saved
    | None -> Hw.Cpu.clear_regs cpu);
    t.transitions <- t.transitions + 1;
    Ok path

let call t ~core ~target =
  let* () = check_core t core in
  let from_id = t.current.(core) in
  let* from_ = get_domain t from_id in
  let* to_ = get_domain t target in
  if target = from_id then Error (Bad_transition "domain is already running here")
  else if Domain.is_migrating to_ then
    Error (Bad_transition "target domain is mid-migration")
  else if not (Domain.is_sealed to_) && target <> Domain.initial then
    Error (Bad_transition "target domain is not sealed")
  else if Domain.entry_point to_ = None && target <> Domain.initial then
    Error (Bad_transition "target domain has no entry point")
  else if not (holds_core t target core) then
    Error (Bad_transition "target domain holds no capability for this core")
  else
    with_txn ~op:(Persist.Op.Call { core; target }) t (fun () ->
        let* path = do_transition t ~core ~from_ ~to_ in
        t.stacks.(core) <- from_id :: t.stacks.(core);
        t.current.(core) <- target;
        Ok path)

let ret t ~core =
  let* () = check_core t core in
  (* A stack entry whose core capability was revoked while it was
     suspended must not be resumed: skip it (the scheduling-guarantee
     rule applies to returns, not just fresh calls). *)
  let rec pop = function
    | [] -> Error (Bad_transition "no return target holds this core")
    | prev :: rest when not (holds_core t prev core) -> pop rest
    | prev :: rest -> Ok (prev, rest)
  in
  let* prev, rest = pop t.stacks.(core) in
  let* from_ = get_domain t t.current.(core) in
  let* to_ = get_domain t prev in
  with_txn ~op:(Persist.Op.Ret { core }) t (fun () ->
      let* path = do_transition t ~core ~from_ ~to_ in
      t.stacks.(core) <- rest;
      t.current.(core) <- prev;
      Ok path)

let timer_tick t ~core =
  let* () = check_core t core in
  let running = t.current.(core) in
  if holds_core t running core then Ok running
  else begin
    (* The squatter lost its core capability: evict. Prefer the unique
       exclusive holder; fall back to domain 0 when it holds the core. *)
    let holders = Cap.Captree.holders t.tree (Cap.Resource.Cpu_core core) in
    let* heir =
      match holders with
      | [ d ] -> Ok d
      | ds when List.mem Domain.initial ds -> Ok Domain.initial
      | [] -> Error (Bad_transition "no domain holds this core")
      | d :: _ -> Ok d
    in
    let* from_ = get_domain t running in
    let* to_ = get_domain t heir in
    (* Only the eviction branch mutates state, so only it is logged;
       the no-op fast path above leaves the log untouched. *)
    with_txn ~op:(Persist.Op.Timer_tick { core }) t (fun () ->
        let* _path = do_transition t ~core ~from_ ~to_ in
        t.stacks.(core) <- [];
        t.current.(core) <- heir;
        Log.info (fun m ->
            m "timer evicted domain#%d from core %d for domain#%d" running core heir);
        Ok heir)
  end

let route_interrupt t ~caller ~device ~vector ~core =
  let* () = check_core t core in
  let holds resource =
    List.mem caller (Cap.Captree.holders t.tree resource)
  in
  if not (holds (Cap.Resource.Device device)) then
    Error (Denied "caller holds no capability for the device")
  else if not (holds (Cap.Resource.Cpu_core core)) then
    Error (Denied "caller holds no capability for the target core")
  else begin
    let ic = t.machine.Hw.Machine.interrupts in
    Hw.Interrupt.permit ic ~device ~vector;
    Hw.Interrupt.route ic ~vector ~core;
    Ok ()
  end

(* Register access for the domain currently on a core. *)

let get_reg t ~core i =
  let* () = check_core t core in
  match Hw.Cpu.get_reg (Hw.Machine.core t.machine core) i with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Denied msg)

let set_reg t ~core i v =
  let* () = check_core t core in
  match Hw.Cpu.set_reg (Hw.Machine.core t.machine core) i v with
  | () -> Ok ()
  | exception Invalid_argument msg -> Error (Denied msg)

(* Domain-context memory access *)

let guarded_access t ~core f =
  let* () = check_core t core in
  let cpu = Hw.Machine.core t.machine core in
  match f cpu with
  | v -> Ok v
  | exception Hw.Ept.Violation { gpa; _ } ->
    Error (Denied (Printf.sprintf "EPT violation at 0x%x" gpa))
  | exception Hw.Pmp.Fault { addr; _ } ->
    Error (Denied (Printf.sprintf "PMP fault at 0x%x" addr))
  | exception Hw.Page_table.Fault { vaddr; _ } ->
    Error (Denied (Printf.sprintf "page fault at 0x%x" vaddr))
  | exception Hw.Physmem.Bus_error addr ->
    Error (Denied (Printf.sprintf "bus error at 0x%x" addr))

let load t ~core addr =
  guarded_access t ~core (fun cpu ->
      Hw.Cpu.load cpu t.machine.Hw.Machine.mem ~tlb:t.machine.Hw.Machine.tlb
        ~cache:t.machine.Hw.Machine.cache addr)

let store t ~core addr v =
  guarded_access t ~core (fun cpu ->
      Hw.Cpu.store cpu t.machine.Hw.Machine.mem ~tlb:t.machine.Hw.Machine.tlb
        ~cache:t.machine.Hw.Machine.cache addr v)

let load_string t ~core range =
  guarded_access t ~core (fun cpu ->
      String.init (Hw.Addr.Range.len range) (fun i ->
          Char.chr
            (Hw.Cpu.load cpu t.machine.Hw.Machine.mem ~tlb:t.machine.Hw.Machine.tlb
               ~cache:t.machine.Hw.Machine.cache
               (Hw.Addr.Range.base range + i))))

let store_string t ~core addr s =
  guarded_access t ~core (fun cpu ->
      String.iteri
        (fun i c ->
          Hw.Cpu.store cpu t.machine.Hw.Machine.mem ~tlb:t.machine.Hw.Machine.tlb
            ~cache:t.machine.Hw.Machine.cache (addr + i) (Char.code c))
        s)

(* Attestation *)

(* Enumerate a domain's Fig. 4 attestation body. Parameterized over the
   query functions so the memoized fast path and [attest_reference]
   (full-scan baseline) share one enumeration. *)
let attest_body t ~caps_of ~refcount ~holders ~measured_ranges domain =
  List.fold_left
    (fun (regions, cores, devices) cap ->
      match Cap.Captree.resource t.tree cap, Cap.Captree.rights t.tree cap with
      | Some (Cap.Resource.Memory r as res), Some rights ->
        let report =
          { Attestation.range = r;
            perm = rights.Cap.Rights.perm;
            refcount = refcount t.tree res;
            holders = holders t.tree res;
            measured =
              List.exists
                (fun m -> Hw.Addr.Range.includes ~outer:m ~inner:r
                          || Hw.Addr.Range.includes ~outer:r ~inner:m)
                measured_ranges }
        in
        (report :: regions, cores, devices)
      | Some (Cap.Resource.Cpu_core c as res), Some _ ->
        (regions, (c, refcount t.tree res) :: cores, devices)
      | Some (Cap.Resource.Device dev as res), Some _ ->
        (regions, cores, (dev, refcount t.tree res) :: devices)
      | _ -> (regions, cores, devices))
    ([], [], [])
    (caps_of t.tree domain)

(* Memoized body lookup shared by the single and batched paths. *)
let memoized_body t d domain =
  let measured_ranges = Domain.measured_ranges d in
  let generation = Cap.Captree.generation t.tree in
  match Hashtbl.find_opt t.attest_cache domain with
  | Some e when e.at_generation = generation && e.at_measured = measured_ranges ->
    t.body_hits <- t.body_hits + 1;
    (e.at_regions, e.at_cores, e.at_devices)
  | _ ->
    t.body_misses <- t.body_misses + 1;
    let ((regions, cores, devices) as body) =
      attest_body t ~caps_of:Cap.Captree.caps_of_domain ~refcount:Cap.Captree.refcount
        ~holders:Cap.Captree.holders ~measured_ranges domain
    in
    Hashtbl.replace t.attest_cache domain
      { at_generation = generation; at_measured = measured_ranges;
        at_regions = regions; at_cores = cores; at_devices = devices };
    body

(* The memoized body alone, without signing: the sharded front end
   collects one body per shard, translates them into the global
   namespace and signs the concatenation once. *)
let attest_body_of t ~domain =
  let* d = get_domain t domain in
  Ok (memoized_body t d domain)

let attest t ~caller ~domain ~nonce =
  let* _ = get_domain t caller in
  let* d = get_domain t domain in
  let regions, cores, devices = memoized_body t d domain in
  t.attests <- t.attests + 1;
  Ok
    (Attestation.sign ~signer:t.signer ~domain:d ~regions ~cores ~devices
       ~memory_encrypted:(t.backend.Backend_intf.domain_encrypted d) ~nonce)

let attest_spec t ~caller ~domain ~nonce =
  let* _ = get_domain t caller in
  let* d = get_domain t domain in
  let regions, cores, devices = memoized_body t d domain in
  t.attests <- t.attests + 1;
  Ok
    (Attestation.sign_spec ~signer:t.signer ~domain:d ~regions ~cores ~devices
       ~memory_encrypted:(t.backend.Backend_intf.domain_encrypted d) ~nonce)

let attest_batch t ~caller ~domains ~nonce =
  let* _ = get_domain t caller in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | id :: rest ->
      let* d = get_domain t id in
      let regions, cores, devices = memoized_body t d id in
      collect
        ((d, regions, cores, devices, t.backend.Backend_intf.domain_encrypted d) :: acc)
        rest
  in
  let* entries = collect [] domains in
  t.attests <- t.attests + 1;
  Ok (Attestation.sign_batch ~signer:t.signer ~nonce entries)

let attest_reference t ~caller ~domain ~nonce =
  let* _ = get_domain t caller in
  let* d = get_domain t domain in
  let regions, cores, devices =
    attest_body t ~caps_of:Cap.Captree.caps_of_domain_reference
      ~refcount:Cap.Captree.refcount_reference ~holders:Cap.Captree.holders_reference
      ~measured_ranges:(Domain.measured_ranges d) domain
  in
  Ok
    (Attestation.sign ~signer:t.signer ~domain:d ~regions ~cores ~devices
       ~memory_encrypted:(t.backend.Backend_intf.domain_encrypted d) ~nonce)

let boot_quote t ~nonce =
  Rot.Tpm.Quote.generate t.tpm ~pcrs:[ 0; 4; Rot.Tpm.drtm_pcr; key_binding_pcr ] ~nonce

(* Telemetry *)

type attest_telemetry = {
  attests : int;
  body_cache_hits : int;
  body_cache_misses : int;
  keypool_hits : int;
  keypool_misses : int;
  keypool_miss_rate : float;
  keypool_stock : int;
}

let attest_telemetry t =
  let keypool_hits, keypool_misses, keypool_miss_rate, keypool_stock =
    match t.keypool with
    | Some pool ->
      let hits, misses = Crypto.Keypool.stats pool in
      (hits, misses, Crypto.Keypool.miss_rate pool, Crypto.Keypool.size pool)
    | None -> (0, 0, 0., 0)
  in
  { attests = t.attests;
    body_cache_hits = t.body_hits;
    body_cache_misses = t.body_misses;
    keypool_hits;
    keypool_misses;
    keypool_miss_rate;
    keypool_stock }

(* The full observability report (per-domain op counts, latency
   percentiles, cascade depths, rollback counters). The data is
   process-global — the monitor's own ops dominate it, but faults,
   keypool and store activity triggered outside an API call appear
   too, which is the point of attestation-adjacent accounting. *)
(* The taint oracle lives below the Obs dependency line (hw cannot see
   obs), so its tallies are mirrored into gauges here, at report time —
   [session.stale], [byz.*] and friends land in the same report via
   the ordinary counter registry. *)
let g_taint_pages = Obs.Metrics.gauge "taint.pages"
let g_taint_lines = Obs.Metrics.gauge "taint.lines"
let g_taint_tlb = Obs.Metrics.gauge "taint.tlb"
let g_taint_leaks = Obs.Metrics.gauge "taint.leaks"
let g_taint_sanctioned = Obs.Metrics.gauge "taint.sanctioned"

let observe t =
  let st = Hw.Taint.stats t.machine.Hw.Machine.taint in
  Obs.Metrics.set_gauge g_taint_pages st.Hw.Taint.tainted_pages;
  Obs.Metrics.set_gauge g_taint_lines st.Hw.Taint.tainted_lines;
  Obs.Metrics.set_gauge g_taint_tlb st.Hw.Taint.tainted_tlb;
  Obs.Metrics.set_gauge g_taint_leaks st.Hw.Taint.leaks;
  Obs.Metrics.set_gauge g_taint_sanctioned st.Hw.Taint.sanctioned;
  Obs.report ()

(* Durability: enable, checkpoint, recover (crash-restart). *)

let make_persist_cfg t ~store ~snapshot_every ~fsync_every ~latency_bound =
  if snapshot_every <= 0 then invalid_arg "Monitor.enable_persistence: snapshot_every";
  if fsync_every <= 0 then invalid_arg "Monitor.enable_persistence: fsync_every";
  if latency_bound <= 0 then invalid_arg "Monitor.enable_persistence: latency_bound";
  let group =
    Persist.Group.create ~max_batch:fsync_every ~latency_bound
      ~now:(fun () -> Hw.Machine.cycles t.machine)
      store ~blob:Persist.Store.wal_blob ~durable_seq:0
  in
  { p_store = store;
    p_snapshot_every = snapshot_every;
    p_group = group;
    p_seq = 0;
    p_since_snapshot = 0;
    p_replaying = false;
    p_ckpt_gen = 0;
    p_seg_cache = Hashtbl.create 32;
    p_seg_durable = Hashtbl.create 32;
    p_tails_ok = false }

let enable_persistence t ~store ?(snapshot_every = 1000) ?(fsync_every = 1)
    ?(latency_bound = max_int) () =
  let cfg = make_persist_cfg t ~store ~snapshot_every ~fsync_every ~latency_bound in
  t.persist <- Some cfg;
  (* Baseline checkpoint at seq 0: from here on the store can always
     answer "newest snapshot + WAL suffix", even before the first
     cadence-driven checkpoint. Incremental, so it also seeds the
     segment cache. *)
  write_checkpoint t cfg

let persist_seq t = match t.persist with Some cfg -> Some cfg.p_seq | None -> None

let persist_snapshot t =
  match t.persist with
  | None -> invalid_arg "Monitor.persist_snapshot: persistence is not enabled"
  | Some cfg -> write_snapshot t cfg

let checkpoint t =
  match t.persist with
  | None -> invalid_arg "Monitor.checkpoint: persistence is not enabled"
  | Some cfg -> write_checkpoint t cfg

let flush t =
  match t.persist with
  | None -> ()
  | Some cfg -> Persist.Group.flush cfg.p_group

let durable_seq t =
  match t.persist with
  | Some cfg -> Some (Persist.Group.durable_seq cfg.p_group)
  | None -> None

type recovery_report = {
  rr_snapshot_seq : int;
  rr_snapshots_scanned : int;
  rr_snapshot_torn : bool;
  rr_wal_records : int;
  rr_replayed : int;
  rr_wal_truncated : bool;
  rr_stopped_early : string option;
  rr_seq : int;
}

let pp_recovery_report fmt r =
  Format.fprintf fmt
    "@[<v>snapshot: seq %d (%d scanned%s)@,\
     wal: %d records, %d replayed%s%s@,\
     recovered through seq %d@]"
    r.rr_snapshot_seq r.rr_snapshots_scanned
    (if r.rr_snapshot_torn then ", torn tail" else "")
    r.rr_wal_records r.rr_replayed
    (if r.rr_wal_truncated then ", torn tail discarded" else "")
    (match r.rr_stopped_early with
    | Some why -> Printf.sprintf ", stopped early: %s" why
    | None -> "")
    r.rr_seq

(* Replay a [Seal] record. The normal [seal] path re-measures memory,
   but memory contents are not durable — the record carries the digest
   the original call produced, and replay installs it verbatim. *)
let replay_seal t ~caller ~domain ~measurement =
  let* d = Result.map_error error_to_string (get_domain t domain) in
  let* () = Result.map_error error_to_string (creator_or_self ~caller ~domain d) in
  if String.length measurement <> Crypto.Sha256.digest_size then
    Error "seal record carries a malformed digest"
  else Domain.seal d ~measurement:(Crypto.Sha256.of_raw measurement)

(* Verbatim digest install for coordinators that measured elsewhere:
   the sharded monitor measures each global range on its owning shard,
   folds one digest at the front end and installs it on every shard.
   Validation is identical to replay. *)
let install_seal = replay_seal

(* Seal an adopted (migrated-in) domain under the measurement the source
   machine took: the bytes were copied verbatim, so re-measuring here
   would only re-derive the same digest — but the *identity* must be the
   one the transfer receipt binds. Unlike [install_seal] this is a
   first-class logged operation: the target's own WAL replays it, so a
   crash-restart of the adopting monitor recovers the sealed domain. *)
let adopt_seal t ~caller ~domain ~measurement =
  let raw = Crypto.Sha256.to_raw measurement in
  match replay_seal t ~caller ~domain ~measurement:raw with
  | Ok () ->
    log_op t (Persist.Op.Seal { caller; domain; measurement = raw });
    Ok ()
  | Error e -> Error (Domain_config e)

(* Re-execute one logged operation through the normal API (logging is
   muted by [p_replaying]). Every record was appended only after the
   original call committed, so replay against the same starting state
   must succeed; a failure means the log and snapshot disagree and
   replay stops at the last consistent prefix. *)
let replay_op t (op : Persist.Op.t) =
  let mon r = Result.map_error error_to_string (Result.map ignore r) in
  match op with
  | Persist.Op.Create_domain { caller; name; kind } -> (
    match kind_of_int kind with
    | None -> Error (Printf.sprintf "unknown domain kind %d" kind)
    | Some kind -> mon (create_domain t ~caller ~name ~kind))
  | Persist.Op.Set_entry_point { caller; domain; entry } ->
    mon (set_entry_point t ~caller ~domain entry)
  | Persist.Op.Set_flush_policy { caller; domain; flush } ->
    mon (set_flush_policy t ~caller ~domain flush)
  | Persist.Op.Mark_measured { caller; domain; base; len } ->
    mon (mark_measured t ~caller ~domain (pair_range (base, len)))
  | Persist.Op.Seal { caller; domain; measurement } ->
    replay_seal t ~caller ~domain ~measurement
  | Persist.Op.Destroy_domain { caller; domain } -> mon (destroy_domain t ~caller ~domain)
  | Persist.Op.Share { caller; cap; to_; rights; cleanup; sub } -> (
    match cleanup_of_int cleanup with
    | None -> Error (Printf.sprintf "unknown cleanup policy %d" cleanup)
    | Some cleanup -> (
      let rights = rights_of_wire rights in
      match sub with
      | Some s -> mon (share t ~caller ~cap ~to_ ~rights ~cleanup ~subrange:(pair_range s) ())
      | None -> mon (share t ~caller ~cap ~to_ ~rights ~cleanup ())))
  | Persist.Op.Grant { caller; cap; to_; rights; cleanup } -> (
    match cleanup_of_int cleanup with
    | None -> Error (Printf.sprintf "unknown cleanup policy %d" cleanup)
    | Some cleanup -> mon (grant t ~caller ~cap ~to_ ~rights:(rights_of_wire rights) ~cleanup))
  | Persist.Op.Split { caller; cap; at } -> mon (split t ~caller ~cap ~at)
  | Persist.Op.Carve { caller; cap; base; len } ->
    mon (carve t ~caller ~cap ~subrange:(pair_range (base, len)))
  | Persist.Op.Revoke { caller; cap } -> mon (revoke t ~caller ~cap)
  | Persist.Op.Call { core; target } -> mon (call t ~core ~target)
  | Persist.Op.Ret { core } -> mon (ret t ~core)
  | Persist.Op.Timer_tick { core } -> mon (timer_tick t ~core)

(* Child lists travel implicitly: the wire format carries only parent
   pointers (Snapshot.node_spec.n_children is [] off the wire), because
   ids ascend with creation time and every live list is most-recent
   first — so one ascending scan that prepends each node onto its
   parent rebuilds exactly the order the tree maintained. The chaos
   harness pins this equivalence: recovered dumps must equal the shadow
   model's byte-for-byte, children included. *)
let reconstruct_children nodes =
  let children = Hashtbl.create 256 in
  let sorted =
    List.sort
      (fun (a : Persist.Snapshot.node_spec) (b : Persist.Snapshot.node_spec) ->
        Int.compare a.n_id b.n_id)
      nodes
  in
  List.iter
    (fun (n : Persist.Snapshot.node_spec) ->
      if n.n_parent >= 0 then
        Hashtbl.replace children n.n_parent
          (n.n_id
          :: (match Hashtbl.find_opt children n.n_parent with
             | Some l -> l
             | None -> [])))
    sorted;
  List.map
    (fun (n : Persist.Snapshot.node_spec) ->
      { n with
        n_children =
          (match Hashtbl.find_opt children n.n_id with Some l -> l | None -> []) })
    nodes

(* Install a decoded snapshot into a fresh monitor shell. *)
let restore_state t (s : Persist.Snapshot.t) =
  let rec conv_domains = function
    | [] -> Ok ()
    | (d : Persist.Snapshot.domain_spec) :: rest -> (
      match kind_of_int d.d_kind with
      | None -> Error (Printf.sprintf "snapshot: unknown kind %d for domain %d" d.d_kind d.d_id)
      | Some kind ->
        let* measurement =
          if d.d_measurement = "" then Ok None
          else if String.length d.d_measurement = Crypto.Sha256.digest_size then
            Ok (Some (Crypto.Sha256.of_raw d.d_measurement))
          else Error (Printf.sprintf "snapshot: malformed measurement for domain %d" d.d_id)
        in
        Hashtbl.replace t.domains d.d_id
          (Domain.restore ~id:d.d_id ~name:d.d_name ~kind
             ~created_by:(if d.d_created_by < 0 then None else Some d.d_created_by)
             ~sealed:d.d_sealed
             ~entry_point:(if d.d_entry < 0 then None else Some d.d_entry)
             ~measured:(List.map pair_range d.d_measured)
             ~flush_on_transition:d.d_flush ~measurement);
        conv_domains rest)
  in
  let rec conv_nodes acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match node_of_wire n with
      | Ok ns -> conv_nodes (ns :: acc) rest
      | Error _ as e -> e)
  in
  let ncores = Array.length t.current in
  if List.length s.Persist.Snapshot.current <> ncores
     || List.length s.Persist.Snapshot.stacks <> ncores then
    Error
      (Printf.sprintf "snapshot: recorded %d cores, this machine has %d"
         (List.length s.Persist.Snapshot.current) ncores)
  else begin
    Hashtbl.reset t.domains;
    let* () = conv_domains s.Persist.Snapshot.domains in
    t.next_domain <- s.Persist.Snapshot.next_domain;
    let* specs = conv_nodes [] (reconstruct_children s.Persist.Snapshot.nodes) in
    t.tree <-
      Cap.Captree.restore ~next_id:s.Persist.Snapshot.next_cap
        ~generation:s.Persist.Snapshot.generation specs;
    List.iteri (fun i d -> t.current.(i) <- d) s.Persist.Snapshot.current;
    List.iteri (fun i st -> t.stacks.(i) <- st) s.Persist.Snapshot.stacks;
    Ok specs
  end

(* Hardware is deliberately not serialized: the tree is the source of
   truth, so EPT/PMP/IOMMU/MMIO state is re-derived by registering every
   domain and re-attaching every *active* capability — minus the
   detach/attach churn of the history. Memory holdings are coalesced per
   (owner, permission) before attaching: a long history fragments the
   tree into many small active nodes whose live hardware footprint was
   nevertheless a few merged translation entries, and re-attaching them
   one-by-one can exceed a finite budget (PMP entries) the live layout
   never needed. The coalesced union is the minimal representation of
   exactly the same coverage. [Fsck.check] then cross-checks the result
   against the tree, exactly as the runtime invariant does. *)
let coalesce ranges =
  let sorted =
    List.sort (fun a b -> Int.compare (Hw.Addr.Range.base a) (Hw.Addr.Range.base b)) ranges
  in
  match sorted with
  | [] -> []
  | first :: rest ->
    let merged, last =
      List.fold_left
        (fun (done_, cur) r ->
          if Hw.Addr.Range.base r <= Hw.Addr.Range.limit cur then
            let limit = max (Hw.Addr.Range.limit cur) (Hw.Addr.Range.limit r) in
            ( done_,
              Hw.Addr.Range.make ~base:(Hw.Addr.Range.base cur)
                ~len:(limit - Hw.Addr.Range.base cur) )
          else (cur :: done_, r))
        ([], first) rest
    in
    List.rev (last :: merged)

let rebuild_hardware t specs =
  List.iter (fun d -> t.backend.Backend_intf.domain_created d) (domains t);
  let active = List.filter (fun (ns : Cap.Captree.node_spec) -> ns.ns_state = Cap.Captree.Active) specs in
  (* Memory attaches, grouped by (owner, perm) and coalesced; group
     order follows the first node of each group, keeping the rebuild
     deterministic. *)
  let groups = ref [] in
  List.iter
    (fun (ns : Cap.Captree.node_spec) ->
      match ns.ns_resource with
      | Cap.Resource.Memory r ->
        let key = (ns.ns_owner, ns.ns_rights.Cap.Rights.perm) in
        (match List.assoc_opt key !groups with
        | Some rs -> rs := r :: !rs
        | None -> groups := !groups @ [ (key, ref [ r ]) ])
      | _ -> ())
    active;
  let attach_all effs =
    List.fold_left
      (fun acc (label, eff) ->
        let* () = acc in
        match t.backend.Backend_intf.apply_effect eff with
        | Ok () -> Ok ()
        | Error msg -> Error (Printf.sprintf "recovery: re-attach of %s failed: %s" label msg))
      (Ok ()) effs
  in
  let mem_effects =
    List.concat_map
      (fun ((owner, perm), rs) ->
        List.map
          (fun r ->
            ( Format.asprintf "domain %d memory %a" owner Hw.Addr.Range.pp r,
              Cap.Captree.Attach
                { domain = owner; resource = Cap.Resource.Memory r; perm } ))
          (coalesce !rs))
      !groups
  in
  let other_effects =
    List.filter_map
      (fun (ns : Cap.Captree.node_spec) ->
        match ns.ns_resource with
        | Cap.Resource.Memory _ -> None
        | res ->
          Some
            ( Printf.sprintf "cap %d" ns.ns_id,
              Cap.Captree.Attach
                { domain = ns.ns_owner; resource = res; perm = ns.ns_rights.Cap.Rights.perm }
            ))
      active
  in
  (* Restore the per-core schedule before re-attaching: backends enforce
     per-domain hardware budgets (PMP entries) only for running domains,
     and a fresh backend boots with every core on the OS. Re-attaching
     first would eagerly charge the OS's whole layout against cores the
     recovered schedule gives to other domains — a budget check the live
     run never performed. *)
  let missing = ref None in
  Array.iteri
    (fun i cpu ->
      if !missing = None then
        match find_domain t t.current.(i) with
        | Some d -> t.backend.Backend_intf.launch ~core:cpu d
        | None ->
          missing := Some (Printf.sprintf "recovery: core %d runs unknown domain %d" i t.current.(i)))
    t.machine.Hw.Machine.cores;
  match !missing with
  | Some e -> Error e
  | None -> attach_all (mem_effects @ other_effects)

(* Replay the WAL suffix after [base_seq]. Stops (never fails) at a
   sequence gap, an undecodable record, or a replay mismatch — the
   state is then the longest prefix-consistent history the durable
   bytes support, which is the strongest sound answer. *)
let replay_wal t cfg ~base_seq records =
  cfg.p_replaying <- true;
  Fun.protect
    ~finally:(fun () -> cfg.p_replaying <- false)
    (fun () ->
      let rec go expected applied = function
        | [] -> (applied, None)
        | (seq, _) :: rest when seq <= base_seq -> go expected applied rest
        | (seq, payload) :: rest ->
          if seq <> expected then
            (applied, Some (Printf.sprintf "sequence gap: expected %d, found %d" expected seq))
          else (
            match Persist.Op.decode payload with
            | exception Persist.Wire.Corrupt why ->
              (applied, Some (Printf.sprintf "undecodable record at seq %d: %s" seq why))
            | op -> (
              match replay_op t op with
              | Ok () ->
                cfg.p_seq <- seq;
                go (seq + 1) (applied + 1) rest
              | Error why ->
                (applied,
                 Some
                   (Format.asprintf "replay of %a (seq %d) failed: %s" Persist.Op.pp op seq why))
              | exception e ->
                (applied,
                 Some (Printf.sprintf "replay raised at seq %d: %s" seq (Printexc.to_string e)))))
      in
      go (base_seq + 1) 0 records)

let recover ?(signer_height = 6) ?keypool ?(snapshot_every = 1000) ?(fsync_every = 1)
    ?(latency_bound = max_int) machine ~store ~backend ~tpm ~rng ~monitor_range =
  let loaded = Persist.Snapshot.load_latest_ex store in
  let snap = loaded.Persist.Snapshot.snapshot in
  let scanned = loaded.Persist.Snapshot.scanned in
  let snap_torn = loaded.Persist.Snapshot.torn in
  let wal = Persist.Wal.read store ~blob:Persist.Store.wal_blob in
  let t = make_monitor ~signer_height ?keypool machine ~backend ~tpm ~rng in
  Obs.set_clock (fun () -> Hw.Machine.cycles machine);
  let cfg = make_persist_cfg t ~store ~snapshot_every ~fsync_every ~latency_bound in
  (* Seed the incremental-checkpoint caches from the durable segment
     blob and the winning manifest, so the closing checkpoint below
     re-serializes only what replay dirtied. A restored tree reports
     every bucket clean ([bucket_generation] = 0), which is exactly
     right: the manifest covers it. *)
  Hashtbl.iter
    (fun h _nodes -> Hashtbl.replace cfg.p_seg_durable h ())
    (Persist.Snapshot.segment_index store);
  List.iter
    (fun (b, h) -> Hashtbl.replace cfg.p_seg_cache b h)
    loaded.Persist.Snapshot.manifest_segments;
  (match snap with
  | Some s -> cfg.p_ckpt_gen <- s.Persist.Snapshot.generation
  | None -> ());
  (* Reconstruction re-executes operations that already committed once;
     re-injecting API-level faults would fail them a second time and
     diverge from the durable history, so injection is masked — exactly
     like the backends' rollback paths. The closing checkpoint below
     runs unmasked: it is new durable work and may legitimately crash
     (leaving the old snapshot and un-reset WAL, still recoverable). *)
  let setup =
    Fault.suspend (fun () ->
        let* base_seq =
          match snap with
          | Some s ->
            let* specs = restore_state t s in
            let* () = rebuild_hardware t specs in
            Ok s.Persist.Snapshot.seq
          | None ->
            (* No decodable snapshot: fall back to the boot baseline —
               the state [enable_persistence] captured at seq 0 — and
               replay the whole log. *)
            endow_initial t ~monitor_range;
            Ok 0
        in
        cfg.p_seq <- base_seq;
        t.persist <- Some cfg;
        let applied, stopped = replay_wal t cfg ~base_seq wal.Persist.Wal.records in
        Ok (applied, stopped))
  in
  match setup with
  | Error why -> Error why
  | Ok (applied, stopped) ->
    (match stopped with
    | Some why -> Log.warn (fun m -> m "recovery stopped replay early: %s" why)
    | None -> ());
    if wal.Persist.Wal.truncated then
      Log.warn (fun m ->
          m "recovery discarded a torn WAL tail after %d valid bytes"
            wal.Persist.Wal.valid_bytes);
    (* Checkpoint the recovered state so the store is snapshot-current
       and the (possibly torn) WAL suffix is retired. Incremental: with
       the caches seeded above, only buckets the replay dirtied are
       re-serialized. *)
    write_checkpoint t cfg;
    let report =
      { rr_snapshot_seq = (match snap with Some s -> s.Persist.Snapshot.seq | None -> -1);
        rr_snapshots_scanned = scanned;
        rr_snapshot_torn = snap_torn;
        rr_wal_records = List.length wal.Persist.Wal.records;
        rr_replayed = applied;
        rr_wal_truncated = wal.Persist.Wal.truncated || stopped <> None;
        rr_stopped_early = stopped;
        rr_seq = cfg.p_seq }
    in
    Log.info (fun m -> m "recovered: %a" pp_recovery_report report);
    Ok (t, report)
