let src = Logs.Src.create "tyche.monitor" ~doc:"Tyche isolation monitor"

module Log = (val Logs.src_log src : Logs.LOG)

type error =
  | Cap_error of Cap.Captree.error
  | Unknown_domain of Domain.id
  | Denied of string
  | Backend_refused of string
  | Backend_failure of string
  | Bad_transition of string
  | Domain_config of string

let error_to_string = function
  | Cap_error e -> "capability error: " ^ Cap.Captree.error_to_string e
  | Unknown_domain id -> Printf.sprintf "unknown domain %d" id
  | Denied s -> "denied: " ^ s
  | Backend_refused s -> "backend refused: " ^ s
  | Backend_failure s -> "backend failure (rolled back): " ^ s
  | Bad_transition s -> "bad transition: " ^ s
  | Domain_config s -> "domain configuration: " ^ s

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

(* Memoized attestation body: the capability enumeration (regions with
   refcounts/holders, core and device counts) is a pure function of the
   tree state and the domain's measured ranges, so it can be reused
   verbatim until either changes. Signatures are NEVER cached — each
   attestation consumes a fresh one-time key over a fresh nonce. *)
type attest_entry = {
  at_generation : int; (* Captree.generation when the body was built *)
  at_measured : Hw.Addr.Range.t list;
  at_regions : Attestation.region_report list;
  at_cores : (int * int) list;
  at_devices : (int * int) list;
}

type t = {
  machine : Hw.Machine.t;
  tree : Cap.Captree.t;
  backend : Backend_intf.t;
  tpm : Rot.Tpm.t;
  signer : Crypto.Signature.signer;
  domains : (Domain.id, Domain.t) Hashtbl.t;
  mutable next_domain : Domain.id;
  current : Domain.id array; (* per-core running domain *)
  stacks : Domain.id list array; (* per-core return stacks *)
  reg_contexts : (Domain.id * int, int array) Hashtbl.t; (* (domain, core) *)
  mutable transitions : int;
  attest_cache : (Domain.id, attest_entry) Hashtbl.t;
  keypool : Crypto.Keypool.t option;
  mutable attests : int; (* attestations signed (telemetry) *)
  mutable body_hits : int; (* memoized attestation bodies reused *)
  mutable body_misses : int; (* bodies re-enumerated *)
}

let key_binding_pcr = 18

let ( let* ) = Result.bind

let machine t = t.machine
let tree t = t.tree
let backend t = t.backend
let attestation_root t = Crypto.Signature.public_root t.signer
let transition_count t = t.transitions

let find_domain t id = Hashtbl.find_opt t.domains id

let domains t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.domains []
  |> List.sort (fun a b -> Int.compare (Domain.id a) (Domain.id b))

let get_domain t id =
  match find_domain t id with Some d -> Ok d | None -> Error (Unknown_domain id)

(* Apply backend effects in order, stopping at the first failure. The
   typed [Backend_failure] error replaces the old invalid_arg escape
   hatch: callers run inside [with_txn], which rolls both the tree and
   the hardware back, so a failed effect can never leave the two
   disagreeing. *)
let apply_effects t effects =
  let rec go = function
    | [] -> Ok ()
    | eff :: rest -> (
      match t.backend.Backend_intf.apply_effect eff with
      | Ok () -> go rest
      | Error msg ->
        Log.warn (fun m -> m "backend effect failed, rolling back: %s" msg);
        Error (Backend_failure msg))
  in
  go effects

let cap_result t = function
  | Ok (value, effects) ->
    let* () = apply_effects t effects in
    Ok value
  | Error e -> Error (Cap_error e)

(* Bracket one mutating API call: journal tree mutations and hardware
   effects, commit on success, roll BOTH back on a typed error or an
   exception — state after a failed call is structurally identical to
   state before it. The backend rolls back first (its undo may read
   nothing from the tree, but symmetry with the forward order —
   tree-then-hardware — costs nothing and composes: (ab)⁻¹ = b⁻¹a⁻¹). *)
let with_txn t f =
  Cap.Captree.txn_begin t.tree;
  t.backend.Backend_intf.txn_begin ();
  match f () with
  | Ok _ as ok ->
    t.backend.Backend_intf.txn_commit ();
    Cap.Captree.txn_commit t.tree;
    ok
  | Error _ as err ->
    t.backend.Backend_intf.txn_rollback ();
    Cap.Captree.txn_rollback t.tree;
    err
  | exception e ->
    t.backend.Backend_intf.txn_rollback ();
    Cap.Captree.txn_rollback t.tree;
    raise e

let boot ?(signer_height = 6) ?keypool machine ~backend ~tpm ~rng ~monitor_range =
  let signer = Crypto.Signature.create ~height:signer_height ?pool:keypool rng in
  (* Bind the monitor's attestation key into the TPM so the tier-one
     quote certifies the tier-two signer (two-tier protocol, §3.4). *)
  Rot.Tpm.extend tpm ~pcr:key_binding_pcr (Crypto.Signature.public_root signer);
  let t =
    { machine;
      tree = Cap.Captree.create ();
      backend;
      tpm;
      signer;
      domains = Hashtbl.create 16;
      next_domain = Domain.initial + 1;
      current = Array.make (Array.length machine.Hw.Machine.cores) Domain.initial;
      stacks = Array.make (Array.length machine.Hw.Machine.cores) [];
      reg_contexts = Hashtbl.create 16;
      transitions = 0;
      attest_cache = Hashtbl.create 16;
      keypool;
      attests = 0;
      body_hits = 0;
      body_misses = 0 }
  in
  let os = Domain.make ~id:Domain.initial ~name:"os" ~kind:Domain.Os ~created_by:None in
  Hashtbl.replace t.domains Domain.initial os;
  backend.Backend_intf.domain_created os;
  (* Endow domain 0 with the whole machine minus the monitor's memory. *)
  let free_memory =
    Hw.Addr.Range.subtract (Hw.Physmem.full_range machine.Hw.Machine.mem) monitor_range
  in
  let add_root resource =
    (* Boot-time only: there is no caller to hand an error to, so a
       failure here (impossible outside a misconfigured harness) is
       still fatal. No transaction is open — no journaling overhead. *)
    match Cap.Captree.root t.tree ~owner:Domain.initial resource Cap.Rights.full with
    | Ok (_, effects) -> (
      match apply_effects t effects with
      | Ok () -> ()
      | Error e -> invalid_arg ("Monitor.boot: " ^ error_to_string e))
    | Error e -> invalid_arg ("Monitor.boot: " ^ Cap.Captree.error_to_string e)
  in
  List.iter (fun r -> add_root (Cap.Resource.Memory r)) free_memory;
  Array.iteri (fun i _ -> add_root (Cap.Resource.Cpu_core i)) machine.Hw.Machine.cores;
  List.iter
    (fun d -> add_root (Cap.Resource.Device (Hw.Device.bdf d)))
    machine.Hw.Machine.devices;
  Array.iter (fun core -> backend.Backend_intf.launch ~core os) machine.Hw.Machine.cores;
  Log.info (fun m -> m "monitor booted: %d memory roots, %d cores, %d devices"
    (List.length free_memory)
    (Array.length machine.Hw.Machine.cores)
    (List.length machine.Hw.Machine.devices));
  t

(* Domain lifecycle *)

let create_domain t ~caller ~name ~kind =
  let* _ = get_domain t caller in
  let id = t.next_domain in
  t.next_domain <- id + 1;
  let d = Domain.make ~id ~name ~kind ~created_by:(Some caller) in
  Hashtbl.replace t.domains id d;
  t.backend.Backend_intf.domain_created d;
  Log.debug (fun m -> m "created %a by domain#%d" Domain.pp d caller);
  Ok id

let creator_or_self ~caller ~domain d =
  if caller = domain || Domain.created_by d = Some caller then Ok ()
  else Error (Denied "only the domain or its creator may configure it")

let set_entry_point t ~caller ~domain addr =
  let* d = get_domain t domain in
  let* () = creator_or_self ~caller ~domain d in
  Result.map_error (fun e -> Domain_config e) (Domain.set_entry_point d addr)

let set_flush_policy t ~caller ~domain flush =
  let* d = get_domain t domain in
  let* () = creator_or_self ~caller ~domain d in
  if Domain.is_sealed d then Error (Domain_config "domain is sealed")
  else begin
    Domain.set_flush_on_transition d flush;
    Ok ()
  end

let domain_holds_range t ~domain range =
  List.exists
    (fun cap ->
      match Cap.Captree.resource t.tree cap with
      | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.includes ~outer:r ~inner:range
      | _ -> false)
    (Cap.Captree.caps_of_domain t.tree domain)

let mark_measured t ~caller ~domain range =
  let* d = get_domain t domain in
  let* () = creator_or_self ~caller ~domain d in
  if not (domain_holds_range t ~domain range) then
    Error (Denied "measured range not held by the domain")
  else Result.map_error (fun e -> Domain_config e) (Domain.add_measured_range d range)

let seal t ~caller ~domain =
  let* d = get_domain t domain in
  let* () = creator_or_self ~caller ~domain d in
  match Domain.entry_point d with
  | None -> Error (Domain_config "cannot seal a domain without an entry point")
  | Some entry ->
    let ranges =
      List.map
        (fun r ->
          let pages = (Hw.Addr.Range.len r + Hw.Addr.page_size - 1) / Hw.Addr.page_size in
          Hw.Cycles.charge t.machine.Hw.Machine.counter
            (pages * Hw.Cycles.Cost.measurement_per_page);
          (r, Hw.Physmem.measure t.machine.Hw.Machine.mem r))
        (Domain.measured_ranges d)
    in
    let digest =
      Measure.domain_digest ~kind:(Domain.kind d) ~entry_point:entry
        ~flush_on_transition:(Domain.flush_on_transition d) ~ranges
    in
    Result.map_error (fun e -> Domain_config e) (Domain.seal d ~measurement:digest)

let running_on_some_core t domain =
  Array.exists (fun d -> d = domain) t.current
  || Array.exists (List.mem domain) t.stacks

let destroy_domain t ~caller ~domain =
  let* d = get_domain t domain in
  if domain = Domain.initial then Error (Denied "domain 0 cannot be destroyed")
  else if Domain.created_by d <> Some caller then
    Error (Denied "only the creator may destroy a domain")
  else if running_on_some_core t domain then
    Error (Denied "domain is running or on a return stack")
  else
    (* One transaction for the whole teardown: a fault in the middle of
       the revocation cascade must leave every capability (and the
       hardware) exactly as before the call. The table removals are
       infallible and run last, so they need no undo. *)
    with_txn t (fun () ->
        let rec revoke_all () =
          (* Inactive capabilities too: delegations the domain made from
             granted-away pieces must cascade with it. *)
          match Cap.Captree.all_caps_of_domain t.tree domain with
          | [] -> Ok ()
          | cap :: _ ->
            let* () =
              cap_result t (Result.map (fun e -> ((), e)) (Cap.Captree.revoke t.tree cap))
            in
            revoke_all ()
        in
        let* () = revoke_all () in
        t.backend.Backend_intf.domain_destroyed d;
        Hashtbl.remove t.domains domain;
        Hashtbl.remove t.attest_cache domain;
        Ok ())

(* Capability operations *)

let caps_of t domain = Cap.Captree.caps_of_domain t.tree domain

let owned_by t ~caller cap =
  match Cap.Captree.owner t.tree cap with
  | Some o when o = caller -> Ok ()
  | Some _ -> Error (Denied "caller does not own this capability")
  | None -> Error (Cap_error (Cap.Captree.No_such_capability cap))

let attach_target t ~caller ~to_ ~resource =
  let* target = get_domain t to_ in
  (* Sealing freezes the domain's *memory* footprint (its identity and
     confidentiality surface). Cores and devices stay dynamically
     delegable — scheduling and hot-plug are runtime decisions — and
     remain fully visible in attestation refcounts. *)
  if Domain.is_sealed target && to_ <> caller && Cap.Resource.is_memory resource then
    Error (Denied "target domain is sealed: its memory cannot be extended")
  else Ok target

let validate_attach t target resource =
  Result.map_error
    (fun msg -> Backend_refused msg)
    (t.backend.Backend_intf.validate_attach target resource)

let share t ~caller ~cap ~to_ ~rights ~cleanup ?subrange () =
  let* () = owned_by t ~caller cap in
  let* resource =
    match Cap.Captree.resource t.tree cap, subrange with
    | Some (Cap.Resource.Memory _), Some sub -> Ok (Cap.Resource.Memory sub)
    | Some r, None -> Ok r
    | Some _, Some _ -> Error (Cap_error Cap.Captree.Bad_subrange)
    | None, _ -> Error (Cap_error (Cap.Captree.No_such_capability cap))
  in
  let* target = attach_target t ~caller ~to_ ~resource in
  let* () = validate_attach t target resource in
  with_txn t (fun () ->
      cap_result t (Cap.Captree.share t.tree cap ~to_ ~rights ~cleanup ?subrange ()))

let grant t ~caller ~cap ~to_ ~rights ~cleanup =
  let* () = owned_by t ~caller cap in
  let* resource =
    match Cap.Captree.resource t.tree cap with
    | Some r -> Ok r
    | None -> Error (Cap_error (Cap.Captree.No_such_capability cap))
  in
  let* target = attach_target t ~caller ~to_ ~resource in
  let* () = validate_attach t target resource in
  with_txn t (fun () -> cap_result t (Cap.Captree.grant t.tree cap ~to_ ~rights ~cleanup))

let split t ~caller ~cap ~at =
  let* () = owned_by t ~caller cap in
  with_txn t (fun () ->
      match Cap.Captree.split t.tree cap ~at with
      | Ok (l, r, effects) ->
        let* () = apply_effects t effects in
        Ok (l, r)
      | Error e -> Error (Cap_error e))

let carve t ~caller ~cap ~subrange =
  let* () = owned_by t ~caller cap in
  with_txn t (fun () -> cap_result t (Cap.Captree.carve t.tree cap ~subrange))

let may_revoke t ~caller cap =
  let rec walk id =
    match Cap.Captree.owner t.tree id with
    | Some o when o = caller -> true
    | _ -> (
      match Cap.Captree.parent t.tree id with Some p -> walk p | None -> false)
  in
  if walk cap then Ok ()
  else Error (Denied "caller owns neither the capability nor an ancestor")

let revoke t ~caller ~cap =
  let* () = may_revoke t ~caller cap in
  with_txn t (fun () ->
      cap_result t (Result.map (fun e -> ((), e)) (Cap.Captree.revoke t.tree cap)))

(* Transitions *)

let check_core t core =
  if core < 0 || core >= Array.length t.current then
    Error (Bad_transition (Printf.sprintf "no such core: %d" core))
  else Ok ()

let current_domain t ~core = t.current.(core)

let call_depth t ~core = List.length t.stacks.(core)

let holds_core t domain core =
  List.mem domain (Cap.Captree.holders t.tree (Cap.Resource.Cpu_core core))

let do_transition t ~core ~from_ ~to_ =
  let flush = Domain.flush_on_transition from_ || Domain.flush_on_transition to_ in
  let cpu = Hw.Machine.core t.machine core in
  (* Hardware first: if the backend cannot switch the translation
     context (PMP budget, an injected fault), the core must keep
     running [from_] with its registers untouched. Only after the
     hardware committed is the register file context-switched — the
     outgoing domain's registers saved (its VMCS/trap frame), the
     incoming domain's restored, or a zeroed file on first entry so no
     register content ever leaks across a domain boundary. *)
  match t.backend.Backend_intf.transition ~core:cpu ~from_ ~to_ ~flush_microarch:flush with
  | Error msg -> Error (Backend_failure msg)
  | Ok path ->
    Hashtbl.replace t.reg_contexts (Domain.id from_, core) (Hw.Cpu.save_regs cpu);
    (match Hashtbl.find_opt t.reg_contexts (Domain.id to_, core) with
    | Some saved -> Hw.Cpu.load_regs cpu saved
    | None -> Hw.Cpu.clear_regs cpu);
    t.transitions <- t.transitions + 1;
    Ok path

let call t ~core ~target =
  let* () = check_core t core in
  let from_id = t.current.(core) in
  let* from_ = get_domain t from_id in
  let* to_ = get_domain t target in
  if target = from_id then Error (Bad_transition "domain is already running here")
  else if not (Domain.is_sealed to_) && target <> Domain.initial then
    Error (Bad_transition "target domain is not sealed")
  else if Domain.entry_point to_ = None && target <> Domain.initial then
    Error (Bad_transition "target domain has no entry point")
  else if not (holds_core t target core) then
    Error (Bad_transition "target domain holds no capability for this core")
  else
    with_txn t (fun () ->
        let* path = do_transition t ~core ~from_ ~to_ in
        t.stacks.(core) <- from_id :: t.stacks.(core);
        t.current.(core) <- target;
        Ok path)

let ret t ~core =
  let* () = check_core t core in
  (* A stack entry whose core capability was revoked while it was
     suspended must not be resumed: skip it (the scheduling-guarantee
     rule applies to returns, not just fresh calls). *)
  let rec pop = function
    | [] -> Error (Bad_transition "no return target holds this core")
    | prev :: rest when not (holds_core t prev core) -> pop rest
    | prev :: rest -> Ok (prev, rest)
  in
  let* prev, rest = pop t.stacks.(core) in
  let* from_ = get_domain t t.current.(core) in
  let* to_ = get_domain t prev in
  with_txn t (fun () ->
      let* path = do_transition t ~core ~from_ ~to_ in
      t.stacks.(core) <- rest;
      t.current.(core) <- prev;
      Ok path)

let timer_tick t ~core =
  let* () = check_core t core in
  let running = t.current.(core) in
  if holds_core t running core then Ok running
  else begin
    (* The squatter lost its core capability: evict. Prefer the unique
       exclusive holder; fall back to domain 0 when it holds the core. *)
    let holders = Cap.Captree.holders t.tree (Cap.Resource.Cpu_core core) in
    let* heir =
      match holders with
      | [ d ] -> Ok d
      | ds when List.mem Domain.initial ds -> Ok Domain.initial
      | [] -> Error (Bad_transition "no domain holds this core")
      | d :: _ -> Ok d
    in
    let* from_ = get_domain t running in
    let* to_ = get_domain t heir in
    with_txn t (fun () ->
        let* _path = do_transition t ~core ~from_ ~to_ in
        t.stacks.(core) <- [];
        t.current.(core) <- heir;
        Log.info (fun m ->
            m "timer evicted domain#%d from core %d for domain#%d" running core heir);
        Ok heir)
  end

let route_interrupt t ~caller ~device ~vector ~core =
  let* () = check_core t core in
  let holds resource =
    List.mem caller (Cap.Captree.holders t.tree resource)
  in
  if not (holds (Cap.Resource.Device device)) then
    Error (Denied "caller holds no capability for the device")
  else if not (holds (Cap.Resource.Cpu_core core)) then
    Error (Denied "caller holds no capability for the target core")
  else begin
    let ic = t.machine.Hw.Machine.interrupts in
    Hw.Interrupt.permit ic ~device ~vector;
    Hw.Interrupt.route ic ~vector ~core;
    Ok ()
  end

(* Register access for the domain currently on a core. *)

let get_reg t ~core i =
  let* () = check_core t core in
  match Hw.Cpu.get_reg (Hw.Machine.core t.machine core) i with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Denied msg)

let set_reg t ~core i v =
  let* () = check_core t core in
  match Hw.Cpu.set_reg (Hw.Machine.core t.machine core) i v with
  | () -> Ok ()
  | exception Invalid_argument msg -> Error (Denied msg)

(* Domain-context memory access *)

let guarded_access t ~core f =
  let* () = check_core t core in
  let cpu = Hw.Machine.core t.machine core in
  match f cpu with
  | v -> Ok v
  | exception Hw.Ept.Violation { gpa; _ } ->
    Error (Denied (Printf.sprintf "EPT violation at 0x%x" gpa))
  | exception Hw.Pmp.Fault { addr; _ } ->
    Error (Denied (Printf.sprintf "PMP fault at 0x%x" addr))
  | exception Hw.Page_table.Fault { vaddr; _ } ->
    Error (Denied (Printf.sprintf "page fault at 0x%x" vaddr))
  | exception Hw.Physmem.Bus_error addr ->
    Error (Denied (Printf.sprintf "bus error at 0x%x" addr))

let load t ~core addr =
  guarded_access t ~core (fun cpu ->
      Hw.Cpu.load cpu t.machine.Hw.Machine.mem ~tlb:t.machine.Hw.Machine.tlb
        ~cache:t.machine.Hw.Machine.cache addr)

let store t ~core addr v =
  guarded_access t ~core (fun cpu ->
      Hw.Cpu.store cpu t.machine.Hw.Machine.mem ~tlb:t.machine.Hw.Machine.tlb
        ~cache:t.machine.Hw.Machine.cache addr v)

let load_string t ~core range =
  guarded_access t ~core (fun cpu ->
      String.init (Hw.Addr.Range.len range) (fun i ->
          Char.chr
            (Hw.Cpu.load cpu t.machine.Hw.Machine.mem ~tlb:t.machine.Hw.Machine.tlb
               ~cache:t.machine.Hw.Machine.cache
               (Hw.Addr.Range.base range + i))))

let store_string t ~core addr s =
  guarded_access t ~core (fun cpu ->
      String.iteri
        (fun i c ->
          Hw.Cpu.store cpu t.machine.Hw.Machine.mem ~tlb:t.machine.Hw.Machine.tlb
            ~cache:t.machine.Hw.Machine.cache (addr + i) (Char.code c))
        s)

(* Attestation *)

(* Enumerate a domain's Fig. 4 attestation body. Parameterized over the
   query functions so the memoized fast path and [attest_reference]
   (full-scan baseline) share one enumeration. *)
let attest_body t ~caps_of ~refcount ~holders ~measured_ranges domain =
  List.fold_left
    (fun (regions, cores, devices) cap ->
      match Cap.Captree.resource t.tree cap, Cap.Captree.rights t.tree cap with
      | Some (Cap.Resource.Memory r as res), Some rights ->
        let report =
          { Attestation.range = r;
            perm = rights.Cap.Rights.perm;
            refcount = refcount t.tree res;
            holders = holders t.tree res;
            measured =
              List.exists
                (fun m -> Hw.Addr.Range.includes ~outer:m ~inner:r
                          || Hw.Addr.Range.includes ~outer:r ~inner:m)
                measured_ranges }
        in
        (report :: regions, cores, devices)
      | Some (Cap.Resource.Cpu_core c as res), Some _ ->
        (regions, (c, refcount t.tree res) :: cores, devices)
      | Some (Cap.Resource.Device dev as res), Some _ ->
        (regions, cores, (dev, refcount t.tree res) :: devices)
      | _ -> (regions, cores, devices))
    ([], [], [])
    (caps_of t.tree domain)

(* Memoized body lookup shared by the single and batched paths. *)
let memoized_body t d domain =
  let measured_ranges = Domain.measured_ranges d in
  let generation = Cap.Captree.generation t.tree in
  match Hashtbl.find_opt t.attest_cache domain with
  | Some e when e.at_generation = generation && e.at_measured = measured_ranges ->
    t.body_hits <- t.body_hits + 1;
    (e.at_regions, e.at_cores, e.at_devices)
  | _ ->
    t.body_misses <- t.body_misses + 1;
    let ((regions, cores, devices) as body) =
      attest_body t ~caps_of:Cap.Captree.caps_of_domain ~refcount:Cap.Captree.refcount
        ~holders:Cap.Captree.holders ~measured_ranges domain
    in
    Hashtbl.replace t.attest_cache domain
      { at_generation = generation; at_measured = measured_ranges;
        at_regions = regions; at_cores = cores; at_devices = devices };
    body

let attest t ~caller ~domain ~nonce =
  let* _ = get_domain t caller in
  let* d = get_domain t domain in
  let regions, cores, devices = memoized_body t d domain in
  t.attests <- t.attests + 1;
  Ok
    (Attestation.sign ~signer:t.signer ~domain:d ~regions ~cores ~devices
       ~memory_encrypted:(t.backend.Backend_intf.domain_encrypted d) ~nonce)

let attest_spec t ~caller ~domain ~nonce =
  let* _ = get_domain t caller in
  let* d = get_domain t domain in
  let regions, cores, devices = memoized_body t d domain in
  t.attests <- t.attests + 1;
  Ok
    (Attestation.sign_spec ~signer:t.signer ~domain:d ~regions ~cores ~devices
       ~memory_encrypted:(t.backend.Backend_intf.domain_encrypted d) ~nonce)

let attest_batch t ~caller ~domains ~nonce =
  let* _ = get_domain t caller in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | id :: rest ->
      let* d = get_domain t id in
      let regions, cores, devices = memoized_body t d id in
      collect
        ((d, regions, cores, devices, t.backend.Backend_intf.domain_encrypted d) :: acc)
        rest
  in
  let* entries = collect [] domains in
  t.attests <- t.attests + 1;
  Ok (Attestation.sign_batch ~signer:t.signer ~nonce entries)

let attest_reference t ~caller ~domain ~nonce =
  let* _ = get_domain t caller in
  let* d = get_domain t domain in
  let regions, cores, devices =
    attest_body t ~caps_of:Cap.Captree.caps_of_domain_reference
      ~refcount:Cap.Captree.refcount_reference ~holders:Cap.Captree.holders_reference
      ~measured_ranges:(Domain.measured_ranges d) domain
  in
  Ok
    (Attestation.sign ~signer:t.signer ~domain:d ~regions ~cores ~devices
       ~memory_encrypted:(t.backend.Backend_intf.domain_encrypted d) ~nonce)

let boot_quote t ~nonce =
  Rot.Tpm.Quote.generate t.tpm ~pcrs:[ 0; 4; Rot.Tpm.drtm_pcr; key_binding_pcr ] ~nonce

(* Telemetry *)

type attest_telemetry = {
  attests : int;
  body_cache_hits : int;
  body_cache_misses : int;
  keypool_hits : int;
  keypool_misses : int;
  keypool_miss_rate : float;
  keypool_stock : int;
}

let attest_telemetry t =
  let keypool_hits, keypool_misses, keypool_miss_rate, keypool_stock =
    match t.keypool with
    | Some pool ->
      let hits, misses = Crypto.Keypool.stats pool in
      (hits, misses, Crypto.Keypool.miss_rate pool, Crypto.Keypool.size pool)
    | None -> (0, 0, 0., 0)
  in
  { attests = t.attests;
    body_cache_hits = t.body_hits;
    body_cache_misses = t.body_misses;
    keypool_hits;
    keypool_misses;
    keypool_miss_rate;
    keypool_stock }
