(** Platform-backend interface (§3.3, §4).

    Tyche separates the platform-independent capability model from a
    platform-specific backend that programs real access-control hardware.
    A backend is a record of operations the monitor invokes:
    capability-tree {!Cap.Captree.effect}s to apply, domain lifecycle
    notifications, and domain transitions. The two implementations are
    {!Backend_x86} (VT-x: per-domain EPTs, VMFUNC fast path, IOMMU) and
    {!Backend_riscv} (M-mode: per-hart PMP programming). *)

type transition_path =
  | Fast_switch (** Exit-less switch (VMFUNC EPTP switch on x86). *)
  | Trap_roundtrip (** Through the monitor (VMCALL / ecall). *)

val pp_transition_path : Format.formatter -> transition_path -> unit

type t = {
  backend_name : string;
  domain_created : Domain.t -> unit;
  (** Allocate per-domain enforcement state (an EPT, a PMP layout). *)
  domain_destroyed : Domain.t -> unit;
  apply_effect : Cap.Captree.effect -> (unit, string) result;
  (** Make hardware match a capability-tree change. [Detach] must leave
      the resource unreachable (including TLB shootdown) and run the
      clean-up policy. *)
  validate_attach : Domain.t -> Cap.Resource.t -> (unit, string) result;
  (** Pre-flight check before the monitor mutates the tree: the PMP
      backend rejects layouts that exceed the entry budget (C8); the
      EPT backend accepts anything page-aligned. *)
  transition :
    core:Hw.Cpu.t -> from_:Domain.t -> to_:Domain.t -> flush_microarch:bool ->
    (transition_path, string) result;
  (** Switch the core's translation context between domains, charging
      the simulated hardware cost; returns which path was taken, or
      [Error] when hardware programming fails (PMP reprogramming over
      budget, an injected fault) — in which case the core's context must
      be left on [from_]. *)
  launch : core:Hw.Cpu.t -> Domain.t -> unit;
  (** Boot-time entry of the initial domain on a core (no from-context,
      no cost accounting). *)
  domain_reaches : Domain.t -> Hw.Addr.Range.t -> bool;
  (** Ground truth from the hardware's point of view: can this domain
      currently access any byte of the range? The judiciary compares
      this against the capability tree. *)
  domain_encrypted : Domain.t -> bool;
  (** Whether the domain's confidential memory currently sits under a
      private memory-encryption key (MKTME/SEV-style) — the physical-
      attack posture attestations expose to remote verifiers. *)
  txn_begin : unit -> unit;
  (** Open a hardware transaction: until commit/rollback, every effect
      the backend applies journals an undo, and destructive clean-ups
      (memory zeroing) are deferred. The monitor brackets each mutating
      API call with these, mirroring {!Cap.Captree.txn_begin}. *)
  txn_commit : unit -> unit;
  (** Discard the journal and run the deferred destructive clean-ups. *)
  txn_rollback : unit -> unit;
  (** Undo every journaled hardware effect (newest first) and drop the
      deferred clean-ups; hardware state must equal the state at
      [txn_begin]. Runs with fault injection suspended. *)
}
