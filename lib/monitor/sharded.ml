(* The sharded monitor: a federation of per-OCaml-Domain monitors
   behind one global namespace (ROADMAP items 3-5; the "millions of
   users" scaling unit).

   Layout. Shard [s] is a complete world — its own machine, backend,
   TPM and {!Monitor.t} — so every hardware write stays shard-local by
   construction. Isolation domains are *replicated*: domain lifecycle
   ops broadcast to every shard (the per-shard [next_domain] counters
   stay in lockstep, so ids agree), while resources live on exactly one
   shard and capability subtrees never cross shards (a share targets a
   domain, and every domain exists on every shard).

   Naming. Global ids are stateless encodings of (shard, local):
     - capability id  g = local lsl 6 lor shard   (max 64 shards)
     - memory address g = shard * 2^40 + local
     - core           g = shard * cores_per_shard + local
   The encoding is shard-count invariant for shard 0: a workload
   confined to shard 0's resources produces byte-identical responses
   under 1 shard and under N — which is exactly what the differential
   harness replays.

   Concurrency. Each shard has a mutex (writers) and a seqlock-style
   write sequence (readers): the indexed queries (refcount, holders,
   caps_of) read optimistically against a pinned sequence and retry on
   interference, so readers never block writers. Cross-shard mutations
   (domain destruction — the revocation cascade touches every shard)
   run a two-phase commit over {!Monitor.txn_begin}/[txn_commit]/
   [txn_rollback]: prepare the journals on every shard, then commit
   all or roll all back. The WAL contract survives unchanged: one
   front-end redo log (global ids, group commit), appended only after
   an operation fully commits. *)

let shard_bits = 6
let max_shards = 1 lsl shard_bits
let addr_stride = 1 lsl 40

type shard = {
  s_index : int;
  s_monitor : Monitor.t;
  s_machine : Hw.Machine.t;
  s_lock : Mutex.t;
  (* Seqlock word: odd while a writer is inside the shard. Writers
     always hold [s_lock]; readers never take it on the fast path. *)
  s_wseq : int Atomic.t;
}

type persist_front = {
  fp_group : Persist.Group.t;
  fp_lock : Mutex.t;
  mutable fp_seq : int;
  mutable fp_replaying : bool;
}

type t = {
  shards : shard array;
  cores_per_shard : int;
  (* Front-end aggregate-attestation signer: one signature over the
     concatenated per-shard bodies. *)
  signer : Crypto.Signature.signer;
  signer_lock : Mutex.t;
  (* Global measured ranges per domain, in declaration order — the
     per-shard domain records only know their local slices. *)
  measured : (Domain.id, Hw.Addr.Range.t list ref) Hashtbl.t;
  meas_lock : Mutex.t;
  mutable attests : int;
  mutable persist : persist_front option;
}

let ( let* ) = Result.bind

(* --- id translation ------------------------------------------------- *)

let gcap ~shard local = (local lsl shard_bits) lor shard
let cap_shard c = c land (max_shards - 1)
let cap_local c = c lsr shard_bits
let gaddr ~shard a = (shard * addr_stride) + a
let addr_shard a = a / addr_stride

let grange ~shard r =
  Hw.Addr.Range.make ~base:(gaddr ~shard (Hw.Addr.Range.base r)) ~len:(Hw.Addr.Range.len r)

let lrange ~shard r =
  Hw.Addr.Range.make
    ~base:(Hw.Addr.Range.base r - (shard * addr_stride))
    ~len:(Hw.Addr.Range.len r)

(* A global subrange is usable only if it sits entirely inside one
   shard's address window. *)
let local_sub ~shard r =
  let b = Hw.Addr.Range.base r and l = Hw.Addr.Range.len r in
  if addr_shard b <> shard || addr_shard (b + l - 1) <> shard then None
  else Some (Hw.Addr.Range.make ~base:(b - (shard * addr_stride)) ~len:l)

let core_shard t core = core / t.cores_per_shard
let core_local t core = core mod t.cores_per_shard
let gcore t ~shard local = (shard * t.cores_per_shard) + local

let resource_shard t = function
  | Cap.Resource.Memory r -> addr_shard (Hw.Addr.Range.base r)
  | Cap.Resource.Cpu_core c -> core_shard t c
  | Cap.Resource.Device _ -> 0 (* devices attach to shard 0 only *)

let local_resource t ~shard = function
  | Cap.Resource.Memory r -> Cap.Resource.Memory (lrange ~shard r)
  | Cap.Resource.Cpu_core c -> Cap.Resource.Cpu_core (c - (shard * t.cores_per_shard))
  | Cap.Resource.Device d -> Cap.Resource.Device d

(* Shard-monitor errors surface local capability ids; translate them
   back into the global namespace before they reach the caller. *)
let tr_cap_error ~shard = function
  | Cap.Captree.No_such_capability c -> Cap.Captree.No_such_capability (gcap ~shard c)
  | Cap.Captree.Capability_inactive c -> Cap.Captree.Capability_inactive (gcap ~shard c)
  | e -> e

let tr_error ~shard = function
  | Monitor.Cap_error e -> Monitor.Cap_error (tr_cap_error ~shard e)
  | e -> e

(* --- wire-op conversions (duplicating Monitor's private helpers) ---- *)

let kind_to_int = function
  | Domain.Os -> 0
  | Domain.Sandbox -> 1
  | Domain.Enclave -> 2
  | Domain.Confidential_vm -> 3
  | Domain.Io_domain -> 4
  | Domain.Remote -> 5

let kind_of_int = function
  | 0 -> Some Domain.Os
  | 1 -> Some Domain.Sandbox
  | 2 -> Some Domain.Enclave
  | 3 -> Some Domain.Confidential_vm
  | 4 -> Some Domain.Io_domain
  | 5 -> Some Domain.Remote
  | _ -> None

let cleanup_to_int = function
  | Cap.Revocation.Keep -> 0
  | Cap.Revocation.Zero -> 1
  | Cap.Revocation.Flush_cache -> 2
  | Cap.Revocation.Zero_and_flush -> 3

let cleanup_of_int = function
  | 0 -> Some Cap.Revocation.Keep
  | 1 -> Some Cap.Revocation.Zero
  | 2 -> Some Cap.Revocation.Flush_cache
  | 3 -> Some Cap.Revocation.Zero_and_flush
  | _ -> None

let rights_to_wire (r : Cap.Rights.t) =
  { Persist.Op.r_read = r.perm.Hw.Perm.read;
    r_write = r.perm.Hw.Perm.write;
    r_exec = r.perm.Hw.Perm.exec;
    r_share = r.can_share;
    r_grant = r.can_grant }

let rights_of_wire (w : Persist.Op.rights) =
  { Cap.Rights.perm =
      { Hw.Perm.read = w.Persist.Op.r_read; write = w.r_write; exec = w.r_exec };
    can_share = w.r_share;
    can_grant = w.r_grant }

let range_pair r = (Hw.Addr.Range.base r, Hw.Addr.Range.len r)
let pair_range (base, len) = Hw.Addr.Range.make ~base ~len

(* --- locking -------------------------------------------------------- *)

let locked s f = Mutex.protect s.s_lock f

let write s f =
  Mutex.protect s.s_lock (fun () ->
      Atomic.incr s.s_wseq;
      Fun.protect ~finally:(fun () -> Atomic.incr s.s_wseq) f)

(* Optimistic read: pin the shard's write sequence, run the query
   against the live tree, and keep the result only if no writer entered
   in between. A query racing a writer may observe a torn structure and
   raise — that is exactly the "sequence moved" case, so the exception
   is swallowed if and only if the seqlock invalidated the attempt.
   After a few failed attempts, fall back to the shard mutex. *)
let read s f =
  let rec attempt retries =
    if retries = 0 then Mutex.protect s.s_lock f
    else
      let v0 = Atomic.get s.s_wseq in
      if v0 land 1 = 1 then begin
        Stdlib.Domain.cpu_relax ();
        attempt (retries - 1)
      end
      else
        match f () with
        | r when Atomic.get s.s_wseq = v0 -> r
        | _ -> attempt (retries - 1)
        | exception _ when Atomic.get s.s_wseq <> v0 -> attempt (retries - 1)
  in
  attempt 4

(* Whole-federation write bracket: take every shard lock in ascending
   index order (lock-order discipline — no deadlock against the
   single-shard writers) and mark every seqlock. *)
let write_all t f =
  let n = Array.length t.shards in
  let rec go i =
    if i = n then begin
      Array.iter (fun s -> Atomic.incr s.s_wseq) t.shards;
      Fun.protect
        ~finally:(fun () -> Array.iter (fun s -> Atomic.incr s.s_wseq) t.shards)
        f
    end
    else Mutex.protect t.shards.(i).s_lock (fun () -> go (i + 1))
  in
  go 0

(* --- boot ----------------------------------------------------------- *)

let default_shards () =
  match Sys.getenv_opt "TYCHE_SHARDS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && n <= max_shards -> n
    | _ -> 1)
  | None -> 1

let boot ?shards ?(signer_height = 6) ?keypool ~rng ~mk () =
  let n = match shards with Some n -> n | None -> default_shards () in
  if n < 1 || n > max_shards then
    invalid_arg (Printf.sprintf "Sharded.boot: shard count must be in 1..%d" max_shards);
  let tpm0 = ref None in
  let shards =
    Array.init n (fun i ->
        let machine, backend, tpm, srng, monitor_range = mk ~shard:i in
        if i = 0 then tpm0 := Some tpm;
        let monitor = Monitor.boot ~signer_height machine ~backend ~tpm ~rng:srng ~monitor_range in
        { s_index = i;
          s_monitor = monitor;
          s_machine = machine;
          s_lock = Mutex.create ();
          s_wseq = Atomic.make 0 })
  in
  let cores_per_shard = Array.length shards.(0).s_machine.Hw.Machine.cores in
  Array.iter
    (fun s ->
      if Array.length s.s_machine.Hw.Machine.cores <> cores_per_shard then
        invalid_arg "Sharded.boot: every shard must have the same core count";
      if Hw.Addr.Range.len (Hw.Physmem.full_range s.s_machine.Hw.Machine.mem) > addr_stride
      then invalid_arg "Sharded.boot: shard memory exceeds the address stride")
    shards;
  let signer = Crypto.Signature.create ~height:signer_height ?pool:keypool rng in
  (* Bind the federation's aggregate-attestation key into shard 0's TPM
     alongside shard 0's own signer root: one tier-one quote then
     certifies both tiers of the sharded deployment. *)
  Rot.Tpm.extend (Option.get !tpm0) ~pcr:Monitor.key_binding_pcr
    (Crypto.Signature.public_root signer);
  (* Every shard boot re-pointed the trace clock at its own machine;
     the federation's causal order keys off shard 0's counter. *)
  Obs.set_clock (fun () -> Hw.Machine.cycles shards.(0).s_machine);
  { shards;
    cores_per_shard;
    signer;
    signer_lock = Mutex.create ();
    measured = Hashtbl.create 16;
    meas_lock = Mutex.create ();
    attests = 0;
    persist = None }

let shard_count t = Array.length t.shards
let cores t = Array.length t.shards * t.cores_per_shard
let cores_per_shard t = t.cores_per_shard
let shard_monitor t i = t.shards.(i).s_monitor
let attestation_root t = Crypto.Signature.public_root t.signer
let shard0 t = t.shards.(0)
let boot_quote t ~nonce = Monitor.boot_quote (shard0 t).s_monitor ~nonce

(* --- front-end redo log --------------------------------------------- *)

let log_op t op =
  match t.persist with
  | None -> ()
  | Some fp when fp.fp_replaying -> ()
  | Some fp ->
    Mutex.protect fp.fp_lock (fun () ->
        let seq = fp.fp_seq + 1 in
        fp.fp_seq <- seq;
        Persist.Group.append fp.fp_group ~seq (Persist.Op.encode op))

(* --- domain lifecycle (broadcast) ----------------------------------- *)

let divergence what =
  invalid_arg ("Sharded: shard state diverged during " ^ what)

(* Replicated-table ops succeed or fail identically on every shard (the
   decision reads only the domain tables, which broadcast keeps in
   lockstep): run shard 0 first, surface its verdict, and require the
   rest to agree. *)
let broadcast t what f =
  match f (shard0 t).s_monitor with
  | Error _ as e -> e
  | Ok () ->
    Array.iter
      (fun s ->
        if s.s_index > 0 then
          match f s.s_monitor with Ok () -> () | Error _ -> divergence what)
      t.shards;
    Ok ()

let create_domain t ~caller ~name ~kind =
  write_all t (fun () ->
      match Monitor.create_domain (shard0 t).s_monitor ~caller ~name ~kind with
      | Error _ as e -> e
      | Ok id ->
        Array.iter
          (fun s ->
            if s.s_index > 0 then
              match Monitor.create_domain s.s_monitor ~caller ~name ~kind with
              | Ok id' when id' = id -> ()
              | _ -> divergence "create_domain")
          t.shards;
        log_op t (Persist.Op.Create_domain { caller; name; kind = kind_to_int kind });
        Ok id)

let set_entry_point t ~caller ~domain entry =
  write_all t (fun () ->
      (* The entry address is global configuration data: stored verbatim
         on every shard (it feeds the seal digest and the transition
         target); callers must run the domain on a core of the shard
         holding the entry's backing memory. *)
      match
        broadcast t "set_entry_point" (fun m ->
            Monitor.set_entry_point m ~caller ~domain entry)
      with
      | Ok () ->
        log_op t (Persist.Op.Set_entry_point { caller; domain; entry });
        Ok ()
      | Error _ as e -> e)

let set_flush_policy t ~caller ~domain flush =
  write_all t (fun () ->
      match
        broadcast t "set_flush_policy" (fun m ->
            Monitor.set_flush_policy m ~caller ~domain flush)
      with
      | Ok () ->
        log_op t (Persist.Op.Set_flush_policy { caller; domain; flush });
        Ok ()
      | Error _ as e -> e)

let mark_measured t ~caller ~domain range =
  let b = Hw.Addr.Range.base range in
  let sh = addr_shard b in
  if sh < 0 || sh >= Array.length t.shards
     || addr_shard (Hw.Addr.Range.limit range - 1) <> sh
  then Error (Monitor.Denied "measured range not held by the domain")
  else
    let s = t.shards.(sh) in
    write s (fun () ->
        match Monitor.mark_measured s.s_monitor ~caller ~domain (lrange ~shard:sh range) with
        | Ok () ->
          Mutex.protect t.meas_lock (fun () ->
              let l =
                match Hashtbl.find_opt t.measured domain with
                | Some l -> l
                | None ->
                  let l = ref [] in
                  Hashtbl.replace t.measured domain l;
                  l
              in
              l := range :: !l);
          log_op t
            (Persist.Op.Mark_measured
               { caller; domain; base = b; len = Hw.Addr.Range.len range });
          Ok ()
        | Error e -> Error (tr_error ~shard:sh e))

let global_measured t domain =
  Mutex.protect t.meas_lock (fun () ->
      match Hashtbl.find_opt t.measured domain with
      | Some l -> List.rev !l
      | None -> [])

(* Seal. Validation and measurement happen at the front end — each
   global measured range is hashed on its owning shard's machine — then
   the folded digest is installed on every shard through the validated
   {!Monitor.install_seal} path. [Domain.seal] mutates only the
   (replicated) domain record, never the captree, so this is a
   deterministic broadcast, not a 2PC. *)
let seal t ~caller ~domain =
  write_all t (fun () ->
      let* d0 =
        match Monitor.find_domain (shard0 t).s_monitor domain with
        | Some d -> Ok d
        | None -> Error (Monitor.Unknown_domain domain)
      in
      let* () =
        if caller = domain || Domain.created_by d0 = Some caller then Ok ()
        else Error (Monitor.Denied "only the domain or its creator may configure it")
      in
      match Domain.entry_point d0 with
      | None -> Error (Monitor.Domain_config "cannot seal a domain without an entry point")
      | Some entry ->
        let exposed =
          Array.exists
            (fun s ->
              match Monitor.find_domain s.s_monitor domain with
              | None -> false
              | Some d ->
                Monitor.measured_exposures s.s_monitor ~domain (Domain.measured_ranges d)
                <> [])
            t.shards
        in
        if exposed then
          Error (Monitor.Denied "a measured region is already reachable by a foreign domain")
        else begin
          let ranges =
            List.map
              (fun r ->
                let sh = addr_shard (Hw.Addr.Range.base r) in
                let s = t.shards.(sh) in
                let pages =
                  (Hw.Addr.Range.len r + Hw.Addr.page_size - 1) / Hw.Addr.page_size
                in
                Hw.Cycles.charge s.s_machine.Hw.Machine.counter
                  (pages * Hw.Cycles.Cost.measurement_per_page);
                (r, Hw.Physmem.measure s.s_machine.Hw.Machine.mem (lrange ~shard:sh r)))
              (global_measured t domain)
          in
          let digest =
            Measure.domain_digest ~kind:(Domain.kind d0) ~entry_point:entry
              ~flush_on_transition:(Domain.flush_on_transition d0) ~ranges
          in
          let raw = Crypto.Sha256.to_raw digest in
          match
            broadcast t "seal" (fun m ->
                Result.map_error
                  (fun e -> Monitor.Domain_config e)
                  (Monitor.install_seal m ~caller ~domain ~measurement:raw))
          with
          | Ok () ->
            log_op t (Persist.Op.Seal { caller; domain; measurement = raw });
            Ok ()
          | Error _ as e -> e
        end)

(* --- two-phase commit: domain destruction --------------------------- *)

let prepare_fault = Fault.register "shard.prepare"
let commit_fault = Fault.register "shard.commit"
let tpc_abort_c = Obs.Metrics.counter "sharded.2pc.abort"
let tpc_commit_c = Obs.Metrics.counter "sharded.2pc.commit"

(* Destroying a domain is the one operation whose mutation set spans
   every shard (the revocation cascade runs wherever the domain holds
   or delegated capabilities), so it carries the 2PC:

     1. guards on every shard (read-only);
     2. PREPARE: open a transaction bracket on every shard and run the
        per-shard cascade into the open journals — any error, or an
        injected fault at [shard.prepare], aborts by rolling every
        journal back (all-or-nothing under fault, same contract as the
        single-monitor [with_txn]);
     3. COMMIT: close every journal. Per-shard commit is infallible
        in-memory work, so a fault injected at [shard.commit] after the
        decision is absorbed (counted, never partial) — the protocol
        has passed its commit point;
     4. post-commit: the un-journaled table removals, then the WAL
        append (redo contract: only fully committed ops reach the log). *)
let destroy_domain t ~caller ~domain =
  write_all t (fun () ->
      let guards =
        Array.fold_left
          (fun acc s ->
            match acc with
            | Error _ -> acc
            | Ok ds -> (
              match Monitor.destroy_guard s.s_monitor ~caller ~domain with
              | Ok d -> Ok (d :: ds)
              | Error e -> Error (tr_error ~shard:s.s_index e)))
          (Ok []) t.shards
      in
      match guards with
      | Error _ as e -> e
      | Ok rev_ds ->
        let ds = Array.of_list (List.rev rev_ds) in
        Array.iter (fun s -> Monitor.txn_begin s.s_monitor) t.shards;
        let rollback_all () =
          Array.iter (fun s -> Monitor.txn_rollback s.s_monitor) t.shards
        in
        (match
           let r =
             Array.fold_left
               (fun acc s ->
                 match acc with
                 | Error _ -> acc
                 | Ok () ->
                   Result.map_error (tr_error ~shard:s.s_index)
                     (Monitor.revoke_all_of s.s_monitor ~domain))
               (Ok ()) t.shards
           in
           (* Prepare is done: every journal holds its slice of the
              cascade. A fault here models losing the coordinator
              before the decision — the only sound outcome is global
              rollback. *)
           Fault.hit prepare_fault;
           r
         with
        | Ok () ->
          Array.iter
            (fun s ->
              (try Fault.hit commit_fault
               with Fault.Injected _ -> Obs.instant "sharded.2pc.commit_fault");
              Monitor.txn_commit s.s_monitor)
            t.shards;
          Array.iteri (fun i s -> Monitor.forget_domain s.s_monitor ds.(i)) t.shards;
          Mutex.protect t.meas_lock (fun () -> Hashtbl.remove t.measured domain);
          Obs.Metrics.incr tpc_commit_c;
          log_op t (Persist.Op.Destroy_domain { caller; domain });
          Ok ()
        | Error _ as e ->
          rollback_all ();
          Obs.Metrics.incr tpc_abort_c;
          e
        | exception Fault.Injected _ ->
          rollback_all ();
          Obs.Metrics.incr tpc_abort_c;
          Obs.instant "sharded.2pc.abort";
          Error (Monitor.Backend_failure "fault injected before the 2PC commit point (rolled back)")
        | exception e ->
          rollback_all ();
          Obs.Metrics.incr tpc_abort_c;
          raise e))

(* --- capability operations (single shard) --------------------------- *)

let with_cap_shard t cap f =
  let sh = cap_shard cap in
  if sh >= Array.length t.shards then
    Error (Monitor.Cap_error (Cap.Captree.No_such_capability cap))
  else f sh t.shards.(sh)

let share t ~caller ~cap ~to_ ~rights ~cleanup ?subrange () =
  with_cap_shard t cap (fun sh s ->
      let* sub =
        match subrange with
        | None -> Ok None
        | Some r -> (
          match local_sub ~shard:sh r with
          | Some l -> Ok (Some l)
          | None -> Error (Monitor.Cap_error Cap.Captree.Bad_subrange))
      in
      write s (fun () ->
          match
            Monitor.share s.s_monitor ~caller ~cap:(cap_local cap) ~to_ ~rights ~cleanup
              ?subrange:sub ()
          with
          | Ok c ->
            log_op t
              (Persist.Op.Share
                 { caller; cap; to_;
                   rights = rights_to_wire rights;
                   cleanup = cleanup_to_int cleanup;
                   sub = Option.map range_pair subrange });
            Ok (gcap ~shard:sh c)
          | Error e -> Error (tr_error ~shard:sh e)))

let grant t ~caller ~cap ~to_ ~rights ~cleanup =
  with_cap_shard t cap (fun sh s ->
      write s (fun () ->
          match Monitor.grant s.s_monitor ~caller ~cap:(cap_local cap) ~to_ ~rights ~cleanup with
          | Ok c ->
            log_op t
              (Persist.Op.Grant
                 { caller; cap; to_;
                   rights = rights_to_wire rights;
                   cleanup = cleanup_to_int cleanup });
            Ok (gcap ~shard:sh c)
          | Error e -> Error (tr_error ~shard:sh e)))

let split t ~caller ~cap ~at =
  with_cap_shard t cap (fun sh s ->
      let at_local = at - (sh * addr_stride) in
      if at_local < 0 || at_local >= addr_stride then
        Error (Monitor.Cap_error Cap.Captree.Bad_subrange)
      else
        write s (fun () ->
            match Monitor.split s.s_monitor ~caller ~cap:(cap_local cap) ~at:at_local with
            | Ok (a, b) ->
              log_op t (Persist.Op.Split { caller; cap; at });
              Ok (gcap ~shard:sh a, gcap ~shard:sh b)
            | Error e -> Error (tr_error ~shard:sh e)))

let carve t ~caller ~cap ~subrange =
  with_cap_shard t cap (fun sh s ->
      match local_sub ~shard:sh subrange with
      | None -> Error (Monitor.Cap_error Cap.Captree.Bad_subrange)
      | Some sub ->
        write s (fun () ->
            match Monitor.carve s.s_monitor ~caller ~cap:(cap_local cap) ~subrange:sub with
            | Ok c ->
              log_op t
                (Persist.Op.Carve
                   { caller; cap;
                     base = Hw.Addr.Range.base subrange;
                     len = Hw.Addr.Range.len subrange });
              Ok (gcap ~shard:sh c)
            | Error e -> Error (tr_error ~shard:sh e)))

let revoke t ~caller ~cap =
  with_cap_shard t cap (fun sh s ->
      write s (fun () ->
          match Monitor.revoke s.s_monitor ~caller ~cap:(cap_local cap) with
          | Ok () ->
            log_op t (Persist.Op.Revoke { caller; cap });
            Ok ()
          | Error e -> Error (tr_error ~shard:sh e)))

(* --- indexed queries (epoch/seqlock read path) ---------------------- *)

let caps_of t domain =
  Array.to_list t.shards
  |> List.concat_map (fun s ->
         read s (fun () -> Monitor.caps_of s.s_monitor domain)
         |> List.map (gcap ~shard:s.s_index))

let refcount t res =
  let sh = resource_shard t res in
  if sh < 0 || sh >= Array.length t.shards then 0
  else
    let s = t.shards.(sh) in
    read s (fun () ->
        Cap.Captree.refcount (Monitor.tree s.s_monitor) (local_resource t ~shard:sh res))

let holders t res =
  let sh = resource_shard t res in
  if sh < 0 || sh >= Array.length t.shards then []
  else
    let s = t.shards.(sh) in
    read s (fun () ->
        Cap.Captree.holders (Monitor.tree s.s_monitor) (local_resource t ~shard:sh res))

(* --- transitions and domain-context access -------------------------- *)

let with_core t core f =
  let sh = core_shard t core in
  if core < 0 || sh >= Array.length t.shards then
    Error (Monitor.Bad_transition (Printf.sprintf "no such core: %d" core))
  else f sh t.shards.(sh) (core_local t core)

let current_domain t ~core =
  Monitor.current_domain
    t.shards.(core_shard t core).s_monitor
    ~core:(core_local t core)

let call t ~core ~target =
  with_core t core (fun sh s lc ->
      write s (fun () ->
          match Monitor.call s.s_monitor ~core:lc ~target with
          | Ok p ->
            log_op t (Persist.Op.Call { core; target });
            Ok p
          | Error e -> Error (tr_error ~shard:sh e)))

let ret t ~core =
  with_core t core (fun sh s lc ->
      write s (fun () ->
          match Monitor.ret s.s_monitor ~core:lc with
          | Ok p ->
            log_op t (Persist.Op.Ret { core });
            Ok p
          | Error e -> Error (tr_error ~shard:sh e)))

let timer_tick t ~core =
  with_core t core (fun sh s lc ->
      write s (fun () ->
          match Monitor.timer_tick s.s_monitor ~core:lc with
          | Ok d ->
            (* Logged unconditionally (the single-monitor path logs only
               evictions); replaying a no-op tick is itself a no-op. *)
            log_op t (Persist.Op.Timer_tick { core });
            Ok d
          | Error e -> Error (tr_error ~shard:sh e)))

let route_interrupt t ~caller ~device ~vector ~core =
  with_core t core (fun _sh s lc ->
      let s0 = shard0 t in
      let holds_dev =
        read s0 (fun () ->
            List.mem caller
              (Cap.Captree.holders (Monitor.tree s0.s_monitor) (Cap.Resource.Device device)))
      in
      if not holds_dev then Error (Monitor.Denied "caller holds no capability for the device")
      else
        let holds_core =
          read s (fun () ->
              List.mem caller
                (Cap.Captree.holders (Monitor.tree s.s_monitor) (Cap.Resource.Cpu_core lc)))
        in
        if not holds_core then
          Error (Monitor.Denied "caller holds no capability for the target core")
        else
          locked s (fun () ->
              let ic = s.s_machine.Hw.Machine.interrupts in
              Hw.Interrupt.permit ic ~device ~vector;
              Hw.Interrupt.route ic ~vector ~core:lc;
              Ok ()))

let on_shard_addr t core addr f =
  with_core t core (fun sh s lc ->
      if addr_shard addr <> sh then
        Error
          (Monitor.Denied
             (Printf.sprintf "address 0x%x is not on core %d's shard" addr core))
      else f s lc (addr - (sh * addr_stride)))

let load t ~core addr =
  on_shard_addr t core addr (fun s lc a -> locked s (fun () -> Monitor.load s.s_monitor ~core:lc a))

let store t ~core addr v =
  on_shard_addr t core addr (fun s lc a ->
      locked s (fun () -> Monitor.store s.s_monitor ~core:lc a v))

let load_string t ~core r =
  on_shard_addr t core (Hw.Addr.Range.base r) (fun s lc a ->
      locked s (fun () ->
          Monitor.load_string s.s_monitor ~core:lc
            (Hw.Addr.Range.make ~base:a ~len:(Hw.Addr.Range.len r))))

let store_string t ~core addr str =
  on_shard_addr t core addr (fun s lc a ->
      locked s (fun () -> Monitor.store_string s.s_monitor ~core:lc a str))

let get_reg t ~core i =
  with_core t core (fun _sh s lc -> locked s (fun () -> Monitor.get_reg s.s_monitor ~core:lc i))

let set_reg t ~core i v =
  with_core t core (fun _sh s lc -> locked s (fun () -> Monitor.set_reg s.s_monitor ~core:lc i v))

(* --- aggregate attestation ------------------------------------------ *)

(* One body per shard (memoized per shard, under the shard lock — the
   memo table is not safe against concurrent optimistic readers),
   translated into the global namespace and concatenated in shard
   order. Order is immaterial: the attestation payload canonicalizes
   regions by address and cores/devices by id. *)
let attest_body t ~domain =
  Array.fold_left
    (fun acc s ->
      match acc with
      | Error _ -> acc
      | Ok (regions, cores, devices) -> (
        match locked s (fun () -> Monitor.attest_body_of s.s_monitor ~domain) with
        | Error e -> Error (tr_error ~shard:s.s_index e)
        | Ok (r, c, d) ->
          let sh = s.s_index in
          let r =
            List.map
              (fun (rr : Attestation.region_report) ->
                { rr with Attestation.range = grange ~shard:sh rr.Attestation.range })
              r
          in
          let c = List.map (fun (core, rc) -> (gcore t ~shard:sh core, rc)) c in
          Ok (regions @ r, cores @ c, devices @ d)))
    (Ok ([], [], []))
    t.shards

(* The global view of a domain record: shard 0's replica plus the
   front end's global measured-range list. *)
let global_domain t domain =
  match Monitor.find_domain (shard0 t).s_monitor domain with
  | None -> Error (Monitor.Unknown_domain domain)
  | Some d ->
    Ok
      ( d,
        Domain.restore ~id:(Domain.id d) ~name:(Domain.name d) ~kind:(Domain.kind d)
          ~created_by:(Domain.created_by d) ~sealed:(Domain.is_sealed d)
          ~entry_point:(Domain.entry_point d) ~measured:(global_measured t domain)
          ~flush_on_transition:(Domain.flush_on_transition d)
          ~measurement:(Domain.measurement d) )

let attest t ~caller ~domain ~nonce =
  let* _ =
    match Monitor.find_domain (shard0 t).s_monitor caller with
    | Some d -> Ok d
    | None -> Error (Monitor.Unknown_domain caller)
  in
  let* d0, global = global_domain t domain in
  let* regions, cores, devices = attest_body t ~domain in
  let encrypted =
    (Monitor.backend (shard0 t).s_monitor).Backend_intf.domain_encrypted d0
  in
  Mutex.protect t.signer_lock (fun () ->
      t.attests <- t.attests + 1;
      Ok
        (Attestation.sign ~signer:t.signer ~domain:global ~regions ~cores ~devices
           ~memory_encrypted:encrypted ~nonce))

let find_domain t id = Monitor.find_domain (shard0 t).s_monitor id
let attest_count t = t.attests
let observe (_ : t) = Obs.report ()

(* --- API dispatch (mirrors Api.dispatch over the global namespace) -- *)

let dispatch t ~caller ~core (call_ : Api.call) : Api.response =
  try
    match call_ with
    | Api.Create_domain { name; kind } ->
      Result.map (fun d -> Api.R_domain d) (create_domain t ~caller ~name ~kind)
    | Api.Set_entry_point { domain; entry } ->
      Result.map (fun () -> Api.R_unit) (set_entry_point t ~caller ~domain entry)
    | Api.Set_flush_policy { domain; flush } ->
      Result.map (fun () -> Api.R_unit) (set_flush_policy t ~caller ~domain flush)
    | Api.Mark_measured { domain; range } ->
      Result.map (fun () -> Api.R_unit) (mark_measured t ~caller ~domain range)
    | Api.Seal { domain } -> Result.map (fun () -> Api.R_unit) (seal t ~caller ~domain)
    | Api.Destroy { domain } ->
      Result.map (fun () -> Api.R_unit) (destroy_domain t ~caller ~domain)
    | Api.Share { cap; to_; rights; cleanup; subrange } ->
      Result.map (fun c -> Api.R_cap c)
        (share t ~caller ~cap ~to_ ~rights ~cleanup ?subrange ())
    | Api.Grant { cap; to_; rights; cleanup } ->
      Result.map (fun c -> Api.R_cap c) (grant t ~caller ~cap ~to_ ~rights ~cleanup)
    | Api.Split { cap; at } ->
      Result.map (fun (a, b) -> Api.R_cap_pair (a, b)) (split t ~caller ~cap ~at)
    | Api.Carve { cap; subrange } ->
      Result.map (fun c -> Api.R_cap c) (carve t ~caller ~cap ~subrange)
    | Api.Revoke { cap } -> Result.map (fun () -> Api.R_unit) (revoke t ~caller ~cap)
    | Api.Enumerate -> Ok (Api.R_caps (caps_of t caller))
    | Api.Attest { domain; nonce } ->
      Result.map (fun a -> Api.R_attestation a) (attest t ~caller ~domain ~nonce)
    | Api.Call { target } ->
      if current_domain t ~core <> caller then
        Error (Monitor.Bad_transition "caller is not current on this core")
      else Result.map (fun p -> Api.R_path p) (call t ~core ~target)
    | Api.Return ->
      if current_domain t ~core <> caller then
        Error (Monitor.Bad_transition "caller is not current on this core")
      else Result.map (fun p -> Api.R_path p) (ret t ~core)
  with
  | Invalid_argument msg -> Error (Monitor.Denied ("invalid argument: " ^ msg))
  | Failure msg -> Error (Monitor.Denied ("failure: " ^ msg))

(* --- durability ------------------------------------------------------ *)

let enable_persistence t ~store ?(fsync_every = 1) ?(latency_bound = max_int) () =
  let group =
    Persist.Group.create ~max_batch:fsync_every ~latency_bound
      ~now:(fun () -> Hw.Machine.cycles (shard0 t).s_machine)
      store ~blob:Persist.Store.wal_blob ~durable_seq:0
  in
  t.persist <-
    Some { fp_group = group; fp_lock = Mutex.create (); fp_seq = 0; fp_replaying = false }

let flush t = match t.persist with None -> () | Some fp -> Persist.Group.flush fp.fp_group
let persist_seq t = Option.map (fun fp -> fp.fp_seq) t.persist
let durable_seq t = Option.map (fun fp -> Persist.Group.durable_seq fp.fp_group) t.persist

(* Replay one global-id record through the normal sharded entry points
   (logging muted by [fp_replaying]) — the sharded mirror of
   [Monitor.replay_op]. *)
let replay_op t (op : Persist.Op.t) =
  let mon r = Result.map_error Monitor.error_to_string (Result.map ignore r) in
  match op with
  | Persist.Op.Create_domain { caller; name; kind } -> (
    match kind_of_int kind with
    | None -> Error (Printf.sprintf "unknown domain kind %d" kind)
    | Some kind -> mon (create_domain t ~caller ~name ~kind))
  | Persist.Op.Set_entry_point { caller; domain; entry } ->
    mon (set_entry_point t ~caller ~domain entry)
  | Persist.Op.Set_flush_policy { caller; domain; flush } ->
    mon (set_flush_policy t ~caller ~domain flush)
  | Persist.Op.Mark_measured { caller; domain; base; len } ->
    mon (mark_measured t ~caller ~domain (pair_range (base, len)))
  | Persist.Op.Seal { caller; domain; measurement } ->
    (* Memory contents are not durable: install the recorded digest
       verbatim on every shard, as the single-monitor replay does. *)
    Result.map_error
      (fun e -> Monitor.error_to_string e)
      (write_all t (fun () ->
           broadcast t "seal replay" (fun m ->
               Result.map_error
                 (fun e -> Monitor.Domain_config e)
                 (Monitor.install_seal m ~caller ~domain ~measurement))))
  | Persist.Op.Destroy_domain { caller; domain } -> mon (destroy_domain t ~caller ~domain)
  | Persist.Op.Share { caller; cap; to_; rights; cleanup; sub } -> (
    match cleanup_of_int cleanup with
    | None -> Error (Printf.sprintf "unknown cleanup policy %d" cleanup)
    | Some cleanup -> (
      let rights = rights_of_wire rights in
      match sub with
      | Some p -> mon (share t ~caller ~cap ~to_ ~rights ~cleanup ~subrange:(pair_range p) ())
      | None -> mon (share t ~caller ~cap ~to_ ~rights ~cleanup ())))
  | Persist.Op.Grant { caller; cap; to_; rights; cleanup } -> (
    match cleanup_of_int cleanup with
    | None -> Error (Printf.sprintf "unknown cleanup policy %d" cleanup)
    | Some cleanup ->
      mon (grant t ~caller ~cap ~to_ ~rights:(rights_of_wire rights) ~cleanup))
  | Persist.Op.Split { caller; cap; at } -> mon (split t ~caller ~cap ~at)
  | Persist.Op.Carve { caller; cap; base; len } ->
    mon (carve t ~caller ~cap ~subrange:(pair_range (base, len)))
  | Persist.Op.Revoke { caller; cap } -> mon (revoke t ~caller ~cap)
  | Persist.Op.Call { core; target } -> mon (call t ~core ~target)
  | Persist.Op.Ret { core } -> mon (ret t ~core)
  | Persist.Op.Timer_tick { core } -> mon (timer_tick t ~core)

type recovery_report = {
  sr_wal_records : int;
  sr_replayed : int;
  sr_wal_truncated : bool;
  sr_stopped_early : string option;
}

(* Crash-restart for a sharded deployment: boot a fresh federation and
   redo the whole front-end WAL through the sharded dispatch (the
   front end keeps no snapshots — its log is the full history; shard
   checkpointing is future work). Fault injection is masked during
   replay, as in [Monitor.recover]. *)
let recover ?shards ?signer_height ?keypool ~rng ~mk ~store () =
  let t = boot ?shards ?signer_height ?keypool ~rng ~mk () in
  let wal = Persist.Wal.read store ~blob:Persist.Store.wal_blob in
  enable_persistence t ~store ();
  let fp = Option.get t.persist in
  fp.fp_replaying <- true;
  let applied, stopped =
    Fun.protect
      ~finally:(fun () -> fp.fp_replaying <- false)
      (fun () ->
        Fault.suspend (fun () ->
            let rec go expected applied = function
              | [] -> (applied, None)
              | (seq, payload) :: rest ->
                if seq <> expected then
                  ( applied,
                    Some (Printf.sprintf "sequence gap: expected %d, found %d" expected seq) )
                else (
                  match Persist.Op.decode payload with
                  | exception Persist.Wire.Corrupt why ->
                    (applied, Some (Printf.sprintf "undecodable record at seq %d: %s" seq why))
                  | op -> (
                    match replay_op t op with
                    | Ok () ->
                      fp.fp_seq <- seq;
                      go (seq + 1) (applied + 1) rest
                    | Error why ->
                      ( applied,
                        Some
                          (Format.asprintf "replay of %a (seq %d) failed: %s" Persist.Op.pp
                             op seq why) )
                    | exception e ->
                      ( applied,
                        Some
                          (Printf.sprintf "replay raised at seq %d: %s" seq
                             (Printexc.to_string e)) )))
            in
            go 1 0 wal.Persist.Wal.records))
  in
  Persist.Group.note_durable fp.fp_group ~seq:fp.fp_seq;
  ( t,
    { sr_wal_records = List.length wal.Persist.Wal.records;
      sr_replayed = applied;
      sr_wal_truncated = wal.Persist.Wal.truncated;
      sr_stopped_early = stopped } )
