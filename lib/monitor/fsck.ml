(* Post-recovery consistency check ("monitor fsck"). Recovery never
   trusts a store blindly: after the snapshot is restored and the WAL
   suffix replayed, this pass cross-checks the rebuilt state against
   every runtime invariant, the incremental indexes' full-scan
   references, and — when the caller kept pre-crash attestations — the
   attestation bodies themselves. *)

let src = Logs.Src.create "tyche.fsck" ~doc:"post-recovery consistency check"

module Log = (val Logs.src_log src : Logs.LOG)

type item = {
  f_name : string;
  f_ok : bool;
  f_detail : string list;
}

type report = { items : item list }

let ok r = List.for_all (fun i -> i.f_ok) r.items

let of_violations name vs =
  { f_name = name;
    f_ok = vs = [];
    f_detail =
      List.map
        (fun v -> v.Invariants.rule ^ ": " ^ v.Invariants.detail)
        vs }

let body_equal a b = String.equal (Attestation.payload a) (Attestation.payload b)

(* Re-attest each baseline domain under its original nonce and compare
   canonical payloads byte for byte. The signature necessarily differs
   (recovery generates a fresh one-time signer — private keys are not
   durable), but the signed *body* is a pure function of the tree and
   domain state, so any divergence means recovery lost or invented
   state. *)
let check_attest_baseline t baseline =
  let fail = ref [] in
  List.iter
    (fun (domain, (pre : Attestation.t)) ->
      match Monitor.attest t ~caller:Domain.initial ~domain ~nonce:pre.Attestation.nonce with
      | Ok post ->
        if not (body_equal pre post) then
          fail := Printf.sprintf "domain %d: attestation body diverged" domain :: !fail
      | Error e ->
        fail :=
          Printf.sprintf "domain %d: attest failed: %s" domain (Monitor.error_to_string e)
          :: !fail)
    baseline;
  { f_name = "attest-body"; f_ok = !fail = []; f_detail = List.rev !fail }

(* The clean-up oracle's quiescence pass: guarded taint is residue a
   policy promised to clean — it may exist only inside the API call
   that created it (the deferred zero/flush at commit erases it), so
   any guarded entry visible here is a clean-up that never ran. A
   nonzero leak count means some domain already *observed* foreign
   guarded residue (in Record mode, where the oracle counts instead of
   raising). *)
let check_taint t =
  let tt = (Monitor.machine t).Hw.Machine.taint in
  let residue =
    List.map
      (fun (surface, addr, prior) ->
        Printf.sprintf "guarded %s residue of domain %d at 0x%x"
          (Hw.Taint.surface_to_string surface) prior addr)
      (Hw.Taint.guarded_residue tt)
  in
  let st = Hw.Taint.stats tt in
  let leaks =
    if st.Hw.Taint.leaks = 0 then []
    else
      [ Printf.sprintf "%d cross-domain leak(s) observed%s" st.Hw.Taint.leaks
          (match Hw.Taint.last_leak tt with
          | Some l -> Format.asprintf " (last: %a)" Hw.Taint.pp_leak l
          | None -> "") ]
  in
  let detail = residue @ leaks in
  { f_name = "taint"; f_ok = detail = []; f_detail = detail }

let check ?baseline t =
  let index_refs =
    match Cap.Captree.check_index_consistency (Monitor.tree t) with
    | Ok () -> []
    | Error e -> [ { Invariants.rule = "index-reference"; detail = e } ]
  in
  let items =
    [ of_violations "tree" (Invariants.check_tree t);
      of_violations "indexes" (Invariants.check_index t @ index_refs);
      of_violations "hardware" (Invariants.check_hardware_matches_tree t);
      of_violations "sealed" (Invariants.check_sealed_unextended t);
      of_violations "tlb" (Invariants.check_no_stale_tlb t);
      of_violations "refcounts" (Invariants.check_refcounts t);
      of_violations "remote" (Invariants.check_remote t);
      check_taint t ]
  in
  let items =
    match baseline with
    | Some b -> items @ [ check_attest_baseline t b ]
    | None -> items
  in
  let r = { items } in
  if not (ok r) then
    Log.warn (fun m ->
        m "fsck found inconsistencies in %d of %d passes"
          (List.length (List.filter (fun i -> not i.f_ok) items))
          (List.length items));
  r

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun i ->
      Format.fprintf fmt "%-12s %s@," i.f_name (if i.f_ok then "ok" else "FAILED");
      List.iter (fun d -> Format.fprintf fmt "  - %s@," d) i.f_detail)
    r.items;
  Format.fprintf fmt "verdict: %s@]" (if ok r then "clean" else "INCONSISTENT")
