(** A federation of per-shard monitors behind one global namespace.

    Each shard is a complete world — its own machine, backend, TPM and
    {!Monitor.t} — pinned to (at most) one OCaml Domain's worth of
    mutation at a time by a per-shard lock. Isolation domains are
    replicated across every shard; resources and capability subtrees
    live on exactly one. Global ids are stateless encodings of
    [(shard, local)]: capability [local lsl 6 lor shard], address
    [shard * 2^40 + local], core [shard * cores_per_shard + local] —
    shard-count invariant for workloads confined to shard 0.

    Readers of the indexed queries ({!refcount}, {!holders},
    {!caps_of}) run an optimistic seqlock protocol and never block
    writers. Cross-shard mutations (domain destruction) run a
    two-phase commit over the per-monitor transaction brackets:
    all-or-nothing under injected faults at the [shard.prepare] and
    [shard.commit] points. Durability is a single front-end redo log
    in global ids, appended post-commit (the WAL contract of
    {!Monitor} unchanged). *)

type t

val max_shards : int
val addr_stride : int

(** {2 Id translation} *)

val gcap : shard:int -> Cap.Captree.cap_id -> Cap.Captree.cap_id
val cap_shard : Cap.Captree.cap_id -> int
val cap_local : Cap.Captree.cap_id -> Cap.Captree.cap_id
val gaddr : shard:int -> Hw.Addr.t -> Hw.Addr.t
val grange : shard:int -> Hw.Addr.Range.t -> Hw.Addr.Range.t

(** {2 Boot} *)

val default_shards : unit -> int
(** The [TYCHE_SHARDS] environment knob (default 1, clamped to
    [1..max_shards]). *)

val boot :
  ?shards:int ->
  ?signer_height:int ->
  ?keypool:Crypto.Keypool.t ->
  rng:Crypto.Rng.t ->
  mk:
    (shard:int ->
    Hw.Machine.t * Backend_intf.t * Rot.Tpm.t * Crypto.Rng.t * Hw.Addr.Range.t) ->
  unit ->
  t
(** Boot [shards] worlds (default {!default_shards}); [mk ~shard:i]
    supplies shard [i]'s machine, backend, TPM, rng and monitor range.
    Every shard must have the same core count, and shard memory must
    fit the address stride. [rng] feeds the federation's
    aggregate-attestation signer, whose root is bound into shard 0's
    TPM (PCR {!Monitor.key_binding_pcr}). *)

val shard_count : t -> int
val cores : t -> int
val cores_per_shard : t -> int
val shard_monitor : t -> int -> Monitor.t

(** {2 Domain lifecycle (broadcast; destroy is the 2PC)} *)

val create_domain :
  t -> caller:Domain.id -> name:string -> kind:Domain.kind -> (Domain.id, Monitor.error) result

val find_domain : t -> Domain.id -> Domain.t option

val set_entry_point :
  t -> caller:Domain.id -> domain:Domain.id -> Hw.Addr.t -> (unit, Monitor.error) result

val set_flush_policy :
  t -> caller:Domain.id -> domain:Domain.id -> bool -> (unit, Monitor.error) result

val mark_measured :
  t -> caller:Domain.id -> domain:Domain.id -> Hw.Addr.Range.t -> (unit, Monitor.error) result

val seal : t -> caller:Domain.id -> domain:Domain.id -> (unit, Monitor.error) result

val destroy_domain :
  t -> caller:Domain.id -> domain:Domain.id -> (unit, Monitor.error) result
(** Two-phase commit across every shard. Fault points: ["shard.prepare"]
    fires after every journal is prepared but before the commit
    decision (global rollback, error returned); ["shard.commit"] fires
    per-shard after the decision and is absorbed — post-decision
    commits are infallible in-memory work. *)

(** {2 Capability operations (owning shard only)} *)

val caps_of : t -> Domain.id -> Cap.Captree.cap_id list

val share :
  t ->
  caller:Domain.id ->
  cap:Cap.Captree.cap_id ->
  to_:Domain.id ->
  rights:Cap.Rights.t ->
  cleanup:Cap.Revocation.t ->
  ?subrange:Hw.Addr.Range.t ->
  unit ->
  (Cap.Captree.cap_id, Monitor.error) result

val grant :
  t ->
  caller:Domain.id ->
  cap:Cap.Captree.cap_id ->
  to_:Domain.id ->
  rights:Cap.Rights.t ->
  cleanup:Cap.Revocation.t ->
  (Cap.Captree.cap_id, Monitor.error) result

val split :
  t -> caller:Domain.id -> cap:Cap.Captree.cap_id -> at:Hw.Addr.t ->
  (Cap.Captree.cap_id * Cap.Captree.cap_id, Monitor.error) result

val carve :
  t -> caller:Domain.id -> cap:Cap.Captree.cap_id -> subrange:Hw.Addr.Range.t ->
  (Cap.Captree.cap_id, Monitor.error) result

val revoke :
  t -> caller:Domain.id -> cap:Cap.Captree.cap_id -> (unit, Monitor.error) result

(** {2 Indexed queries (lock-free read path)} *)

val refcount : t -> Cap.Resource.t -> int
val holders : t -> Cap.Resource.t -> Domain.id list

(** {2 Transitions and domain-context access} *)

val current_domain : t -> core:int -> Domain.id

val call :
  t -> core:int -> target:Domain.id ->
  (Backend_intf.transition_path, Monitor.error) result

val ret : t -> core:int -> (Backend_intf.transition_path, Monitor.error) result
val timer_tick : t -> core:int -> (Domain.id, Monitor.error) result

val route_interrupt :
  t -> caller:Domain.id -> device:int -> vector:int -> core:int ->
  (unit, Monitor.error) result

val load : t -> core:int -> Hw.Addr.t -> (int, Monitor.error) result
val store : t -> core:int -> Hw.Addr.t -> int -> (unit, Monitor.error) result
val load_string : t -> core:int -> Hw.Addr.Range.t -> (string, Monitor.error) result
val store_string : t -> core:int -> Hw.Addr.t -> string -> (unit, Monitor.error) result
val get_reg : t -> core:int -> int -> (int, Monitor.error) result
val set_reg : t -> core:int -> int -> int -> (unit, Monitor.error) result

(** {2 Attestation} *)

val attest :
  t -> caller:Domain.id -> domain:Domain.id -> nonce:string ->
  (Attestation.t, Monitor.error) result
(** One aggregate attestation: per-shard bodies translated into the
    global namespace, concatenated, and signed by the federation
    signer. *)

val attestation_root : t -> Crypto.Sha256.digest
val boot_quote : t -> nonce:string -> Rot.Tpm.Quote.t
val attest_count : t -> int

(** {2 API dispatch} *)

val dispatch : t -> caller:Domain.id -> core:int -> Api.call -> Api.response
(** The sharded mirror of {!Api.dispatch}, over global ids. *)

(** {2 Durability} *)

val enable_persistence :
  t -> store:Persist.Store.t -> ?fsync_every:int -> ?latency_bound:int -> unit -> unit

val flush : t -> unit
val persist_seq : t -> int option
val durable_seq : t -> int option

type recovery_report = {
  sr_wal_records : int;
  sr_replayed : int;
  sr_wal_truncated : bool;
  sr_stopped_early : string option;
}

val recover :
  ?shards:int ->
  ?signer_height:int ->
  ?keypool:Crypto.Keypool.t ->
  rng:Crypto.Rng.t ->
  mk:
    (shard:int ->
    Hw.Machine.t * Backend_intf.t * Rot.Tpm.t * Crypto.Rng.t * Hw.Addr.Range.t) ->
  store:Persist.Store.t ->
  unit ->
  t * recovery_report

(** {2 Telemetry} *)

val observe : t -> Obs.report
