type id = int

let initial = 0

type kind = Os | Sandbox | Enclave | Confidential_vm | Io_domain | Remote

let kind_to_string = function
  | Os -> "os"
  | Sandbox -> "sandbox"
  | Enclave -> "enclave"
  | Confidential_vm -> "confidential-vm"
  | Io_domain -> "io-domain"
  | Remote -> "remote"

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type t = {
  id : id;
  name : string;
  kind : kind;
  created_by : id option;
  mutable sealed : bool;
  mutable entry_point : Hw.Addr.t option;
  mutable measured : Hw.Addr.Range.t list;
  mutable flush_on_transition : bool;
  mutable measurement : Crypto.Sha256.digest option;
  (* Volatile: a live-migration source sets this while the domain is
     streamed out, so the monitor refuses runs/config/attach until the
     transfer commits or aborts. Never serialized — a crash-restart
     clears it, and the migration journal re-establishes it on resume. *)
  mutable migrating : bool;
}

let make ~id ~name ~kind ~created_by =
  { id; name; kind; created_by; sealed = false; entry_point = None; measured = [];
    flush_on_transition = false; measurement = None; migrating = false }

(* Recovery-only constructor: rebuilds a domain from a snapshot,
   including post-seal state [make] can never produce. [measured] is in
   declaration order, as [measured_ranges] reports it; storage is
   most-recent-first. *)
let restore ~id ~name ~kind ~created_by ~sealed ~entry_point ~measured
    ~flush_on_transition ~measurement =
  { id; name; kind; created_by; sealed; entry_point; measured = List.rev measured;
    flush_on_transition; measurement; migrating = false }

let id t = t.id
let name t = t.name
let kind t = t.kind
let created_by t = t.created_by
let asid t = t.id
let is_sealed t = t.sealed
let entry_point t = t.entry_point

let set_entry_point t a =
  if t.sealed then Error "domain is sealed" else (t.entry_point <- Some a; Ok ())

let measured_ranges t = List.rev t.measured

let add_measured_range t r =
  if t.sealed then Error "domain is sealed" else (t.measured <- r :: t.measured; Ok ())

let flush_on_transition t = t.flush_on_transition
let set_flush_on_transition t v = t.flush_on_transition <- v

let seal t ~measurement =
  if t.sealed then Error "domain already sealed"
  else if t.entry_point = None then Error "cannot seal a domain without an entry point"
  else begin
    t.sealed <- true;
    t.measurement <- Some measurement;
    Ok ()
  end

let measurement t = t.measurement
let is_migrating t = t.migrating
let set_migrating t v = t.migrating <- v

let pp fmt t =
  Format.fprintf fmt "domain#%d(%s,%a%s)" t.id t.name pp_kind t.kind
    (if t.sealed then ",sealed" else "")
