type transition_path = Fast_switch | Trap_roundtrip

let pp_transition_path fmt = function
  | Fast_switch -> Format.pp_print_string fmt "fast-switch"
  | Trap_roundtrip -> Format.pp_print_string fmt "trap-roundtrip"

type t = {
  backend_name : string;
  domain_created : Domain.t -> unit;
  domain_destroyed : Domain.t -> unit;
  apply_effect : Cap.Captree.effect -> (unit, string) result;
  validate_attach : Domain.t -> Cap.Resource.t -> (unit, string) result;
  transition :
    core:Hw.Cpu.t -> from_:Domain.t -> to_:Domain.t -> flush_microarch:bool ->
    (transition_path, string) result;
  launch : core:Hw.Cpu.t -> Domain.t -> unit;
  domain_reaches : Domain.t -> Hw.Addr.Range.t -> bool;
  domain_encrypted : Domain.t -> bool;
  txn_begin : unit -> unit;
  txn_commit : unit -> unit;
  txn_rollback : unit -> unit;
}
