(** The isolation monitor: the executive branch (§3).

    The monitor owns the capability tree, validates every operation, and
    drives the platform backend so hardware always reflects the tree. It
    is deliberately *not* a resource manager: it never chooses which
    resources a domain gets — it only validates sharing, granting and
    revocation requested by the software running in domains (§3.5).

    Every API entry point takes a [caller] domain id, modelling the
    VMCALL/ecall channel: the hardware tells the monitor which domain
    trapped in, and authorization is decided from the capability tree,
    never from privilege. *)

type t

type error =
  | Cap_error of Cap.Captree.error
  | Unknown_domain of Domain.id
  | Denied of string (** Caller lacks the authority for the operation. *)
  | Backend_refused of string (** Layout/enforcement validation failed. *)
  | Backend_failure of string
  (** A hardware effect failed mid-operation (an injected fault, PMP
      exhaustion discovered while reprogramming). The operation was
      rolled back: the capability tree and all hardware state are
      exactly as before the call. Mutating API calls never raise. *)
  | Bad_transition of string
  | Domain_config of string (** Sealing/entry-point state errors. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** {2 Boot} *)

val boot :
  ?signer_height:int ->
  ?keypool:Crypto.Keypool.t ->
  Hw.Machine.t ->
  backend:Backend_intf.t ->
  tpm:Rot.Tpm.t ->
  rng:Crypto.Rng.t ->
  monitor_range:Hw.Addr.Range.t ->
  t
(** Take control of a freshly measured-booted machine: generate the
    monitor's attestation key (capacity [2^signer_height] attestations,
    default 64) and bind it into the TPM (PCR 18), create domain 0 (the
    OS) and endow it with every resource except the monitor's own
    memory, and mark every core as running domain 0. When [keypool] is
    given, the attestation signer draws its pregenerated one-time keys
    from it and keeps it eagerly replenished (see {!Crypto.Keypool}). *)

val machine : t -> Hw.Machine.t
val tree : t -> Cap.Captree.t
val backend : t -> Backend_intf.t
val attestation_root : t -> Crypto.Sha256.digest
(** The monitor's public attestation key (verifiers obtain it via the
    TPM quote binding, see {!boot_quote}). *)

val key_binding_pcr : int
(** PCR 18: extended at boot with the monitor's attestation root. *)

(** {2 Domain lifecycle} *)

val create_domain :
  t -> caller:Domain.id -> name:string -> kind:Domain.kind -> (Domain.id, error) result
(** Any domain may create child domains (the separation-of-powers point:
    isolation policy is not a privileged operation). *)

val find_domain : t -> Domain.id -> Domain.t option
val domains : t -> Domain.t list

val set_entry_point :
  t -> caller:Domain.id -> domain:Domain.id -> Hw.Addr.t -> (unit, error) result
(** Creator or the domain itself, before sealing. *)

val set_flush_policy :
  t -> caller:Domain.id -> domain:Domain.id -> bool -> (unit, error) result

val mark_measured :
  t -> caller:Domain.id -> domain:Domain.id -> Hw.Addr.Range.t -> (unit, error) result
(** Declare that a range counts toward the domain's measurement. The
    range must already be held by the domain. *)

val measured_exposures :
  t -> domain:Domain.id -> Hw.Addr.Range.t list -> (Hw.Addr.Range.t * Domain.id) list
(** [(range, holder)] pairs where a foreign domain can reach one of the
    given ranges even though the domain's own access to it is
    exclusive-lineage (root/grant/split all the way up) and the holder's
    access does not descend from the domain's capabilities. Empty for
    ranges the domain no longer holds, and for ranges the domain itself
    received through a foreign share (never exclusive, so the sealed
    guarantee does not attach). [seal] refuses when non-empty;
    [Invariants.check_sealed_unextended] audits the same predicate. *)

val seal : t -> caller:Domain.id -> domain:Domain.id -> (unit, error) result
(** Freeze the domain: measure its measured ranges (current memory
    content), fix the entry point, and refuse any future capability
    attachment to it. Creator or self only. Refuses while a measured
    region is exposed per {!measured_exposures} — exposure that exists
    at seal time could never be retracted afterwards. *)

val destroy_domain :
  t -> caller:Domain.id -> domain:Domain.id -> (unit, error) result
(** Revoke every capability the domain holds (running clean-up policies)
    and delete it. Creator only; domain 0 is indestructible. *)

(** {2 Live-migration freeze}

    While a domain's image is being streamed to another monitor
    ([Distributed.Migrate]), the local copy must be inert: frozen-but-
    alive on the source until the target's verified commit, and parked
    pre-commit on the target. {!freeze_domain} latches the domain
    (volatile — crash-restart clears it; the migration journal
    re-freezes on resume) and freezes every capability it holds, so
    runs, configuration, attachment, destruction and revocation of (or
    under) its holdings are all refused until {!thaw_domain}. *)

val freeze_domain : t -> domain:Domain.id -> (unit, error) result
(** Refused for domain 0 and for a domain currently running or on a
    return stack. Idempotent. *)

val thaw_domain : t -> domain:Domain.id -> (unit, error) result
(** Release the latch and thaw the domain's capabilities. Idempotent. *)

val domain_frozen : t -> domain:Domain.id -> bool

(** {2 Capability operations (the legislative interface)} *)

val caps_of : t -> Domain.id -> Cap.Captree.cap_id list

val share :
  t ->
  caller:Domain.id ->
  cap:Cap.Captree.cap_id ->
  to_:Domain.id ->
  rights:Cap.Rights.t ->
  cleanup:Cap.Revocation.t ->
  ?subrange:Hw.Addr.Range.t ->
  unit ->
  (Cap.Captree.cap_id, error) result
(** Caller must own the capability; the target must exist and — for
    memory resources — be unsealed (sealing freezes a domain's memory
    footprint; core and device delegation stays dynamic and refcount-
    visible); the backend must accept the resulting layout. *)

val grant :
  t ->
  caller:Domain.id ->
  cap:Cap.Captree.cap_id ->
  to_:Domain.id ->
  rights:Cap.Rights.t ->
  cleanup:Cap.Revocation.t ->
  (Cap.Captree.cap_id, error) result

val split :
  t -> caller:Domain.id -> cap:Cap.Captree.cap_id -> at:Hw.Addr.t ->
  (Cap.Captree.cap_id * Cap.Captree.cap_id, error) result

val carve :
  t -> caller:Domain.id -> cap:Cap.Captree.cap_id -> subrange:Hw.Addr.Range.t ->
  (Cap.Captree.cap_id, error) result

val revoke :
  t -> caller:Domain.id -> cap:Cap.Captree.cap_id -> (unit, error) result
(** Cascading revocation of the capability's whole subtree. The caller
    must own the capability or an ancestor of it; clean-up policies run
    before anything is reattached. *)

val may_revoke :
  t -> caller:Domain.id -> Cap.Captree.cap_id -> (unit, error) result
(** The authorization check {!revoke} performs, by itself: [Ok ()] iff
    [caller] owns the capability or an ancestor of it. Read-only.
    Callers that must do irreversible work {e before} the local cascade
    runs (e.g. cross-machine revocation, which tells remote holders to
    drop their imports first) use this to refuse unauthorized requests
    up front. *)

(** {2 Transitions (mediated control transfers, §3.1)} *)

val current_domain : t -> core:int -> Domain.id

val call :
  t -> core:int -> target:Domain.id -> (Backend_intf.transition_path, error) result
(** Transfer control of [core] from its current domain to [target]'s
    entry point. Requires: target sealed, target holds a capability for
    the core. The caller is pushed on the core's return stack. If either
    side requests micro-architectural flushing, the slow path is forced
    and caches are flushed. *)

val ret : t -> core:int -> (Backend_intf.transition_path, error) result
(** Return to the domain that performed the matching {!call}. Stack
    entries that no longer hold a capability for the core (revoked while
    suspended) are skipped — a revoked domain cannot be resumed through
    a stale return path. *)

val call_depth : t -> core:int -> int

(** {2 Scheduling guarantees and interrupt routing (§4.1 extensions)}

    The paper explores extending capabilities "to provide scheduling
    guarantees, cross-domain interrupt routing, and expose denial of
    service attacks". Here: core capabilities double as scheduling
    rights (the timer evicts squatters that no longer hold the core),
    and interrupt routes are only programmable by a domain holding both
    the device and the target core. *)

val timer_tick : t -> core:int -> (Domain.id, error) result
(** The per-core timer interrupt, handled by the monitor. If the
    domain currently running on [core] still holds a capability for it,
    nothing changes. If not — its core capability was revoked or granted
    away — the monitor evicts it: the return stack is cleared and
    control transfers to the domain holding the core exclusively (or to
    domain 0 if holders are ambiguous and it holds the core). Returns
    the domain now running. This is what turns an exclusively-held core
    capability into a *guarantee* rather than a convention. *)

val route_interrupt :
  t ->
  caller:Domain.id ->
  device:int ->
  vector:int ->
  core:int ->
  (unit, error) result
(** Program the interrupt-remapping fabric so [device] may raise
    [vector], steered to [core]. The caller must hold active
    capabilities for both the device and the core — interrupt routing is
    a resource delegation like any other, not a privileged operation.
    Revoking the device capability tears its routes down (backends call
    {!Hw.Interrupt.revoke_device} on device detach). *)

(** {2 Domain-context memory access}

    These model instructions executed by the current domain on a core;
    the hardware (EPT or PMP) checks them, which is how tests observe
    enforcement rather than trusting the bookkeeping. *)

val get_reg : t -> core:int -> int -> (int, error) result
val set_reg : t -> core:int -> int -> int -> (unit, error) result
(** General-purpose registers of the domain currently on the core. The
    monitor context-switches the register file on every transition and
    zeroes it on a domain's first entry, so register contents never leak
    across domains (tested in the E12 suite). *)

val load : t -> core:int -> Hw.Addr.t -> (int, error) result
val store : t -> core:int -> Hw.Addr.t -> int -> (unit, error) result
val load_string : t -> core:int -> Hw.Addr.Range.t -> (string, error) result
val store_string : t -> core:int -> Hw.Addr.t -> string -> (unit, error) result

(** {2 Attestation (the judiciary interface, §3.4)} *)

val attest :
  t -> caller:Domain.id -> domain:Domain.id -> nonce:string ->
  (Attestation.t, error) result
(** Produce the signed tier-two report for a domain. Any domain (and
    the remote verifier, through one) may request it. The capability
    enumeration (regions, refcounts, holders) is memoized against the
    tree's {!Cap.Captree.generation}, so repeated attestations of a
    quiescent tree skip re-enumeration; the signature itself is always
    fresh (one-time key, caller nonce). *)

val attest_batch :
  t -> caller:Domain.id -> domains:Domain.id list -> nonce:string ->
  (Attestation.t list, error) result
(** Attest many domains at once: enumerate each body (memoized, as in
    {!attest}), build a Merkle tree over the canonical payloads, sign
    only the root, and return per-domain reports (in input order)
    carrying inclusion proofs — one one-time key for the whole batch
    instead of one per domain. [Ok []] for an empty list. Fails with
    [Unknown_domain] if any requested domain does not exist (no key is
    consumed in that case). *)

val attest_spec :
  t -> caller:Domain.id -> domain:Domain.id -> nonce:string ->
  (Attestation.t, error) result
(** [attest] computed on the {!Crypto.Sha256.Spec} executable
    specification (same memoized enumeration, slow crypto) — the
    baseline the optimized crypto core is benchmarked and cross-checked
    against in E14. Consumes one key. *)

val attest_reference :
  t -> caller:Domain.id -> domain:Domain.id -> nonce:string ->
  (Attestation.t, error) result
(** [attest] computed with the full-scan [_reference] capability
    queries and no memoization — the baseline the indexed path is
    benchmarked and cross-checked against. *)

val boot_quote : t -> nonce:string -> Rot.Tpm.Quote.t
(** Tier one: TPM quote over PCRs 0, 4, 17 and {!key_binding_pcr},
    proving which monitor booted and which attestation key it holds. *)

val transition_count : t -> int
(** Total mediated transitions since boot (statistics). *)

(** {2 Durability (crash-restart recovery)}

    A logical redo layer: every committed mutating API call appends a
    CRC-framed record to a {!Persist.Store} WAL through a group-commit
    queue ({!Persist.Group}), and periodic checkpoints bound the replay
    distance. Checkpoints are *incremental*: only captree buckets
    dirtied since the previous checkpoint are re-serialized, as
    content-addressed segments a version-2 manifest references; the WAL
    prefix the manifest covers is compacted away and unreferenced
    segments are GC'd. {!recover} rebuilds a monitor from the newest
    valid snapshot or manifest plus the trusted WAL suffix — a torn
    tail (power loss mid-write) is detected by the framing and
    discarded, never trusted. Run {!Fsck.check} on the result before
    serving. *)

val enable_persistence :
  t ->
  store:Persist.Store.t ->
  ?snapshot_every:int ->
  ?fsync_every:int ->
  ?latency_bound:int ->
  unit ->
  unit
(** Arm the redo log (call right after {!boot} — the WAL's implicit
    starting state is the boot baseline, captured immediately as the
    seq-0 checkpoint). [snapshot_every] (default 1000) checkpoints and
    retires the WAL every N committed operations. [fsync_every]
    (default 1) is the group-commit batch size: one fsync acknowledges
    up to N committed records; [latency_bound] (default [max_int],
    simulated cycles) caps how long the oldest unacknowledged record
    may wait before the batch flushes anyway. A crash loses at most the
    unacknowledged tail of one batch — {!durable_seq} is the floor
    recovery honors, and the framing guarantees the survivors are a
    consistent prefix. May raise {!Persist.Store.Crash} under fault
    injection. *)

val persist_seq : t -> int option
(** Committed-operation index, [None] until persistence is enabled. *)

val durable_seq : t -> int option
(** Acknowledgement floor: the highest committed-operation index known
    durable (group-commit batch fsynced or checkpoint written). Ops at
    or below this seq survive any crash; ops above it may be lost but
    never torn. [None] until persistence is enabled. *)

val flush : t -> unit
(** Make every pending group-commit record durable now — for
    latency-sensitive callers and clean shutdown. After [flush],
    [durable_seq = persist_seq]. No-op when persistence is off. May
    raise {!Persist.Store.Crash} under fault injection. *)

val persist_snapshot : t -> unit
(** Force a *full* (version-1, self-contained) checkpoint now
    (snapshot, then WAL reset — crash-safe in that order). Raises
    [Invalid_argument] if persistence is off. *)

val checkpoint : t -> unit
(** Force an *incremental* checkpoint now: serialize dirty captree
    buckets as content-addressed segments, commit a manifest, compact
    the covered WAL prefix, GC unreferenced segments. Raises
    [Invalid_argument] if persistence is off. May raise
    {!Persist.Store.Crash} at the [segment.write], [manifest.swap],
    [snapshot.write] or [store.dir_fsync] fault points — every crash
    window leaves a recoverable store. *)

type recovery_report = {
  rr_snapshot_seq : int; (** Seq of the snapshot used; -1 = none found. *)
  rr_snapshots_scanned : int;
  rr_snapshot_torn : bool; (** Snapshot stream had an undecodable tail. *)
  rr_wal_records : int; (** Records in the trusted WAL prefix. *)
  rr_replayed : int; (** Records actually re-executed. *)
  rr_wal_truncated : bool; (** A torn/corrupt WAL tail was discarded. *)
  rr_stopped_early : string option; (** Why replay stopped, if not at the end. *)
  rr_seq : int; (** Committed-operation index after recovery. *)
}

val pp_recovery_report : Format.formatter -> recovery_report -> unit

val recover :
  ?signer_height:int ->
  ?keypool:Crypto.Keypool.t ->
  ?snapshot_every:int ->
  ?fsync_every:int ->
  ?latency_bound:int ->
  Hw.Machine.t ->
  store:Persist.Store.t ->
  backend:Backend_intf.t ->
  tpm:Rot.Tpm.t ->
  rng:Crypto.Rng.t ->
  monitor_range:Hw.Addr.Range.t ->
  (t * recovery_report, string) result
(** Crash-restart: rebuild a monitor on a fresh machine/backend from the
    store's durable bytes. Loads the newest decodable snapshot (or the
    boot baseline if none), re-derives hardware state from the restored
    tree, replays the WAL suffix (stopping, never failing, at the first
    record that cannot be trusted), re-arms persistence and writes a
    fresh checkpoint. The new monitor has a fresh attestation signer —
    one-time signing keys are deliberately not durable — so verifiers
    re-fetch the root via {!boot_quote}; attestation *bodies* are
    byte-identical to the pre-crash tree's. [Error] means the store and
    machine disagree structurally (wrong core count, undecodable tree),
    not a torn log. *)

(** {2 Multi-monitor coordination}

    Hooks the sharded front end ({!Sharded}) builds on: an explicit
    transaction bracket for two-phase commit across several monitors,
    body-only attestation for cross-shard aggregation, and verbatim
    digest installation for seals measured elsewhere. *)

val txn_begin : t -> unit
(** Open the captree journal and the backend undo log. While the
    bracket is open, every mutating API call on this monitor enlists in
    it — the call runs its body but performs no commit, no rollback and
    no WAL append; the bracket owner decides all three. Brackets do not
    nest. *)

val txn_commit : t -> unit
(** Close the bracket keeping every mutation made inside it. In-memory
    and infallible — the commit decision is the caller's alone. *)

val txn_rollback : t -> unit
(** Close the bracket undoing every mutation made inside it (captree
    journal and backend undo log), exactly like a failed call. *)

val attest_body_of :
  t ->
  domain:Domain.id ->
  (Attestation.region_report list * (int * int) list * (int * int) list, error) result
(** The memoized attestation body — [(regions, (core, refcount) list,
    (device, refcount) list)] — without signing it. Same cache as
    {!attest}. *)

val install_seal :
  t -> caller:Domain.id -> domain:Domain.id -> measurement:string -> (unit, string) result
(** Install a seal digest verbatim (creator-or-self and digest-length
    checks, no re-measurement) — for coordinators that measured the
    domain's ranges on other monitors, and for WAL replay. *)

val adopt_seal :
  t ->
  caller:Domain.id ->
  domain:Domain.id ->
  measurement:Crypto.Sha256.digest ->
  (unit, error) result
(** {!install_seal}, but logged as a first-class [Seal] operation so the
    adopting monitor's own WAL replays it — used when a migrated-in
    domain is reassembled from verbatim-copied bytes under the
    measurement its transfer receipt binds. *)

val destroy_guard :
  t -> caller:Domain.id -> domain:Domain.id -> (Domain.t, error) result
(** The {!destroy_domain} admission checks alone (exists, not domain 0,
    creator only, not running), read-only. *)

val revoke_all_of : t -> domain:Domain.id -> (unit, error) result
(** Revoke every capability the domain holds or delegated (the
    destruction cascade). Journaled tree/hardware work only — run it
    inside a transaction bracket; on [Error] the bracket's rollback
    restores everything. *)

val forget_domain : t -> Domain.t -> unit
(** Drop a destroyed domain's table entries and notify the backend.
    Infallible but NOT journaled: a coordinator must call it only after
    its commit decision is final. *)

(** {2 Telemetry} *)

type attest_telemetry = {
  attests : int; (** Signed attestations (single, spec, batch, reference). *)
  body_cache_hits : int; (** Memoized bodies reused. *)
  body_cache_misses : int; (** Bodies re-enumerated. *)
  keypool_hits : int; (** Signer keys served from the pregenerated pool. *)
  keypool_misses : int; (** Keys generated on demand (pool empty or faulted). *)
  keypool_miss_rate : float; (** [misses / (hits + misses)]; 0. with no pool. *)
  keypool_stock : int; (** Pairs currently pooled. *)
}

val attest_telemetry : t -> attest_telemetry
(** Attestation-pipeline health, including the key pool's miss rate —
    how operators observe graceful degradation (a starved pool slows
    signing but never fails it). All zeros for the pool fields when the
    monitor was booted without one. *)

val observe : t -> Obs.report
(** The structured observability report: per-op counts and latency
    percentiles (from {!Obs.Profile} spans around every API dispatch,
    hardware write, WAL append/fsync and keypool operation), per-domain
    op counts, revocation-cascade depth/size histograms, and journal
    commit/rollback counters. The underlying registry is process-global
    (see {!Obs}); {!boot} and {!recover} point its clock at this
    monitor's cycle counter. *)
