(** The monitor's narrow call interface (§3.2), as data.

    Real deployments reach the monitor through a register-level ABI
    (VMCALL on x86, ecall on RISC-V). This module defines that ABI: a
    first-class call type, a byte-level wire encoding, and a dispatcher.
    Having the whole API as one small variant is the "microkernel-like,
    minimal and flexible" surface the paper argues for — it is also what
    a verification effort would specify, and what the fuzz tests drive.

    The dispatcher never raises on any input: every malformed or
    unauthorized call returns an error value, which the property tests
    check against arbitrary call sequences. *)

type call =
  | Create_domain of { name : string; kind : Domain.kind }
  | Set_entry_point of { domain : Domain.id; entry : Hw.Addr.t }
  | Set_flush_policy of { domain : Domain.id; flush : bool }
  | Mark_measured of { domain : Domain.id; range : Hw.Addr.Range.t }
  | Seal of { domain : Domain.id }
  | Destroy of { domain : Domain.id }
  | Share of {
      cap : Cap.Captree.cap_id;
      to_ : Domain.id;
      rights : Cap.Rights.t;
      cleanup : Cap.Revocation.t;
      subrange : Hw.Addr.Range.t option;
    }
  | Grant of {
      cap : Cap.Captree.cap_id;
      to_ : Domain.id;
      rights : Cap.Rights.t;
      cleanup : Cap.Revocation.t;
    }
  | Split of { cap : Cap.Captree.cap_id; at : Hw.Addr.t }
  | Carve of { cap : Cap.Captree.cap_id; subrange : Hw.Addr.Range.t }
  | Revoke of { cap : Cap.Captree.cap_id }
  | Enumerate (** List the caller's own capabilities. *)
  | Attest of { domain : Domain.id; nonce : string }
  | Call of { target : Domain.id }
  | Return

type result_value =
  | R_unit
  | R_domain of Domain.id
  | R_cap of Cap.Captree.cap_id
  | R_cap_pair of Cap.Captree.cap_id * Cap.Captree.cap_id
  | R_caps of Cap.Captree.cap_id list
  | R_attestation of Attestation.t
  | R_path of Backend_intf.transition_path

type response = (result_value, Monitor.error) result

val pp_call : Format.formatter -> call -> unit
val pp_response : Format.formatter -> response -> unit

val op_name : call -> string
(** Stable lower-case operation name ("share", "revoke", ...), used as
    the span/metric key suffix for per-op observability. *)

val dispatch : Monitor.t -> caller:Domain.id -> core:int -> call -> response
(** Execute one call on behalf of [caller] (as identified by the
    trapping hardware on [core]). Total: no exceptions escape. Every
    dispatch runs inside a balanced [Obs.Profile.span] named
    ["api." ^ op_name call], tagged with the caller domain and the
    backend name. *)

(** {2 Wire format}

    A compact binary encoding (opcode byte + fixed-width operands) — the
    exact register/shared-page layout a guest ABI would use. *)

val encode : call -> string

val decode : string -> (call, string) result
(** Total parser: never raises, rejects trailing garbage. *)
