type violation = { rule : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.rule v.detail

let v rule fmt = Printf.ksprintf (fun detail -> { rule; detail }) fmt

let check_tree m =
  match Cap.Captree.check_invariants (Monitor.tree m) with
  | Ok () -> []
  | Error detail -> [ { rule = "tree-structure"; detail } ]

let domain_ranges m domain =
  List.filter_map
    (fun cap ->
      match Cap.Captree.resource (Monitor.tree m) cap with
      | Some (Cap.Resource.Memory r) -> Some r
      | _ -> None)
    (Cap.Captree.caps_of_domain (Monitor.tree m) domain)

let check_hardware_matches_tree m =
  let backend = Monitor.backend m in
  let tree = Monitor.tree m in
  let segments = Cap.Captree.region_map tree in
  List.concat_map
    (fun d ->
      let id = Domain.id d in
      let held = domain_ranges m id in
      List.filter_map
        (fun (seg, holders) ->
          let tree_says = List.mem id holders in
          let hw_says = backend.Backend_intf.domain_reaches d seg in
          if tree_says && not hw_says then
            Some (v "hw-matches-tree" "domain %d lost access to %s" id
                    (Format.asprintf "%a" Hw.Addr.Range.pp seg))
          else if hw_says && not tree_says then
            Some (v "hw-matches-tree" "domain %d reaches %s without a capability" id
                    (Format.asprintf "%a" Hw.Addr.Range.pp seg))
          else None)
        segments
      @
      (* Held ranges that fell out of the region map entirely. *)
      List.filter_map
        (fun r ->
          if backend.Backend_intf.domain_reaches d r then None
          else
            Some (v "hw-matches-tree" "domain %d holds %s but hardware blocks it" id
                    (Format.asprintf "%a" Hw.Addr.Range.pp r)))
        held)
    (Monitor.domains m)

let check_sealed_unextended m =
  let tree = Monitor.tree m in
  List.concat_map
    (fun d ->
      if not (Domain.is_sealed d) then []
      else begin
        let id = Domain.id d in
        List.concat_map
          (fun range ->
            let res = Cap.Resource.Memory range in
            let holders = Cap.Captree.holders tree res in
            (* Once the region has been revoked from the sealed domain,
               it is no longer "in use" and the guarantee lapses. *)
            if not (List.mem id holders) then []
            else
            List.filter_map
              (fun h ->
                if h = id then None
                else begin
                  (* A foreign holder is legitimate in two cases: its
                     access descends from a capability the sealed domain
                     owns (the sealed domain delegated it out), or the
                     sealed domain's own capability descends from one the
                     holder owns (the holder shared it *in* before
                     sealing and naturally kept access). Anything else
                     means the region was re-exposed behind the sealed
                     domain's back. *)
                  let rec chain_owned_by who c =
                    (match Cap.Captree.owner tree c with
                    | Some o -> o = who
                    | None -> false)
                    ||
                    match Cap.Captree.parent tree c with
                    | Some p -> chain_owned_by who p
                    | None -> false
                  in
                  let caps_overlapping domain =
                    List.filter
                      (fun cap ->
                        match Cap.Captree.resource tree cap with
                        | Some r -> Cap.Resource.overlaps r res
                        | None -> false)
                      (Cap.Captree.caps_of_domain tree domain)
                  in
                  let delegated_out =
                    List.exists
                      (fun cap ->
                        match Cap.Captree.parent tree cap with
                        | Some p -> chain_owned_by id p
                        | None -> false)
                      (caps_overlapping h)
                  in
                  let shared_in =
                    List.exists
                      (fun cap ->
                        match Cap.Captree.parent tree cap with
                        | Some p -> chain_owned_by h p
                        | None -> false)
                      (caps_overlapping id)
                  in
                  if delegated_out || shared_in then None
                  else
                    Some (v "sealed-unextended"
                            "sealed domain %d's measured region %s reachable by %d"
                            id (Format.asprintf "%a" Hw.Addr.Range.pp range) h)
                end)
              holders)
          (Domain.measured_ranges d)
      end)
    (Monitor.domains m)

let check_no_stale_tlb m =
  let machine = Monitor.machine m in
  let tree = Monitor.tree m in
  List.filter_map
    (fun (asid, gpa, hpa) ->
      (* ASIDs equal domain ids in this system. *)
      let page = Hw.Addr.Range.make ~base:hpa ~len:Hw.Addr.page_size in
      let holders = Cap.Captree.holders tree (Cap.Resource.Memory page) in
      if List.mem asid holders then None
      else
        Some (v "no-stale-tlb" "ASID %d still translates gpa 0x%x to revoked hpa 0x%x"
                asid gpa hpa))
    (Hw.Tlb.all_entries machine.Hw.Machine.tlb)

let check_refcounts m =
  let tree = Monitor.tree m in
  List.filter_map
    (fun (seg, holders) ->
      let rc = Cap.Captree.refcount tree (Cap.Resource.Memory seg) in
      if rc = List.length holders then None
      else
        Some (v "refcount" "segment %s: refcount %d but %d holders"
                (Format.asprintf "%a" Hw.Addr.Range.pp seg) rc (List.length holders)))
    (Cap.Captree.region_map tree)

let check_index m =
  match Cap.Captree.check_index_consistency (Monitor.tree m) with
  | Ok () -> []
  | Error detail -> [ { rule = "index-consistency"; detail } ]

let check_all m =
  check_tree m @ check_index m @ check_hardware_matches_tree m
  @ check_sealed_unextended m @ check_no_stale_tlb m @ check_refcounts m
