type violation = { rule : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.rule v.detail

let v rule fmt = Printf.ksprintf (fun detail -> { rule; detail }) fmt

let check_tree m =
  match Cap.Captree.check_invariants (Monitor.tree m) with
  | Ok () -> []
  | Error detail -> [ { rule = "tree-structure"; detail } ]

let domain_ranges m domain =
  List.filter_map
    (fun cap ->
      match Cap.Captree.resource (Monitor.tree m) cap with
      | Some (Cap.Resource.Memory r) -> Some r
      | _ -> None)
    (Cap.Captree.caps_of_domain (Monitor.tree m) domain)

let check_hardware_matches_tree m =
  let backend = Monitor.backend m in
  let tree = Monitor.tree m in
  let segments = Cap.Captree.region_map tree in
  List.concat_map
    (fun d ->
      let id = Domain.id d in
      let held = domain_ranges m id in
      List.filter_map
        (fun (seg, holders) ->
          let tree_says = List.mem id holders in
          let hw_says = backend.Backend_intf.domain_reaches d seg in
          if tree_says && not hw_says then
            Some (v "hw-matches-tree" "domain %d lost access to %s" id
                    (Format.asprintf "%a" Hw.Addr.Range.pp seg))
          else if hw_says && not tree_says then
            Some (v "hw-matches-tree" "domain %d reaches %s without a capability" id
                    (Format.asprintf "%a" Hw.Addr.Range.pp seg))
          else None)
        segments
      @
      (* Held ranges that fell out of the region map entirely. *)
      List.filter_map
        (fun r ->
          if backend.Backend_intf.domain_reaches d r then None
          else
            Some (v "hw-matches-tree" "domain %d holds %s but hardware blocks it" id
                    (Format.asprintf "%a" Hw.Addr.Range.pp r)))
        held)
    (Monitor.domains m)

let check_sealed_unextended m =
  List.concat_map
    (fun d ->
      if not (Domain.is_sealed d) then []
      else
        List.map
          (fun (range, h) ->
            v "sealed-unextended"
              "sealed domain %d's measured region %s reachable by %d"
              (Domain.id d)
              (Format.asprintf "%a" Hw.Addr.Range.pp range)
              h)
          (Monitor.measured_exposures m ~domain:(Domain.id d)
             (Domain.measured_ranges d)))
    (Monitor.domains m)

let check_no_stale_tlb m =
  let machine = Monitor.machine m in
  let tree = Monitor.tree m in
  List.filter_map
    (fun (asid, gpa, hpa) ->
      (* ASIDs equal domain ids in this system. *)
      let page = Hw.Addr.Range.make ~base:hpa ~len:Hw.Addr.page_size in
      let holders = Cap.Captree.holders tree (Cap.Resource.Memory page) in
      if List.mem asid holders then None
      else
        Some (v "no-stale-tlb" "ASID %d still translates gpa 0x%x to revoked hpa 0x%x"
                asid gpa hpa))
    (Hw.Tlb.all_entries machine.Hw.Machine.tlb)

let check_refcounts m =
  let tree = Monitor.tree m in
  List.filter_map
    (fun (seg, holders) ->
      let rc = Cap.Captree.refcount tree (Cap.Resource.Memory seg) in
      if rc = List.length holders then None
      else
        Some (v "refcount" "segment %s: refcount %d but %d holders"
                (Format.asprintf "%a" Hw.Addr.Range.pp seg) rc (List.length holders)))
    (Cap.Captree.region_map tree)

(* Remote proxy domains are pure bookkeeping: they stand in for a peer
   machine in the capability tree and must never acquire an execution
   identity — no seal, no entry point, never scheduled on a core. Any
   of those would let a "remote holder" run locally, silently widening
   C5's cross-machine exclusivity claims. *)
let check_remote m =
  let cores =
    let machine = Monitor.machine m in
    List.init (Array.length machine.Hw.Machine.cores) (fun i -> i)
  in
  List.concat_map
    (fun d ->
      if Domain.kind d <> Domain.Remote then []
      else
        let id = Domain.id d in
        (if Domain.is_sealed d then [ v "remote-inert" "remote proxy %d is sealed" id ]
         else [])
        @ (match Domain.entry_point d with
          | Some ep ->
            [ v "remote-inert" "remote proxy %d has entry point 0x%x" id ep ]
          | None -> [])
        @ List.filter_map
            (fun core ->
              if Monitor.current_domain m ~core = id then
                Some (v "remote-inert" "remote proxy %d is running on core %d" id core)
              else None)
            cores)
    (Monitor.domains m)

let check_index m =
  match Cap.Captree.check_index_consistency (Monitor.tree m) with
  | Ok () -> []
  | Error detail -> [ { rule = "index-consistency"; detail } ]

let check_all m =
  check_tree m @ check_index m @ check_hardware_matches_tree m
  @ check_sealed_unextended m @ check_no_stale_tlb m @ check_refcounts m
  @ check_remote m
