(** Domain attestations: tier two of the attestation protocol (§3.4).

    Tier one is the TPM quote over the boot PCRs ({!Rot.Tpm.Quote}),
    which convinces a verifier that a specific monitor controls the
    machine and binds the monitor's attestation key. Tier two — this
    module — is a monitor-signed report that enumerates one domain's
    physical resources, their reference counts and the seal-time
    measurement, making sharing and communication paths explicit so a
    remote party can verify controlled sharing (refcount 1 = exclusive,
    refcount 2 = pairwise channel). *)

type region_report = {
  range : Hw.Addr.Range.t;
  perm : Hw.Perm.t;
  refcount : int; (** Distinct domains that can reach the region. *)
  holders : Domain.id list; (** Who they are, sorted. *)
  measured : bool; (** Included in the seal-time measurement. *)
}

(** How a report is authenticated. [Signed] (wire v1): the monitor
    signed this report's canonical payload directly. [Batched] (wire
    v2): the monitor signed only the Merkle root over a whole batch of
    payloads; the report carries the root, its inclusion proof and the
    shared root signature, so a 64-domain batch consumes one one-time
    key instead of 64. The root is signed under a distinct domain
    separator, so batch and direct signatures can never be confused. *)
type evidence =
  | Signed of Crypto.Signature.signature
  | Batched of {
      batch_root : Crypto.Sha256.digest;
      proof : Crypto.Merkle.proof;
      root_sig : Crypto.Signature.signature;
    }

type t = {
  domain : Domain.id;
  domain_name : string;
  kind : Domain.kind;
  sealed : bool;
  measurement : Crypto.Sha256.digest option; (** Seal-time measurement. *)
  regions : region_report list;
  cores : (int * int) list; (** (core id, refcount). *)
  devices : (int * int) list; (** (packed BDF, refcount). *)
  memory_encrypted : bool;
      (** The platform holds this domain's memory under a private
          encryption key (MKTME/SEV-style physical-attack resistance). *)
  nonce : string; (** Verifier-supplied freshness. *)
  evidence : evidence;
}

val payload : t -> string
(** The canonical byte serialization the signature covers. Deterministic:
    regions are reported in address order, cores and devices in id
    order. *)

val sign :
  signer:Crypto.Signature.signer ->
  domain:Domain.t ->
  regions:region_report list ->
  cores:(int * int) list ->
  devices:(int * int) list ->
  memory_encrypted:bool ->
  nonce:string ->
  t
(** Canonicalize and sign one report, consuming one one-time key.
    @raise Invalid_argument if the domain name contains ['\x00'] (the
    payload encodes names NUL-terminated, so such a name could not be
    re-parsed to the signed bytes). *)

val sign_spec :
  signer:Crypto.Signature.signer ->
  domain:Domain.t ->
  regions:region_report list ->
  cores:(int * int) list ->
  devices:(int * int) list ->
  memory_encrypted:bool ->
  nonce:string ->
  t
(** [sign] on the {!Crypto.Sha256.Spec} executable-specification stack —
    identical output for the same key index; the E14 baseline. *)

val sign_batch :
  signer:Crypto.Signature.signer ->
  nonce:string ->
  (Domain.t * region_report list * (int * int) list * (int * int) list * bool) list ->
  t list
(** [sign_batch ~signer ~nonce entries] canonicalizes every entry
    [(domain, regions, cores, devices, memory_encrypted)], builds a
    Merkle tree over the canonical payloads, signs only the root, and
    returns one {!Batched} report per entry (in input order), each
    carrying its inclusion proof. Consumes exactly one one-time key for
    the whole batch; returns [[]] for an empty batch without consuming
    anything.
    @raise Invalid_argument on a NUL-containing domain name. *)

val verify : monitor_root:Crypto.Sha256.digest -> t -> bool
(** Check the monitor's evidence for the report: the direct signature
    ([Signed]), or the root signature plus this report's Merkle
    inclusion proof ([Batched]). *)

val to_wire : t -> string
(** Self-contained byte encoding, suitable for shipping to a remote
    verifier over an untrusted network. [Signed] reports use the v1
    envelope (payload + signature); [Batched] reports use the v2
    envelope (magic + payload + batch root + inclusion proof + root
    signature). *)

val of_wire : string -> (t, string) result
(** Total parser for both {!to_wire} envelopes (v2 is detected by its
    magic prefix; anything else parses as v1). Any reconstruction
    error — truncation, inconsistent refcounts vs holder lists,
    non-canonical permission characters, malformed signature — is
    reported rather than raised; a parsed report still carries its
    evidence, so {!verify} decides trust. *)

val exclusive_regions : t -> region_report list
(** Regions with refcount 1 — confidential memory candidates. *)

val shared_with : t -> Domain.id -> region_report list
(** Regions this attestation shows as reachable by the given domain. *)

val pp : Format.formatter -> t -> unit
(** Render the report as the Fig. 4-style table. *)
