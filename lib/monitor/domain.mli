(** Trust domains (§3.1): the monitor's only abstraction.

    A trust domain is an identity plus a set of access rights to physical
    resources, held as capabilities in the {!Cap.Captree}. Domains are
    orthogonal to privilege: a domain can be a whole VM, a process
    sub-compartment, a kernel driver or an I/O device context.

    A domain can be [sealed]: its resource configuration is frozen — no
    new capabilities may be attached and nothing it holds may be shared
    further with it. Sealing fixes the entry point and takes the initial
    measurement, making the domain attestable. *)

type id = int

val initial : id
(** Domain 0: the initial domain (the commodity OS/hypervisor). *)

type kind =
  | Os (** The initial domain. *)
  | Sandbox (** Restricted compartment trusted less than its creator. *)
  | Enclave (** Confidential compartment distrusting its creator. *)
  | Confidential_vm
  | Io_domain (** A device-backed domain (e.g. the paper's GPU). *)
  | Remote
    (** A proxy standing in for a peer machine in the capability tree:
        [Fleet] creates one per connected peer, and cross-machine
        delegations are shares {e to} it — so remote holders appear in
        refcounts, holders lists and attestation bodies (C5 across
        machines) without the monitor knowing anything about networks.
        Never runs, never sealed, no entry point. *)

val pp_kind : Format.formatter -> kind -> unit
val kind_to_string : kind -> string

type t

val make : id:id -> name:string -> kind:kind -> created_by:id option -> t

val restore :
  id:id ->
  name:string ->
  kind:kind ->
  created_by:id option ->
  sealed:bool ->
  entry_point:Hw.Addr.t option ->
  measured:Hw.Addr.Range.t list ->
  flush_on_transition:bool ->
  measurement:Crypto.Sha256.digest option ->
  t
(** Recovery-only: rebuild a domain exactly as a snapshot recorded it,
    including sealed state. [measured] in declaration order (what
    {!measured_ranges} reported at snapshot time). *)

val id : t -> id
val name : t -> string
val kind : t -> kind
val created_by : t -> id option

val asid : t -> int
(** Hardware address-space tag (equals the domain id). *)

val is_sealed : t -> bool
val entry_point : t -> Hw.Addr.t option
val set_entry_point : t -> Hw.Addr.t -> (unit, string) result
(** Fails once sealed. *)

val measured_ranges : t -> Hw.Addr.Range.t list
val add_measured_range : t -> Hw.Addr.Range.t -> (unit, string) result
(** Mark a range for inclusion in the seal-time measurement. Fails once
    sealed. *)

val flush_on_transition : t -> bool
val set_flush_on_transition : t -> bool -> unit
(** Side-channel policy: flush micro-architectural state when control
    leaves this domain (§4.1). *)

val seal : t -> measurement:Crypto.Sha256.digest -> (unit, string) result
(** Freeze the configuration. Fails if already sealed or if no entry
    point is set. *)

val measurement : t -> Crypto.Sha256.digest option
(** The seal-time measurement; [None] until sealed. *)

val is_migrating : t -> bool
val set_migrating : t -> bool -> unit
(** Volatile live-migration latch ({!Tyche.Monitor.freeze_domain} owns
    it): while set, the monitor refuses to run, reconfigure or attach
    capabilities to the domain. Never serialized — cleared by
    crash-restart and re-established from the migration journal. *)

val pp : Format.formatter -> t -> unit
