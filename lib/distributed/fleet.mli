(** Fault-tolerant cross-machine capability delegation.

    A {!t} wraps one machine's monitor and connects it to peers over the
    adversarial {!Network}. Delegating a capability to a peer shares it
    locally to a [Domain.Remote] proxy domain ([remote:<peer>]) — so the
    remote holder is visible in refcounts, holders lists and attestation
    bodies like any local domain — and ships a [Delegate] message to the
    peer, which records the import durably before acking.

    {2 Delivery contract}

    Messages carry per-channel sequence numbers and an HMAC under the
    session key, and are retried with capped exponential backoff (over
    logical {!tick}s) until the peer's {e cumulative} ack covers them:
    at-least-once delivery. The receiver applies only the next expected
    sequence number; duplicates are re-acked without re-applying and
    out-of-order arrivals are dropped (retransmission restores order),
    so replay by the adversary or by a recovering sender is idempotent.
    The outbox is journaled in the ["fleet"] blob of the monitor's
    durable store, and both sides journal-and-fsync {e before} acking or
    first-sending — a crash-restart on either end loses no delegation
    and no revocation.

    {2 Degraded mode}

    A peer that stops acking sends the channel to {!Degraded} after a
    few retry rounds. Local operations proceed; the delegated caps stay
    {e frozen} in the exporter's captree (any local revoke of them or
    their ancestors is refused with [Frozen] — the remote holder cannot
    be silently destroyed, so nothing leaks), and {!revoke} keeps the
    revocation pending until the partition heals and the peer acks, at
    which point the local cascading revoke executes and the freeze
    lifts. Convergence, not availability, is the promise. *)

type peer_state =
  | Healthy
  | Degraded of { since : int; attempts : int }
      (** No ack progress for [attempts] retry rounds, since logical
          time [since]. *)

type error =
  | Monitor_error of Tyche.Monitor.error
  | Unknown_peer of Network.endpoint (** No {!connect} was issued for the peer. *)
  | No_session of Network.endpoint
      (** The peer is known but has no session key (keys are volatile;
          re-issue {!connect} after recovery). *)
  | Revocation_pending of Cap.Captree.cap_id
      (** The capability overlaps an in-flight cross-machine
          revocation. *)
  | Not_memory of Cap.Captree.cap_id
      (** Only memory capabilities can cross machines. *)

val error_to_string : error -> string

type t

(** Journal-compaction policy. {!tick} rewrites the fleet journal to a
    live-state snapshot once it holds at least [compact_min] records
    {e and} dead records outnumber live state [compact_ratio]:1.
    Tunable so tests and the migration journal can exercise compaction
    without thousands of warm-up operations. *)
type config = {
  compact_min : int;
  compact_ratio : int;
}

val default_config : config
(** [{ compact_min = 128; compact_ratio = 4 }]. *)

val create :
  ?store:Persist.Store.t ->
  ?config:config ->
  monitor:Tyche.Monitor.t ->
  name:Network.endpoint ->
  net:Network.t ->
  unit ->
  t
(** Create the fleet endpoint for [monitor], speaking as [name] on
    [net]. When [store] is given, the fleet journals into its ["fleet"]
    blob and — creation {e is} recovery — replays any existing journal:
    channels, delegations, imports and pending revocations are rebuilt,
    remote-held caps are re-frozen, the unacked outbox is reconstructed
    for retransmission, and half-finished delegations (shared to a proxy
    but never journaled, hence never sent) are reconciled by local
    revocation. Session keys are volatile: re-issue {!connect} for every
    peer after recovery. *)

val connect : t -> peer:Network.endpoint -> key:string -> (Tyche.Domain.id, error) result
(** Introduce (or re-key) a peer. The first call creates the
    [remote:<peer>] proxy domain and journals it; later calls only
    install the fresh session [key] (e.g. from
    {!Session.establish_over}) and return the existing proxy. *)

val proxy : t -> peer:Network.endpoint -> Tyche.Domain.id option
(** The proxy domain standing in for [peer], if connected. *)

val delegate :
  t ->
  caller:Tyche.Domain.id ->
  cap:Cap.Captree.cap_id ->
  peer:Network.endpoint ->
  ?subrange:Hw.Addr.Range.t ->
  rights:Cap.Rights.t ->
  unit ->
  (int, error) result
(** Delegate [cap] (or [subrange] of it) to [peer] with [rights],
    returning the delegation id. Locally this is a
    [Monitor.share] to the peer's proxy domain with [can_share] and
    [can_grant] stripped; the resulting proxy cap is immediately frozen,
    so only {!revoke} can retire it. The [Delegate] message is journaled
    and fsynced before it is first transmitted. *)

val send_data :
  t -> peer:Network.endpoint -> chan:string -> string -> (int, error) result
(** Ship an opaque application frame to [peer] on logical channel
    [chan], returning its sequence number. Same delivery contract as
    delegations: journaled (and fsynced) before first transmission,
    retried with capped exponential backoff until the peer's cumulative
    ack covers it — at-least-once across crash-restarts. The live
    migration protocol rides this. *)

val set_data_handler :
  t -> chan:string -> (Network.endpoint -> string -> unit) -> unit
(** Register the inbound dispatch for [chan] ([handler origin payload]).
    Called in strict sequence order per origin, {e before} the fleet
    journals the applied floor and acks — so a handler must make its own
    effects durable synchronously and absorb at-least-once redelivery
    idempotently (a crash between the handler and the ack makes the
    sender retransmit). Handlers are volatile, like session keys:
    re-register after recovery before polling; frames arriving for an
    unregistered channel are left unacked for the sender to retry. *)

val revoke : t -> caller:Tyche.Domain.id -> cap:Cap.Captree.cap_id -> (unit, error) result
(** Cascading revocation that crosses machines. If nothing below [cap]
    is delegated, this is exactly [Monitor.revoke]. Otherwise
    authorization is checked {e first} ([Monitor.may_revoke]: the caller
    must own [cap] or an ancestor — refused with [Monitor_error (Denied
    _)] before anything is frozen, journaled or sent, because peers drop
    their imports on receipt of the Revoke). Then [cap] is frozen, a
    [Revoke] is journaled and sent for every delegation in the subtree,
    and the local cascade runs only once every affected peer's
    cumulative ack confirms it dropped its import — at-least-once, so a
    partition delays but never loses the revocation. If the caller's
    authority disappears while acks are in flight (ownership moved), the
    pending revocation is aborted rather than retried forever: the
    orphaned proxy caps are retired with their delegators' authority and
    the subtree is thawed (surfaced on the [fleet.revoke_aborted]
    counter). *)

val poll : t -> int
(** Drain and handle every datagram pending for this endpoint; returns
    how many were processed (including drops and rejects). *)

val tick : t -> unit
(** Advance logical time one step: retransmit due outboxes (capped
    exponential backoff), demote silent peers to {!Degraded}, retry
    pending revocations whose acks are all in, and compact the journal
    when dead records dominate live state. *)

val compact : t -> unit
(** Rewrite the fleet journal to a snapshot of live state (peers,
    channel counters, active delegations, imports, pending revocations),
    dropping records that recovery no longer needs — completed
    delegations, retired imports, superseded ack floors. Durable
    (snapshot is fsynced before the old prefix is dropped); a no-op
    without a store. {!tick} calls this automatically once the journal
    exceeds a size floor and outnumbers live state 4:1. *)

(** {2 Inspection} *)

val peer_state : t -> peer:Network.endpoint -> peer_state option

type del_state = Active | Revoking | Revoked

type delegation = {
  del_id : int;
  del_peer : Network.endpoint;
  proxy_cap : Cap.Captree.cap_id; (** The frozen local cap held by the proxy. *)
  del_base : int;
  del_len : int;
  del_rights : int; (** Rights byte as shipped on the wire. *)
  del_seq : int;
  mutable del_state : del_state;
  mutable revoke_seq : int;
}

type import = {
  imp_origin : Network.endpoint;
  imp_del_id : int;
  imp_base : int;
  imp_len : int;
  imp_rights : int;
}

val delegations : t -> delegation list
(** Outbound delegations, sorted by id. *)

val imports : t -> import list
(** Inbound (remote-held) capabilities, sorted by origin then id. *)

val pending_revokes : t -> Cap.Captree.cap_id list
val backlog : t -> peer:Network.endpoint -> int
val applied : t -> peer:Network.endpoint -> int
val acked : t -> peer:Network.endpoint -> int

val idle : t -> bool
(** No unacked messages and no pending revocations — both sides have
    converged. *)

val monitor : t -> Tyche.Monitor.t
val endpoint_name : t -> Network.endpoint

(** {2 Fleet attestation}

    A fleet root binds every member's whole-machine attestation into one
    Merkle root: each member's root is the Merkle root over its
    [attest_batch] payloads (every domain, including remote proxies, so
    delegations are visible to the verifier), and the fleet tree is
    built over the member roots. *)

type attestation = {
  fa_members : (string * Crypto.Sha256.digest) list; (** (member, root), input order. *)
  fa_root : Crypto.Sha256.digest;
  fa_tree : Crypto.Merkle.t;
}

val member_root : Tyche.Monitor.t -> nonce:string -> (Crypto.Sha256.digest, error) result
(** One machine's attest root: Merkle root over the canonical payloads
    of a batch attestation of all its domains. *)

val attest : nonce:string -> (string * Tyche.Monitor.t) list -> (attestation, error) result

val verify_member : attestation -> name:string -> member_root:Crypto.Sha256.digest -> bool
(** Check that [member_root] is the recorded root for [name] and that
    its inclusion proof verifies against the fleet root. *)

(** {2 Wire format} (exposed for property tests) *)

module Wire : sig
  type msg =
    | Delegate of { del_id : int; base : int; len : int; rights : int }
    | Revoke of { del_id : int }
    | Ack of { upto : int }
    | Data of { chan : string; payload : string }

  val rights_bits : Cap.Rights.t -> int
  val rights_of_bits : int -> Cap.Rights.t
  val encode_body : origin:string -> seq:int -> msg -> string
  val decode_body : string -> (string * int * msg, string) result
  val seal : key:string -> string -> string
  val split_datagram : string -> (string * string, string) result
  val verify : key:string -> body:string -> mac:string -> bool
end
