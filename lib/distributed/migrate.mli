(** Live domain migration: crash-resumable cross-machine domain
    transfer with re-homed delegations.

    A {!t} attaches to one machine's {!Fleet} endpoint and speaks the
    migration protocol on the fleet data channel ["migrate"], inheriting
    the fleet's delivery contract (per-channel sequencing, HMAC, durable
    outbox, cumulative acks, capped-exponential retry) instead of
    rebuilding it. A migration ships a {e sealed, quiescent} domain as
    content-addressed page chunks — the target answers an [Offer] with
    the hashes it does {e not} already hold, so a resumed or repeated
    transfer sends only missing bytes — followed by a [Final] manifest
    binding the domain's configuration, capability layout, measurement
    and page hashes to the source's pre-migration batch-attestation
    Merkle root.

    {2 State machine}

    Source: [Offered → Streaming → Committing → Committed/Aborted].
    Target: [Receiving → Parked (adopted, frozen) → Live/Aborted].

    The source freezes the domain ({!Tyche.Monitor.freeze_domain}) for
    the whole transfer: frozen-but-alive until the target's
    fsck-verified [Receipt], thawed unchanged on abort. On commit the
    source re-homes the domain's outbound fleet delegations (each is
    revoked through the at-least-once cross-machine protocol, so
    refcounts, holders and attestation stay coherent fleet-wide),
    destroys the local copy, replaces it with a [Domain.Remote] proxy
    named [remote:<peer>:<name>], and sends [Commit]; the target thaws
    its adopted copy and re-delegates from the manifest's delegation
    list. Core and device capabilities are machine-local and do not
    migrate.

    {2 Crash recovery}

    Both endpoints journal into the ["migrate"] blob of their durable
    store, fsynced before the message each record makes meaningful
    leaves the machine. {!attach} {e is} recovery: it replays the
    journal, re-freezes in-flight domains (the freeze latch is
    volatile), rebuilds the chunk store, and resumes — a source
    re-offers (the target's durable chunks dedup the re-send) or
    re-runs its commit; a target re-runs adoption from the durable
    manifest, re-imports adopted-but-not-yet-live page bytes, or
    re-sends its receipt. A migration is never half-applied: exactly
    one monitor hosts the domain live once the journals drain. *)

type error =
  | Fleet_error of Fleet.error
  | Monitor_error of Tyche.Monitor.error
  | Refused of string
      (** Admission failed: unsealed domain, non-exclusive holders,
          pending revocation overlap, name collision, … *)
  | Unknown_migration of string

val error_to_string : error -> string

(** {2 Wire format} (exposed for property tests) *)

module Wire : sig
  (** The frozen-domain manifest shipped in [Final]. Digests and hashes
      are raw 32-byte SHA-256 strings. *)
  type manifest = {
    mf_name : string;
    mf_kind : int; (** {!Tyche.Domain.kind} as a wire byte. *)
    mf_entry : int; (** Entry point; [-1] = none. *)
    mf_flush : bool;
    mf_measurement : string; (** Seal-time measurement, raw 32 bytes. *)
    mf_caps : (int * int * int * int) list;
        (** (base, len, rights bits, cleanup byte) per memory cap. *)
    mf_measured : (int * int) list; (** (base, len), declaration order. *)
    mf_pages : (int * int * string) list; (** (base, len, content hash). *)
    mf_dels : (string * int * int * int) list;
        (** Outbound delegations to re-home: (peer, base, len, rights). *)
    mf_att : string; (** {!Tyche.Attestation.to_wire} of the domain. *)
    mf_root : string; (** Source pre-migration batch-attest Merkle root. *)
    mf_state : string; (** Portable configuration digest. *)
    mf_image : string; (** Portable state+content digest. *)
  }

  type frame =
    | Offer of { mig : string; hashes : string list }
    | Need of { mig : string; hashes : string list }
    | Chunk of { mig : string; hash : string; bytes : string }
    | Chunk_ack of { mig : string; hash : string }
    | Final of { mig : string; manifest : manifest }
    | Receipt of { mig : string; image : string }
    | Commit of { mig : string }
    | Abort of { mig : string; reason : string }

  val encode_manifest : manifest -> string
  val decode_manifest : string -> (manifest, string) result
  val encode_frame : frame -> string
  val decode_frame : string -> (frame, string) result
end

type t

val attach : ?window:int -> fleet:Fleet.t -> store:Persist.Store.t -> unit -> t
(** Attach the migration engine to [fleet], journaling in [store]'s
    ["migrate"] blob, streaming at most [window] (default 4) unacked
    chunks at a time. Registers the ["migrate"] data handler —
    attachment {e is} recovery, see above. Attach after every
    {!Fleet.create} (handlers are volatile), before polling. *)

val set_peer_root : t -> peer:Network.endpoint -> Crypto.Sha256.digest -> unit
(** Install [peer]'s monitor attestation root (obtained out of band,
    e.g. from its boot quote during {!Session} establishment). Volatile,
    like session keys. When present, an inbound manifest's root
    signature is verified against it; the Merkle-inclusion check of the
    domain's attestation in the batch root runs regardless. *)

val start :
  t -> domain:Tyche.Domain.id -> peer:Network.endpoint -> (string, error) result
(** Begin migrating [domain] to [peer]; returns the migration id.
    Admission: the domain is sealed, not domain 0, not a proxy, not
    already migrating; every memory capability it holds is exclusive up
    to fleet delegations (no local co-holders); nothing it holds
    overlaps a pending cross-machine revocation. On success the domain
    is frozen and the transfer proceeds as {!Fleet.tick}/{!Fleet.poll}
    and {!tick} are pumped. *)

val abort : t -> mig:string -> reason:string -> (unit, error) result
(** Abort an in-flight migration from either endpoint: the source thaws
    the frozen domain (no observable mutation — delegations re-homed by
    an already-{!phase}-[Committing] migration are not restored); the
    target destroys any partially adopted copy. The peer is notified
    best-effort and also aborts. *)

val tick : t -> unit
(** Drive retries and resumed work: re-offer after recovery or session
    loss, re-run adoption, re-send receipts, advance commits waiting on
    delegation re-homing, flush deferred frames. Pump alongside
    {!Fleet.tick}/{!Fleet.poll}. *)

(** {2 Inspection} *)

type role = Source | Target

type phase =
  | Offered (** Frozen; offer not yet acknowledged by a [Need]. *)
  | Streaming (** Chunks or the final manifest in flight. *)
  | Committing (** Receipt verified; re-homing delegations. *)
  | Committed (** Local copy destroyed and replaced by the proxy. *)
  | Receiving (** Target side: chunks/manifest arriving. *)
  | Parked (** Adopted, fsck-verified, frozen awaiting [Commit]. *)
  | Live (** Thawed and hosted here. *)
  | Aborted of string

val pp_phase : Format.formatter -> phase -> unit

val status : t -> mig:string -> (role * phase) option
val migrations : t -> (string * role * phase) list
(** Every migration this endpoint knows, sorted by id. *)

val idle : t -> bool
(** No migration in a non-terminal phase and nothing deferred. *)

val adopted_domain : t -> mig:string -> Tyche.Domain.id option
(** Target side: the adopted domain once created. *)

val proxy_domain : t -> mig:string -> Tyche.Domain.id option
(** Source side: the [remote:<peer>:<name>] proxy once committed. *)

val chunk_count : t -> int
(** Distinct content-addressed chunks held durably (dedup store). *)

(** {2 Transfer receipts}

    The target's durable record of what it verified before acking: the
    source's pre-migration batch-attest root, the domain's measurement
    and the portable digests. {!verify_receipt} re-checks the chain
    after any crash: the adopted domain's current configuration still
    hashes to [rc_state], its attestation still carries [rc_measurement],
    and the transferred attestation's Merkle inclusion in [rc_root]
    still verifies (plus the root signature when {!set_peer_root} has
    installed the source root of the transfer epoch). *)

type receipt = {
  rc_mig : string;
  rc_origin : Network.endpoint;
  rc_root : Crypto.Sha256.digest;
  rc_measurement : Crypto.Sha256.digest;
  rc_state : Crypto.Sha256.digest;
  rc_image : Crypto.Sha256.digest;
}

val receipt : t -> mig:string -> receipt option
val verify_receipt : t -> mig:string -> bool
