type evidence = {
  quote : Rot.Tpm.Quote.t;
  attestation : Tyche.Attestation.t;
}

let gather_evidence monitor ~domain ~nonce =
  Obs.Profile.span ~domain "session.gather_evidence" @@ fun () ->
  match Tyche.Monitor.attest monitor ~caller:Tyche.Domain.initial ~domain ~nonce with
  | Error e -> Error (Tyche.Monitor.error_to_string e)
  | Ok attestation -> Ok { quote = Tyche.Monitor.boot_quote monitor ~nonce; attestation }

type party = {
  name : Network.endpoint;
  reference : Verifier.reference_values;
  policy : Verifier.Policy.t;
}

let verify_party ~nonce (party, ev) =
  let boot =
    Verifier.Chain.verify_boot ~tpm_root:party.reference.Verifier.tpm_root
      ~expected_pcrs:party.reference.Verifier.expected_pcrs
      ~claimed_monitor_root:party.reference.Verifier.monitor_root ~nonce ev.quote
  in
  let tier2 =
    Verifier.Chain.verify_domain ~monitor_root:party.reference.Verifier.monitor_root ~nonce
      ev.attestation
  in
  let policy = Verifier.Policy.check party.policy ev.attestation in
  List.filter_map
    (fun r ->
      match r with
      | Ok () -> None
      | Error msg -> Some (party.name ^ ": " ^ msg))
    [ boot; tier2 ]
  @
  match policy with
  | Ok () -> []
  | Error msgs -> List.map (fun m -> party.name ^ ": " ^ m) msgs

let establish ~nonce ~a ~b =
  match verify_party ~nonce a @ verify_party ~nonce b with
  | [] ->
    let _, ev_a = a and _, ev_b = b in
    let m_of ev =
      match ev.attestation.Tyche.Attestation.measurement with
      | Some m -> Crypto.Sha256.to_raw m
      | None -> "unmeasured"
    in
    (* Bind the key to both identities and the freshness nonce. *)
    let key =
      Crypto.Hmac.derive ~key:(m_of ev_a ^ m_of ev_b) ~label:("session:" ^ nonce)
    in
    Ok (key, key)
  | failures -> Error failures

type establish_error =
  | Rejected of string list
  | Timeout of { attempts : int; waited : int }

let establish_error_to_string = function
  | Rejected reasons -> "rejected: " ^ String.concat "; " reasons
  | Timeout { attempts; waited } ->
    Printf.sprintf "timed out after %d attempts (%d backoff units waited)" attempts waited

(* Attested establishment over a lossy network: each side ships its
   attestation bytes to the broker, which retries lost or mangled
   exchanges with capped exponential backoff. Only *delivery* is
   retried — a cryptographic verification failure is deterministic
   (resending identical evidence cannot change the verdict), so it
   rejects immediately. The TPM quotes travel the machine-local attested
   path (see the module doc) and are taken from [a]/[b] directly. *)
let establish_over net ~broker ?(max_attempts = 5) ?(base_backoff = 1) ?(max_backoff = 8)
    ?(adversary = fun _ -> ()) ~nonce ~a ~b () =
  if max_attempts < 1 then invalid_arg "Session.establish_over: max_attempts < 1";
  if base_backoff < 1 || max_backoff < base_backoff then
    invalid_arg "Session.establish_over: bad backoff bounds";
  let party_a, ev_a = a and party_b, ev_b = b in
  (* One trace id spans the whole establishment: every retry, drain and
     verification event across both monitors' evidence carries it, so a
     trace dump shows the cross-machine exchange as one causal chain. *)
  Obs.with_trace (Obs.new_trace ()) @@ fun () ->
  Obs.Profile.span "session.establish" @@ fun () ->
  let rec attempt n ~backoff ~waited =
    if n > max_attempts then begin
      Obs.instant "session.timeout";
      Error (Timeout { attempts = max_attempts; waited })
    end
    else begin
      Obs.instant "session.attempt";
      (* Drain stale datagrams from a previous partial exchange so a
         late duplicate cannot be mistaken for this round's evidence. *)
      while Network.recv net broker <> None do () done;
      Network.send net ~from_:party_a.name ~to_:broker
        (Tyche.Attestation.to_wire ev_a.attestation);
      Network.send net ~from_:party_b.name ~to_:broker
        (Tyche.Attestation.to_wire ev_b.attestation);
      adversary n;
      let received =
        match Network.recv net broker, Network.recv net broker with
        | Some wire_a, Some wire_b -> (
          match Tyche.Attestation.of_wire wire_a, Tyche.Attestation.of_wire wire_b with
          | Ok att_a, Ok att_b -> Some (att_a, att_b)
          | _ -> None (* tampered in flight: indistinguishable from loss *))
        | _ -> None (* dropped in flight *)
      in
      match received with
      | None ->
        Obs.Metrics.incr (Obs.Metrics.counter "session.retries");
        attempt (n + 1) ~backoff:(min (backoff * 2) max_backoff) ~waited:(waited + backoff)
      | Some (att_a, att_b) -> (
        match
          establish ~nonce
            ~a:(party_a, { ev_a with attestation = att_a })
            ~b:(party_b, { ev_b with attestation = att_b })
        with
        | Ok keys ->
          Obs.Metrics.incr (Obs.Metrics.counter "session.established");
          Ok (keys, n)
        | Error reasons ->
          Obs.Metrics.incr (Obs.Metrics.counter "session.rejected");
          Error (Rejected reasons))
    end
  in
  attempt 1 ~backoff:base_backoff ~waited:0

type link = {
  net : Network.t;
  local : Network.endpoint;
  remote : Network.endpoint;
  key : string;
  mutable next_send : int;
  mutable last_recv : int;
  mutable sent : int;
  mutable received : int;
}

let connect net ~local ~remote ~key =
  { net; local; remote; key; next_send = 1; last_recv = 0; sent = 0; received = 0 }

let frame ~key ~seq payload =
  let buf = Buffer.create (String.length payload + 44) in
  Buffer.add_int64_be buf (Int64.of_int seq);
  Buffer.add_int32_be buf (Int32.of_int (String.length payload));
  Buffer.add_string buf payload;
  let mac =
    Crypto.Hmac.mac ~key (Printf.sprintf "%d|%s" seq payload)
  in
  Buffer.add_string buf (Crypto.Sha256.to_raw mac);
  Buffer.contents buf

let parse_frame raw =
  if String.length raw < 8 + 4 + 32 then Error "short frame"
  else begin
    let seq = Int64.to_int (String.get_int64_be raw 0) in
    let len = Int32.to_int (String.get_int32_be raw 8) in
    if len < 0 || 12 + len + 32 <> String.length raw then Error "bad frame length"
    else begin
      let payload = String.sub raw 12 len in
      let mac = String.sub raw (12 + len) 32 in
      Ok (seq, payload, mac)
    end
  end

let send link payload =
  let seq = link.next_send in
  link.next_send <- seq + 1;
  link.sent <- link.sent + 1;
  Network.send link.net ~from_:link.local ~to_:link.remote (frame ~key:link.key ~seq payload)

type recv_error =
  | Tampered
  | Stale of { seq : int; last : int }
  | Closed
  | Decode of string

let recv_error_to_string = function
  | Tampered -> "authentication failed (forged or tampered frame)"
  | Stale { seq; last } ->
    Printf.sprintf
      "stale frame: seq %d at or below last accepted %d (replayed by the adversary, or \
       legitimately reordered behind a later delivery)"
      seq last
  | Closed -> "no datagram pending"
  | Decode e -> "malformed frame: " ^ e

let recv link =
  match Network.recv link.net link.local with
  | None -> Error Closed
  | Some raw -> (
    match parse_frame raw with
    | Error e -> Error (Decode e)
    | Ok (seq, payload, mac) ->
      if
        not
          (Crypto.Hmac.verify ~key:link.key
             (Printf.sprintf "%d|%s" seq payload)
             (Crypto.Sha256.of_raw mac))
      then Error Tampered
      else if seq <= link.last_recv then
        (* The MAC verified but the sequence number is at or below the
           last accepted one. Cryptographically indistinguishable cases:
           an adversary re-injected an old frame, or {!Network.reorder}
           delivered a later frame first and this is the skipped
           predecessor arriving late. Typed separately from [Tampered]
           so callers can count reorder-induced loss apart from
           forgery. *)
        begin
          Obs.Metrics.incr (Obs.Metrics.counter "session.stale");
          Error (Stale { seq; last = link.last_recv })
        end
      else begin
        link.last_recv <- seq;
        link.received <- link.received + 1;
        Ok payload
      end)

let sent link = link.sent
let received link = link.received
