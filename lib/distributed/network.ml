type endpoint = string

type t = {
  queues : (endpoint, string Queue.t) Hashtbl.t;
  mutable total : int;
  mutable bytes : int; (* payload bytes offered to [send]/[inject] *)
  mutable dropped : int;
  mutable reordered : int;
  mutable duplicated : int;
  mutable partition_drops : int;
  (* Active partition cuts, as normalized (min, max) endpoint pairs. *)
  mutable cuts : (endpoint * endpoint) list;
}

(* Lossy-delivery point: a fired fault silently drops the message in
   flight, as a real lossy link would — senders cannot observe it. *)
let deliver_fault = Fault.register "net.deliver"

let create () =
  {
    queues = Hashtbl.create 8;
    total = 0;
    bytes = 0;
    dropped = 0;
    reordered = 0;
    duplicated = 0;
    partition_drops = 0;
    cuts = [];
  }

let queue t ep =
  match Hashtbl.find_opt t.queues ep with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.queues ep q;
    q

let norm_pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let partitioned t a b = List.mem (norm_pair a b) t.cuts

let partition t a b =
  let p = norm_pair a b in
  if not (List.mem p t.cuts) then t.cuts <- p :: t.cuts

let heal t a b =
  let p = norm_pair a b in
  t.cuts <- List.filter (fun c -> c <> p) t.cuts

let heal_all t = t.cuts <- []

let send t ~from_ ~to_ msg =
  t.total <- t.total + 1;
  t.bytes <- t.bytes + String.length msg;
  if partitioned t from_ to_ then t.partition_drops <- t.partition_drops + 1
  else if Fault.fires deliver_fault then t.dropped <- t.dropped + 1
  else Queue.add msg (queue t to_)

let recv t ep = Queue.take_opt (queue t ep)

let pending t ep = Queue.length (queue t ep)

let eavesdrop t ep = List.of_seq (Queue.to_seq (queue t ep))

let tamper_head t ep ~f =
  let q = queue t ep in
  match Queue.take_opt q with
  | None -> false
  | Some head ->
    (* Rebuild the queue with the rewritten head in front. *)
    let rest = Queue.create () in
    Queue.transfer q rest;
    Queue.add (f head) q;
    Queue.transfer rest q;
    true

let drop_head t ep = Queue.take_opt (queue t ep) <> None

let inject t ~to_ msg =
  t.total <- t.total + 1;
  t.bytes <- t.bytes + String.length msg;
  Queue.add msg (queue t to_)

let replay = inject

(* A tiny self-contained splitmix64 step: the adversary's permutation
   choices must depend only on the caller's seed, never on global RNG
   state, so chaos runs replay bit-identically from TYCHE_FAULT_SEED. *)
let mix state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  (* Keep 62 bits: [to_int] truncates to OCaml's 63-bit int, so a 63-bit
     value could come out negative and poison the [mod] below. *)
  to_int (shift_right_logical z 2)

let reorder t ep ~seed =
  let q = queue t ep in
  let n = Queue.length q in
  if n < 2 then false
  else begin
    let arr = Array.of_seq (Queue.to_seq q) in
    Queue.clear q;
    let state = ref (Int64.of_int seed) in
    (* Fisher–Yates over the whole queue. *)
    for i = n - 1 downto 1 do
      let j = mix state mod (i + 1) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    done;
    Array.iter (fun m -> Queue.add m q) arr;
    t.reordered <- t.reordered + n;
    true
  end

let duplicate t ep ~seed =
  let q = queue t ep in
  let n = Queue.length q in
  if n = 0 then false
  else begin
    let state = ref (Int64.of_int seed) in
    let victim = mix state mod n in
    let copy = List.nth (List.of_seq (Queue.to_seq q)) victim in
    Queue.add copy q;
    t.duplicated <- t.duplicated + 1;
    true
  end

let total_messages t = t.total
let total_bytes t = t.bytes

let dropped t = t.dropped
let reordered t = t.reordered
let duplicated t = t.duplicated
let partition_drops t = t.partition_drops
