type endpoint = string

type t = {
  queues : (endpoint, string Queue.t) Hashtbl.t;
  mutable total : int;
  mutable dropped : int;
}

(* Lossy-delivery point: a fired fault silently drops the message in
   flight, as a real lossy link would — senders cannot observe it. *)
let deliver_fault = Fault.register "net.deliver"

let create () = { queues = Hashtbl.create 8; total = 0; dropped = 0 }

let queue t ep =
  match Hashtbl.find_opt t.queues ep with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.queues ep q;
    q

let send t ~from_ ~to_ msg =
  ignore from_;
  t.total <- t.total + 1;
  if Fault.fires deliver_fault then t.dropped <- t.dropped + 1
  else Queue.add msg (queue t to_)

let recv t ep = Queue.take_opt (queue t ep)

let pending t ep = Queue.length (queue t ep)

let eavesdrop t ep = List.of_seq (Queue.to_seq (queue t ep))

let tamper_head t ep ~f =
  let q = queue t ep in
  match Queue.take_opt q with
  | None -> false
  | Some head ->
    (* Rebuild the queue with the rewritten head in front. *)
    let rest = Queue.create () in
    Queue.transfer q rest;
    Queue.add (f head) q;
    Queue.transfer rest q;
    true

let drop_head t ep = Queue.take_opt (queue t ep) <> None

let inject t ~to_ msg =
  t.total <- t.total + 1;
  Queue.add msg (queue t to_)

let replay = inject

let total_messages t = t.total

let dropped t = t.dropped
