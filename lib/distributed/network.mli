(** An untrusted message network between machines.

    Models the transport for §4.2's "RDMA support for Tyche-based TEEs
    running on separate machines": datagrams between named endpoints,
    delivered in order but through an adversary who can read, modify,
    drop, duplicate and replay everything. Security must come from the
    endpoints ({!Session}), never from here. *)

type t
type endpoint = string

val create : unit -> t

val send : t -> from_:endpoint -> to_:endpoint -> string -> unit
val recv : t -> endpoint -> string option
(** Dequeue the oldest pending datagram for the endpoint. *)

val pending : t -> endpoint -> int

(** {2 The adversary's console} *)

val eavesdrop : t -> endpoint -> string list
(** Copies of every datagram currently queued for the endpoint. *)

val tamper_head : t -> endpoint -> f:(string -> string) -> bool
(** Rewrite the next datagram the endpoint will receive; false if the
    queue is empty. *)

val drop_head : t -> endpoint -> bool
val inject : t -> to_:endpoint -> string -> unit
(** Forge a datagram out of thin air. *)

val replay : t -> to_:endpoint -> string -> unit
(** Re-enqueue a previously captured datagram. *)

val total_messages : t -> int
(** Messages ever sent (statistics). *)

val dropped : t -> int
(** Messages silently dropped in flight by an armed fault plan firing
    the ["net.deliver"] point (statistics). Senders cannot observe a
    drop — {!Session} must tolerate it with retries. *)
