(** An untrusted message network between machines.

    Models the transport for §4.2's "RDMA support for Tyche-based TEEs
    running on separate machines": datagrams between named endpoints,
    delivered in order but through an adversary who can read, modify,
    drop, duplicate, reorder, replay and partition everything. Security
    must come from the endpoints ({!Session}, {!Fleet}), never from
    here. *)

type t
type endpoint = string

val create : unit -> t

val send : t -> from_:endpoint -> to_:endpoint -> string -> unit
val recv : t -> endpoint -> string option
(** Dequeue the oldest pending datagram for the endpoint. *)

val pending : t -> endpoint -> int

(** {2 The adversary's console} *)

val eavesdrop : t -> endpoint -> string list
(** Copies of every datagram currently queued for the endpoint. *)

val tamper_head : t -> endpoint -> f:(string -> string) -> bool
(** Rewrite the next datagram the endpoint will receive; false if the
    queue is empty. *)

val drop_head : t -> endpoint -> bool
val inject : t -> to_:endpoint -> string -> unit
(** Forge a datagram out of thin air. *)

val replay : t -> to_:endpoint -> string -> unit
(** Re-enqueue a previously captured datagram. *)

val reorder : t -> endpoint -> seed:int -> bool
(** Shuffle the endpoint's pending queue with a seeded Fisher–Yates
    permutation (deterministic for a given seed and queue content);
    false if fewer than two datagrams are queued. *)

val duplicate : t -> endpoint -> seed:int -> bool
(** Re-enqueue a copy of one seeded-randomly chosen pending datagram at
    the back of the endpoint's queue; false if the queue is empty. *)

(** {2 Partitions}

    A cut severs the pair in {e both} directions: sends between the two
    endpoints vanish in flight (senders cannot observe it, exactly like
    a ["net.deliver"] drop) until {!heal}. Datagrams already queued
    before the cut remain deliverable. *)

val partition : t -> endpoint -> endpoint -> unit
val heal : t -> endpoint -> endpoint -> unit
val heal_all : t -> unit
val partitioned : t -> endpoint -> endpoint -> bool

(** {2 Statistics} *)

val total_messages : t -> int
(** Messages ever sent (statistics). *)

val total_bytes : t -> int
(** Payload bytes ever offered to {!send}/{!inject}, including messages
    later dropped or partitioned away — what the wire would have
    carried. Migration benches diff this around a transfer to price
    bytes-on-wire. *)

val dropped : t -> int
(** Messages silently dropped in flight by an armed fault plan firing
    the ["net.deliver"] point (statistics). Senders cannot observe a
    drop — {!Session} must tolerate it with retries. *)

val reordered : t -> int
(** Messages shuffled by {!reorder} (counts every datagram in each
    permuted queue). *)

val duplicated : t -> int
(** Copies enqueued by {!duplicate}. *)

val partition_drops : t -> int
(** Messages silently dropped in flight because the sender/receiver
    pair was partitioned at send time. *)
