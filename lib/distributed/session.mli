(** Attested cross-machine sessions between trust domains.

    Implements §4.2's multi-machine exploration: "RDMA support for
    Tyche-based TEEs running on separate machines" and "extend
    attestation to multi-domain deployments with the insurance that all
    communication paths are secured and attested".

    Trust model: a broker (the customer of Fig. 2, or any party both
    endpoints already trust) verifies *both* machines' boot chains and
    *both* domains' attestations against its reference values and
    policies. Only then does it provision a shared session key to each
    side — through the machine-local attested path demonstrated in the
    SaaS example, which this module abstracts as the successful return
    of {!establish}. Datagrams then cross the untrusted {!Network} with
    sequence numbers and HMACs: the adversary can drop or reorder (RDMA
    semantics surface that as an error) but cannot forge, modify or
    replay. *)

(** What one endpoint submits to the broker. *)
type evidence = {
  quote : Rot.Tpm.Quote.t;
  attestation : Tyche.Attestation.t;
}

val gather_evidence :
  Tyche.Monitor.t -> domain:Tyche.Domain.id -> nonce:string -> (evidence, string) result
(** Collected by the local (untrusted!) OS on each machine — nothing
    here is trusted until the broker checks signatures. *)

(** One side of the broker's verification requirements. *)
type party = {
  name : Network.endpoint;
  reference : Verifier.reference_values;
  policy : Verifier.Policy.t;
}

val establish :
  nonce:string ->
  a:party * evidence ->
  b:party * evidence ->
  (string * string, string list) result
(** Verify both sides; on success return the two session-key copies
    (they are equal; returned twice to mirror the two provisioning
    messages). On failure, every reason. The key is derived from both
    attestations' measurements and the nonce, so distinct deployments
    get distinct keys. *)

(** {2 Establishment over a lossy network} *)

type establish_error =
  | Rejected of string list
  (** Cryptographic or policy verification failed. Deterministic —
      retrying identical evidence cannot change the verdict, so the
      broker gives up immediately. *)
  | Timeout of { attempts : int; waited : int }
  (** The attempt budget ran out before one intact evidence exchange:
      [attempts] tries were made and [waited] backoff units simulated. *)

val establish_error_to_string : establish_error -> string

val establish_over :
  Network.t ->
  broker:Network.endpoint ->
  ?max_attempts:int ->
  ?base_backoff:int ->
  ?max_backoff:int ->
  ?adversary:(int -> unit) ->
  nonce:string ->
  a:party * evidence ->
  b:party * evidence ->
  unit ->
  ((string * string) * int, establish_error) result
(** {!establish}, but the attestation evidence crosses the untrusted
    (and possibly lossy) {!Network} to the [broker] endpoint, with
    retries: each attempt sends both attestations, then tries to
    receive and parse both; a drop (the ["net.deliver"] fault point, or
    the adversary's {!Network.drop_head}) or in-flight tampering makes
    the whole exchange retry after a backoff that doubles from
    [base_backoff] (default 1) up to [max_backoff] (default 8) units,
    at most [max_attempts] (default 5) times. [adversary] runs between
    send and receive on each attempt (its argument is the 1-based
    attempt number) — tests use it to drop or tamper queued datagrams.
    On success returns the session keys and the attempt number that
    made it through. Stale datagrams from earlier partial exchanges are
    drained before each attempt, so a late duplicate can never satisfy
    a later round. The whole establishment runs under one fresh
    {!Obs.new_trace} id inside a ["session.establish"] span, so every
    attempt, retry and verification event it emits — across both
    monitors' evidence — shares a causally-ordered trace. *)

(** The secured link, once each side holds the session key. *)
type link

val connect :
  Network.t -> local:Network.endpoint -> remote:Network.endpoint -> key:string -> link

val send : link -> string -> unit
(** Frame = sequence number, payload, HMAC(key, seq || payload). *)

(** Why {!recv} returned nothing, typed like PR 3's
    {!establish_error} so callers can branch without string matching. *)
type recv_error =
  | Tampered
  (** Bad MAC: forgery or in-flight tamper. The frame is discarded and
      the link state is unchanged. *)
  | Stale of { seq : int; last : int }
  (** The MAC verified but [seq] is at or below [last], the highest
      sequence number already accepted. Cryptographically this is
      indistinguishable between an adversary replaying an old frame and
      a legitimately reordered frame arriving after a later one was
      accepted ({!recv} admits ahead-of-sequence frames, skipping gaps)
      — typed apart from {!Tampered} so callers can count
      reorder-induced loss separately from forgery. The frame is
      discarded; the link state is unchanged. *)
  | Closed
  (** Nothing to receive: no datagram is pending for this endpoint
      (the queue is empty — not necessarily torn down). *)
  | Decode of string
  (** The frame could not even be parsed (truncated or mis-framed);
      carries the parser's reason. *)

val recv_error_to_string : recv_error -> string

val recv : link -> (string, recv_error) result
(** Returns the next authenticated payload with a sequence number above
    every previously accepted one. Gaps are skipped (the link has no
    retransmission); a skipped frame arriving late surfaces as
    {!Stale}. *)

val sent : link -> int
val received : link -> int
