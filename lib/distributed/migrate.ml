(* Live domain migration over the fleet data plane.

   The protocol rides the ["migrate"] data channel of {!Fleet}, so
   sequencing, HMACs, the durable outbox, cumulative acks and capped
   retry are inherited rather than rebuilt. What this module adds:

   - content-addressed page transfer: the domain's memory is cut on the
     page grid, each piece shipped as [Chunk { hash; bytes }] and stored
     durably on the target keyed by hash — an [Offer] lists the hashes
     and the target's [Need] answers with only the ones it lacks, so a
     resumed (or repeated) migration never re-sends bytes the target
     already persisted, and zero pages collapse to one chunk;
   - a dual durable journal (the ["migrate"] blob on each store): every
     state transition is fsynced before the message it makes meaningful
     leaves, so a crash-restart of either endpoint resumes mid-protocol
     or aborts cleanly — the source domain stays frozen-but-alive until
     the target's fsck-verified receipt, and exactly one monitor hosts
     the domain once the journals drain;
   - the receipt chain: [Final] carries the domain's batch attestation
     and the Merkle root of the source's pre-migration batch-attest,
     plus portable digests of configuration and content. The target
     verifies measurement, Merkle inclusion, region agreement and —
     after adopting through the public logged monitor API — recomputes
     both digests from its own tree and memory before acking.

   Chunk bytes live in the same journal as the state records (they are
   [MT_chunk] records), NOT in the checkpoint segment blob: the
   monitor's segment GC validates node-list payloads and would drop
   opaque page bytes on its next sweep. *)

let ( let* ) = Result.bind

type error =
  | Fleet_error of Fleet.error
  | Monitor_error of Tyche.Monitor.error
  | Refused of string
  | Unknown_migration of string

let error_to_string = function
  | Fleet_error e -> Fleet.error_to_string e
  | Monitor_error e -> Tyche.Monitor.error_to_string e
  | Refused r -> "refused: " ^ r
  | Unknown_migration m -> "unknown migration: " ^ m

(* --- fault points ----------------------------------------------------- *)

(* Each fires as a power failure at the matching crash window:
   [migrate.chunk] while the target persists a chunk (the bytes and the
   journal record are lost together), [migrate.commit] at the source's
   two commit transitions (entering Committing, and the final
   destroy-and-proxy swap), [migrate.abort] before either endpoint's
   abort record is durable. *)
let chunk_point = Fault.register "migrate.chunk"
let commit_point = Fault.register "migrate.commit"
let abort_point = Fault.register "migrate.abort"

(* --- metrics ----------------------------------------------------------- *)

let started_c = Obs.Metrics.counter "migrate.started"
let committed_c = Obs.Metrics.counter "migrate.committed"
let aborted_c = Obs.Metrics.counter "migrate.aborted"
let resumed_c = Obs.Metrics.counter "migrate.resumed"
let chunks_tx_c = Obs.Metrics.counter "migrate.chunks_tx"
let chunks_rx_c = Obs.Metrics.counter "migrate.chunks_rx"
let dedup_c = Obs.Metrics.counter "migrate.chunks_deduped"
let reject_c = Obs.Metrics.counter "migrate.rejected"
let active_g = Obs.Metrics.gauge "migrate.active"

(* --- wire format ------------------------------------------------------- *)

module Wire = struct
  type manifest = {
    mf_name : string;
    mf_kind : int;
    mf_entry : int;
    mf_flush : bool;
    mf_measurement : string;
    mf_caps : (int * int * int * int) list;
    mf_measured : (int * int) list;
    mf_pages : (int * int * string) list;
    mf_dels : (string * int * int * int) list;
    mf_att : string;
    mf_root : string;
    mf_state : string;
    mf_image : string;
  }

  type frame =
    | Offer of { mig : string; hashes : string list }
    | Need of { mig : string; hashes : string list }
    | Chunk of { mig : string; hash : string; bytes : string }
    | Chunk_ack of { mig : string; hash : string }
    | Final of { mig : string; manifest : manifest }
    | Receipt of { mig : string; image : string }
    | Commit of { mig : string }
    | Abort of { mig : string; reason : string }

  let digest32 r =
    let s = Persist.Wire.get_str r in
    if String.length s <> 32 then raise (Persist.Wire.Corrupt "digest is not 32 bytes");
    s

  let put_manifest buf mf =
    Persist.Wire.str buf mf.mf_name;
    Persist.Wire.u8 buf mf.mf_kind;
    Persist.Wire.i64 buf mf.mf_entry;
    Persist.Wire.bool_ buf mf.mf_flush;
    Persist.Wire.str buf mf.mf_measurement;
    Persist.Wire.list buf
      (fun b (base, len, rights, cleanup) ->
        Persist.Wire.i64 b base;
        Persist.Wire.i64 b len;
        Persist.Wire.u8 b rights;
        Persist.Wire.u8 b cleanup)
      mf.mf_caps;
    Persist.Wire.list buf
      (fun b (base, len) ->
        Persist.Wire.i64 b base;
        Persist.Wire.i64 b len)
      mf.mf_measured;
    Persist.Wire.list buf
      (fun b (base, len, hash) ->
        Persist.Wire.i64 b base;
        Persist.Wire.i64 b len;
        Persist.Wire.str b hash)
      mf.mf_pages;
    Persist.Wire.list buf
      (fun b (peer, base, len, rights) ->
        Persist.Wire.str b peer;
        Persist.Wire.i64 b base;
        Persist.Wire.i64 b len;
        Persist.Wire.u8 b rights)
      mf.mf_dels;
    Persist.Wire.str buf mf.mf_att;
    Persist.Wire.str buf mf.mf_root;
    Persist.Wire.str buf mf.mf_state;
    Persist.Wire.str buf mf.mf_image

  let get_manifest r =
    let mf_name = Persist.Wire.get_str r in
    let mf_kind = Persist.Wire.get_u8 r in
    let mf_entry = Persist.Wire.get_i64 r in
    let mf_flush = Persist.Wire.get_bool r in
    let mf_measurement = digest32 r in
    let mf_caps =
      Persist.Wire.get_list r (fun b ->
          let base = Persist.Wire.get_i64 b in
          let len = Persist.Wire.get_i64 b in
          let rights = Persist.Wire.get_u8 b in
          let cleanup = Persist.Wire.get_u8 b in
          (base, len, rights, cleanup))
    in
    let mf_measured =
      Persist.Wire.get_list r (fun b ->
          let base = Persist.Wire.get_i64 b in
          let len = Persist.Wire.get_i64 b in
          (base, len))
    in
    let mf_pages =
      Persist.Wire.get_list r (fun b ->
          let base = Persist.Wire.get_i64 b in
          let len = Persist.Wire.get_i64 b in
          let hash = digest32 b in
          (base, len, hash))
    in
    let mf_dels =
      Persist.Wire.get_list r (fun b ->
          let peer = Persist.Wire.get_str b in
          let base = Persist.Wire.get_i64 b in
          let len = Persist.Wire.get_i64 b in
          let rights = Persist.Wire.get_u8 b in
          (peer, base, len, rights))
    in
    let mf_att = Persist.Wire.get_str r in
    let mf_root = digest32 r in
    let mf_state = digest32 r in
    let mf_image = digest32 r in
    { mf_name; mf_kind; mf_entry; mf_flush; mf_measurement; mf_caps; mf_measured;
      mf_pages; mf_dels; mf_att; mf_root; mf_state; mf_image }

  let encode_manifest mf =
    let buf = Buffer.create 512 in
    put_manifest buf mf;
    Buffer.contents buf

  let decode_manifest s =
    match
      let r = Persist.Wire.reader s in
      let mf = get_manifest r in
      Persist.Wire.expect_end r;
      mf
    with
    | mf -> Ok mf
    | exception Persist.Wire.Corrupt e -> Error e

  let encode_frame f =
    let buf = Buffer.create 64 in
    (match f with
    | Offer { mig; hashes } ->
      Persist.Wire.u8 buf 1;
      Persist.Wire.str buf mig;
      Persist.Wire.list buf Persist.Wire.str hashes
    | Need { mig; hashes } ->
      Persist.Wire.u8 buf 2;
      Persist.Wire.str buf mig;
      Persist.Wire.list buf Persist.Wire.str hashes
    | Chunk { mig; hash; bytes } ->
      Persist.Wire.u8 buf 3;
      Persist.Wire.str buf mig;
      Persist.Wire.str buf hash;
      Persist.Wire.str buf bytes
    | Chunk_ack { mig; hash } ->
      Persist.Wire.u8 buf 4;
      Persist.Wire.str buf mig;
      Persist.Wire.str buf hash
    | Final { mig; manifest } ->
      Persist.Wire.u8 buf 5;
      Persist.Wire.str buf mig;
      put_manifest buf manifest
    | Receipt { mig; image } ->
      Persist.Wire.u8 buf 6;
      Persist.Wire.str buf mig;
      Persist.Wire.str buf image
    | Commit { mig } ->
      Persist.Wire.u8 buf 7;
      Persist.Wire.str buf mig
    | Abort { mig; reason } ->
      Persist.Wire.u8 buf 8;
      Persist.Wire.str buf mig;
      Persist.Wire.str buf reason);
    Buffer.contents buf

  let decode_frame s =
    match
      let r = Persist.Wire.reader s in
      let f =
        match Persist.Wire.get_u8 r with
        | 1 ->
          let mig = Persist.Wire.get_str r in
          Offer { mig; hashes = Persist.Wire.get_list r digest32 }
        | 2 ->
          let mig = Persist.Wire.get_str r in
          Need { mig; hashes = Persist.Wire.get_list r digest32 }
        | 3 ->
          let mig = Persist.Wire.get_str r in
          let hash = digest32 r in
          let bytes = Persist.Wire.get_str r in
          Chunk { mig; hash; bytes }
        | 4 ->
          let mig = Persist.Wire.get_str r in
          let hash = digest32 r in
          Chunk_ack { mig; hash }
        | 5 ->
          let mig = Persist.Wire.get_str r in
          Final { mig; manifest = get_manifest r }
        | 6 ->
          let mig = Persist.Wire.get_str r in
          Receipt { mig; image = digest32 r }
        | 7 -> Commit { mig = Persist.Wire.get_str r }
        | 8 ->
          let mig = Persist.Wire.get_str r in
          Abort { mig; reason = Persist.Wire.get_str r }
        | t -> raise (Persist.Wire.Corrupt (Printf.sprintf "unknown migrate tag %d" t))
      in
      Persist.Wire.expect_end r;
      f
    with
    | f -> Ok f
    | exception Persist.Wire.Corrupt e -> Error e
end

(* --- durable journal --------------------------------------------------- *)

let migrate_blob = "migrate"

(* Source records trace Offered → Streaming → Committing → Committed;
   target records trace Receiving → Parked → Live. Chunks are plain
   journal records so the content-addressed store and the protocol
   state share one fsync discipline. *)
type jrec =
  | MS_begin of { mig : string; domain : int; peer : string; name : string }
  | MS_frozen of { mig : string; image : string }
      (* [image] is the offered manifest's image digest: a resumed
         source accepts a receipt for it even when its own volatile page
         content died with the crash (the target's adopted copy is then
         the only surviving copy of the pre-crash content). *)
  | MS_receipt of { mig : string; image : string }
  | MS_committing of { mig : string }
  | MS_done of { mig : string }
  | MS_abort of { mig : string; reason : string }
  | MT_begin of { mig : string; origin : string }
  | MT_chunk of { hash : string; bytes : string }
  | MT_final of { mig : string; manifest : string }
  | MT_adopting of { mig : string }
  | MT_adopted of { mig : string; domain : int; root : string }
      (* [root] pins the origin's attestation root the manifest was
         verified against at adoption time: the receipt stays bound to
         the source's PRE-migration batch root even after the source
         crash-recovers under a fresh signer. *)
  | MT_live of { mig : string }
  | MT_abort of { mig : string; reason : string }

let encode_jrec r =
  let buf = Buffer.create 48 in
  (match r with
  | MS_begin { mig; domain; peer; name } ->
    Persist.Wire.u8 buf 1;
    Persist.Wire.str buf mig;
    Persist.Wire.i64 buf domain;
    Persist.Wire.str buf peer;
    Persist.Wire.str buf name
  | MS_frozen { mig; image } ->
    Persist.Wire.u8 buf 2;
    Persist.Wire.str buf mig;
    Persist.Wire.str buf image
  | MS_receipt { mig; image } ->
    Persist.Wire.u8 buf 3;
    Persist.Wire.str buf mig;
    Persist.Wire.str buf image
  | MS_committing { mig } ->
    Persist.Wire.u8 buf 4;
    Persist.Wire.str buf mig
  | MS_done { mig } ->
    Persist.Wire.u8 buf 5;
    Persist.Wire.str buf mig
  | MS_abort { mig; reason } ->
    Persist.Wire.u8 buf 6;
    Persist.Wire.str buf mig;
    Persist.Wire.str buf reason
  | MT_begin { mig; origin } ->
    Persist.Wire.u8 buf 7;
    Persist.Wire.str buf mig;
    Persist.Wire.str buf origin
  | MT_chunk { hash; bytes } ->
    Persist.Wire.u8 buf 8;
    Persist.Wire.str buf hash;
    Persist.Wire.str buf bytes
  | MT_final { mig; manifest } ->
    Persist.Wire.u8 buf 9;
    Persist.Wire.str buf mig;
    Persist.Wire.str buf manifest
  | MT_adopting { mig } ->
    Persist.Wire.u8 buf 10;
    Persist.Wire.str buf mig
  | MT_adopted { mig; domain; root } ->
    Persist.Wire.u8 buf 11;
    Persist.Wire.str buf mig;
    Persist.Wire.i64 buf domain;
    Persist.Wire.str buf root
  | MT_live { mig } ->
    Persist.Wire.u8 buf 12;
    Persist.Wire.str buf mig
  | MT_abort { mig; reason } ->
    Persist.Wire.u8 buf 13;
    Persist.Wire.str buf mig;
    Persist.Wire.str buf reason);
  Buffer.contents buf

let decode_jrec payload =
  match
    let r = Persist.Wire.reader payload in
    let rec_ =
      match Persist.Wire.get_u8 r with
      | 1 ->
        let mig = Persist.Wire.get_str r in
        let domain = Persist.Wire.get_i64 r in
        let peer = Persist.Wire.get_str r in
        let name = Persist.Wire.get_str r in
        MS_begin { mig; domain; peer; name }
      | 2 ->
        let mig = Persist.Wire.get_str r in
        MS_frozen { mig; image = Persist.Wire.get_str r }
      | 3 ->
        let mig = Persist.Wire.get_str r in
        MS_receipt { mig; image = Persist.Wire.get_str r }
      | 4 -> MS_committing { mig = Persist.Wire.get_str r }
      | 5 -> MS_done { mig = Persist.Wire.get_str r }
      | 6 ->
        let mig = Persist.Wire.get_str r in
        MS_abort { mig; reason = Persist.Wire.get_str r }
      | 7 ->
        let mig = Persist.Wire.get_str r in
        MT_begin { mig; origin = Persist.Wire.get_str r }
      | 8 ->
        let hash = Persist.Wire.get_str r in
        MT_chunk { hash; bytes = Persist.Wire.get_str r }
      | 9 ->
        let mig = Persist.Wire.get_str r in
        MT_final { mig; manifest = Persist.Wire.get_str r }
      | 10 -> MT_adopting { mig = Persist.Wire.get_str r }
      | 11 ->
        let mig = Persist.Wire.get_str r in
        let domain = Persist.Wire.get_i64 r in
        MT_adopted { mig; domain; root = Persist.Wire.get_str r }
      | 12 -> MT_live { mig = Persist.Wire.get_str r }
      | 13 ->
        let mig = Persist.Wire.get_str r in
        MT_abort { mig; reason = Persist.Wire.get_str r }
      | t -> raise (Persist.Wire.Corrupt (Printf.sprintf "unknown migrate jrec %d" t))
    in
    Persist.Wire.expect_end r;
    rec_
  with
  | r -> Some r
  | exception Persist.Wire.Corrupt _ -> None

(* --- runtime state ----------------------------------------------------- *)

type src_phase =
  | S_streaming
  | S_await_receipt
  | S_committing
  | S_done
  | S_aborted of string

type src = {
  sm_mig : string;
  sm_domain : int;
  sm_peer : string;
  sm_name : string;
  mutable sm_phase : src_phase;
  mutable sm_offered : bool; (* Offer acknowledged send since (re)start. *)
  mutable sm_need_seen : bool; (* The target answered with its Need. *)
  mutable sm_prior_images : string list;
      (* Image digests journaled at freeze time by pre-crash lives of
         this migration; a receipt for any of them is still acceptable
         (each was a genuine manifest of the frozen domain at the time
         it was offered). *)
  mutable sm_commit_due : bool; (* Re-send Commit after recovery. *)
  mutable sm_pages : (string * string) list; (* hash -> bytes, volatile. *)
  mutable sm_todo : string list;
  mutable sm_inflight : string list;
  mutable sm_manifest : Wire.manifest option;
}

type tgt_phase =
  | T_receiving
  | T_adopted of int
  | T_live of int
  | T_aborted of string

type tgt = {
  tm_mig : string;
  tm_origin : string;
  mutable tm_phase : tgt_phase;
  mutable tm_manifest : Wire.manifest option;
  mutable tm_adopt_due : bool; (* Re-run adoption after recovery. *)
  mutable tm_cleanup : bool; (* A partial adopt may exist; destroy it first. *)
  mutable tm_receipt_due : bool;
  mutable tm_root : string option;
      (* Origin attestation root pinned at adoption (raw digest); the
         receipt verifies against it, not the mutable peer-root table. *)
  mutable tm_redelegate : (string * int * int * int) list;
}

type t = {
  fleet : Fleet.t;
  store : Persist.Store.t;
  window : int;
  mutable jseq : int;
  chunks : (string, string) Hashtbl.t; (* hash -> bytes, durable mirror. *)
  srcs : (string, src) Hashtbl.t;
  tgts : (string, tgt) Hashtbl.t;
  mutable counter : int;
  peer_roots : (string, Crypto.Sha256.digest) Hashtbl.t; (* volatile *)
  deferred : (string * Wire.frame) Queue.t; (* (peer, frame) awaiting a session. *)
}

type role = Source | Target

type phase =
  | Offered
  | Streaming
  | Committing
  | Committed
  | Receiving
  | Parked
  | Live
  | Aborted of string

let pp_phase fmt = function
  | Offered -> Format.pp_print_string fmt "offered"
  | Streaming -> Format.pp_print_string fmt "streaming"
  | Committing -> Format.pp_print_string fmt "committing"
  | Committed -> Format.pp_print_string fmt "committed"
  | Receiving -> Format.pp_print_string fmt "receiving"
  | Parked -> Format.pp_print_string fmt "parked"
  | Live -> Format.pp_print_string fmt "live"
  | Aborted r -> Format.fprintf fmt "aborted (%s)" r

let src_phase s =
  match s.sm_phase with
  | S_streaming -> if s.sm_offered then Streaming else Offered
  | S_await_receipt -> Streaming
  | S_committing -> Committing
  | S_done -> Committed
  | S_aborted r -> Aborted r

let tgt_phase tg =
  match tg.tm_phase with
  | T_receiving -> Receiving
  | T_adopted _ -> Parked
  | T_live _ -> Live
  | T_aborted r -> Aborted r

let terminal_src s = match s.sm_phase with S_done | S_aborted _ -> true | _ -> false
let terminal_tgt tg = match tg.tm_phase with T_live _ | T_aborted _ -> true | _ -> false

let update_active t =
  let n = ref 0 in
  Hashtbl.iter (fun _ s -> if not (terminal_src s) then incr n) t.srcs;
  Hashtbl.iter (fun _ tg -> if not (terminal_tgt tg) then incr n) t.tgts;
  Obs.Metrics.set_gauge active_g !n

let monitor t = Fleet.monitor t.fleet

let jput t r =
  t.jseq <- t.jseq + 1;
  Persist.Wal.append t.store ~blob:migrate_blob ~seq:t.jseq (encode_jrec r)

(* Like the fleet journal: the monitor's group commit flushes first, so
   a migrate record never references monitor state that did not make it
   to disk. *)
let jsync t =
  Tyche.Monitor.flush (monitor t);
  Persist.Store.fsync t.store migrate_blob

let crash_at point what =
  fun store ->
   if Fault.fires point then begin
     Persist.Store.power_fail store;
     raise (Persist.Store.Crash what)
   end

let crash_chunk = crash_at chunk_point "migrate.chunk"
let crash_commit = crash_at commit_point "migrate.commit"
let crash_abort = crash_at abort_point "migrate.abort"

let sha_raw s = Crypto.Sha256.(to_raw (string s))

(* --- sending ----------------------------------------------------------- *)

(* Best-effort send with a deferred queue: a frame that cannot leave yet
   (peer not re-keyed after recovery) is retried from [tick]. Offers are
   never deferred — the source re-offers from tick until one sends. *)
let post t ~peer frame =
  match Fleet.send_data t.fleet ~peer ~chan:migrate_blob (Wire.encode_frame frame) with
  | Ok _ -> true
  | Error _ ->
    Queue.add (peer, frame) t.deferred;
    false

let try_send t ~peer frame =
  match Fleet.send_data t.fleet ~peer ~chan:migrate_blob (Wire.encode_frame frame) with
  | Ok _ -> true
  | Error _ -> false

(* --- portable digests -------------------------------------------------- *)

(* The state digest covers everything about the domain that must arrive
   intact and that both monitors can recompute from their own trees:
   identity, configuration, measurement, and the (base, len, rights,
   cleanup) set of its memory capabilities. Machine-specific facts —
   domain ids, refcounts, proxy holders, core/device caps — are
   deliberately excluded. The image digest adds the page contents. *)
let state_digest ~name ~kind ~entry ~flush ~measurement ~caps ~measured =
  let buf = Buffer.create 256 in
  Persist.Wire.str buf "tyche-migrate-state-v1";
  Persist.Wire.str buf name;
  Persist.Wire.u8 buf kind;
  Persist.Wire.i64 buf entry;
  Persist.Wire.bool_ buf flush;
  Persist.Wire.str buf measurement;
  Persist.Wire.list buf
    (fun b (base, len, rights, cleanup) ->
      Persist.Wire.i64 b base;
      Persist.Wire.i64 b len;
      Persist.Wire.u8 b rights;
      Persist.Wire.u8 b cleanup)
    (List.sort compare caps);
  Persist.Wire.list buf
    (fun b (base, len) ->
      Persist.Wire.i64 b base;
      Persist.Wire.i64 b len)
    measured;
  sha_raw (Buffer.contents buf)

let image_digest ~state ~pages =
  let buf = Buffer.create 256 in
  Persist.Wire.str buf "tyche-migrate-image-v1";
  Persist.Wire.str buf state;
  Persist.Wire.list buf
    (fun b (base, len, hash) ->
      Persist.Wire.i64 b base;
      Persist.Wire.i64 b len;
      Persist.Wire.str b hash)
    (List.sort compare pages);
  sha_raw (Buffer.contents buf)

(* --- domain enumeration ------------------------------------------------ *)

let kind_to_int = function
  | Tyche.Domain.Os -> 0
  | Tyche.Domain.Sandbox -> 1
  | Tyche.Domain.Enclave -> 2
  | Tyche.Domain.Confidential_vm -> 3
  | Tyche.Domain.Io_domain -> 4
  | Tyche.Domain.Remote -> 5

let kind_of_int = function
  | 0 -> Some Tyche.Domain.Os
  | 1 -> Some Tyche.Domain.Sandbox
  | 2 -> Some Tyche.Domain.Enclave
  | 3 -> Some Tyche.Domain.Confidential_vm
  | 4 -> Some Tyche.Domain.Io_domain
  | 5 -> Some Tyche.Domain.Remote
  | _ -> None

let cleanup_to_int = function
  | Cap.Revocation.Keep -> 0
  | Cap.Revocation.Zero -> 1
  | Cap.Revocation.Flush_cache -> 2
  | Cap.Revocation.Zero_and_flush -> 3

let cleanup_of_int = function
  | 0 -> Cap.Revocation.Keep
  | 1 -> Cap.Revocation.Zero
  | 2 -> Cap.Revocation.Flush_cache
  | _ -> Cap.Revocation.Zero_and_flush

(* The domain's active memory caps as portable tuples. *)
let mem_caps m domain =
  let tree = Tyche.Monitor.tree m in
  List.filter_map
    (fun cap ->
      match Cap.Captree.resource tree cap with
      | Some (Cap.Resource.Memory r) ->
        let rights =
          match Cap.Captree.rights tree cap with
          | Some rt -> Fleet.Wire.rights_bits rt
          | None -> 0
        in
        let cleanup =
          match Cap.Captree.cleanup tree cap with
          | Some c -> cleanup_to_int c
          | None -> 0
        in
        Some (Hw.Addr.Range.base r, Hw.Addr.Range.len r, rights, cleanup)
      | _ -> None)
    (Cap.Captree.caps_of_domain tree domain)

(* Cut ranges on the page grid: content-addressing at page granularity
   is what makes re-sends and zero pages dedup. *)
let page_pieces ranges =
  List.concat_map
    (fun (base, len) ->
      let rec go b acc =
        if b >= base + len then List.rev acc
        else
          let nxt = min (base + len) (Hw.Addr.align_down b + Hw.Addr.page_size) in
          go nxt ((b, nxt - b) :: acc)
      in
      go base [])
    ranges

let read_pages m pieces =
  let mem = (Tyche.Monitor.machine m).Hw.Machine.mem in
  List.map
    (fun (base, len) ->
      let bytes = Hw.Physmem.read mem (Hw.Addr.Range.make ~base ~len) in
      (base, len, sha_raw bytes, bytes))
    pieces

(* Recompute the portable digests from this monitor's own tree and
   memory — what the target checks after adoption, and what
   [verify_receipt] re-checks after any crash. *)
let local_digests m domain =
  match Tyche.Monitor.find_domain m domain with
  | None -> None
  | Some dom ->
    (match Tyche.Domain.measurement dom with
    | None -> None
    | Some meas ->
      let caps = mem_caps m domain in
      let measured =
        List.map
          (fun r -> (Hw.Addr.Range.base r, Hw.Addr.Range.len r))
          (Tyche.Domain.measured_ranges dom)
      in
      let state =
        state_digest ~name:(Tyche.Domain.name dom)
          ~kind:(kind_to_int (Tyche.Domain.kind dom))
          ~entry:(Option.value (Tyche.Domain.entry_point dom) ~default:(-1))
          ~flush:(Tyche.Domain.flush_on_transition dom)
          ~measurement:(Crypto.Sha256.to_raw meas) ~caps ~measured
      in
      let pages =
        read_pages m (page_pieces (List.map (fun (b, l, _, _) -> (b, l)) caps))
        |> List.map (fun (b, l, h, _) -> (b, l, h))
      in
      Some (state, image_digest ~state ~pages))

(* Outbound fleet delegations whose local parent cap is owned by the
   domain — the set commit re-homes. *)
let dels_of_domain t domain =
  let tree = Tyche.Monitor.tree (monitor t) in
  List.filter
    (fun d ->
      match Cap.Captree.parent tree d.Fleet.proxy_cap with
      | Some p -> Cap.Captree.owner tree p = Some domain
      | None -> false)
    (Fleet.delegations t.fleet)

(* --- source: manifest construction ------------------------------------- *)

let build_manifest t src =
  let m = monitor t in
  match Tyche.Monitor.find_domain m src.sm_domain with
  | None -> Error (Refused "domain disappeared")
  | Some dom ->
    (match Tyche.Domain.measurement dom with
    | None -> Error (Refused "only sealed domains migrate")
    | Some meas ->
      let caps = mem_caps m src.sm_domain in
      let pages4 =
        read_pages m (page_pieces (List.map (fun (b, l, _, _) -> (b, l)) caps))
      in
      let pages = List.map (fun (b, l, h, _) -> (b, l, h)) pages4 in
      (* Dedup the byte map by hash (zero pages collapse here too). *)
      let bytes_by_hash =
        List.fold_left
          (fun acc (_, _, h, bytes) -> if List.mem_assoc h acc then acc else (h, bytes) :: acc)
          [] pages4
      in
      let measured =
        List.map
          (fun r -> (Hw.Addr.Range.base r, Hw.Addr.Range.len r))
          (Tyche.Domain.measured_ranges dom)
      in
      let dels =
        List.filter_map
          (fun d ->
            match d.Fleet.del_state with
            | Fleet.Active ->
              Some (d.Fleet.del_peer, d.Fleet.del_base, d.Fleet.del_len, d.Fleet.del_rights)
            | _ -> None)
          (dels_of_domain t src.sm_domain)
      in
      let domains = List.map Tyche.Domain.id (Tyche.Monitor.domains m) in
      (match
         Tyche.Monitor.attest_batch m ~caller:Tyche.Domain.initial ~domains
           ~nonce:("migrate:" ^ src.sm_mig)
       with
      | Error e -> Error (Monitor_error e)
      | Ok atts ->
        (match List.find_opt (fun a -> a.Tyche.Attestation.domain = src.sm_domain) atts with
        | None -> Error (Refused "domain missing from batch attestation")
        | Some att ->
          let root =
            match att.Tyche.Attestation.evidence with
            | Tyche.Attestation.Batched { batch_root; _ } -> Crypto.Sha256.to_raw batch_root
            | Tyche.Attestation.Signed _ -> sha_raw (Tyche.Attestation.payload att)
          in
          let entry = Option.value (Tyche.Domain.entry_point dom) ~default:(-1) in
          let state =
            state_digest ~name:(Tyche.Domain.name dom)
              ~kind:(kind_to_int (Tyche.Domain.kind dom))
              ~entry ~flush:(Tyche.Domain.flush_on_transition dom)
              ~measurement:(Crypto.Sha256.to_raw meas) ~caps ~measured
          in
          let image = image_digest ~state ~pages in
          let mf =
            { Wire.mf_name = Tyche.Domain.name dom;
              mf_kind = kind_to_int (Tyche.Domain.kind dom);
              mf_entry = entry;
              mf_flush = Tyche.Domain.flush_on_transition dom;
              mf_measurement = Crypto.Sha256.to_raw meas;
              mf_caps = caps;
              mf_measured = measured;
              mf_pages = pages;
              mf_dels = dels;
              mf_att = Tyche.Attestation.to_wire att;
              mf_root = root;
              mf_state = state;
              mf_image = image }
          in
          src.sm_pages <- bytes_by_hash;
          src.sm_manifest <- Some mf;
          Ok mf)))

(* --- source: admission and start --------------------------------------- *)

let remote_domain_ids m =
  List.filter_map
    (fun d ->
      if Tyche.Domain.kind d = Tyche.Domain.Remote then Some (Tyche.Domain.id d) else None)
    (Tyche.Monitor.domains m)

let admit_source t ~domain =
  let m = monitor t in
  match Tyche.Monitor.find_domain m domain with
  | None -> Error (Monitor_error (Tyche.Monitor.Unknown_domain domain))
  | Some dom ->
    if domain = Tyche.Domain.initial then Error (Refused "domain 0 cannot migrate")
    else if Tyche.Domain.kind dom = Tyche.Domain.Remote then
      Error (Refused "a remote proxy cannot migrate")
    else if not (Tyche.Domain.is_sealed dom) then
      Error (Refused "only sealed domains migrate")
    else if Tyche.Monitor.domain_frozen m ~domain then
      Error (Refused "domain is already mid-migration")
    else begin
      let tree = Tyche.Monitor.tree m in
      let remotes = remote_domain_ids m in
      let ranges =
        List.filter_map
          (fun cap ->
            match Cap.Captree.resource tree cap with
            | Some (Cap.Resource.Memory r) -> Some r
            | _ -> None)
          (Cap.Captree.caps_of_domain tree domain)
      in
      (* Exclusive up to fleet delegations: a local co-holder could
         mutate the image mid-transfer and cannot be re-homed. *)
      let foreign =
        List.exists
          (fun r ->
            List.exists
              (fun h -> h <> domain && not (List.mem h remotes))
              (Cap.Captree.holders tree (Cap.Resource.Memory r)))
          ranges
      in
      (* A pending cross-machine revocation overlapping the domain's
         holdings could revoke bytes out from under the stream. *)
      let pending =
        List.exists
          (fun cap ->
            match Cap.Captree.resource tree cap with
            | Some (Cap.Resource.Memory pr) ->
              List.exists (fun r -> Hw.Addr.Range.overlaps pr r) ranges
            | _ -> false)
          (Fleet.pending_revokes t.fleet)
      in
      if foreign then Error (Refused "memory is shared with a local domain")
      else if pending then Error (Refused "overlaps a pending cross-machine revocation")
      else Ok dom
    end

let offer_hashes mf =
  List.sort_uniq compare (List.map (fun (_, _, h) -> h) mf.Wire.mf_pages)

let send_offer t src =
  match src.sm_manifest with
  | None -> ()
  | Some mf ->
    if try_send t ~peer:src.sm_peer (Wire.Offer { mig = src.sm_mig; hashes = offer_hashes mf })
    then src.sm_offered <- true

let start t ~domain ~peer =
  let m = monitor t in
  let* dom = admit_source t ~domain in
  let mig = Printf.sprintf "%s:%d" (Fleet.endpoint_name t.fleet) t.counter in
  t.counter <- t.counter + 1;
  jput t (MS_begin { mig; domain; peer; name = Tyche.Domain.name dom });
  jsync t;
  match Tyche.Monitor.freeze_domain m ~domain with
  | Error e ->
    jput t (MS_abort { mig; reason = "freeze refused" });
    jsync t;
    Error (Monitor_error e)
  | Ok () ->
    let src =
      { sm_mig = mig; sm_domain = domain; sm_peer = peer;
        sm_name = Tyche.Domain.name dom; sm_phase = S_streaming; sm_offered = false;
        sm_need_seen = false; sm_prior_images = []; sm_commit_due = false;
        sm_pages = []; sm_todo = []; sm_inflight = []; sm_manifest = None }
    in
    (match build_manifest t src with
    | Error e ->
      jput t (MS_abort { mig; reason = "manifest build failed" });
      jsync t;
      ignore (Tyche.Monitor.thaw_domain m ~domain);
      Error e
    | Ok _ ->
      let image =
        match src.sm_manifest with Some mf -> mf.Wire.mf_image | None -> ""
      in
      jput t (MS_frozen { mig; image });
      jsync t;
      Hashtbl.replace t.srcs mig src;
      Obs.Metrics.incr started_c;
      send_offer t src;
      update_active t;
      Ok mig)

(* --- source: streaming ------------------------------------------------- *)

(* Final must trail every chunk: the fleet channel is FIFO, so waiting
   for the target's Need (and for every streamed chunk's ack) before
   posting Final guarantees the manifest never outruns its chunks. *)
let maybe_final t src =
  if
    src.sm_need_seen && src.sm_todo = [] && src.sm_inflight = []
    && src.sm_phase = S_streaming
  then begin
    match src.sm_manifest with
    | Some mf ->
      if post t ~peer:src.sm_peer (Wire.Final { mig = src.sm_mig; manifest = mf }) then ();
      src.sm_phase <- S_await_receipt
    | None -> ()
  end

let pump t src =
  let rec go () =
    if List.length src.sm_inflight < t.window then
      match src.sm_todo with
      | [] -> ()
      | h :: rest ->
        src.sm_todo <- rest;
        (match List.assoc_opt h src.sm_pages with
        | None -> go () (* not ours; target asked for a stale hash *)
        | Some bytes ->
          src.sm_inflight <- h :: src.sm_inflight;
          Obs.Metrics.incr chunks_tx_c;
          ignore (post t ~peer:src.sm_peer (Wire.Chunk { mig = src.sm_mig; hash = h; bytes }));
          go ())
  in
  go ();
  maybe_final t src

(* --- source: abort ----------------------------------------------------- *)

let source_abort t src ~reason ~notify =
  if not (terminal_src src) then begin
    crash_abort t.store;
    jput t (MS_abort { mig = src.sm_mig; reason });
    jsync t;
    (match Tyche.Monitor.find_domain (monitor t) src.sm_domain with
    | Some _ -> ignore (Tyche.Monitor.thaw_domain (monitor t) ~domain:src.sm_domain)
    | None -> ());
    src.sm_phase <- S_aborted reason;
    Obs.Metrics.incr aborted_c;
    if notify then ignore (post t ~peer:src.sm_peer (Wire.Abort { mig = src.sm_mig; reason }));
    update_active t
  end

(* --- source: commit ---------------------------------------------------- *)

let finish_commit t src =
  let m = monitor t in
  crash_commit t.store;
  let proxy_name = "remote:" ^ src.sm_peer ^ ":" ^ src.sm_name in
  let destroy_ok =
    match Tyche.Monitor.find_domain m src.sm_domain with
    | None -> true (* already destroyed by a pre-crash attempt *)
    | Some dom ->
      (* The domain must not be the proxy we are about to create (resumed
         run) — ids never alias names, so a name check suffices. *)
      let caller =
        Option.value (Tyche.Domain.created_by dom) ~default:Tyche.Domain.initial
      in
      ignore (Tyche.Monitor.thaw_domain m ~domain:src.sm_domain);
      (match Tyche.Monitor.destroy_domain m ~caller ~domain:src.sm_domain with
      | Ok () -> true
      | Error _ -> false)
  in
  if not destroy_ok then
    (* The local copy could not be retired; the target has not been told
       to go live, so aborting keeps exactly one copy runnable. *)
    source_abort t src ~reason:"local destroy failed" ~notify:true
  else begin
    let exists =
      List.exists
        (fun d -> Tyche.Domain.name d = proxy_name)
        (Tyche.Monitor.domains m)
    in
    if not exists then
      ignore
        (Tyche.Monitor.create_domain m ~caller:Tyche.Domain.initial ~name:proxy_name
           ~kind:Tyche.Domain.Remote);
    jput t (MS_done { mig = src.sm_mig });
    jsync t;
    ignore (post t ~peer:src.sm_peer (Wire.Commit { mig = src.sm_mig }));
    src.sm_phase <- S_done;
    Obs.Metrics.incr committed_c;
    update_active t
  end

(* Idempotent; re-entered from tick until the re-homed delegations'
   remote acks all land. *)
let advance_commit t src =
  match Tyche.Monitor.find_domain (monitor t) src.sm_domain with
  | None -> finish_commit t src
  | Some _ ->
    let dels = dels_of_domain t src.sm_domain in
    List.iter
      (fun d ->
        if d.Fleet.del_state = Fleet.Active then
          ignore (Fleet.revoke t.fleet ~caller:src.sm_domain ~cap:d.Fleet.proxy_cap))
      dels;
    let blocking =
      List.exists (fun d -> d.Fleet.del_state <> Fleet.Revoked) (dels_of_domain t src.sm_domain)
    in
    if not blocking then finish_commit t src

let on_receipt t src image =
  match src.sm_phase with
  | S_await_receipt | S_streaming ->
    let expected =
      match src.sm_manifest with Some mf -> mf.Wire.mf_image | None -> ""
    in
    (* A receipt for an image journaled by a pre-crash life of this
       migration is equally binding: the target's adopted copy carries
       the pre-crash content, which this machine no longer holds. *)
    if image <> expected && not (List.mem image src.sm_prior_images) then
      source_abort t src ~reason:"receipt digest mismatch" ~notify:true
    else begin
      crash_commit t.store;
      jput t (MS_receipt { mig = src.sm_mig; image });
      jput t (MS_committing { mig = src.sm_mig });
      jsync t;
      src.sm_phase <- S_committing;
      advance_commit t src
    end
  | S_done ->
    (* A duplicate receipt after commit means the target never saw the
       Commit (e.g. it died in flight across a target restart): answer
       it again. The target absorbs duplicate Commits. *)
    src.sm_commit_due <- true
  | S_committing | S_aborted _ -> () (* duplicate receipt *)

(* --- target: adoption -------------------------------------------------- *)

(* Verify the receipt chain before any monitor mutation: measurement,
   batch-root binding, Merkle inclusion of the domain's attestation in
   the source's pre-migration batch-attest root, root signature when the
   source's key is installed, and region agreement between the signed
   attestation and the manifest. *)
let verify_manifest t ?pinned_root ~origin (mf : Wire.manifest) =
  match Tyche.Attestation.of_wire mf.Wire.mf_att with
  | Error e -> Error ("attestation unparseable: " ^ e)
  | Ok att ->
    if att.Tyche.Attestation.measurement <> Some (Crypto.Sha256.of_raw mf.mf_measurement)
    then Error "measurement mismatch between manifest and attestation"
    else (
      match att.Tyche.Attestation.evidence with
      | Tyche.Attestation.Signed _ -> Error "attestation is not batch evidence"
      | Tyche.Attestation.Batched { batch_root; proof; root_sig = _ } ->
        if Crypto.Sha256.to_raw batch_root <> mf.mf_root then
          Error "attestation batch root does not match transfer root"
        else if
          not
            (Crypto.Merkle.verify ~root:batch_root
               ~leaf:(Crypto.Sha256.string (Tyche.Attestation.payload att))
               proof)
        then Error "attestation not included in transfer root"
        else (
          let root =
            match pinned_root with
            | Some _ -> pinned_root
            | None -> Hashtbl.find_opt t.peer_roots origin
          in
          match root with
          | Some root when not (Tyche.Attestation.verify ~monitor_root:root att) ->
            Error "transfer root signature rejected"
          | _ ->
            (* Region agreement: the attested memory footprint covers
               exactly the manifest's capability set. *)
            let att_ranges =
              List.map
                (fun r ->
                  ( Hw.Addr.Range.base r.Tyche.Attestation.range,
                    Hw.Addr.Range.len r.Tyche.Attestation.range ))
                att.Tyche.Attestation.regions
              |> List.sort compare
            in
            let cover ranges =
              (* Merge sorted (base, len) into maximal extents. *)
              List.fold_left
                (fun acc (b, l) ->
                  match acc with
                  | (pb, pl) :: rest when pb + pl = b -> (pb, pl + l) :: rest
                  | _ -> (b, l) :: acc)
                [] (List.sort compare ranges)
              |> List.rev
            in
            let mf_ranges = List.map (fun (b, l, _, _) -> (b, l)) mf.mf_caps in
            if cover att_ranges <> cover mf_ranges then
              Error "attested regions disagree with manifest capabilities"
            else Ok att))

let adopt_cleanup m domain =
  ignore (Tyche.Monitor.thaw_domain m ~domain);
  match Tyche.Monitor.find_domain m domain with
  | None -> ()
  | Some dom ->
    let caller = Option.value (Tyche.Domain.created_by dom) ~default:Tyche.Domain.initial in
    ignore (Tyche.Monitor.destroy_domain m ~caller ~domain)

(* Reassemble the domain through the public logged API, so the target's
   own WAL replays the whole adoption. *)
let adopt t tg (mf : Wire.manifest) =
  let m = monitor t in
  let os_ = Tyche.Domain.initial in
  let tree = Tyche.Monitor.tree m in
  let mem = (Tyche.Monitor.machine m).Hw.Machine.mem in
  let fail_mon e = Error (Tyche.Monitor.error_to_string e) in
  (* Admission. *)
  let missing =
    List.filter (fun (_, _, h) -> not (Hashtbl.mem t.chunks h)) mf.mf_pages
  in
  if missing <> [] then Error "chunks missing from the durable store"
  else if List.exists (fun d -> Tyche.Domain.name d = mf.mf_name) (Tyche.Monitor.domains m)
  then Error ("domain name already in use: " ^ mf.mf_name)
  else if
    not
      (List.for_all
         (fun (base, len, _, _) ->
           let r = Cap.Resource.Memory (Hw.Addr.Range.make ~base ~len) in
           Cap.Captree.holders tree r = [ os_ ])
         mf.mf_caps)
  then Error "target ranges are not exclusively held by the OS"
  else (
    match verify_manifest t ~origin:tg.tm_origin mf with
    | Error e -> Error e
    | Ok _att ->
      (match kind_of_int mf.mf_kind with
      | None | Some Tyche.Domain.Os | Some Tyche.Domain.Remote ->
        Error "manifest names an inadmissible domain kind"
      | Some kind ->
        jput t (MT_adopting { mig = tg.tm_mig });
        jsync t;
        let result =
          let* domain =
            Result.map_error Tyche.Monitor.error_to_string
              (Tyche.Monitor.create_domain m ~caller:os_ ~name:mf.mf_name ~kind)
          in
          let rec caps_loop = function
            | [] -> Ok ()
            | (base, len, rights, cleanup) :: rest ->
              let range = Hw.Addr.Range.make ~base ~len in
              let donor =
                List.find_opt
                  (fun cap ->
                    Cap.Captree.owner tree cap = Some os_
                    &&
                    match Cap.Captree.resource tree cap with
                    | Some (Cap.Resource.Memory r) ->
                      Hw.Addr.Range.includes ~outer:r ~inner:range
                    | _ -> false)
                  (Cap.Captree.caps_of_domain tree os_)
              in
              (match donor with
              | None -> Error "no OS capability covers an adopted range"
              | Some cap ->
                (match Tyche.Monitor.carve m ~caller:os_ ~cap ~subrange:range with
                | Error e -> fail_mon e
                | Ok piece ->
                  (match
                     Tyche.Monitor.grant m ~caller:os_ ~cap:piece ~to_:domain
                       ~rights:(Fleet.Wire.rights_of_bits rights)
                       ~cleanup:(cleanup_of_int cleanup)
                   with
                  | Error e -> fail_mon e
                  | Ok _ -> caps_loop rest)))
          in
          let* () = caps_loop mf.mf_caps in
          List.iter
            (fun (base, _, h) -> Hw.Physmem.write mem base (Hashtbl.find t.chunks h))
            mf.mf_pages;
          let rec measured_loop = function
            | [] -> Ok ()
            | (base, len) :: rest ->
              (match
                 Tyche.Monitor.mark_measured m ~caller:os_ ~domain
                   (Hw.Addr.Range.make ~base ~len)
               with
              | Error e -> fail_mon e
              | Ok () -> measured_loop rest)
          in
          let* () = measured_loop mf.mf_measured in
          let* () =
            if mf.mf_entry < 0 then Ok ()
            else
              Result.map_error Tyche.Monitor.error_to_string
                (Tyche.Monitor.set_entry_point m ~caller:os_ ~domain mf.mf_entry)
          in
          let* () =
            Result.map_error Tyche.Monitor.error_to_string
              (Tyche.Monitor.set_flush_policy m ~caller:os_ ~domain mf.mf_flush)
          in
          let* () =
            Result.map_error Tyche.Monitor.error_to_string
              (Tyche.Monitor.adopt_seal m ~caller:os_ ~domain
                 ~measurement:(Crypto.Sha256.of_raw mf.mf_measurement))
          in
          Tyche.Monitor.flush m;
          let* () =
            Result.map_error Tyche.Monitor.error_to_string
              (Tyche.Monitor.freeze_domain m ~domain)
          in
          (* The commit ack is only sent over a verified reassembly. *)
          let* () =
            match local_digests m domain with
            | Some (state, image)
              when state = mf.mf_state && image = mf.mf_image -> Ok ()
            | Some _ -> Error "portable digest mismatch after adoption"
            | None -> Error "adopted domain unreadable"
          in
          let report = Tyche.Fsck.check m in
          if not (Tyche.Fsck.ok report) then Error "fsck rejected the adopted state"
          else Ok domain
        in
        (match result with
        | Error reason ->
          (* Undo the partial reassembly before reporting. *)
          (match
             List.find_opt (fun d -> Tyche.Domain.name d = mf.mf_name) (Tyche.Monitor.domains m)
           with
          | Some d -> adopt_cleanup m (Tyche.Domain.id d)
          | None -> ());
          Error reason
        | Ok domain ->
          let root =
            match Hashtbl.find_opt t.peer_roots tg.tm_origin with
            | Some r -> Crypto.Sha256.to_raw r
            | None -> ""
          in
          jput t (MT_adopted { mig = tg.tm_mig; domain; root });
          jsync t;
          if root <> "" then tg.tm_root <- Some root;
          tg.tm_phase <- T_adopted domain;
          tg.tm_adopt_due <- false;
          tg.tm_receipt_due <- true;
          Ok domain)))

let target_abort t tg ~reason ~notify =
  if not (terminal_tgt tg) then begin
    crash_abort t.store;
    jput t (MT_abort { mig = tg.tm_mig; reason });
    jsync t;
    (match tg.tm_phase with
    | T_adopted domain -> adopt_cleanup (monitor t) domain
    | _ -> ());
    tg.tm_phase <- T_aborted reason;
    Obs.Metrics.incr aborted_c;
    if notify then ignore (post t ~peer:tg.tm_origin (Wire.Abort { mig = tg.tm_mig; reason }));
    update_active t
  end

let run_adopt t tg =
  match tg.tm_manifest with
  | None -> ()
  | Some mf ->
    if tg.tm_cleanup then begin
      (match
         List.find_opt (fun d -> Tyche.Domain.name d = mf.Wire.mf_name)
           (Tyche.Monitor.domains (monitor t))
       with
      | Some d -> adopt_cleanup (monitor t) (Tyche.Domain.id d)
      | None -> ());
      tg.tm_cleanup <- false
    end;
    (match adopt t tg mf with
    | Ok _ ->
      if try_send t ~peer:tg.tm_origin (Wire.Receipt { mig = tg.tm_mig; image = mf.Wire.mf_image })
      then tg.tm_receipt_due <- false;
      update_active t
    | Error reason -> target_abort t tg ~reason ~notify:true)

(* --- target: re-delegation after commit -------------------------------- *)

let existing_delegation t ~peer ~base ~len =
  List.exists
    (fun d -> d.Fleet.del_peer = peer && d.Fleet.del_base = base && d.Fleet.del_len = len)
    (Fleet.delegations t.fleet)

let try_redelegate t tg domain =
  let m = monitor t in
  let tree = Tyche.Monitor.tree m in
  tg.tm_redelegate <-
    List.filter
      (fun (peer, base, len, rights) ->
        if existing_delegation t ~peer ~base ~len then false
        else
          let range = Hw.Addr.Range.make ~base ~len in
          let cap =
            List.find_opt
              (fun c ->
                match Cap.Captree.resource tree c with
                | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.includes ~outer:r ~inner:range
                | _ -> false)
              (Cap.Captree.caps_of_domain tree domain)
          in
          match cap with
          | None -> false (* range no longer held; drop the entry *)
          | Some cap ->
            (match
               Fleet.delegate t.fleet ~caller:domain ~cap ~peer ~subrange:range
                 ~rights:(Fleet.Wire.rights_of_bits rights) ()
             with
            | Ok _ -> false
            | Error _ -> true (* peer not connected yet; retry on tick *)))
      tg.tm_redelegate

let on_commit t tg =
  match tg.tm_phase with
  | T_adopted domain ->
    jput t (MT_live { mig = tg.tm_mig });
    jsync t;
    ignore (Tyche.Monitor.thaw_domain (monitor t) ~domain);
    tg.tm_phase <- T_live domain;
    (match tg.tm_manifest with
    | Some mf ->
      (* A delegation whose peer is this endpoint collapses to
         locality: the remote holder just became the local host. *)
      tg.tm_redelegate <-
        List.filter
          (fun (peer, _, _, _) -> peer <> Fleet.endpoint_name t.fleet)
          mf.Wire.mf_dels;
      try_redelegate t tg domain
    | None -> ());
    update_active t
  | T_live _ | T_receiving | T_aborted _ -> ()

(* --- inbound frame dispatch -------------------------------------------- *)

let ensure_tgt t ~origin mig =
  match Hashtbl.find_opt t.tgts mig with
  | Some tg -> tg
  | None ->
    jput t (MT_begin { mig; origin });
    jsync t;
    let tg =
      { tm_mig = mig; tm_origin = origin; tm_phase = T_receiving; tm_manifest = None;
        tm_adopt_due = false; tm_cleanup = false; tm_receipt_due = false;
        tm_root = None; tm_redelegate = [] }
    in
    Hashtbl.replace t.tgts mig tg;
    update_active t;
    tg

let store_chunk t hash bytes =
  if Hashtbl.mem t.chunks hash then Obs.Metrics.incr dedup_c
  else begin
    crash_chunk t.store;
    jput t (MT_chunk { hash; bytes });
    jsync t;
    Hashtbl.replace t.chunks hash bytes;
    Obs.Metrics.incr chunks_rx_c
  end

let handle t origin payload =
  match Wire.decode_frame payload with
  | Error _ -> Obs.Metrics.incr reject_c
  | Ok frame -> (
    match frame with
    | Wire.Offer { mig; hashes } ->
      let tg = ensure_tgt t ~origin mig in
      (match tg.tm_phase with
      | T_adopted _ ->
        (* Already parked a verified copy; a re-offer (resumed source)
           only needs the receipt re-bound, never a re-stream. *)
        List.iter (fun _ -> Obs.Metrics.incr dedup_c)
          (List.filter (fun h -> Hashtbl.mem t.chunks h) hashes);
        tg.tm_receipt_due <- true
      | T_receiving ->
        let missing = List.filter (fun h -> not (Hashtbl.mem t.chunks h)) hashes in
        List.iter (fun _ -> Obs.Metrics.incr dedup_c)
          (List.filter (fun h -> Hashtbl.mem t.chunks h) hashes);
        ignore (post t ~peer:origin (Wire.Need { mig; hashes = missing }))
      | T_live _ | T_aborted _ -> ())
    | Wire.Need { mig; hashes } -> (
      match Hashtbl.find_opt t.srcs mig with
      | None -> Obs.Metrics.incr reject_c
      | Some src ->
        if src.sm_phase = S_streaming then begin
          src.sm_need_seen <- true;
          src.sm_todo <-
            List.filter (fun h -> not (List.mem h src.sm_inflight)) hashes;
          pump t src
        end)
    | Wire.Chunk { mig; hash; bytes } ->
      let tg = ensure_tgt t ~origin mig in
      if not (terminal_tgt tg) then begin
        if sha_raw bytes <> hash then
          target_abort t tg ~reason:"chunk content does not match its hash" ~notify:true
        else begin
          store_chunk t hash bytes;
          ignore (post t ~peer:origin (Wire.Chunk_ack { mig; hash }))
        end
      end
    | Wire.Chunk_ack { mig; hash } -> (
      match Hashtbl.find_opt t.srcs mig with
      | None -> ()
      | Some src ->
        src.sm_inflight <- List.filter (fun h -> h <> hash) src.sm_inflight;
        if src.sm_phase = S_streaming then pump t src)
    | Wire.Final { mig; manifest } ->
      let tg = ensure_tgt t ~origin mig in
      (match tg.tm_phase with
      | T_receiving ->
        (* A re-offered migration may replace a stale manifest (the
           resumed source has a fresh signer); digests are unchanged. *)
        jput t (MT_final { mig; manifest = Wire.encode_manifest manifest });
        jsync t;
        tg.tm_manifest <- Some manifest;
        run_adopt t tg
      | T_adopted _ ->
        (* Duplicate Final after a crash window: receipt again. *)
        tg.tm_receipt_due <- true
      | T_live _ | T_aborted _ -> ())
    | Wire.Receipt { mig; image } -> (
      match Hashtbl.find_opt t.srcs mig with
      | None -> Obs.Metrics.incr reject_c
      | Some src -> on_receipt t src image)
    | Wire.Commit { mig } -> (
      match Hashtbl.find_opt t.tgts mig with
      | None -> Obs.Metrics.incr reject_c
      | Some tg -> on_commit t tg)
    | Wire.Abort { mig; reason } -> (
      match (Hashtbl.find_opt t.srcs mig, Hashtbl.find_opt t.tgts mig) with
      | Some src, _ -> source_abort t src ~reason:("peer: " ^ reason) ~notify:false
      | None, Some tg -> target_abort t tg ~reason:("peer: " ^ reason) ~notify:false
      | None, None -> ()))

(* --- driver ------------------------------------------------------------ *)

let tick t =
  (* Flush deferred frames first: sessions may have come back. *)
  let n = Queue.length t.deferred in
  for _ = 1 to n do
    let peer, frame = Queue.take t.deferred in
    if not (try_send t ~peer frame) then Queue.add (peer, frame) t.deferred
  done;
  Hashtbl.iter
    (fun _ src ->
      match src.sm_phase with
      | S_streaming ->
        if not src.sm_offered then send_offer t src else maybe_final t src
      | S_committing -> advance_commit t src
      | S_done ->
        if src.sm_commit_due then begin
          if try_send t ~peer:src.sm_peer (Wire.Commit { mig = src.sm_mig }) then
            src.sm_commit_due <- false
        end
      | S_await_receipt | S_aborted _ -> ())
    t.srcs;
  Hashtbl.iter
    (fun _ tg ->
      match tg.tm_phase with
      | T_receiving -> if tg.tm_adopt_due then run_adopt t tg
      | T_adopted _ ->
        if tg.tm_receipt_due then begin
          match tg.tm_manifest with
          | Some mf ->
            if
              try_send t ~peer:tg.tm_origin
                (Wire.Receipt { mig = tg.tm_mig; image = mf.Wire.mf_image })
            then tg.tm_receipt_due <- false
          | None -> ()
        end
      | T_live domain -> if tg.tm_redelegate <> [] then try_redelegate t tg domain
      | T_aborted _ -> ())
    t.tgts

(* --- recovery ---------------------------------------------------------- *)

(* Fold the journal into the phase each migration had durably reached.
   [attach] then re-establishes the volatile side: freeze latches, page
   maps, manifests, due-flags for the messages whose sends may have been
   lost with the crash. *)
type src_replay = {
  mutable r_domain : int;
  mutable r_peer : string;
  mutable r_name : string;
  mutable r_receipt : bool;
  mutable r_committing : bool;
  mutable r_done : bool;
  mutable r_abort : string option;
  mutable r_images : string list;
}

type tgt_replay = {
  mutable r_origin : string;
  mutable r_manifest : string option;
  mutable r_adopting : bool;
  mutable r_adopted : int option;
  mutable r_live : bool;
  mutable r_tabort : string option;
  mutable r_root : string option;
}

let resume_source t mig (r : src_replay) =
  let m = monitor t in
  let src =
    { sm_mig = mig; sm_domain = r.r_domain; sm_peer = r.r_peer; sm_name = r.r_name;
      sm_phase = S_streaming; sm_offered = false; sm_need_seen = false;
      sm_prior_images = r.r_images; sm_commit_due = false; sm_pages = [];
      sm_todo = []; sm_inflight = []; sm_manifest = None }
  in
  Hashtbl.replace t.srcs mig src;
  (match r.r_abort with
  | Some reason -> src.sm_phase <- S_aborted reason
  | None ->
    if r.r_done then begin
      src.sm_phase <- S_done;
      (* The Commit frame may have died with the crash; the target
         absorbs duplicates. *)
      src.sm_commit_due <- true
    end
    else begin
      Obs.Metrics.incr resumed_c;
      if Tyche.Monitor.find_domain m r.r_domain = None then
        if r.r_committing then begin
          (* Crashed between destroy and MS_done: finish the swap. *)
          src.sm_phase <- S_committing;
          advance_commit t src
        end
        else begin
          jput t (MS_abort { mig; reason = "domain lost across restart" });
          jsync t;
          src.sm_phase <- S_aborted "domain lost across restart"
        end
      else begin
        ignore (Tyche.Monitor.freeze_domain m ~domain:r.r_domain);
        match build_manifest t src with
        | Error _ ->
          jput t (MS_abort { mig; reason = "manifest rebuild failed" });
          jsync t;
          ignore (Tyche.Monitor.thaw_domain m ~domain:r.r_domain);
          src.sm_phase <- S_aborted "manifest rebuild failed"
        | Ok _ ->
          if r.r_committing || r.r_receipt then begin
            src.sm_phase <- S_committing;
            advance_commit t src
          end
          else begin
            (* Re-offer; the target's durable chunks dedup the re-send.
               The send itself waits for the session re-key. Journal the
               rebuilt image too, so a second crash still honours a
               receipt the target binds to this offer. *)
            (match src.sm_manifest with
            | Some mf when not (List.mem mf.Wire.mf_image src.sm_prior_images) ->
              jput t (MS_frozen { mig; image = mf.Wire.mf_image });
              jsync t;
              src.sm_prior_images <- mf.Wire.mf_image :: src.sm_prior_images
            | _ -> ());
            src.sm_phase <- S_streaming
          end
      end
    end)

let resume_target t mig (r : tgt_replay) =
  let m = monitor t in
  let tg =
    { tm_mig = mig; tm_origin = r.r_origin; tm_phase = T_receiving; tm_manifest = None;
      tm_adopt_due = false; tm_cleanup = false; tm_receipt_due = false;
      tm_root = r.r_root; tm_redelegate = [] }
  in
  Hashtbl.replace t.tgts mig tg;
  (match r.r_manifest with
  | Some s -> (match Wire.decode_manifest s with Ok mf -> tg.tm_manifest <- Some mf | Error _ -> ())
  | None -> ());
  match r.r_tabort with
  | Some reason -> tg.tm_phase <- T_aborted reason
  | None -> (
    match (r.r_live, r.r_adopted) with
    | true, Some domain ->
      tg.tm_phase <- T_live domain;
      (* Re-delegations may have been cut short; rebuild the remainder
         from the manifest, minus what the fleet journal already has
         (the [existing_delegation] filter in {!try_redelegate}). *)
      (match tg.tm_manifest with
      | Some mf ->
        tg.tm_redelegate <-
          List.filter
            (fun (peer, _, _, _) -> peer <> Fleet.endpoint_name t.fleet)
            mf.Wire.mf_dels
      | None -> ())
    | _, Some domain when Tyche.Monitor.find_domain m domain <> None ->
      Obs.Metrics.incr resumed_c;
      (* Adopted but not yet live: the image bytes are volatile — put
         them back from the durable chunk store, re-freeze, and stand
         ready to re-send the receipt. *)
      (match tg.tm_manifest with
      | Some mf ->
        let mem = (Tyche.Monitor.machine m).Hw.Machine.mem in
        List.iter
          (fun (base, _, h) ->
            match Hashtbl.find_opt t.chunks h with
            | Some bytes -> Hw.Physmem.write mem base bytes
            | None -> ())
          mf.Wire.mf_pages
      | None -> ());
      ignore (Tyche.Monitor.freeze_domain m ~domain);
      tg.tm_phase <- T_adopted domain;
      tg.tm_receipt_due <- true
    | _, Some _ | _, None ->
      Obs.Metrics.incr resumed_c;
      (* Still receiving, or a partial adoption whose MT_adopted never
         became durable: clean up by name and re-run from the manifest
         when present; otherwise wait for the source to re-offer. *)
      tg.tm_cleanup <- r.r_adopting;
      tg.tm_adopt_due <- tg.tm_manifest <> None)

let attach ?(window = 4) ~fleet ~store () =
  let t =
    { fleet; store; window; jseq = 0; chunks = Hashtbl.create 64;
      srcs = Hashtbl.create 4; tgts = Hashtbl.create 4; counter = 0;
      peer_roots = Hashtbl.create 4; deferred = Queue.create () }
  in
  Fleet.set_data_handler fleet ~chan:migrate_blob (fun origin payload ->
      handle t origin payload);
  let { Persist.Wal.records; truncated; _ } =
    Persist.Wal.read store ~blob:migrate_blob
  in
  (* A crash can leave a torn frame at the end of the blob; anything
     appended after it would be invisible to the longest-valid-prefix
     read of the NEXT recovery. Rewrite the journal to its valid prefix
     before any new record lands behind the tear. *)
  if truncated then begin
    Persist.Wal.reset store ~blob:migrate_blob;
    List.iter
      (fun (seq, payload) -> Persist.Wal.append store ~blob:migrate_blob ~seq payload)
      records;
    Persist.Store.fsync store migrate_blob
  end;
  let srcs : (string, src_replay) Hashtbl.t = Hashtbl.create 4 in
  let tgts : (string, tgt_replay) Hashtbl.t = Hashtbl.create 4 in
  let src_order = ref [] and tgt_order = ref [] in
  let src_of mig =
    match Hashtbl.find_opt srcs mig with
    | Some r -> r
    | None ->
      let r =
        { r_domain = -1; r_peer = ""; r_name = ""; r_receipt = false;
          r_committing = false; r_done = false; r_abort = None; r_images = [] }
      in
      Hashtbl.replace srcs mig r;
      src_order := mig :: !src_order;
      r
  in
  let tgt_of mig =
    match Hashtbl.find_opt tgts mig with
    | Some r -> r
    | None ->
      let r =
        { r_origin = ""; r_manifest = None; r_adopting = false; r_adopted = None;
          r_live = false; r_tabort = None; r_root = None }
      in
      Hashtbl.replace tgts mig r;
      tgt_order := mig :: !tgt_order;
      r
  in
  List.iter
    (fun (seq, payload) ->
      if seq > t.jseq then t.jseq <- seq;
      match decode_jrec payload with
      | None -> ()
      | Some (MS_begin { mig; domain; peer; name }) ->
        let r = src_of mig in
        r.r_domain <- domain;
        r.r_peer <- peer;
        r.r_name <- name;
        (* Reserve the id-space suffix so resumed endpoints never reuse
           a migration id. *)
        (match String.rindex_opt mig ':' with
        | Some i -> (
          match int_of_string_opt (String.sub mig (i + 1) (String.length mig - i - 1)) with
          | Some n when n >= t.counter -> t.counter <- n + 1
          | _ -> ())
        | None -> ())
      | Some (MS_frozen { mig; image }) ->
        let r = src_of mig in
        r.r_images <- image :: r.r_images
      | Some (MS_receipt { mig; _ }) -> (src_of mig).r_receipt <- true
      | Some (MS_committing { mig }) -> (src_of mig).r_committing <- true
      | Some (MS_done { mig }) -> (src_of mig).r_done <- true
      | Some (MS_abort { mig; reason }) -> (src_of mig).r_abort <- Some reason
      | Some (MT_begin { mig; origin }) -> (tgt_of mig).r_origin <- origin
      | Some (MT_chunk { hash; bytes }) -> Hashtbl.replace t.chunks hash bytes
      | Some (MT_final { mig; manifest }) -> (tgt_of mig).r_manifest <- Some manifest
      | Some (MT_adopting { mig }) -> (tgt_of mig).r_adopting <- true
      | Some (MT_adopted { mig; domain; root }) ->
        let r = tgt_of mig in
        r.r_adopted <- Some domain;
        if root <> "" then r.r_root <- Some root
      | Some (MT_live { mig }) -> (tgt_of mig).r_live <- true
      | Some (MT_abort { mig; reason }) -> (tgt_of mig).r_tabort <- Some reason)
    records;
  List.iter (fun mig -> resume_source t mig (Hashtbl.find srcs mig)) (List.rev !src_order);
  List.iter (fun mig -> resume_target t mig (Hashtbl.find tgts mig)) (List.rev !tgt_order);
  update_active t;
  t

(* --- public surface ---------------------------------------------------- *)

let set_peer_root t ~peer root = Hashtbl.replace t.peer_roots peer root

let abort t ~mig ~reason =
  match (Hashtbl.find_opt t.srcs mig, Hashtbl.find_opt t.tgts mig) with
  | Some src, _ ->
    source_abort t src ~reason ~notify:true;
    Ok ()
  | None, Some tg ->
    target_abort t tg ~reason ~notify:true;
    Ok ()
  | None, None -> Error (Unknown_migration mig)

let status t ~mig =
  match Hashtbl.find_opt t.srcs mig with
  | Some src -> Some (Source, src_phase src)
  | None -> (
    match Hashtbl.find_opt t.tgts mig with
    | Some tg -> Some (Target, tgt_phase tg)
    | None -> None)

let migrations t =
  let acc = ref [] in
  Hashtbl.iter (fun mig src -> acc := (mig, Source, src_phase src) :: !acc) t.srcs;
  Hashtbl.iter (fun mig tg -> acc := (mig, Target, tgt_phase tg) :: !acc) t.tgts;
  List.sort compare !acc

let idle t =
  Queue.is_empty t.deferred
  && Hashtbl.fold (fun _ s acc -> acc && terminal_src s) t.srcs true
  && Hashtbl.fold (fun _ tg acc -> acc && terminal_tgt tg) t.tgts true

let adopted_domain t ~mig =
  match Hashtbl.find_opt t.tgts mig with
  | Some { tm_phase = T_adopted d; _ } | Some { tm_phase = T_live d; _ } -> Some d
  | _ -> None

let proxy_domain t ~mig =
  match Hashtbl.find_opt t.srcs mig with
  | Some ({ sm_phase = S_done; _ } as src) ->
    let name = "remote:" ^ src.sm_peer ^ ":" ^ src.sm_name in
    List.find_map
      (fun d -> if Tyche.Domain.name d = name then Some (Tyche.Domain.id d) else None)
      (Tyche.Monitor.domains (monitor t))
  | _ -> None

let chunk_count t = Hashtbl.length t.chunks

type receipt = {
  rc_mig : string;
  rc_origin : Network.endpoint;
  rc_root : Crypto.Sha256.digest;
  rc_measurement : Crypto.Sha256.digest;
  rc_state : Crypto.Sha256.digest;
  rc_image : Crypto.Sha256.digest;
}

let receipt t ~mig =
  match Hashtbl.find_opt t.tgts mig with
  | Some ({ tm_manifest = Some mf; _ } as tg) ->
    Some
      { rc_mig = mig;
        rc_origin = tg.tm_origin;
        rc_root = Crypto.Sha256.of_raw mf.Wire.mf_root;
        rc_measurement = Crypto.Sha256.of_raw mf.Wire.mf_measurement;
        rc_state = Crypto.Sha256.of_raw mf.Wire.mf_state;
        rc_image = Crypto.Sha256.of_raw mf.Wire.mf_image }
  | _ -> None

let verify_receipt t ~mig =
  match Hashtbl.find_opt t.tgts mig with
  | Some ({ tm_manifest = Some mf; _ } as tg) -> (
    match tg.tm_phase with
    | T_adopted domain | T_live domain -> (
      (* The transferred attestation still chains to the transfer root —
         the one pinned at adoption, so a source that crash-recovered
         under a fresh signer cannot retroactively unbind the receipt. *)
      match
        verify_manifest t
          ?pinned_root:(Option.map Crypto.Sha256.of_raw tg.tm_root)
          ~origin:tg.tm_origin mf
      with
      | Error _ -> false
      | Ok _ -> (
        (* And the adopted domain still matches what was receipted. The
           content hash is only binding while the domain is parked — a
           live domain's memory is its own business. *)
        match local_digests (monitor t) domain with
        | Some (state, image) ->
          state = mf.Wire.mf_state
          && (match tg.tm_phase with
             | T_adopted _ -> image = mf.Wire.mf_image
             | _ -> true)
        | None -> false))
    | _ -> false)
  | _ -> false
