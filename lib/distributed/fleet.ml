(* Cross-machine capability delegation with at-least-once revocation.

   One [Fleet.t] per machine wraps that machine's monitor and gives it a
   place in a fleet of mutually-attested peers: a capability delegated
   to a peer is materialized locally as a share to a [Domain.Remote]
   proxy (so the remote holder shows up in refcounts, holders lists and
   attestation bodies exactly like a local one), and the delegation /
   revocation messages cross the untrusted {!Network} under per-channel
   sequence numbers, HMACs, a persistent outbox and cumulative acks.

   Delivery contract:
   - messages are retried (capped exponential backoff over logical
     {!tick}s) until the peer's cumulative ack covers them — at-least-
     once, surviving crash-restart because the outbox is journaled in
     the ["fleet"] blob of the same durable store as the monitor's WAL;
   - the receiver applies a message only when its sequence number is
     exactly [applied + 1]; anything at or below [applied] is a
     duplicate (re-acked, not re-applied) and anything above is an
     out-of-order arrival (dropped — the sender's retransmit restores
     order). Dedup is by (origin, seq), so post-recovery re-sends and
     adversarial duplicates are absorbed idempotently.

   Journal-then-ack: the receiver fsyncs its journal record before the
   ack leaves, so an acked message can never be lost to a crash. The
   sender fsyncs its journal record before the first transmission, so a
   message a peer might have seen is always re-sendable after a crash.

   Remote-held caps are frozen in the local captree for the whole life
   of the delegation: the proxy's cap (and therefore any local attempt
   to revoke an ancestor of it) is refused with [Frozen] — local code
   cannot silently destroy the only record that a remote machine holds
   the resource. Cross-machine revocation goes through {!revoke}, which
   freezes the revoked cap, journals the pending revocation, sends
   Revoke to every affected peer, and only executes the local cascading
   revoke once every peer's cumulative ack covers its Revoke — converging
   after partitions heal, never leaking. *)

type peer_state =
  | Healthy
  | Degraded of { since : int; attempts : int }

type error =
  | Monitor_error of Tyche.Monitor.error
  | Unknown_peer of Network.endpoint
  | No_session of Network.endpoint
  | Revocation_pending of Cap.Captree.cap_id
  | Not_memory of Cap.Captree.cap_id

let error_to_string = function
  | Monitor_error e -> Tyche.Monitor.error_to_string e
  | Unknown_peer p -> "unknown peer: " ^ p
  | No_session p -> "no session key for peer " ^ p ^ " (connect first)"
  | Revocation_pending c ->
    Printf.sprintf "capability %d is inside a pending cross-machine revocation" c
  | Not_memory c -> Printf.sprintf "capability %d is not a memory capability" c

(* --- fault points ---------------------------------------------------- *)

(* [fleet.deliver] drops an inbound fleet datagram (lossy last hop),
   [fleet.ack] suppresses an outbound ack (the classic ack-loss window:
   the receiver applied and journaled, the sender must retry into the
   dedup path), [fleet.partition] makes a retransmission round fall into
   the void without resetting backoff. *)
let deliver_point = Fault.register "fleet.deliver"
let ack_point = Fault.register "fleet.ack"
let partition_point = Fault.register "fleet.partition"

(* --- metrics --------------------------------------------------------- *)

let sent_c = Obs.Metrics.counter "fleet.sent"
let retries_c = Obs.Metrics.counter "fleet.retries"
let delivered_c = Obs.Metrics.counter "fleet.delivered"
let dup_rx_c = Obs.Metrics.counter "fleet.dup_rx"
let gap_rx_c = Obs.Metrics.counter "fleet.gap_rx"
let acks_rx_c = Obs.Metrics.counter "fleet.acks_rx"
let drops_c = Obs.Metrics.counter "fleet.drops"
let ack_drops_c = Obs.Metrics.counter "fleet.ack_drops"
let reject_c = Obs.Metrics.counter "fleet.rejected"
let aborted_c = Obs.Metrics.counter "fleet.revoke_aborted"
let backlog_g = Obs.Metrics.gauge "fleet.backlog"
let degraded_g = Obs.Metrics.gauge "fleet.degraded"
let ack_lag_h = Obs.Metrics.histogram "fleet.ack_lag"

(* --- wire messages --------------------------------------------------- *)

module Wire = struct
  type msg =
    | Delegate of { del_id : int; base : int; len : int; rights : int }
    | Revoke of { del_id : int }
    | Ack of { upto : int }
    | Data of { chan : string; payload : string }
        (* Opaque application frame, multiplexed by channel name. Same
           seq space, outbox, journal and ack discipline as Delegate /
           Revoke — at-least-once with idempotent replay — so a higher
           protocol (live migration) inherits the delivery contract
           instead of rebuilding it. *)

  (* Rights travel as a byte so the delegation survives codec evolution
     on either side of the link. *)
  let rights_bits (r : Cap.Rights.t) =
    (if r.perm.Hw.Perm.read then 1 else 0)
    lor (if r.perm.Hw.Perm.write then 2 else 0)
    lor (if r.perm.Hw.Perm.exec then 4 else 0)
    lor (if r.can_share then 8 else 0)
    lor (if r.can_grant then 16 else 0)

  let rights_of_bits b =
    { Cap.Rights.perm =
        { Hw.Perm.read = b land 1 <> 0; write = b land 2 <> 0; exec = b land 4 <> 0 };
      can_share = b land 8 <> 0;
      can_grant = b land 16 <> 0 }

  let encode_body ~origin ~seq msg =
    let buf = Buffer.create 64 in
    Persist.Wire.str buf origin;
    Persist.Wire.i64 buf seq;
    (match msg with
    | Delegate { del_id; base; len; rights } ->
      Persist.Wire.u8 buf 1;
      Persist.Wire.i64 buf del_id;
      Persist.Wire.i64 buf base;
      Persist.Wire.i64 buf len;
      Persist.Wire.u8 buf rights
    | Revoke { del_id } ->
      Persist.Wire.u8 buf 2;
      Persist.Wire.i64 buf del_id
    | Ack { upto } ->
      Persist.Wire.u8 buf 3;
      Persist.Wire.i64 buf upto
    | Data { chan; payload } ->
      Persist.Wire.u8 buf 4;
      Persist.Wire.str buf chan;
      Persist.Wire.str buf payload);
    Buffer.contents buf

  let decode_body body =
    match
      let r = Persist.Wire.reader body in
      let origin = Persist.Wire.get_str r in
      let seq = Persist.Wire.get_i64 r in
      let msg =
        match Persist.Wire.get_u8 r with
        | 1 ->
          let del_id = Persist.Wire.get_i64 r in
          let base = Persist.Wire.get_i64 r in
          let len = Persist.Wire.get_i64 r in
          let rights = Persist.Wire.get_u8 r in
          Delegate { del_id; base; len; rights }
        | 2 -> Revoke { del_id = Persist.Wire.get_i64 r }
        | 3 -> Ack { upto = Persist.Wire.get_i64 r }
        | 4 ->
          let chan = Persist.Wire.get_str r in
          let payload = Persist.Wire.get_str r in
          Data { chan; payload }
        | t -> raise (Persist.Wire.Corrupt (Printf.sprintf "unknown fleet tag %d" t))
      in
      Persist.Wire.expect_end r;
      (origin, seq, msg)
    with
    | v -> Ok v
    | exception Persist.Wire.Corrupt e -> Error e

  let mac_len = 32

  let seal ~key body = body ^ Crypto.Sha256.to_raw (Crypto.Hmac.mac ~key body)

  (* Splits a datagram without authenticating it — the body names the
     origin, and only the origin's channel knows which key applies. *)
  let split_datagram raw =
    let n = String.length raw in
    if n < mac_len then Error "short fleet datagram"
    else Ok (String.sub raw 0 (n - mac_len), String.sub raw (n - mac_len) mac_len)

  let verify ~key ~body ~mac =
    String.length mac = mac_len
    && Crypto.Hmac.verify ~key body (Crypto.Sha256.of_raw mac)
end

(* --- durable journal ------------------------------------------------- *)

let fleet_blob = "fleet"

(* The journal is the fleet's redo log, riding in its own blob of the
   monitor's store (mem-store appends to it tear and crash through the
   [snapshot.write] fault point, file stores through real fsyncs).
   Records, in the order constraints matter:
   - a record is fsynced before any message it makes re-sendable leaves
     the machine (sender side), and before the ack for the message it
     records leaves (receiver side);
   - [J_acked] precedes [J_revoked] for the same ack, so the WAL's
     longest-valid-prefix read can never see a confirmed revocation
     whose ack floor was lost. *)
type jrec =
  | J_peer of { peer : string; proxy : Tyche.Domain.id }
  | J_delegate of
      { del_id : int; peer : string; proxy_cap : int; base : int; len : int;
        rights : int; seq : int }
  | J_import of
      { origin : string; del_id : int; base : int; len : int; rights : int;
        applied : int }
  | J_unimport of { origin : string; del_id : int; applied : int }
  | J_pending of { cap : int; caller : int; dels : (string * int * int) list }
  | J_revoked of { del_id : int }
  | J_acked of { peer : string; upto : int }
  | J_done of { cap : int }
  | J_chan of { peer : string; next_ : int; acked : int; applied : int }
      (* Snapshot of a channel's counters, written only by compaction:
         without it, a compacted journal whose completed delegations and
         retired imports were pruned would lose [c_next] (seq reuse the
         peer absorbs as duplicates) and [c_applied] (re-imported
         revoked delegations). *)
  | J_send of { peer : string; seq : int; chan : string; payload : string }
      (* An outbound data frame, durable before first transmission so a
         recovering sender can rebuild its retransmission window. Pruned
         from snapshots once the peer's cumulative ack covers [seq]. *)
  | J_recv of { origin : string; applied : int }
      (* Applied-floor advance for an inbound data frame. The payload is
         not recorded here — the channel's handler journals its own
         durable effect before this record is fsynced and the ack
         leaves, and absorbs at-least-once redelivery idempotently. *)

let encode_jrec r =
  let buf = Buffer.create 48 in
  (match r with
  | J_peer { peer; proxy } ->
    Persist.Wire.u8 buf 1;
    Persist.Wire.str buf peer;
    Persist.Wire.i64 buf proxy
  | J_delegate { del_id; peer; proxy_cap; base; len; rights; seq } ->
    Persist.Wire.u8 buf 2;
    Persist.Wire.i64 buf del_id;
    Persist.Wire.str buf peer;
    Persist.Wire.i64 buf proxy_cap;
    Persist.Wire.i64 buf base;
    Persist.Wire.i64 buf len;
    Persist.Wire.u8 buf rights;
    Persist.Wire.i64 buf seq
  | J_import { origin; del_id; base; len; rights; applied } ->
    Persist.Wire.u8 buf 3;
    Persist.Wire.str buf origin;
    Persist.Wire.i64 buf del_id;
    Persist.Wire.i64 buf base;
    Persist.Wire.i64 buf len;
    Persist.Wire.u8 buf rights;
    Persist.Wire.i64 buf applied
  | J_unimport { origin; del_id; applied } ->
    Persist.Wire.u8 buf 4;
    Persist.Wire.str buf origin;
    Persist.Wire.i64 buf del_id;
    Persist.Wire.i64 buf applied
  | J_pending { cap; caller; dels } ->
    Persist.Wire.u8 buf 5;
    Persist.Wire.i64 buf cap;
    Persist.Wire.i64 buf caller;
    Persist.Wire.list buf
      (fun b (peer, del_id, seq) ->
        Persist.Wire.str b peer;
        Persist.Wire.i64 b del_id;
        Persist.Wire.i64 b seq)
      dels
  | J_revoked { del_id } ->
    Persist.Wire.u8 buf 6;
    Persist.Wire.i64 buf del_id
  | J_acked { peer; upto } ->
    Persist.Wire.u8 buf 7;
    Persist.Wire.str buf peer;
    Persist.Wire.i64 buf upto
  | J_done { cap } ->
    Persist.Wire.u8 buf 8;
    Persist.Wire.i64 buf cap
  | J_chan { peer; next_; acked; applied } ->
    Persist.Wire.u8 buf 9;
    Persist.Wire.str buf peer;
    Persist.Wire.i64 buf next_;
    Persist.Wire.i64 buf acked;
    Persist.Wire.i64 buf applied
  | J_send { peer; seq; chan; payload } ->
    Persist.Wire.u8 buf 10;
    Persist.Wire.str buf peer;
    Persist.Wire.i64 buf seq;
    Persist.Wire.str buf chan;
    Persist.Wire.str buf payload
  | J_recv { origin; applied } ->
    Persist.Wire.u8 buf 11;
    Persist.Wire.str buf origin;
    Persist.Wire.i64 buf applied);
  Buffer.contents buf

let decode_jrec payload =
  let r = Persist.Wire.reader payload in
  let rec_ =
    match Persist.Wire.get_u8 r with
    | 1 ->
      let peer = Persist.Wire.get_str r in
      let proxy = Persist.Wire.get_i64 r in
      J_peer { peer; proxy }
    | 2 ->
      let del_id = Persist.Wire.get_i64 r in
      let peer = Persist.Wire.get_str r in
      let proxy_cap = Persist.Wire.get_i64 r in
      let base = Persist.Wire.get_i64 r in
      let len = Persist.Wire.get_i64 r in
      let rights = Persist.Wire.get_u8 r in
      let seq = Persist.Wire.get_i64 r in
      J_delegate { del_id; peer; proxy_cap; base; len; rights; seq }
    | 3 ->
      let origin = Persist.Wire.get_str r in
      let del_id = Persist.Wire.get_i64 r in
      let base = Persist.Wire.get_i64 r in
      let len = Persist.Wire.get_i64 r in
      let rights = Persist.Wire.get_u8 r in
      let applied = Persist.Wire.get_i64 r in
      J_import { origin; del_id; base; len; rights; applied }
    | 4 ->
      let origin = Persist.Wire.get_str r in
      let del_id = Persist.Wire.get_i64 r in
      let applied = Persist.Wire.get_i64 r in
      J_unimport { origin; del_id; applied }
    | 5 ->
      let cap = Persist.Wire.get_i64 r in
      let caller = Persist.Wire.get_i64 r in
      let dels =
        Persist.Wire.get_list r (fun b ->
            let peer = Persist.Wire.get_str b in
            let del_id = Persist.Wire.get_i64 b in
            let seq = Persist.Wire.get_i64 b in
            (peer, del_id, seq))
      in
      J_pending { cap; caller; dels }
    | 6 -> J_revoked { del_id = Persist.Wire.get_i64 r }
    | 7 ->
      let peer = Persist.Wire.get_str r in
      let upto = Persist.Wire.get_i64 r in
      J_acked { peer; upto }
    | 8 -> J_done { cap = Persist.Wire.get_i64 r }
    | 9 ->
      let peer = Persist.Wire.get_str r in
      let next_ = Persist.Wire.get_i64 r in
      let acked = Persist.Wire.get_i64 r in
      let applied = Persist.Wire.get_i64 r in
      J_chan { peer; next_; acked; applied }
    | 10 ->
      let peer = Persist.Wire.get_str r in
      let seq = Persist.Wire.get_i64 r in
      let chan = Persist.Wire.get_str r in
      let payload = Persist.Wire.get_str r in
      J_send { peer; seq; chan; payload }
    | 11 ->
      let origin = Persist.Wire.get_str r in
      let applied = Persist.Wire.get_i64 r in
      J_recv { origin; applied }
    | t -> raise (Persist.Wire.Corrupt (Printf.sprintf "unknown fleet journal tag %d" t))
  in
  Persist.Wire.expect_end r;
  rec_

(* --- state ----------------------------------------------------------- *)

type del_state = Active | Revoking | Revoked

type delegation = {
  del_id : int;
  del_peer : Network.endpoint;
  proxy_cap : Cap.Captree.cap_id;
  del_base : int;
  del_len : int;
  del_rights : int; (* the rights byte shipped to the importer *)
  del_seq : int; (* channel seq of the Delegate message *)
  mutable del_state : del_state;
  mutable revoke_seq : int; (* channel seq of the Revoke message; 0 = none *)
}

type import = {
  imp_origin : Network.endpoint;
  imp_del_id : int;
  imp_base : int;
  imp_len : int;
  imp_rights : int;
}

type pending_revoke = {
  pr_cap : Cap.Captree.cap_id;
  pr_caller : Tyche.Domain.id;
  pr_dels : (Network.endpoint * int * int) list; (* (peer, del_id, revoke seq) *)
  mutable pr_waiting : (Network.endpoint * int) list; (* (peer, del_id) unacked *)
}

type outbox_entry = { ob_seq : int; ob_body : string; mutable ob_sent : int }

type channel = {
  ch_peer : Network.endpoint;
  mutable ch_key : string option; (* session key; volatile by design *)
  mutable c_next : int; (* next data seq to assign *)
  mutable c_acked : int; (* peer's cumulative ack floor *)
  mutable c_applied : int; (* highest inbound seq applied *)
  outbox : outbox_entry Queue.t; (* ascending seq; acks pop a prefix *)
  mutable attempts : int; (* transmit rounds since last ack progress *)
  mutable backoff : int;
  mutable due : int; (* tick at which the next retransmit round runs *)
  mutable ch_state : peer_state;
  (* Hoisted per-link metric handles (names are stable per peer). *)
  l_retries : Obs.Metrics.counter;
  l_backlog : Obs.Metrics.gauge;
  l_timeouts : Obs.Metrics.counter;
}

(* Compaction policy, tunable per endpoint (tests and the migration
   journal exercise compaction without thousands of warm-up records). *)
type config = {
  compact_min : int; (* never compact below this many journal records *)
  compact_ratio : int; (* rewrite once dead records outnumber live state this many to one *)
}

let default_config = { compact_min = 128; compact_ratio = 4 }

type t = {
  monitor : Tyche.Monitor.t;
  name : Network.endpoint;
  net : Network.t;
  store : Persist.Store.t option;
  config : config;
  mutable jseq : int;
  mutable jrecs : int; (* records currently in the fleet blob *)
  channels : (Network.endpoint, channel) Hashtbl.t;
  dels : (int, delegation) Hashtbl.t;
  imports : (Network.endpoint * int, import) Hashtbl.t;
  proxies : (Network.endpoint, Tyche.Domain.id) Hashtbl.t;
  pending : (Cap.Captree.cap_id, pending_revoke) Hashtbl.t;
  (* Unacked outbound data frames, (peer, seq) -> (chan, payload):
     mirrors the J_send records still live in the journal. *)
  sends : (Network.endpoint * int, string * string) Hashtbl.t;
  (* Inbound data dispatch by channel name; volatile like session keys —
     re-register after recovery, before polling. *)
  handlers : (string, Network.endpoint -> string -> unit) Hashtbl.t;
  mutable next_del : int;
  mutable clock : int;
}

let base_backoff = 1
let max_backoff = 8
let degrade_after = 3

let tree t = Tyche.Monitor.tree t.monitor

let journal t r =
  match t.store with
  | None -> ()
  | Some s ->
    t.jseq <- t.jseq + 1;
    t.jrecs <- t.jrecs + 1;
    Persist.Wal.append s ~blob:fleet_blob ~seq:t.jseq (encode_jrec r)

let jsync t =
  match t.store with
  | None -> ()
  | Some s ->
    (* The fleet journal must never get ahead of the monitor state it
       references (proxy domains, shares): flush the monitor's group
       commit first, then make the fleet record durable. *)
    Tyche.Monitor.flush t.monitor;
    Persist.Store.fsync s fleet_blob

let total_backlog t =
  Hashtbl.fold (fun _ ch acc -> acc + Queue.length ch.outbox) t.channels 0

let update_backlog t ch =
  Obs.Metrics.set_gauge ch.l_backlog (Queue.length ch.outbox);
  Obs.Metrics.set_gauge backlog_g (total_backlog t)

let degraded_count t =
  Hashtbl.fold
    (fun _ ch acc -> match ch.ch_state with Degraded _ -> acc + 1 | Healthy -> acc)
    t.channels 0

let channel_of t peer =
  match Hashtbl.find_opt t.channels peer with
  | Some ch -> ch
  | None ->
    let ch =
      { ch_peer = peer;
        ch_key = None;
        c_next = 1;
        c_acked = 0;
        c_applied = 0;
        outbox = Queue.create ();
        attempts = 0;
        backoff = base_backoff;
        due = 0;
        ch_state = Healthy;
        l_retries = Obs.Metrics.counter ("fleet.link." ^ peer ^ ".retries");
        l_backlog = Obs.Metrics.gauge ("fleet.link." ^ peer ^ ".backlog");
        l_timeouts = Obs.Metrics.counter ("fleet.link." ^ peer ^ ".timeouts") }
    in
    (* The registry is process-global and the names are stable per peer,
       so a channel recreated by crash-restart (or the next chaos
       episode) would otherwise keep accumulating into its predecessor's
       handles — double-counting retries and reporting a stale backlog.
       A new channel starts its incarnation at zero. *)
    Obs.Metrics.zero_counter ch.l_retries;
    Obs.Metrics.zero_gauge ch.l_backlog;
    Obs.Metrics.zero_counter ch.l_timeouts;
    Hashtbl.add t.channels peer ch;
    ch

let transmit t ch body =
  match ch.ch_key with
  | None -> ()
  | Some key ->
    Obs.Metrics.incr sent_c;
    Network.send t.net ~from_:t.name ~to_:ch.ch_peer (Wire.seal ~key body)

let send_ack t ch =
  if Fault.fires ack_point then Obs.Metrics.incr ack_drops_c
  else transmit t ch (Wire.encode_body ~origin:t.name ~seq:0 (Wire.Ack { upto = ch.c_applied }))

let enqueue t ch body =
  let seq = ch.c_next in
  ch.c_next <- seq + 1;
  Queue.add { ob_seq = seq; ob_body = body; ob_sent = t.clock } ch.outbox;
  update_backlog t ch;
  seq

(* --- the delegation lifecycle --------------------------------------- *)

let ( let* ) = Result.bind

let proxy t ~peer = Hashtbl.find_opt t.proxies peer

let connect t ~peer ~key =
  match Hashtbl.find_opt t.proxies peer with
  | Some proxy ->
    (* Re-provisioning a session key after recovery or re-establishment:
       durable state is untouched. *)
    let ch = channel_of t peer in
    ch.ch_key <- Some key;
    Ok proxy
  | None -> (
    match
      Tyche.Monitor.create_domain t.monitor ~caller:Tyche.Domain.initial
        ~name:("remote:" ^ peer) ~kind:Tyche.Domain.Remote
    with
    | Error e -> Error (Monitor_error e)
    | Ok proxy ->
      journal t (J_peer { peer; proxy });
      jsync t;
      Hashtbl.replace t.proxies peer proxy;
      let ch = channel_of t peer in
      ch.ch_key <- Some key;
      Ok proxy)

(* Refuse operations that would overlap an in-flight revocation: the
   frozen cap already blocks captree mutations, but fleet-level calls
   must also not stack a second pending revoke above or below one. *)
let overlapping_pending t cap =
  let tr = tree t in
  Hashtbl.fold
    (fun pcap _ acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if
          pcap = cap
          || Cap.Captree.is_ancestor tr ~ancestor:cap pcap
          || Cap.Captree.is_ancestor tr ~ancestor:pcap cap
        then Some pcap
        else None)
    t.pending None

let delegate t ~caller ~cap ~peer ?subrange ~rights () =
  match Hashtbl.find_opt t.channels peer with
  | None -> Error (Unknown_peer peer)
  | Some ch when ch.ch_key = None -> Error (No_session peer)
  | Some ch -> (
    let proxy = Hashtbl.find t.proxies peer in
    match Cap.Captree.resource (tree t) cap with
    | None ->
      Error (Monitor_error (Tyche.Monitor.Cap_error (Cap.Captree.No_such_capability cap)))
    | Some (Cap.Resource.Cpu_core _ | Cap.Resource.Device _) -> Error (Not_memory cap)
    | Some (Cap.Resource.Memory full_range) -> (
      (* The proxy's local cap must be inert in every dimension the
         local tree can express: permissions mirror the delegation (so
         refcounts and Fig. 4 show the remote holder truthfully), but
         the proxy can never re-share or re-grant locally. *)
      let local_rights = { rights with Cap.Rights.can_share = false; can_grant = false } in
      match
        Tyche.Monitor.share t.monitor ~caller ~cap ~to_:proxy ~rights:local_rights
          ~cleanup:Cap.Revocation.Keep ?subrange ()
      with
      | Error e -> Error (Monitor_error e)
      | Ok proxy_cap ->
        let range = Option.value subrange ~default:full_range in
        let base = Hw.Addr.Range.base range and len = Hw.Addr.Range.len range in
        let rights_b = Wire.rights_bits rights in
        let del_id = t.next_del in
        t.next_del <- del_id + 1;
        (* Freeze before anything can observe the share: from here on,
           only {!revoke} (which tells the peer) can undo it. *)
        (match Cap.Captree.freeze (tree t) proxy_cap with Ok () | Error _ -> ());
        let body =
          Wire.encode_body ~origin:t.name ~seq:ch.c_next
            (Wire.Delegate { del_id; base; len; rights = rights_b })
        in
        journal t
          (J_delegate
             { del_id; peer; proxy_cap; base; len; rights = rights_b; seq = ch.c_next });
        jsync t;
        let seq = enqueue t ch body in
        Hashtbl.replace t.dels del_id
          { del_id; del_peer = peer; proxy_cap; del_base = base; del_len = len;
            del_rights = rights_b; del_seq = seq; del_state = Active; revoke_seq = 0 };
        transmit t ch body;
        Ok del_id))

(* Delegations whose proxy cap is [cap] itself or lies anywhere in its
   subtree — the ones a cascading revoke of [cap] must first retire on
   the remote side. *)
let delegations_under t cap =
  let tr = tree t in
  Hashtbl.fold
    (fun _ d acc ->
      match d.del_state with
      | Revoked -> acc
      | Active | Revoking ->
        if d.proxy_cap = cap || Cap.Captree.is_ancestor tr ~ancestor:cap d.proxy_cap then
          d :: acc
        else acc)
    t.dels []
  |> List.sort (fun a b -> Int.compare a.del_id b.del_id)

let execute_pending t (p : pending_revoke) =
  (* Every peer confirmed: nothing remote holds the subtree any more.
     Thaw the bookkeeping freezes and run the ordinary local cascade.
     [No_such_capability] counts as success — a previous life may have
     crashed between the revoke and the journal record. *)
  Cap.Captree.thaw (tree t) p.pr_cap;
  List.iter (fun (_, del_id, _) ->
      match Hashtbl.find_opt t.dels del_id with
      | Some d -> Cap.Captree.thaw (tree t) d.proxy_cap
      | None -> ())
    p.pr_dels;
  let done_ =
    match Tyche.Monitor.revoke t.monitor ~caller:p.pr_caller ~cap:p.pr_cap with
    | Ok () -> true
    | Error (Tyche.Monitor.Cap_error (Cap.Captree.No_such_capability _)) -> true
    | Error (Tyche.Monitor.Denied _) ->
      (* Deterministic refusal: the caller's authority over the cap was
         checked when the revocation was journaled, so ownership moved
         while the acks were in flight. Retrying can never succeed —
         it would wedge the subtree frozen behind a pending record that
         never clears. Abort instead: the peers already dropped their
         imports (their acks are all in), so retire each proxy cap with
         its delegator's authority — exactly like [reconcile] — so the
         local tree stops claiming remote holders that no longer exist,
         then let the pending record complete below. *)
      Obs.Metrics.incr aborted_c;
      let tr = tree t in
      List.iter
        (fun (_, del_id, _) ->
          match Hashtbl.find_opt t.dels del_id with
          | None -> ()
          | Some d ->
            let caller =
              match Cap.Captree.parent tr d.proxy_cap with
              | Some pid ->
                Option.value (Cap.Captree.owner tr pid) ~default:Tyche.Domain.initial
              | None -> Tyche.Domain.initial
            in
            (match Tyche.Monitor.revoke t.monitor ~caller ~cap:d.proxy_cap with
            | Ok () -> ()
            | Error (Tyche.Monitor.Cap_error (Cap.Captree.No_such_capability _)) -> ()
            | Error _ -> Obs.Metrics.incr reject_c))
        p.pr_dels;
      true
    | Error _ ->
      (* Transient (e.g. an injected backend fault rolled the cascade
         back): re-freeze and leave the pending record; the next tick
         retries. *)
      (match Cap.Captree.freeze (tree t) p.pr_cap with Ok () | Error _ -> ());
      List.iter
        (fun (_, del_id, _) ->
          match Hashtbl.find_opt t.dels del_id with
          | Some d -> (
            match Cap.Captree.freeze (tree t) d.proxy_cap with Ok () | Error _ -> ())
          | None -> ())
        p.pr_dels;
      Obs.Metrics.incr reject_c;
      false
  in
  if done_ then begin
    journal t (J_done { cap = p.pr_cap });
    jsync t;
    List.iter (fun (_, del_id, _) -> Hashtbl.remove t.dels del_id) p.pr_dels;
    Hashtbl.remove t.pending p.pr_cap
  end

let revoke t ~caller ~cap =
  match overlapping_pending t cap with
  | Some pcap -> Error (Revocation_pending pcap)
  | None -> (
    match delegations_under t cap with
    | [] -> (
      (* Nothing delegated below: a purely local revocation. *)
      match Tyche.Monitor.revoke t.monitor ~caller ~cap with
      | Ok () -> Ok ()
      | Error e -> Error (Monitor_error e))
    | dels ->
      (* Authorization first, before anything irreversible: peers drop
         their imports the moment the Revoke datagram arrives — long
         before the local cascade (and its own may_revoke check) runs —
         so an unchecked caller could strip remote machines of their
         delegations and leave the subtree frozen behind a pending
         revocation that can only ever fail. *)
      let* () =
        Result.map_error
          (fun e -> Monitor_error e)
          (Tyche.Monitor.may_revoke t.monitor ~caller cap)
      in
      (* Check every affected peer has a channel before mutating. *)
      let chans = List.map (fun d -> (d, channel_of t d.del_peer)) dels in
      (match Cap.Captree.freeze (tree t) cap with Ok () | Error _ -> ());
      let planned =
        List.map
          (fun (d, ch) ->
            let seq = ch.c_next in
            let body =
              Wire.encode_body ~origin:t.name ~seq (Wire.Revoke { del_id = d.del_id })
            in
            let seq = enqueue t ch body in
            d.del_state <- Revoking;
            d.revoke_seq <- seq;
            (d, ch, seq, body))
          chans
      in
      let jdels = List.map (fun (d, _, seq, _) -> (d.del_peer, d.del_id, seq)) planned in
      journal t (J_pending { cap; caller; dels = jdels });
      jsync t;
      let p =
        { pr_cap = cap;
          pr_caller = caller;
          pr_dels = jdels;
          pr_waiting = List.map (fun (peer, id, _) -> (peer, id)) jdels }
      in
      Hashtbl.replace t.pending cap p;
      List.iter (fun (_, ch, _, body) -> transmit t ch body) planned;
      Ok ())

(* --- opaque data plane ----------------------------------------------- *)

(* Higher protocols (live migration) ride the same channel as
   delegations: a data frame is journaled (J_send) and fsynced before
   its first transmission, retried until the peer's cumulative ack
   covers it, and delivered to the receiving side's registered handler
   exactly in sequence order — but at-least-once across crash-restarts,
   so handlers must journal their own effects and absorb redelivery
   idempotently. *)

let send_data t ~peer ~chan payload =
  match Hashtbl.find_opt t.channels peer with
  | None -> Error (Unknown_peer peer)
  | Some ch when ch.ch_key = None -> Error (No_session peer)
  | Some ch ->
    let body =
      Wire.encode_body ~origin:t.name ~seq:ch.c_next (Wire.Data { chan; payload })
    in
    journal t (J_send { peer; seq = ch.c_next; chan; payload });
    jsync t;
    let seq = enqueue t ch body in
    Hashtbl.replace t.sends (peer, seq) (chan, payload);
    transmit t ch body;
    Ok seq

let set_data_handler t ~chan f = Hashtbl.replace t.handlers chan f

(* --- receiving ------------------------------------------------------- *)

let on_ack t ch upto =
  Obs.Metrics.incr acks_rx_c;
  if upto > ch.c_acked then begin
    journal t (J_acked { peer = ch.ch_peer; upto });
    (* A cumulative ack always covers an outbox prefix (ascending seq),
       so draining pops from the front — O(covered), not O(window). *)
    let rec drain () =
      match Queue.peek_opt ch.outbox with
      | Some e when e.ob_seq <= upto ->
        ignore (Queue.pop ch.outbox);
        Hashtbl.remove t.sends (ch.ch_peer, e.ob_seq);
        Obs.Metrics.observe ack_lag_h (t.clock - e.ob_sent);
        drain ()
      | Some _ | None -> ()
    in
    drain ();
    update_backlog t ch;
    ch.c_acked <- upto;
    ch.attempts <- 0;
    ch.backoff <- base_backoff;
    ch.due <- t.clock;
    (match ch.ch_state with
    | Degraded _ ->
      ch.ch_state <- Healthy;
      Obs.Metrics.set_gauge degraded_g (degraded_count t)
    | Healthy -> ());
    (* Revocations this ack confirms. [J_acked] above precedes every
       [J_revoked] below in the journal, preserving the invariant that a
       durable confirmation implies a durable ack floor. *)
    let confirmed =
      Hashtbl.fold
        (fun _ d acc ->
          if d.del_state = Revoking && d.del_peer = ch.ch_peer && d.revoke_seq <= upto
          then d :: acc
          else acc)
        t.dels []
      |> List.sort (fun a b -> Int.compare a.del_id b.del_id)
    in
    List.iter
      (fun d ->
        d.del_state <- Revoked;
        journal t (J_revoked { del_id = d.del_id });
        Hashtbl.iter
          (fun _ p ->
            p.pr_waiting <-
              List.filter (fun (peer, id) -> not (peer = ch.ch_peer && id = d.del_id))
                p.pr_waiting)
          t.pending)
      confirmed;
    if confirmed <> [] then jsync t;
    let ready =
      Hashtbl.fold (fun _ p acc -> if p.pr_waiting = [] then p :: acc else acc) t.pending []
      |> List.sort (fun a b -> Int.compare a.pr_cap b.pr_cap)
    in
    List.iter (execute_pending t) ready
  end

let apply_data t ch ~origin ~seq msg =
  if seq <= ch.c_applied then begin
    (* Duplicate or post-recovery re-send: absorbed, but re-acked so the
       sender's outbox can drain even when the original ack was lost. *)
    Obs.Metrics.incr dup_rx_c;
    send_ack t ch
  end
  else if seq > ch.c_applied + 1 then
    (* Out of order: the sender retransmits its whole unacked window in
       sequence order, so the predecessor will arrive again. *)
    Obs.Metrics.incr gap_rx_c
  else begin
    let applied =
      match msg with
      | Wire.Delegate { del_id; base; len; rights } ->
        journal t (J_import { origin; del_id; base; len; rights; applied = seq });
        jsync t;
        Hashtbl.replace t.imports (origin, del_id)
          { imp_origin = origin; imp_del_id = del_id; imp_base = base; imp_len = len;
            imp_rights = rights };
        true
      | Wire.Revoke { del_id } ->
        journal t (J_unimport { origin; del_id; applied = seq });
        jsync t;
        Hashtbl.remove t.imports (origin, del_id);
        true
      | Wire.Data { chan; payload } -> (
        match Hashtbl.find_opt t.handlers chan with
        | None ->
          (* Handlers are volatile (re-registered after recovery, like
             session keys): leave the applied floor alone so the
             sender's retransmit redelivers once one is installed. *)
          Obs.Metrics.incr reject_c;
          false
        | Some f ->
          (* Handler first: its own durable effect (the migration
             journal record) must hit the medium before the floor
             advances and the ack leaves — a crash in between makes the
             sender retransmit into the handler's idempotent dedup. *)
          f origin payload;
          journal t (J_recv { origin; applied = seq });
          jsync t;
          true)
      | Wire.Ack _ -> assert false
    in
    if applied then begin
      ch.c_applied <- seq;
      Obs.Metrics.incr delivered_c;
      send_ack t ch
    end
  end

let handle t raw =
  if Fault.fires deliver_point then Obs.Metrics.incr drops_c
  else
    match Wire.split_datagram raw with
    | Error _ -> Obs.Metrics.incr reject_c
    | Ok (body, mac) -> (
      match Wire.decode_body body with
      | Error _ -> Obs.Metrics.incr reject_c
      | Ok (origin, seq, msg) -> (
        match Hashtbl.find_opt t.channels origin with
        | None -> Obs.Metrics.incr reject_c
        | Some ch -> (
          match ch.ch_key with
          | None -> Obs.Metrics.incr reject_c
          | Some key ->
            if not (Wire.verify ~key ~body ~mac) then Obs.Metrics.incr reject_c
            else
              match msg with
              | Wire.Ack { upto } -> on_ack t ch upto
              | Wire.Delegate _ | Wire.Revoke _ | Wire.Data _ ->
                apply_data t ch ~origin ~seq msg)))

let poll t =
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Network.recv t.net t.name with
    | None -> continue_ := false
    | Some raw ->
      incr n;
      handle t raw
  done;
  !n

(* --- journal compaction ---------------------------------------------- *)

(* The journal is a redo log: completed delegations, retired imports and
   superseded ack floors leave records behind that replay no longer
   needs, so an append-only blob (and its recovery replay) would grow
   without bound over the endpoint's life. Compaction appends a snapshot
   of live state in replay order, makes it durable, then drops the
   prefix it supersedes — the same checkpoint-then-compact shape as the
   monitor WAL. A crash between the two steps leaves prefix + snapshot,
   which replays to the same state (every snapshot record is idempotent
   under replay). *)
let snapshot_records t =
  let recs = ref [] in
  let add r = recs := r :: !recs in
  Hashtbl.iter (fun peer proxy -> add (J_peer { peer; proxy })) t.proxies;
  Hashtbl.iter
    (fun peer ch ->
      add (J_chan { peer; next_ = ch.c_next; acked = ch.c_acked; applied = ch.c_applied }))
    t.channels;
  let dels =
    Hashtbl.fold (fun _ d acc -> d :: acc) t.dels []
    |> List.sort (fun a b -> Int.compare a.del_id b.del_id)
  in
  List.iter
    (fun d ->
      add
        (J_delegate
           { del_id = d.del_id; peer = d.del_peer; proxy_cap = d.proxy_cap;
             base = d.del_base; len = d.del_len; rights = d.del_rights;
             seq = d.del_seq }))
    dels;
  Hashtbl.iter
    (fun _ i ->
      (* [applied = 0] is safe: replay folds applied floors with [max]
         and the J_chan record above already carries the real one. *)
      add
        (J_import
           { origin = i.imp_origin; del_id = i.imp_del_id; base = i.imp_base;
             len = i.imp_len; rights = i.imp_rights; applied = 0 }))
    t.imports;
  Hashtbl.iter
    (fun (peer, seq) (chan, payload) -> add (J_send { peer; seq; chan; payload }))
    t.sends;
  Hashtbl.iter
    (fun cap p -> add (J_pending { cap; caller = p.pr_caller; dels = p.pr_dels }))
    t.pending;
  List.iter
    (fun d -> if d.del_state = Revoked then add (J_revoked { del_id = d.del_id }))
    dels;
  List.rev !recs

let compact t =
  match t.store with
  | None -> ()
  | Some s ->
    let upto = t.jseq in
    let recs = snapshot_records t in
    List.iter (journal t) recs;
    jsync t;
    ignore (Persist.Wal.compact s ~blob:fleet_blob ~upto);
    t.jrecs <- List.length recs

(* Auto-compaction bounds, from the endpoint's {!config}: never bother
   below [compact_min] records, and only rewrite once dead records
   dominate live state [compact_ratio]:1. *)
let maybe_compact t =
  if t.store <> None && t.jrecs >= t.config.compact_min then begin
    let live =
      Hashtbl.length t.proxies + Hashtbl.length t.channels + Hashtbl.length t.dels
      + Hashtbl.length t.imports + Hashtbl.length t.pending + Hashtbl.length t.sends
    in
    if t.jrecs > t.config.compact_ratio * live then compact t
  end

(* --- retry / degraded mode ------------------------------------------ *)

let tick t =
  t.clock <- t.clock + 1;
  Hashtbl.iter
    (fun _ ch ->
      if (not (Queue.is_empty ch.outbox)) && ch.ch_key <> None && t.clock >= ch.due
      then begin
        if Fault.fires partition_point then
          (* The whole round vanishes: backoff still advances, exactly
             as if every datagram were dropped in flight. *)
          Obs.Metrics.incr drops_c
        else begin
          Queue.iter
            (fun e ->
              Obs.Metrics.incr retries_c;
              Obs.Metrics.incr ch.l_retries;
              transmit t ch e.ob_body)
            ch.outbox
        end;
        ch.attempts <- ch.attempts + 1;
        ch.backoff <- min (ch.backoff * 2) max_backoff;
        ch.due <- t.clock + ch.backoff;
        if ch.attempts >= degrade_after && ch.ch_state = Healthy then begin
          ch.ch_state <- Degraded { since = t.clock; attempts = ch.attempts };
          Obs.Metrics.incr ch.l_timeouts;
          Obs.Metrics.set_gauge degraded_g (degraded_count t)
        end;
        match ch.ch_state with
        | Degraded d -> ch.ch_state <- Degraded { d with attempts = ch.attempts }
        | Healthy -> ()
      end)
    t.channels;
  (* Retry pending revocations whose acks are all in but whose local
     execution was rolled back by a fault. *)
  let ready =
    Hashtbl.fold (fun _ p acc -> if p.pr_waiting = [] then p :: acc else acc) t.pending []
    |> List.sort (fun a b -> Int.compare a.pr_cap b.pr_cap)
  in
  List.iter (execute_pending t) ready;
  maybe_compact t

(* --- construction and recovery -------------------------------------- *)

let freeze_all t =
  let tr = tree t in
  Hashtbl.iter
    (fun _ d ->
      match Cap.Captree.freeze tr d.proxy_cap with Ok () | Error _ -> ())
    t.dels;
  Hashtbl.iter
    (fun cap _ -> match Cap.Captree.freeze tr cap with Ok () | Error _ -> ())
    t.pending

(* Proxy-owned caps with no delegation record are half-finished
   delegations: the crash hit between [Monitor.share] and the journal
   fsync, so no peer can have seen the delegation (sends only happen
   after the record is durable). Revoking them locally is safe and
   mandatory — otherwise the refcount story claims a remote holder that
   does not exist. *)
let reconcile t =
  let tr = tree t in
  let known = Hashtbl.create 16 in
  Hashtbl.iter (fun _ d -> Hashtbl.replace known d.proxy_cap ()) t.dels;
  Hashtbl.iter
    (fun _ proxy ->
      List.iter
        (fun cap ->
          if not (Hashtbl.mem known cap) then begin
            let caller =
              match Cap.Captree.parent tr cap with
              | Some pid ->
                Option.value (Cap.Captree.owner tr pid) ~default:Tyche.Domain.initial
              | None -> Tyche.Domain.initial
            in
            match Tyche.Monitor.revoke t.monitor ~caller ~cap with
            | Ok () -> ()
            | Error _ -> Obs.Metrics.incr reject_c
          end)
        (Cap.Captree.all_caps_of_domain tr proxy))
    t.proxies

let rebuild_outboxes t =
  let staged = Hashtbl.create 4 in
  let stage peer e =
    let l = match Hashtbl.find_opt staged peer with Some l -> l | None -> [] in
    Hashtbl.replace staged peer (e :: l)
  in
  (* Data frames the peer already acked are dead — prune them so the
     next compaction snapshot doesn't resurrect them; the rest rejoin
     the retransmission window alongside delegations and revokes. *)
  let stale =
    Hashtbl.fold
      (fun ((peer, seq) as k) _ acc ->
        if seq <= (channel_of t peer).c_acked then k :: acc else acc)
      t.sends []
  in
  List.iter (Hashtbl.remove t.sends) stale;
  Hashtbl.iter
    (fun (peer, seq) (chan, payload) ->
      stage peer
        { ob_seq = seq;
          ob_body = Wire.encode_body ~origin:t.name ~seq (Wire.Data { chan; payload });
          ob_sent = t.clock })
    t.sends;
  Hashtbl.iter
    (fun _ d ->
      let ch = channel_of t d.del_peer in
      (match d.del_state with
      | Active | Revoking ->
        if d.del_seq > ch.c_acked then
          stage d.del_peer
            { ob_seq = d.del_seq;
              ob_body =
                Wire.encode_body ~origin:t.name ~seq:d.del_seq
                  (Wire.Delegate
                     { del_id = d.del_id; base = d.del_base; len = d.del_len;
                       rights = d.del_rights });
              ob_sent = t.clock }
      | Revoked -> ());
      if d.del_state = Revoking && d.revoke_seq > ch.c_acked then
        stage d.del_peer
          { ob_seq = d.revoke_seq;
            ob_body =
              Wire.encode_body ~origin:t.name ~seq:d.revoke_seq
                (Wire.Revoke { del_id = d.del_id });
            ob_sent = t.clock })
    t.dels;
  Hashtbl.iter
    (fun peer ch ->
      (match Hashtbl.find_opt staged peer with
      | None -> ()
      | Some entries ->
        List.iter
          (fun e -> Queue.add e ch.outbox)
          (List.sort (fun a b -> Int.compare a.ob_seq b.ob_seq) entries));
      update_backlog t ch)
    t.channels

let replay t =
  match t.store with
  | None -> ()
  | Some s ->
    let { Persist.Wal.records; truncated; _ } = Persist.Wal.read s ~blob:fleet_blob in
    (* A crash can leave a torn frame at the end of the blob. Everything
       appended after it would be invisible to the longest-valid-prefix
       read of the NEXT recovery — which would silently roll back acked
       imports. Rewrite the journal to its valid prefix before any new
       record lands behind the tear. *)
    if truncated then begin
      Persist.Wal.reset s ~blob:fleet_blob;
      List.iter
        (fun (seq, payload) -> Persist.Wal.append s ~blob:fleet_blob ~seq payload)
        records;
      Persist.Store.fsync s fleet_blob
    end;
    t.jrecs <- List.length records;
    List.iter
      (fun (seq, payload) ->
        t.jseq <- max t.jseq seq;
        match decode_jrec payload with
        | exception Persist.Wire.Corrupt _ -> ()
        | J_peer { peer; proxy } ->
          Hashtbl.replace t.proxies peer proxy;
          ignore (channel_of t peer)
        | J_delegate { del_id; peer; proxy_cap; base; len; rights; seq } ->
          let ch = channel_of t peer in
          ch.c_next <- max ch.c_next (seq + 1);
          t.next_del <- max t.next_del (del_id + 1);
          Hashtbl.replace t.dels del_id
            { del_id; del_peer = peer; proxy_cap; del_base = base; del_len = len;
              del_rights = rights; del_seq = seq; del_state = Active; revoke_seq = 0 }
        | J_import { origin; del_id; base; len; rights; applied } ->
          let ch = channel_of t origin in
          ch.c_applied <- max ch.c_applied applied;
          Hashtbl.replace t.imports (origin, del_id)
            { imp_origin = origin; imp_del_id = del_id; imp_base = base;
              imp_len = len; imp_rights = rights }
        | J_unimport { origin; del_id; applied } ->
          let ch = channel_of t origin in
          ch.c_applied <- max ch.c_applied applied;
          Hashtbl.remove t.imports (origin, del_id)
        | J_pending { cap; caller; dels } ->
          List.iter
            (fun (peer, del_id, seq) ->
              let ch = channel_of t peer in
              ch.c_next <- max ch.c_next (seq + 1);
              match Hashtbl.find_opt t.dels del_id with
              | Some d ->
                d.del_state <- Revoking;
                d.revoke_seq <- seq
              | None -> ())
            dels;
          Hashtbl.replace t.pending cap
            { pr_cap = cap;
              pr_caller = caller;
              pr_dels = dels;
              pr_waiting = List.map (fun (peer, id, _) -> (peer, id)) dels }
        | J_revoked { del_id } -> (
          match Hashtbl.find_opt t.dels del_id with
          | Some d ->
            d.del_state <- Revoked;
            Hashtbl.iter
              (fun _ p ->
                p.pr_waiting <-
                  List.filter (fun (_, id) -> id <> del_id) p.pr_waiting)
              t.pending
          | None -> ())
        | J_acked { peer; upto } ->
          let ch = channel_of t peer in
          ch.c_acked <- max ch.c_acked upto
        | J_chan { peer; next_; acked; applied } ->
          let ch = channel_of t peer in
          ch.c_next <- max ch.c_next next_;
          ch.c_acked <- max ch.c_acked acked;
          ch.c_applied <- max ch.c_applied applied
        | J_send { peer; seq; chan; payload } ->
          let ch = channel_of t peer in
          ch.c_next <- max ch.c_next (seq + 1);
          Hashtbl.replace t.sends (peer, seq) (chan, payload)
        | J_recv { origin; applied } ->
          let ch = channel_of t origin in
          ch.c_applied <- max ch.c_applied applied
        | J_done { cap } -> (
          match Hashtbl.find_opt t.pending cap with
          | Some p ->
            List.iter (fun (_, del_id, _) -> Hashtbl.remove t.dels del_id) p.pr_dels;
            Hashtbl.remove t.pending cap
          | None -> ()))
      records

let create ?store ?(config = default_config) ~monitor ~name ~net () =
  let t =
    { monitor;
      name;
      net;
      store;
      config;
      jseq = 0;
      jrecs = 0;
      channels = Hashtbl.create 4;
      dels = Hashtbl.create 16;
      imports = Hashtbl.create 16;
      proxies = Hashtbl.create 4;
      pending = Hashtbl.create 4;
      sends = Hashtbl.create 16;
      handlers = Hashtbl.create 4;
      next_del = 1;
      clock = 0 }
  in
  replay t;
  (* Order matters: reconcile half-finished delegations while nothing is
     frozen (their revocations must not be refused), then re-freeze the
     journaled remote holders, then rebuild the retransmission window.
     Pending revocations whose acks were all in before the crash execute
     immediately. *)
  reconcile t;
  freeze_all t;
  rebuild_outboxes t;
  let ready =
    Hashtbl.fold (fun _ p acc -> if p.pr_waiting = [] then p :: acc else acc) t.pending []
    |> List.sort (fun a b -> Int.compare a.pr_cap b.pr_cap)
  in
  List.iter (execute_pending t) ready;
  t

(* --- inspection ------------------------------------------------------ *)

let peer_state t ~peer =
  Option.map (fun ch -> ch.ch_state) (Hashtbl.find_opt t.channels peer)

let delegations t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.dels []
  |> List.sort (fun a b -> Int.compare a.del_id b.del_id)

let imports t =
  Hashtbl.fold (fun _ i acc -> i :: acc) t.imports []
  |> List.sort (fun a b ->
         match String.compare a.imp_origin b.imp_origin with
         | 0 -> Int.compare a.imp_del_id b.imp_del_id
         | c -> c)

let pending_revokes t =
  Hashtbl.fold (fun cap _ acc -> cap :: acc) t.pending [] |> List.sort Int.compare

let backlog t ~peer =
  match Hashtbl.find_opt t.channels peer with
  | Some ch -> Queue.length ch.outbox
  | None -> 0

let applied t ~peer =
  match Hashtbl.find_opt t.channels peer with Some ch -> ch.c_applied | None -> 0

let acked t ~peer =
  match Hashtbl.find_opt t.channels peer with Some ch -> ch.c_acked | None -> 0

let idle t = total_backlog t = 0 && Hashtbl.length t.pending = 0

let monitor t = t.monitor
let endpoint_name t = t.name

(* --- fleet attestation ----------------------------------------------- *)

type attestation = {
  fa_members : (string * Crypto.Sha256.digest) list;
  fa_root : Crypto.Sha256.digest;
  fa_tree : Crypto.Merkle.t;
}

(* One monitor's attest root: a batch attestation over every domain
   (PR 2's Merkle machinery signs one root for the whole machine), then
   a Merkle root over the canonical payloads. Remote proxy domains are
   attested like any other — a verifier sees the delegation as a holder
   named "remote:<peer>" in the exporter's body. *)
let member_root m ~nonce =
  let ids = List.map Tyche.Domain.id (Tyche.Monitor.domains m) in
  match Tyche.Monitor.attest_batch m ~caller:Tyche.Domain.initial ~domains:ids ~nonce with
  | Error e -> Error (Monitor_error e)
  | Ok atts ->
    let leaves =
      List.map (fun a -> Crypto.Sha256.string (Tyche.Attestation.payload a)) atts
    in
    Ok (Crypto.Merkle.root (Crypto.Merkle.build leaves))

let attest ~nonce members =
  let rec roots acc = function
    | [] -> Ok (List.rev acc)
    | (name, m) :: rest ->
      let* r = member_root m ~nonce in
      roots ((name, r) :: acc) rest
  in
  let* fa_members = roots [] members in
  let fa_tree = Crypto.Merkle.build (List.map snd fa_members) in
  Ok { fa_members; fa_root = Crypto.Merkle.root fa_tree; fa_tree }

let verify_member att ~name ~member_root =
  let rec index i = function
    | [] -> None
    | (n, _) :: rest -> if n = name then Some i else index (i + 1) rest
  in
  match index 0 att.fa_members with
  | None -> false
  | Some i ->
    let proof = Crypto.Merkle.prove att.fa_tree i in
    Crypto.Merkle.verify ~root:att.fa_root ~leaf:member_root proof
