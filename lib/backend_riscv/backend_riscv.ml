type alloc_strategy = Merge_adjacent | First_fit

type state = {
  machine : Hw.Machine.t;
  monitor_range : Hw.Addr.Range.t;
  strategy : alloc_strategy;
  layouts : (Tyche.Domain.id, (Hw.Addr.Range.t * Hw.Perm.t) list ref) Hashtbl.t;
  domain_devices : (Tyche.Domain.id, int list ref) Hashtbl.t;
  core_domain : int array;
  mutable transitions : int;
  mutable pmp_writes : int;
  (* Hardware undo journal. While [journaling], every mutation of
     backend or hardware state (layouts, device lists, PMP files, IOMMU
     windows, remap table, core context) prepends its inverse;
     destructive clean-ups (memory zeroing) go to [deferred] and only
     run at commit, so a rollback never has to un-zero memory. *)
  mutable journal : (unit -> unit) list;
  mutable journaling : bool;
  mutable deferred : (unit -> unit) list;
}

let registry : (Tyche.Backend_intf.t * state) list ref = ref []

let state_of backend =
  match List.find_opt (fun (b, _) -> b == backend) !registry with
  | Some (_, s) -> s
  | None -> invalid_arg "Backend_riscv: not a backend created by this module"

(* --- transactions --------------------------------------------------- *)

(* Call sites guard with [if s.journaling then record s (fun () -> ...)]
   so the fault-free path allocates no closures. *)
let record s undo = s.journal <- undo :: s.journal

(* Stage a destructive clean-up: run at commit inside a transaction,
   immediately outside one (boot-time paths). *)
let defer s cleanup = if s.journaling then s.deferred <- cleanup :: s.deferred else cleanup ()

let txn_begin s =
  if s.journaling then invalid_arg "Backend_riscv.txn_begin: transaction already open";
  s.journal <- [];
  s.deferred <- [];
  s.journaling <- true;
  let transitions = s.transitions and pmp_writes = s.pmp_writes in
  record s (fun () ->
    s.transitions <- transitions;
    s.pmp_writes <- pmp_writes)

let txn_commit s =
  let cleanups = List.rev s.deferred in
  s.journaling <- false;
  s.journal <- [];
  s.deferred <- [];
  List.iter (fun f -> f ()) cleanups

let txn_rollback s =
  let undos = s.journal in
  s.journaling <- false;
  s.journal <- [];
  s.deferred <- [];
  (* Undo closures re-execute PMP/IOMMU writes; they must not trip the
     very fault plan that caused the rollback. *)
  Fault.suspend (fun () -> List.iter (fun f -> f ()) undos)

let fault_error = function
  | Fault.Injected { point; trip } ->
    Printf.sprintf "fault injected at %s (trip %d)" point trip
  | e -> raise e

let usable_entries machine =
  (* Entry 0 is locked over the monitor image on every hart. *)
  Hw.Pmp.entry_count (Hw.Cpu.pmp machine.Hw.Machine.cores.(0)) - 1

let layout_ref s domain =
  match Hashtbl.find_opt s.layouts domain with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add s.layouts domain l;
    l

let devices_of s domain =
  match Hashtbl.find_opt s.domain_devices domain with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add s.domain_devices domain l;
    l

let journal_layout s domain =
  if s.journaling then begin
    let l = layout_ref s domain in
    let old = !l in
    record s (fun () -> l := old)
  end

let journal_devices s domain =
  if s.journaling then begin
    let l = devices_of s domain in
    let old = !l in
    record s (fun () -> l := old)
  end

let journal_iommu s device =
  if s.journaling then begin
    let iommu = s.machine.Hw.Machine.iommu in
    let ws = Hw.Iommu.windows iommu ~device in
    record s (fun () -> Hw.Iommu.set_windows iommu ~device ws)
  end

(* Keep layouts sorted by base; Merge_adjacent folds touching ranges of
   equal permission into a single PMP segment. *)
let normalize strategy pieces =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Hw.Addr.Range.compare a b) pieces
  in
  match strategy with
  | First_fit -> sorted
  | Merge_adjacent ->
    let rec fold = function
      | (r1, p1) :: (r2, p2) :: rest
        when Hw.Perm.equal p1 p2
             && (Hw.Addr.Range.adjacent r1 r2 || Hw.Addr.Range.overlaps r1 r2) ->
        fold ((Option.get (Hw.Addr.Range.merge r1 r2), p1) :: rest)
      | x :: rest -> x :: fold rest
      | [] -> []
    in
    fold sorted

let layout_add s domain range perm =
  let l = layout_ref s domain in
  l := normalize s.strategy ((range, perm) :: !l)

let layout_remove s domain range =
  let l = layout_ref s domain in
  l :=
    normalize s.strategy
      (List.concat_map
         (fun (r, p) ->
           List.map (fun piece -> (piece, p)) (Hw.Addr.Range.subtract r range))
         !l)

(* Hoisted span handles: one registry lookup per process, not per
   hardware write (see {!Obs.Profile.handle}). *)
let h_pmp_reprogram = Obs.Profile.handle "pmp.reprogram"
let h_iommu_grant = Obs.Profile.handle "iommu.grant"
let h_iommu_revoke = Obs.Profile.handle "iommu.revoke"
let bk_riscv = Obs.intern "riscv-pmp"

let reprogram s ~core domain =
  Obs.Profile.span_h ~domain ~backend:bk_riscv h_pmp_reprogram @@ fun () ->
  let pmp = Hw.Cpu.pmp core in
  let layout = !(layout_ref s domain) in
  (* The budget check precedes every PMP write, so genuine exhaustion
     fails before hardware is touched; only an injected mid-write fault
     can leave the file half-programmed, and the journal covers that. *)
  if List.length layout > usable_entries s.machine then
    Error
      (Printf.sprintf "domain %d needs %d PMP entries but only %d are usable" domain
         (List.length layout) (usable_entries s.machine))
  else begin
    if s.journaling then begin
      let snapshot =
        List.filter_map
          (fun (i, range, perm, locked) -> if locked then None else Some (i, range, perm))
          (Hw.Pmp.entries pmp)
      in
      record s (fun () ->
        List.iter
          (fun (i, _, _, locked) -> if not locked then Hw.Pmp.clear pmp ~index:i)
          (Hw.Pmp.entries pmp);
        List.iter
          (fun (i, range, perm) -> Hw.Pmp.set pmp ~index:i range perm ~locked:false)
          snapshot)
    end;
    (* Clear every non-locked entry, then program the layout. *)
    List.iter
      (fun (i, _, _, locked) ->
        if not locked then begin
          Hw.Pmp.clear pmp ~index:i;
          s.pmp_writes <- s.pmp_writes + 1
        end)
      (Hw.Pmp.entries pmp);
    List.iter
      (fun (range, perm) ->
        match Hw.Pmp.find_free pmp with
        | Some index ->
          Hw.Pmp.set pmp ~index range perm ~locked:false;
          s.pmp_writes <- s.pmp_writes + 1
        | None -> assert false (* guarded by the budget check above *))
      layout;
    Ok ()
  end

let reprogram_running s domain =
  let n = Array.length s.core_domain in
  let rec go core_id =
    if core_id >= n then Ok ()
    else if s.core_domain.(core_id) = domain then
      match reprogram s ~core:(Hw.Machine.core s.machine core_id) domain with
      | Ok () -> go (core_id + 1)
      | Error _ as e -> e
    else go (core_id + 1)
  in
  go 0

let dma_perm perm = Hw.Perm.inter perm Hw.Perm.rw

let apply_effect_unsafe s = function
  | Cap.Captree.Attach { domain; resource = Cap.Resource.Memory r; perm } ->
    journal_layout s domain;
    layout_add s domain r perm;
    List.iter
      (fun bdf ->
        journal_iommu s bdf;
        Hw.Iommu.grant s.machine.Hw.Machine.iommu ~device:bdf r (dma_perm perm))
      !(devices_of s domain);
    reprogram_running s domain
  | Cap.Captree.Detach { domain; resource = Cap.Resource.Memory r; cleanup } ->
    (* Taint the victim's residue before any clean-up runs: the
       deferred Revocation.apply erases exactly the taint the policy
       promises to clean, so surviving taint = a missing clean-up (see
       Hw.Taint). No TLB surface on RISC-V — PMP checks every access. *)
    let tt = s.machine.Hw.Machine.taint in
    let u_pages =
      Hw.Taint.taint_pages tt r ~prior:domain
        ~guarded:(Cap.Revocation.zeroes_memory cleanup)
    in
    let u_lines =
      Hw.Taint.taint_lines tt
        (Hw.Cache.resident_lines_in s.machine.Hw.Machine.cache r)
        ~prior:domain
        ~guarded:(Cap.Revocation.flushes_cache cleanup)
    in
    if s.journaling then
      record s (fun () ->
        Hw.Taint.undo tt u_lines;
        Hw.Taint.undo tt u_pages);
    journal_layout s domain;
    layout_remove s domain r;
    List.iter
      (fun bdf ->
        journal_iommu s bdf;
        Hw.Iommu.revoke_range s.machine.Hw.Machine.iommu ~device:bdf r)
      !(devices_of s domain);
    (match reprogram_running s domain with
    | Error _ as e -> e
    | Ok () ->
      (* Zeroing is destructive and has no inverse: stage it so a later
         failure in the same transaction never needs to un-zero. *)
      defer s (fun () ->
        Cap.Revocation.apply cleanup ~mem:s.machine.Hw.Machine.mem
          ~cache:s.machine.Hw.Machine.cache ~counter:s.machine.Hw.Machine.counter r);
      Ok ())
  | Cap.Captree.Attach { domain; resource = Cap.Resource.Device bdf; _ } ->
    Obs.Profile.span_h ~domain ~backend:bk_riscv h_iommu_grant @@ fun () ->
    journal_devices s domain;
    let devices = devices_of s domain in
    devices := bdf :: !devices;
    journal_iommu s bdf;
    List.iter
      (fun (r, perm) ->
        Hw.Iommu.grant s.machine.Hw.Machine.iommu ~device:bdf r (dma_perm perm))
      !(layout_ref s domain);
    Ok ()
  | Cap.Captree.Detach { domain; resource = Cap.Resource.Device bdf; _ } ->
    Obs.Profile.span_h ~domain ~backend:bk_riscv h_iommu_revoke @@ fun () ->
    journal_iommu s bdf;
    if s.journaling then begin
      let interrupts = s.machine.Hw.Machine.interrupts in
      let vectors = Hw.Interrupt.permitted interrupts ~device:bdf in
      record s (fun () ->
        List.iter (fun vector -> Hw.Interrupt.permit interrupts ~device:bdf ~vector) vectors)
    end;
    Hw.Iommu.revoke_all s.machine.Hw.Machine.iommu ~device:bdf;
    Hw.Interrupt.revoke_device s.machine.Hw.Machine.interrupts ~device:bdf;
    journal_devices s domain;
    let devices = devices_of s domain in
    devices := List.filter (fun d -> d <> bdf) !devices;
    Ok ()
  | Cap.Captree.Attach { resource = Cap.Resource.Cpu_core _; _ }
  | Cap.Captree.Detach { resource = Cap.Resource.Cpu_core _; _ } ->
    Ok ()

let apply_effect s eff =
  try apply_effect_unsafe s eff with Fault.Injected _ as e -> Error (fault_error e)

let validate_attach s d resource =
  match resource with
  | Cap.Resource.Memory r ->
    let domain = Tyche.Domain.id d in
    let simulated = normalize s.strategy ((r, Hw.Perm.rwx) :: !(layout_ref s domain)) in
    (* Permissions may differ from rwx, preventing some merges; count
       conservatively with the actual perm when known is impossible
       here, so recount with the pessimistic assumption too. *)
    let worst = List.length !(layout_ref s domain) + 1 in
    let best = List.length simulated in
    let budget = usable_entries s.machine in
    if min best worst > budget then
      Error
        (Printf.sprintf
           "PMP layout for domain %d would need %d entries (budget %d): \
            lay the domain out contiguously"
           domain (min best worst) budget)
    else Ok ()
  | Cap.Resource.Cpu_core _ | Cap.Resource.Device _ -> Ok ()

let mode_for d =
  if Tyche.Domain.id d = Tyche.Domain.initial then Hw.Cpu.Riscv Hw.Cpu.S
  else Hw.Cpu.Riscv Hw.Cpu.U

let enter s ~core d =
  let domain = Tyche.Domain.id d in
  match reprogram s ~core domain with
  | Error _ as e -> e
  | Ok () ->
    let core_id = Hw.Cpu.id core in
    if s.journaling then begin
      let old_asid = Hw.Cpu.asid core
      and old_mode = Hw.Cpu.mode core
      and old_domain = s.core_domain.(core_id) in
      record s (fun () ->
        Hw.Cpu.set_asid core old_asid;
        Hw.Cpu.set_mode core old_mode;
        s.core_domain.(core_id) <- old_domain)
    end;
    Hw.Cpu.set_asid core (Tyche.Domain.asid d);
    Hw.Cpu.set_mode core (mode_for d);
    s.core_domain.(core_id) <- domain;
    Ok ()

let transition s ~core ~from_ ~to_ ~flush_microarch =
  let counter = s.machine.Hw.Machine.counter in
  Hw.Cycles.charge counter Hw.Cycles.Cost.ecall_machine_mode;
  if flush_microarch then begin
    (* The outgoing domain's resident lines are promised gone: taint
       them guarded, then flush — surviving taint means the flush
       regressed (see Hw.Taint). *)
    let tt = s.machine.Hw.Machine.taint in
    let from_id = Tyche.Domain.id from_ in
    let u_lines =
      Hw.Taint.taint_lines tt
        (Hw.Cache.lines_of_tag s.machine.Hw.Machine.cache ~tag:from_id)
        ~prior:from_id ~guarded:true
    in
    if s.journaling then record s (fun () -> Hw.Taint.undo tt u_lines);
    Hw.Cache.flush_all s.machine.Hw.Machine.cache
  end;
  match (try enter s ~core to_ with Fault.Injected _ as e -> Error (fault_error e)) with
  | Error _ as e -> e
  | Ok () ->
    s.transitions <- s.transitions + 1;
    (* PMP reprogramming always traps to M-mode: there is no exit-less
       path on this backend, which is the cost the paper accepts for the
       generality of running on PMP-only hardware. *)
    Ok Tyche.Backend_intf.Trap_roundtrip

let domain_reaches s d range =
  List.exists (fun (r, _) -> Hw.Addr.Range.overlaps r range)
    !(layout_ref s (Tyche.Domain.id d))

let create machine ~monitor_range ?(alloc_strategy = Merge_adjacent) () =
  if machine.Hw.Machine.arch <> Hw.Cpu.Riscv64 then
    invalid_arg "Backend_riscv.create: machine is not RISC-V";
  let s =
    { machine;
      monitor_range;
      strategy = alloc_strategy;
      layouts = Hashtbl.create 16;
      domain_devices = Hashtbl.create 16;
      core_domain = Array.make (Array.length machine.Hw.Machine.cores) Tyche.Domain.initial;
      transitions = 0;
      pmp_writes = 0;
      journal = [];
      journaling = false;
      deferred = [] }
  in
  (* Lock the monitor's image out of reach on every hart. *)
  Array.iter
    (fun core ->
      Hw.Pmp.set (Hw.Cpu.pmp core) ~index:0 s.monitor_range Hw.Perm.none ~locked:true)
    machine.Hw.Machine.cores;
  let backend =
    { Tyche.Backend_intf.backend_name = "riscv-pmp";
      domain_created = (fun _ -> ());
      domain_destroyed =
        (fun d ->
          let id = Tyche.Domain.id d in
          if s.journaling then begin
            let layout = Hashtbl.find_opt s.layouts id in
            let devices = Hashtbl.find_opt s.domain_devices id in
            record s (fun () ->
              Option.iter (Hashtbl.replace s.layouts id) layout;
              Option.iter (Hashtbl.replace s.domain_devices id) devices)
          end;
          Hashtbl.remove s.layouts id;
          Hashtbl.remove s.domain_devices id);
      apply_effect = (fun eff -> apply_effect s eff);
      validate_attach = (fun d r -> validate_attach s d r);
      transition =
        (fun ~core ~from_ ~to_ ~flush_microarch ->
          transition s ~core ~from_ ~to_ ~flush_microarch);
      launch =
        (fun ~core d ->
          match enter s ~core d with
          | Ok () -> ()
          | Error msg -> invalid_arg ("Backend_riscv: " ^ msg));
      domain_reaches = (fun d r -> domain_reaches s d r);
      domain_encrypted = (fun _ -> false);
      txn_begin = (fun () -> txn_begin s);
      txn_commit = (fun () -> txn_commit s);
      txn_rollback = (fun () -> txn_rollback s) }
  in
  registry := (backend, s) :: !registry;
  backend

let layout_of backend domain = !(layout_ref (state_of backend) domain)
let transitions backend = (state_of backend).transitions
let pmp_reprogram_writes backend = (state_of backend).pmp_writes
