type cap_id = int
type domain_id = int

type effect =
  | Attach of { domain : domain_id; resource : Resource.t; perm : Hw.Perm.t }
  | Detach of { domain : domain_id; resource : Resource.t; cleanup : Revocation.t }

type error =
  | No_such_capability of cap_id
  | Capability_inactive of cap_id
  | Rights_exceeded
  | Sharing_denied
  | Grant_denied
  | Bad_subrange
  | Overlapping_root
  | Frozen of cap_id

let error_to_string = function
  | No_such_capability id -> Printf.sprintf "no such capability: %d" id
  | Capability_inactive id -> Printf.sprintf "capability %d is inactive" id
  | Rights_exceeded -> "child rights exceed parent rights"
  | Sharing_denied -> "capability is not shareable"
  | Grant_denied -> "capability is not grantable"
  | Bad_subrange -> "invalid subrange or split point"
  | Overlapping_root -> "new root overlaps an existing root"
  | Frozen id ->
    Printf.sprintf "capability %d is frozen (remote revocation pending)" id

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type origin = Orig_root | Orig_shared | Orig_granted | Orig_split

type state = Active | Inactive_granted | Inactive_split

module IntSet = Set.Make (Int)

type node = {
  id : cap_id;
  resource : Resource.t;
  node_rights : Rights.t;
  owner : domain_id;
  node_cleanup : Revocation.t;
  parent : cap_id option;
  origin : origin;
  (* Child ids. Fresh ids are monotonic, so the set's descending order
     is exactly the old "most-recent first" list order — but unlinking
     one child on revoke is O(log n) instead of the O(n) list filter
     that made share+revoke superlinear in the parent's fan-out. *)
  mutable children : IntSet.t;
  mutable state : state;
}

(* Most-recent first, matching the order the old list representation
   maintained (ids descend because fresh ids ascend). *)
let children_list (n : node) = IntSet.fold (fun c acc -> c :: acc) n.children []

module IntMap = Map.Make (Int)

(* A maximal run of physical addresses over which the set of active
   memory capabilities is constant. [counts] maps each holder to the
   number of its active caps covering the run, sorted by domain id and
   never containing zero entries. The segment's base address is its key
   in [t.segments]. *)
type segment = { seg_limit : int; counts : (domain_id * int) list }

type t = {
  nodes : (cap_id, node) Hashtbl.t;
  mutable roots : cap_id list; (* unordered; ids materialize creation order *)
  mutable next_id : int;
  (* Incremental indexes: redundant views over [nodes], patched on every
     mutation instead of being recomputed by a full table scan. Each has
     a [_reference] full-scan twin below; [check_index_consistency]
     cross-checks them and the property tests run it after every step.
       [by_domain]     domain -> ids of every cap it owns (any state)
       [scalar_active] active Cpu_core/Device caps, keyed by resource
       [scalar_roots]  root caps for Cpu_core/Device resources
       [mem_roots]     memory roots: base -> (limit, id); disjoint
       [segments]      delta-maintained Fig. 4 region map (see [segment])
     [generation] increases monotonically on every mutation; callers
     (Monitor.attest) use it to memoize derived views between
     mutations. *)
  by_domain : (domain_id, (cap_id, unit) Hashtbl.t) Hashtbl.t;
  scalar_active : (Resource.t, (cap_id, unit) Hashtbl.t) Hashtbl.t;
  scalar_roots : (Resource.t, cap_id) Hashtbl.t;
  mutable mem_roots : (int * cap_id) IntMap.t;
  mutable segments : segment IntMap.t;
  mutable generation : int;
  (* [seg_gens] maps bucket (id / seg_span) -> generation of its last
     mutation, so incremental checkpoints serialize only dirty buckets.
     Rollback does not unmark (over-marking is safe: a clean bucket that
     was marked re-serializes to the same content-addressed segment). *)
  seg_gens : (int, int) Hashtbl.t;
  mutable region_cache : (Hw.Addr.Range.t * domain_id list) list option;
  (* Undo journal for crash consistency. While [journaling], every
     mutation primitive prepends the exact inverse of its own effect
     (node table, indexes, parent/roots links, id counter); rollback
     replays the closures newest-first, so the composite inverse runs
     in the only order that is always correct: (a b)⁻¹ = b⁻¹ a⁻¹.
     [generation] is deliberately NOT restored — a rolled-back tree is
     byte-identical in content but must still invalidate memoized
     derived views. *)
  mutable journal : (unit -> unit) list;
  mutable journaling : bool;
  (* Caps frozen by a pending cross-machine revocation (Fleet): every
     mutation through the frozen cap or its subtree is refused until
     [thaw]. Small (proportional to in-flight remote revokes), so the
     guards iterate/walk it directly; the zero-size fast path keeps
     machine-local workloads paying one [Hashtbl.length] per op. Not
     serialized in snapshots — the fleet journal is the durable record
     of pending revocations and re-freezes on recovery. *)
  frozen : (cap_id, unit) Hashtbl.t;
}

let create () =
  { nodes = Hashtbl.create 64;
    roots = [];
    next_id = 1;
    by_domain = Hashtbl.create 16;
    scalar_active = Hashtbl.create 16;
    scalar_roots = Hashtbl.create 16;
    mem_roots = IntMap.empty;
    segments = IntMap.empty;
    generation = 0;
    seg_gens = Hashtbl.create 16;
    region_cache = None;
    journal = [];
    journaling = false;
    frozen = Hashtbl.create 4 }

let generation t = t.generation
let segment_count t = IntMap.cardinal t.segments

let touch t =
  t.generation <- t.generation + 1;
  t.region_cache <- None

(* Bucket width for incremental snapshots: segment [b] covers ids in
   [b*span, (b+1)*span). 64 nodes a segment keeps segments big enough to
   amortize framing and small enough that one mutation re-serializes a
   sliver of a 10k-cap tree. *)
let seg_span = 64

let mark_dirty t id = Hashtbl.replace t.seg_gens (id / seg_span) t.generation

let bucket_generation t bucket =
  match Hashtbl.find_opt t.seg_gens bucket with Some g -> g | None -> 0

(* --- undo journal --------------------------------------------------- *)

(* Call sites guard with [if t.journaling then record t (fun () -> ...)]
   rather than checking inside [record]: OCaml allocates the closure at
   the call site either way, and the fault-free fast path must not. *)
let record t undo = t.journal <- undo :: t.journal

(* Hoisted metric handles: registry entries survive [Obs.reset] (it
   zeroes in place), so the lookup happens once per process. *)
let txn_commit_c = Obs.Metrics.counter "captree.txn_commit"
let txn_rollback_c = Obs.Metrics.counter "captree.txn_rollback"

let txn_begin t =
  if t.journaling then invalid_arg "Captree.txn_begin: transaction already open";
  t.journal <- [];
  t.journaling <- true

let txn_commit t =
  t.journaling <- false;
  t.journal <- [];
  Obs.Metrics.incr txn_commit_c

let txn_rollback t =
  let undos = t.journal in
  t.journaling <- false;
  t.journal <- [];
  List.iter (fun undo -> undo ()) undos;
  (* Undo closures patch indexes directly; make sure memoized views
     (region cache, attestation bodies) see a fresh generation. *)
  touch t;
  Obs.Metrics.incr txn_rollback_c

let in_txn t = t.journaling

let ( let* ) = Result.bind

let find t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> Ok n
  | None -> Error (No_such_capability id)

let find_active t id =
  let* n = find t id in
  if n.state = Active then Ok n else Error (Capability_inactive id)

let fresh_id t =
  let id = t.next_id in
  if t.journaling then record t (fun () -> t.next_id <- id);
  t.next_id <- id + 1;
  id

(* --- frozen caps (pending cross-machine revocation) ----------------- *)

let freeze t id =
  let* _ = find t id in
  if not (Hashtbl.mem t.frozen id) then begin
    touch t;
    if t.journaling then record t (fun () -> Hashtbl.remove t.frozen id);
    Hashtbl.replace t.frozen id ()
  end;
  Ok ()

let thaw t id =
  if Hashtbl.mem t.frozen id then begin
    touch t;
    if t.journaling then record t (fun () -> Hashtbl.replace t.frozen id ());
    Hashtbl.remove t.frozen id
  end

let is_frozen t id = Hashtbl.mem t.frozen id

let frozen_caps t =
  Hashtbl.fold (fun id () acc -> id :: acc) t.frozen [] |> List.sort Int.compare

(* Walking up from [id] beats iterating the frozen set here: mutation
   guards run on every share/grant/split, and the walk is bounded by
   tree depth with an O(1) bail-out when nothing is frozen. *)
let frozen_ancestor t id =
  if Hashtbl.length t.frozen = 0 then None
  else begin
    let rec walk current =
      if Hashtbl.mem t.frozen current then Some current
      else
        match Hashtbl.find_opt t.nodes current with
        | Some { parent = Some p; _ } -> walk p
        | _ -> None
    in
    walk id
  end

let check_not_frozen t id =
  match frozen_ancestor t id with Some f -> Error (Frozen f) | None -> Ok ()

(* --- segment index (delta-maintained region map) ------------------- *)

let rec counts_incr counts d =
  match counts with
  | [] -> [ (d, 1) ]
  | (d', c) :: rest ->
    if d' = d then (d', c + 1) :: rest
    else if d' < d then (d', c) :: counts_incr rest d
    else (d, 1) :: counts

let rec counts_decr counts d =
  match counts with
  | [] -> []
  | (d', c) :: rest ->
    if d' = d then if c <= 1 then rest else (d', c - 1) :: rest
    else (d', c) :: counts_decr rest d

let counts_holders counts = List.map fst counts

(* Split the segment containing [pos] (if any) so [pos] becomes a
   segment boundary. *)
let seg_split_at segs pos =
  match IntMap.find_last_opt (fun b -> b < pos) segs with
  | Some (b, s) when s.seg_limit > pos ->
    segs
    |> IntMap.add b { s with seg_limit = pos }
    |> IntMap.add pos { seg_limit = s.seg_limit; counts = s.counts }
  | _ -> segs

(* Remove boundaries inside [lo, hi] that no longer separate distinct
   count tables (e.g. after a revoke deleted the cap that created
   them), so fragmentation stays proportional to live cap bounds. *)
let seg_coalesce segs ~lo ~hi =
  let start =
    match IntMap.find_last_opt (fun b -> b <= lo) segs with
    | Some (b, _) -> b
    | None -> lo
  in
  let rec go segs b =
    if b > hi then segs
    else
      match IntMap.find_opt b segs with
      | None -> (
        match IntMap.find_first_opt (fun k -> k > b) segs with
        | Some (nb, _) -> go segs nb
        | None -> segs)
      | Some s -> (
        match IntMap.find_first_opt (fun k -> k > b) segs with
        | Some (nb, ns) when s.seg_limit = nb && s.counts = ns.counts ->
          go (IntMap.add b { ns with counts = s.counts } (IntMap.remove nb segs)) b
        | Some (nb, _) -> go segs nb
        | None -> segs)
  in
  go segs start

(* Add one active cap [base, limit) held by [owner]: split at the two
   bounds, bump counts in covered segments, materialize segments for
   uncovered gaps. O(log segments + segments overlapped). *)
let seg_insert segs ~base ~limit ~owner =
  let segs = seg_split_at (seg_split_at segs base) limit in
  let rec collect cursor seq acc =
    if cursor >= limit then acc
    else
      match seq () with
      | Seq.Cons ((b, s), rest) when b < limit ->
        let acc =
          if b > cursor then (cursor, { seg_limit = b; counts = [ (owner, 1) ] }) :: acc
          else acc
        in
        collect s.seg_limit rest ((b, { s with counts = counts_incr s.counts owner }) :: acc)
      | _ -> (cursor, { seg_limit = limit; counts = [ (owner, 1) ] }) :: acc
  in
  let updates = collect base (IntMap.to_seq_from base segs) [] in
  let segs = List.fold_left (fun m (k, v) -> IntMap.add k v m) segs updates in
  seg_coalesce segs ~lo:base ~hi:limit

(* Inverse of [seg_insert]. The cap was active, so every point of
   [base, limit) is covered; counts that drop to zero delete the
   segment. *)
let seg_remove segs ~base ~limit ~owner =
  let segs = seg_split_at (seg_split_at segs base) limit in
  let rec collect seq acc =
    match seq () with
    | Seq.Cons ((b, s), rest) when b < limit ->
      collect rest ((b, { s with counts = counts_decr s.counts owner }) :: acc)
    | _ -> acc
  in
  let updates = collect (IntMap.to_seq_from base segs) [] in
  let segs =
    List.fold_left
      (fun m (k, s) -> if s.counts = [] then IntMap.remove k m else IntMap.add k s m)
      segs updates
  in
  seg_coalesce segs ~lo:base ~hi:limit

(* --- index maintenance --------------------------------------------- *)

let domain_index_add t domain id =
  let tbl =
    match Hashtbl.find_opt t.by_domain domain with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.by_domain domain tbl;
      tbl
  in
  Hashtbl.replace tbl id ()

let domain_index_remove t domain id =
  match Hashtbl.find_opt t.by_domain domain with
  | None -> ()
  | Some tbl ->
    Hashtbl.remove tbl id;
    if Hashtbl.length tbl = 0 then Hashtbl.remove t.by_domain domain

(* Called when [n] becomes active (creation, or reactivation after its
   children were revoked). *)
let index_activate t (n : node) =
  match n.resource with
  | Resource.Memory r ->
    t.segments <-
      seg_insert t.segments ~base:(Hw.Addr.Range.base r) ~limit:(Hw.Addr.Range.limit r)
        ~owner:n.owner
  | (Resource.Cpu_core _ | Resource.Device _) as res ->
    let tbl =
      match Hashtbl.find_opt t.scalar_active res with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace t.scalar_active res tbl;
        tbl
    in
    Hashtbl.replace tbl n.id ()

(* Called when [n] stops being active (grant, split, removal). *)
let index_deactivate t (n : node) =
  match n.resource with
  | Resource.Memory r ->
    t.segments <-
      seg_remove t.segments ~base:(Hw.Addr.Range.base r) ~limit:(Hw.Addr.Range.limit r)
        ~owner:n.owner
  | (Resource.Cpu_core _ | Resource.Device _) as res -> (
    match Hashtbl.find_opt t.scalar_active res with
    | None -> ()
    | Some tbl ->
      Hashtbl.remove tbl n.id;
      if Hashtbl.length tbl = 0 then Hashtbl.remove t.scalar_active res)

let root_index_add t (n : node) =
  match n.resource with
  | Resource.Memory r ->
    t.mem_roots <- IntMap.add (Hw.Addr.Range.base r) (Hw.Addr.Range.limit r, n.id) t.mem_roots
  | (Resource.Cpu_core _ | Resource.Device _) as res -> Hashtbl.replace t.scalar_roots res n.id

let root_index_remove t (n : node) =
  match n.resource with
  | Resource.Memory r -> t.mem_roots <- IntMap.remove (Hw.Addr.Range.base r) t.mem_roots
  | (Resource.Cpu_core _ | Resource.Device _) as res -> Hashtbl.remove t.scalar_roots res

let add_node t node =
  touch t;
  mark_dirty t node.id;
  (match node.parent with Some pid -> mark_dirty t pid | None -> ());
  Hashtbl.replace t.nodes node.id node;
  domain_index_add t node.owner node.id;
  index_activate t node;
  if t.journaling then
    record t (fun () ->
      Hashtbl.remove t.nodes node.id;
      domain_index_remove t node.owner node.id;
      index_deactivate t node);
  (match node.parent with
  | Some pid ->
    (* O(log n) insert. Nothing depends on child order beyond the
       descending-id order the set maintains (ids give creation order
       where needed). *)
    let p = Hashtbl.find t.nodes pid in
    p.children <- IntSet.add node.id p.children;
    if t.journaling then
      record t (fun () -> p.children <- IntSet.remove node.id p.children)
  | None ->
    (* Prepend here too: the roots list is an unordered set; creation
       order, where a caller needs it, is materialized from ids. *)
    t.roots <- node.id :: t.roots;
    root_index_add t node;
    if t.journaling then
      record t (fun () ->
        t.roots <- List.filter (fun r -> r <> node.id) t.roots;
        root_index_remove t node))

let root t ~owner resource rights =
  let overlapping =
    match resource with
    | Resource.Memory r -> (
      (* Memory roots are pairwise disjoint, so the root with the
         greatest base below our limit is the only overlap candidate. *)
      match IntMap.find_last_opt (fun b -> b < Hw.Addr.Range.limit r) t.mem_roots with
      | Some (_, (root_limit, _)) -> root_limit > Hw.Addr.Range.base r
      | None -> false)
    | Resource.Cpu_core _ | Resource.Device _ -> Hashtbl.mem t.scalar_roots resource
  in
  if overlapping then Error Overlapping_root
  else begin
    let id = fresh_id t in
    add_node t
      { id; resource; node_rights = rights; owner; node_cleanup = Revocation.Keep;
        parent = None; origin = Orig_root; children = IntSet.empty; state = Active };
    Ok (id, [ Attach { domain = owner; resource; perm = rights.Rights.perm } ])
  end

let narrowed_resource node subrange =
  match node.resource, subrange with
  | _, None -> Ok node.resource
  | Resource.Memory r, Some sub ->
    if Hw.Addr.Range.includes ~outer:r ~inner:sub then Ok (Resource.Memory sub)
    else Error Bad_subrange
  | (Resource.Cpu_core _ | Resource.Device _), Some _ -> Error Bad_subrange

let share t id ~to_ ~rights ~cleanup ?subrange () =
  let* n = find_active t id in
  let* () = check_not_frozen t id in
  if not n.node_rights.Rights.can_share then Error Sharing_denied
  else if not (Rights.attenuates ~parent:n.node_rights ~child:rights) then
    Error Rights_exceeded
  else
    let* resource = narrowed_resource n subrange in
    let cid = fresh_id t in
    add_node t
      { id = cid; resource; node_rights = rights; owner = to_; node_cleanup = cleanup;
        parent = Some id; origin = Orig_shared; children = IntSet.empty; state = Active };
    Ok (cid, [ Attach { domain = to_; resource; perm = rights.Rights.perm } ])

let grant t id ~to_ ~rights ~cleanup =
  let* n = find_active t id in
  let* () = check_not_frozen t id in
  if not n.node_rights.Rights.can_grant then Error Grant_denied
  else if not (Rights.attenuates ~parent:n.node_rights ~child:rights) then
    Error Rights_exceeded
  else begin
    let cid = fresh_id t in
    touch t;
    mark_dirty t id;
    if t.journaling then
      record t (fun () ->
        n.state <- Active;
        index_activate t n);
    n.state <- Inactive_granted;
    index_deactivate t n;
    add_node t
      { id = cid; resource = n.resource; node_rights = rights; owner = to_;
        node_cleanup = cleanup; parent = Some id; origin = Orig_granted;
        children = IntSet.empty; state = Active };
    Ok
      ( cid,
        [ Detach { domain = n.owner; resource = n.resource; cleanup = Revocation.Keep };
          Attach { domain = to_; resource = n.resource; perm = rights.Rights.perm } ] )
  end

let split t id ~at =
  let* n = find_active t id in
  let* () = check_not_frozen t id in
  match n.resource with
  | Resource.Cpu_core _ | Resource.Device _ -> Error Bad_subrange
  | Resource.Memory r -> (
    match Hw.Addr.Range.split_at r at with
    | None -> Error Bad_subrange
    | Some (left, right) ->
      touch t;
      mark_dirty t id;
      if t.journaling then
        record t (fun () ->
          n.state <- Active;
          index_activate t n);
      n.state <- Inactive_split;
      index_deactivate t n;
      let make range =
        let cid = fresh_id t in
        add_node t
          { id = cid; resource = Resource.Memory range; node_rights = n.node_rights;
            owner = n.owner; node_cleanup = n.node_cleanup; parent = Some id;
            origin = Orig_split; children = IntSet.empty; state = Active };
        cid
      in
      let l = make left in
      let rg = make right in
      (* Same owner, same permissions: no hardware change required. *)
      Ok (l, rg, []))

let carve t id ~subrange =
  let* n = find_active t id in
  let* () = check_not_frozen t id in
  match n.resource with
  | Resource.Cpu_core _ | Resource.Device _ -> Error Bad_subrange
  | Resource.Memory r ->
    if not (Hw.Addr.Range.includes ~outer:r ~inner:subrange) then Error Bad_subrange
    else if Hw.Addr.Range.equal r subrange then Ok (id, [])
    else begin
      (* Cut off the prefix (if any), then the suffix (if any). *)
      let sub_base = Hw.Addr.Range.base subrange in
      let sub_limit = Hw.Addr.Range.limit subrange in
      let* mid_id, effects1 =
        if sub_base > Hw.Addr.Range.base r then
          let* _, right, eff = split t id ~at:sub_base in
          Ok (right, eff)
        else Ok (id, [])
      in
      let* mid = find t mid_id in
      let mid_range =
        match mid.resource with Resource.Memory r -> r | _ -> assert false
      in
      if sub_limit < Hw.Addr.Range.limit mid_range then
        let* left, _, effects2 = split t mid_id ~at:sub_limit in
        Ok (left, effects1 @ effects2)
      else Ok (mid_id, effects1)
    end

(* Child-before-parent collection of a subtree, so Detach effects never
   leave a window where a parent mapping has been restored while
   children still hold the resource. Iterative (explicit stack): chains
   of shares can be deep enough to overflow the call stack. *)
let subtree_nodes_child_first t id =
  let out = ref [] in
  let stack = ref [ id ] in
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | x :: rest -> (
      stack := rest;
      match Hashtbl.find_opt t.nodes x with
      | None -> ()
      | Some n ->
        out := n :: !out;
        stack := IntSet.elements n.children @ !stack)
  done;
  (* [out] is the reversed visit order of a preorder walk, so every
     child precedes its parent. *)
  !out

let remove_and_collect t node =
  touch t;
  let victims = subtree_nodes_child_first t node.id in
  let effects =
    List.filter_map
      (fun (v : node) ->
        mark_dirty t v.id;
        Hashtbl.remove t.nodes v.id;
        domain_index_remove t v.owner v.id;
        (match v.parent with None -> root_index_remove t v | Some _ -> ());
        let was_active = v.state = Active in
        if t.journaling then
          (* Interior victims keep their [children] links untouched, so
             re-adding every victim node restores the whole subtree. *)
          record t (fun () ->
            Hashtbl.replace t.nodes v.id v;
            domain_index_add t v.owner v.id;
            (match v.parent with None -> root_index_add t v | Some _ -> ());
            if was_active then index_activate t v);
        if was_active then begin
          index_deactivate t v;
          Some (Detach { domain = v.owner; resource = v.resource; cleanup = v.node_cleanup })
        end
        else None)
      victims
  in
  (* Unlink from the parent, possibly reactivating it. *)
  match node.parent with
  | None ->
    let old_roots = t.roots in
    if t.journaling then record t (fun () -> t.roots <- old_roots);
    t.roots <- List.filter (fun r -> r <> node.id) t.roots;
    effects
  | Some pid -> (
    match Hashtbl.find_opt t.nodes pid with
    | None -> effects
    | Some p ->
      mark_dirty t pid;
      let old_children = p.children in
      if t.journaling then record t (fun () -> p.children <- old_children);
      p.children <- IntSet.remove node.id p.children;
      if IntSet.is_empty p.children && p.state <> Active then begin
        let old_state = p.state in
        if t.journaling then
          record t (fun () ->
            index_deactivate t p;
            p.state <- old_state);
        p.state <- Active;
        index_activate t p;
        effects
        @ [ Attach
              { domain = p.owner; resource = p.resource; perm = p.node_rights.Rights.perm } ]
      end
      else effects)

(* A pending remote revocation anywhere inside the target subtree must
   block local revocation: destroying the proxy's cap would erase the
   only local record that a remote machine still holds the resource.
   The frozen set is tiny, so walking up from each frozen id is cheap
   (and free when nothing is frozen). *)
let frozen_in_subtree t id =
  if Hashtbl.length t.frozen = 0 then None
  else
    Hashtbl.fold
      (fun f () acc ->
        match acc with
        | Some _ -> acc
        | None ->
          let rec up current =
            current = id
            ||
            match Hashtbl.find_opt t.nodes current with
            | Some { parent = Some p; _ } -> up p
            | _ -> false
          in
          if up f then Some f else None)
      t.frozen None

let revoke t id =
  let* n = find t id in
  match frozen_in_subtree t id with
  | Some f -> Error (Frozen f)
  | None -> Ok (remove_and_collect t n)

let revoke_children t id =
  let* n = find t id in
  match frozen_in_subtree t id with
  | Some f -> Error (Frozen f)
  | None ->
  let effects =
    List.concat_map
      (fun cid ->
        match Hashtbl.find_opt t.nodes cid with
        | Some c -> remove_and_collect t c
        | None -> [])
      (children_list n)
  in
  Ok effects

(* Inspection *)

let owner t id = Option.map (fun n -> n.owner) (Hashtbl.find_opt t.nodes id)
let resource t id = Option.map (fun n -> n.resource) (Hashtbl.find_opt t.nodes id)
let rights t id = Option.map (fun n -> n.node_rights) (Hashtbl.find_opt t.nodes id)
let cleanup t id = Option.map (fun n -> n.node_cleanup) (Hashtbl.find_opt t.nodes id)
let origin t id = Option.map (fun n -> n.origin) (Hashtbl.find_opt t.nodes id)

let is_active t id =
  match Hashtbl.find_opt t.nodes id with Some n -> n.state = Active | None -> false

let parent t id = Option.bind (Hashtbl.find_opt t.nodes id) (fun n -> n.parent)

let children t id =
  match Hashtbl.find_opt t.nodes id with Some n -> children_list n | None -> []

let caps_of_domain t domain =
  match Hashtbl.find_opt t.by_domain domain with
  | None -> []
  | Some tbl ->
    Hashtbl.fold
      (fun id () acc ->
        match Hashtbl.find_opt t.nodes id with
        | Some n when n.state = Active -> id :: acc
        | _ -> acc)
      tbl []
    |> List.sort Int.compare

let all_caps_of_domain t domain =
  match Hashtbl.find_opt t.by_domain domain with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun id () acc -> id :: acc) tbl [] |> List.sort Int.compare

(* Full-scan twins of the indexed queries, kept as the executable
   specification: tests and [check_index_consistency] compare every
   fast path against these. *)

let caps_of_domain_reference t domain =
  Hashtbl.fold
    (fun _ n acc -> if n.owner = domain && n.state = Active then n :: acc else acc)
    t.nodes []
  |> List.sort (fun (a : node) b -> Int.compare a.id b.id)
  |> List.map (fun n -> n.id)

let all_caps_of_domain_reference t domain =
  Hashtbl.fold (fun _ n acc -> if n.owner = domain then n :: acc else acc) t.nodes []
  |> List.sort (fun (a : node) b -> Int.compare a.id b.id)
  |> List.map (fun n -> n.id)

let is_ancestor t ~ancestor id =
  let rec walk current =
    match Hashtbl.find_opt t.nodes current with
    | None -> false
    | Some n -> (
      match n.parent with
      | Some p -> p = ancestor || walk p
      | None -> false)
  in
  walk id

let node_count t = Hashtbl.length t.nodes

(* Reference counting *)

let active_nodes_overlapping_reference t resource =
  Hashtbl.fold
    (fun _ n acc ->
      if n.state = Active && Resource.overlaps n.resource resource then n :: acc else acc)
    t.nodes []

(* Indexed overlap query: find the memory roots that overlap, then
   descend with pruning — a node's range includes every descendant's
   (a checked invariant), so subtrees that miss [resource] are skipped
   whole. Scalar resources come straight from the active index. *)
let active_nodes_overlapping t resource =
  match resource with
  | Resource.Memory r ->
    let base = Hw.Addr.Range.base r and limit = Hw.Addr.Range.limit r in
    let start =
      match IntMap.find_last_opt (fun b -> b <= base) t.mem_roots with
      | Some (b, (root_limit, _)) when root_limit > base -> b
      | _ -> base
    in
    let rec root_ids seq acc =
      match seq () with
      | Seq.Cons ((b, (_, id)), rest) when b < limit -> root_ids rest (id :: acc)
      | _ -> acc
    in
    let acc = ref [] in
    let stack = ref (root_ids (IntMap.to_seq_from start t.mem_roots) []) in
    let continue_ = ref true in
    while !continue_ do
      match !stack with
      | [] -> continue_ := false
      | x :: rest -> (
        stack := rest;
        match Hashtbl.find_opt t.nodes x with
        | None -> ()
        | Some n ->
          if Resource.overlaps n.resource resource then begin
            if n.state = Active then acc := n :: !acc;
            stack := IntSet.elements n.children @ !stack
          end)
    done;
    !acc
  | Resource.Cpu_core _ | Resource.Device _ -> (
    match Hashtbl.find_opt t.scalar_active resource with
    | None -> []
    | Some tbl ->
      Hashtbl.fold
        (fun id () acc ->
          match Hashtbl.find_opt t.nodes id with Some n -> n :: acc | None -> acc)
        tbl [])

(* Sweep line over active memory capabilities: O(n log n) in the number
   of caps. This is the reference implementation the delta-maintained
   [t.segments] index is checked against. *)
let region_map_reference t =
  let events = ref [] in
  Hashtbl.iter
    (fun _ n ->
      match n.state, n.resource with
      | Active, Resource.Memory r ->
        events := (Hw.Addr.Range.base r, 1, n.owner)
                  :: (Hw.Addr.Range.limit r, -1, n.owner) :: !events
      | _ -> ())
    t.nodes;
  let events =
    List.sort
      (fun (a, _, _) (b, _, _) -> Int.compare a b)
      !events
  in
  let counts : (domain_id, int) Hashtbl.t = Hashtbl.create 16 in
  let owners () =
    Hashtbl.fold (fun d c acc -> if c > 0 then d :: acc else acc) counts []
    |> List.sort_uniq Int.compare
  in
  let segments = ref [] in
  let emit lo hi =
    if hi > lo then begin
      match owners () with
      | [] -> ()
      | hs -> segments := (Hw.Addr.Range.of_bounds ~lo ~hi, hs) :: !segments
    end
  in
  let rec sweep prev = function
    | [] -> ()
    | (pos, delta, owner) :: rest ->
      if pos > prev then emit prev pos;
      Hashtbl.replace counts owner
        (Option.value ~default:0 (Hashtbl.find_opt counts owner) + delta);
      sweep pos rest
  in
  (match events with
  | [] -> ()
  | (first, _, _) :: _ -> sweep first events);
  (* Merge adjacent segments with identical holders. Tail-recursive:
     huge trees produce tens of thousands of segments. *)
  let rec merge acc = function
    | (r1, h1) :: (r2, h2) :: rest when h1 = h2 && Hw.Addr.Range.adjacent r1 r2 ->
      merge acc ((Option.get (Hw.Addr.Range.merge r1 r2), h1) :: rest)
    | x :: rest -> merge (x :: acc) rest
    | [] -> List.rev acc
  in
  merge [] (List.rev !segments)

(* Fig. 4 view from the segment index: fold the (already sorted,
   disjoint) segments, merging adjacent runs with identical holders to
   match the reference presentation. Cached between mutations. *)
let region_map t =
  match t.region_cache with
  | Some cached -> cached
  | None ->
    let merged =
      IntMap.fold
        (fun b s acc ->
          let holders = counts_holders s.counts in
          match acc with
          | (pb, plim, ph) :: rest when plim = b && ph = holders ->
            (pb, s.seg_limit, ph) :: rest
          | _ -> (b, s.seg_limit, holders) :: acc)
        t.segments []
      |> List.rev_map (fun (b, l, hs) -> (Hw.Addr.Range.of_bounds ~lo:b ~hi:l, hs))
    in
    t.region_cache <- Some merged;
    merged

let active_overlapping t resource =
  active_nodes_overlapping t resource
  |> List.map (fun (n : node) -> n.id)
  |> List.sort Int.compare

let active_overlapping_reference t resource =
  active_nodes_overlapping_reference t resource
  |> List.map (fun (n : node) -> n.id)
  |> List.sort Int.compare

let holders_reference t resource =
  active_nodes_overlapping_reference t resource
  |> List.map (fun (n : node) -> n.owner)
  |> List.sort_uniq Int.compare

let refcount_reference t resource = List.length (holders_reference t resource)

let holders t resource =
  match resource with
  | Resource.Memory r ->
    (* Segments are disjoint and sorted: locate the first overlapping
       one, then walk right while overlap continues. O(log n + k). *)
    let base = Hw.Addr.Range.base r and limit = Hw.Addr.Range.limit r in
    let start =
      match IntMap.find_last_opt (fun b -> b <= base) t.segments with
      | Some (b, s) when s.seg_limit > base -> b
      | _ -> base
    in
    let rec gather seq acc =
      match seq () with
      | Seq.Cons ((b, s), rest) when b < limit ->
        gather rest (List.rev_append (counts_holders s.counts) acc)
      | _ -> acc
    in
    gather (IntMap.to_seq_from start t.segments) [] |> List.sort_uniq Int.compare
  | Resource.Cpu_core _ | Resource.Device _ -> (
    match Hashtbl.find_opt t.scalar_active resource with
    | None -> []
    | Some tbl ->
      Hashtbl.fold
        (fun id () acc ->
          match Hashtbl.find_opt t.nodes id with Some n -> n.owner :: acc | None -> acc)
        tbl []
      |> List.sort_uniq Int.compare)

let refcount t resource = List.length (holders t resource)

let exclusively_owned t ~domain resource =
  match holders t resource with [ d ] -> d = domain | _ -> false

(* Invariants *)

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let nodes = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes [] in
  let rec first_error = function
    | [] -> Ok ()
    | n :: rest -> (
      let parent_check =
        match n.parent with
        | None ->
          if List.mem n.id t.roots then Ok ()
          else fail "node %d has no parent but is not a root" n.id
        | Some pid -> (
          match Hashtbl.find_opt t.nodes pid with
          | None -> fail "node %d has dangling parent %d" n.id pid
          | Some p ->
            if not (IntSet.mem n.id p.children) then
              fail "node %d missing from parent %d's children" n.id pid
            else if not (Rights.attenuates ~parent:p.node_rights ~child:n.node_rights)
            then fail "node %d rights exceed parent %d's" n.id pid
            else begin
              match p.resource, n.resource with
              | Resource.Memory pr, Resource.Memory nr ->
                if Hw.Addr.Range.includes ~outer:pr ~inner:nr then Ok ()
                else fail "node %d range escapes parent %d" n.id pid
              | pr, nr ->
                if Resource.equal pr nr then Ok ()
                else fail "node %d resource differs from parent %d" n.id pid
            end)
      in
      match parent_check with
      | Error _ as e -> e
      | Ok () -> (
        (* Split pieces under one parent must be pairwise disjoint. *)
        let split_children =
          List.filter_map
            (fun cid ->
              match Hashtbl.find_opt t.nodes cid with
              | Some c when c.origin = Orig_split -> Resource.memory_range c.resource
              | _ -> None)
            (children_list n)
        in
        let rec disjoint = function
          | [] -> true
          | r :: rest ->
            List.for_all (fun r' -> not (Hw.Addr.Range.overlaps r r')) rest
            && disjoint rest
        in
        if not (disjoint split_children) then
          fail "split children of node %d overlap" n.id
        else if n.state <> Active && IntSet.is_empty n.children then
          fail "inactive node %d has no children" n.id
        else
          (* Acyclicity: walking up must reach a root within node_count steps. *)
          let rec walk current steps =
            if steps > Hashtbl.length t.nodes then
              fail "parent cycle reachable from node %d" n.id
            else
              match Hashtbl.find_opt t.nodes current with
              | None -> fail "dangling parent link from node %d" n.id
              | Some m -> (
                match m.parent with None -> Ok () | Some p -> walk p (steps + 1))
          in
          match walk n.id 0 with Error _ as e -> e | Ok () -> first_error rest))
  in
  let frozen_exist =
    Hashtbl.fold
      (fun id () acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if Hashtbl.mem t.nodes id then Ok ()
          else fail "frozen capability %d does not exist" id)
      t.frozen (Ok ())
  in
  match frozen_exist with Error _ as e -> e | Ok () -> first_error nodes

(* Cross-check every incremental index against its full-scan reference.
   O(n log n); run by the judiciary sweep (Invariants.check_all) and by
   the property tests after every mutation. *)
let check_index_consistency t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* Segment store sanity: sorted, disjoint, positive counts. *)
  let rec segs_ok prev_limit seq =
    match seq () with
    | Seq.Nil -> Ok ()
    | Seq.Cons ((b, s), rest) ->
      if b < prev_limit then fail "segment at 0x%x overlaps its predecessor" b
      else if s.seg_limit <= b then fail "segment at 0x%x is empty" b
      else if s.counts = [] then fail "segment at 0x%x has no holders" b
      else if List.exists (fun (_, c) -> c <= 0) s.counts then
        fail "segment at 0x%x has a non-positive count" b
      else if List.sort compare s.counts <> s.counts then
        fail "segment at 0x%x has unsorted counts" b
      else segs_ok s.seg_limit rest
  in
  let* () = segs_ok min_int (IntMap.to_seq t.segments) in
  (* The delta-maintained region map equals the sweep-line rebuild. *)
  let* () =
    if region_map t = region_map_reference t then Ok ()
    else fail "region map diverged from the sweep-line reference"
  in
  (* Per-domain cap sets equal the full scans. *)
  let domains =
    Hashtbl.fold (fun _ (n : node) acc -> n.owner :: acc) t.nodes []
    |> List.append (Hashtbl.fold (fun d _ acc -> d :: acc) t.by_domain [])
    |> List.sort_uniq Int.compare
  in
  let rec check_domains = function
    | [] -> Ok ()
    | d :: rest ->
      if caps_of_domain t d <> caps_of_domain_reference t d then
        fail "domain %d: active cap index disagrees with the scan" d
      else if all_caps_of_domain t d <> all_caps_of_domain_reference t d then
        fail "domain %d: cap index disagrees with the scan" d
      else check_domains rest
  in
  let* () = check_domains domains in
  (* Holder queries agree on every region-map segment. The O(n)-per-call
     reference scans are sampled on large maps (≤ 64 probes) to keep the
     whole check O(n log n); the index-vs-segment-store comparison still
     covers every segment. *)
  let segments = region_map t in
  let stride = max 1 (List.length segments / 64) in
  let rec check_holders i = function
    | [] -> Ok ()
    | (seg, hs) :: rest ->
      let res = Resource.Memory seg in
      if holders t res <> hs then
        fail "holders index disagrees on segment %s" (Format.asprintf "%a" Hw.Addr.Range.pp seg)
      else if i mod stride = 0 && holders t res <> holders_reference t res then
        fail "holders of %s disagree with the scan" (Format.asprintf "%a" Hw.Addr.Range.pp seg)
      else if i mod stride = 0 && active_overlapping t res <> active_overlapping_reference t res
      then
        fail "overlap query on %s disagrees with the scan"
          (Format.asprintf "%a" Hw.Addr.Range.pp seg)
      else check_holders (i + 1) rest
  in
  let* () = check_holders 0 segments in
  (* Scalar resources agree with the scan. *)
  let scalars =
    Hashtbl.fold
      (fun _ (n : node) acc ->
        match n.resource with
        | Resource.Memory _ -> acc
        | res -> if List.mem res acc then acc else res :: acc)
      t.nodes []
  in
  let rec check_scalars = function
    | [] -> Ok ()
    | res :: rest ->
      if holders t res <> holders_reference t res then
        fail "scalar holders disagree on %s" (Format.asprintf "%a" Resource.pp res)
      else check_scalars rest
  in
  let* () = check_scalars scalars in
  (* Root indexes match the roots list. *)
  let root_ids = List.sort Int.compare t.roots in
  let scan_roots =
    Hashtbl.fold (fun _ (n : node) acc -> if n.parent = None then n.id :: acc else acc) t.nodes []
    |> List.sort Int.compare
  in
  if root_ids <> scan_roots then fail "roots list disagrees with the node table"
  else begin
    let indexed_roots =
      IntMap.fold (fun _ (_, id) acc -> id :: acc) t.mem_roots []
      @ Hashtbl.fold (fun _ id acc -> id :: acc) t.scalar_roots []
      |> List.sort Int.compare
    in
    if indexed_roots <> root_ids then fail "root indexes disagree with the roots list"
    else Ok ()
  end

(* --- serialization (crash-restart recovery) ------------------------- *)

type node_spec = {
  ns_id : cap_id;
  ns_resource : Resource.t;
  ns_rights : Rights.t;
  ns_owner : domain_id;
  ns_cleanup : Revocation.t;
  ns_parent : cap_id option;
  ns_origin : origin;
  ns_state : state;
  ns_children : cap_id list;
}

let next_id t = t.next_id

let spec_of_node (n : node) =
  { ns_id = n.id;
    ns_resource = n.resource;
    ns_rights = n.node_rights;
    ns_owner = n.owner;
    ns_cleanup = n.node_cleanup;
    ns_parent = n.parent;
    ns_origin = n.origin;
    ns_state = n.state;
    ns_children = children_list n }

let dump t =
  Hashtbl.fold (fun _ n acc -> spec_of_node n :: acc) t.nodes []
  |> List.sort (fun a b -> Int.compare a.ns_id b.ns_id)

let dump_bucket t bucket =
  (* [seg_span] point lookups, newest-id last: the result is sorted by
     id, so concatenating buckets in order reproduces [dump]. *)
  let lo = bucket * seg_span in
  let acc = ref [] in
  for id = lo + seg_span - 1 downto lo do
    match Hashtbl.find_opt t.nodes id with
    | Some n -> acc := spec_of_node n :: !acc
    | None -> ()
  done;
  !acc

let restore ~next_id ~generation specs =
  let t = create () in
  t.next_id <- next_id;
  t.generation <- generation;
  (* Children lists come from the specs verbatim (revocation order
     depends on them); every index is rebuilt from scratch through the
     same helpers the incremental paths use, so a restored tree is
     indistinguishable from one that was never serialized —
     [check_index_consistency] cross-checks this after recovery. *)
  List.iter
    (fun s ->
      let n =
        { id = s.ns_id;
          resource = s.ns_resource;
          node_rights = s.ns_rights;
          owner = s.ns_owner;
          node_cleanup = s.ns_cleanup;
          parent = s.ns_parent;
          origin = s.ns_origin;
          children = IntSet.of_list s.ns_children;
          state = s.ns_state }
      in
      Hashtbl.replace t.nodes n.id n;
      domain_index_add t n.owner n.id;
      if n.state = Active then index_activate t n;
      match n.parent with
      | None ->
        t.roots <- n.id :: t.roots;
        root_index_add t n
      | Some _ -> ())
    specs;
  t

(* --- deliberate corruption (test hooks) ------------------------------ *)

(* The fsck property tests need to damage a live tree's redundant views
   in ways the audits are contractually obliged to catch. Only the
   derived indexes are touched — the node table stays intact, which is
   exactly the class of divergence [check_index_consistency] exists to
   detect. Never called outside tests. *)
module Corrupt = struct
  let seg_at t base =
    match IntMap.find_last_opt (fun b -> b <= base) t.segments with
    | Some (b, s) when s.seg_limit > base -> Some (b, s)
    | _ -> None

  let add_phantom_holder t ~base ~domain =
    match seg_at t base with
    | Some (b, s) when not (List.mem_assoc domain s.counts) ->
      t.segments <- IntMap.add b { s with counts = counts_incr s.counts domain } t.segments;
      t.region_cache <- None;
      true
    | _ -> false

  let remove_holder t ~base ~domain =
    match seg_at t base with
    | Some (b, s) when List.mem_assoc domain s.counts ->
      t.segments <- IntMap.add b { s with counts = List.remove_assoc domain s.counts } t.segments;
      t.region_cache <- None;
      true
    | _ -> false

  let drop_domain_index_entry t ~domain =
    match Hashtbl.find_opt t.by_domain domain with
    | Some tbl when Hashtbl.length tbl > 0 ->
      let id = Hashtbl.fold (fun k () acc -> max k acc) tbl (-1) in
      Hashtbl.remove tbl id;
      true
    | _ -> false
end
