(** The capability tree: Tyche's platform-independent core (§4.1).

    Every resource a domain can touch is named by a capability node.
    Nodes form a forest whose edges record *lineage*: sharing or granting
    a resource creates a child node, so the delegator can always take the
    resource back by revoking the subtree — even when domains share in
    cycles (A shares to B who shares back to A), because the lineage is a
    tree regardless of the ownership cycle, cascading revocation always
    terminates.

    This module is pure bookkeeping, the analogue of the paper's
    "platform-independent capability model ... written in safe Rust and
    meant to be formally verified": operations validate, mutate the tree,
    and return the list of {!effect}s the platform backend must apply to
    hardware. It never touches hardware itself.

    Node states: a node is [`Active] (confers access) or [`Inactive]
    (its resource has been granted away or split into children). Only
    active nodes count for reference counts and enforcement. *)

type t
type cap_id = int
type domain_id = int

(** Hardware actions implied by a tree operation; the monitor feeds
    these to the platform backend in order. *)
type effect =
  | Attach of { domain : domain_id; resource : Resource.t; perm : Hw.Perm.t }
  | Detach of { domain : domain_id; resource : Resource.t; cleanup : Revocation.t }

type error =
  | No_such_capability of cap_id
  | Capability_inactive of cap_id
  | Rights_exceeded (** Child rights would exceed the parent's. *)
  | Sharing_denied (** The capability lacks [can_share]. *)
  | Grant_denied (** The capability lacks [can_grant]. *)
  | Bad_subrange (** Subrange outside the capability, or on a non-memory
                     resource, or a split point outside the range. *)
  | Overlapping_root (** A new root would alias an existing root. *)
  | Frozen of cap_id
    (** The capability (or an ancestor / a descendant, depending on the
        operation) is frozen by a pending cross-machine revocation; the
        operation is refused until {!thaw}. Carries the frozen id. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val create : unit -> t

val root :
  t -> owner:domain_id -> Resource.t -> Rights.t -> (cap_id * effect list, error) result
(** Create a root capability (boot-time only: the monitor hands the
    initial domain the whole machine this way). Roots must not overlap
    one another. *)

val share :
  t ->
  cap_id ->
  to_:domain_id ->
  rights:Rights.t ->
  cleanup:Revocation.t ->
  ?subrange:Hw.Addr.Range.t ->
  unit ->
  (cap_id * effect list, error) result
(** Delegate access while keeping it: creates an active child owned by
    [to_]; the parent stays active. [cleanup] runs when the child is
    later revoked. [subrange] narrows a memory capability. *)

val grant :
  t ->
  cap_id ->
  to_:domain_id ->
  rights:Rights.t ->
  cleanup:Revocation.t ->
  (cap_id * effect list, error) result
(** Transfer exclusive control: creates an active child owned by [to_]
    and deactivates the parent. Partial grants require an explicit
    {!split} or {!carve} first, keeping move semantics unambiguous. *)

val split :
  t -> cap_id -> at:Hw.Addr.t -> (cap_id * cap_id * effect list, error) result
(** Split a memory capability at an interior address into two children
    owned by the same domain; the parent deactivates. No hardware effect
    (ownership and permissions are unchanged). *)

val carve :
  t -> cap_id -> subrange:Hw.Addr.Range.t -> (cap_id * effect list, error) result
(** Convenience: split (up to twice) so that a capability for exactly
    [subrange] exists, and return it. *)

val revoke : t -> cap_id -> (effect list, error) result
(** Cascading revocation: remove this node and its entire subtree,
    emitting a [Detach] (with each node's clean-up policy) for every
    active node removed. If the parent was deactivated by a grant or
    split and loses its last child, it reactivates (its owner regains
    access, with an [Attach] effect). *)

val revoke_children : t -> cap_id -> (effect list, error) result
(** Revoke every delegation made from this capability, keeping it. *)

(** {2 Frozen capabilities (cross-machine revocation)}

    While a revocation is in flight to a remote machine, the local cap
    must neither be mutated (the remote holder's lineage would change
    under it) nor revoked (the proxy node is the only local record that
    a remote machine holds the resource). [Fleet] freezes the cap for
    the duration: {!share}, {!grant}, {!split} and {!carve} refuse on a
    frozen cap or any cap beneath a frozen ancestor, and {!revoke} /
    {!revoke_children} refuse when any frozen cap lies inside the
    target subtree — all with [Error (Frozen id)]. Freezing is
    journaled under an open transaction like every other mutation, but
    is {e not} serialized in snapshots: the fleet journal is the
    durable record and re-freezes during recovery. *)

val freeze : t -> cap_id -> (unit, error) result
(** Idempotent; [Error (No_such_capability _)] if the id is unknown. *)

val thaw : t -> cap_id -> unit
(** Idempotent; unknown or unfrozen ids are ignored. *)

val is_frozen : t -> cap_id -> bool

val frozen_caps : t -> cap_id list
(** Sorted ids of currently frozen caps (diagnostics and audits). *)

(** {2 Transactions (crash consistency)}

    The monitor wraps each mutating API call in a transaction. While one
    is open, every tree mutation journals its exact inverse (node table,
    incremental indexes, parent/roots links, id counter); if a hardware
    effect then fails mid-operation, {!txn_rollback} replays the journal
    newest-first and the tree is structurally identical to its
    pre-transaction state. {!generation} still advances across a
    rollback — a rolled-back tree has identical content but memoized
    derived views (attestation bodies, the region cache) must not be
    reused blindly.

    Fault-free overhead is one branch per mutation primitive (no closure
    is allocated when no transaction is open); E5 in EXPERIMENTS.md
    records the measured cost. *)

val txn_begin : t -> unit
(** Open a transaction; subsequent mutations are journaled.
    @raise Invalid_argument if one is already open (no nesting). *)

val txn_commit : t -> unit
(** Close the transaction and discard the journal (the mutations keep). *)

val txn_rollback : t -> unit
(** Close the transaction and undo every journaled mutation, newest
    first. After it returns the tree content equals the state at
    {!txn_begin}. *)

val in_txn : t -> bool

(** {2 Inspection} *)

val owner : t -> cap_id -> domain_id option
val resource : t -> cap_id -> Resource.t option
val rights : t -> cap_id -> Rights.t option
val cleanup : t -> cap_id -> Revocation.t option
val is_active : t -> cap_id -> bool
val parent : t -> cap_id -> cap_id option
val children : t -> cap_id -> cap_id list
val caps_of_domain : t -> domain_id -> cap_id list
(** Active capabilities owned by the domain, in creation order. *)

val all_caps_of_domain : t -> domain_id -> cap_id list
(** Every capability owned by the domain, including inactive ones whose
    resource is currently granted away or split — what domain
    destruction must revoke so delegations made *from* the domain
    cascade too. *)

val is_ancestor : t -> ancestor:cap_id -> cap_id -> bool
val node_count : t -> int

val generation : t -> int
(** Monotonically increasing mutation counter: every operation that
    changes the tree bumps it, so callers can memoize derived views
    (e.g. attestation bodies) and revalidate with an integer compare. *)

val segment_count : t -> int
(** Number of segments in the delta-maintained region index (diagnostic:
    fragmentation stays proportional to live capability bounds). *)

val active_overlapping : t -> Resource.t -> cap_id list
(** Sorted ids of active capabilities overlapping the resource, answered
    from the root interval index with range-nesting pruning. *)

(** {2 Reference counting and the Fig. 4 view} *)

val refcount : t -> Resource.t -> int
(** Number of *distinct domains* holding an active capability that
    overlaps the resource — the system-wide count of §3.1. *)

val holders : t -> Resource.t -> domain_id list
(** Sorted distinct domains with active access to the resource. *)

val region_map : t -> (Hw.Addr.Range.t * domain_id list) list
(** The Fig. 4 view: physical memory flattened into maximal disjoint
    segments, each with the sorted list of domains that can access it
    (adjacent segments with identical holders are merged). *)

val exclusively_owned : t -> domain:domain_id -> Resource.t -> bool
(** True when the domain holds the resource and nobody else overlaps it
    (refcount 1) — the paper's condition for confidential memory. *)

(** {2 Reference (full-scan) implementations}

    The incremental indexes are redundant views over the node table;
    these are the original O(n) scans kept as the executable
    specification. Tests and {!check_index_consistency} compare every
    fast path against them. *)

val caps_of_domain_reference : t -> domain_id -> cap_id list
val all_caps_of_domain_reference : t -> domain_id -> cap_id list
val active_overlapping_reference : t -> Resource.t -> cap_id list
val holders_reference : t -> Resource.t -> domain_id list
val refcount_reference : t -> Resource.t -> int

val region_map_reference : t -> (Hw.Addr.Range.t * domain_id list) list
(** Sweep-line rebuild of the Fig. 4 view (O(n log n), tail-recursive). *)

(** {2 Structural invariants (for tests and the judiciary)} *)

val check_invariants : t -> (unit, string) result
(** Verify: child resources are contained in their parent's; child
    rights attenuate; split children partition their parent exactly;
    inactive nodes have children or are roots whose resource moved;
    the parent links are acyclic; every frozen id names an existing
    node. Returns a description of the first violation. *)

val check_index_consistency : t -> (unit, string) result
(** Cross-check every incremental index (per-domain cap sets, the
    segment store, root interval index, overlap queries) against the
    [_reference] full scans. O(n log n); run by the judiciary sweep and
    the property tests. *)

(** {2 Serialization (crash-restart recovery)}

    [Persist] snapshots dump the tree and recovery rebuilds it. The
    dump is *logical*: node contents, lineage links and activation
    state — none of the incremental indexes, which {!restore} re-derives
    through the same maintenance helpers the mutating operations use.
    Children lists are preserved verbatim because revocation-cascade
    order follows them. *)

type origin =
  | Orig_root (** Created by {!root} at boot. *)
  | Orig_shared
  | Orig_granted
  | Orig_split

type state =
  | Active
  | Inactive_granted (** Transferred away; reactivates if the child is revoked. *)
  | Inactive_split (** Replaced by its split children. *)

val origin : t -> cap_id -> origin option
(** How the capability came to exist — lets policy distinguish access a
    domain was *granted* exclusively from access it merely received via
    a share (whose parent's owner kept theirs). *)

type node_spec = {
  ns_id : cap_id;
  ns_resource : Resource.t;
  ns_rights : Rights.t;
  ns_owner : domain_id;
  ns_cleanup : Revocation.t;
  ns_parent : cap_id option;
  ns_origin : origin;
  ns_state : state;
  ns_children : cap_id list; (** Most-recent first, as maintained live. *)
}

val dump : t -> node_spec list
(** Every node, sorted by id (= creation order). *)

val seg_span : int
(** Bucket width for incremental snapshots: bucket [b] covers ids in
    [b*seg_span, (b+1)*seg_span). *)

val bucket_generation : t -> int -> int
(** Generation at which the bucket was last mutated; [0] if never
    (including on a freshly {!restore}d tree, whose buckets are all
    considered clean until the next mutation). Over-approximates: a
    rolled-back transaction leaves its buckets marked. *)

val dump_bucket : t -> int -> node_spec list
(** The nodes whose ids fall in the bucket, sorted by id.
    Concatenating [dump_bucket t 0 .. dump_bucket t n] where
    [n = (next_id t - 1) / seg_span] reproduces {!dump}. *)

val next_id : t -> cap_id
(** The id the next created capability will receive — snapshotted so
    replayed operations reproduce identical ids. *)

val restore : next_id:cap_id -> generation:int -> node_spec list -> t
(** Rebuild a tree from a dump: node table and lineage from the specs,
    every incremental index re-derived. The caller (recovery) is
    expected to run {!check_index_consistency} and the invariant sweep
    afterwards — a snapshot is never trusted blindly. *)

(** {2 Deliberate corruption (test hooks)}

    Damage the tree's redundant derived views — never the node table —
    so the fsck property tests can assert every audit class actually
    fires. Each returns [false] when the requested damage is not
    applicable (no segment at the address, domain absent, ...), so
    generators can retry. Not for use outside tests. *)
module Corrupt : sig
  val add_phantom_holder : t -> base:Hw.Addr.t -> domain:domain_id -> bool
  (** Insert a holder into the segment covering [base] that owns no
      overlapping capability: refcounts and holders now over-report. *)

  val remove_holder : t -> base:Hw.Addr.t -> domain:domain_id -> bool
  (** Delete a legitimate holder from the segment covering [base]:
      refcounts and holders now under-report. *)

  val drop_domain_index_entry : t -> domain:domain_id -> bool
  (** Remove one capability from the per-domain ownership index while
      the node table still records it. *)
end
