(* Multi-machine deployment (§4.2): two Tyche machines, one enclave on
   each, and a customer (broker) who verifies *both* ends before keying
   an RDMA-style link between them. The network adversary then tries
   everything it can.

   Run with: dune exec examples/remote_attestation.exe *)

open Common

let enclave_image () =
  let b = Image.Builder.create ~name:"replicated-service" in
  let b =
    Image.Builder.add_segment b ~name:".text" ~vaddr:0 ~data:"replica logic v7"
      ~perm:Hw.Perm.rx ()
  in
  Result.get_ok (Image.Builder.finish (Image.Builder.set_entry b 0))

let recv_str link =
  match Distributed.Session.recv link with
  | Ok v -> v
  | Error e -> failwith (Distributed.Session.recv_error_to_string e)

let deploy ~seed name =
  let w = boot ~seed () in
  let h =
    ok_str
      (Libtyche.Enclave.create w.monitor ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x100000 ~image:(enclave_image ()) ())
  in
  say "%s: enclave domain #%d deployed" name h.Libtyche.Handle.domain;
  (w, h)

let () =
  step "Deploy the same service on two independent machines";
  let wa, ha = deploy ~seed:0xA11L "alpha" in
  let wb, hb = deploy ~seed:0xB22L "beta" in

  step "Each (untrusted) OS gathers evidence for the broker";
  let nonce = "broker-session-2026-07-06" in
  let ev_a =
    ok_str
      (Distributed.Session.gather_evidence wa.monitor ~domain:ha.Libtyche.Handle.domain ~nonce)
  in
  let ev_b =
    ok_str
      (Distributed.Session.gather_evidence wb.monitor ~domain:hb.Libtyche.Handle.domain ~nonce)
  in
  say "evidence = TPM quote + monitor-signed domain attestation, per machine";

  step "The broker verifies both chains and keys the session";
  let party name w =
    { Distributed.Session.name;
      reference = reference_values w;
      policy =
        [ Verifier.Policy.Sealed;
          Verifier.Policy.Measurement_is
            (Libtyche.Enclave.expected_measurement (enclave_image ()));
          Verifier.Policy.No_foreign_sharing_except [] ] }
  in
  let key =
    match
      Distributed.Session.establish ~nonce ~a:(party "alpha" wa, ev_a)
        ~b:(party "beta" wb, ev_b)
    with
    | Ok (k, _) -> say "both ends TRUSTED; session key provisioned"; k
    | Error msgs -> failwith ("broker refused: " ^ String.concat "; " msgs)
  in

  step "RDMA-style exchange over the hostile network";
  let net = Distributed.Network.create () in
  let a = Distributed.Session.connect net ~local:"alpha" ~remote:"beta" ~key in
  let b = Distributed.Session.connect net ~local:"beta" ~remote:"alpha" ~key in
  Distributed.Session.send a "state delta #1";
  Distributed.Session.send a "state delta #2";
  say "beta received: %S" (recv_str b);
  say "beta received: %S" (recv_str b);

  step "The adversary owns the wire. Let it try.";
  (* Capture a legitimate frame, let it deliver once, then replay it. *)
  Distributed.Session.send a "balance += 100";
  let captured = List.hd (Distributed.Network.eavesdrop net "beta") in
  say "delivered once: %S" (recv_str b);
  Distributed.Network.replay net ~to_:"beta" captured;
  (match Distributed.Session.recv b with
  | Error e -> say "replayed frame: %s" (Distributed.Session.recv_error_to_string e)
  | Ok _ -> failwith "replay undetected");
  (* Flip a byte of an in-flight frame. *)
  Distributed.Session.send a "balance -= 5";
  ignore (Distributed.Network.tamper_head net "beta" ~f:(fun raw ->
      let by = Bytes.of_string raw in
      Bytes.set by 15 '9';
      Bytes.to_string by));
  (match Distributed.Session.recv b with
  | Error e -> say "tampered frame: %s" (Distributed.Session.recv_error_to_string e)
  | Ok _ -> failwith "tampering undetected");
  (* Forge from nothing. *)
  Distributed.Network.inject net ~to_:"beta" (String.make 64 'Z');
  (match Distributed.Session.recv b with
  | Error e -> say "forged frame: %s" (Distributed.Session.recv_error_to_string e)
  | Ok _ -> failwith "forgery undetected");
  (* Legitimate traffic continues unaffected. *)
  Distributed.Session.send a "balance -= 5";
  say "honest retransmission delivered: %S" (recv_str b);

  step "An impostor machine cannot join";
  let wc, hc = deploy ~seed:0xC33L "gamma (impostor hardware)" in
  let ev_c =
    ok_str
      (Distributed.Session.gather_evidence wc.monitor ~domain:hc.Libtyche.Handle.domain ~nonce)
  in
  (* The broker expected machine beta; gamma's TPM and monitor key are
     not in its reference values. *)
  (match
     Distributed.Session.establish ~nonce ~a:(party "alpha" wa, ev_a)
       ~b:(party "beta" wb, ev_c)
   with
  | Error msgs -> say "broker refused gamma: %s" (List.hd msgs)
  | Ok _ -> failwith "impostor accepted");
  Printf.printf "\nremote_attestation: done (messages on the wire: %d)\n"
    (Distributed.Network.total_messages net)
