(* Tests for the isolation monitor: authorization, sealing, mediated
   transitions, hardware-checked access, attestation and invariants. *)

open Testkit

let range ~base ~len = Hw.Addr.Range.make ~base ~len
let page = Hw.Addr.page_size

(* Standard fixture: x86 world, one enclave with 2 private pages at
   0x10000 holding "SECRET01", sharing core 0. *)
let with_enclave () =
  let w = boot_x86 () in
  let m = w.monitor in
  let enclave =
    get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"enc" ~kind:Tyche.Domain.Enclave)
  in
  let sub = range ~base:0x10000 ~len:(2 * page) in
  let piece = get_ok (Tyche.Monitor.carve m ~caller:os ~cap:(os_memory_cap w) ~subrange:sub) in
  get_ok (Tyche.Monitor.store_string m ~core:0 0x10000 "SECRET01");
  let _ =
    get_ok
      (Tyche.Monitor.grant m ~caller:os ~cap:piece ~to_:enclave
         ~rights:Cap.Rights.full ~cleanup:Cap.Revocation.Zero_and_flush)
  in
  let _ =
    get_ok
      (Tyche.Monitor.share m ~caller:os ~cap:(os_core_cap w 0) ~to_:enclave
         ~rights:Cap.Rights.exclusive_use ~cleanup:Cap.Revocation.Keep ())
  in
  get_ok (Tyche.Monitor.set_entry_point m ~caller:os ~domain:enclave 0x10000);
  get_ok (Tyche.Monitor.mark_measured m ~caller:os ~domain:enclave sub);
  get_ok (Tyche.Monitor.seal m ~caller:os ~domain:enclave);
  (w, enclave, sub)

let test_boot_state () =
  let w = boot_x86 ~cores:3 () in
  let m = w.monitor in
  Alcotest.(check int) "one domain" 1 (List.length (Tyche.Monitor.domains m));
  for core = 0 to 2 do
    Alcotest.(check int) "os on every core" os (Tyche.Monitor.current_domain m ~core)
  done;
  (* Domain 0 holds memory, cores; monitor memory is not reachable. *)
  let mon_base = Hw.Addr.Range.base w.boot_report.Rot.Boot.monitor_range in
  expect_error (Tyche.Monitor.load m ~core:0 mon_base);
  check_no_violations m

let test_os_memory_access () =
  let w = boot_x86 () in
  get_ok (Tyche.Monitor.store w.monitor ~core:0 0x4000 77);
  Alcotest.(check int) "read back" 77 (get_ok (Tyche.Monitor.load w.monitor ~core:0 0x4000))

let test_create_domain_unknown_caller () =
  let w = boot_x86 () in
  expect_error (Tyche.Monitor.create_domain w.monitor ~caller:42 ~name:"x" ~kind:Tyche.Domain.Sandbox)

let test_seal_requires_entry_point () =
  let w = boot_x86 () in
  let d =
    get_ok (Tyche.Monitor.create_domain w.monitor ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox)
  in
  expect_error (Tyche.Monitor.seal w.monitor ~caller:os ~domain:d);
  get_ok (Tyche.Monitor.set_entry_point w.monitor ~caller:os ~domain:d 0x1000);
  get_ok (Tyche.Monitor.seal w.monitor ~caller:os ~domain:d);
  (* Double sealing and post-seal config fail. *)
  expect_error (Tyche.Monitor.seal w.monitor ~caller:os ~domain:d);
  expect_error (Tyche.Monitor.set_entry_point w.monitor ~caller:os ~domain:d 0x2000);
  expect_error (Tyche.Monitor.set_flush_policy w.monitor ~caller:os ~domain:d true)

let test_configure_requires_creator () =
  let w = boot_x86 () in
  let m = w.monitor in
  let d1 = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d1" ~kind:Tyche.Domain.Sandbox) in
  let d2 = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d2" ~kind:Tyche.Domain.Sandbox) in
  (* d1 cannot configure d2 (it is neither d2 nor its creator). *)
  expect_error (Tyche.Monitor.set_entry_point m ~caller:d1 ~domain:d2 0x1000);
  (* but a domain can configure itself. *)
  get_ok (Tyche.Monitor.set_entry_point m ~caller:d2 ~domain:d2 0x1000)

let test_share_authorization () =
  let w = boot_x86 () in
  let m = w.monitor in
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox) in
  let cap = os_memory_cap w in
  (* A domain that does not own the capability cannot share it. *)
  (match
     Tyche.Monitor.share m ~caller:d ~cap ~to_:d ~rights:Cap.Rights.rw
       ~cleanup:Cap.Revocation.Keep ()
   with
  | Error (Tyche.Monitor.Denied _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Tyche.Monitor.error_to_string e)
  | Ok _ -> Alcotest.fail "expected denial");
  (* Sharing to an unknown domain fails. *)
  expect_error
    (Tyche.Monitor.share m ~caller:os ~cap ~to_:99 ~rights:Cap.Rights.rw
       ~cleanup:Cap.Revocation.Keep ())

let test_sealed_domain_cannot_be_extended () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  let cap = os_memory_cap w in
  match
    Tyche.Monitor.share m ~caller:os ~cap ~to_:enclave ~rights:Cap.Rights.rw
      ~cleanup:Cap.Revocation.Keep ~subrange:(range ~base:0x40000 ~len:page) ()
  with
  | Error (Tyche.Monitor.Denied msg) ->
    Alcotest.(check bool) "mentions sealing" true (contains_substring msg "sealed")
  | Error e -> Alcotest.failf "wrong error: %s" (Tyche.Monitor.error_to_string e)
  | Ok _ -> Alcotest.fail "sealed domain was extended"

let test_enforcement_os_blocked () =
  let w, _, sub = with_enclave () in
  expect_error (Tyche.Monitor.load w.monitor ~core:0 (Hw.Addr.Range.base sub));
  expect_error (Tyche.Monitor.store w.monitor ~core:0 (Hw.Addr.Range.base sub) 1);
  check_no_violations w.monitor

let test_call_and_ret () =
  let w, enclave, sub = with_enclave () in
  let m = w.monitor in
  Alcotest.(check int) "no transitions yet" 0 (Tyche.Monitor.transition_count m);
  let p1 = get_ok (Tyche.Monitor.call m ~core:0 ~target:enclave) in
  Alcotest.(check bool) "first call traps" true (p1 = Tyche.Backend_intf.Trap_roundtrip);
  Alcotest.(check int) "current is enclave" enclave (Tyche.Monitor.current_domain m ~core:0);
  Alcotest.(check int) "depth 1" 1 (Tyche.Monitor.call_depth m ~core:0);
  (* Enclave reads its own secret. *)
  Alcotest.(check string) "enclave reads secret" "SECRET01"
    (get_ok (Tyche.Monitor.load_string m ~core:0 (range ~base:(Hw.Addr.Range.base sub) ~len:8)));
  let _ = get_ok (Tyche.Monitor.ret m ~core:0) in
  Alcotest.(check int) "back to os" os (Tyche.Monitor.current_domain m ~core:0);
  Alcotest.(check int) "two transitions" 2 (Tyche.Monitor.transition_count m)

let test_call_requires_core_capability () =
  let w, enclave, _ = with_enclave () in
  (* Enclave only holds core 0; calling on core 1 must fail. *)
  expect_error (Tyche.Monitor.call w.monitor ~core:1 ~target:enclave)

let test_call_rejects_unsealed () =
  let w = boot_x86 () in
  let m = w.monitor in
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox) in
  expect_error (Tyche.Monitor.call m ~core:0 ~target:d)

let test_ret_empty_stack () =
  let w = boot_x86 () in
  expect_error (Tyche.Monitor.ret w.monitor ~core:0)

let test_call_self_rejected () =
  let w = boot_x86 () in
  expect_error (Tyche.Monitor.call w.monitor ~core:0 ~target:os)

let test_nested_calls () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  (* Build a second enclave from inside... the OS creates it, then we
     call enclave -> ret -> call enclave2 -> enclave2 calls enclave. *)
  let e2 = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"e2" ~kind:Tyche.Domain.Enclave) in
  let sub2 = range ~base:0x20000 ~len:page in
  let piece = get_ok (Tyche.Monitor.carve m ~caller:os ~cap:(os_memory_cap w) ~subrange:sub2) in
  let _ =
    get_ok
      (Tyche.Monitor.grant m ~caller:os ~cap:piece ~to_:e2 ~rights:Cap.Rights.full
         ~cleanup:Cap.Revocation.Zero)
  in
  let _ =
    get_ok
      (Tyche.Monitor.share m ~caller:os ~cap:(os_core_cap w 0) ~to_:e2
         ~rights:Cap.Rights.exclusive_use ~cleanup:Cap.Revocation.Keep ())
  in
  get_ok (Tyche.Monitor.set_entry_point m ~caller:os ~domain:e2 0x20000);
  get_ok (Tyche.Monitor.seal m ~caller:os ~domain:e2);
  let _ = get_ok (Tyche.Monitor.call m ~core:0 ~target:e2) in
  let _ = get_ok (Tyche.Monitor.call m ~core:0 ~target:enclave) in
  Alcotest.(check int) "depth 2" 2 (Tyche.Monitor.call_depth m ~core:0);
  let _ = get_ok (Tyche.Monitor.ret m ~core:0) in
  Alcotest.(check int) "back in e2" e2 (Tyche.Monitor.current_domain m ~core:0);
  let _ = get_ok (Tyche.Monitor.ret m ~core:0) in
  Alcotest.(check int) "back in os" os (Tyche.Monitor.current_domain m ~core:0)

let test_vmfunc_fast_path_second_call () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  let _ = get_ok (Tyche.Monitor.call m ~core:0 ~target:enclave) in
  let _ = get_ok (Tyche.Monitor.ret m ~core:0) in
  let p = get_ok (Tyche.Monitor.call m ~core:0 ~target:enclave) in
  Alcotest.(check bool) "second call is fast" true (p = Tyche.Backend_intf.Fast_switch)

let test_flush_policy_forces_trap () =
  let w = boot_x86 () in
  let m = w.monitor in
  let e = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"f" ~kind:Tyche.Domain.Enclave) in
  let sub = range ~base:0x30000 ~len:page in
  let piece = get_ok (Tyche.Monitor.carve m ~caller:os ~cap:(os_memory_cap w) ~subrange:sub) in
  let _ =
    get_ok (Tyche.Monitor.grant m ~caller:os ~cap:piece ~to_:e ~rights:Cap.Rights.full
              ~cleanup:Cap.Revocation.Zero)
  in
  let _ =
    get_ok (Tyche.Monitor.share m ~caller:os ~cap:(os_core_cap w 0) ~to_:e
              ~rights:Cap.Rights.exclusive_use ~cleanup:Cap.Revocation.Keep ())
  in
  get_ok (Tyche.Monitor.set_entry_point m ~caller:os ~domain:e 0x30000);
  get_ok (Tyche.Monitor.set_flush_policy m ~caller:os ~domain:e true);
  get_ok (Tyche.Monitor.seal m ~caller:os ~domain:e);
  (* Flush-on-transition domains never take the exit-less path. *)
  for _ = 1 to 3 do
    let p = get_ok (Tyche.Monitor.call m ~core:0 ~target:e) in
    Alcotest.(check bool) "always traps" true (p = Tyche.Backend_intf.Trap_roundtrip);
    let _ = get_ok (Tyche.Monitor.ret m ~core:0) in
    ()
  done;
  (* And the cache holds no lines tagged by the enclave afterwards. *)
  Alcotest.(check int) "no enclave-tagged cache lines" 0
    (Hw.Cache.lines_tagged w.machine.Hw.Machine.cache ~tag:e)

let test_revocation_zeroes_and_restores () =
  let w, enclave, sub = with_enclave () in
  let m = w.monitor in
  let enclave_cap = List.hd (Tyche.Monitor.caps_of m enclave) in
  get_ok (Tyche.Monitor.revoke m ~caller:os ~cap:enclave_cap);
  (* OS regained access, content zeroed by the revocation policy. *)
  Alcotest.(check int) "zeroed" 0 (get_ok (Tyche.Monitor.load m ~core:0 (Hw.Addr.Range.base sub)));
  Alcotest.(check (list int)) "os holds it again" [ os ]
    (Cap.Captree.holders (Tyche.Monitor.tree m) (Cap.Resource.Memory sub));
  check_no_violations m

let test_revoke_authorization () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox) in
  let enclave_cap = List.hd (Tyche.Monitor.caps_of m enclave) in
  (* A random domain cannot revoke the enclave's capability. *)
  (match Tyche.Monitor.revoke m ~caller:d ~cap:enclave_cap with
  | Error (Tyche.Monitor.Denied _) -> ()
  | _ -> Alcotest.fail "expected denial")

(* Overlapping active capabilities over one region (self-grant plus
   self-shares, then splits of the granted alias) — revoking any one
   piece must not take hardware coverage the surviving aliases still
   grant. Found by the persistence chaos harness: untrimmed Detach
   effects unmapped EPT/PMP ranges that live capabilities still held. *)
let test_revoke_aliased_caps () =
  let w = boot_x86 () in
  let m = w.monitor in
  let mem = os_memory_cap w in
  let range =
    match Cap.Captree.resource (Tyche.Monitor.tree m) mem with
    | Some (Cap.Resource.Memory r) -> r
    | _ -> Alcotest.fail "os memory cap is not memory"
  in
  let base = Hw.Addr.Range.base range and len = Hw.Addr.Range.len range in
  let g =
    get_ok
      (Tyche.Monitor.grant m ~caller:os ~cap:mem ~to_:os ~rights:Cap.Rights.full
         ~cleanup:Cap.Revocation.Flush_cache)
  in
  let _a1 =
    get_ok
      (Tyche.Monitor.share m ~caller:os ~cap:g ~to_:os ~rights:Cap.Rights.read_only
         ~cleanup:Cap.Revocation.Flush_cache ())
  in
  let _a2 =
    get_ok
      (Tyche.Monitor.share m ~caller:os ~cap:g ~to_:os ~rights:Cap.Rights.read_only
         ~cleanup:Cap.Revocation.Keep ())
  in
  let page = Hw.Addr.page_size in
  let half = base + (len / 2 / page * page) in
  let quarter = base + (len / 4 / page * page) in
  let l, r = get_ok (Tyche.Monitor.split m ~caller:os ~cap:g ~at:half) in
  let l2, r2 = get_ok (Tyche.Monitor.split m ~caller:os ~cap:l ~at:quarter) in
  let hw_clean label =
    match Tyche.Invariants.check_hardware_matches_tree m with
    | [] -> ()
    | v :: _ ->
      Alcotest.failf "%s: %s" label (Format.asprintf "%a" Tyche.Invariants.pp_violation v)
  in
  hw_clean "before revoke";
  List.iter
    (fun (label, cap) ->
      get_ok (Tyche.Monitor.revoke m ~caller:os ~cap);
      hw_clean label)
    [ ("after revoking left split", l2);
      ("after revoking right split", r2);
      ("after revoking remainder", r) ];
  (* The self-shares still cover the whole region end to end. *)
  let backend = Tyche.Monitor.backend m in
  let d0 = Option.get (Tyche.Monitor.find_domain m os) in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "page 0x%x still reachable" a)
        true
        (backend.Tyche.Backend_intf.domain_reaches d0
           (Hw.Addr.Range.make ~base:a ~len:page)))
    [ base; quarter; half; base + len - page ]

let test_destroy_domain () =
  let w, enclave, sub = with_enclave () in
  let m = w.monitor in
  (* Cannot destroy while on a core? It isn't running, so destroy works;
     domain 0 and non-creators are rejected. *)
  (match Tyche.Monitor.destroy_domain m ~caller:os ~domain:os with
  | Error (Tyche.Monitor.Denied _) -> ()
  | _ -> Alcotest.fail "domain 0 must be indestructible");
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox) in
  (match Tyche.Monitor.destroy_domain m ~caller:d ~domain:enclave with
  | Error (Tyche.Monitor.Denied _) -> ()
  | _ -> Alcotest.fail "non-creator destroyed a domain");
  get_ok (Tyche.Monitor.destroy_domain m ~caller:os ~domain:enclave);
  Alcotest.(check bool) "domain gone" true (Tyche.Monitor.find_domain m enclave = None);
  (* Its memory returned to the OS, zeroed. *)
  Alcotest.(check int) "zeroed" 0 (get_ok (Tyche.Monitor.load m ~core:0 (Hw.Addr.Range.base sub)));
  check_no_violations m

let test_destroy_running_domain_rejected () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  let _ = get_ok (Tyche.Monitor.call m ~core:0 ~target:enclave) in
  (match Tyche.Monitor.destroy_domain m ~caller:os ~domain:enclave with
  | Error (Tyche.Monitor.Denied _) -> ()
  | _ -> Alcotest.fail "destroyed a running domain");
  let _ = get_ok (Tyche.Monitor.ret m ~core:0) in
  get_ok (Tyche.Monitor.destroy_domain m ~caller:os ~domain:enclave)

let test_attestation_contents () =
  let w, enclave, sub = with_enclave () in
  let m = w.monitor in
  let att = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:enclave ~nonce:"n") in
  Alcotest.(check bool) "verifies" true
    (Tyche.Attestation.verify ~monitor_root:(Tyche.Monitor.attestation_root m) att);
  Alcotest.(check bool) "sealed" true att.Tyche.Attestation.sealed;
  Alcotest.(check int) "one region" 1 (List.length att.Tyche.Attestation.regions);
  let region = List.hd att.Tyche.Attestation.regions in
  Alcotest.(check bool) "range matches" true (Hw.Addr.Range.equal region.Tyche.Attestation.range sub);
  Alcotest.(check int) "exclusive" 1 region.Tyche.Attestation.refcount;
  Alcotest.(check bool) "measured" true region.Tyche.Attestation.measured;
  Alcotest.(check (list (pair int int))) "core 0 shared" [ (0, 2) ] att.Tyche.Attestation.cores

let test_attestation_tamper_detected () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  let att = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:enclave ~nonce:"n") in
  let root = Tyche.Monitor.attestation_root m in
  (* Tamper with the refcount: signature must break. *)
  let tampered =
    { att with
      Tyche.Attestation.regions =
        List.map (fun r -> { r with Tyche.Attestation.refcount = 1 })
          att.Tyche.Attestation.regions;
      cores = List.map (fun (c, _) -> (c, 1)) att.Tyche.Attestation.cores }
  in
  Alcotest.(check bool) "tamper detected" false
    (Tyche.Attestation.verify ~monitor_root:root tampered);
  (* Unknown-signer attestation rejected. *)
  let other = boot_x86 ~seed:0x99L () in
  Alcotest.(check bool) "wrong monitor root" false
    (Tyche.Attestation.verify ~monitor_root:(Tyche.Monitor.attestation_root other.monitor) att)

let test_attestation_measurement_matches_content () =
  let w, enclave, sub = with_enclave () in
  let m = w.monitor in
  let att = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:enclave ~nonce:"x") in
  (* Recompute what the measurement should be from the known content. *)
  let content = "SECRET01" ^ String.make ((2 * page) - 8) '\x00' in
  let expected =
    Tyche.Measure.domain_digest ~kind:Tyche.Domain.Enclave
      ~entry_point:(Hw.Addr.Range.base sub) ~flush_on_transition:false
      ~ranges:[ (sub, Crypto.Sha256.string content) ]
  in
  match att.Tyche.Attestation.measurement with
  | Some digest ->
    Alcotest.(check bool) "measurement reproducible" true (Crypto.Sha256.equal digest expected)
  | None -> Alcotest.fail "no measurement"

let test_attestation_memoized () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  let body (a : Tyche.Attestation.t) =
    (a.Tyche.Attestation.regions, a.Tyche.Attestation.cores, a.Tyche.Attestation.devices)
  in
  (* Two attestations of a quiescent tree: the second reuses the
     memoized enumeration but still carries a fresh signature over its
     own nonce. *)
  let a1 = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:enclave ~nonce:"n1") in
  let a2 = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:enclave ~nonce:"n2") in
  Alcotest.(check bool) "same body" true (body a1 = body a2);
  Alcotest.(check bool) "both verify" true
    (Tyche.Attestation.verify ~monitor_root:(Tyche.Monitor.attestation_root m) a1
     && Tyche.Attestation.verify ~monitor_root:(Tyche.Monitor.attestation_root m) a2);
  (* The full-scan baseline produces the identical body. *)
  let ar = get_ok (Tyche.Monitor.attest_reference m ~caller:os ~domain:enclave ~nonce:"n3") in
  Alcotest.(check bool) "reference body agrees" true (body ar = body a1);
  Alcotest.(check bool) "reference verifies" true
    (Tyche.Attestation.verify ~monitor_root:(Tyche.Monitor.attestation_root m) ar);
  (* A mutation anywhere in the tree invalidates the memo: share core 0
     with a third domain and the enclave's next attestation must see
     refcount 3. *)
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox) in
  let _ =
    get_ok
      (Tyche.Monitor.share m ~caller:os ~cap:(os_core_cap w 0) ~to_:d
         ~rights:Cap.Rights.exclusive_use ~cleanup:Cap.Revocation.Keep ())
  in
  let a3 = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:enclave ~nonce:"n4") in
  Alcotest.(check (list (pair int int))) "core refcount updated" [ (0, 3) ]
    a3.Tyche.Attestation.cores;
  let ar3 = get_ok (Tyche.Monitor.attest_reference m ~caller:os ~domain:enclave ~nonce:"n5") in
  Alcotest.(check bool) "reference agrees after mutation" true (body ar3 = body a3)

let test_attest_batch () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  let root = Tyche.Monitor.attestation_root m in
  let atts = get_ok (Tyche.Monitor.attest_batch m ~caller:os ~domains:[ enclave; os ] ~nonce:"b") in
  Alcotest.(check (list int)) "reports in input order" [ enclave; os ]
    (List.map (fun a -> a.Tyche.Attestation.domain) atts);
  List.iter
    (fun att ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d batched report verifies" att.Tyche.Attestation.domain)
        true
        (Tyche.Attestation.verify ~monitor_root:root att))
    atts;
  (* All reports hang off the same Merkle root. *)
  let roots =
    List.map
      (fun a ->
        match a.Tyche.Attestation.evidence with
        | Tyche.Attestation.Batched { batch_root; _ } -> batch_root
        | Tyche.Attestation.Signed _ -> Alcotest.fail "batched report carries v1 evidence")
      atts
  in
  (match roots with
  | [ r1; r2 ] -> Alcotest.(check bool) "shared batch root" true (Crypto.Sha256.equal r1 r2)
  | _ -> Alcotest.fail "expected two reports");
  (* The batched body equals the directly signed body. *)
  let single = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:enclave ~nonce:"b") in
  (match single.Tyche.Attestation.evidence with
  | Tyche.Attestation.Signed _ -> ()
  | Tyche.Attestation.Batched _ -> Alcotest.fail "single report carries batch evidence");
  let body (a : Tyche.Attestation.t) =
    (a.Tyche.Attestation.regions, a.Tyche.Attestation.cores, a.Tyche.Attestation.devices)
  in
  Alcotest.(check bool) "batched body == signed body" true
    (body (List.hd atts) = body single);
  (* A batched report survives the wire and cross-monitor roots reject it. *)
  (match Tyche.Attestation.of_wire (Tyche.Attestation.to_wire (List.hd atts)) with
  | Error e -> Alcotest.failf "v2 wire roundtrip failed: %s" e
  | Ok att' ->
    Alcotest.(check bool) "roundtripped v2 report verifies" true
      (Tyche.Attestation.verify ~monitor_root:root att'));
  let other = boot_x86 ~seed:0x98L () in
  Alcotest.(check bool) "foreign monitor root rejected" false
    (Tyche.Attestation.verify
       ~monitor_root:(Tyche.Monitor.attestation_root other.monitor)
       (List.hd atts));
  (* Edge cases: empty batch, unknown domain. *)
  Alcotest.(check bool) "empty batch" true
    (get_ok (Tyche.Monitor.attest_batch m ~caller:os ~domains:[] ~nonce:"e") = []);
  match Tyche.Monitor.attest_batch m ~caller:os ~domains:[ enclave; 999 ] ~nonce:"u" with
  | Error (Tyche.Monitor.Unknown_domain 999) -> ()
  | _ -> Alcotest.fail "unknown domain accepted in batch"

let test_attest_batch_one_key () =
  (* A height-0 signer holds exactly one one-time key; a whole batch
     must fit in it, proving the batch consumes one key, not N. *)
  let rng = Crypto.Rng.create ~seed:0x31L in
  let signer = Crypto.Signature.create ~height:0 rng in
  let dom i =
    Tyche.Domain.make ~id:i ~name:(Printf.sprintf "d%d" i) ~kind:Tyche.Domain.Sandbox
      ~created_by:(Some 0)
  in
  let entry d = (d, [], [ (0, 1) ], [], false) in
  (* Empty batches consume nothing. *)
  Alcotest.(check bool) "empty batch consumes no key" true
    (Tyche.Attestation.sign_batch ~signer ~nonce:"n" [] = []);
  Alcotest.(check int) "key still available" 1 (Crypto.Signature.remaining signer);
  let atts =
    Tyche.Attestation.sign_batch ~signer ~nonce:"n"
      [ entry (dom 1); entry (dom 2); entry (dom 3) ]
  in
  Alcotest.(check int) "three reports" 3 (List.length atts);
  Alcotest.(check int) "single key consumed" 0 (Crypto.Signature.remaining signer);
  let root = Crypto.Signature.public_root signer in
  List.iter
    (fun att ->
      Alcotest.(check bool) "verifies" true
        (Tyche.Attestation.verify ~monitor_root:root att))
    atts;
  (* Evidence is not transplantable between batch members: report 1
     carrying report 2's proof must fail. *)
  match atts with
  | [ a1; a2; _ ] ->
    let forged = { a1 with Tyche.Attestation.evidence = a2.Tyche.Attestation.evidence } in
    Alcotest.(check bool) "swapped proof rejected" false
      (Tyche.Attestation.verify ~monitor_root:root forged)
  | _ -> Alcotest.fail "expected three reports"

let test_attest_spec_agrees () =
  let w, enclave, _ = with_enclave () in
  let m = w.monitor in
  let body (a : Tyche.Attestation.t) =
    (a.Tyche.Attestation.regions, a.Tyche.Attestation.cores, a.Tyche.Attestation.devices)
  in
  let fast = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:enclave ~nonce:"s") in
  let spec = get_ok (Tyche.Monitor.attest_spec m ~caller:os ~domain:enclave ~nonce:"s") in
  Alcotest.(check bool) "same body" true (body fast = body spec);
  Alcotest.(check bool) "spec-stack report verifies" true
    (Tyche.Attestation.verify ~monitor_root:(Tyche.Monitor.attestation_root m) spec)

let test_attest_nul_name_rejected () =
  let rng = Crypto.Rng.create ~seed:0x32L in
  let signer = Crypto.Signature.create ~height:0 rng in
  let evil =
    Tyche.Domain.make ~id:7 ~name:"inno\x00cent" ~kind:Tyche.Domain.Sandbox
      ~created_by:(Some 0)
  in
  Alcotest.check_raises "NUL name rejected at sign time"
    (Invalid_argument "Attestation.sign: domain name contains NUL") (fun () ->
      ignore
        (Tyche.Attestation.sign ~signer ~domain:evil ~regions:[] ~cores:[] ~devices:[]
           ~memory_encrypted:false ~nonce:"n"));
  Alcotest.check_raises "NUL name rejected in batches"
    (Invalid_argument "Attestation.sign: domain name contains NUL") (fun () ->
      ignore
        (Tyche.Attestation.sign_batch ~signer ~nonce:"n" [ (evil, [], [], [], false) ]))

let test_measurement_position_independence () =
  (* The same logical domain at two different load addresses measures
     identically (virtual-address reuse, §4.2). *)
  let content = Crypto.Sha256.string "payload" in
  let d1 =
    Tyche.Measure.domain_digest ~kind:Tyche.Domain.Enclave ~entry_point:0x10000
      ~flush_on_transition:true
      ~ranges:[ (range ~base:0x10000 ~len:page, content) ]
  in
  let d2 =
    Tyche.Measure.domain_digest ~kind:Tyche.Domain.Enclave ~entry_point:0x50000
      ~flush_on_transition:true
      ~ranges:[ (range ~base:0x50000 ~len:page, content) ]
  in
  Alcotest.(check bool) "position independent" true (Crypto.Sha256.equal d1 d2);
  (* But a different entry offset measures differently. *)
  let d3 =
    Tyche.Measure.domain_digest ~kind:Tyche.Domain.Enclave ~entry_point:0x50010
      ~flush_on_transition:true
      ~ranges:[ (range ~base:0x50000 ~len:page, content) ]
  in
  Alcotest.(check bool) "entry offset matters" false (Crypto.Sha256.equal d1 d3)

let test_boot_quote () =
  let w = boot_x86 () in
  let q = Tyche.Monitor.boot_quote w.monitor ~nonce:"fresh" in
  Alcotest.(check bool) "verifies" true
    (Rot.Tpm.Quote.verify ~root:(Rot.Tpm.endorsement_root w.tpm) q);
  Alcotest.(check int) "covers 4 PCRs" 4 (List.length q.Rot.Tpm.Quote.pcr_values);
  (* PCR 17 equals the offline expectation. *)
  let expected =
    Rot.Boot.expected_pcrs ~firmware ~loader:loader_blob ~monitor_image
  in
  List.iter
    (fun (pcr, v) ->
      match List.assoc_opt pcr q.Rot.Tpm.Quote.pcr_values with
      | Some actual ->
        Alcotest.(check bool) (Printf.sprintf "PCR %d golden" pcr) true
          (Crypto.Sha256.equal actual v)
      | None -> Alcotest.failf "PCR %d missing from quote" pcr)
    expected

let test_mark_measured_requires_holding () =
  let w = boot_x86 () in
  let m = w.monitor in
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Enclave) in
  (* d holds nothing yet: marking fails. *)
  expect_error (Tyche.Monitor.mark_measured m ~caller:os ~domain:d (range ~base:0x50000 ~len:page))

let test_riscv_end_to_end () =
  let w = boot_riscv () in
  let m = w.monitor in
  let e = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"enc" ~kind:Tyche.Domain.Enclave) in
  let sub = range ~base:0x10000 ~len:page in
  let piece = get_ok (Tyche.Monitor.carve m ~caller:os ~cap:(os_memory_cap w) ~subrange:sub) in
  get_ok (Tyche.Monitor.store_string m ~core:0 0x10000 "RVSECRET");
  let _ =
    get_ok (Tyche.Monitor.grant m ~caller:os ~cap:piece ~to_:e ~rights:Cap.Rights.full
              ~cleanup:Cap.Revocation.Zero)
  in
  let _ =
    get_ok (Tyche.Monitor.share m ~caller:os ~cap:(os_core_cap w 0) ~to_:e
              ~rights:Cap.Rights.exclusive_use ~cleanup:Cap.Revocation.Keep ())
  in
  get_ok (Tyche.Monitor.set_entry_point m ~caller:os ~domain:e 0x10000);
  get_ok (Tyche.Monitor.seal m ~caller:os ~domain:e);
  (* PMP now blocks the OS from the enclave's segment. *)
  expect_error (Tyche.Monitor.load m ~core:0 0x10000);
  let p = get_ok (Tyche.Monitor.call m ~core:0 ~target:e) in
  Alcotest.(check bool) "pmp backend always traps" true (p = Tyche.Backend_intf.Trap_roundtrip);
  Alcotest.(check string) "enclave reads" "RVSECRET"
    (get_ok (Tyche.Monitor.load_string m ~core:0 (range ~base:0x10000 ~len:8)));
  let _ = get_ok (Tyche.Monitor.ret m ~core:0) in
  check_no_violations m

let () =
  Alcotest.run "monitor"
    [ ( "boot",
        [ Alcotest.test_case "initial state" `Quick test_boot_state;
          Alcotest.test_case "os memory access" `Quick test_os_memory_access;
          Alcotest.test_case "boot quote golden PCRs" `Quick test_boot_quote ] );
      ( "lifecycle",
        [ Alcotest.test_case "unknown caller" `Quick test_create_domain_unknown_caller;
          Alcotest.test_case "seal requires entry" `Quick test_seal_requires_entry_point;
          Alcotest.test_case "creator-only config" `Quick test_configure_requires_creator;
          Alcotest.test_case "mark_measured requires holding" `Quick
            test_mark_measured_requires_holding;
          Alcotest.test_case "destroy" `Quick test_destroy_domain;
          Alcotest.test_case "destroy running rejected" `Quick
            test_destroy_running_domain_rejected ] );
      ( "authorization",
        [ Alcotest.test_case "share ownership" `Quick test_share_authorization;
          Alcotest.test_case "sealed not extendable" `Quick
            test_sealed_domain_cannot_be_extended;
          Alcotest.test_case "revoke authorization" `Quick test_revoke_authorization;
          Alcotest.test_case "aliased revoke keeps coverage" `Quick test_revoke_aliased_caps ] );
      ( "enforcement",
        [ Alcotest.test_case "os blocked from enclave" `Quick test_enforcement_os_blocked;
          Alcotest.test_case "revocation zeroes + restores" `Quick
            test_revocation_zeroes_and_restores ] );
      ( "transitions",
        [ Alcotest.test_case "call/ret" `Quick test_call_and_ret;
          Alcotest.test_case "core capability required" `Quick
            test_call_requires_core_capability;
          Alcotest.test_case "unsealed target rejected" `Quick test_call_rejects_unsealed;
          Alcotest.test_case "empty stack ret" `Quick test_ret_empty_stack;
          Alcotest.test_case "self call rejected" `Quick test_call_self_rejected;
          Alcotest.test_case "nested calls" `Quick test_nested_calls;
          Alcotest.test_case "vmfunc second call" `Quick test_vmfunc_fast_path_second_call;
          Alcotest.test_case "flush forces trap" `Quick test_flush_policy_forces_trap ] );
      ( "attestation",
        [ Alcotest.test_case "contents" `Quick test_attestation_contents;
          Alcotest.test_case "tamper detected" `Quick test_attestation_tamper_detected;
          Alcotest.test_case "measurement reproducible" `Quick
            test_attestation_measurement_matches_content;
          Alcotest.test_case "memoized body, fresh signatures" `Quick
            test_attestation_memoized;
          Alcotest.test_case "batch" `Quick test_attest_batch;
          Alcotest.test_case "batch consumes one key" `Quick test_attest_batch_one_key;
          Alcotest.test_case "spec stack agrees" `Quick test_attest_spec_agrees;
          Alcotest.test_case "NUL name rejected" `Quick test_attest_nul_name_rejected;
          Alcotest.test_case "position independence" `Quick
            test_measurement_position_independence ] );
      ( "riscv",
        [ Alcotest.test_case "end to end on PMP" `Quick test_riscv_end_to_end ] ) ]
