(* Distributed chaos: two fleet endpoints (alpha, beta) over the
   adversarial in-memory network, driven through seeded episodes of
   partition / reorder / duplicate / ack-loss plus crash-restarts of
   either endpoint mid-delegation and mid-revocation (torn fleet-journal
   appends, torn monitor WAL appends, lost fsyncs). After every episode
   the partition heals and both sides pump to convergence; then both
   monitors must pass invariants + fsck, and the two fleets must agree
   exactly on every delegated cap — the importer's import table matches
   the exporter's delegation table field for field, the exporter's
   proxy-domain caps are exactly the delegations (frozen, present in the
   holders lists), and nothing is pending. No cap leaked, no revocation
   lost.

   The whole schedule is deterministic from one seed (TYCHE_FAULT_SEED
   to replay); each run executes twice and the two transcripts must be
   identical. Plain executable: a short run rides `dune runtest`, the
   long run lives behind `dune build @fleet` (TYCHE_FLEET_EPISODES). *)

let base_seed = Testkit.chaos_seed ~default:0xF1E7
let os = Tyche.Domain.initial
let key = "fleet-chaos-session-key"

let episodes =
  match Sys.getenv_opt "TYCHE_FLEET_EPISODES" with
  | Some s -> int_of_string s
  | None -> 60

let () =
  Testkit.chaos_banner ~suite:"fleet" ~seed:base_seed
    ~extra:(Printf.sprintf ", %d episodes/run (TYCHE_FLEET_EPISODES)" episodes)
    ()

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline (Testkit.chaos_replay_line ~suite:"fleet" ~seed:base_seed);
      prerr_endline ("FAIL: " ^ s);
      exit 1)
    fmt

type node = {
  name : string;
  store : Persist.Store.t;
  mutable monitor : Tyche.Monitor.t;
  mutable fleet : Distributed.Fleet.t;
  (* Caps created by local background shares, for local revocation. *)
  mutable local_shares : Cap.Captree.cap_id list;
}

let mk_node net name seed =
  let w = Testkit.boot_x86 ~seed () in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.Testkit.monitor ~store ();
  let fleet = Distributed.Fleet.create ~store ~monitor:w.Testkit.monitor ~name ~net () in
  { name; store; monitor = w.Testkit.monitor; fleet; local_shares = [] }

let reconnect a b =
  (match Distributed.Fleet.connect a.fleet ~peer:b.name ~key with
  | Ok _ -> ()
  | Error e -> fail "connect %s->%s: %s" a.name b.name (Distributed.Fleet.error_to_string e));
  match Distributed.Fleet.connect b.fleet ~peer:a.name ~key with
  | Ok _ -> ()
  | Error e -> fail "connect %s->%s: %s" b.name a.name (Distributed.Fleet.error_to_string e)

(* Crash-restart: fresh machine and backend, monitor recovery from the
   store, fleet recovery from the journal in the same store. *)
let recover net node =
  let machine = Hw.Machine.create ~arch:Hw.Cpu.X86_64 ~cores:4 ~mem_size:(16 * 1024 * 1024) () in
  let rng = Crypto.Rng.create ~seed:0x99L in
  let tpm = Rot.Tpm.create rng in
  let br =
    Rot.Boot.measured_boot tpm machine ~firmware:Testkit.firmware
      ~loader:Testkit.loader_blob ~monitor_image:Testkit.monitor_image
  in
  let backend = Backend_x86.create machine () in
  match
    Tyche.Monitor.recover machine ~store:node.store ~backend ~tpm ~rng
      ~monitor_range:br.Rot.Boot.monitor_range
  with
  | Error e -> fail "%s: recovery failed: %s" node.name e
  | Ok (m, _) ->
    node.monitor <- m;
    node.fleet <-
      Distributed.Fleet.create ~store:node.store ~monitor:m ~name:node.name ~net ();
    node.local_shares <- []

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

(* The OS's largest memory capability on this node. *)
let big_cap m =
  let tree = Tyche.Monitor.tree m in
  let size c =
    match Cap.Captree.resource tree c with
    | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.len r
    | _ -> 0
  in
  match Tyche.Monitor.caps_of m os with
  | [] -> fail "domain 0 holds no capabilities"
  | caps ->
    List.fold_left (fun best c -> if size c > size best then c else best) (List.hd caps) caps

let page_of m ~page =
  let tree = Tyche.Monitor.tree m in
  let cap = big_cap m in
  match Cap.Captree.resource tree cap with
  | Some (Cap.Resource.Memory r) ->
    let pages = Hw.Addr.Range.len r / Hw.Addr.page_size in
    let sub =
      Hw.Addr.Range.make
        ~base:(Hw.Addr.Range.base r + (page mod pages * Hw.Addr.page_size))
        ~len:Hw.Addr.page_size
    in
    (cap, sub)
  | _ -> fail "big cap not memory"

let rights_pool = [| Cap.Rights.rw; Cap.Rights.read_only; Cap.Rights.rx |]

(* Fault points that crash the node performing the wrapped operation:
   the fleet journal append tears (snapshot.write routes mem-store
   appends of the "fleet" blob), or the monitor's own WAL dies under
   the share/revoke inside the fleet call. *)
let crash_points = [| "snapshot.write"; "wal.append"; "wal.fsync" |]

(* Non-fatal delivery faults on the fleet's own points. *)
let soft_points = [| "fleet.deliver"; "fleet.ack"; "fleet.partition" |]

let run ~seed =
  Fault.reset_counters ();
  let rng = Random.State.make [| seed; 0xF1EE7 |] in
  let net = Distributed.Network.create () in
  let a = mk_node net "alpha" 0x71L in
  let b = mk_node net "beta" 0x72L in
  reconnect a b;
  let transcript = ref [] in
  let say fmt = Printf.ksprintf (fun s -> transcript := s :: !transcript) fmt in
  let crashes = ref 0 in

  (* Run [f] with a 1-in-[p] chance of a crash plan armed; on crash,
     restart [node] and re-key both directions. Returns a transcript tag
     for determinism checking. *)
  let maybe_crash node other p f =
    if Random.State.int rng p = 0 then begin
      let point = crash_points.(Random.State.int rng (Array.length crash_points)) in
      match Fault.with_plan (Fault.nth point 1) f with
      | _ -> "nocrash:" ^ point
      | exception Persist.Store.Crash _ ->
        incr crashes;
        recover net node;
        reconnect node other;
        "crash:" ^ point
    end
    else
      match f () with _ -> "ok" | exception Persist.Store.Crash p -> "unexpected:" ^ p
  in

  let fleet_op ep (x, y) =
    match Random.State.int rng 10 with
    | 0 | 1 | 2 -> (
      let page = Random.State.int rng 64 in
      let rights = rights_pool.(Random.State.int rng (Array.length rights_pool)) in
      let tag =
        maybe_crash x y 6 (fun () ->
            let cap, sub = page_of x.monitor ~page in
            match
              Distributed.Fleet.delegate x.fleet ~caller:os ~cap ~peer:y.name
                ~subrange:sub ~rights ()
            with
            | Ok id -> string_of_int id
            | Error e -> "err:" ^ Distributed.Fleet.error_to_string e)
      in
      say "ep %d: delegate %s->%s page %d = %s" ep x.name y.name page tag)
    | 3 | 4 -> (
      let actives =
        List.filter
          (fun d -> d.Distributed.Fleet.del_state = Distributed.Fleet.Active)
          (Distributed.Fleet.delegations x.fleet)
      in
      match pick rng actives with
      | None -> say "ep %d: revoke %s (none)" ep x.name
      | Some d ->
        let tag =
          maybe_crash x y 6 (fun () ->
              match
                Distributed.Fleet.revoke x.fleet ~caller:os
                  ~cap:d.Distributed.Fleet.proxy_cap
              with
              | Ok () -> "ok"
              | Error e -> "err:" ^ Distributed.Fleet.error_to_string e)
        in
        say "ep %d: revoke %s del %d = %s" ep x.name d.Distributed.Fleet.del_id tag)
    | 5 -> (
      (* Background local mutation: a share to a sandbox, sometimes a
         local revocation of an earlier one — exercising freeze
         interplay and keeping the WAL busy between fleet records. *)
      let page = Random.State.int rng 64 in
      match
        let cap, sub = page_of x.monitor ~page in
        let sbx =
          match
            Tyche.Monitor.create_domain x.monitor ~caller:os
              ~name:(Printf.sprintf "sbx%d" (Random.State.int rng 1000))
              ~kind:Tyche.Domain.Sandbox
          with
          | Ok d -> d
          | Error _ -> os
        in
        Tyche.Monitor.share x.monitor ~caller:os ~cap ~to_:sbx
          ~rights:Cap.Rights.read_only ~cleanup:Cap.Revocation.Keep ~subrange:sub ()
      with
      | Ok c ->
        x.local_shares <- c :: x.local_shares;
        say "ep %d: local share %s page %d = %d" ep x.name page c
      | Error e -> say "ep %d: local share %s = err:%s" ep x.name (Tyche.Monitor.error_to_string e))
    | 6 -> (
      match x.local_shares with
      | [] -> say "ep %d: local revoke %s (none)" ep x.name
      | c :: rest ->
        x.local_shares <- rest;
        let r =
          match Tyche.Monitor.revoke x.monitor ~caller:os ~cap:c with
          | Ok () -> "ok"
          | Error e -> "err:" ^ Tyche.Monitor.error_to_string e
        in
        say "ep %d: local revoke %s cap %d = %s" ep x.name c r)
    | 7 -> (
      (* Receiver-side crash mid-apply: the import/unimport journal
         record tears before the ack leaves. *)
      let tag = maybe_crash x y 4 (fun () -> string_of_int (Distributed.Fleet.poll x.fleet)) in
      say "ep %d: poll %s = %s" ep x.name tag)
    | 8 ->
      let point = soft_points.(Random.State.int rng (Array.length soft_points)) in
      Fault.with_plan (Fault.nth point 1) (fun () ->
          Distributed.Fleet.tick x.fleet;
          ignore (Distributed.Fleet.poll x.fleet));
      say "ep %d: soft-fault %s on %s" ep point x.name
    | _ ->
      Distributed.Fleet.tick x.fleet;
      ignore (Distributed.Fleet.poll x.fleet);
      say "ep %d: step %s" ep x.name
  in

  let adversary ep =
    match Random.State.int rng 6 with
    | 0 ->
      Distributed.Network.partition net a.name b.name;
      say "ep %d: partition" ep
    | 1 ->
      Distributed.Network.heal net a.name b.name;
      say "ep %d: heal" ep
    | 2 ->
      let target = if Random.State.bool rng then a.name else b.name in
      let r = Distributed.Network.reorder net target ~seed:(Random.State.int rng 10000) in
      say "ep %d: reorder %s = %b" ep target r
    | 3 ->
      let target = if Random.State.bool rng then a.name else b.name in
      let r = Distributed.Network.duplicate net target ~seed:(Random.State.int rng 10000) in
      say "ep %d: duplicate %s = %b" ep target r
    | 4 ->
      let target = if Random.State.bool rng then a.name else b.name in
      let r = Distributed.Network.drop_head net target in
      say "ep %d: drop_head %s = %b" ep target r
    | _ -> say "ep %d: adversary idle" ep
  in

  let check_agreement ep (x, y) =
    (* Exporter x vs importer y, after convergence. *)
    let tree = Tyche.Monitor.tree x.monitor in
    let dels = Distributed.Fleet.delegations x.fleet in
    List.iter
      (fun (d : Distributed.Fleet.delegation) ->
        if d.Distributed.Fleet.del_state <> Distributed.Fleet.Active then
          fail "ep %d: %s delegation %d not Active after convergence" ep x.name
            d.Distributed.Fleet.del_id;
        let imp =
          List.find_opt
            (fun i ->
              i.Distributed.Fleet.imp_origin = x.name
              && i.Distributed.Fleet.imp_del_id = d.Distributed.Fleet.del_id)
            (Distributed.Fleet.imports y.fleet)
        in
        (match imp with
        | None ->
          fail "ep %d: delegation %d from %s missing on %s (lost delegation)" ep
            d.Distributed.Fleet.del_id x.name y.name
        | Some i ->
          if
            i.Distributed.Fleet.imp_base <> d.Distributed.Fleet.del_base
            || i.Distributed.Fleet.imp_len <> d.Distributed.Fleet.del_len
            || i.Distributed.Fleet.imp_rights <> d.Distributed.Fleet.del_rights
          then fail "ep %d: delegation %d diverges between %s and %s" ep
                 d.Distributed.Fleet.del_id x.name y.name);
        (* The exporter's tree must carry the remote holder, frozen. *)
        if not (Cap.Captree.is_frozen tree d.Distributed.Fleet.proxy_cap) then
          fail "ep %d: %s proxy cap %d not frozen" ep x.name d.Distributed.Fleet.proxy_cap;
        let range =
          Hw.Addr.Range.make ~base:d.Distributed.Fleet.del_base
            ~len:d.Distributed.Fleet.del_len
        in
        let proxy =
          match Distributed.Fleet.proxy x.fleet ~peer:y.name with
          | Some p -> p
          | None -> fail "ep %d: %s lost its proxy for %s" ep x.name y.name
        in
        if not (List.mem proxy (Cap.Captree.holders tree (Cap.Resource.Memory range)))
        then
          fail "ep %d: %s: remote holder absent from holders of [%d,+%d)" ep x.name
            d.Distributed.Fleet.del_base d.Distributed.Fleet.del_len)
      dels;
    (* Conversely: every import on y maps to a live delegation on x — a
       revocation that was acked must not leave a stale import. *)
    List.iter
      (fun (i : Distributed.Fleet.import) ->
        if i.Distributed.Fleet.imp_origin = x.name then
          if
            not
              (List.exists
                 (fun d -> d.Distributed.Fleet.del_id = i.Distributed.Fleet.imp_del_id)
                 dels)
          then
            fail "ep %d: stale import %d on %s (lost revocation)" ep
              i.Distributed.Fleet.imp_del_id y.name)
      (Distributed.Fleet.imports y.fleet);
    (* No leaked proxy caps: the proxy domain holds exactly the
       delegations, and the frozen set is exactly the proxy caps. *)
    (match Distributed.Fleet.proxy x.fleet ~peer:y.name with
    | None -> ()
    | Some proxy ->
      let held = List.sort Int.compare (Cap.Captree.all_caps_of_domain tree proxy) in
      let expected =
        List.sort Int.compare (List.map (fun d -> d.Distributed.Fleet.proxy_cap) dels)
      in
      if held <> expected then
        fail "ep %d: %s proxy holds [%s] but delegations say [%s]" ep x.name
          (String.concat "," (List.map string_of_int held))
          (String.concat "," (List.map string_of_int expected)));
    if Distributed.Fleet.pending_revokes x.fleet <> [] then
      fail "ep %d: %s still has pending revocations after convergence" ep x.name
  in

  let converge ep =
    Distributed.Network.heal_all net;
    let rounds = ref 0 in
    while
      (not (Distributed.Fleet.idle a.fleet && Distributed.Fleet.idle b.fleet))
      && !rounds < 400
    do
      incr rounds;
      Distributed.Fleet.tick a.fleet;
      Distributed.Fleet.tick b.fleet;
      ignore (Distributed.Fleet.poll a.fleet);
      ignore (Distributed.Fleet.poll b.fleet)
    done;
    if not (Distributed.Fleet.idle a.fleet && Distributed.Fleet.idle b.fleet) then begin
      List.iter
        (fun n ->
          Printf.eprintf "--- %s: applied=%d acked=%d backlog=%d pending=[%s]\n" n.name
            (Distributed.Fleet.applied n.fleet
               ~peer:(if n.name = "alpha" then "beta" else "alpha"))
            (Distributed.Fleet.acked n.fleet
               ~peer:(if n.name = "alpha" then "beta" else "alpha"))
            (Distributed.Fleet.backlog n.fleet
               ~peer:(if n.name = "alpha" then "beta" else "alpha"))
            (String.concat ","
               (List.map string_of_int (Distributed.Fleet.pending_revokes n.fleet)));
          List.iter
            (fun (d : Distributed.Fleet.delegation) ->
              Printf.eprintf "    del %d peer=%s cap=%d seq=%d rseq=%d state=%s\n"
                d.del_id d.del_peer d.proxy_cap d.del_seq d.revoke_seq
                (match d.del_state with
                | Distributed.Fleet.Active -> "A"
                | Distributed.Fleet.Revoking -> "R"
                | Distributed.Fleet.Revoked -> "D"))
            (Distributed.Fleet.delegations n.fleet);
          List.iter
            (fun (i : Distributed.Fleet.import) ->
              Printf.eprintf "    imp %s/%d\n" i.imp_origin i.imp_del_id)
            (Distributed.Fleet.imports n.fleet))
        [ a; b ]
    end;
    if not (Distributed.Fleet.idle a.fleet && Distributed.Fleet.idle b.fleet) then
      fail "ep %d: no convergence after %d rounds (backlog a=%d b=%d pending a=%d b=%d)"
        ep !rounds
        (Distributed.Fleet.backlog a.fleet ~peer:b.name)
        (Distributed.Fleet.backlog b.fleet ~peer:a.name)
        (List.length (Distributed.Fleet.pending_revokes a.fleet))
        (List.length (Distributed.Fleet.pending_revokes b.fleet));
    say "ep %d: converged rounds=%d" ep !rounds
  in

  let check_clean ep node =
    (match Tyche.Invariants.check_all node.monitor with
    | [] -> ()
    | vs ->
      fail "ep %d: %s invariant violations: %s" ep node.name
        (String.concat "; "
           (List.map (Format.asprintf "%a" Tyche.Invariants.pp_violation) vs)));
    let fr = Tyche.Fsck.check node.monitor in
    if not (Tyche.Fsck.ok fr) then
      fail "ep %d: %s fsck: %s" ep node.name (Format.asprintf "%a" Tyche.Fsck.pp fr)
  in

  for ep = 1 to episodes do
    let ops = 3 + Random.State.int rng 6 in
    for _ = 1 to ops do
      let pair = if Random.State.bool rng then (a, b) else (b, a) in
      if Random.State.int rng 4 = 0 then adversary ep else fleet_op ep pair
    done;
    converge ep;
    check_clean ep a;
    check_clean ep b;
    check_agreement ep (a, b);
    check_agreement ep (b, a)
  done;
  say "final: crashes=%d delegations a=%d b=%d imports a=%d b=%d net(drop=%d dup=%d reord=%d part=%d)"
    !crashes
    (List.length (Distributed.Fleet.delegations a.fleet))
    (List.length (Distributed.Fleet.delegations b.fleet))
    (List.length (Distributed.Fleet.imports a.fleet))
    (List.length (Distributed.Fleet.imports b.fleet))
    (Distributed.Network.dropped net)
    (Distributed.Network.duplicated net)
    (Distributed.Network.reordered net)
    (Distributed.Network.partition_drops net);
  Testkit.chaos_check_obs ~suite:"fleet" ~seed:base_seed ~where:"end of run";
  List.rev !transcript

let () =
  let t1 = run ~seed:base_seed in
  let t2 = run ~seed:base_seed in
  if t1 <> t2 then begin
    let rec first_diff i = function
      | x :: xs, y :: ys -> if x <> y then Some (i, x, y) else first_diff (i + 1) (xs, ys)
      | [], [] -> None
      | _ -> Some (i, "<length>", "<mismatch>")
    in
    (match first_diff 0 (t1, t2) with
    | Some (i, x, y) -> Printf.eprintf "transcript diverges at %d:\n  %s\n  %s\n" i x y
    | None -> ());
    fail "two runs from seed %d produced different transcripts" base_seed
  end;
  Printf.printf "fleet chaos: %d episodes x2 runs OK (%d transcript lines)\n%!" episodes
    (List.length t1)
