(* Migration chaos: two fleet endpoints (alpha, beta) over the
   adversarial in-memory network. Each episode builds a fresh sealed
   enclave on one side — sometimes with an outbound delegation, so
   commit exercises re-homing — starts a live migration to the other,
   and then interleaves partition / reorder / duplicate / ack-loss with
   crash-restarts of either endpoint at every migration fault point
   (migrate.chunk, migrate.commit, migrate.abort) and at the underlying
   store points (snapshot.write, wal.append, wal.fsync), plus
   occasional operator aborts and background cross-machine
   delegate/revoke traffic sharing the channel.

   After heal + recovery + convergence the migration must be terminal
   and exactly one monitor hosts the domain live: Committed means the
   target hosts it thawed and fsck-verified with a verifiable transfer
   receipt while the source holds only the remote proxy; Aborted means
   the source hosts it thawed and the target holds no copy. Both
   monitors pass invariants + fsck and the fleets agree on every
   delegation. The whole schedule is deterministic from one seed
   (TYCHE_FAULT_SEED to replay); each run executes twice and the two
   transcripts must be identical. A short run rides `dune runtest`; the
   long run lives behind `dune build @migrate` (TYCHE_MIGRATE_EPISODES). *)

let base_seed = Testkit.chaos_seed ~default:0x316A7E
let os = Tyche.Domain.initial
let key = "migrate-chaos-session-key"
let page = Hw.Addr.page_size

let episodes =
  match Sys.getenv_opt "TYCHE_MIGRATE_EPISODES" with
  | Some s -> int_of_string s
  | None -> 12

let () =
  Testkit.chaos_banner ~suite:"migrate" ~seed:base_seed
    ~extra:(Printf.sprintf ", %d episodes/run (TYCHE_MIGRATE_EPISODES)" episodes)
    ()

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline (Testkit.chaos_replay_line ~suite:"migrate" ~seed:base_seed);
      prerr_endline ("FAIL: " ^ s);
      exit 1)
    fmt

type node = {
  name : string;
  store : Persist.Store.t;
  mutable monitor : Tyche.Monitor.t;
  mutable fleet : Distributed.Fleet.t;
  mutable mig : Distributed.Migrate.t;
}

let mk_node net name seed =
  let w = Testkit.boot_x86 ~seed () in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.Testkit.monitor ~store ();
  let fleet = Distributed.Fleet.create ~store ~monitor:w.Testkit.monitor ~name ~net () in
  let mig = Distributed.Migrate.attach ~fleet ~store () in
  { name; store; monitor = w.Testkit.monitor; fleet; mig }

(* Sessions, data handlers and peer attestation roots are all volatile:
   (re)establish them together, in both directions. *)
let reconnect a b =
  (match Distributed.Fleet.connect a.fleet ~peer:b.name ~key with
  | Ok _ -> ()
  | Error e -> fail "connect %s->%s: %s" a.name b.name (Distributed.Fleet.error_to_string e));
  (match Distributed.Fleet.connect b.fleet ~peer:a.name ~key with
  | Ok _ -> ()
  | Error e -> fail "connect %s->%s: %s" b.name a.name (Distributed.Fleet.error_to_string e));
  Distributed.Migrate.set_peer_root a.mig ~peer:b.name
    (Tyche.Monitor.attestation_root b.monitor);
  Distributed.Migrate.set_peer_root b.mig ~peer:a.name
    (Tyche.Monitor.attestation_root a.monitor)

(* Crash-restart: fresh machine and backend, monitor recovery from the
   store, fleet recovery from its journal, migration recovery from the
   "migrate" journal (attach IS recovery). *)
let recover net node =
  let machine =
    Hw.Machine.create ~arch:Hw.Cpu.X86_64 ~cores:4 ~mem_size:(16 * 1024 * 1024) ()
  in
  let rng = Crypto.Rng.create ~seed:0x99L in
  let tpm = Rot.Tpm.create rng in
  let br =
    Rot.Boot.measured_boot tpm machine ~firmware:Testkit.firmware
      ~loader:Testkit.loader_blob ~monitor_image:Testkit.monitor_image
  in
  let backend = Backend_x86.create machine () in
  match
    Tyche.Monitor.recover machine ~store:node.store ~backend ~tpm ~rng
      ~monitor_range:br.Rot.Boot.monitor_range
  with
  | Error e -> fail "%s: recovery failed: %s" node.name e
  | Ok (m, _) ->
    node.monitor <- m;
    node.fleet <-
      Distributed.Fleet.create ~store:node.store ~monitor:m ~name:node.name ~net ();
    node.mig <- Distributed.Migrate.attach ~fleet:node.fleet ~store:node.store ()

(* The os capability containing [sub] on this node. *)
let cap_over m sub =
  let tree = Tyche.Monitor.tree m in
  List.find_opt
    (fun c ->
      match Cap.Captree.resource tree c with
      | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.includes ~outer:r ~inner:sub
      | _ -> false)
    (Tyche.Monitor.caps_of m os)

let find_by_name m name =
  List.find_opt (fun d -> Tyche.Domain.name d = name) (Tyche.Monitor.domains m)

(* Background cross-machine traffic stays in a fixed low window so it
   never collides with the per-episode enclave carve zone. *)
let bg_base = 0x20000

(* Fault points that crash the node performing the wrapped operation:
   migration journal/chunk/commit/abort tear points plus the store's
   own torn-append and lost-fsync points. *)
let crash_points =
  [| "migrate.chunk"; "migrate.commit"; "migrate.abort";
     "snapshot.write"; "wal.append"; "wal.fsync" |]

let soft_points = [| "fleet.deliver"; "fleet.ack"; "fleet.partition" |]

let run ~seed =
  Fault.reset_counters ();
  let rng = Random.State.make [| seed; 0x316A7E |] in
  let net = Distributed.Network.create () in
  let a = mk_node net "alpha" 0x71L in
  let b = mk_node net "beta" 0x72L in
  reconnect a b;
  let transcript = ref [] in
  let trace = Sys.getenv_opt "TYCHE_MIGRATE_TRACE" <> None in
  let say fmt =
    Printf.ksprintf
      (fun s ->
        if trace then prerr_endline ("| " ^ s);
        transcript := s :: !transcript)
      fmt
  in
  let crashes = ref 0 in

  let maybe_crash node other p f =
    if Random.State.int rng p = 0 then begin
      let point = crash_points.(Random.State.int rng (Array.length crash_points)) in
      match Fault.with_plan (Fault.nth point 1) f with
      | _ -> "nocrash:" ^ point
      | exception Persist.Store.Crash _ ->
        incr crashes;
        recover net node;
        reconnect node other;
        let { Persist.Wal.records; truncated; _ } =
          Persist.Wal.read node.store ~blob:"migrate"
        in
        Printf.sprintf "crash:%s (journal %d records%s; replayed: %s)" point
          (List.length records)
          (if truncated then " TORN" else "")
          (String.concat ","
             (List.map
                (fun (id, _, ph) ->
                  id ^ "=" ^ Format.asprintf "%a" Distributed.Migrate.pp_phase ph)
                (Distributed.Migrate.migrations node.mig)))
    end
    else
      match f () with _ -> "ok" | exception Persist.Store.Crash p -> "unexpected:" ^ p
  in

  let pump_one n =
    Distributed.Fleet.tick n.fleet;
    ignore (Distributed.Fleet.poll n.fleet);
    Distributed.Migrate.tick n.mig
  in

  let adversary ep =
    match Random.State.int rng 6 with
    | 0 ->
      Distributed.Network.partition net a.name b.name;
      say "ep %d: partition" ep
    | 1 ->
      Distributed.Network.heal net a.name b.name;
      say "ep %d: heal" ep
    | 2 ->
      let target = if Random.State.bool rng then a.name else b.name in
      let r = Distributed.Network.reorder net target ~seed:(Random.State.int rng 10000) in
      say "ep %d: reorder %s = %b" ep target r
    | 3 ->
      let target = if Random.State.bool rng then a.name else b.name in
      let r = Distributed.Network.duplicate net target ~seed:(Random.State.int rng 10000) in
      say "ep %d: duplicate %s = %b" ep target r
    | 4 ->
      let target = if Random.State.bool rng then a.name else b.name in
      let r = Distributed.Network.drop_head net target in
      say "ep %d: drop_head %s = %b" ep target r
    | _ -> say "ep %d: adversary idle" ep
  in

  (* Background os-level delegate/revoke sharing the channel with the
     migration stream, exercising interleaved sequencing. *)
  let bg_op ep (x, y) =
    if Random.State.bool rng then begin
      let pg = Random.State.int rng 16 in
      let sub = Hw.Addr.Range.make ~base:(bg_base + (pg * page)) ~len:page in
      match cap_over x.monitor sub with
      | None -> say "ep %d: bg delegate %s (no cap)" ep x.name
      | Some cap ->
        let tag =
          match
            Distributed.Fleet.delegate x.fleet ~caller:os ~cap ~peer:y.name
              ~subrange:sub ~rights:Cap.Rights.read_only ()
          with
          | Ok id -> string_of_int id
          | Error e -> "err:" ^ Distributed.Fleet.error_to_string e
        in
        say "ep %d: bg delegate %s->%s page %d = %s" ep x.name y.name pg tag
    end
    else
      let actives =
        List.filter
          (fun d ->
            d.Distributed.Fleet.del_state = Distributed.Fleet.Active
            && d.Distributed.Fleet.del_base < 0x400000)
          (Distributed.Fleet.delegations x.fleet)
      in
      match actives with
      | [] -> say "ep %d: bg revoke %s (none)" ep x.name
      | l ->
        let d = List.nth l (Random.State.int rng (List.length l)) in
        let tag =
          match
            Distributed.Fleet.revoke x.fleet ~caller:os ~cap:d.Distributed.Fleet.proxy_cap
          with
          | Ok () -> "ok"
          | Error e -> "err:" ^ Distributed.Fleet.error_to_string e
        in
        say "ep %d: bg revoke %s del %d = %s" ep x.name d.Distributed.Fleet.del_id tag
  in

  let converge ep =
    Distributed.Network.heal_all net;
    let idle () =
      Distributed.Fleet.idle a.fleet && Distributed.Fleet.idle b.fleet
      && Distributed.Migrate.idle a.mig && Distributed.Migrate.idle b.mig
    in
    let rounds = ref 0 in
    while (not (idle ())) && !rounds < 600 do
      incr rounds;
      pump_one a;
      pump_one b
    done;
    if not (idle ()) then begin
      List.iter
        (fun n ->
          List.iter
            (fun (id, role, ph) ->
              Printf.eprintf "--- %s %s %s: %s\n" n.name id
                (match role with Distributed.Migrate.Source -> "src" | _ -> "tgt")
                (Format.asprintf "%a" Distributed.Migrate.pp_phase ph))
            (Distributed.Migrate.migrations n.mig))
        [ a; b ];
      fail "ep %d: no convergence after %d rounds" ep !rounds
    end;
    say "ep %d: converged rounds=%d" ep !rounds
  in

  let check_clean ep node =
    (match Tyche.Invariants.check_all node.monitor with
    | [] -> ()
    | vs ->
      fail "ep %d: %s invariant violations: %s" ep node.name
        (String.concat "; "
           (List.map (Format.asprintf "%a" Tyche.Invariants.pp_violation) vs)));
    let fr = Tyche.Fsck.check node.monitor in
    if not (Tyche.Fsck.ok fr) then
      fail "ep %d: %s fsck: %s" ep node.name (Format.asprintf "%a" Tyche.Fsck.pp fr)
  in

  (* Importer/exporter agreement on every delegation, both directions. *)
  let check_agreement ep (x, y) =
    List.iter
      (fun (d : Distributed.Fleet.delegation) ->
        match d.Distributed.Fleet.del_state with
        | Distributed.Fleet.Revoking ->
          fail "ep %d: %s delegation %d stuck Revoking" ep x.name d.Distributed.Fleet.del_id
        | Distributed.Fleet.Revoked ->
          if
            List.exists
              (fun i ->
                i.Distributed.Fleet.imp_origin = x.name
                && i.Distributed.Fleet.imp_del_id = d.Distributed.Fleet.del_id)
              (Distributed.Fleet.imports y.fleet)
          then
            fail "ep %d: revoked delegation %d still imported on %s" ep
              d.Distributed.Fleet.del_id y.name
        | Distributed.Fleet.Active ->
          if
            not
              (List.exists
                 (fun i ->
                   i.Distributed.Fleet.imp_origin = x.name
                   && i.Distributed.Fleet.imp_del_id = d.Distributed.Fleet.del_id
                   && i.Distributed.Fleet.imp_base = d.Distributed.Fleet.del_base
                   && i.Distributed.Fleet.imp_len = d.Distributed.Fleet.del_len)
                 (Distributed.Fleet.imports y.fleet))
          then
            fail "ep %d: delegation %d from %s missing on %s" ep
              d.Distributed.Fleet.del_id x.name y.name)
      (Distributed.Fleet.delegations x.fleet);
    if Distributed.Fleet.pending_revokes x.fleet <> [] then
      fail "ep %d: %s pending revocations after convergence" ep x.name
  in

  for ep = 1 to episodes do
    let name = Printf.sprintf "mig%03d" ep in
    let base = 0x400000 + ((ep - 1) * 4 * page) in
    let x, y = if Random.State.bool rng then (a, b) else (b, a) in
    say "ep %d: enclave %s on %s at %#x -> %s" ep name x.name base y.name;
    (* Build a fresh sealed enclave: two pages, first carries content. *)
    let d =
      match
        Tyche.Monitor.create_domain x.monitor ~caller:os ~name ~kind:Tyche.Domain.Enclave
      with
      | Ok d -> d
      | Error e -> fail "ep %d: create: %s" ep (Tyche.Monitor.error_to_string e)
    in
    let sub = Hw.Addr.Range.make ~base ~len:(2 * page) in
    let ok_m what = function
      | Ok v -> v
      | Error e -> fail "ep %d: %s: %s" ep what (Tyche.Monitor.error_to_string e)
    in
    let donor =
      match cap_over x.monitor sub with
      | Some c -> c
      | None -> fail "ep %d: no os cap over %#x" ep base
    in
    let piece = ok_m "carve" (Tyche.Monitor.carve x.monitor ~caller:os ~cap:donor ~subrange:sub) in
    ok_m "store" (Tyche.Monitor.store_string x.monitor ~core:0 base (name ^ "-content"));
    let granted =
      ok_m "grant"
        (Tyche.Monitor.grant x.monitor ~caller:os ~cap:piece ~to_:d
           ~rights:Cap.Rights.full ~cleanup:Cap.Revocation.Zero_and_flush)
    in
    ok_m "entry" (Tyche.Monitor.set_entry_point x.monitor ~caller:os ~domain:d base);
    ok_m "measure" (Tyche.Monitor.mark_measured x.monitor ~caller:os ~domain:d sub);
    ok_m "seal" (Tyche.Monitor.seal x.monitor ~caller:os ~domain:d);
    (* Sometimes the enclave delegates its first page before moving, so
       commit has a delegation to re-home (revoke at-least-once). *)
    let delegated =
      Random.State.int rng 3 = 0
      &&
      match
        Distributed.Fleet.delegate x.fleet ~caller:d ~cap:granted ~peer:y.name
          ~subrange:(Hw.Addr.Range.make ~base ~len:page)
          ~rights:Cap.Rights.read_only ()
      with
      | Ok _ -> true
      | Error e ->
        say "ep %d: pre-delegate failed: %s" ep (Distributed.Fleet.error_to_string e);
        false
    in
    if delegated then say "ep %d: enclave delegated page 0 to %s" ep y.name;
    let mig =
      match Distributed.Migrate.start x.mig ~domain:d ~peer:y.name with
      | Ok m -> m
      | Error e -> fail "ep %d: start: %s" ep (Distributed.Migrate.error_to_string e)
    in
    (* Interleave faults, crashes, aborts and background traffic. *)
    let steps = 4 + Random.State.int rng 8 in
    for _ = 1 to steps do
      match Random.State.int rng 10 with
      | 0 | 1 -> adversary ep
      | 2 | 3 ->
        let n, o = if Random.State.bool rng then (a, b) else (b, a) in
        let tag = maybe_crash n o 3 (fun () -> pump_one n) in
        say "ep %d: pump %s = %s" ep n.name tag
      | 4 ->
        let point = soft_points.(Random.State.int rng (Array.length soft_points)) in
        let n = if Random.State.bool rng then a else b in
        Fault.with_plan (Fault.nth point 1) (fun () -> pump_one n);
        say "ep %d: soft-fault %s on %s" ep point n.name
      | 5 when Random.State.int rng 4 = 0 ->
        let live =
          match Distributed.Migrate.status x.mig ~mig with
          | Some (_, Distributed.Migrate.Committed)
          | Some (_, Distributed.Migrate.Aborted _) -> false
          | Some _ -> true
          | None -> false
        in
        if live then begin
          let tag =
            maybe_crash x y 3 (fun () ->
                match Distributed.Migrate.abort x.mig ~mig ~reason:"chaos operator" with
                | Ok () -> "ok"
                | Error e -> "err:" ^ Distributed.Migrate.error_to_string e)
          in
          say "ep %d: abort = %s" ep tag
        end
        else say "ep %d: abort skipped (terminal)" ep
      | 6 -> bg_op ep (if Random.State.bool rng then (a, b) else (b, a))
      | _ ->
        pump_one a;
        pump_one b;
        say "ep %d: step" ep
    done;
    converge ep;
    (* Exactly one monitor hosts the domain live. *)
    (match Distributed.Migrate.status x.mig ~mig with
    | Some (Distributed.Migrate.Source, Distributed.Migrate.Committed) ->
      say "ep %d: outcome committed" ep;
      (match Distributed.Migrate.status y.mig ~mig with
      | Some (Distributed.Migrate.Target, Distributed.Migrate.Live) -> ()
      | st ->
        fail "ep %d: source committed but target not live (target=%s)" ep
          (match st with
          | None -> "none"
          | Some (_, ph) -> Format.asprintf "%a" Distributed.Migrate.pp_phase ph));
      (match find_by_name y.monitor name with
      | None -> fail "ep %d: committed but %s absent on %s" ep name y.name
      | Some dom ->
        if not (Tyche.Domain.is_sealed dom) then fail "ep %d: adopted copy unsealed" ep);
      let ad =
        match Distributed.Migrate.adopted_domain y.mig ~mig with
        | Some id -> id
        | None -> fail "ep %d: no adopted domain id" ep
      in
      if Tyche.Monitor.domain_frozen y.monitor ~domain:ad then
        fail "ep %d: adopted copy still frozen" ep;
      if find_by_name x.monitor name <> None then
        fail "ep %d: committed but source still hosts %s" ep name;
      (match find_by_name x.monitor (Printf.sprintf "remote:%s:%s" y.name name) with
      | Some p when Tyche.Domain.kind p = Tyche.Domain.Remote -> ()
      | _ -> fail "ep %d: committed but no remote proxy on %s" ep x.name);
      if not (Distributed.Migrate.verify_receipt y.mig ~mig) then
        fail "ep %d: transfer receipt does not verify" ep
    | Some (Distributed.Migrate.Source, Distributed.Migrate.Aborted _) ->
      say "ep %d: outcome aborted" ep;
      (match find_by_name x.monitor name with
      | None -> fail "ep %d: aborted but %s lost on %s" ep name x.name
      | Some dom ->
        let id = Tyche.Domain.id dom in
        if Tyche.Monitor.domain_frozen x.monitor ~domain:id then
          fail "ep %d: aborted but %s still frozen" ep name);
      if find_by_name y.monitor name <> None then
        fail "ep %d: aborted but a copy of %s survives on %s" ep name y.name;
      (match Distributed.Migrate.status y.mig ~mig with
      | None | Some (_, Distributed.Migrate.Aborted _) -> ()
      | Some (_, ph) ->
        fail "ep %d: source aborted but target is %s" ep
          (Format.asprintf "%a" Distributed.Migrate.pp_phase ph))
    | Some (_, ph) ->
      fail "ep %d: migration not terminal after convergence: %s" ep
        (Format.asprintf "%a" Distributed.Migrate.pp_phase ph)
    | None -> fail "ep %d: source forgot migration %s" ep mig);
    check_clean ep a;
    check_clean ep b;
    check_agreement ep (a, b);
    check_agreement ep (b, a)
  done;
  say "final: crashes=%d migrations a=%d b=%d net(drop=%d dup=%d reord=%d part=%d)"
    !crashes
    (List.length (Distributed.Migrate.migrations a.mig))
    (List.length (Distributed.Migrate.migrations b.mig))
    (Distributed.Network.dropped net)
    (Distributed.Network.duplicated net)
    (Distributed.Network.reordered net)
    (Distributed.Network.partition_drops net);
  Testkit.chaos_check_obs ~suite:"migrate" ~seed:base_seed ~where:"end of run";
  List.rev !transcript

let () =
  let t1 = run ~seed:base_seed in
  let t2 = run ~seed:base_seed in
  if t1 <> t2 then begin
    let rec first_diff i = function
      | x :: xs, y :: ys -> if x <> y then Some (i, x, y) else first_diff (i + 1) (xs, ys)
      | [], [] -> None
      | _ -> Some (i, "<length>", "<mismatch>")
    in
    (match first_diff 0 (t1, t2) with
    | Some (i, x, y) -> Printf.eprintf "transcript diverges at %d:\n  %s\n  %s\n" i x y
    | None -> ());
    fail "two runs from seed %d produced different transcripts" base_seed
  end;
  Printf.printf "migrate chaos: %d episodes x2 runs OK (%d transcript lines)\n%!" episodes
    (List.length t1)
