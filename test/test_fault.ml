(* Fault injection and crash consistency (E15): the chaos driver, the
   per-point trip tests, rollback atomicity on both backends, keypool
   degradation and retrying session establishment over a lossy network.

   Every chaos run is deterministic: the base seed below feeds both the
   operation generator and every `Rate fault plan. Override it with
   TYCHE_FAULT_SEED=<int> to replay or explore other schedules. *)

open Testkit

let page = Hw.Addr.page_size
let range ~base ~len = Hw.Addr.Range.make ~base ~len

let base_seed = chaos_seed ~default:0xFA01
let () = chaos_banner ~suite:"fault" ~seed:base_seed ()

(* Chaos failures print the shared replay recipe before the alcotest
   message, so a red CI log reads the same as a persist-chaos one. *)
let chaos_failf fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline (chaos_replay_line ~suite:"fault" ~seed:base_seed);
      Alcotest.fail msg)
    fmt

let total_chaos_ops = ref 0

let violations_str vs =
  String.concat "; " (List.map (Format.asprintf "%a" Tyche.Invariants.pp_violation) vs)

(* ---------------- worlds ---------------- *)

let nic () = Hw.Device.create ~kind:Hw.Device.Nic ~bus:1 ~dev:0 ~fn:0 ()

type cw = {
  machine : Hw.Machine.t;
  m : Tyche.Monitor.t;
  cores : int;
  mutable attests : int;
  max_attests : int;
}

let boot_chaos ~arch ?(seed = 0xFA0L) ?(cores = 2) ?(mem_kib = 256) ?keypool
    ?(signer_height = 8) ~max_attests ?(devices = []) () =
  let machine = Hw.Machine.create ~arch ~cores ~mem_size:(mem_kib * 1024) () in
  List.iter (Hw.Machine.attach_device machine) devices;
  let rng = Crypto.Rng.create ~seed in
  let tpm = Rot.Tpm.create rng in
  let report =
    Rot.Boot.measured_boot tpm machine ~firmware ~loader:loader_blob ~monitor_image
  in
  let backend =
    match arch with
    | Hw.Cpu.X86_64 -> Backend_x86.create machine ()
    | Hw.Cpu.Riscv64 ->
      Backend_riscv.create machine ~monitor_range:report.Rot.Boot.monitor_range ()
  in
  let m =
    Tyche.Monitor.boot ~signer_height ?keypool machine ~backend ~tpm ~rng
      ~monitor_range:report.Rot.Boot.monitor_range
  in
  { machine; m; cores; attests = 0; max_attests }

(* ---------------- observable-state snapshot ----------------

   Everything a failed call must leave untouched: the domain table, every
   capability (resource, rights, activity, lineage), the Fig. 4 region
   map, and each core's scheduling state. Hardware is pinned separately
   by [check_hardware_matches_tree] = [] on both sides of the call. *)

type snap = {
  s_domains : (int * string * bool * Hw.Addr.t option) list;
  s_caps :
    (int * (int * Cap.Resource.t option * Cap.Rights.t option * bool * int option) list) list;
  s_regions : (Hw.Addr.Range.t * int list) list;
  s_cores : (int * int * int) list;
}

let snapshot ncores m =
  let tree = Tyche.Monitor.tree m in
  let doms = List.sort compare (List.map Tyche.Domain.id (Tyche.Monitor.domains m)) in
  { s_domains =
      List.map
        (fun d ->
          match Tyche.Monitor.find_domain m d with
          | None -> (d, "?", false, None)
          | Some dt ->
            (d, Tyche.Domain.name dt, Tyche.Domain.is_sealed dt, Tyche.Domain.entry_point dt))
        doms;
    s_caps =
      List.map
        (fun d ->
          ( d,
            List.map
              (fun c ->
                ( c,
                  Cap.Captree.resource tree c,
                  Cap.Captree.rights tree c,
                  Cap.Captree.is_active tree c,
                  Cap.Captree.parent tree c ))
              (List.sort compare (Cap.Captree.all_caps_of_domain tree d)) ))
        doms;
    s_regions = Cap.Captree.region_map tree;
    s_cores =
      List.init ncores (fun c ->
          (c, Tyche.Monitor.current_domain m ~core:c, Tyche.Monitor.call_depth m ~core:c));
  }

(* Attestation bodies (everything but the nonce and the one-time
   signature) — the observable a remote verifier compares. *)
let att_body (a : Tyche.Attestation.t) =
  ( a.Tyche.Attestation.domain,
    a.Tyche.Attestation.domain_name,
    a.Tyche.Attestation.kind,
    a.Tyche.Attestation.sealed,
    a.Tyche.Attestation.measurement,
    a.Tyche.Attestation.regions,
    a.Tyche.Attestation.cores,
    a.Tyche.Attestation.devices,
    a.Tyche.Attestation.memory_encrypted )

(* ---------------- one random monitor API call ---------------- *)

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let aligned_subrange rng (r : Hw.Addr.Range.t) =
  let lo = Hw.Addr.align_up (Hw.Addr.Range.base r) in
  let hi = Hw.Addr.align_down (Hw.Addr.Range.limit r) in
  let pages = (hi - lo) / page in
  if pages < 1 then None
  else
    let start = Random.State.int rng pages in
    let len_pages = 1 + Random.State.int rng (min 4 (pages - start)) in
    Some (range ~base:(lo + (start * page)) ~len:(len_pages * page))

let interior_point rng (r : Hw.Addr.Range.t) =
  let lo = Hw.Addr.align_up (Hw.Addr.Range.base r + 1) in
  let hi = Hw.Addr.align_down (Hw.Addr.Range.last r) in
  if lo > hi then None else Some (lo + (page * Random.State.int rng (((hi - lo) / page) + 1)))

let chaos_step rng w =
  let m = w.m in
  let tree = Tyche.Monitor.tree m in
  let doms = List.sort compare (List.map Tyche.Domain.id (Tyche.Monitor.domains m)) in
  let caller = if Random.State.bool rng then os else pick rng doms in
  let caps = Tyche.Monitor.caps_of m caller in
  let mem_caps =
    List.filter_map
      (fun c ->
        match Cap.Captree.resource tree c with
        | Some (Cap.Resource.Memory r) -> Some (c, r)
        | _ -> None)
      caps
  in
  let rights () =
    pick rng [ Cap.Rights.full; Cap.Rights.rw; Cap.Rights.rx; Cap.Rights.read_only ]
  in
  let cleanup () =
    pick rng
      [ Cap.Revocation.Keep; Cap.Revocation.Zero; Cap.Revocation.Flush_cache;
        Cap.Revocation.Zero_and_flush ]
  in
  let out name = function Ok _ -> (name, `Ok) | Error _ -> (name, `Err) in
  let tick () = out "timer_tick" (Tyche.Monitor.timer_tick m ~core:(Random.State.int rng w.cores)) in
  (* Pre-existing hpa-aliasing behaviour (two active caps of one domain
     over one range) is out of scope here: skip delegations that would
     make [to_] hold a range it already overlaps. *)
  let aliases to_ resource = List.mem to_ (Cap.Captree.holders tree resource) in
  match Random.State.int rng 16 with
  | 0 | 1 -> (
    match mem_caps with
    | [] -> tick ()
    | l -> (
      let cap, r = pick rng l in
      let to_ = pick rng doms in
      match aligned_subrange rng r with
      | Some sub when (not (aliases to_ (Cap.Resource.Memory sub))) && to_ <> caller ->
        out "share"
          (Tyche.Monitor.share m ~caller ~cap ~to_ ~rights:(rights ()) ~cleanup:(cleanup ())
             ~subrange:sub ())
      | _ -> tick ()))
  | 2 -> (
    match mem_caps with
    | [] -> tick ()
    | l -> (
      let cap, r = pick rng l in
      match aligned_subrange rng r with
      | Some sub -> out "carve" (Tyche.Monitor.carve m ~caller ~cap ~subrange:sub)
      | None -> tick ()))
  | 3 -> (
    match mem_caps with
    | [] -> tick ()
    | l -> (
      let cap, r = pick rng l in
      match interior_point rng r with
      | Some at -> out "split" (Tyche.Monitor.split m ~caller ~cap ~at)
      | None -> tick ()))
  | 4 -> (
    match caps with
    | [] -> tick ()
    | l ->
      let cap = pick rng l in
      let to_ = pick rng doms in
      let alias =
        match Cap.Captree.resource tree cap with
        | Some r -> aliases to_ r
        | None -> true
      in
      if alias || to_ = caller then tick ()
      else out "grant" (Tyche.Monitor.grant m ~caller ~cap ~to_ ~rights:(rights ()) ~cleanup:(cleanup ())))
  | 5 | 6 -> (
    let delegations = List.concat_map (fun c -> Cap.Captree.children tree c) caps in
    let own = List.filter (fun c -> Cap.Captree.parent tree c <> None) caps in
    match delegations @ own with
    | [] -> tick ()
    | l -> out "revoke" (Tyche.Monitor.revoke m ~caller ~cap:(pick rng l)))
  | 7 ->
    if List.length doms >= 9 then tick ()
    else
      out "create"
        (Tyche.Monitor.create_domain m ~caller
           ~name:("d" ^ string_of_int (Random.State.int rng 1000))
           ~kind:
             (pick rng
                [ Tyche.Domain.Sandbox; Tyche.Domain.Enclave; Tyche.Domain.Confidential_vm ]))
  | 8 -> (
    let current = List.init w.cores (fun c -> Tyche.Monitor.current_domain m ~core:c) in
    let candidates =
      List.filter
        (fun d ->
          d <> os
          && (not (List.mem d current))
          &&
          match Tyche.Monitor.find_domain m d with
          | Some dt -> Tyche.Domain.created_by dt = Some caller
          | None -> false)
        doms
    in
    match candidates with
    | [] -> tick ()
    | l -> out "destroy" (Tyche.Monitor.destroy_domain m ~caller ~domain:(pick rng l)))
  | 9 -> (
    let unsealed =
      List.filter
        (fun d ->
          d <> os
          &&
          match Tyche.Monitor.find_domain m d with
          | Some dt -> not (Tyche.Domain.is_sealed dt)
          | None -> false)
        doms
    in
    match unsealed with
    | [] -> tick ()
    | l ->
      let d = pick rng l in
      if Random.State.bool rng then
        out "entry"
          (Tyche.Monitor.set_entry_point m ~caller ~domain:d (Random.State.int rng 64 * page))
      else out "seal" (Tyche.Monitor.seal m ~caller ~domain:d))
  | 10 -> (
    let other =
      List.filter_map
        (fun c ->
          match Cap.Captree.resource tree c with
          | Some ((Cap.Resource.Cpu_core _ | Cap.Resource.Device _) as r) -> Some (c, r)
          | _ -> None)
        caps
    in
    match other with
    | [] -> tick ()
    | l ->
      let cap, r = pick rng l in
      let to_ = pick rng doms in
      if aliases to_ r then tick ()
      else
        out "share_res"
          (Tyche.Monitor.share m ~caller ~cap ~to_ ~rights:(rights ()) ~cleanup:(cleanup ()) ()))
  | 11 ->
    out "call"
      (Tyche.Monitor.call m ~core:(Random.State.int rng w.cores) ~target:(pick rng doms))
  | 12 -> out "ret" (Tyche.Monitor.ret m ~core:(Random.State.int rng w.cores))
  | 13 ->
    if w.attests >= w.max_attests then tick ()
    else begin
      w.attests <- w.attests + 1;
      if Random.State.int rng 4 = 0 then
        out "attest_batch"
          (Tyche.Monitor.attest_batch m ~caller
             ~domains:(List.filteri (fun i _ -> i < 3) doms)
             ~nonce:"chaos")
      else out "attest" (Tyche.Monitor.attest m ~caller ~domain:(pick rng doms) ~nonce:"chaos")
    end
  | 14 -> (
    match mem_caps with
    | [] -> tick ()
    | l -> (
      let _, r = pick rng l in
      match aligned_subrange rng r with
      | Some sub ->
        out "measure" (Tyche.Monitor.mark_measured m ~caller ~domain:caller sub)
      | None -> tick ()))
  | _ -> tick ()

(* ---------------- the chaos runner ---------------- *)

let run_chaos ~label w plans ~ops_per_plan ~rng =
  List.iter
    (fun (pname, plan) ->
      Fault.with_plan plan (fun () ->
          for i = 1 to ops_per_plan do
            incr total_chaos_ops;
            let before = snapshot w.cores w.m in
            let desc, res = chaos_step rng w in
            (match res with
            | `Ok -> ()
            | `Err ->
              let after = snapshot w.cores w.m in
              if before <> after then
                chaos_failf "%s/%s op %d (%s): failed call mutated observable state"
                  label pname i desc);
            (match Tyche.Invariants.check_all w.m with
            | [] -> ()
            | vs ->
              chaos_failf "%s/%s op %d (%s): invariants: %s" label pname i desc
                (violations_str vs));
            match Cap.Captree.check_index_consistency (Tyche.Monitor.tree w.m) with
            | Ok () -> ()
            | Error e -> chaos_failf "%s/%s op %d (%s): index: %s" label pname i desc e
          done);
      (* Injected faults unwind through instrumented paths constantly
         here; the span accounting must still balance after each plan. *)
      match Obs.check () with
      | Ok () -> ()
      | Error msg -> chaos_failf "%s/%s: obs self-audit: %s" label pname msg)
    plans

let x86_plans =
  [ ("control", Fault.plan []);
    ("keypool.take-always", Fault.always "keypool.take");
    ( "mixed",
      Fault.plan
        ~seed:(Int64.of_int (base_seed + 2))
        ~default:(`Rate 0.01)
        [ ("ept.map", `Rate 0.05); ("keypool.replenish", `Always) ] );
    ("ept.map-1st", Fault.nth "ept.map" 1);
    ("ept.map-3rd", Fault.nth "ept.map" 3);
    ("ept.unmap-1st", Fault.nth "ept.unmap" 1);
    ("iommu-1st", Fault.nth "iommu.update" 1);
    ("rate-2%", Fault.random ~seed:base_seed ~rate:0.02);
    ("rate-10%", Fault.random ~seed:(base_seed + 1) ~rate:0.10) ]

let riscv_plans =
  [ ("control", Fault.plan []);
    ("pmp-1st", Fault.nth "pmp.write" 1);
    ("pmp-7th", Fault.nth "pmp.write" 7);
    ("iommu-1st", Fault.nth "iommu.update" 1);
    ("rate-2%", Fault.random ~seed:(base_seed + 10) ~rate:0.02);
    ("rate-10%", Fault.random ~seed:(base_seed + 11) ~rate:0.10) ]

let test_chaos_x86 () =
  let rng = Random.State.make [| base_seed |] in
  let pool = Crypto.Keypool.create ~low_water:16 ~target:32 (Crypto.Rng.create ~seed:0x99L) in
  let w =
    boot_chaos ~arch:Hw.Cpu.X86_64 ~seed:0xFA1L ~keypool:pool ~signer_height:9
      ~max_attests:480 ~devices:[ nic () ] ()
  in
  run_chaos ~label:"x86" w x86_plans ~ops_per_plan:750 ~rng

let test_chaos_riscv () =
  let rng = Random.State.make [| base_seed + 7 |] in
  let w =
    boot_chaos ~arch:Hw.Cpu.Riscv64 ~seed:0xFA2L ~signer_height:8 ~max_attests:240
      ~devices:[ nic () ] ()
  in
  run_chaos ~label:"riscv" w riscv_plans ~ops_per_plan:750 ~rng

(* QCheck: arbitrary fault seeds (not just the curated plans) keep the
   invariants. *)
let prop_chaos_random_seed =
  QCheck.Test.make ~name:"chaos: random fault seeds keep invariants" ~count:6
    QCheck.(int_bound 1_000_000)
    (fun s ->
      let w =
        boot_chaos ~arch:Hw.Cpu.X86_64
          ~seed:(Int64.of_int (0xFA30 + s))
          ~signer_height:4 ~max_attests:10 ()
      in
      let rng = Random.State.make [| s |] in
      Fault.with_plan
        (Fault.random ~seed:s ~rate:0.05)
        (fun () ->
          for _ = 1 to 120 do
            incr total_chaos_ops;
            ignore (chaos_step rng w)
          done);
      Tyche.Invariants.check_all w.m = []
      && Cap.Captree.check_index_consistency (Tyche.Monitor.tree w.m) = Ok ()
      && Obs.check () = Ok ())

(* ---------------- per-point trip tests ---------------- *)

let test_alloc_fault () =
  let a = Kernel.Alloc.create (range ~base:0 ~len:(16 * page)) in
  Fault.with_plan (Fault.always "alloc") (fun () ->
      Alcotest.(check bool) "faulted alloc reports exhaustion" true
        (Kernel.Alloc.alloc a ~bytes:page = None));
  Alcotest.(check int) "free list untouched" (16 * page) (Kernel.Alloc.free_bytes a);
  match Kernel.Alloc.alloc a ~bytes:page with
  | Some _ -> ()
  | None -> Alcotest.fail "allocation failed with no plan armed"

let test_keypool_take_fault () =
  let pool = Crypto.Keypool.create ~low_water:2 ~target:4 (Crypto.Rng.create ~seed:0x77L) in
  let _, m0 = Crypto.Keypool.stats pool in
  Fault.with_plan (Fault.always "keypool.take") (fun () ->
      ignore (Crypto.Keypool.take pool));
  let _, m1 = Crypto.Keypool.stats pool in
  Alcotest.(check int) "faulted take is a miss" (m0 + 1) m1;
  Alcotest.(check int) "stock untouched (pair generated on demand)" 4
    (Crypto.Keypool.size pool);
  Alcotest.(check bool) "miss rate visible" true (Crypto.Keypool.miss_rate pool > 0.)

let test_net_deliver_fault () =
  let net = Distributed.Network.create () in
  Fault.with_plan (Fault.always "net.deliver") (fun () ->
      Distributed.Network.send net ~from_:"a" ~to_:"b" "lost");
  Alcotest.(check int) "nothing queued" 0 (Distributed.Network.pending net "b");
  Alcotest.(check int) "drop counted" 1 (Distributed.Network.dropped net);
  Alcotest.(check (option string)) "nothing delivered" None (Distributed.Network.recv net "b");
  Distributed.Network.send net ~from_:"a" ~to_:"b" "kept";
  Alcotest.(check (option string)) "clean path unaffected" (Some "kept")
    (Distributed.Network.recv net "b")

(* ---------------- rollback atomicity ---------------- *)

let expect_backend_failure ~what = function
  | Error (Tyche.Monitor.Backend_failure _) -> ()
  | Error e ->
    Alcotest.failf "%s: expected Backend_failure, got %s" what (Tyche.Monitor.error_to_string e)
  | Ok _ -> Alcotest.failf "%s: expected the injected fault to fail the call" what

let pmp_files machine cores =
  List.init cores (fun i -> Hw.Pmp.entries (Hw.Cpu.pmp (Hw.Machine.core machine i)))

let test_riscv_pmp_rollback () =
  let w = boot_riscv () in
  let d =
    get_ok (Tyche.Monitor.create_domain w.monitor ~caller:os ~name:"child" ~kind:Tyche.Domain.Sandbox)
  in
  let piece =
    get_ok
      (Tyche.Monitor.carve w.monitor ~caller:os ~cap:(os_memory_cap w)
         ~subrange:(range ~base:0x40000 ~len:page))
  in
  let before = snapshot 2 w.monitor in
  let pmp_before = pmp_files w.machine 2 in
  let body_before =
    att_body (get_ok (Tyche.Monitor.attest w.monitor ~caller:os ~domain:os ~nonce:"b"))
  in
  (* Granting detaches the page from the running OS, forcing a PMP
     reprogram whose first register write we fail. *)
  Fault.with_plan (Fault.nth "pmp.write" 1) (fun () ->
      expect_backend_failure ~what:"grant under pmp fault"
        (Tyche.Monitor.grant w.monitor ~caller:os ~cap:piece ~to_:d ~rights:Cap.Rights.full
           ~cleanup:Cap.Revocation.Keep));
  Alcotest.(check bool) "tree and scheduling state rolled back" true
    (before = snapshot 2 w.monitor);
  Alcotest.(check bool) "PMP files rolled back" true (pmp_before = pmp_files w.machine 2);
  let body_after =
    att_body (get_ok (Tyche.Monitor.attest w.monitor ~caller:os ~domain:os ~nonce:"a"))
  in
  Alcotest.(check bool) "attestation body unchanged" true (body_before = body_after);
  check_no_violations w.monitor;
  (* The same grant succeeds once the plan is gone. *)
  ignore
    (get_ok
       (Tyche.Monitor.grant w.monitor ~caller:os ~cap:piece ~to_:d ~rights:Cap.Rights.full
          ~cleanup:Cap.Revocation.Keep));
  check_no_violations w.monitor

let test_x86_ept_rollback () =
  let w = boot_x86 () in
  let d =
    get_ok (Tyche.Monitor.create_domain w.monitor ~caller:os ~name:"child" ~kind:Tyche.Domain.Enclave)
  in
  let before = snapshot 4 w.monitor in
  let body_before =
    att_body (get_ok (Tyche.Monitor.attest w.monitor ~caller:os ~domain:os ~nonce:"b"))
  in
  (* Fail the 3rd of 4 page mappings: the rollback must unmap the two
     pages that did land (the partial-prefix case). *)
  Fault.with_plan (Fault.nth "ept.map" 3) (fun () ->
      expect_backend_failure ~what:"share under ept.map fault"
        (Tyche.Monitor.share w.monitor ~caller:os ~cap:(os_memory_cap w) ~to_:d
           ~rights:Cap.Rights.rw ~cleanup:Cap.Revocation.Zero
           ~subrange:(range ~base:0x80000 ~len:(4 * page)) ()));
  Alcotest.(check bool) "tree rolled back" true (before = snapshot 4 w.monitor);
  Alcotest.(check bool) "attestation body unchanged" true
    (body_before
    = att_body (get_ok (Tyche.Monitor.attest w.monitor ~caller:os ~domain:os ~nonce:"a")));
  check_no_violations w.monitor;
  (* Clean share, then a faulted revoke: the child must keep access. *)
  let shared =
    get_ok
      (Tyche.Monitor.share w.monitor ~caller:os ~cap:(os_memory_cap w) ~to_:d
         ~rights:Cap.Rights.rw ~cleanup:Cap.Revocation.Zero
         ~subrange:(range ~base:0x80000 ~len:(4 * page)) ())
  in
  let with_child = snapshot 4 w.monitor in
  Fault.with_plan (Fault.nth "ept.unmap" 2) (fun () ->
      expect_backend_failure ~what:"revoke under ept.unmap fault"
        (Tyche.Monitor.revoke w.monitor ~caller:os ~cap:shared));
  Alcotest.(check bool) "failed revoke left the share intact" true
    (with_child = snapshot 4 w.monitor);
  Alcotest.(check bool) "child still holds the range" true
    (List.mem d
       (Cap.Captree.holders (Tyche.Monitor.tree w.monitor)
          (Cap.Resource.Memory (range ~base:0x80000 ~len:(4 * page)))));
  check_no_violations w.monitor;
  ignore (get_ok (Tyche.Monitor.revoke w.monitor ~caller:os ~cap:shared));
  check_no_violations w.monitor

let test_destroy_rollback () =
  let w = boot_x86 ~devices:[ nic () ] () in
  let d =
    get_ok (Tyche.Monitor.create_domain w.monitor ~caller:os ~name:"victim" ~kind:Tyche.Domain.Sandbox)
  in
  List.iter
    (fun base ->
      ignore
        (get_ok
           (Tyche.Monitor.share w.monitor ~caller:os ~cap:(os_memory_cap w) ~to_:d
              ~rights:Cap.Rights.rw ~cleanup:Cap.Revocation.Zero
              ~subrange:(range ~base ~len:page) ())))
    [ 0x90000; 0xa0000; 0xb0000 ];
  let with_victim = snapshot 4 w.monitor in
  (* Fault the 3rd page unmap: destroy_domain is one transaction, so the
     whole teardown must roll back and the domain must survive. *)
  Fault.with_plan (Fault.nth "ept.unmap" 3) (fun () ->
      expect_backend_failure ~what:"destroy under ept.unmap fault"
        (Tyche.Monitor.destroy_domain w.monitor ~caller:os ~domain:d));
  Alcotest.(check bool) "domain survived intact" true (with_victim = snapshot 4 w.monitor);
  Alcotest.(check bool) "still registered" true
    (Tyche.Monitor.find_domain w.monitor d <> None);
  check_no_violations w.monitor;
  ignore (get_ok (Tyche.Monitor.destroy_domain w.monitor ~caller:os ~domain:d));
  Alcotest.(check bool) "gone after clean destroy" true
    (Tyche.Monitor.find_domain w.monitor d = None);
  check_no_violations w.monitor

(* C8: genuine PMP-entry exhaustion discovered while reprogramming the
   running OS — not an injected fault — must roll back just as cleanly,
   and revoking an earlier delegation must free entries for a retry. *)
let test_pmp_exhaustion () =
  let w = boot_riscv () in
  let m = w.monitor in
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"sink" ~kind:Tyche.Domain.Sandbox) in
  let grant_page base =
    let piece =
      get_ok (Tyche.Monitor.carve m ~caller:os ~cap:(os_memory_cap w) ~subrange:(range ~base ~len:page))
    in
    (piece, Tyche.Monitor.grant m ~caller:os ~cap:piece ~to_:d ~rights:Cap.Rights.full
              ~cleanup:Cap.Revocation.Keep)
  in
  (* Odd page indices: every grant punches a new hole in the running
     OS's layout, so its PMP demand grows one entry per grant. *)
  let base_of k = 0x100000 + (2 * k * page) in
  let rec drive k acc =
    if k > 20 then Alcotest.fail "PMP file never filled up"
    else begin
      let piece, result = grant_page (base_of k) in
      match result with
      | Ok c -> drive (k + 1) ((c, piece) :: acc)
      | Error (Tyche.Monitor.Backend_failure _) -> check_exhaustion k piece acc
      | Error e -> Alcotest.failf "unexpected error: %s" (Tyche.Monitor.error_to_string e)
    end
  and check_exhaustion k piece acc =
    Alcotest.(check bool) "made real progress first" true (k >= 5);
    (* Snapshot equality around a retry of the failing grant itself. *)
    let before = snapshot 2 m in
    let pmp_before = pmp_files w.machine 2 in
    expect_backend_failure ~what:"grant beyond the PMP budget"
      (Tyche.Monitor.grant m ~caller:os ~cap:piece ~to_:d ~rights:Cap.Rights.full
         ~cleanup:Cap.Revocation.Keep);
    Alcotest.(check bool) "exhausted grant rolled back" true (before = snapshot 2 m);
    Alcotest.(check bool) "PMP files untouched" true (pmp_before = pmp_files w.machine 2);
    check_no_violations m;
    (* Revoke the earliest grant: the page merges back into the OS
       layout, freeing entries... *)
    let first_granted, _ = List.nth acc (List.length acc - 1) in
    ignore (get_ok (Tyche.Monitor.revoke m ~caller:os ~cap:first_granted));
    check_no_violations m;
    (* ...so the very grant that hit the wall now fits. *)
    ignore
      (get_ok
         (Tyche.Monitor.grant m ~caller:os ~cap:piece ~to_:d ~rights:Cap.Rights.full
            ~cleanup:Cap.Revocation.Keep));
    check_no_violations m
  in
  drive 0 []

(* ---------------- keypool degradation ---------------- *)

let test_keypool_degradation () =
  let pool = Crypto.Keypool.create ~low_water:4 ~target:8 (Crypto.Rng.create ~seed:0x88L) in
  let w =
    boot_chaos ~arch:Hw.Cpu.X86_64 ~seed:0xFA4L ~mem_kib:512 ~keypool:pool ~signer_height:5
      ~max_attests:32 ()
  in
  let m = w.m in
  (* The signer needs 2^5 = 32 pairs up front but the pool only stocked
     8: boot drained it dry and generated the rest on demand — misses,
     not failures. *)
  let hits_boot, misses_boot = Crypto.Keypool.stats pool in
  Alcotest.(check bool) "signer creation degraded past the stock" true
    (hits_boot > 0 && misses_boot > 0);
  (* Every replenishment fails: the stock stays empty, yet every
     attestation still succeeds. *)
  Fault.with_plan
    (Fault.plan [ ("keypool.replenish", `Always) ])
    (fun () ->
      for i = 1 to 12 do
        let att = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:os ~nonce:(string_of_int i)) in
        Alcotest.(check bool) "attestation verifies" true
          (Tyche.Attestation.verify ~monitor_root:(Tyche.Monitor.attestation_root m) att)
      done);
  Alcotest.(check int) "pool fully drained" 0 (Crypto.Keypool.size pool);
  let tel = Tyche.Monitor.attest_telemetry m in
  Alcotest.(check bool) "telemetry surfaces the miss rate" true (tel.Tyche.Monitor.keypool_miss_rate > 0.);
  Alcotest.(check int) "telemetry stock agrees" 0 tel.Tyche.Monitor.keypool_stock;
  (* With the plan gone the next signature's eager replenish refills the
     stock to target. *)
  ignore (get_ok (Tyche.Monitor.attest m ~caller:os ~domain:os ~nonce:"recover"));
  Alcotest.(check int) "stock recovered" (Crypto.Keypool.target pool) (Crypto.Keypool.size pool);
  (* A single faulted replenishment only delays the refill by one
     signature. *)
  Fault.with_plan
    (Fault.plan [ ("keypool.replenish", `Nth 1) ])
    (fun () -> ignore (get_ok (Tyche.Monitor.attest m ~caller:os ~domain:os ~nonce:"once")));
  ignore (get_ok (Tyche.Monitor.attest m ~caller:os ~domain:os ~nonce:"after"));
  Alcotest.(check bool) "stock healthy again" true
    (Crypto.Keypool.size pool >= Crypto.Keypool.low_water pool)

(* ---------------- session establishment retries ---------------- *)

let tiny = tiny_image ~shared_page:false ()

let two_machines () =
  let wa = boot_x86 ~seed:0xAAL () in
  let wb = boot_x86 ~seed:0xBBL () in
  let ea =
    get_ok_str
      (Libtyche.Enclave.create wa.monitor ~caller:os ~core:0 ~memory_cap:(os_memory_cap wa)
         ~at:0x40000 ~image:tiny ())
  in
  let eb =
    get_ok_str
      (Libtyche.Enclave.create wb.monitor ~caller:os ~core:0 ~memory_cap:(os_memory_cap wb)
         ~at:0x40000 ~image:tiny ())
  in
  (wa, ea, wb, eb)

let reference w =
  { Verifier.tpm_root = Rot.Tpm.endorsement_root w.tpm;
    expected_pcrs = Rot.Boot.expected_pcrs ~firmware ~loader:loader_blob ~monitor_image;
    monitor_root = Tyche.Monitor.attestation_root w.monitor }

let party name w =
  { Distributed.Session.name;
    reference = reference w;
    policy =
      [ Verifier.Policy.Sealed;
        Verifier.Policy.Measurement_is (Libtyche.Enclave.expected_measurement tiny) ] }

let session_fixture nonce =
  let wa, ea, wb, eb = two_machines () in
  let ev_a =
    get_ok_str
      (Distributed.Session.gather_evidence wa.monitor ~domain:ea.Libtyche.Handle.domain ~nonce)
  in
  let ev_b =
    get_ok_str
      (Distributed.Session.gather_evidence wb.monitor ~domain:eb.Libtyche.Handle.domain ~nonce)
  in
  (wa, wb, ev_a, ev_b)

let test_session_retry_after_drop () =
  let wa, wb, ev_a, ev_b = session_fixture "retry-drop" in
  let net = Distributed.Network.create () in
  let adversary n = if n = 1 then ignore (Distributed.Network.drop_head net "broker") in
  match
    Distributed.Session.establish_over net ~broker:"broker" ~adversary ~nonce:"retry-drop"
      ~a:(party "alpha" wa, ev_a) ~b:(party "beta" wb, ev_b) ()
  with
  | Ok ((ka, kb), attempts) ->
    Alcotest.(check int) "succeeded on the retry" 2 attempts;
    Alcotest.(check string) "both sides share the key" ka kb;
    Alcotest.(check int) "32-byte key" 32 (String.length ka)
  | Error e -> Alcotest.failf "establish_over: %s" (Distributed.Session.establish_error_to_string e)

let test_session_retry_after_tamper () =
  let wa, wb, ev_a, ev_b = session_fixture "retry-tamper" in
  let net = Distributed.Network.create () in
  let adversary n =
    if n = 1 then ignore (Distributed.Network.tamper_head net "broker" ~f:(fun s -> "X" ^ s))
  in
  match
    Distributed.Session.establish_over net ~broker:"broker" ~adversary ~nonce:"retry-tamper"
      ~a:(party "alpha" wa, ev_a) ~b:(party "beta" wb, ev_b) ()
  with
  | Ok (_, attempts) -> Alcotest.(check int) "tampered attempt retried" 2 attempts
  | Error e -> Alcotest.failf "establish_over: %s" (Distributed.Session.establish_error_to_string e)

let test_session_retry_under_fault_plan () =
  let wa, wb, ev_a, ev_b = session_fixture "retry-fault" in
  let net = Distributed.Network.create () in
  Fault.with_plan (Fault.nth "net.deliver" 1) (fun () ->
      match
        Distributed.Session.establish_over net ~broker:"broker" ~nonce:"retry-fault"
          ~a:(party "alpha" wa, ev_a) ~b:(party "beta" wb, ev_b) ()
      with
      | Ok (_, attempts) -> Alcotest.(check int) "dropped datagram retried" 2 attempts
      | Error e ->
        Alcotest.failf "establish_over: %s" (Distributed.Session.establish_error_to_string e))

let test_session_timeout () =
  let wa, wb, ev_a, ev_b = session_fixture "timeout" in
  let net = Distributed.Network.create () in
  Fault.with_plan (Fault.always "net.deliver") (fun () ->
      match
        Distributed.Session.establish_over net ~broker:"broker" ~nonce:"timeout"
          ~a:(party "alpha" wa, ev_a) ~b:(party "beta" wb, ev_b) ()
      with
      | Error (Distributed.Session.Timeout { attempts; waited }) ->
        Alcotest.(check int) "budget exhausted" 5 attempts;
        (* backoff 1,2,4,8 then capped at 8 *)
        Alcotest.(check int) "capped exponential backoff" 23 waited
      | Error e ->
        Alcotest.failf "expected Timeout, got %s" (Distributed.Session.establish_error_to_string e)
      | Ok _ -> Alcotest.fail "established over a dead network")

let test_session_reject_no_retry () =
  let wa, wb, ev_a, ev_b = session_fixture "reject" in
  let net = Distributed.Network.create () in
  let bad_party =
    { (party "beta" wb) with
      Distributed.Session.policy =
        [ Verifier.Policy.Measurement_is (Crypto.Sha256.string "other binary") ] }
  in
  (match
     Distributed.Session.establish_over net ~broker:"broker" ~nonce:"reject"
       ~a:(party "alpha" wa, ev_a) ~b:(bad_party, ev_b) ()
   with
  | Error (Distributed.Session.Rejected reasons) ->
    Alcotest.(check bool) "beta blamed" true
      (List.exists (fun r -> contains_substring r "beta") reasons)
  | Error e ->
    Alcotest.failf "expected Rejected, got %s" (Distributed.Session.establish_error_to_string e)
  | Ok _ -> Alcotest.fail "bad policy keyed");
  (* Deterministic failures are not retried: exactly one exchange. *)
  Alcotest.(check int) "no redundant resends" 2 (Distributed.Network.total_messages net)

(* ---------------- fault coverage ---------------- *)

let all_points =
  [ "alloc"; "ept.map"; "ept.unmap"; "iommu.update"; "keypool.replenish"; "keypool.take";
    "net.deliver"; "pmp.write" ]

let test_coverage () =
  Printf.printf "chaos ops executed: %d\n" !total_chaos_ops;
  List.iter
    (fun (n, h, t) -> Printf.printf "  fault point %-18s hits %8d  trips %5d\n" n h t)
    (Fault.report ());
  Printf.printf "%!";
  Alcotest.(check bool) "at least 10k chaos ops" true (!total_chaos_ops >= 10_000);
  let rep = Fault.report () in
  List.iter
    (fun p ->
      match List.find_opt (fun (n, _, _) -> n = p) rep with
      | None -> Alcotest.failf "fault point %s was never registered" p
      | Some (_, hits, trips) ->
        if trips < 1 then Alcotest.failf "fault point %s never tripped" p;
        if hits < trips then Alcotest.failf "fault point %s: %d trips but %d hits" p trips hits)
    all_points

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fault"
    [ ( "points",
        [ Alcotest.test_case "alloc degrades" `Quick test_alloc_fault;
          Alcotest.test_case "keypool take degrades" `Quick test_keypool_take_fault;
          Alcotest.test_case "network drop" `Quick test_net_deliver_fault ] );
      ( "rollback",
        [ Alcotest.test_case "riscv pmp write fault" `Quick test_riscv_pmp_rollback;
          Alcotest.test_case "x86 ept partial map/unmap fault" `Quick test_x86_ept_rollback;
          Alcotest.test_case "destroy_domain is atomic" `Quick test_destroy_rollback;
          Alcotest.test_case "pmp exhaustion (C8) mid-grant" `Quick test_pmp_exhaustion ] );
      ("keypool", [ Alcotest.test_case "drained pool degrades gracefully" `Quick test_keypool_degradation ]);
      ( "session",
        [ Alcotest.test_case "retry after drop" `Quick test_session_retry_after_drop;
          Alcotest.test_case "retry after tamper" `Quick test_session_retry_after_tamper;
          Alcotest.test_case "retry under net.deliver plan" `Quick test_session_retry_under_fault_plan;
          Alcotest.test_case "timeout on dead network" `Quick test_session_timeout;
          Alcotest.test_case "verification failure not retried" `Quick test_session_reject_no_retry ] );
      ( "chaos",
        [ Alcotest.test_case "x86 plans" `Quick test_chaos_x86;
          Alcotest.test_case "riscv plans" `Quick test_chaos_riscv;
          qt prop_chaos_random_seed ] );
      ("coverage", [ Alcotest.test_case "every point tripped" `Quick test_coverage ]) ]
