(* Remote-verifier tests: chain of trust, policies, and end-to-end
   trust decisions. *)

open Testkit

let range ~base ~len = Hw.Addr.Range.make ~base ~len
let page = Hw.Addr.page_size

let reference_values w =
  { Verifier.tpm_root = Rot.Tpm.endorsement_root w.tpm;
    expected_pcrs = Rot.Boot.expected_pcrs ~firmware ~loader:loader_blob ~monitor_image;
    monitor_root = Tyche.Monitor.attestation_root w.monitor }

let test_verify_boot_ok () =
  let w = boot_x86 () in
  let rv = reference_values w in
  let quote = Tyche.Monitor.boot_quote w.monitor ~nonce:"n1" in
  match
    Verifier.Chain.verify_boot ~tpm_root:rv.Verifier.tpm_root
      ~expected_pcrs:rv.Verifier.expected_pcrs
      ~claimed_monitor_root:rv.Verifier.monitor_root ~nonce:"n1" quote
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "boot verification failed: %s" e

let test_verify_boot_rejects_replay () =
  let w = boot_x86 () in
  let rv = reference_values w in
  let quote = Tyche.Monitor.boot_quote w.monitor ~nonce:"old" in
  match
    Verifier.Chain.verify_boot ~tpm_root:rv.Verifier.tpm_root
      ~expected_pcrs:rv.Verifier.expected_pcrs
      ~claimed_monitor_root:rv.Verifier.monitor_root ~nonce:"fresh" quote
  with
  | Error e -> Alcotest.(check bool) "nonce error" true (contains_substring e "nonce")
  | Ok () -> Alcotest.fail "replayed quote accepted"

let test_verify_boot_rejects_wrong_monitor () =
  (* Boot a machine with a DIFFERENT monitor image: PCR 17 diverges. *)
  let machine = Hw.Machine.create () in
  let rng = Crypto.Rng.create ~seed:5L in
  let tpm = Rot.Tpm.create rng in
  let report =
    Rot.Boot.measured_boot tpm machine ~firmware ~loader:loader_blob
      ~monitor_image:"evil-monitor"
  in
  let backend = Backend_x86.create machine () in
  let monitor =
    Tyche.Monitor.boot machine ~backend ~tpm ~rng ~monitor_range:report.Rot.Boot.monitor_range
  in
  let quote = Tyche.Monitor.boot_quote monitor ~nonce:"n" in
  match
    Verifier.Chain.verify_boot ~tpm_root:(Rot.Tpm.endorsement_root tpm)
      ~expected_pcrs:(Rot.Boot.expected_pcrs ~firmware ~loader:loader_blob ~monitor_image)
      ~claimed_monitor_root:(Tyche.Monitor.attestation_root monitor) ~nonce:"n" quote
  with
  | Error e -> Alcotest.(check bool) "PCR mismatch" true (contains_substring e "PCR")
  | Ok () -> Alcotest.fail "wrong monitor accepted"

let test_verify_boot_rejects_key_substitution () =
  (* Correct boot, but the attacker claims a different attestation key:
     the PCR-18 binding catches it. *)
  let w = boot_x86 () in
  let rv = reference_values w in
  let quote = Tyche.Monitor.boot_quote w.monitor ~nonce:"n" in
  let fake_root = Crypto.Sha256.string "attacker key" in
  match
    Verifier.Chain.verify_boot ~tpm_root:rv.Verifier.tpm_root
      ~expected_pcrs:rv.Verifier.expected_pcrs ~claimed_monitor_root:fake_root ~nonce:"n"
      quote
  with
  | Error e -> Alcotest.(check bool) "binding error" true (contains_substring e "bind")
  | Ok () -> Alcotest.fail "key substitution accepted"

let test_verify_boot_rejects_wrong_tpm () =
  let w = boot_x86 () in
  let rv = reference_values w in
  let quote = Tyche.Monitor.boot_quote w.monitor ~nonce:"n" in
  let other_tpm = Rot.Tpm.create (Crypto.Rng.create ~seed:123L) in
  match
    Verifier.Chain.verify_boot ~tpm_root:(Rot.Tpm.endorsement_root other_tpm)
      ~expected_pcrs:rv.Verifier.expected_pcrs
      ~claimed_monitor_root:rv.Verifier.monitor_root ~nonce:"n" quote
  with
  | Error e -> Alcotest.(check bool) "signature error" true (contains_substring e "signature")
  | Ok () -> Alcotest.fail "foreign TPM accepted"

(* Policies *)

let sealed_enclave w =
  let h =
    get_ok_str
      (Libtyche.Enclave.create w.monitor ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x40000 ~image:(tiny_image ()) ())
  in
  h

let attest w domain nonce =
  get_ok (Tyche.Monitor.attest w.monitor ~caller:os ~domain ~nonce)

let test_policy_requirements () =
  let w = boot_x86 () in
  let h = sealed_enclave w in
  let att = attest w h.Libtyche.Handle.domain "n" in
  let image = tiny_image () in
  let code = range ~base:0x40000 ~len:page in
  let shared = range ~base:(0x40000 + (2 * page)) ~len:page in
  (* A policy that should pass. *)
  let good =
    [ Verifier.Policy.Sealed;
      Verifier.Policy.Kind_is Tyche.Domain.Enclave;
      Verifier.Policy.Measurement_is (Libtyche.Enclave.expected_measurement image);
      Verifier.Policy.Region_exclusive code;
      Verifier.Policy.Region_shared_only_with (shared, [ os ]);
      Verifier.Policy.No_foreign_sharing_except [ os ];
      Verifier.Policy.Has_core 0 ]
  in
  (match Verifier.Policy.check good att with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "good policy failed: %s" (String.concat "; " msgs));
  (* Each failing requirement is reported. *)
  let bad =
    [ Verifier.Policy.Kind_is Tyche.Domain.Sandbox;
      Verifier.Policy.Measurement_is (Crypto.Sha256.string "other binary");
      Verifier.Policy.Region_exclusive shared;
      Verifier.Policy.Region_shared_only_with (shared, []);
      Verifier.Policy.No_foreign_sharing_except [];
      Verifier.Policy.Has_core 3;
      Verifier.Policy.Holds_device 0x99 ]
  in
  match Verifier.Policy.check bad att with
  | Ok () -> Alcotest.fail "bad policy passed"
  | Error msgs -> Alcotest.(check int) "all failures reported" 7 (List.length msgs)

let test_policy_unsealed_detected () =
  let w = boot_x86 () in
  let m = w.monitor in
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Enclave) in
  let att = attest w d "n" in
  match Verifier.Policy.check [ Verifier.Policy.Sealed ] att with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unsealed domain passed Sealed policy"

(* The anti-downgrade pin (directed regression for the byzantine
   fuzzer's downgrade attack class): a verifier that requires wire-v2
   batched evidence refuses a v1 direct-signature envelope — even one
   whose signature would verify — and refuses a batch-root signature
   re-wrapped as a direct one. *)
let test_policy_batched_evidence_pin () =
  let w = boot_x86 () in
  let direct = attest w os "v1" in
  let batched =
    List.hd
      (get_ok (Tyche.Monitor.attest_batch w.monitor ~caller:os ~domains:[ os ] ~nonce:"v2"))
  in
  let pin = [ Verifier.Policy.Batched_evidence ] in
  (match Verifier.Policy.check pin batched with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "batched evidence rejected: %s" (String.concat "; " msgs));
  (match Verifier.Policy.check pin direct with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "v1 direct evidence passed the batched pin");
  (* A genuine direct signature still verifies cryptographically — the
     pin is what refuses it; and the re-wrapped batch-root signature
     fails even cryptographically (domain separation). *)
  let root = Tyche.Monitor.attestation_root w.monitor in
  Alcotest.(check bool) "direct verifies" true
    (Tyche.Attestation.verify ~monitor_root:root direct);
  match batched.Tyche.Attestation.evidence with
  | Tyche.Attestation.Signed _ -> Alcotest.fail "batch produced direct evidence"
  | Tyche.Attestation.Batched { root_sig; _ } ->
    let rewrapped =
      { batched with Tyche.Attestation.evidence = Tyche.Attestation.Signed root_sig }
    in
    Alcotest.(check bool) "rewrapped batch root does not verify" false
      (Tyche.Attestation.verify ~monitor_root:root rewrapped)

let test_establish_trust_end_to_end () =
  let w = boot_x86 () in
  let h = sealed_enclave w in
  let rv = reference_values w in
  let nonce = "customer-nonce-1" in
  let decision =
    Verifier.attest_and_decide w.monitor rv ~nonce
      ~domains:
        [ ( h.Libtyche.Handle.domain,
            [ Verifier.Policy.Sealed;
              Verifier.Policy.Measurement_is
                (Libtyche.Enclave.expected_measurement (tiny_image ())) ] ) ]
  in
  Alcotest.(check bool)
    (Format.asprintf "trusted: %a" Verifier.pp_decision decision)
    true decision.Verifier.trusted

let test_establish_trust_detects_wrong_binary () =
  let w = boot_x86 () in
  let h = sealed_enclave w in
  let rv = reference_values w in
  let decision =
    Verifier.attest_and_decide w.monitor rv ~nonce:"n"
      ~domains:
        [ ( h.Libtyche.Handle.domain,
            [ Verifier.Policy.Measurement_is (Crypto.Sha256.string "expected-other-binary") ] ) ]
  in
  Alcotest.(check bool) "rejected" false decision.Verifier.trusted;
  Alcotest.(check bool) "measurement failure named" true
    (List.exists (fun f -> contains_substring f "measurement") decision.Verifier.failures)

let test_establish_trust_unknown_domain () =
  let w = boot_x86 () in
  let rv = reference_values w in
  let decision = Verifier.attest_and_decide w.monitor rv ~nonce:"n" ~domains:[ (77, []) ] in
  Alcotest.(check bool) "rejected" false decision.Verifier.trusted;
  Alcotest.(check bool) "unavailable named" true
    (List.exists (fun f -> contains_substring f "unavailable") decision.Verifier.failures)

(* --- Topology: multi-domain deployment verification --- *)

(* Two enclaves with a shared page (edge), plus a loner enclave. *)
let deployment () =
  let w = boot_x86 ~mem_size:(32 * 1024 * 1024) () in
  let m = w.monitor in
  let image = tiny_image ~shared_page:false () in
  let a =
    get_ok_str
      (Libtyche.Enclave.create m ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x200000 ~image ())
  in
  let b =
    get_ok_str
      (Libtyche.Loader.load m ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x300000 ~image ~kind:Tyche.Domain.Enclave ~seal:false ())
  in
  let c =
    get_ok_str
      (Libtyche.Enclave.create m ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x400000 ~image ())
  in
  (* a shares its .data page with b, then b seals. *)
  let data_cap = Option.get (Libtyche.Handle.segment_cap a ".data") in
  let _ =
    get_ok
      (Tyche.Monitor.share m ~caller:a.Libtyche.Handle.domain ~cap:data_cap
         ~to_:b.Libtyche.Handle.domain ~rights:Cap.Rights.rw
         ~cleanup:Cap.Revocation.Zero ())
  in
  get_ok (Tyche.Monitor.seal m ~caller:os ~domain:b.Libtyche.Handle.domain);
  (w, a, b, c)

let topo_nodes () =
  let meas =
    Libtyche.Enclave.expected_measurement (tiny_image ~shared_page:false ())
  in
  [ { Verifier.Topology.label = "a"; measurement = meas };
    { Verifier.Topology.label = "b"; measurement = meas };
    { Verifier.Topology.label = "c"; measurement = meas } ]

let bindings w (a : Libtyche.Handle.t) b c =
  List.map
    (fun (label, domain) ->
      (label, get_ok (Tyche.Monitor.attest w.monitor ~caller:os ~domain ~nonce:"t")))
    [ ("a", a.Libtyche.Handle.domain); ("b", b.Libtyche.Handle.domain);
      ("c", c.Libtyche.Handle.domain) ]

let test_topology_ok () =
  let w, a, b, c = deployment () in
  let topo =
    Result.get_ok
      (Verifier.Topology.declare ~nodes:(topo_nodes ()) ~edges:[ ("a", "b") ] ())
  in
  match Verifier.Topology.verify topo ~bindings:(bindings w a b c) with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "topology rejected: %s" (String.concat "; " msgs)

let test_topology_detects_undeclared_edge () =
  let w, a, b, c = deployment () in
  (* Declare a and b as unconnected: the shared page is now a backdoor. *)
  let topo =
    Result.get_ok (Verifier.Topology.declare ~nodes:(topo_nodes ()) ~edges:[] ())
  in
  match Verifier.Topology.verify topo ~bindings:(bindings w a b c) with
  | Error msgs ->
    Alcotest.(check bool) "undeclared path named" true
      (List.exists (fun m -> contains_substring m "undeclared") msgs)
  | Ok () -> Alcotest.fail "backdoor sharing accepted"

let test_topology_detects_missing_edge_backing () =
  let w, a, b, c = deployment () in
  (* Declare an edge that does not exist (a--c share nothing). *)
  let topo =
    Result.get_ok
      (Verifier.Topology.declare ~nodes:(topo_nodes ())
         ~edges:[ ("a", "b"); ("a", "c") ] ())
  in
  match Verifier.Topology.verify topo ~bindings:(bindings w a b c) with
  | Error msgs ->
    Alcotest.(check bool) "missing backing named" true
      (List.exists (fun m -> contains_substring m "no region shared") msgs)
  | Ok () -> Alcotest.fail "phantom edge accepted"

let test_topology_detects_wrong_measurement () =
  let w, a, b, c = deployment () in
  let nodes =
    List.map
      (fun n ->
        if n.Verifier.Topology.label = "c" then
          { n with Verifier.Topology.measurement = Crypto.Sha256.string "imposter" }
        else n)
      (topo_nodes ())
  in
  let topo = Result.get_ok (Verifier.Topology.declare ~nodes ~edges:[ ("a", "b") ] ()) in
  match Verifier.Topology.verify topo ~bindings:(bindings w a b c) with
  | Error msgs ->
    Alcotest.(check bool) "measurement mismatch named" true
      (List.exists (fun m -> contains_substring m "measurement") msgs)
  | Ok () -> Alcotest.fail "imposter accepted"

let test_topology_missing_binding () =
  let w, a, b, c = deployment () in
  let topo =
    Result.get_ok (Verifier.Topology.declare ~nodes:(topo_nodes ()) ~edges:[ ("a", "b") ] ())
  in
  let partial = List.filter (fun (l, _) -> l <> "c") (bindings w a b c) in
  match Verifier.Topology.verify topo ~bindings:partial with
  | Error msgs ->
    Alcotest.(check bool) "missing node named" true
      (List.exists (fun m -> contains_substring m "no attestation") msgs)
  | Ok () -> Alcotest.fail "missing node accepted"

let test_topology_declare_validation () =
  let nodes = topo_nodes () in
  (match Verifier.Topology.declare ~nodes ~edges:[ ("a", "a") ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self loop accepted");
  (match Verifier.Topology.declare ~nodes ~edges:[ ("a", "zz") ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown label accepted");
  match Verifier.Topology.declare ~nodes:(nodes @ [ List.hd nodes ]) ~edges:[] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate labels accepted"

let test_topology_edge_discovery () =
  let w, a, b, c = deployment () in
  Alcotest.(check (list (pair string string)))
    "discovered graph" [ ("a", "b") ]
    (Verifier.Topology.edges_of_attestations (bindings w a b c))

let () =
  Alcotest.run "verifier"
    [ ( "chain",
        [ Alcotest.test_case "boot ok" `Quick test_verify_boot_ok;
          Alcotest.test_case "replay rejected" `Quick test_verify_boot_rejects_replay;
          Alcotest.test_case "wrong monitor rejected" `Quick
            test_verify_boot_rejects_wrong_monitor;
          Alcotest.test_case "key substitution rejected" `Quick
            test_verify_boot_rejects_key_substitution;
          Alcotest.test_case "wrong tpm rejected" `Quick test_verify_boot_rejects_wrong_tpm ] );
      ( "policy",
        [ Alcotest.test_case "requirements" `Quick test_policy_requirements;
          Alcotest.test_case "unsealed detected" `Quick test_policy_unsealed_detected;
          Alcotest.test_case "batched-evidence downgrade pin" `Quick
            test_policy_batched_evidence_pin ] );
      ( "decision",
        [ Alcotest.test_case "end to end trusted" `Quick test_establish_trust_end_to_end;
          Alcotest.test_case "wrong binary rejected" `Quick
            test_establish_trust_detects_wrong_binary;
          Alcotest.test_case "unknown domain" `Quick test_establish_trust_unknown_domain ] ) ;
      ( "topology",
        [ Alcotest.test_case "honest deployment passes" `Quick test_topology_ok;
          Alcotest.test_case "undeclared edge detected" `Quick
            test_topology_detects_undeclared_edge;
          Alcotest.test_case "phantom edge detected" `Quick
            test_topology_detects_missing_edge_backing;
          Alcotest.test_case "wrong measurement detected" `Quick
            test_topology_detects_wrong_measurement;
          Alcotest.test_case "missing binding detected" `Quick test_topology_missing_binding;
          Alcotest.test_case "declare validation" `Quick test_topology_declare_validation;
          Alcotest.test_case "edge discovery" `Quick test_topology_edge_discovery ] ) ]
