(* Differential backend test: record one op trace (as wire-encoded
   Api calls), replay it verbatim through a fresh monitor on each
   backend, and require the observable outcomes to agree — attestation
   bodies (canonical payload, signatures excluded), captree
   fingerprints, per-step response shapes, and the obs api.* op counts.
   Cycle stamps are deliberately excluded: the two backends cost the
   same operations differently, and that is fine; what they may not do
   is diverge in state or behavior. *)

open Testkit

let page = Hw.Addr.page_size
let core = 0

(* Both worlds must present identical initial conditions for cap ids in
   the recorded trace to mean the same thing: same core count, no
   devices, same memory size. *)
let worlds () = (boot_x86 ~cores:2 (), boot_riscv ~cores:2 ())

let dispatch w call = Tyche.Api.dispatch w.monitor ~caller:os ~core call

(* Record the trace on a scratch x86 world: the script needs real cap
   ids (carve's result feeds share, share's feeds revoke), so each call
   is dispatched as it is recorded. Only the encoded bytes survive. *)
let recorded_trace () =
  let w = boot_x86 ~cores:2 () in
  let trace = ref [] in
  let run call =
    trace := Tyche.Api.encode call :: !trace;
    dispatch w call
  in
  let cap_of = function
    | Ok (Tyche.Api.R_cap c) -> c
    | _ -> Alcotest.fail "recording: expected a capability result"
  in
  let dom_of = function
    | Ok (Tyche.Api.R_domain d) -> d
    | _ -> Alcotest.fail "recording: expected a domain result"
  in
  let mem = os_memory_cap w in
  let sbx = dom_of (run (Create_domain { name = "diff-sbx"; kind = Tyche.Domain.Sandbox })) in
  let piece = cap_of (run (Carve { cap = mem; subrange = Hw.Addr.Range.make ~base:0x400000 ~len:(2 * page) })) in
  let left, _right =
    match run (Split { cap = piece; at = 0x400000 + page }) with
    | Ok (Tyche.Api.R_cap_pair (a, b)) -> (a, b)
    | _ -> Alcotest.fail "recording: expected a cap pair"
  in
  let shared =
    cap_of
      (run
         (Share
            { cap = left; to_ = sbx; rights = Cap.Rights.rw;
              cleanup = Cap.Revocation.Zero; subrange = None }))
  in
  ignore (run (Set_entry_point { domain = sbx; entry = 0x400000 }));
  ignore (run (Mark_measured { domain = sbx; range = Hw.Addr.Range.make ~base:0x400000 ~len:page }));
  ignore (run (Seal { domain = sbx }));
  ignore (run (Attest { domain = sbx; nonce = "diff-nonce" }));
  ignore (run (Call { target = sbx }));
  ignore (run Return);
  ignore (run (Revoke { cap = shared }));
  ignore (run (Attest { domain = sbx; nonce = "diff-nonce-2" }));
  ignore (run Enumerate);
  (* A denied call must be denied identically on both backends. *)
  ignore (run (Seal { domain = 7777 }));
  List.rev !trace

(* Transition paths are backend-specific by design (vmfunc vs ecall);
   everything else about a response must match verbatim. *)
let summarize_response = function
  | Ok (Tyche.Api.R_path _) -> "ok <transition path>"
  | r -> Format.asprintf "%a" Tyche.Api.pp_response r

type outcome = {
  o_responses : string list;
  o_attest_bodies : Tyche.Attestation.t list;
  o_fingerprint : Cap.Captree.node_spec list * Cap.Captree.cap_id;
  o_api_counts : (string * int) list;
}

let replay w trace =
  Obs.reset ();
  let attests = ref [] in
  let responses =
    List.map
      (fun bytes ->
        let call = get_ok_str ~msg:"decode recorded call" (Tyche.Api.decode bytes) in
        let resp = dispatch w call in
        (match resp with
        | Ok (Tyche.Api.R_attestation a) -> attests := a :: !attests
        | _ -> ());
        summarize_response resp)
      trace
  in
  let tree = Tyche.Monitor.tree w.monitor in
  let api_counts =
    List.filter
      (fun (name, _) -> String.length name > 7 && String.sub name 0 7 = "op.api.")
      (Obs.Metrics.counters ())
  in
  { o_responses = responses;
    o_attest_bodies = List.rev !attests;
    o_fingerprint = (Cap.Captree.dump tree, Cap.Captree.next_id tree);
    o_api_counts = api_counts }

let test_differential () =
  let wx, wr = worlds () in
  (* Initial capability layouts must agree, or replayed cap ids would
     name different resources on the two backends. *)
  let initial w =
    List.map
      (fun c -> (c, Cap.Captree.resource (Tyche.Monitor.tree w.monitor) c))
      (Tyche.Monitor.caps_of w.monitor os)
  in
  Alcotest.(check bool) "initial caps agree" true (initial wx = initial wr);
  let trace = recorded_trace () in
  let ox = replay wx trace in
  let or_ = replay wr trace in
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "step %d: x86 answered %s, riscv answered %s" i a b)
    (List.combine ox.o_responses or_.o_responses);
  Alcotest.(check int) "attestation count" (List.length ox.o_attest_bodies)
    (List.length or_.o_attest_bodies);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "attestation %d body identical" i)
        true
        (Tyche.Fsck.body_equal a b))
    (List.combine ox.o_attest_bodies or_.o_attest_bodies);
  Alcotest.(check bool) "captree fingerprints agree" true
    (ox.o_fingerprint = or_.o_fingerprint);
  Alcotest.(check bool) "api op counts agree" true (ox.o_api_counts = or_.o_api_counts);
  (* Neither replay may leak spans; counts must be non-trivial. *)
  Alcotest.(check bool) "api ops were counted" true
    (List.exists (fun (_, n) -> n > 0) ox.o_api_counts);
  match Obs.check () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "obs self-audit after replay: %s" e

(* ---------------- sharded vs. unsharded ----------------

   The global-id encoding is shard-count invariant for shard 0: a
   workload confined to shard 0's resources must produce identical
   responses, attestation bodies and shard-0 captree fingerprints
   whether the federation has 1 shard or 4. The trace is recorded on a
   scratch 1-shard world (ops need real ids, as above) and replayed
   verbatim through both. *)

let sharded_dispatch t call = Tyche.Sharded.dispatch t ~caller:os ~core call

let sharded_trace () =
  let t = boot_sharded ~shards:1 () in
  let trace = ref [] in
  let run call =
    trace := Tyche.Api.encode call :: !trace;
    sharded_dispatch t call
  in
  let cap_of = function
    | Ok (Tyche.Api.R_cap c) -> c
    | _ -> Alcotest.fail "recording: expected a capability result"
  in
  let dom_of = function
    | Ok (Tyche.Api.R_domain d) -> d
    | _ -> Alcotest.fail "recording: expected a domain result"
  in
  let mem = sharded_os_memory_cap t ~shard:0 in
  let sbx = dom_of (run (Create_domain { name = "diff-sbx"; kind = Tyche.Domain.Sandbox })) in
  let piece = cap_of (run (Carve { cap = mem; subrange = Hw.Addr.Range.make ~base:0x400000 ~len:(2 * page) })) in
  let left, _right =
    match run (Split { cap = piece; at = 0x400000 + page }) with
    | Ok (Tyche.Api.R_cap_pair (a, b)) -> (a, b)
    | _ -> Alcotest.fail "recording: expected a cap pair"
  in
  let shared =
    cap_of
      (run
         (Share
            { cap = left; to_ = sbx; rights = Cap.Rights.rw;
              cleanup = Cap.Revocation.Zero; subrange = None }))
  in
  ignore (run (Set_entry_point { domain = sbx; entry = 0x400000 }));
  ignore (run (Mark_measured { domain = sbx; range = Hw.Addr.Range.make ~base:0x400000 ~len:page }));
  ignore (run (Seal { domain = sbx }));
  ignore (run (Attest { domain = sbx; nonce = "shard-nonce" }));
  ignore (run (Call { target = sbx }));
  ignore (run Return);
  ignore (run (Revoke { cap = shared }));
  (* A short-lived second domain: Destroy exercises the 2PC broadcast
     path on the N-shard side and the degenerate 1-shard path. *)
  let tmp = dom_of (run (Create_domain { name = "diff-tmp"; kind = Tyche.Domain.Sandbox })) in
  (* Carving invalidated the old root: re-query the OS's largest piece
     (deterministic, so the recorded id means the same on replay). *)
  let mem2 = sharded_os_memory_cap t ~shard:0 in
  let piece2 = cap_of (run (Carve { cap = mem2; subrange = Hw.Addr.Range.make ~base:0x100000 ~len:page })) in
  ignore
    (run
       (Share
          { cap = piece2; to_ = tmp; rights = Cap.Rights.read_only;
            cleanup = Cap.Revocation.Keep; subrange = None }));
  ignore (run (Destroy { domain = tmp }));
  ignore (run (Attest { domain = sbx; nonce = "shard-nonce-2" }));
  (* Denied calls must be denied identically at every shard count. *)
  ignore (run (Seal { domain = 7777 }));
  (sbx, List.rev !trace)

type sharded_outcome = {
  s_responses : string list;
  s_attest_bodies : Tyche.Attestation.t list;
  s_fingerprint : Cap.Captree.node_spec list * Cap.Captree.cap_id;
  s_sbx_caps : Cap.Captree.cap_id list;
}

let sharded_replay t sbx trace =
  let attests = ref [] in
  let responses =
    List.map
      (fun bytes ->
        let call = get_ok_str ~msg:"decode recorded call" (Tyche.Api.decode bytes) in
        let resp = sharded_dispatch t call in
        (match resp with
        | Ok (Tyche.Api.R_attestation a) -> attests := a :: !attests
        | _ -> ());
        summarize_response resp)
      trace
  in
  let tree = Tyche.Monitor.tree (Tyche.Sharded.shard_monitor t 0) in
  { s_responses = responses;
    s_attest_bodies = List.rev !attests;
    s_fingerprint = (Cap.Captree.dump tree, Cap.Captree.next_id tree);
    s_sbx_caps = Tyche.Sharded.caps_of t sbx }

let test_sharded_differential () =
  let sbx, trace = sharded_trace () in
  let o1 = sharded_replay (boot_sharded ~shards:1 ()) sbx trace in
  let o4 = sharded_replay (boot_sharded ~shards:4 ()) sbx trace in
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "step %d: 1-shard answered %s, 4-shard answered %s" i a b)
    (List.combine o1.s_responses o4.s_responses);
  Alcotest.(check int) "attestation count" (List.length o1.s_attest_bodies)
    (List.length o4.s_attest_bodies);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "attestation %d body identical" i)
        true
        (Tyche.Fsck.body_equal a b))
    (List.combine o1.s_attest_bodies o4.s_attest_bodies);
  Alcotest.(check bool) "shard-0 captree fingerprints agree" true
    (o1.s_fingerprint = o4.s_fingerprint);
  Alcotest.(check bool) "sandbox capability sets agree" true (o1.s_sbx_caps = o4.s_sbx_caps)

let () =
  Alcotest.run "differential"
    [
      ("backends", [ Alcotest.test_case "x86 vs riscv replay" `Quick test_differential ]);
      ( "sharding",
        [ Alcotest.test_case "1 shard vs 4 shards replay" `Quick test_sharded_differential ] );
    ]
