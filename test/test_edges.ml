(* Edge cases and error paths across the stack: the small contracts that
   don't fit the feature-oriented suites. *)

open Testkit

let range ~base ~len = Hw.Addr.Range.make ~base ~len

(* Monitor surface *)

let test_monitor_split_ownership () =
  let w = boot_x86 () in
  let m = w.monitor in
  let cap = os_memory_cap w in
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox) in
  (* Non-owner cannot split. *)
  (match Tyche.Monitor.split m ~caller:d ~cap ~at:0x10000 with
  | Error (Tyche.Monitor.Denied _) -> ()
  | _ -> Alcotest.fail "non-owner split accepted");
  let l, r = get_ok (Tyche.Monitor.split m ~caller:os ~cap ~at:0x10000) in
  Alcotest.(check bool) "both pieces owned by os" true
    (Cap.Captree.owner (Tyche.Monitor.tree m) l = Some os
     && Cap.Captree.owner (Tyche.Monitor.tree m) r = Some os);
  (* The OS can still touch memory on both sides of the cut. *)
  get_ok (Tyche.Monitor.store m ~core:0 0x8000 1);
  get_ok (Tyche.Monitor.store m ~core:0 0x18000 1);
  check_no_violations m

let test_monitor_bad_core_arguments () =
  let w = boot_x86 ~cores:2 () in
  let m = w.monitor in
  expect_error (Tyche.Monitor.call m ~core:9 ~target:os);
  expect_error (Tyche.Monitor.timer_tick m ~core:9);
  expect_error (Tyche.Monitor.load m ~core:(-1) 0);
  expect_error (Tyche.Monitor.route_interrupt m ~caller:os ~device:1 ~vector:3 ~core:9);
  expect_error (Tyche.Monitor.get_reg m ~core:0 99)

let test_attest_unknown_parties () =
  let w = boot_x86 () in
  expect_error (Tyche.Monitor.attest w.monitor ~caller:42 ~domain:os ~nonce:"n");
  expect_error (Tyche.Monitor.attest w.monitor ~caller:os ~domain:42 ~nonce:"n")

let test_attestation_payload_deterministic () =
  let w = boot_x86 () in
  let att1 = get_ok (Tyche.Monitor.attest w.monitor ~caller:os ~domain:os ~nonce:"same") in
  let att2 = get_ok (Tyche.Monitor.attest w.monitor ~caller:os ~domain:os ~nonce:"same") in
  Alcotest.(check string) "payload bytes deterministic"
    (Tyche.Attestation.payload att1) (Tyche.Attestation.payload att2)

let test_carve_unaligned_grant_refused () =
  (* The captree happily carves byte-granular ranges; the EPT backend
     refuses them at delegation time. *)
  let w = boot_x86 () in
  let m = w.monitor in
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox) in
  let piece =
    get_ok
      (Tyche.Monitor.carve m ~caller:os ~cap:(os_memory_cap w)
         ~subrange:(range ~base:0x10008 ~len:100))
  in
  match
    Tyche.Monitor.grant m ~caller:os ~cap:piece ~to_:d ~rights:Cap.Rights.rw
      ~cleanup:Cap.Revocation.Keep
  with
  | Error (Tyche.Monitor.Backend_refused _) -> ()
  | _ -> Alcotest.fail "unaligned grant accepted by the EPT backend"

(* Boot / machine construction *)

let test_boot_image_too_large () =
  let machine = Hw.Machine.create ~mem_size:(1024 * 1024) () in
  let tpm = Rot.Tpm.create (Crypto.Rng.create ~seed:1L) in
  Alcotest.check_raises "oversized monitor"
    (Invalid_argument "Boot.measured_boot: monitor image too large") (fun () ->
      ignore
        (Rot.Boot.measured_boot tpm machine ~firmware:"f" ~loader:"l"
           ~monitor_image:(String.make (2 * 1024 * 1024) 'M')))

let test_machine_validation () =
  Alcotest.check_raises "zero cores"
    (Invalid_argument "Machine.create: need at least one core") (fun () ->
      ignore (Hw.Machine.create ~cores:0 ()));
  Alcotest.check_raises "unaligned memory"
    (Invalid_argument "Physmem.create: size must be positive and page-aligned") (fun () ->
      ignore (Hw.Physmem.create ~size:12345))

let test_tpm_pcr_bounds () =
  let tpm = Rot.Tpm.create (Crypto.Rng.create ~seed:2L) in
  Alcotest.check_raises "pcr out of range" (Invalid_argument "Tpm: PCR index out of range")
    (fun () -> Rot.Tpm.extend tpm ~pcr:24 (Crypto.Sha256.string "x"));
  (* Extend-only semantics: the same value extended twice gives a new
     value both times (no reset). *)
  let m = Crypto.Sha256.string "event" in
  Rot.Tpm.extend tpm ~pcr:1 m;
  let after_one = Rot.Tpm.read_pcr tpm 1 in
  Rot.Tpm.extend tpm ~pcr:1 m;
  Alcotest.(check bool) "second extend changes the value" false
    (Crypto.Sha256.equal after_one (Rot.Tpm.read_pcr tpm 1))

(* Channels *)

let test_channel_loses_privacy_on_extra_share () =
  let w = boot_x86 () in
  let m = w.monitor in
  let h =
    get_ok_str
      (Libtyche.Enclave.create m ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x40000 ~image:(tiny_image ()) ())
  in
  let data_cap = Option.get (Libtyche.Handle.segment_cap h ".data") in
  let data_range = Option.get (Libtyche.Handle.segment_range h ".data") in
  let ch =
    get_ok_str
      (Libtyche.Channel.create m ~owner:h.Libtyche.Handle.domain ~peer:os
         ~memory_cap:data_cap ~range:data_range ())
  in
  Alcotest.(check bool) "private at creation" true (Libtyche.Channel.is_private ch m);
  (* The enclave (unwisely) shares the same page with a third domain:
     the channel is no longer private — and any verifier can see it. *)
  let third = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"third" ~kind:Tyche.Domain.Sandbox) in
  let ch_cap =
    List.find
      (fun c ->
        match Cap.Captree.resource (Tyche.Monitor.tree m) c with
        | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.overlaps r data_range
        | _ -> false)
      (Tyche.Monitor.caps_of m h.Libtyche.Handle.domain)
  in
  let _ =
    get_ok
      (Tyche.Monitor.share m ~caller:h.Libtyche.Handle.domain ~cap:ch_cap ~to_:third
         ~rights:Cap.Rights.read_only ~cleanup:Cap.Revocation.Keep ())
  in
  Alcotest.(check bool) "no longer private" false (Libtyche.Channel.is_private ch m)

(* Distributed sessions *)

let test_session_evidence_nonce_mismatch () =
  let w = boot_x86 () in
  let h =
    get_ok_str
      (Libtyche.Enclave.create w.monitor ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x40000 ~image:(tiny_image ~shared_page:false ()) ())
  in
  let stale =
    get_ok_str
      (Distributed.Session.gather_evidence w.monitor ~domain:h.Libtyche.Handle.domain
         ~nonce:"yesterday")
  in
  let party =
    { Distributed.Session.name = "m";
      reference =
        { Verifier.tpm_root = Rot.Tpm.endorsement_root w.tpm;
          expected_pcrs = Rot.Boot.expected_pcrs ~firmware ~loader:loader_blob ~monitor_image;
          monitor_root = Tyche.Monitor.attestation_root w.monitor };
      policy = [] }
  in
  match
    Distributed.Session.establish ~nonce:"today" ~a:(party, stale) ~b:(party, stale)
  with
  | Error msgs ->
    Alcotest.(check bool) "nonce named" true
      (List.exists (fun m -> contains_substring m "nonce") msgs)
  | Ok _ -> Alcotest.fail "stale evidence keyed a session"

(* Attestation wire format *)

let test_attestation_wire_roundtrip () =
  let w = boot_x86 () in
  let m = w.monitor in
  let h =
    get_ok_str
      (Libtyche.Enclave.create m ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x40000 ~image:(tiny_image ()) ())
  in
  let att = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:h.Libtyche.Handle.domain ~nonce:"wire") in
  let wire = Tyche.Attestation.to_wire att in
  (* Ship over the untrusted network as raw bytes. *)
  let net = Distributed.Network.create () in
  Distributed.Network.send net ~from_:"host" ~to_:"verifier" wire;
  let received = Option.get (Distributed.Network.recv net "verifier") in
  (match Tyche.Attestation.of_wire received with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok att' ->
    Alcotest.(check bool) "reconstructed report verifies" true
      (Tyche.Attestation.verify ~monitor_root:(Tyche.Monitor.attestation_root m) att');
    Alcotest.(check int) "fields preserved" att.Tyche.Attestation.domain
      att'.Tyche.Attestation.domain;
    Alcotest.(check int) "regions preserved"
      (List.length att.Tyche.Attestation.regions)
      (List.length att'.Tyche.Attestation.regions);
    Alcotest.(check string) "nonce preserved" att.Tyche.Attestation.nonce
      att'.Tyche.Attestation.nonce)

(* Flip one byte at EVERY offset of an envelope: each flip must break
   the parse or the verification — no byte of the wire format may be
   unauthenticated (redundant index fields and ignored high bits were
   historically exactly such holes). *)
let assert_every_byte_authenticated ~what ~root wire =
  for i = 0 to String.length wire - 1 do
    let tampered = Bytes.of_string wire in
    Bytes.set tampered i (Char.chr (Char.code (Bytes.get tampered i) lxor 0x01));
    match Tyche.Attestation.of_wire (Bytes.to_string tampered) with
    | Error _ -> ()
    | Ok att' ->
      if Tyche.Attestation.verify ~monitor_root:root att' then
        Alcotest.failf "%s: tampered byte %d of %d accepted" what i (String.length wire)
  done

let test_attestation_wire_tamper () =
  let w = boot_x86 () in
  let m = w.monitor in
  let root = Tyche.Monitor.attestation_root m in
  let att = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:os ~nonce:"t") in
  let wire = Tyche.Attestation.to_wire att in
  assert_every_byte_authenticated ~what:"v1" ~root wire;
  (* Same property for the proof-carrying batched envelope. *)
  let d = get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"peer" ~kind:Tyche.Domain.Sandbox) in
  let atts = get_ok (Tyche.Monitor.attest_batch m ~caller:os ~domains:[ os; d ] ~nonce:"t2") in
  List.iter
    (fun a -> assert_every_byte_authenticated ~what:"v2" ~root (Tyche.Attestation.to_wire a))
    atts;
  (* Truncation is rejected outright. *)
  (match Tyche.Attestation.of_wire (String.sub wire 0 (String.length wire / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated wire parsed")

(* Round-trip property over randomized reports: v1 and v2 envelopes
   must reproduce the exact report (and hence the exact wire bytes).
   The evidence is fixed — produced once by a real monitor — because
   the property targets the codec, not the crypto. *)
let wire_evidence =
  lazy
    (let w = boot_x86 () in
     let m = w.monitor in
     let v1 = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:os ~nonce:"fix") in
     let d =
       get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"d" ~kind:Tyche.Domain.Sandbox)
     in
     let batch = get_ok (Tyche.Monitor.attest_batch m ~caller:os ~domains:[ os; d ] ~nonce:"fix") in
     (v1.Tyche.Attestation.evidence, (List.nth batch 1).Tyche.Attestation.evidence))

let gen_report =
  QCheck.Gen.(
    let nul_free =
      string_size ~gen:(map (fun c -> if c = '\x00' then 'a' else c) char) (0 -- 12)
    in
    let region =
      map3
        (fun (base, len) (r, w, x) (holders, measured) ->
          { Tyche.Attestation.range =
              Hw.Addr.Range.make ~base:(base * 0x1000) ~len:((len + 1) * 0x1000);
            perm = { Hw.Perm.read = r; write = w; exec = x };
            refcount = List.length holders;
            holders;
            measured })
        (pair (0 -- 10000) (0 -- 64))
        (triple bool bool bool)
        (pair (list_size (0 -- 6) (0 -- 1000)) bool)
    in
    let pairs = list_size (0 -- 4) (pair (0 -- 100) (0 -- 100)) in
    (fun evidence ->
      map
        (fun ((domain, name, kind, sealed), (measurement, regions, cores, devices), (enc, nonce)) ->
          { Tyche.Attestation.domain;
            domain_name = name;
            kind;
            sealed;
            measurement;
            regions;
            cores;
            devices;
            memory_encrypted = enc;
            nonce;
            evidence })
        (triple
           (quad (0 -- 100000) nul_free
              (oneofl
                 [ Tyche.Domain.Os; Tyche.Domain.Sandbox; Tyche.Domain.Enclave;
                   Tyche.Domain.Confidential_vm; Tyche.Domain.Io_domain ])
              bool)
           (quad
              (option (map (fun s -> Crypto.Sha256.string s) (string_size (0 -- 8))))
              (list_size (0 -- 5) region) pairs pairs)
           (pair bool (string_size (0 -- 30))))))

let prop_attestation_wire_roundtrip_random which =
  QCheck.Test.make
    ~name:(Printf.sprintf "attestation: %s wire roundtrip on random reports" which)
    ~count:100
    (QCheck.make (fun st ->
         let v1, v2 = Lazy.force wire_evidence in
         gen_report (if which = "v1" then v1 else v2) st))
    (fun att ->
      let wire = Tyche.Attestation.to_wire att in
      match Tyche.Attestation.of_wire wire with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok att' -> att' = att && Tyche.Attestation.to_wire att' = wire)

let prop_attestation_wire_garbage =
  QCheck.Test.make ~name:"attestation: of_wire total on garbage" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun junk ->
      match Tyche.Attestation.of_wire junk with Ok _ -> true | Error _ -> true)

(* Lattice algebra properties *)

let prop_rights_attenuation_reflexive_transitive =
  QCheck.Test.make ~name:"rights: attenuation is reflexive and transitive" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let rights =
           oneofl
             [ Cap.Rights.full; Cap.Rights.rw; Cap.Rights.rx; Cap.Rights.read_only;
               Cap.Rights.exclusive_use ]
         in
         triple rights rights rights))
    (fun (a, b, c) ->
      Cap.Rights.attenuates ~parent:a ~child:a
      && ((not (Cap.Rights.attenuates ~parent:a ~child:b
                && Cap.Rights.attenuates ~parent:b ~child:c))
          || Cap.Rights.attenuates ~parent:a ~child:c))

let prop_revocation_strongest_join =
  QCheck.Test.make ~name:"revocation: strongest is a commutative upper bound" ~count:100
    (QCheck.make
       QCheck.Gen.(
         let pol =
           oneofl
             [ Cap.Revocation.Keep; Cap.Revocation.Zero; Cap.Revocation.Flush_cache;
               Cap.Revocation.Zero_and_flush ]
         in
         pair pol pol))
    (fun (a, b) ->
      let j = Cap.Revocation.strongest a b in
      Cap.Revocation.equal j (Cap.Revocation.strongest b a)
      && (Cap.Revocation.zeroes_memory j
          = (Cap.Revocation.zeroes_memory a || Cap.Revocation.zeroes_memory b))
      && (Cap.Revocation.flushes_cache j
          = (Cap.Revocation.flushes_cache a || Cap.Revocation.flushes_cache b)))

let prop_perm_subsumes_partial_order =
  QCheck.Test.make ~name:"perm: subsumes is a partial order" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let perm =
           map3
             (fun read write exec -> { Hw.Perm.read; write; exec })
             bool bool bool
         in
         pair perm perm))
    (fun (a, b) ->
      Hw.Perm.subsumes a a
      && ((not (Hw.Perm.subsumes a b && Hw.Perm.subsumes b a)) || Hw.Perm.equal a b))

(* Topology allow_outside *)

let test_topology_allow_outside () =
  let w = boot_x86 () in
  let m = w.monitor in
  let image = tiny_image () (* has a .shared page the OS keeps *) in
  let h =
    get_ok_str
      (Libtyche.Enclave.create m ~caller:os ~core:0 ~memory_cap:(os_memory_cap w)
         ~at:0x40000 ~image ())
  in
  let node =
    { Verifier.Topology.label = "svc";
      measurement = Libtyche.Enclave.expected_measurement image }
  in
  let att = get_ok (Tyche.Monitor.attest m ~caller:os ~domain:h.Libtyche.Handle.domain ~nonce:"t") in
  (* Without the allowance, the OS-shared mailbox fails the topology... *)
  let strict = Result.get_ok (Verifier.Topology.declare ~nodes:[ node ] ~edges:[] ()) in
  (match Verifier.Topology.verify strict ~bindings:[ ("svc", att) ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "OS mailbox passed a strict topology");
  (* ...with it, the deployment is accepted. *)
  let lax =
    Result.get_ok
      (Verifier.Topology.declare ~nodes:[ node ] ~edges:[] ~allow_outside:[ os ] ())
  in
  match Verifier.Topology.verify lax ~bindings:[ ("svc", att) ] with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "allow_outside ignored: %s" (String.concat ";" msgs)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "edges"
    [ ( "monitor",
        [ Alcotest.test_case "split ownership" `Quick test_monitor_split_ownership;
          Alcotest.test_case "bad core arguments" `Quick test_monitor_bad_core_arguments;
          Alcotest.test_case "attest unknown parties" `Quick test_attest_unknown_parties;
          Alcotest.test_case "payload deterministic" `Quick
            test_attestation_payload_deterministic;
          Alcotest.test_case "unaligned grant refused" `Quick
            test_carve_unaligned_grant_refused ] );
      ( "construction",
        [ Alcotest.test_case "oversized monitor image" `Quick test_boot_image_too_large;
          Alcotest.test_case "machine validation" `Quick test_machine_validation;
          Alcotest.test_case "tpm pcr bounds" `Quick test_tpm_pcr_bounds ] );
      ( "composition",
        [ Alcotest.test_case "channel privacy decays" `Quick
            test_channel_loses_privacy_on_extra_share;
          Alcotest.test_case "session nonce mismatch" `Quick
            test_session_evidence_nonce_mismatch;
          Alcotest.test_case "topology allow_outside" `Quick test_topology_allow_outside ] );
      ( "wire",
        [ Alcotest.test_case "attestation roundtrip over network" `Quick
            test_attestation_wire_roundtrip;
          Alcotest.test_case "attestation tamper/truncation" `Quick
            test_attestation_wire_tamper;
          qt (prop_attestation_wire_roundtrip_random "v1");
          qt (prop_attestation_wire_roundtrip_random "v2");
          QCheck_alcotest.to_alcotest prop_attestation_wire_garbage ] );
      ( "algebra",
        [ qt prop_rights_attenuation_reflexive_transitive;
          qt prop_revocation_strongest_join;
          qt prop_perm_subsumes_partial_order ] ) ]
