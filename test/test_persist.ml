(* Durability layer tests: CRC framing, WAL truncation semantics
   (qcheck over random cut points and bit flips), directed crash-restart
   recovery on both backends, and the fault plan/suspend re-entrancy
   contract the store's injection points rely on. *)

open Testkit

let os = Tyche.Domain.initial

(* --- fixtures -------------------------------------------------------- *)

(* A fresh machine/backend/tpm for recovery to rebuild onto (the crashed
   monitor's in-memory state is gone; only the store survives). The
   measured boot is deterministic, so the monitor range matches the
   original machine's. *)
let fresh_target arch =
  match arch with
  | `X86 ->
    let machine = Hw.Machine.create ~arch:Hw.Cpu.X86_64 ~cores:4 ~mem_size:(16 * 1024 * 1024) () in
    let rng = Crypto.Rng.create ~seed:0x99L in
    let tpm = Rot.Tpm.create rng in
    let br = Rot.Boot.measured_boot tpm machine ~firmware ~loader:loader_blob ~monitor_image in
    (machine, Backend_x86.create machine (), tpm, rng, br.Rot.Boot.monitor_range)
  | `Riscv ->
    let machine = Hw.Machine.create ~arch:Hw.Cpu.Riscv64 ~cores:2 ~mem_size:(16 * 1024 * 1024) () in
    let rng = Crypto.Rng.create ~seed:0x98L in
    let tpm = Rot.Tpm.create rng in
    let br = Rot.Boot.measured_boot tpm machine ~firmware ~loader:loader_blob ~monitor_image in
    let backend = Backend_riscv.create machine ~monitor_range:br.Rot.Boot.monitor_range () in
    (machine, backend, tpm, rng, br.Rot.Boot.monitor_range)

let boot_arch = function `X86 -> boot_x86 () | `Riscv -> boot_riscv ()

let recover_from arch store =
  let machine, backend, tpm, rng, monitor_range = fresh_target arch in
  Tyche.Monitor.recover machine ~store ~backend ~tpm ~rng ~monitor_range

(* Ten committed operations covering every record family the WAL can
   carry except destroy/timer (exercised separately and by chaos). *)
let workload w =
  let m = w.monitor in
  let sbx =
    get_ok (Tyche.Monitor.create_domain m ~caller:os ~name:"sbx" ~kind:Tyche.Domain.Sandbox)
  in
  let mem = os_memory_cap w in
  let tree = Tyche.Monitor.tree m in
  let base =
    match Cap.Captree.resource tree mem with
    | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.base r
    | _ -> Alcotest.fail "os memory cap is not memory"
  in
  let sub = Hw.Addr.Range.make ~base ~len:4096 in
  let carved = get_ok (Tyche.Monitor.carve m ~caller:os ~cap:mem ~subrange:sub) in
  let _ =
    get_ok
      (Tyche.Monitor.share m ~caller:os ~cap:carved ~to_:sbx ~rights:Cap.Rights.rw
         ~cleanup:Cap.Revocation.Zero ())
  in
  let core0 = os_core_cap w 0 in
  let _ =
    get_ok
      (Tyche.Monitor.share m ~caller:os ~cap:core0 ~to_:sbx ~rights:Cap.Rights.full
         ~cleanup:Cap.Revocation.Keep ())
  in
  get_ok (Tyche.Monitor.set_entry_point m ~caller:os ~domain:sbx base);
  get_ok (Tyche.Monitor.set_flush_policy m ~caller:os ~domain:sbx true);
  get_ok (Tyche.Monitor.mark_measured m ~caller:os ~domain:sbx sub);
  get_ok (Tyche.Monitor.seal m ~caller:os ~domain:sbx);
  let _ = get_ok (Tyche.Monitor.call m ~core:0 ~target:sbx) in
  let _ = get_ok (Tyche.Monitor.ret m ~core:0) in
  sbx

let workload_ops = 10

(* Structural fingerprint of everything the durability layer promises to
   preserve: the tree (nodes, lineage, counters), domain configuration,
   and per-core scheduling. *)
let fingerprint m =
  let tree = Tyche.Monitor.tree m in
  let doms =
    List.map
      (fun d ->
        ( Tyche.Domain.id d,
          Tyche.Domain.name d,
          Tyche.Domain.kind d,
          Tyche.Domain.created_by d,
          Tyche.Domain.is_sealed d,
          Tyche.Domain.entry_point d,
          Tyche.Domain.measured_ranges d,
          Tyche.Domain.flush_on_transition d,
          Option.map Crypto.Sha256.to_raw (Tyche.Domain.measurement d) ))
      (Tyche.Monitor.domains m)
  in
  let ncores = Array.length (Tyche.Monitor.machine m).Hw.Machine.cores in
  let sched =
    List.init ncores (fun core ->
        (Tyche.Monitor.current_domain m ~core, Tyche.Monitor.call_depth m ~core))
  in
  (Cap.Captree.dump tree, Cap.Captree.next_id tree, doms, sched)

let check_fingerprint_eq a b =
  Alcotest.(check bool) "recovered state structurally identical" true (a = b)

let attest_all m =
  List.map
    (fun d ->
      let id = Tyche.Domain.id d in
      (id, get_ok (Tyche.Monitor.attest m ~caller:os ~domain:id ~nonce:"fsck-nonce")))
    (Tyche.Monitor.domains m)

let check_fsck ?baseline m =
  let r = Tyche.Fsck.check ?baseline m in
  if not (Tyche.Fsck.ok r) then
    Alcotest.failf "fsck: %s" (Format.asprintf "%a" Tyche.Fsck.pp r)

(* --- CRC and framing -------------------------------------------------- *)

let test_crc_vectors () =
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926 (Persist.Crc32.digest "123456789");
  Alcotest.(check int) "crc32(empty)" 0 (Persist.Crc32.digest "");
  Alcotest.(check int) "digest_sub agrees" (Persist.Crc32.digest "456")
    (Persist.Crc32.digest_sub "123456789" ~pos:3 ~len:3)

let test_frame_roundtrip () =
  let records = [ (1, "alpha"); (2, ""); (3, String.make 300 'x') ] in
  let blob = String.concat "" (List.map (fun (seq, p) -> Persist.Wal.frame ~seq p) records) in
  let r = Persist.Wal.parse blob in
  Alcotest.(check bool) "not truncated" false r.Persist.Wal.truncated;
  Alcotest.(check int) "valid bytes" (String.length blob) r.Persist.Wal.valid_bytes;
  Alcotest.(check (list (pair int string))) "records" records r.Persist.Wal.records

let test_op_roundtrip () =
  let rights =
    { Persist.Op.r_read = true; r_write = false; r_exec = true; r_share = false; r_grant = true }
  in
  let ops =
    [ Persist.Op.Create_domain { caller = 0; name = "enclave-1"; kind = 2 };
      Persist.Op.Set_entry_point { caller = 0; domain = 3; entry = 0x40_0000 };
      Persist.Op.Set_flush_policy { caller = 1; domain = 3; flush = true };
      Persist.Op.Mark_measured { caller = 0; domain = 3; base = 4096; len = 8192 };
      Persist.Op.Seal { caller = 0; domain = 3; measurement = String.make 32 '\x7f' };
      Persist.Op.Destroy_domain { caller = 0; domain = 3 };
      Persist.Op.Share { caller = 0; cap = 7; to_ = 3; rights; cleanup = 1; sub = Some (0, 4096) };
      Persist.Op.Share { caller = 0; cap = 7; to_ = 3; rights; cleanup = 0; sub = None };
      Persist.Op.Grant { caller = 2; cap = 9; to_ = 4; rights; cleanup = 3 };
      Persist.Op.Split { caller = 0; cap = 5; at = 12288 };
      Persist.Op.Carve { caller = 0; cap = 5; base = 4096; len = 4096 };
      Persist.Op.Revoke { caller = 0; cap = 11 };
      Persist.Op.Call { core = 1; target = 3 };
      Persist.Op.Ret { core = 1 };
      Persist.Op.Timer_tick { core = 0 } ]
  in
  List.iter
    (fun op ->
      let back = Persist.Op.decode (Persist.Op.encode op) in
      Alcotest.(check bool)
        (Format.asprintf "%a" Persist.Op.pp op)
        true (op = back))
    ops

(* A pool of valid framed records to cut and corrupt. *)
let sample_blob n =
  let buf = Buffer.create 256 in
  for seq = 1 to n do
    Buffer.add_string buf
      (Persist.Wal.frame ~seq (Printf.sprintf "payload-%d-%s" seq (String.make (seq mod 7) 'z')))
  done;
  Buffer.contents buf

let is_prefix_of shorter longer =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go xs ys
  in
  go shorter longer

let qcheck_truncation =
  let full = sample_blob 20 in
  let all = (Persist.Wal.parse full).Persist.Wal.records in
  QCheck.Test.make ~name:"wal: every cut recovers a prefix, never raises" ~count:300
    QCheck.(int_bound (String.length full))
    (fun cut ->
      let r = Persist.Wal.parse (String.sub full 0 cut) in
      if not (is_prefix_of r.Persist.Wal.records all) then
        QCheck.Test.fail_reportf "cut %d: not a prefix" cut;
      if r.Persist.Wal.valid_bytes > cut then
        QCheck.Test.fail_reportf "cut %d: trusted bytes beyond the cut" cut;
      true)

let qcheck_bitflip =
  let full = sample_blob 20 in
  let all = (Persist.Wal.parse full).Persist.Wal.records in
  QCheck.Test.make ~name:"wal: any single bit flip yields a clean prefix" ~count:300
    QCheck.(pair (int_bound (String.length full - 1)) (int_bound 7))
    (fun (pos, bit) ->
      let b = Bytes.of_string full in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      let r = Persist.Wal.parse (Bytes.to_string b) in
      (* The flipped record (or one of its successors, if the flip
         landed in a length field) must not survive verbatim AND the
         result must still be a prefix of the original history. *)
      if not (is_prefix_of r.Persist.Wal.records all) then
        QCheck.Test.fail_reportf "flip at %d.%d: corrupt record admitted" pos bit;
      true)

(* --- directed recovery ------------------------------------------------ *)

let test_clean_recover arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  let baseline = attest_all w.monitor in
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  Alcotest.(check int) "all records replayed" workload_ops report.Tyche.Monitor.rr_replayed;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck ~baseline m2;
  check_no_violations m2

let test_crash_on_append arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  (match Fault.with_plan (Fault.nth "wal.append" 5) (fun () -> ignore (workload w)) with
  | () -> Alcotest.fail "expected a crash at the 5th append"
  | exception Persist.Store.Crash _ -> ());
  let m2, report = get_ok_str (recover_from arch store) in
  (* Records 1-4 were fsynced; the torn 5th record survives only if the
     deterministic tear kept all its bytes. Either way: a consistent
     prefix, never more. *)
  let seq = report.Tyche.Monitor.rr_seq in
  if seq < 4 || seq > 5 then Alcotest.failf "recovered seq %d outside the 4-5 window" seq;
  check_fsck m2;
  check_no_violations m2

let test_fsync_loses_pending arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ~fsync_every:3 ();
  let fp_baseline = fingerprint w.monitor in
  (match Fault.with_plan (Fault.always "wal.fsync") (fun () -> ignore (workload w)) with
  | () -> Alcotest.fail "expected a crash at the first fsync"
  | exception Persist.Store.Crash _ -> ());
  let m2, report = get_ok_str (recover_from arch store) in
  (* The first fsync (after record 3) lost the whole pending buffer:
     nothing but the boot baseline is durable. *)
  Alcotest.(check int) "all unsynced records lost" 0 report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp_baseline (fingerprint m2);
  check_fsck m2

let test_crash_on_snapshot arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  let baseline = attest_all w.monitor in
  (match
     Fault.with_plan (Fault.always "snapshot.write") (fun () ->
         Tyche.Monitor.persist_snapshot w.monitor)
   with
  | () -> Alcotest.fail "expected a crash during the snapshot"
  | exception Persist.Store.Crash _ -> ());
  (* The torn snapshot is detected and skipped; the WAL was not yet
     reset, so recovery lands on the exact pre-crash state — and a fresh
     attestation over it is byte-identical in body to one taken before
     the crash (the acceptance criterion, checked literally here). *)
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  Alcotest.(check bool) "snapshot tail seen as torn" true report.Tyche.Monitor.rr_snapshot_torn;
  check_fingerprint_eq fp (fingerprint m2);
  List.iter
    (fun (domain, pre) ->
      let post = get_ok (Tyche.Monitor.attest m2 ~caller:os ~domain ~nonce:"fsck-nonce") in
      Alcotest.(check bool)
        (Printf.sprintf "attest body identical for domain %d" domain)
        true
        (Tyche.Fsck.body_equal pre post))
    baseline;
  check_fsck ~baseline m2

let test_crash_during_recovery arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  (* First recovery attempt dies writing its own closing checkpoint
     (reconstruction itself runs with injection suspended). The store
     must still hold the old snapshot and un-reset WAL... *)
  (match Fault.with_plan (Fault.always "snapshot.write") (fun () -> recover_from arch store) with
  | Ok _ -> Alcotest.fail "expected the recovery checkpoint to crash"
  | Error e -> Alcotest.failf "recovery failed instead of crashing: %s" e
  | exception Persist.Store.Crash _ -> ());
  (* ...so a second attempt succeeds from the same bytes. *)
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

let test_checkpoint_repairs_torn_tail arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  (match
     Fault.with_plan (Fault.always "snapshot.write") (fun () ->
         Tyche.Monitor.persist_snapshot w.monitor)
   with
  | () -> Alcotest.fail "expected a crash during the snapshot"
  | exception Persist.Store.Crash _ -> ());
  (* The first restart replays the WAL past the torn snapshot tail and
     closes with a checkpoint. That checkpoint must repair the tail
     before appending: a snapshot left after the tear would be durable
     yet invisible to the newest-valid scan, and the WAL reset that
     follows it would destroy the only other copy of the history. *)
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "first restart: seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp (fingerprint m2);
  (* A second restart must land on the same state from the checkpoint
     alone — before tail repair it found only the boot-time snapshot and
     an empty WAL. *)
  let m3, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "second restart: seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  Alcotest.(check int) "second restart: nothing to replay" 0 report.Tyche.Monitor.rr_replayed;
  check_fingerprint_eq fp (fingerprint m3);
  check_fsck m3

let test_no_valid_snapshot arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  (* Same durable WAL, but a snapshot stream of garbage: recovery must
     fall back to the boot baseline and replay the whole log. *)
  let wrecked =
    Persist.Store.mem
      ~wal:(Persist.Store.read store Persist.Store.wal_blob)
      ~snap:"this is not a snapshot stream" ()
  in
  let m2, report = get_ok_str (recover_from arch wrecked) in
  Alcotest.(check int) "no snapshot used" (-1) report.Tyche.Monitor.rr_snapshot_seq;
  Alcotest.(check bool) "garbage detected" true report.Tyche.Monitor.rr_snapshot_torn;
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

let test_destroy_and_snapshot_cadence arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  (* Snapshot every 4 ops: the workload (10) plus a destroy (11) crosses
     two checkpoints, so recovery replays only the post-snapshot tail. *)
  Tyche.Monitor.enable_persistence w.monitor ~store ~snapshot_every:4 ();
  let sbx = workload w in
  get_ok (Tyche.Monitor.destroy_domain w.monitor ~caller:os ~domain:sbx);
  let fp = fingerprint w.monitor in
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "seq recovered" 11 report.Tyche.Monitor.rr_seq;
  Alcotest.(check bool) "replayed only the suffix" true (report.Tyche.Monitor.rr_replayed <= 3);
  Alcotest.(check int) "snapshot at the last multiple of 4" 8
    report.Tyche.Monitor.rr_snapshot_seq;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

(* --- group commit ----------------------------------------------------- *)

let get_durable m =
  match Tyche.Monitor.durable_seq m with
  | Some d -> d
  | None -> Alcotest.fail "durable_seq: persistence should be enabled"

let test_group_commit_ack_floor arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  (* Batch of 4: the 10-op workload flushes after ops 4 and 8; 9 and 10
     stay pending until the explicit flush. *)
  Tyche.Monitor.enable_persistence w.monitor ~store ~fsync_every:4 ();
  let _ = workload w in
  Alcotest.(check int) "acked through the last full batch" 8 (get_durable w.monitor);
  Tyche.Monitor.flush w.monitor;
  Alcotest.(check int) "flush acknowledges the tail" workload_ops (get_durable w.monitor);
  let fp = fingerprint w.monitor in
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "every acknowledged op recovered" workload_ops
    report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

let test_group_commit_unacked_may_drop arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ~fsync_every:4 ();
  let _ = workload w in
  (* Crash without flushing: ops 9-10 were never acknowledged, so losing
     them is within contract — but everything acknowledged must survive. *)
  let acked = get_durable w.monitor in
  Alcotest.(check int) "two ops pending at crash" 8 acked;
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check bool) "acked floor honored"
    true
    (report.Tyche.Monitor.rr_seq >= acked);
  Alcotest.(check int) "exactly the durable batches recovered" acked
    report.Tyche.Monitor.rr_seq;
  check_fsck m2

let test_group_commit_latency_bound arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  (* Huge batch, 1-cycle latency bound: the first append after any
     simulated-cycle progress must flush the batch — the call at op 9
     charges transition cycles, so by then everything is durable. *)
  Tyche.Monitor.enable_persistence w.monitor ~store ~fsync_every:1000 ~latency_bound:1 ();
  let _ = workload w in
  let d = get_durable w.monitor in
  if d < 9 || d > workload_ops then
    Alcotest.failf "latency bound never flushed: durable_seq = %d" d

(* --- incremental checkpoints, compaction, GC -------------------------- *)

let test_wal_compaction arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ~snapshot_every:4 ();
  let _ = workload w in
  (* Cadence checkpoints at seq 4 and 8 compacted their prefixes: only
     the suffix the newest manifest does not cover remains. *)
  let wal = Persist.Wal.read store ~blob:Persist.Store.wal_blob in
  Alcotest.(check (list int)) "wal holds only the uncovered suffix" [ 9; 10 ]
    (List.map fst wal.Persist.Wal.records);
  Tyche.Monitor.checkpoint w.monitor;
  let wal = Persist.Wal.read store ~blob:Persist.Store.wal_blob in
  Alcotest.(check int) "wal empty after explicit checkpoint" 0
    (List.length wal.Persist.Wal.records);
  let fp = fingerprint w.monitor in
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  Alcotest.(check int) "manifest current, nothing to replay" 0
    report.Tyche.Monitor.rr_replayed;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

let test_incremental_dedup arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  Tyche.Monitor.checkpoint w.monitor;
  let segs_len () = String.length (Persist.Store.read store Persist.Store.seg_blob) in
  let before = segs_len () in
  (* No mutation between checkpoints: content addressing must recognize
     every bucket and append zero new segment bytes. *)
  Tyche.Monitor.checkpoint w.monitor;
  Tyche.Monitor.checkpoint w.monitor;
  Alcotest.(check int) "clean checkpoints append no segments" before (segs_len ());
  (* A mutation dirties exactly one bucket: the delta is one segment,
     not a full tree serialization. *)
  get_ok (Tyche.Monitor.set_flush_policy w.monitor ~caller:os ~domain:os false);
  Tyche.Monitor.checkpoint w.monitor;
  Alcotest.(check int) "domain-only change writes no segments" before (segs_len ())

let test_segment_gc arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let peer =
    get_ok
      (Tyche.Monitor.create_domain w.monitor ~caller:os ~name:"gc-peer"
         ~kind:Tyche.Domain.Sandbox)
  in
  let mem = os_memory_cap w in
  (* Each round shares a fresh cap (new id -> new bucket contents) and
     checkpoints: distinct segment versions pile up in the blob until
     the GC threshold trips and the rewrite keeps only live hashes. *)
  for _ = 1 to 14 do
    let _ =
      get_ok
        (Tyche.Monitor.share w.monitor ~caller:os ~cap:mem ~to_:peer
           ~rights:Cap.Rights.read_only ~cleanup:Cap.Revocation.Keep ())
    in
    Tyche.Monitor.checkpoint w.monitor
  done;
  let live = Hashtbl.length (Persist.Snapshot.segment_index store) in
  if live > 6 then Alcotest.failf "segment GC never ran: %d segment versions durable" live;
  let fp = fingerprint w.monitor in
  let m2, _ = get_ok_str (recover_from arch store) in
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

let test_crash_mid_segment_write arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  (match
     Fault.with_plan (Fault.always "segment.write") (fun () ->
         Tyche.Monitor.checkpoint w.monitor)
   with
  | () -> Alcotest.fail "expected a crash during the segment write"
  | exception Persist.Store.Crash _ -> ());
  (* Torn segment bytes are unreferenced garbage: the old manifest and
     the intact WAL reconstruct the exact pre-crash state. *)
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

let test_crash_mid_manifest_swap arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  (match
     Fault.with_plan (Fault.always "manifest.swap") (fun () ->
         Tyche.Monitor.checkpoint w.monitor)
   with
  | () -> Alcotest.fail "expected a crash during the manifest swap"
  | exception Persist.Store.Crash _ -> ());
  (* The manifest — the checkpoint's commit point — is torn: recovery
     must skip it and fall back to the previous record plus the WAL. *)
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

(* --- directory-fsync crash window (store file backend) ---------------- *)

let test_crash_on_dir_fsync arch () =
  let w = boot_arch arch in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  (* The checkpoint's WAL retirement dies before its rename/truncation
     is durable: snapshot new, WAL old. Replay filters the covered
     records, so the double coverage is benign. *)
  (match
     Fault.with_plan (Fault.nth "store.dir_fsync" 1) (fun () ->
         Tyche.Monitor.persist_snapshot w.monitor)
   with
  | () -> Alcotest.fail "expected a crash at the directory barrier"
  | exception Persist.Store.Crash _ -> ());
  let wal = Persist.Wal.read store ~blob:Persist.Store.wal_blob in
  Alcotest.(check int) "wal survived un-retired" workload_ops
    (List.length wal.Persist.Wal.records);
  let m2, report = get_ok_str (recover_from arch store) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  Alcotest.(check int) "covered records filtered, not replayed" 0
    report.Tyche.Monitor.rr_replayed;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2

let test_dir_fsync_on_file_store () =
  let dir = "tyche-dirsync-test" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let w = boot_x86 () in
  let store = Persist.Store.file ~dir in
  let before = Obs.Metrics.counter_value "store.dir_fsync" in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  Tyche.Monitor.persist_snapshot w.monitor;
  (* File creation and every WAL-retiring rename must be followed by a
     parent-directory fsync, or the checkpoint can vanish on power
     loss — the counter proves the barrier actually ran. *)
  let dir_fsyncs = Obs.Metrics.counter_value "store.dir_fsync" - before in
  if dir_fsyncs < 2 then
    Alcotest.failf "expected directory fsyncs on create+rename, saw %d" dir_fsyncs;
  (* And the same crash window as the mem test, on the real filesystem. *)
  let fp = fingerprint w.monitor in
  (match
     Fault.with_plan (Fault.nth "store.dir_fsync" 1) (fun () ->
         Tyche.Monitor.persist_snapshot w.monitor)
   with
  | () -> Alcotest.fail "expected a crash at the directory barrier"
  | exception Persist.Store.Crash _ -> ());
  let reopened = Persist.Store.file ~dir in
  let m2, report = get_ok_str (recover_from `X86 reopened) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_file_store_roundtrip () =
  let dir = "tyche-store-test" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let w = boot_x86 () in
  let store = Persist.Store.file ~dir in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let fp = fingerprint w.monitor in
  (* Reopen the directory cold, as a restarted process would. *)
  let reopened = Persist.Store.file ~dir in
  let m2, report = get_ok_str (recover_from `X86 reopened) in
  Alcotest.(check int) "seq recovered" workload_ops report.Tyche.Monitor.rr_seq;
  check_fingerprint_eq fp (fingerprint m2);
  check_fsck m2;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* Monitor-level truncation semantics: recovery from ANY prefix of the
   durable WAL (including mid-record cuts) and any single bit flip must
   succeed, pass fsck, and recover at most the full history. *)
let qcheck_monitor_truncation =
  let w = boot_x86 () in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let wal = Persist.Store.read store Persist.Store.wal_blob in
  let snap = Persist.Store.read store Persist.Store.snap_blob in
  QCheck.Test.make ~name:"monitor: recovery from any WAL cut is prefix-consistent" ~count:25
    QCheck.(int_bound (String.length wal))
    (fun cut ->
      let cut_store = Persist.Store.mem ~wal:(String.sub wal 0 cut) ~snap () in
      match recover_from `X86 cut_store with
      | Error e -> QCheck.Test.fail_reportf "cut %d: recovery failed: %s" cut e
      | Ok (m2, report) ->
        if report.Tyche.Monitor.rr_seq > workload_ops then
          QCheck.Test.fail_reportf "cut %d: recovered beyond history" cut;
        let r = Tyche.Fsck.check m2 in
        if not (Tyche.Fsck.ok r) then
          QCheck.Test.fail_reportf "cut %d: fsck: %s" cut (Format.asprintf "%a" Tyche.Fsck.pp r);
        true)

let qcheck_monitor_bitflip =
  let w = boot_x86 () in
  let store = Persist.Store.mem () in
  Tyche.Monitor.enable_persistence w.monitor ~store ();
  let _ = workload w in
  let wal = Persist.Store.read store Persist.Store.wal_blob in
  let snap = Persist.Store.read store Persist.Store.snap_blob in
  QCheck.Test.make ~name:"monitor: recovery survives any WAL bit flip" ~count:25
    QCheck.(pair (int_bound (String.length wal - 1)) (int_bound 7))
    (fun (pos, bit) ->
      let b = Bytes.of_string wal in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      let flip_store = Persist.Store.mem ~wal:(Bytes.to_string b) ~snap () in
      match recover_from `X86 flip_store with
      | Error e -> QCheck.Test.fail_reportf "flip %d.%d: recovery failed: %s" pos bit e
      | Ok (m2, _) ->
        let r = Tyche.Fsck.check m2 in
        if not (Tyche.Fsck.ok r) then
          QCheck.Test.fail_reportf "flip %d.%d: fsck: %s" pos bit
            (Format.asprintf "%a" Tyche.Fsck.pp r);
        true)

(* --- fault plan/suspend re-entrancy (satellite check) ----------------- *)

let reentry_point = Fault.register "test.persist.reentry"

let test_suspend_nests () =
  Alcotest.(check bool) "not suspended initially" false (Fault.suspended ());
  Fault.suspend (fun () ->
      Alcotest.(check bool) "suspended" true (Fault.suspended ());
      Fault.suspend (fun () ->
          Alcotest.(check bool) "still suspended when nested" true (Fault.suspended ()));
      Alcotest.(check bool) "inner exit keeps outer suspension" true (Fault.suspended ()));
  Alcotest.(check bool) "fully restored" false (Fault.suspended ())

let test_suspend_restores_on_raise () =
  (try Fault.suspend (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check bool) "suspension released after raise" false (Fault.suspended ());
  Fault.with_plan (Fault.always "test.persist.reentry") (fun () ->
      (try Fault.suspend (fun () -> raise Exit) with Exit -> ());
      match Fault.hit reentry_point with
      | () -> Alcotest.fail "plan should still be armed after suspended raise"
      | exception Fault.Injected _ -> ())

let test_with_plan_restores_on_raise () =
  let inert = Fault.plan [] in
  Fault.with_plan (Fault.always "test.persist.reentry") (fun () ->
      (try Fault.with_plan inert (fun () -> raise Exit) with Exit -> ());
      (* The outer plan must be re-armed, counters and all. *)
      match Fault.hit reentry_point with
      | () -> Alcotest.fail "outer plan not restored after inner raise"
      | exception Fault.Injected _ -> ());
  (* And fully disarmed outside every scope. *)
  Fault.hit reentry_point;
  Alcotest.(check bool) "disarmed" false (Fault.enabled ())

let test_store_points_registered () =
  let names = List.map Fault.name (Fault.points ()) in
  List.iter
    (fun n -> Alcotest.(check bool) n true (List.mem n names))
    [ "wal.append"; "wal.fsync"; "snapshot.write"; "segment.write"; "manifest.swap";
      "store.dir_fsync" ]

(* --- suite ------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  let directed name f =
    [ Alcotest.test_case (name ^ " (x86)") `Quick (f `X86);
      Alcotest.test_case (name ^ " (riscv)") `Quick (f `Riscv) ]
  in
  Alcotest.run "persist"
    [ ( "framing",
        [ Alcotest.test_case "crc32 vectors" `Quick test_crc_vectors;
          Alcotest.test_case "frame/parse roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "op codec roundtrip" `Quick test_op_roundtrip;
          qt qcheck_truncation;
          qt qcheck_bitflip ] );
      ( "recovery",
        directed "clean recover" test_clean_recover
        @ directed "crash at wal.append" test_crash_on_append
        @ directed "fsync loses pending" test_fsync_loses_pending
        @ directed "crash at snapshot.write" test_crash_on_snapshot
        @ directed "crash during recovery checkpoint" test_crash_during_recovery
        @ directed "checkpoint repairs torn snapshot tail" test_checkpoint_repairs_torn_tail
        @ directed "no valid snapshot" test_no_valid_snapshot
        @ directed "destroy + snapshot cadence" test_destroy_and_snapshot_cadence
        @ [ Alcotest.test_case "file store cold reopen" `Quick test_file_store_roundtrip;
            qt qcheck_monitor_truncation;
            qt qcheck_monitor_bitflip ] );
      ( "group commit",
        directed "ack floor + explicit flush" test_group_commit_ack_floor
        @ directed "unacked batch may drop, never tear" test_group_commit_unacked_may_drop
        @ directed "latency bound forces flush" test_group_commit_latency_bound );
      ( "incremental checkpoints",
        directed "wal compaction" test_wal_compaction
        @ directed "content-addressed dedup" test_incremental_dedup
        @ directed "segment gc" test_segment_gc
        @ directed "crash mid segment write" test_crash_mid_segment_write
        @ directed "crash mid manifest swap" test_crash_mid_manifest_swap );
      ( "directory fsync",
        directed "crash at the rename barrier" test_crash_on_dir_fsync
        @ [ Alcotest.test_case "file backend fsyncs its directory" `Quick
              test_dir_fsync_on_file_store ] );
      ( "fault re-entrancy",
        [ Alcotest.test_case "suspend nests" `Quick test_suspend_nests;
          Alcotest.test_case "suspend restores on raise" `Quick test_suspend_restores_on_raise;
          Alcotest.test_case "with_plan restores on raise" `Quick test_with_plan_restores_on_raise;
          Alcotest.test_case "store points registered" `Quick test_store_points_registered ] ) ]
