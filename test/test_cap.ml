(* Tests for the capability tree: lineage, attenuation, reference
   counts, cascading revocation (including circular sharing), and the
   Fig. 4 region map. *)

open Cap

let range ~base ~len = Hw.Addr.Range.make ~base ~len
let mem ~base ~len = Resource.Memory (range ~base ~len)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "capability error: %s" (Captree.error_to_string e)

let expect_err expected = function
  | Error e when e = expected -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Captree.error_to_string e)
  | Ok _ -> Alcotest.fail "expected an error"

(* The domain's active cap whose range contains [r]. *)
let holding t domain r =
  List.find
    (fun cap ->
      match Captree.resource t cap with
      | Some (Resource.Memory outer) -> Hw.Addr.Range.includes ~outer ~inner:r
      | _ -> false)
    (Captree.caps_of_domain t domain)

let fresh_with_root ?(owner = 0) ?(len = 0x100000) () =
  let t = Captree.create () in
  let root, _ = ok (Captree.root t ~owner (mem ~base:0 ~len) Rights.full) in
  (t, root)

let test_root_overlap () =
  let t = Captree.create () in
  let _ = ok (Captree.root t ~owner:0 (mem ~base:0 ~len:0x1000) Rights.full) in
  expect_err Captree.Overlapping_root
    (Captree.root t ~owner:1 (mem ~base:0x800 ~len:0x1000) Rights.full);
  let _ = ok (Captree.root t ~owner:1 (mem ~base:0x1000 ~len:0x1000) Rights.full) in
  let _ = ok (Captree.root t ~owner:0 (Resource.Cpu_core 0) Rights.full) in
  expect_err Captree.Overlapping_root
    (Captree.root t ~owner:1 (Resource.Cpu_core 0) Rights.full)

let test_share_basics () =
  let t, root = fresh_with_root () in
  let child, effects =
    ok (Captree.share t root ~to_:1 ~rights:Rights.rw ~cleanup:Revocation.Zero ())
  in
  Alcotest.(check int) "one attach effect" 1 (List.length effects);
  Alcotest.(check (option int)) "child owner" (Some 1) (Captree.owner t child);
  Alcotest.(check bool) "parent still active" true (Captree.is_active t root);
  Alcotest.(check bool) "child active" true (Captree.is_active t child);
  Alcotest.(check (option int)) "lineage" (Some root) (Captree.parent t child);
  Alcotest.(check int) "refcount 2" 2 (Captree.refcount t (mem ~base:0 ~len:0x1000))

let test_share_subrange () =
  let t, root = fresh_with_root () in
  let sub = range ~base:0x2000 ~len:0x1000 in
  let child, _ =
    ok (Captree.share t root ~to_:1 ~rights:Rights.rw ~cleanup:Revocation.Keep ~subrange:sub ())
  in
  Alcotest.(check bool) "narrowed resource" true
    (Captree.resource t child = Some (Resource.Memory sub));
  expect_err Captree.Bad_subrange
    (Captree.share t root ~to_:1 ~rights:Rights.rw ~cleanup:Revocation.Keep
       ~subrange:(range ~base:0xfffff000 ~len:0x2000) ())

let test_rights_attenuation () =
  let t, root = fresh_with_root () in
  let weak, _ =
    ok (Captree.share t root ~to_:1 ~rights:Rights.rw ~cleanup:Revocation.Keep ())
  in
  expect_err Captree.Grant_denied
    (Captree.grant t weak ~to_:2 ~rights:Rights.read_only ~cleanup:Revocation.Keep);
  expect_err Captree.Rights_exceeded
    (Captree.share t weak ~to_:2 ~rights:Rights.full ~cleanup:Revocation.Keep ());
  let weaker, _ =
    ok (Captree.share t weak ~to_:2 ~rights:Rights.read_only ~cleanup:Revocation.Keep ())
  in
  expect_err Captree.Sharing_denied
    (Captree.share t weaker ~to_:3 ~rights:Rights.read_only ~cleanup:Revocation.Keep ())

let test_grant_moves () =
  let t, root = fresh_with_root () in
  let child, effects =
    ok (Captree.grant t root ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero)
  in
  Alcotest.(check int) "detach+attach" 2 (List.length effects);
  Alcotest.(check bool) "parent inactive" false (Captree.is_active t root);
  Alcotest.(check int) "refcount stays 1" 1 (Captree.refcount t (mem ~base:0 ~len:0x1000));
  Alcotest.(check (list int)) "holder is grantee" [ 1 ]
    (Captree.holders t (mem ~base:0 ~len:0x1000));
  expect_err (Captree.Capability_inactive root)
    (Captree.share t root ~to_:2 ~rights:Rights.rw ~cleanup:Revocation.Keep ());
  ignore child

let test_split_and_carve () =
  let t, root = fresh_with_root ~len:0x10000 () in
  let l, r, effects = ok (Captree.split t root ~at:0x4000) in
  Alcotest.(check int) "split has no hw effects" 0 (List.length effects);
  Alcotest.(check bool) "parent inactive" false (Captree.is_active t root);
  Alcotest.(check bool) "pieces active" true (Captree.is_active t l && Captree.is_active t r);
  Alcotest.(check bool) "left range" true
    (Captree.resource t l = Some (mem ~base:0 ~len:0x4000));
  expect_err Captree.Bad_subrange (Captree.split t l ~at:0x4000);
  let sub = range ~base:0x8000 ~len:0x2000 in
  let piece, _ = ok (Captree.carve t r ~subrange:sub) in
  Alcotest.(check bool) "carved exactly" true
    (Captree.resource t piece = Some (Resource.Memory sub));
  Alcotest.(check int) "still exclusive" 1 (Captree.refcount t (Resource.Memory sub));
  let same, _ = ok (Captree.carve t piece ~subrange:sub) in
  Alcotest.(check int) "identity carve" piece same

let test_revoke_cascade () =
  let t, root = fresh_with_root () in
  let a, _ = ok (Captree.share t root ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  let b, _ = ok (Captree.share t a ~to_:2 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  let c, _ = ok (Captree.share t b ~to_:3 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  Alcotest.(check int) "refcount 4" 4 (Captree.refcount t (mem ~base:0 ~len:0x1000));
  let effects = ok (Captree.revoke t a) in
  Alcotest.(check int) "three detaches" 3
    (List.length (List.filter (function Captree.Detach _ -> true | _ -> false) effects));
  Alcotest.(check bool) "subtree gone" true
    ((not (Captree.is_active t a)) && (not (Captree.is_active t b))
     && not (Captree.is_active t c));
  Alcotest.(check int) "refcount back to 1" 1 (Captree.refcount t (mem ~base:0 ~len:0x1000));
  Alcotest.(check bool) "root still active" true (Captree.is_active t root)

let test_revoke_reactivates_granted_parent () =
  let t, root = fresh_with_root () in
  let child, _ = ok (Captree.grant t root ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero) in
  let effects = ok (Captree.revoke t child) in
  Alcotest.(check bool) "parent reactivated" true (Captree.is_active t root);
  let reattach =
    List.filter (function Captree.Attach { domain = 0; _ } -> true | _ -> false) effects
  in
  Alcotest.(check int) "owner reattached" 1 (List.length reattach);
  Alcotest.(check (list int)) "holder restored" [ 0 ]
    (Captree.holders t (mem ~base:0 ~len:0x1000))

let test_revoke_split_children () =
  let t, root = fresh_with_root ~len:0x2000 () in
  let l, r, _ = ok (Captree.split t root ~at:0x1000) in
  let _ = ok (Captree.revoke t l) in
  Alcotest.(check bool) "parent still inactive" false (Captree.is_active t root);
  Alcotest.(check int) "left range unowned" 0 (Captree.refcount t (mem ~base:0 ~len:0x1000));
  let _ = ok (Captree.revoke t r) in
  Alcotest.(check bool) "parent reassembled" true (Captree.is_active t root);
  Alcotest.(check int) "whole range owned again" 1
    (Captree.refcount t (mem ~base:0 ~len:0x2000))

let test_revoke_children_keeps_cap () =
  let t, root = fresh_with_root () in
  let _ = ok (Captree.share t root ~to_:1 ~rights:Rights.rw ~cleanup:Revocation.Keep ()) in
  let _ = ok (Captree.share t root ~to_:2 ~rights:Rights.rw ~cleanup:Revocation.Keep ()) in
  let effects = ok (Captree.revoke_children t root) in
  Alcotest.(check int) "both children detached" 2 (List.length effects);
  Alcotest.(check bool) "cap kept" true (Captree.is_active t root);
  Alcotest.(check int) "exclusive again" 1 (Captree.refcount t (mem ~base:0 ~len:0x1000))

let test_circular_sharing_revocation () =
  let t, root = fresh_with_root ~owner:0 () in
  let a = root in
  let b1, _ = ok (Captree.share t a ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  let a2, _ = ok (Captree.share t b1 ~to_:0 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  let b2, _ = ok (Captree.share t a2 ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  Alcotest.(check int) "two domains, refcount 2" 2
    (Captree.refcount t (mem ~base:0 ~len:0x1000));
  let effects = ok (Captree.revoke t b1) in
  Alcotest.(check int) "cycle fully revoked" 3
    (List.length (List.filter (function Captree.Detach _ -> true | _ -> false) effects));
  Alcotest.(check bool) "only root remains" true
    (Captree.is_active t a && (not (Captree.is_active t b2)) && not (Captree.is_active t a2));
  Alcotest.(check int) "exclusive" 1 (Captree.refcount t (mem ~base:0 ~len:0x1000));
  Alcotest.(check bool) "tree invariants hold" true (Captree.check_invariants t = Ok ())

let test_fig4_region_map () =
  (* Reproduce Fig. 4's shape. Domains: 0=OS (driver), 1=SaaS VM,
     2=crypto engine, 3=SaaS app, 4=GPU. *)
  let t = Captree.create () in
  let page = 0x1000 in
  let root, _ = ok (Captree.root t ~owner:0 (mem ~base:0 ~len:(8 * page)) Rights.full) in
  let vm_part, _ = ok (Captree.carve t root ~subrange:(range ~base:page ~len:(7 * page))) in
  let vm, _ = ok (Captree.grant t vm_part ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero) in
  (* VM grants page 1 to the crypto engine. *)
  let ce_piece, _ = ok (Captree.carve t vm ~subrange:(range ~base:page ~len:page)) in
  let _ =
    ok (Captree.grant t ce_piece ~to_:2 ~rights:Rights.full ~cleanup:Revocation.Zero_and_flush)
  in
  (* VM shares page 3 with the crypto engine. *)
  let vm_cap = holding t 1 (range ~base:(3 * page) ~len:page) in
  let share_piece, _ = ok (Captree.carve t vm_cap ~subrange:(range ~base:(3 * page) ~len:page)) in
  let _ = ok (Captree.share t share_piece ~to_:2 ~rights:Rights.rw ~cleanup:Revocation.Zero ()) in
  (* VM grants pages 4-5 to the SaaS app. *)
  let vm_cap2 = holding t 1 (range ~base:(4 * page) ~len:(2 * page)) in
  let app_piece, _ =
    ok (Captree.carve t vm_cap2 ~subrange:(range ~base:(4 * page) ~len:(2 * page)))
  in
  let app, _ = ok (Captree.grant t app_piece ~to_:3 ~rights:Rights.full ~cleanup:Revocation.Zero) in
  (* App shares page 5 with the GPU. *)
  let gpu_piece, _ = ok (Captree.carve t app ~subrange:(range ~base:(5 * page) ~len:page)) in
  let _ = ok (Captree.share t gpu_piece ~to_:4 ~rights:Rights.rw ~cleanup:Revocation.Zero ()) in
  let expected =
    [ (0, [ 0 ]); (1, [ 2 ]); (2, [ 1 ]); (3, [ 1; 2 ]); (4, [ 3 ]); (5, [ 3; 4 ]);
      (6, [ 1 ]); (7, [ 1 ]) ]
  in
  let map = Captree.region_map t in
  List.iter
    (fun (pg, holders) ->
      match List.find_opt (fun (r, _) -> Hw.Addr.Range.contains r (pg * page)) map with
      | Some (_, hs) ->
        Alcotest.(check (list int)) (Printf.sprintf "page %d holders" pg) holders hs
      | None -> Alcotest.failf "page %d not in region map" pg)
    expected;
  List.iter
    (fun (pg, expected_rc) ->
      Alcotest.(check int)
        (Printf.sprintf "page %d refcount" pg)
        expected_rc
        (Captree.refcount t (mem ~base:(pg * page) ~len:page)))
    [ (0, 1); (1, 1); (2, 1); (3, 2); (4, 1); (5, 2) ];
  Alcotest.(check bool) "invariants" true (Captree.check_invariants t = Ok ());
  Alcotest.(check bool) "crypto engine page exclusive" true
    (Captree.exclusively_owned t ~domain:2 (mem ~base:page ~len:page));
  Alcotest.(check bool) "shared page not exclusive" false
    (Captree.exclusively_owned t ~domain:1 (mem ~base:(3 * page) ~len:page))

let test_region_map_merging () =
  let t, root = fresh_with_root ~len:0x4000 () in
  let _l, r, _ = ok (Captree.split t root ~at:0x1000) in
  let _ = ok (Captree.split t r ~at:0x2000) in
  match Captree.region_map t with
  | [ (seg, holders) ] ->
    Alcotest.(check int) "merged back to one segment" 0x4000 (Hw.Addr.Range.len seg);
    Alcotest.(check (list int)) "one holder" [ 0 ] holders
  | segs -> Alcotest.failf "expected 1 merged segment, got %d" (List.length segs)

(* The circular-sharing scenario again, this time checking that the
   incremental indexes agree with the full scans at every step of the
   cascade — revocation of a cycle is where refcount bookkeeping is
   easiest to get wrong. *)
let test_circular_revocation_index_agreement () =
  let t, a = fresh_with_root ~owner:0 () in
  let probe = mem ~base:0 ~len:0x1000 in
  let agree label =
    (match Captree.check_index_consistency t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: index inconsistency: %s" label e);
    Alcotest.(check int)
      (label ^ ": refcount agrees")
      (Captree.refcount_reference t probe)
      (Captree.refcount t probe);
    Alcotest.(check (list int))
      (label ^ ": holders agree")
      (Captree.holders_reference t probe)
      (Captree.holders t probe)
  in
  let b1, _ = ok (Captree.share t a ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  agree "after a->b";
  let a2, _ = ok (Captree.share t b1 ~to_:0 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  agree "after b->a";
  let b2, _ = ok (Captree.share t a2 ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero ()) in
  ignore b2;
  agree "after a->b again";
  let _ = ok (Captree.revoke t b1) in
  agree "after revoking the cycle";
  Alcotest.(check int) "exclusive again" 1 (Captree.refcount t probe)

(* 50k-capability smoke tests: the iterative subtree walk, the
   tail-recursive reference merge, and the delta-maintained segment
   store must all survive trees this size without stack overflow or
   quadratic blowup. [check_invariants] is O(n·depth) so these use
   [check_index_consistency] (O(n log n)) instead. *)
let smoke_n = 50_000

let test_smoke_deep_chain () =
  let t, root = fresh_with_root ~owner:0 () in
  let probe = mem ~base:0 ~len:0x100000 in
  let first = ref root in
  let prev = ref root in
  for i = 1 to smoke_n do
    let c, _ =
      ok (Captree.share t !prev ~to_:(i mod 7) ~rights:Rights.full ~cleanup:Revocation.Zero ())
    in
    if i = 1 then first := c;
    prev := c
  done;
  Alcotest.(check int) "all nodes present" (smoke_n + 1) (Captree.node_count t);
  Alcotest.(check (list int)) "holders of the shared range" [ 0; 1; 2; 3; 4; 5; 6 ]
    (Captree.holders t probe);
  Alcotest.(check int) "one merged segment" 1 (List.length (Captree.region_map t));
  (match Captree.check_index_consistency t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "index inconsistency on the deep chain: %s" e);
  (* Cascading revocation of the whole 50k-deep chain: must not
     overflow the stack and must restore exclusivity. *)
  let effects = ok (Captree.revoke t !first) in
  Alcotest.(check int) "every share detached" smoke_n
    (List.length (List.filter (function Captree.Detach _ -> true | _ -> false) effects));
  Alcotest.(check int) "only the root remains" 1 (Captree.node_count t);
  Alcotest.(check (list int)) "root exclusive again" [ 0 ] (Captree.holders t probe);
  Alcotest.(check bool) "indexes consistent after cascade" true
    (Captree.check_index_consistency t = Ok ())

let test_smoke_wide_tree () =
  let page = 0x1000 in
  let t, root = fresh_with_root ~owner:0 ~len:(smoke_n * page) () in
  for i = 0 to smoke_n - 1 do
    let sub = range ~base:(i * page) ~len:page in
    let _ =
      ok
        (Captree.share t root ~to_:(1 + (i mod 7)) ~rights:Rights.rw ~cleanup:Revocation.Zero
           ~subrange:sub ())
    in
    ()
  done;
  (* Every page has holders [0; 1 + i mod 7] and neighbours differ, so
     nothing merges: the map (and the tail-recursive reference merge)
     must handle 50k segments. *)
  let map = Captree.region_map t in
  Alcotest.(check int) "one segment per page" smoke_n (List.length map);
  Alcotest.(check int) "reference map agrees" (List.length map)
    (List.length (Captree.region_map_reference t));
  (match Captree.check_index_consistency t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "index inconsistency on the wide tree: %s" e);
  (* Tear the whole forest down through the root. *)
  let _ = ok (Captree.revoke t root) in
  Alcotest.(check int) "tree empty" 0 (Captree.node_count t);
  Alcotest.(check int) "region map empty" 0 (List.length (Captree.region_map t));
  Alcotest.(check int) "no segments left" 0 (Captree.segment_count t)

let test_caps_of_domain_ordering () =
  let t, root = fresh_with_root () in
  let c1, _ = ok (Captree.share t root ~to_:1 ~rights:Rights.rw ~cleanup:Revocation.Keep ()) in
  let c2, _ = ok (Captree.share t root ~to_:1 ~rights:Rights.rw ~cleanup:Revocation.Keep ()) in
  Alcotest.(check (list int)) "creation order" [ c1; c2 ] (Captree.caps_of_domain t 1)

let test_is_ancestor () =
  let t, root = fresh_with_root () in
  let a, _ = ok (Captree.share t root ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Keep ()) in
  let b, _ = ok (Captree.share t a ~to_:2 ~rights:Rights.full ~cleanup:Revocation.Keep ()) in
  Alcotest.(check bool) "root ancestor of b" true (Captree.is_ancestor t ~ancestor:root b);
  Alcotest.(check bool) "a ancestor of b" true (Captree.is_ancestor t ~ancestor:a b);
  Alcotest.(check bool) "b not ancestor of a" false (Captree.is_ancestor t ~ancestor:b a);
  Alcotest.(check bool) "not own ancestor" false (Captree.is_ancestor t ~ancestor:b b)

let test_device_and_core_caps () =
  let t = Captree.create () in
  let core_root, _ = ok (Captree.root t ~owner:0 (Resource.Cpu_core 1) Rights.full) in
  let dev_root, _ = ok (Captree.root t ~owner:0 (Resource.Device 0x310) Rights.full) in
  expect_err Captree.Bad_subrange (Captree.split t core_root ~at:1);
  expect_err Captree.Bad_subrange
    (Captree.share t dev_root ~to_:1 ~rights:Rights.rw ~cleanup:Revocation.Keep
       ~subrange:(range ~base:0 ~len:1) ());
  let shared, _ =
    ok (Captree.share t core_root ~to_:1 ~rights:Rights.exclusive_use ~cleanup:Revocation.Keep ())
  in
  Alcotest.(check int) "core refcount" 2 (Captree.refcount t (Resource.Cpu_core 1));
  let _ = ok (Captree.revoke t shared) in
  Alcotest.(check int) "core refcount restored" 1 (Captree.refcount t (Resource.Cpu_core 1))

(* Property: random interleavings of operations keep invariants and
   refcount consistency. *)

type op = Share of int * int | Grant of int * int | Split of int | Revoke of int

let gen_op =
  QCheck.Gen.(
    frequency
      [ (4, map2 (fun c d -> Share (c, d)) (0 -- 40) (0 -- 5));
        (2, map2 (fun c d -> Grant (c, d)) (0 -- 40) (0 -- 5));
        (2, map (fun c -> Split c) (0 -- 40));
        (2, map (fun c -> Revoke c) (0 -- 40)) ])

let print_op = function
  | Share (c, d) -> Printf.sprintf "Share(%d->%d)" c d
  | Grant (c, d) -> Printf.sprintf "Grant(%d->%d)" c d
  | Split c -> Printf.sprintf "Split(%d)" c
  | Revoke c -> Printf.sprintf "Revoke(%d)" c

let arb_ops =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map print_op l))
    QCheck.Gen.(list_size (0 -- 60) gen_op)

let run_ops ops =
  let t = Captree.create () in
  let root, _ =
    Result.get_ok (Captree.root t ~owner:0 (mem ~base:0 ~len:0x100000) Rights.full)
  in
  let caps = ref [ root ] in
  let pick i = List.nth !caps (i mod List.length !caps) in
  List.iter
    (fun op ->
      match op with
      | Share (c, d) -> (
        match
          Captree.share t (pick c) ~to_:d ~rights:Rights.full ~cleanup:Revocation.Zero ()
        with
        | Ok (id, _) -> caps := id :: !caps
        | Error _ -> ())
      | Grant (c, d) -> (
        match Captree.grant t (pick c) ~to_:d ~rights:Rights.full ~cleanup:Revocation.Zero with
        | Ok (id, _) -> caps := id :: !caps
        | Error _ -> ())
      | Split c -> (
        let cap = pick c in
        match Captree.resource t cap with
        | Some (Resource.Memory r) when Hw.Addr.Range.len r >= 2 -> (
          let at = Hw.Addr.Range.base r + (Hw.Addr.Range.len r / 2) in
          match Captree.split t cap ~at with
          | Ok (l, rg, _) -> caps := l :: rg :: !caps
          | Error _ -> ())
        | _ -> ())
      | Revoke c -> ignore (Captree.revoke t (pick c)))
    ops;
  t

(* Same op interpreter, but with a scalar (core) capability in the mix
   and an index/scan agreement check after EVERY step — a mutation that
   corrupts an incremental index is caught at the op that introduced
   it, not at the end of the sequence. *)
let run_ops_indexed ops =
  let t = Captree.create () in
  let root, _ =
    Result.get_ok (Captree.root t ~owner:0 (mem ~base:0 ~len:0x100000) Rights.full)
  in
  let core, _ = Result.get_ok (Captree.root t ~owner:0 (Resource.Cpu_core 0) Rights.full) in
  let caps = ref [ root; core ] in
  let pick i = List.nth !caps (i mod List.length !caps) in
  let step n op =
    (match op with
    | Share (c, d) -> (
      match
        Captree.share t (pick c) ~to_:d ~rights:Rights.full ~cleanup:Revocation.Zero ()
      with
      | Ok (id, _) -> caps := id :: !caps
      | Error _ -> ())
    | Grant (c, d) -> (
      match Captree.grant t (pick c) ~to_:d ~rights:Rights.full ~cleanup:Revocation.Zero with
      | Ok (id, _) -> caps := id :: !caps
      | Error _ -> ())
    | Split c -> (
      let cap = pick c in
      match Captree.resource t cap with
      | Some (Resource.Memory r) when Hw.Addr.Range.len r >= 2 -> (
        let at = Hw.Addr.Range.base r + (Hw.Addr.Range.len r / 2) in
        match Captree.split t cap ~at with
        | Ok (l, rg, _) -> caps := l :: rg :: !caps
        | Error _ -> ())
      | _ -> ())
    | Revoke c -> ignore (Captree.revoke t (pick c)));
    match Captree.check_index_consistency t with
    | Ok () -> ()
    | Error e ->
      QCheck.Test.fail_reportf "after op %d (%s): index inconsistency: %s" n (print_op op) e
  in
  List.iteri step ops;
  t

let prop_indexes_agree =
  QCheck.Test.make ~name:"captree: indexes agree with full scans after every op" ~count:100
    arb_ops
    (fun ops ->
      let t = run_ops_indexed ops in
      (* Final spot-checks on resources the consistency sweep does not
         enumerate directly: the whole root range and the scalar core. *)
      let whole = mem ~base:0 ~len:0x100000 in
      Captree.holders t whole = Captree.holders_reference t whole
      && Captree.refcount t whole = Captree.refcount_reference t whole
      && Captree.active_overlapping t whole = Captree.active_overlapping_reference t whole
      && Captree.holders t (Resource.Cpu_core 0)
         = Captree.holders_reference t (Resource.Cpu_core 0)
      && Captree.caps_of_domain t 0 = Captree.caps_of_domain_reference t 0
      && Captree.all_caps_of_domain t 0 = Captree.all_caps_of_domain_reference t 0)

let prop_invariants_hold =
  QCheck.Test.make ~name:"captree: invariants hold under random ops" ~count:200 arb_ops
    (fun ops -> Captree.check_invariants (run_ops ops) = Ok ())

let prop_refcount_consistent =
  QCheck.Test.make ~name:"captree: refcount equals region-map holders" ~count:100 arb_ops
    (fun ops ->
      let t = run_ops ops in
      List.for_all
        (fun (seg, holders) -> Captree.refcount t (Resource.Memory seg) = List.length holders)
        (Captree.region_map t))

let prop_region_map_disjoint =
  QCheck.Test.make ~name:"captree: region map segments are disjoint and sorted" ~count:100
    arb_ops
    (fun ops ->
      let t = run_ops ops in
      let rec check = function
        | (a, _) :: ((b, _) :: _ as rest) ->
          Hw.Addr.Range.limit a <= Hw.Addr.Range.base b && check rest
        | _ -> true
      in
      check (Captree.region_map t))

let prop_revoke_all_restores_root =
  QCheck.Test.make ~name:"captree: revoking every root child restores exclusivity"
    ~count:100 arb_ops
    (fun ops ->
      let t = run_ops ops in
      let rec find_root id =
        match Captree.parent t id with Some p -> find_root p | None -> id
      in
      match Captree.caps_of_domain t 0 with
      | [] -> true (* domain 0 may have granted everything away *)
      | c :: _ ->
        let root = find_root c in
        (match Captree.revoke_children t root with Ok _ -> () | Error _ -> ());
        Captree.is_active t root
        && Captree.check_invariants t = Ok ()
        && Captree.refcount t (Option.get (Captree.resource t root)) = 1)

(* Property: the frozen set is exactly the live remote-delegation set.
   Freeze marks a cap as delegated to another machine (Fleet's local
   record); under arbitrary interleaved share/revoke/freeze/thaw the
   tree's [frozen_caps] must track a reference model exactly — in
   particular no revocation path may ever remove a frozen cap (the
   remote machine still holds the resource), and thaw/revoke of
   already-gone ids must stay no-ops. *)

type fop = Fshare of int * int | Frevoke of int | Ffreeze of int | Fthaw of int

let gen_fop =
  QCheck.Gen.(
    frequency
      [ (4, map2 (fun c d -> Fshare (c, d)) (0 -- 40) (0 -- 5));
        (3, map (fun c -> Frevoke c) (0 -- 40));
        (3, map (fun c -> Ffreeze c) (0 -- 40));
        (2, map (fun c -> Fthaw c) (0 -- 40)) ])

let print_fop = function
  | Fshare (c, d) -> Printf.sprintf "Share(%d->%d)" c d
  | Frevoke c -> Printf.sprintf "Revoke(%d)" c
  | Ffreeze c -> Printf.sprintf "Freeze(%d)" c
  | Fthaw c -> Printf.sprintf "Thaw(%d)" c

let arb_fops =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map print_fop l))
    QCheck.Gen.(list_size (0 -- 80) gen_fop)

module IntSet = Set.Make (Int)

let prop_frozen_tracks_delegations =
  QCheck.Test.make ~name:"captree: frozen set = live remote-delegation set" ~count:200
    arb_fops
    (fun ops ->
      let t = Captree.create () in
      let root, _ =
        Result.get_ok (Captree.root t ~owner:0 (mem ~base:0 ~len:0x100000) Rights.full)
      in
      let caps = ref [ root ] in
      let model = ref IntSet.empty in
      let pick i = List.nth !caps (i mod List.length !caps) in
      List.iteri
        (fun n op ->
          (match (op, !caps) with
          | _, [] -> () (* the root itself was revoked; nothing left to drive *)
          | Fshare (c, d), _ -> (
            match
              Captree.share t (pick c) ~to_:d ~rights:Rights.full
                ~cleanup:Revocation.Zero ()
            with
            | Ok (id, _) -> caps := id :: !caps
            | Error _ -> ())
          | Frevoke c, _ ->
            let target = pick c in
            (match Captree.revoke t target with
            | Ok _ ->
              (* The whole subtree is gone; the model must not have
                 held any of it (revoke refuses on frozen content). *)
              caps := List.filter (Captree.is_active t) !caps;
              if
                List.exists
                  (fun f -> not (Captree.is_active t f))
                  (IntSet.elements !model)
              then
                QCheck.Test.fail_reportf
                  "after op %d (%s): revoke removed a frozen (delegated) cap" n
                  (print_fop op)
            | Error _ -> ())
          | Ffreeze c, _ -> (
            let target = pick c in
            match Captree.freeze t target with
            | Ok () -> model := IntSet.add target !model
            | Error _ -> ())
          | Fthaw c, _ ->
            let target = pick c in
            Captree.thaw t target;
            model := IntSet.remove target !model);
          let got = Captree.frozen_caps t in
          let want = IntSet.elements !model in
          if got <> want then
            QCheck.Test.fail_reportf
              "after op %d (%s): frozen_caps = [%s], model = [%s]" n (print_fop op)
              (String.concat ";" (List.map string_of_int got))
              (String.concat ";" (List.map string_of_int want));
          match Captree.check_invariants t with
          | Ok () -> ()
          | Error e ->
            QCheck.Test.fail_reportf "after op %d (%s): invariants: %s" n (print_fop op) e)
        ops;
      (* Round-trip: thaw everything — the delegation set must drain to
         empty and full service must resume (sharing works again). *)
      IntSet.iter (fun c -> Captree.thaw t c) !model;
      if Captree.frozen_caps t <> [] then
        QCheck.Test.fail_reportf "thawing every delegation left frozen caps behind";
      (if Captree.is_active t root then
         match
           Captree.share t root ~to_:1 ~rights:Rights.full ~cleanup:Revocation.Zero ()
         with
         | Ok _ -> ()
         | Error e ->
           QCheck.Test.fail_reportf "share refused after full thaw: %s"
             (Captree.error_to_string e));
      true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "cap"
    [ ( "structure",
        [ Alcotest.test_case "root overlap" `Quick test_root_overlap;
          Alcotest.test_case "share basics" `Quick test_share_basics;
          Alcotest.test_case "share subrange" `Quick test_share_subrange;
          Alcotest.test_case "rights attenuation" `Quick test_rights_attenuation;
          Alcotest.test_case "grant moves" `Quick test_grant_moves;
          Alcotest.test_case "split + carve" `Quick test_split_and_carve;
          Alcotest.test_case "cores + devices" `Quick test_device_and_core_caps;
          Alcotest.test_case "caps_of_domain order" `Quick test_caps_of_domain_ordering;
          Alcotest.test_case "is_ancestor" `Quick test_is_ancestor ] );
      ( "revocation",
        [ Alcotest.test_case "cascade" `Quick test_revoke_cascade;
          Alcotest.test_case "grant reactivation" `Quick test_revoke_reactivates_granted_parent;
          Alcotest.test_case "split children" `Quick test_revoke_split_children;
          Alcotest.test_case "revoke_children" `Quick test_revoke_children_keeps_cap;
          Alcotest.test_case "circular sharing" `Quick test_circular_sharing_revocation;
          Alcotest.test_case "circular revocation index agreement" `Quick
            test_circular_revocation_index_agreement ] );
      ( "refcounts",
        [ Alcotest.test_case "Fig. 4 region map" `Quick test_fig4_region_map;
          Alcotest.test_case "region map merging" `Quick test_region_map_merging ] );
      ( "smoke-50k",
        [ Alcotest.test_case "deep chain" `Slow test_smoke_deep_chain;
          Alcotest.test_case "wide tree" `Slow test_smoke_wide_tree ] );
      ( "properties",
        [ qt prop_indexes_agree;
          qt prop_invariants_hold;
          qt prop_refcount_consistent;
          qt prop_region_map_disjoint;
          qt prop_revoke_all_restores_root;
          qt prop_frozen_tracks_delegations ] ) ]
