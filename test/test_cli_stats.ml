(* CLI `stats` smoke: the JSON and text renderings of one report must
   list exactly the same counter set, and — now that the binary links
   the distributed library — that set must include the fleet and
   migration metrics (a regression here means the linker dropped the
   module initializers again). Driven by a dune rule that feeds it the
   two captured outputs. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("cli-stats: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* "counters:" section of the text report: indented "name value" lines
   up to the next unindented header. *)
let text_counters txt =
  let rec skip = function
    | [] -> fail "text report has no counters section"
    | l :: rest -> if String.trim l = "counters:" then rest else skip rest
  in
  let rec take acc = function
    | l :: rest when String.length l > 2 && l.[0] = ' ' -> (
      match String.split_on_char ' ' (String.trim l) with
      | name :: _ when name <> "" -> take (name :: acc) rest
      | _ -> take acc rest)
    | _ -> List.rev acc
  in
  take [] (skip (String.split_on_char '\n' txt))

(* The flat "counters" object of the JSON report (no nested braces). *)
let json_counters js =
  let marker = {|"counters":{|} in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length js then fail "JSON report has no counters object"
    else if String.sub js i mlen = marker then i + mlen
    else find (i + 1)
  in
  let start = find 0 in
  let stop = String.index_from js start '}' in
  let body = String.sub js start (stop - start) in
  if String.trim body = "" then []
  else
    List.map
      (fun kv ->
        match String.index_opt kv ':' with
        | Some c -> Scanf.sscanf (String.sub kv 0 c) " %S" (fun s -> s)
        | None -> fail "malformed counter entry %S" kv)
      (String.split_on_char ',' body)

let () =
  let json_path, text_path =
    match Sys.argv with
    | [| _; j; t |] -> (j, t)
    | _ -> fail "usage: test_cli_stats <stats.json> <stats.txt>"
  in
  let from_json = List.sort compare (json_counters (read_file json_path)) in
  let from_text = List.sort compare (text_counters (read_file text_path)) in
  if from_json <> from_text then begin
    let missing l r = List.filter (fun n -> not (List.mem n r)) l in
    fail "counter sets diverge: only-in-json=[%s] only-in-text=[%s]"
      (String.concat "," (missing from_json from_text))
      (String.concat "," (missing from_text from_json))
  end;
  if from_json = [] then fail "no counters in the report";
  let has prefix =
    List.exists
      (fun n -> String.length n >= String.length prefix
                && String.sub n 0 (String.length prefix) = prefix)
      from_json
  in
  if not (has "fleet.") then
    fail "no fleet.* counters: the CLI lost its tyche.distributed linkage";
  if not (has "migrate.") then
    fail "no migrate.* counters: the CLI lost its migration linkage";
  Printf.printf "cli stats: %d counters agree across JSON and text (fleet+migrate present)\n%!"
    (List.length from_json)
