(* The sharded federation: global-namespace routing, the lock-free
   read path under genuinely parallel writers, and 2PC
   atomicity-under-fault for the one cross-shard mutation (domain
   destruction). *)

open Testkit

let page = Hw.Addr.page_size
let range ~base ~len = Hw.Addr.Range.make ~base ~len
let stride = Tyche.Sharded.addr_stride

let violations_str vs =
  String.concat "; " (List.map (Format.asprintf "%a" Tyche.Invariants.pp_violation) vs)

let check_shards t =
  for i = 0 to Tyche.Sharded.shard_count t - 1 do
    let m = Tyche.Sharded.shard_monitor t i in
    (match Tyche.Invariants.check_all m with
    | [] -> ()
    | vs -> Alcotest.failf "shard %d invariants: %s" i (violations_str vs));
    let r = Tyche.Fsck.check m in
    if not (Tyche.Fsck.ok r) then
      Alcotest.failf "shard %d fsck: %a" i Tyche.Fsck.pp r
  done

(* Per-shard structural snapshot: the captree image plus the id
   allocator. Equality across a failed 2PC is the rollback proof. *)
let snapshot t =
  Array.init (Tyche.Sharded.shard_count t) (fun i ->
      let tree = Tyche.Monitor.tree (Tyche.Sharded.shard_monitor t i) in
      (Cap.Captree.dump tree, Cap.Captree.next_id tree))

(* ---------------- namespace routing ---------------- *)

let test_global_ids () =
  let t = boot_sharded ~shards:3 () in
  Alcotest.(check int) "shards" 3 (Tyche.Sharded.shard_count t);
  Alcotest.(check int) "cores" 6 (Tyche.Sharded.cores t);
  (* Domain creation broadcasts: ids agree on every shard. *)
  let d = get_ok (Tyche.Sharded.create_domain t ~caller:os ~name:"worker" ~kind:Tyche.Domain.Sandbox) in
  for i = 0 to 2 do
    match Tyche.Monitor.find_domain (Tyche.Sharded.shard_monitor t i) d with
    | Some dd -> Alcotest.(check string) "name" "worker" (Tyche.Domain.name dd)
    | None -> Alcotest.failf "domain %d missing on shard %d" d i
  done;
  (* A carve on shard 1's memory routes to shard 1 and returns a
     global id that decodes back to shard 1. *)
  let c1 = sharded_os_memory_cap t ~shard:1 in
  Alcotest.(check int) "cap shard" 1 (Tyche.Sharded.cap_shard c1);
  let sub = range ~base:(stride + (16 * page)) ~len:(4 * page) in
  let carved = get_ok (Tyche.Sharded.carve t ~caller:os ~cap:c1 ~subrange:sub) in
  Alcotest.(check int) "carved cap shard" 1 (Tyche.Sharded.cap_shard carved);
  (* The indexed queries translate back and forth. *)
  Alcotest.(check int) "refcount" 1
    (Tyche.Sharded.refcount t (Cap.Resource.Memory sub));
  let shared =
    get_ok
      (Tyche.Sharded.share t ~caller:os ~cap:carved ~to_:d ~rights:Cap.Rights.rw
         ~cleanup:Cap.Revocation.Zero ())
  in
  Alcotest.(check int) "refcount after share" 2
    (Tyche.Sharded.refcount t (Cap.Resource.Memory sub));
  Alcotest.(check (list int)) "holders" [ os; d ]
    (List.sort compare (Tyche.Sharded.holders t (Cap.Resource.Memory sub)));
  Alcotest.(check (list int)) "caps_of worker" [ shared ] (Tyche.Sharded.caps_of t d);
  (* A subrange that straddles two shard windows is rejected, not
     silently clipped. *)
  (match
     Tyche.Sharded.carve t ~caller:os ~cap:c1
       ~subrange:(range ~base:(stride - page) ~len:(2 * page))
   with
  | Error (Tyche.Monitor.Cap_error Cap.Captree.Bad_subrange) -> ()
  | _ -> Alcotest.fail "cross-window carve should be Bad_subrange");
  (* Unknown shard bits surface as No_such_capability with the global id. *)
  (match Tyche.Sharded.revoke t ~caller:os ~cap:63 with
  | Error (Tyche.Monitor.Cap_error (Cap.Captree.No_such_capability 63)) -> ()
  | _ -> Alcotest.fail "shard-63 cap should be No_such_capability 63");
  check_shards t

let test_shard_count_invariance () =
  (* A workload confined to shard 0 produces identical global ids and
     responses under 1 shard and under 4. *)
  let run shards =
    let t = boot_sharded ~shards () in
    let c0 = sharded_os_memory_cap t ~shard:0 in
    let d = get_ok (Tyche.Sharded.create_domain t ~caller:os ~name:"inv" ~kind:Tyche.Domain.Enclave) in
    let carved =
      get_ok
        (Tyche.Sharded.carve t ~caller:os ~cap:c0
           ~subrange:(range ~base:(64 * page) ~len:(8 * page)))
    in
    let shared =
      get_ok
        (Tyche.Sharded.share t ~caller:os ~cap:carved ~to_:d ~rights:Cap.Rights.rw
           ~cleanup:Cap.Revocation.Zero_and_flush ())
    in
    let a, b = get_ok (Tyche.Sharded.split t ~caller:os ~cap:carved ~at:(68 * page)) in
    (d, carved, shared, a, b, Tyche.Sharded.caps_of t d)
  in
  let r1 = run 1 and r4 = run 4 in
  if r1 <> r4 then Alcotest.fail "shard-0-confined ids diverge between 1 and 4 shards"

(* ---------------- cross-shard destruction (2PC) ---------------- *)

(* A domain holding capabilities on every shard: destruction must run
   the revocation cascade on each of them atomically. *)
let spread_domain t =
  let n = Tyche.Sharded.shard_count t in
  let d = get_ok (Tyche.Sharded.create_domain t ~caller:os ~name:"spread" ~kind:Tyche.Domain.Sandbox) in
  let subs =
    List.init n (fun i ->
        let sub = range ~base:((i * stride) + (32 * page)) ~len:(4 * page) in
        let carved =
          get_ok ~msg:"carve"
            (Tyche.Sharded.carve t ~caller:os ~cap:(sharded_os_memory_cap t ~shard:i)
               ~subrange:sub)
        in
        let _ =
          get_ok ~msg:"share"
            (Tyche.Sharded.share t ~caller:os ~cap:carved ~to_:d ~rights:Cap.Rights.rw
               ~cleanup:Cap.Revocation.Zero ())
        in
        sub)
  in
  (d, subs)

let test_destroy_spans_shards () =
  let t = boot_sharded ~shards:3 () in
  let d, subs = spread_domain t in
  List.iter
    (fun sub ->
      Alcotest.(check int) "shared refcount" 2 (Tyche.Sharded.refcount t (Cap.Resource.Memory sub)))
    subs;
  get_ok ~msg:"destroy" (Tyche.Sharded.destroy_domain t ~caller:os ~domain:d);
  List.iter
    (fun sub ->
      Alcotest.(check int) "refcount after destroy" 1
        (Tyche.Sharded.refcount t (Cap.Resource.Memory sub)))
    subs;
  for i = 0 to 2 do
    if Tyche.Monitor.find_domain (Tyche.Sharded.shard_monitor t i) d <> None then
      Alcotest.failf "domain survived on shard %d" i
  done;
  check_shards t

let test_2pc_prepare_fault () =
  let t = boot_sharded ~shards:3 () in
  let d, _subs = spread_domain t in
  let before = snapshot t in
  (* Lose the coordinator after every shard prepared its journal but
     before the commit decision: every shard must roll back. *)
  Fault.with_plan (Fault.nth "shard.prepare" 1) (fun () ->
      match Tyche.Sharded.destroy_domain t ~caller:os ~domain:d with
      | Ok () -> Alcotest.fail "destroy should abort on a prepare fault"
      | Error (Tyche.Monitor.Backend_failure msg) ->
        if not (contains_substring msg "rolled back") then
          Alcotest.failf "unexpected abort message: %s" msg
      | Error e -> Alcotest.failf "unexpected error: %s" (Tyche.Monitor.error_to_string e));
  let after = snapshot t in
  Array.iteri
    (fun i (dump, next) ->
      let dump', next' = after.(i) in
      if dump <> dump' || next <> next' then
        Alcotest.failf "shard %d state changed across an aborted 2PC" i)
    before;
  for i = 0 to 2 do
    if Tyche.Monitor.find_domain (Tyche.Sharded.shard_monitor t i) d = None then
      Alcotest.failf "domain lost on shard %d despite rollback" i
  done;
  check_shards t;
  (* The federation is fully functional after the abort. *)
  get_ok ~msg:"destroy after abort" (Tyche.Sharded.destroy_domain t ~caller:os ~domain:d);
  check_shards t

let test_2pc_commit_fault () =
  let t = boot_sharded ~shards:3 () in
  let d, subs = spread_domain t in
  (* A fault after the commit decision must not yield a partial state:
     post-decision per-shard commits are absorbed and completed. *)
  Fault.with_plan (Fault.nth "shard.commit" 1) (fun () ->
      get_ok ~msg:"destroy past commit point" (Tyche.Sharded.destroy_domain t ~caller:os ~domain:d));
  for i = 0 to 2 do
    if Tyche.Monitor.find_domain (Tyche.Sharded.shard_monitor t i) d <> None then
      Alcotest.failf "domain survived on shard %d past the commit point" i
  done;
  List.iter
    (fun sub ->
      Alcotest.(check int) "refcount" 1 (Tyche.Sharded.refcount t (Cap.Resource.Memory sub)))
    subs;
  check_shards t

(* ---------------- parallel execution ---------------- *)

(* Writers hammer their own shard from separate OCaml Domains while
   readers sweep the optimistic queries. The assertion is absence of
   crashes/corruption: per-shard invariants and fsck afterwards. *)
let test_parallel_writers () =
  let shards = 2 in
  let t = boot_sharded ~shards ~mem_size:(4 * 1024 * 1024) () in
  let d = get_ok (Tyche.Sharded.create_domain t ~caller:os ~name:"load" ~kind:Tyche.Domain.Sandbox) in
  let iters = 200 in
  let writer shard () =
    let base_cap = sharded_os_memory_cap t ~shard in
    for i = 0 to iters - 1 do
      let sub = range ~base:((shard * stride) + ((256 + (i mod 64)) * page)) ~len:page in
      match Tyche.Sharded.carve t ~caller:os ~cap:base_cap ~subrange:sub with
      | Error _ -> ()
      | Ok carved ->
        (match
           Tyche.Sharded.share t ~caller:os ~cap:carved ~to_:d ~rights:Cap.Rights.read_only
             ~cleanup:Cap.Revocation.Keep ()
         with
        | Ok shared -> ignore (Tyche.Sharded.revoke t ~caller:os ~cap:shared)
        | Error _ -> ());
        ignore (Tyche.Sharded.revoke t ~caller:os ~cap:carved)
    done
  in
  let reader () =
    for i = 0 to (iters * 2) - 1 do
      let shard = i mod shards in
      let sub = range ~base:((shard * stride) + ((256 + (i mod 64)) * page)) ~len:page in
      ignore (Tyche.Sharded.refcount t (Cap.Resource.Memory sub));
      ignore (Tyche.Sharded.holders t (Cap.Resource.Memory sub));
      ignore (Tyche.Sharded.caps_of t d)
    done
  in
  let spawned =
    List.init shards (fun s -> Stdlib.Domain.spawn (writer s))
    @ [ Stdlib.Domain.spawn reader ]
  in
  List.iter Stdlib.Domain.join spawned;
  check_shards t;
  get_ok ~msg:"destroy after load" (Tyche.Sharded.destroy_domain t ~caller:os ~domain:d);
  check_shards t

(* ---------------- seal + aggregate attestation ---------------- *)

let test_seal_and_attest () =
  let t = boot_sharded ~shards:2 () in
  let d = get_ok (Tyche.Sharded.create_domain t ~caller:os ~name:"encl" ~kind:Tyche.Domain.Enclave) in
  (* Code on shard 0, a core capability from shard 1: the attestation
     must aggregate resources across shards. *)
  let code = range ~base:(128 * page) ~len:(2 * page) in
  let carved =
    get_ok (Tyche.Sharded.carve t ~caller:os ~cap:(sharded_os_memory_cap t ~shard:0) ~subrange:code)
  in
  let _ =
    get_ok
      (Tyche.Sharded.grant t ~caller:os ~cap:carved ~to_:d ~rights:Cap.Rights.rx
         ~cleanup:Cap.Revocation.Zero)
  in
  let far_core = Tyche.Sharded.cores_per_shard t in
  let _ =
    get_ok
      (Tyche.Sharded.share t ~caller:os ~cap:(sharded_os_core_cap t far_core) ~to_:d
         ~rights:Cap.Rights.exclusive_use ~cleanup:Cap.Revocation.Keep ())
  in
  get_ok (Tyche.Sharded.set_entry_point t ~caller:os ~domain:d (Hw.Addr.Range.base code));
  get_ok (Tyche.Sharded.mark_measured t ~caller:os ~domain:d code);
  get_ok ~msg:"seal" (Tyche.Sharded.seal t ~caller:os ~domain:d);
  (* Sealed on every shard, same measurement. *)
  let meas i =
    match Tyche.Monitor.find_domain (Tyche.Sharded.shard_monitor t i) d with
    | Some dd -> Tyche.Domain.measurement dd
    | None -> Alcotest.failf "domain missing on shard %d" i
  in
  Alcotest.(check bool) "sealed measurement replicated" true (meas 0 = meas 1 && meas 0 <> None);
  let att = get_ok ~msg:"attest" (Tyche.Sharded.attest t ~caller:os ~domain:d ~nonce:"n-1") in
  (* The aggregate body sees the shard-0 region under its global range
     and the shard-1 core under its global id. *)
  let has_code =
    List.exists
      (fun (r : Tyche.Attestation.region_report) -> r.Tyche.Attestation.range = code && r.measured)
      att.Tyche.Attestation.regions
  in
  Alcotest.(check bool) "code region attested" true has_code;
  Alcotest.(check bool) "far core attested" true
    (List.mem_assoc far_core att.Tyche.Attestation.cores);
  check_shards t

(* ---------------- durability ---------------- *)

let test_persist_recover () =
  let store = Persist.Store.mem () in
  let seed = 0x5AADL in
  let t = boot_sharded ~seed ~shards:2 () in
  Tyche.Sharded.enable_persistence t ~store ();
  let d, _ = spread_domain t in
  let d2 = get_ok (Tyche.Sharded.create_domain t ~caller:os ~name:"keep" ~kind:Tyche.Domain.Sandbox) in
  get_ok (Tyche.Sharded.destroy_domain t ~caller:os ~domain:d);
  Tyche.Sharded.flush t;
  let fp i =
    let tree = Tyche.Monitor.tree (Tyche.Sharded.shard_monitor t i) in
    (Cap.Captree.dump tree, Cap.Captree.next_id tree)
  in
  let before = (fp 0, fp 1) in
  (* Rebuild the federation from the front-end WAL alone. *)
  let rng = Crypto.Rng.create ~seed in
  let mk ~shard =
    let machine = Hw.Machine.create ~arch:Hw.Cpu.X86_64 ~cores:2 ~mem_size:(8 * 1024 * 1024) () in
    let srng = Crypto.Rng.create ~seed:(Int64.add seed (Int64.of_int (shard * 7919))) in
    let tpm = Rot.Tpm.create srng in
    let report =
      Rot.Boot.measured_boot tpm machine ~firmware ~loader:loader_blob ~monitor_image
    in
    (machine, Backend_x86.create machine (), tpm, srng, report.Rot.Boot.monitor_range)
  in
  let t', rep = Tyche.Sharded.recover ~shards:2 ~rng ~mk ~store () in
  (match rep.Tyche.Sharded.sr_stopped_early with
  | None -> ()
  | Some why -> Alcotest.failf "recovery stopped early: %s" why);
  Alcotest.(check int) "all records replayed" rep.Tyche.Sharded.sr_wal_records
    rep.Tyche.Sharded.sr_replayed;
  let fp' i =
    let tree = Tyche.Monitor.tree (Tyche.Sharded.shard_monitor t' i) in
    (Cap.Captree.dump tree, Cap.Captree.next_id tree)
  in
  if before <> (fp' 0, fp' 1) then Alcotest.fail "recovered captrees differ";
  if Tyche.Sharded.find_domain t' d <> None then Alcotest.fail "destroyed domain resurrected";
  (match Tyche.Sharded.find_domain t' d2 with
  | Some dd -> Alcotest.(check string) "surviving domain" "keep" (Tyche.Domain.name dd)
  | None -> Alcotest.fail "surviving domain lost");
  check_shards t'

let () =
  Alcotest.run "sharded"
    [
      ( "namespace",
        [
          Alcotest.test_case "global ids route to shards" `Quick test_global_ids;
          Alcotest.test_case "shard-count invariance on shard 0" `Quick
            test_shard_count_invariance;
        ] );
      ( "2pc",
        [
          Alcotest.test_case "destroy spans shards" `Quick test_destroy_spans_shards;
          Alcotest.test_case "prepare fault rolls every shard back" `Quick
            test_2pc_prepare_fault;
          Alcotest.test_case "commit fault cannot leave a partial state" `Quick
            test_2pc_commit_fault;
        ] );
      ( "parallel",
        [ Alcotest.test_case "writers per shard + seqlock readers" `Quick test_parallel_writers ] );
      ( "attest",
        [ Alcotest.test_case "seal and aggregate attestation" `Quick test_seal_and_attest ] );
      ( "durability",
        [ Alcotest.test_case "WAL recovery rebuilds the federation" `Quick test_persist_recover ] );
    ]
