(* Shared fixtures for the test suites: booted machines on both
   backends, a tiny enclave image, and result helpers. *)

let ( let* ) = Result.bind
let _ = ( let* )

type world = {
  machine : Hw.Machine.t;
  tpm : Rot.Tpm.t;
  rng : Crypto.Rng.t;
  boot_report : Rot.Boot.report;
  backend : Tyche.Backend_intf.t;
  monitor : Tyche.Monitor.t;
}

let firmware = "firmware-v1"
let loader_blob = "loader-v1"
let monitor_image = "tyche-monitor-image-v1"

let boot_x86 ?(seed = 0x71L) ?(cores = 4) ?(mem_size = 16 * 1024 * 1024) ?(devices = []) ?tlb_strategy () =
  let machine = Hw.Machine.create ~arch:Hw.Cpu.X86_64 ~cores ~mem_size () in
  List.iter (Hw.Machine.attach_device machine) devices;
  let rng = Crypto.Rng.create ~seed in
  let tpm = Rot.Tpm.create rng in
  let boot_report =
    Rot.Boot.measured_boot tpm machine ~firmware ~loader:loader_blob ~monitor_image
  in
  let backend = Backend_x86.create machine ?tlb_strategy () in
  let monitor =
    Tyche.Monitor.boot machine ~backend ~tpm ~rng
      ~monitor_range:boot_report.Rot.Boot.monitor_range
  in
  { machine; tpm; rng; boot_report; backend; monitor }

let boot_riscv ?(seed = 0x51L) ?(cores = 2) ?(mem_size = 16 * 1024 * 1024) ?alloc_strategy () =
  let machine = Hw.Machine.create ~arch:Hw.Cpu.Riscv64 ~cores ~mem_size () in
  let rng = Crypto.Rng.create ~seed in
  let tpm = Rot.Tpm.create rng in
  let boot_report =
    Rot.Boot.measured_boot tpm machine ~firmware ~loader:loader_blob ~monitor_image
  in
  let backend =
    Backend_riscv.create machine ~monitor_range:boot_report.Rot.Boot.monitor_range
      ?alloc_strategy ()
  in
  let monitor =
    Tyche.Monitor.boot machine ~backend ~tpm ~rng
      ~monitor_range:boot_report.Rot.Boot.monitor_range
  in
  { machine; tpm; rng; boot_report; backend; monitor }

(* A sharded federation: [shards] independent x86 worlds behind one
   global namespace. [devices] attach to shard 0 (the sharded monitor
   routes device capabilities there). *)
let boot_sharded ?(seed = 0x71L) ?(shards = 2) ?(cores = 2)
    ?(mem_size = 8 * 1024 * 1024) ?(devices = []) () =
  let rng = Crypto.Rng.create ~seed in
  let mk ~shard =
    let machine = Hw.Machine.create ~arch:Hw.Cpu.X86_64 ~cores ~mem_size () in
    if shard = 0 then List.iter (Hw.Machine.attach_device machine) devices;
    let srng = Crypto.Rng.create ~seed:(Int64.add seed (Int64.of_int (shard * 7919))) in
    let tpm = Rot.Tpm.create srng in
    let report =
      Rot.Boot.measured_boot tpm machine ~firmware ~loader:loader_blob ~monitor_image
    in
    let backend = Backend_x86.create machine () in
    (machine, backend, tpm, srng, report.Rot.Boot.monitor_range)
  in
  Tyche.Sharded.boot ~shards ~rng ~mk ()

(* The OS's largest memory capability on one shard, as a global id. *)
let sharded_os_memory_cap t ~shard =
  let m = Tyche.Sharded.shard_monitor t shard in
  let tree = Tyche.Monitor.tree m in
  let size cap =
    match Cap.Captree.resource tree cap with
    | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.len r
    | _ -> 0
  in
  match Tyche.Monitor.caps_of m Tyche.Domain.initial with
  | [] -> Alcotest.fail "domain 0 holds no capabilities on the shard"
  | caps ->
    Tyche.Sharded.gcap ~shard
      (List.fold_left (fun best c -> if size c > size best then c else best) (List.hd caps) caps)

(* The OS's capability for a (global) core id, as a global id. *)
let sharded_os_core_cap t core =
  let shard = core / Tyche.Sharded.cores_per_shard t in
  let local = core mod Tyche.Sharded.cores_per_shard t in
  let m = Tyche.Sharded.shard_monitor t shard in
  let tree = Tyche.Monitor.tree m in
  Tyche.Sharded.gcap ~shard
    (List.find
       (fun cap -> Cap.Captree.resource tree cap = Some (Cap.Resource.Cpu_core local))
       (Tyche.Monitor.caps_of m Tyche.Domain.initial))

let os = Tyche.Domain.initial

(* The OS's largest memory capability (carves keep splitting it, so
   re-query rather than caching). *)
let os_memory_cap w =
  let tree = Tyche.Monitor.tree w.monitor in
  let size cap =
    match Cap.Captree.resource tree cap with
    | Some (Cap.Resource.Memory r) -> Hw.Addr.Range.len r
    | _ -> 0
  in
  match Tyche.Monitor.caps_of w.monitor os with
  | [] -> Alcotest.fail "domain 0 holds no capabilities"
  | caps -> List.fold_left (fun best c -> if size c > size best then c else best) (List.hd caps) caps

let os_core_cap w core =
  let tree = Tyche.Monitor.tree w.monitor in
  List.find
    (fun cap -> Cap.Captree.resource tree cap = Some (Cap.Resource.Cpu_core core))
    (Tyche.Monitor.caps_of w.monitor os)

let get_ok ?(msg = "expected Ok") = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Tyche.Monitor.error_to_string e)

let get_ok_str ?(msg = "expected Ok") = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg e

let expect_error = function
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error"

(* A small two-segment image: a page of "code" and a page of shared IO. *)
let tiny_image ?(name = "tiny") ?(shared_page = true) () =
  let b = Image.Builder.create ~name in
  let b =
    Image.Builder.add_segment b ~name:".text" ~vaddr:0
      ~data:(String.init 100 (fun i -> Char.chr (65 + (i mod 26))))
      ~perm:Hw.Perm.rx ()
  in
  let b =
    Image.Builder.add_segment b ~name:".data" ~vaddr:4096
      ~data:"initialized-data" ~perm:Hw.Perm.rw ()
  in
  let b =
    if shared_page then
      Image.Builder.add_segment b ~name:".shared" ~vaddr:8192 ~data:"io"
        ~perm:Hw.Perm.rw ~visibility:Image.Shared ~measured:false ()
    else b
  in
  Result.get_ok (Image.Builder.finish (Image.Builder.set_entry b 0))

let contains_substring s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_no_violations monitor =
  match Tyche.Invariants.check_all monitor with
  | [] -> ()
  | vs ->
    Alcotest.failf "invariant violations: %s"
      (String.concat "; "
         (List.map (Format.asprintf "%a" Tyche.Invariants.pp_violation) vs))

(* --- chaos-seed replay conventions -----------------------------------

   Both chaos drivers (test_fault's fault-plan sweeps and
   test_persist_chaos's crash-restart runs) announce their seed and
   report failures through these helpers, so a red run always prints
   the same one-line replay recipe regardless of which driver found it
   (see README, "Reproducing a chaos failure"). *)

let chaos_seed ~default =
  match Sys.getenv_opt "TYCHE_FAULT_SEED" with
  | Some s -> (match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let chaos_replay_line ~suite ~seed =
  Printf.sprintf "chaos[%s]: failing seed=%d — replay with: TYCHE_FAULT_SEED=%d dune build @chaos"
    suite seed seed

let chaos_banner ?(extra = "") ~suite ~seed () =
  Printf.printf "chaos[%s]: seed=%d%s (replay: TYCHE_FAULT_SEED=%d dune build @chaos)\n%!"
    suite seed extra seed

(* The unbalanced-span audit every chaos driver (and the [@coverage]
   gate through them) runs after its workload: instrumentation must
   stay balanced even when injected faults unwind mid-span. *)
let chaos_check_obs ~suite ~seed ~where =
  match Obs.check () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline (chaos_replay_line ~suite ~seed);
    Printf.eprintf "FAIL: %s: obs self-audit: %s\n%!" where msg;
    exit 1
