(* Cross-machine attested sessions: the network adversary model and the
   broker-mediated establishment (§4.2 multi-machine exploration). *)

open Testkit


(* Two independent machines, each with one enclave. *)
let two_machines () =
  let wa = boot_x86 ~seed:0xAAL () in
  let wb = boot_x86 ~seed:0xBBL () in
  let image = tiny_image ~shared_page:false () in
  let ea =
    get_ok_str
      (Libtyche.Enclave.create wa.monitor ~caller:os ~core:0 ~memory_cap:(os_memory_cap wa)
         ~at:0x40000 ~image ())
  in
  let eb =
    get_ok_str
      (Libtyche.Enclave.create wb.monitor ~caller:os ~core:0 ~memory_cap:(os_memory_cap wb)
         ~at:0x40000 ~image ())
  in
  (wa, ea, wb, eb)

let reference w =
  { Verifier.tpm_root = Rot.Tpm.endorsement_root w.tpm;
    expected_pcrs = Rot.Boot.expected_pcrs ~firmware ~loader:loader_blob ~monitor_image;
    monitor_root = Tyche.Monitor.attestation_root w.monitor }

let party name w =
  { Distributed.Session.name;
    reference = reference w;
    policy =
      [ Verifier.Policy.Sealed;
        Verifier.Policy.Measurement_is
          (Libtyche.Enclave.expected_measurement (tiny_image ~shared_page:false ())) ] }

let established () =
  let wa, ea, wb, eb = two_machines () in
  let nonce = "session-42" in
  let ev_a =
    get_ok_str
      (Distributed.Session.gather_evidence wa.monitor ~domain:ea.Libtyche.Handle.domain ~nonce)
  in
  let ev_b =
    get_ok_str
      (Distributed.Session.gather_evidence wb.monitor ~domain:eb.Libtyche.Handle.domain ~nonce)
  in
  match
    Distributed.Session.establish ~nonce ~a:(party "alpha" wa, ev_a) ~b:(party "beta" wb, ev_b)
  with
  | Ok (ka, kb) -> (ka, kb)
  | Error msgs -> Alcotest.failf "establish failed: %s" (String.concat "; " msgs)

(* --- network --- *)

let test_network_basics () =
  let net = Distributed.Network.create () in
  Distributed.Network.send net ~from_:"a" ~to_:"b" "one";
  Distributed.Network.send net ~from_:"a" ~to_:"b" "two";
  Alcotest.(check int) "pending" 2 (Distributed.Network.pending net "b");
  Alcotest.(check (list string)) "eavesdrop copies" [ "one"; "two" ]
    (Distributed.Network.eavesdrop net "b");
  Alcotest.(check (option string)) "fifo" (Some "one") (Distributed.Network.recv net "b");
  Alcotest.(check bool) "drop" true (Distributed.Network.drop_head net "b");
  Alcotest.(check (option string)) "empty" None (Distributed.Network.recv net "b");
  Distributed.Network.inject net ~to_:"b" "forged";
  Alcotest.(check (option string)) "injection arrives" (Some "forged")
    (Distributed.Network.recv net "b");
  Alcotest.(check int) "stats" 3 (Distributed.Network.total_messages net)

let test_network_tamper () =
  let net = Distributed.Network.create () in
  Distributed.Network.send net ~from_:"a" ~to_:"b" "payload";
  Distributed.Network.send net ~from_:"a" ~to_:"b" "second";
  Alcotest.(check bool) "tampered" true
    (Distributed.Network.tamper_head net "b" ~f:(fun _ -> "evil"));
  Alcotest.(check (option string)) "head rewritten" (Some "evil")
    (Distributed.Network.recv net "b");
  Alcotest.(check (option string)) "order kept" (Some "second")
    (Distributed.Network.recv net "b")

(* --- establishment --- *)

let test_establish_ok () =
  let ka, kb = established () in
  Alcotest.(check string) "both sides share the key" ka kb;
  Alcotest.(check int) "32-byte key" 32 (String.length ka)

let test_establish_rejects_wrong_binary () =
  let wa, ea, wb, eb = two_machines () in
  let nonce = "n" in
  let ev_a =
    get_ok_str
      (Distributed.Session.gather_evidence wa.monitor ~domain:ea.Libtyche.Handle.domain ~nonce)
  in
  let ev_b =
    get_ok_str
      (Distributed.Session.gather_evidence wb.monitor ~domain:eb.Libtyche.Handle.domain ~nonce)
  in
  let bad_party =
    { (party "beta" wb) with
      Distributed.Session.policy =
        [ Verifier.Policy.Measurement_is (Crypto.Sha256.string "some other binary") ] }
  in
  match
    Distributed.Session.establish ~nonce ~a:(party "alpha" wa, ev_a) ~b:(bad_party, ev_b)
  with
  | Error msgs ->
    Alcotest.(check bool) "beta blamed" true
      (List.exists (fun m -> contains_substring m "beta") msgs)
  | Ok _ -> Alcotest.fail "wrong binary keyed"

let test_establish_rejects_cross_machine_evidence () =
  (* Evidence from machine A presented as machine B's: the TPM roots
     and monitor keys do not match B's reference values. *)
  let wa, ea, _wb, _eb = two_machines () in
  let nonce = "n" in
  let ev_a =
    get_ok_str
      (Distributed.Session.gather_evidence wa.monitor ~domain:ea.Libtyche.Handle.domain ~nonce)
  in
  let impostor = { (party "beta" wa) with Distributed.Session.reference = reference (boot_x86 ~seed:0xCCL ()) } in
  match
    Distributed.Session.establish ~nonce ~a:(party "alpha" wa, ev_a) ~b:(impostor, ev_a)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-machine evidence accepted"

let test_keys_differ_across_nonces () =
  let wa, ea, wb, eb = two_machines () in
  let key_for nonce =
    let ev_a =
      get_ok_str
        (Distributed.Session.gather_evidence wa.monitor ~domain:ea.Libtyche.Handle.domain ~nonce)
    in
    let ev_b =
      get_ok_str
        (Distributed.Session.gather_evidence wb.monitor ~domain:eb.Libtyche.Handle.domain ~nonce)
    in
    match
      Distributed.Session.establish ~nonce ~a:(party "alpha" wa, ev_a) ~b:(party "beta" wb, ev_b)
    with
    | Ok (k, _) -> k
    | Error msgs -> Alcotest.failf "establish: %s" (String.concat ";" msgs)
  in
  Alcotest.(check bool) "fresh nonce, fresh key" false (key_for "s1" = key_for "s2")

(* --- the secured link --- *)

let linked () =
  let key, _ = established () in
  let net = Distributed.Network.create () in
  let a = Distributed.Session.connect net ~local:"alpha" ~remote:"beta" ~key in
  let b = Distributed.Session.connect net ~local:"beta" ~remote:"alpha" ~key in
  (net, a, b)

let recv_ok link =
  match Distributed.Session.recv link with
  | Ok v -> v
  | Error e -> Alcotest.failf "recv: %s" (Distributed.Session.recv_error_to_string e)

let test_link_roundtrip () =
  let _, a, b = linked () in
  Distributed.Session.send a "rdma write #1";
  Distributed.Session.send a "rdma write #2";
  Alcotest.(check string) "in order 1" "rdma write #1"
    (recv_ok b);
  Alcotest.(check string) "in order 2" "rdma write #2"
    (recv_ok b);
  Distributed.Session.send b "completion";
  Alcotest.(check string) "reverse direction" "completion"
    (recv_ok a);
  Alcotest.(check int) "counters" 2 (Distributed.Session.sent a);
  Alcotest.(check int) "counters" 2 (Distributed.Session.received b)

let test_link_detects_tampering () =
  let net, a, b = linked () in
  Distributed.Session.send a "important";
  let tampered =
    Distributed.Network.tamper_head net "beta" ~f:(fun raw ->
        let bytes = Bytes.of_string raw in
        Bytes.set bytes 13 'X';
        Bytes.to_string bytes)
  in
  Alcotest.(check bool) "tampered on the wire" true tampered;
  (match Distributed.Session.recv b with
  | Error Distributed.Session.Tampered -> ()
  | Error e ->
    Alcotest.failf "wrong error class: %s" (Distributed.Session.recv_error_to_string e)
  | Ok _ -> Alcotest.fail "tampered frame accepted")

let test_link_detects_replay () =
  let net, a, b = linked () in
  Distributed.Session.send a "pay $100";
  let captured = List.hd (Distributed.Network.eavesdrop net "beta") in
  Alcotest.(check string) "delivered once" "pay $100" (recv_ok b);
  Distributed.Network.replay net ~to_:"beta" captured;
  (match Distributed.Session.recv b with
  | Error (Distributed.Session.Stale { seq; last } as e) ->
    Alcotest.(check int) "replayed seq" 1 seq;
    Alcotest.(check int) "last accepted" 1 last;
    Alcotest.(check bool) "replay named" true
      (contains_substring (Distributed.Session.recv_error_to_string e) "replay")
  | Error e ->
    Alcotest.failf "wrong error class: %s" (Distributed.Session.recv_error_to_string e)
  | Ok _ -> Alcotest.fail "replayed frame accepted")

(* A reordered (not forged) frame: the later frame is accepted first, so
   the skipped predecessor surfaces as [Stale], distinguishable from
   [Tampered] — the MAC was fine, only the ordering was adversarial. *)
let test_link_reorder_is_stale_not_tampered () =
  let net, a, b = linked () in
  Distributed.Session.send a "one";
  Distributed.Session.send a "two";
  let frames = Distributed.Network.eavesdrop net "beta" in
  Alcotest.(check int) "two in flight" 2 (List.length frames);
  ignore (Distributed.Network.drop_head net "beta");
  ignore (Distributed.Network.drop_head net "beta");
  (match frames with
  | [ f1; f2 ] ->
    Distributed.Network.inject net ~to_:"beta" f2;
    Distributed.Network.inject net ~to_:"beta" f1
  | _ -> Alcotest.fail "expected two frames");
  Alcotest.(check string) "later frame accepted first" "two" (recv_ok b);
  match Distributed.Session.recv b with
  | Error (Distributed.Session.Stale { seq; last }) ->
    Alcotest.(check int) "skipped seq" 1 seq;
    Alcotest.(check int) "accepted ahead" 2 last
  | Error e ->
    Alcotest.failf "wrong error class: %s" (Distributed.Session.recv_error_to_string e)
  | Ok _ -> Alcotest.fail "out-of-order frame accepted twice"

let test_link_rejects_forgery () =
  let net, _a, b = linked () in
  Distributed.Network.inject net ~to_:"beta" (String.make 60 '\x00');
  (match Distributed.Session.recv b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged frame accepted");
  (* A forger who knows the format but not the key also fails. *)
  let forger =
    Distributed.Session.connect net ~local:"evil" ~remote:"beta"
      ~key:(String.make 32 'k')
  in
  Distributed.Session.send forger "trusted message, honest";
  match Distributed.Session.recv b with
  | Error Distributed.Session.Tampered -> ()
  | Error e ->
    Alcotest.failf "wrong key should fail authentication: %s"
      (Distributed.Session.recv_error_to_string e)
  | Ok _ -> Alcotest.fail "wrong-key frame accepted"

(* Stale frames are adversary-visible noise (replay or reorder) that a
   healthy link shrugs off — which is exactly why they must be counted:
   a silent flood of them is an attack signature. The counter must
   reach the operator through [Monitor.observe]. *)
let test_link_stale_counter () =
  let net, a, b = linked () in
  let w = boot_x86 () in
  let stale_count () =
    match
      List.assoc_opt "session.stale" (Tyche.Monitor.observe w.monitor).Obs.r_counters
    with
    | Some v -> v
    | None -> 0
  in
  let before = stale_count () in
  Distributed.Session.send a "pay $100";
  let captured = List.hd (Distributed.Network.eavesdrop net "beta") in
  Alcotest.(check string) "delivered once" "pay $100" (recv_ok b);
  Alcotest.(check int) "delivery bumps nothing" before (stale_count ());
  Distributed.Network.replay net ~to_:"beta" captured;
  Distributed.Network.replay net ~to_:"beta" captured;
  (match Distributed.Session.recv b with
  | Error (Distributed.Session.Stale _) -> ()
  | _ -> Alcotest.fail "expected a stale frame");
  (match Distributed.Session.recv b with
  | Error (Distributed.Session.Stale _) -> ()
  | _ -> Alcotest.fail "expected a second stale frame");
  Alcotest.(check int) "each stale frame counted" (before + 2) (stale_count ())

let test_link_eavesdropper_sees_no_key_material () =
  let net, a, _b = linked () in
  Distributed.Session.send a "hello";
  let frames = Distributed.Network.eavesdrop net "beta" in
  (* Payload is visible (integrity-only link, like plain RDMA with MACs);
     what must NOT leak is anything that verifies other messages. *)
  Alcotest.(check int) "one frame" 1 (List.length frames)

let () =
  Alcotest.run "distributed"
    [ ( "network",
        [ Alcotest.test_case "basics" `Quick test_network_basics;
          Alcotest.test_case "tamper" `Quick test_network_tamper ] );
      ( "establish",
        [ Alcotest.test_case "ok" `Quick test_establish_ok;
          Alcotest.test_case "wrong binary rejected" `Quick test_establish_rejects_wrong_binary;
          Alcotest.test_case "cross-machine evidence rejected" `Quick
            test_establish_rejects_cross_machine_evidence;
          Alcotest.test_case "keys differ across nonces" `Quick test_keys_differ_across_nonces ] );
      ( "link",
        [ Alcotest.test_case "roundtrip" `Quick test_link_roundtrip;
          Alcotest.test_case "tamper detected" `Quick test_link_detects_tampering;
          Alcotest.test_case "replay detected" `Quick test_link_detects_replay;
          Alcotest.test_case "reorder is stale, not tampered" `Quick
            test_link_reorder_is_stale_not_tampered;
          Alcotest.test_case "forgery rejected" `Quick test_link_rejects_forgery;
          Alcotest.test_case "stale frames counted" `Quick test_link_stale_counter;
          Alcotest.test_case "eavesdropper" `Quick test_link_eavesdropper_sees_no_key_material ] ) ]
